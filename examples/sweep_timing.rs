//! Before/after timing of the Figure 2 sweep: the seed's serial
//! measure-loop (one fresh `Cluster` per run, one assembly per run) versus
//! the `snitch-engine` batch (worker pool + program cache + cluster reuse).
//!
//! ```sh
//! cargo run --release --example sweep_timing
//! ```

use std::time::Instant;

use copift_repro::engine::{job, Engine};

fn main() {
    let jobs = job::figure2();

    // Before: the seed drivers' serial loop — build and run each job on a
    // fresh cluster, one after another.
    let t0 = Instant::now();
    for j in &jobs {
        let r = j.kernel.run(j.variant, j.n, j.block).expect("serial run validates");
        assert!(r.total_cycles > 0);
    }
    let serial = t0.elapsed();

    // After: one engine batch.
    let engine = Engine::default();
    let t0 = Instant::now();
    let records = engine.run(&jobs);
    let batched = t0.elapsed();
    assert!(records.iter().all(|r| r.ok));

    println!("figure-2 sweep ({} simulations):", jobs.len());
    println!("  serial seed loop : {serial:>10.2?}");
    println!(
        "  snitch-engine    : {batched:>10.2?}  ({} workers, {} programs compiled, {} cache hits)",
        engine.workers(),
        engine.cache().misses(),
        engine.cache().hits()
    );
    println!("  speedup          : {:>9.2}x", serial.as_secs_f64() / batched.as_secs_f64());
}
