//! Quickstart: assemble a small mixed integer/FP program, run it on the
//! cycle-accurate Snitch cluster, and read back results and statistics.
//!
//! Run with: `cargo run --example quickstart`

use copift_repro::asm::builder::ProgramBuilder;
use copift_repro::energy::EnergyModel;
use copift_repro::riscv::reg::{FpReg, IntReg};
use copift_repro::sim::cluster::Cluster;
use copift_repro::sim::config::ClusterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dot product of two 8-element vectors, with an FREP hardware loop
    // streaming both inputs through SSRs — dual-issue in ~30 lines.
    let mut b = ProgramBuilder::new();
    let xs = b.tcdm_f64("xs", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let ys = b.tcdm_f64("ys", &[0.5; 8]);
    let out = b.tcdm_reserve("out", 8, 8);

    use copift_repro::riscv::csr::SsrCfgWord;
    for (ssr, base) in [(0usize, xs), (1usize, ys)] {
        b.li(IntReg::T1, 0);
        b.scfgwi(IntReg::T1, ssr, SsrCfgWord::Status);
        b.li(IntReg::T1, 7);
        b.scfgwi(IntReg::T1, ssr, SsrCfgWord::Bound(0));
        b.li(IntReg::T1, 8);
        b.scfgwi(IntReg::T1, ssr, SsrCfgWord::Stride(0));
        b.li_u(IntReg::T1, base);
        b.scfgwi(IntReg::T1, ssr, SsrCfgWord::Base);
    }
    b.ssr_enable();
    b.li(IntReg::T0, 7); // 8 iterations
    b.frep_o(IntReg::T0, 1, 0, 0);
    b.fmadd_d(FpReg::FS0, FpReg::FT0, FpReg::FT1, FpReg::FS0); // acc += x·y
                                                               // The integer core is free while the FPU accumulates:
    b.li(IntReg::A0, 100);
    b.label("busy");
    b.addi(IntReg::A0, IntReg::A0, -1);
    b.bnez(IntReg::A0, "busy");
    b.fpu_fence();
    b.ssr_disable();
    b.li_u(IntReg::A1, out);
    b.fsd(FpReg::FS0, IntReg::A1, 0);
    b.fpu_fence();
    b.ecall();
    let program = b.build()?;

    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.load_program(&program);
    let stats = cluster.run()?;

    let dot = cluster.mem().read_f64(out)?;
    println!("dot product = {dot} (expected {})", (1..=8).sum::<i32>() as f64 * 0.5);
    println!("\n{stats}");
    println!("\n{}", EnergyModel::gf12lp().report(&stats));
    assert_eq!(dot, 18.0);
    Ok(())
}
