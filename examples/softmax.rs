//! Softmax on the Snitch cluster: the paper's motivating LLM workload
//! ("[expf] is the main component of softmax operations, which consume a
//! considerable fraction of cycles in modern Large Language Models").
//!
//! Runs the exponential stage of a softmax over a logits vector with both
//! the RV32G baseline and the COPIFT variant, then finishes the
//! normalization on the host and compares cycles and energy.
//!
//! Run with: `cargo run --release --example softmax`

use copift_repro::kernels::expf;
use copift_repro::kernels::registry::{Kernel, Variant};

fn main() {
    let n = 1024; // sequence logits
    let block = 64;

    let base = Kernel::Expf.run(Variant::Baseline, n, block).expect("baseline validates");
    let fast = Kernel::Expf.run(Variant::Copift, n, block).expect("copift validates");

    // The simulated kernels computed exp(x) bit-exactly (validated against
    // the golden model); normalize on the host to finish the softmax.
    let exps: Vec<f64> = expf::golden_outputs(n).iter().map(|b| f64::from_bits(*b)).collect();
    let denom: f64 = exps.iter().sum();
    let softmax: Vec<f64> = exps.iter().map(|e| e / denom).collect();
    let checksum: f64 = softmax.iter().sum();
    assert!((checksum - 1.0).abs() < 1e-9);

    println!("softmax exponential stage over {n} logits (block {block}):");
    println!(
        "  baseline: {:>8} cycles  {:>6.2} mW  {:>8.3} uJ",
        base.total_cycles, base.power_mw, base.energy_uj
    );
    println!(
        "  COPIFT:   {:>8} cycles  {:>6.2} mW  {:>8.3} uJ",
        fast.total_cycles, fast.power_mw, fast.energy_uj
    );
    println!(
        "  speedup {:.2}x, energy improvement {:.2}x (paper: 2.05x / 1.93x on exp)",
        base.total_cycles as f64 / fast.total_cycles as f64,
        base.energy_uj / fast.energy_uj
    );
    println!("  softmax checksum: {checksum:.12} (= 1)");

    // The extended catalog also ships a dedicated single-pass `softmax`
    // kernel (exp + on-core reduction, auto-compiled by copift::codegen)
    // that keeps the denominator accumulation on the cluster.
    let base = Kernel::Softmax.run(Variant::Baseline, n, block).expect("baseline validates");
    let fast = Kernel::Softmax.run(Variant::Copift, n, block).expect("copift validates");
    println!("\ndedicated softmax kernel (exp + reduce fused, {n} scores):");
    println!(
        "  baseline: {:>8} cycles  {:>6.2} mW  {:>8.3} uJ",
        base.total_cycles, base.power_mw, base.energy_uj
    );
    println!(
        "  COPIFT:   {:>8} cycles  {:>6.2} mW  {:>8.3} uJ  (speedup {:.2}x)",
        fast.total_cycles,
        fast.power_mw,
        fast.energy_uj,
        base.total_cycles as f64 / fast.total_cycles as f64
    );
}
