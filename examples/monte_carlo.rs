//! Hit-and-miss Monte Carlo integration on the Snitch cluster: estimates π
//! with both PRNGs and both code variants, validating every run bit-exactly
//! against the golden model.
//!
//! Run with: `cargo run --release --example monte_carlo`

use copift_repro::kernels::golden::{mc_hits, Integrand, Rng};
use copift_repro::kernels::registry::{Kernel, Variant};

fn main() {
    let n = 8192;
    let block = 256;
    for (kernel, rng) in [(Kernel::PiLcg, Rng::Lcg), (Kernel::PiXoshiro, Rng::Xoshiro128p)] {
        let hits = mc_hits(Integrand::Pi, rng, n);
        let estimate = 4.0 * hits / n as f64;
        println!("{} (n = {n}): pi ~ {estimate:.4}", kernel.name());
        let base = kernel.run(Variant::Baseline, n, block).expect("baseline validates");
        let fast = kernel.run(Variant::Copift, n, block).expect("copift validates");
        println!(
            "  baseline: {:>8} cycles  ipc {:.2}   COPIFT: {:>8} cycles  ipc {:.2}   speedup {:.2}x",
            base.total_cycles,
            base.stats.ipc(),
            fast.total_cycles,
            fast.stats.ipc(),
            base.total_cycles as f64 / fast.total_cycles as f64
        );
        println!(
            "  dual-issue evidence: {} of {} FP instructions issued by the FREP sequencer",
            fast.stats.fp_issued_seq,
            fast.stats.fp_instructions()
        );
    }
}
