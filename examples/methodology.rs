//! The COPIFT methodology as a library: runs Steps 1–7 on the paper's
//! Figure 1b loop body and prints every artifact — the DFG's cross-thread
//! dependencies, the phase partition, the buffer/replication plan, FREP
//! legality diagnostics, and the Table I estimators.
//!
//! Run with: `cargo run --example methodology`

use copift_repro::asm::builder::ProgramBuilder;
use copift_repro::copift::dfg::CrossDepType;
use copift_repro::copift::{analyze, estimate};
use copift_repro::riscv::reg::{FpReg, IntReg};

fn main() {
    // The paper's Fig. 1b: one iteration of the expf kernel.
    let mut b = ProgramBuilder::new();
    let (xp, yp, ki, t, tbl) = (IntReg::A3, IntReg::A4, IntReg::S2, IntReg::S3, IntReg::S4);
    b.fld(FpReg::FA3, xp, 0);
    b.fmul_d(FpReg::FA3, FpReg::FA3, FpReg::FS4);
    b.fadd_d(FpReg::FA1, FpReg::FA3, FpReg::FS5);
    b.fsd(FpReg::FA1, ki, 0);
    b.lw(IntReg::A0, ki, 0);
    b.andi(IntReg::A1, IntReg::A0, 0x1f);
    b.slli(IntReg::A1, IntReg::A1, 3);
    b.add(IntReg::A1, tbl, IntReg::A1);
    b.lw(IntReg::A2, IntReg::A1, 0);
    b.lw(IntReg::A1, IntReg::A1, 4);
    b.slli(IntReg::A0, IntReg::A0, 0xf);
    b.sw(IntReg::A2, t, 0);
    b.add(IntReg::A0, IntReg::A0, IntReg::A1);
    b.sw(IntReg::A0, t, 4);
    b.fsub_d(FpReg::FA2, FpReg::FA1, FpReg::FS5);
    b.fsub_d(FpReg::FA3, FpReg::FA3, FpReg::FA2);
    b.fmadd_d(FpReg::FA2, FpReg::FS6, FpReg::FA3, FpReg::FS7);
    b.fld(FpReg::FA0, t, 0);
    b.fmadd_d(FpReg::FA4, FpReg::FS8, FpReg::FA3, FpReg::FS9);
    b.fmul_d(FpReg::FA1, FpReg::FA3, FpReg::FA3);
    b.fmadd_d(FpReg::FA4, FpReg::FA2, FpReg::FA1, FpReg::FA4);
    b.fmul_d(FpReg::FA4, FpReg::FA4, FpReg::FA0);
    b.fsd(FpReg::FA4, yp, 0);
    let body = b.build().expect("assembles").text().to_vec();

    let a = analyze(&body).expect("straight-line body");

    println!("=== Step 1: DFG ({} nodes, {} edges) ===", body.len(), a.dfg.edges().len());
    for e in a.dfg.cross_edges() {
        let kind = match e.cross {
            Some(CrossDepType::Type1 { affine }) => {
                if affine {
                    "Type 1 (affine)"
                } else {
                    "Type 1"
                }
            }
            Some(CrossDepType::Type2) => "Type 2",
            Some(CrossDepType::Type3) => "Type 3",
            None => unreachable!(),
        };
        println!(
            "  {kind}: [{:>2}] {} -> [{:>2}] {}",
            e.from + 1,
            body[e.from],
            e.to + 1,
            body[e.to]
        );
    }

    println!("\n=== Step 2: partition into {} phases ===", a.partition.len());
    for (i, phase) in a.partition.phases.iter().enumerate() {
        let members: Vec<String> = phase.nodes.iter().map(|n| (n + 1).to_string()).collect();
        println!("  phase {i} ({:?}): instructions {}", phase.domain, members.join(", "));
    }
    println!("  cut edges: {}", a.partition.cut_edges.len());

    println!("\n=== Steps 4-5: buffers and replication ===");
    for buf in &a.tiling.buffers {
        println!(
            "  {:?}: {} B/elem, phases {} -> {}, {} replicas",
            buf.kind, buf.elem_bytes, buf.producer, buf.consumer, buf.replicas
        );
    }
    println!(
        "  {} B of buffers per block element; max block in 128 KiB TCDM: {}",
        a.tiling.bytes_per_element(),
        a.tiling.max_block(128 * 1024, 16 * 1024)
    );

    println!("\n=== Step 7: FREP legality of the fused FP body ===");
    for v in &a.frep.violations {
        println!("  [{:>2}] {}", v.node + 1, v.reason);
    }
    println!("  ({} violations; Step 6 SSR mapping and the COPIFT", a.frep.violations.len());
    println!("   custom-1 instructions resolve all of them, as in the paper)");

    println!("\n=== Estimators (Eqs. 1-3) ===");
    println!("  mix: {} int + {} FP", a.mix.n_int, a.mix.n_fp);
    println!("  TI = {:.3}, S'' = 1 + TI = {:.3}, I' = {:.3}", a.ti, a.s_double_prime, a.i_prime);
    let copift_mix = estimate::MixCounts { n_int: a.mix.n_int, n_fp: a.mix.n_fp - 4 };
    println!(
        "  with the 4 FP load/stores mapped to SSRs: S' = {:.3}",
        estimate::s_prime(a.mix, copift_mix)
    );
}
