//! Golden trace tests: the sink output formats are stable byte-for-byte.
//! Trace files are diffed across PRs and parsed by external tooling
//! (Perfetto), so format drift must be a deliberate, visible change.

use snitch_riscv::inst::Inst;
use snitch_riscv::reg::IntReg;
use snitch_trace::{chrome, text, EventKind, Lane, StallCause, TraceEvent};

fn sample_events() -> Vec<TraceEvent> {
    let addi = Inst::OpImm {
        op: snitch_riscv::ops::AluImmOp::Addi,
        rd: IntReg::A0,
        rs1: IntReg::A0,
        imm: -1,
    };
    vec![
        TraceEvent {
            cycle: 0,
            hart: 0,
            kind: EventKind::Issue { lane: Lane::Int, pc: Some(0x8000_0000), inst: addi },
        },
        TraceEvent {
            cycle: 1,
            hart: 0,
            kind: EventKind::Issue { lane: Lane::FpSeq, pc: None, inst: Inst::NOP },
        },
        TraceEvent {
            cycle: 1,
            hart: 0,
            kind: EventKind::Stall { cause: StallCause::WbPort, cycles: 1 },
        },
    ]
}

#[test]
fn chrome_json_is_stable() {
    let json = chrome::render(&sample_events());
    let expected = "{\"traceEvents\":[\n\
        {\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"hart0\"}},\n\
        {\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"core issue\"}},\n\
        {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"frep\"}},\n\
        {\"ph\":\"M\",\"pid\":0,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"fpu retire\"}},\n\
        {\"ph\":\"M\",\"pid\":0,\"tid\":3,\"name\":\"thread_name\",\"args\":{\"name\":\"stall\"}},\n\
        {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":1,\"name\":\"addi a0, a0, -1\",\"args\":{\"pc\":\"0x80000000\"}},\n\
        {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1,\"dur\":1,\"name\":\"addi zero, zero, 0\"},\n\
        {\"ph\":\"X\",\"pid\":0,\"tid\":3,\"ts\":1,\"dur\":1,\"name\":\"wb_port\"}\n\
        ],\"displayTimeUnit\":\"ms\",\"otherData\":{\"timeUnit\":\"cycle\"}}\n";
    assert_eq!(json, expected);
}

#[test]
fn chrome_json_passes_its_own_schema() {
    let json = chrome::render(&sample_events());
    let summary = chrome::validate(&json).expect("golden trace validates");
    assert_eq!(summary.events, 8);
    assert_eq!(summary.complete, 3);
    assert_eq!(summary.metadata, 5);
}

#[test]
fn text_trace_is_stable() {
    let rendered = text::render(&sample_events());
    let expected = concat!(
        "#     cycle hart lane   pc          event\n",
        "          0 h0   int    0x80000000  addi a0, a0, -1\n",
        "          1 h0   frep               addi zero, zero, 0\n",
        "          1 h0   stall              wb_port (1)\n",
    );
    assert_eq!(rendered, expected);
}
