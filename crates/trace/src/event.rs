//! The typed trace-event vocabulary.

use snitch_riscv::inst::Inst;

/// Synthetic hart id for cluster-shared units (DMA engine, TCDM arbiter)
/// whose events belong to no single compute core.
pub const CLUSTER_HART: u8 = 0xFF;

/// The issue lane an instruction occupied.
///
/// Snitch's *pseudo dual-issue* has exactly two concurrent issue slots per
/// hart and cycle: the integer core's (one instruction per cycle, including
/// FP offload pushes) and the FREP sequencer's (hardware-loop replays that
/// bypass the core entirely). The occupancy timeline therefore draws two
/// tracks — [`Lane::Int`] + [`Lane::FpCore`] share the *core issue* track,
/// [`Lane::FpSeq`] is the *FREP* track — and overlap between the tracks is
/// the dual-issue the paper measures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Lane {
    /// Integer-side instruction issued by the core (ALU, branches, loads,
    /// stores, CSR, FREP/SSR/DMA configuration).
    Int,
    /// FP instruction pushed into the offload FIFO by the integer core —
    /// it consumed the core's issue slot this cycle (iteration 0 of FREP
    /// bodies and all non-FREP FP instructions).
    FpCore,
    /// FP instruction issued by the FREP sequencer (a replayed iteration):
    /// the pseudo-dual-issue lane.
    FpSeq,
}

impl Lane {
    /// Short display tag (`int`, `fp`, `frep`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Lane::Int => "int",
            Lane::FpCore => "fp",
            Lane::FpSeq => "frep",
        }
    }

    /// Whether this lane occupies the core's issue slot (vs the sequencer's).
    #[must_use]
    pub fn is_core_slot(self) -> bool {
        matches!(self, Lane::Int | Lane::FpCore)
    }
}

/// Why an issue slot was lost for a cycle.
///
/// The first ten variants map one-to-one onto the simulator's
/// `Stats::stall_*` counters (the integer core's stall taxonomy); the last
/// three map onto the FPU-side `fpu_stall_*` counters. Attribution from a
/// trace is therefore cross-checkable counter-for-counter against `Stats`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StallCause {
    /// Busy integer source/destination register (`stall_int_raw`).
    IntRaw,
    /// Register-file write-back port already claimed (`stall_wb_port`).
    WbPort,
    /// Offload FIFO full (`stall_offload_full`).
    OffloadFull,
    /// Integer register pending an FP→int write-back (`stall_fp_pending`).
    FpPending,
    /// Reconfiguring a still-active SSR streamer (`stall_ssr_cfg`).
    SsrCfg,
    /// FPU fence CSR waiting for the FP subsystem to drain (`stall_fence`).
    Fence,
    /// Taken-branch pipeline refill (`stall_branch`).
    Branch,
    /// TCDM bank conflict on a core load/store (`stall_tcdm_conflict`).
    TcdmConflict,
    /// Integer load ordered behind queued FP stores (`stall_store_order`).
    StoreOrder,
    /// Waiting at the cluster hardware barrier (`stall_barrier`).
    Barrier,
    /// FPU issue stalled on a busy FP register (`fpu_stall_raw`).
    FpuRaw,
    /// FPU issue stalled on an SSR FIFO (`fpu_stall_ssr`).
    FpuSsr,
    /// FPU issue stalled on a TCDM conflict (`fpu_stall_tcdm`).
    FpuTcdm,
}

impl StallCause {
    /// Every cause: the ten integer-core categories then the three FPU ones.
    #[must_use]
    pub fn all() -> [StallCause; 13] {
        use StallCause::{
            Barrier, Branch, Fence, FpPending, FpuRaw, FpuSsr, FpuTcdm, IntRaw, OffloadFull,
            SsrCfg, StoreOrder, TcdmConflict, WbPort,
        };
        [
            IntRaw,
            WbPort,
            OffloadFull,
            FpPending,
            SsrCfg,
            Fence,
            Branch,
            TcdmConflict,
            StoreOrder,
            Barrier,
            FpuRaw,
            FpuSsr,
            FpuTcdm,
        ]
    }

    /// The ten integer-core categories (the `Stats::stall_*` counters).
    #[must_use]
    pub fn core() -> [StallCause; 10] {
        let mut out = [StallCause::IntRaw; 10];
        out.copy_from_slice(&Self::all()[..10]);
        out
    }

    /// Whether this cause stalls the integer core's issue slot (vs the FPU's).
    #[must_use]
    pub fn is_core(self) -> bool {
        !matches!(self, StallCause::FpuRaw | StallCause::FpuSsr | StallCause::FpuTcdm)
    }

    /// Stable snake-case name, matching the `Stats` field it mirrors.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StallCause::IntRaw => "int_raw",
            StallCause::WbPort => "wb_port",
            StallCause::OffloadFull => "offload_full",
            StallCause::FpPending => "fp_pending",
            StallCause::SsrCfg => "ssr_cfg",
            StallCause::Fence => "fence",
            StallCause::Branch => "branch",
            StallCause::TcdmConflict => "tcdm_conflict",
            StallCause::StoreOrder => "store_order",
            StallCause::Barrier => "barrier",
            StallCause::FpuRaw => "fpu_raw",
            StallCause::FpuSsr => "fpu_ssr",
            StallCause::FpuTcdm => "fpu_tcdm",
        }
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EventKind {
    /// An instruction occupied an issue slot this cycle. `pc` is known for
    /// core-slot issues; sequencer replays carry `None` (the ring buffer
    /// holds no addresses, matching the hardware).
    Issue {
        /// The issue lane occupied.
        lane: Lane,
        /// Program counter, when the core issued (not a replay).
        pc: Option<u32>,
        /// The instruction (render with `Display` for the disassembly).
        inst: Inst,
    },
    /// An FPU operation's result became architecturally visible (`cycle` is
    /// the completion cycle; the event is emitted at issue time, so a trace
    /// is not globally cycle-sorted — sinks sort where it matters).
    Retire {
        /// The lane the instruction was issued on.
        lane: Lane,
        /// The completed instruction.
        inst: Inst,
    },
    /// An issue slot was lost for `cycles` cycles (1 for most causes;
    /// taken branches report the whole refill penalty in one event, exactly
    /// as `Stats::stall_branch` counts it).
    Stall {
        /// Why the slot was lost.
        cause: StallCause,
        /// Lost cycles attributed to this event.
        cycles: u32,
    },
    /// An SSR streamer moved data this cycle.
    SsrBeat {
        /// Streamer index (0..2).
        ssr: u8,
        /// TCDM accesses it performed this cycle.
        count: u32,
    },
    /// The TCDM arbiter denied this many *new* requests this cycle
    /// (retries of already-stalled requests do not re-count, matching
    /// `Stats::tcdm_conflicts`). Emitted with [`CLUSTER_HART`].
    BankConflicts {
        /// Newly stalled requests.
        count: u32,
    },
    /// The DMA engine moved data this cycle. Emitted with [`CLUSTER_HART`].
    DmaActive {
        /// TCDM accesses it performed this cycle.
        count: u32,
    },
    /// The hart arrived at the hardware barrier (first waiting cycle).
    BarrierArrive,
    /// The cluster released the hart from the barrier.
    BarrierRelease,
}

/// One trace event: what happened, where, and when.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEvent {
    /// Cycle the event belongs to ([`EventKind::Retire`]: completion cycle).
    pub cycle: u64,
    /// Hart that produced it, or [`CLUSTER_HART`] for shared units.
    pub hart: u8,
    /// The event payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_shape() {
        assert_eq!(StallCause::all().len(), 13);
        assert_eq!(StallCause::core().len(), 10);
        assert!(StallCause::core().iter().all(|c| c.is_core()));
        assert!(!StallCause::FpuSsr.is_core());
        // Names are unique and non-empty.
        let mut names: Vec<&str> = StallCause::all().iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn lane_tracks() {
        assert!(Lane::Int.is_core_slot());
        assert!(Lane::FpCore.is_core_slot());
        assert!(!Lane::FpSeq.is_core_slot());
        assert_eq!(Lane::FpSeq.tag(), "frep");
    }
}
