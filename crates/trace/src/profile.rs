//! Analyzers: dual-issue occupancy, stall attribution, steady-state windows.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::event::{EventKind, StallCause, TraceEvent};

/// Per-cycle lane occupancy of one hart over a window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Occupancy {
    /// Window length in cycles.
    pub window: u64,
    /// Cycles the core issue slot was occupied (integer instructions and FP
    /// offload pushes).
    pub core_busy: u64,
    /// Cycles the FREP sequencer issued a replay (the dual-issue lane).
    pub frep_busy: u64,
    /// Cycles *both* lanes issued — the pseudo-dual-issue overlap.
    pub overlap: u64,
    /// Cycles neither lane issued.
    pub idle: u64,
}

impl Occupancy {
    /// Fraction of the window with both lanes issuing.
    #[must_use]
    pub fn overlap_frac(&self) -> f64 {
        if self.window == 0 {
            0.0
        } else {
            self.overlap as f64 / self.window as f64
        }
    }
}

#[derive(Clone, Debug, Default)]
struct HartProfile {
    /// Core-slot issue cycles (sorted; at most one issue per cycle).
    core: Vec<u64>,
    /// Sequencer issue cycles (sorted; at most one replay per cycle).
    frep: Vec<u64>,
    /// Lost cycles per cause.
    stalls: BTreeMap<StallCause, u64>,
}

/// An analyzed event stream: per-hart lane activity, stall attribution and
/// IPC extraction over arbitrary cycle windows.
#[derive(Clone, Debug)]
pub struct Profile {
    cycles: u64,
    harts: BTreeMap<u8, HartProfile>,
}

impl Profile {
    /// Analyzes `events` over a run of `cycles` total cycles.
    #[must_use]
    pub fn new(events: &[TraceEvent], cycles: u64) -> Self {
        let mut harts: BTreeMap<u8, HartProfile> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                EventKind::Issue { lane, .. } => {
                    let h = harts.entry(ev.hart).or_default();
                    if lane.is_core_slot() {
                        h.core.push(ev.cycle);
                    } else {
                        h.frep.push(ev.cycle);
                    }
                }
                EventKind::Stall { cause, cycles: n } => {
                    *harts.entry(ev.hart).or_default().stalls.entry(cause).or_insert(0) +=
                        u64::from(n);
                }
                _ => {}
            }
        }
        for h in harts.values_mut() {
            h.core.sort_unstable();
            h.frep.sort_unstable();
        }
        Profile { cycles, harts }
    }

    /// Total cycles of the analyzed run.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Harts that produced issue or stall events, ascending.
    #[must_use]
    pub fn harts(&self) -> Vec<u8> {
        self.harts.keys().copied().collect()
    }

    /// Lane occupancy of `hart` over the full run.
    #[must_use]
    pub fn occupancy(&self, hart: u8) -> Occupancy {
        self.occupancy_in(hart, 0..self.cycles)
    }

    /// Lane occupancy of `hart` over a cycle window.
    #[must_use]
    pub fn occupancy_in(&self, hart: u8, window: Range<u64>) -> Occupancy {
        let len = window.end.saturating_sub(window.start);
        let Some(h) = self.harts.get(&hart) else {
            return Occupancy { window: len, core_busy: 0, frep_busy: 0, overlap: 0, idle: len };
        };
        let core = slice_in(&h.core, &window);
        let frep = slice_in(&h.frep, &window);
        let overlap = sorted_intersection(core, frep);
        let core_busy = core.len() as u64;
        let frep_busy = frep.len() as u64;
        Occupancy {
            window: len,
            core_busy,
            frep_busy,
            overlap,
            idle: len.saturating_sub(core_busy + frep_busy - overlap),
        }
    }

    /// Lost cycles attributed to `cause`, summed over all harts (or one).
    #[must_use]
    pub fn stall_cycles(&self, hart: Option<u8>, cause: StallCause) -> u64 {
        self.harts
            .iter()
            .filter(|(h, _)| hart.is_none_or(|want| **h == want))
            .map(|(_, p)| p.stalls.get(&cause).copied().unwrap_or(0))
            .sum()
    }

    /// The full stall-cause decomposition (every cause, zero included),
    /// summed over all harts (or one).
    #[must_use]
    pub fn attribution(&self, hart: Option<u8>) -> BTreeMap<StallCause, u64> {
        StallCause::all().into_iter().map(|c| (c, self.stall_cycles(hart, c))).collect()
    }

    /// Instructions issued (both lanes, all harts) inside a cycle window.
    #[must_use]
    pub fn instructions_in(&self, window: &Range<u64>) -> u64 {
        self.harts
            .values()
            .map(|h| (slice_in(&h.core, window).len() + slice_in(&h.frep, window).len()) as u64)
            .sum()
    }

    /// Instructions per cycle over a window. Over the full run
    /// (`0..cycles()`) this reproduces `Stats::ipc()` exactly: issue events
    /// and issue counters are incremented at the same sites.
    #[must_use]
    pub fn ipc_in(&self, window: &Range<u64>) -> f64 {
        let len = window.end.saturating_sub(window.start);
        if len == 0 {
            0.0
        } else {
            self.instructions_in(window) as f64 / len as f64
        }
    }

    /// Detects the steady-state window: the longest run of fixed-size cycle
    /// bins sustaining near-peak issue throughput — the per-iteration regime
    /// the paper's steady-state IPC figures describe — trimming warm-up
    /// (loads, SSR/FREP configuration), phase boundaries (fences, per-block
    /// reconfiguration) and cool-down (reduction, result stores). The
    /// near-peak threshold relaxes from 90% to 50% of the best bin until a
    /// long-enough run exists; falls back to the full run when the run is
    /// too short to bin or never settles.
    #[must_use]
    pub fn steady_window(&self) -> Range<u64> {
        const BIN: u64 = 64;
        let full = 0..self.cycles;
        let bins = self.cycles / BIN;
        if bins < 4 {
            return full;
        }
        let counts: Vec<u64> =
            (0..bins).map(|b| self.instructions_in(&(b * BIN..(b + 1) * BIN))).collect();
        let peak = *counts.iter().max().expect("at least four bins");
        if peak == 0 {
            return full;
        }
        let min_len = (bins as usize / 8).max(4);
        for tenths in (5..=9).rev() {
            let threshold = peak * tenths / 10;
            let (mut best, mut cur) = ((0usize, 0usize), (0usize, 0usize));
            for (i, &c) in counts.iter().enumerate() {
                if c >= threshold {
                    if cur.1 == 0 {
                        cur.0 = i;
                    }
                    cur.1 += 1;
                    if cur.1 > best.1 {
                        best = cur;
                    }
                } else {
                    cur.1 = 0;
                }
            }
            if best.1 >= min_len {
                return (best.0 as u64 * BIN)..((best.0 + best.1) as u64 * BIN);
            }
        }
        full
    }

    /// IPC over the detected steady-state window.
    #[must_use]
    pub fn steady_ipc(&self) -> f64 {
        self.ipc_in(&self.steady_window())
    }

    /// Busy intervals `[start, end)` of one lane of one hart, merging
    /// consecutive busy cycles (`frep` selects the sequencer lane).
    #[must_use]
    pub fn intervals(&self, hart: u8, frep: bool) -> Vec<(u64, u64)> {
        let Some(h) = self.harts.get(&hart) else { return Vec::new() };
        merge_consecutive(if frep { &h.frep } else { &h.core })
    }

    /// A fixed-width two-row ASCII occupancy timeline of `hart` over
    /// `window` — the terminal-friendly equivalent of the Perfetto view.
    /// Each column covers `ceil(window / width)` cycles; `█` marks a column
    /// with any issue in that lane, `·` an idle one.
    #[must_use]
    pub fn ascii_timeline(&self, hart: u8, window: &Range<u64>, width: usize) -> String {
        let len = window.end.saturating_sub(window.start);
        if len == 0 || width == 0 {
            return String::new();
        }
        let per_col = len.div_ceil(width as u64);
        let cols = len.div_ceil(per_col) as usize;
        let row = |frep: bool, label: &str| {
            let mut line = format!("{label:<5}");
            for c in 0..cols {
                let start = window.start + c as u64 * per_col;
                let col = start..(start + per_col).min(window.end);
                let occ = self.occupancy_in(hart, col);
                let busy = if frep { occ.frep_busy } else { occ.core_busy };
                line.push(if busy > 0 { '█' } else { '·' });
            }
            line
        };
        let mut out = row(false, "core");
        out.push('\n');
        out.push_str(&row(true, "frep"));
        out.push('\n');
        out
    }
}

/// The sub-slice of a sorted cycle list falling inside `window`.
fn slice_in<'a>(cycles: &'a [u64], window: &Range<u64>) -> &'a [u64] {
    let lo = cycles.partition_point(|&c| c < window.start);
    let hi = cycles.partition_point(|&c| c < window.end);
    &cycles[lo..hi]
}

/// Number of values present in both sorted slices.
fn sorted_intersection(a: &[u64], b: &[u64]) -> u64 {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Merges a sorted cycle list into `[start, end)` intervals.
fn merge_consecutive(cycles: &[u64]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &c in cycles {
        match out.last_mut() {
            Some(last) if last.1 == c => last.1 = c + 1,
            _ => out.push((c, c + 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Lane;
    use snitch_riscv::inst::Inst;

    fn issue(cycle: u64, hart: u8, lane: Lane) -> TraceEvent {
        TraceEvent { cycle, hart, kind: EventKind::Issue { lane, pc: Some(0), inst: Inst::NOP } }
    }

    fn stall(cycle: u64, hart: u8, cause: StallCause, n: u32) -> TraceEvent {
        TraceEvent { cycle, hart, kind: EventKind::Stall { cause, cycles: n } }
    }

    #[test]
    fn occupancy_counts_overlap() {
        // Cycles: 0 int, 1 int+frep, 2 frep, 3 idle.
        let events = [
            issue(0, 0, Lane::Int),
            issue(1, 0, Lane::FpCore),
            issue(1, 0, Lane::FpSeq),
            issue(2, 0, Lane::FpSeq),
        ];
        let p = Profile::new(&events, 4);
        let occ = p.occupancy(0);
        assert_eq!(occ.core_busy, 2);
        assert_eq!(occ.frep_busy, 2);
        assert_eq!(occ.overlap, 1);
        assert_eq!(occ.idle, 1);
        assert_eq!(occ.overlap_frac(), 0.25);
        assert_eq!(p.instructions_in(&(0..4)), 4);
        assert_eq!(p.ipc_in(&(0..4)), 1.0);
        assert_eq!(p.intervals(0, false), vec![(0, 2)]);
        assert_eq!(p.intervals(0, true), vec![(1, 3)]);
    }

    #[test]
    fn attribution_sums_per_cause_and_hart() {
        let events = [
            stall(0, 0, StallCause::IntRaw, 1),
            stall(1, 0, StallCause::Branch, 2),
            stall(1, 1, StallCause::IntRaw, 1),
        ];
        let p = Profile::new(&events, 8);
        assert_eq!(p.stall_cycles(None, StallCause::IntRaw), 2);
        assert_eq!(p.stall_cycles(Some(0), StallCause::IntRaw), 1);
        assert_eq!(p.stall_cycles(None, StallCause::Branch), 2);
        let attr = p.attribution(None);
        assert_eq!(attr.len(), 13, "every cause is present");
        assert_eq!(attr[&StallCause::Fence], 0);
    }

    #[test]
    fn steady_window_trims_ramp() {
        // 16 bins of 64 cycles: bins 0-1 cold (no issues), 2..=13 steady
        // (one issue per cycle), 14-15 cold again.
        let mut events = Vec::new();
        for c in 128..896 {
            events.push(issue(c, 0, Lane::Int));
        }
        let p = Profile::new(&events, 1024);
        let w = p.steady_window();
        assert_eq!(w, 128..896);
        assert_eq!(p.steady_ipc(), 1.0);
        // Full-run IPC is diluted by the cold bins.
        assert!(p.ipc_in(&(0..1024)) < 1.0);
    }

    #[test]
    fn short_runs_fall_back_to_the_full_window() {
        let p = Profile::new(&[issue(1, 0, Lane::Int)], 100);
        assert_eq!(p.steady_window(), 0..100);
    }

    #[test]
    fn ascii_timeline_marks_lanes() {
        let events = [issue(0, 0, Lane::Int), issue(2, 0, Lane::FpSeq)];
        let p = Profile::new(&events, 4);
        let art = p.ascii_timeline(0, &(0..4), 80);
        assert_eq!(art, "core █···\nfrep ··█·\n");
    }
}
