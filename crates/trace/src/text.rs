//! Annotated text trace: one line per event — cycle, hart, lane tag,
//! program counter (where known), disassembly or stall cause.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent, CLUSTER_HART};

/// Renders an event stream as an annotated text trace, stably sorted by
/// cycle (emission order breaks ties, so per-cycle ordering is the
/// deterministic hart-major order the cluster stepped in).
#[must_use]
pub fn render(events: &[TraceEvent]) -> String {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.cycle);
    let mut out = String::with_capacity(ordered.len() * 48 + 64);
    out.push_str("#     cycle hart lane   pc          event\n");
    for ev in ordered {
        let hart =
            if ev.hart == CLUSTER_HART { "clu".to_string() } else { format!("h{}", ev.hart) };
        let (tag, pc, what) = describe(&ev.kind);
        let _ = writeln!(out, "{:>11} {hart:<4} {tag:<6} {pc:<11} {what}", ev.cycle);
    }
    out
}

/// `(lane tag, pc column, description)` of one event.
fn describe(kind: &EventKind) -> (&'static str, String, String) {
    match *kind {
        EventKind::Issue { lane, pc, inst } => {
            (lane.tag(), pc.map_or_else(String::new, |pc| format!("{pc:#010x}")), inst.to_string())
        }
        EventKind::Retire { lane, inst } => {
            ("ret", String::new(), format!("{inst}  [{}]", lane.tag()))
        }
        EventKind::Stall { cause, cycles } => {
            ("stall", String::new(), format!("{cause} ({cycles})"))
        }
        EventKind::SsrBeat { ssr, count } => {
            ("ssr", String::new(), format!("ssr{ssr} moved {count} element(s)"))
        }
        EventKind::BankConflicts { count } => {
            ("tcdm", String::new(), format!("{count} new bank conflict(s)"))
        }
        EventKind::DmaActive { count } => {
            ("dma", String::new(), format!("{count} TCDM access(es)"))
        }
        EventKind::BarrierArrive => ("bar", String::new(), "barrier arrive".to_string()),
        EventKind::BarrierRelease => ("bar", String::new(), "barrier release".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Lane, StallCause};
    use snitch_riscv::inst::Inst;

    #[test]
    fn renders_sorted_annotated_lines() {
        let events = [
            TraceEvent {
                cycle: 7,
                hart: 0,
                kind: EventKind::Retire { lane: Lane::FpCore, inst: Inst::NOP },
            },
            TraceEvent {
                cycle: 2,
                hart: 0,
                kind: EventKind::Issue { lane: Lane::Int, pc: Some(0x8000_0004), inst: Inst::NOP },
            },
            TraceEvent {
                cycle: 2,
                hart: 1,
                kind: EventKind::Stall { cause: StallCause::WbPort, cycles: 1 },
            },
        ];
        let text = render(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header plus three events");
        assert!(lines[1].contains("0x80000004") && lines[1].contains("addi zero, zero, 0"));
        assert!(lines[2].contains("wb_port (1)"));
        assert!(lines[3].contains("ret"), "retire sorted after issue");
    }
}
