//! # snitch-trace — cycle-accurate tracing and dual-issue profiling
//!
//! The simulator's aggregate [`Stats`] counters can report a final IPC but
//! not *where* a kernel overlaps, stalls or serializes. This crate is the
//! observability layer underneath those counters:
//!
//! * [`event`] — the typed event vocabulary: issue/retire per lane, stalls
//!   with a cause from the [`event::StallCause`] taxonomy (one variant per
//!   `Stats::stall_*` counter), SSR stream beats, TCDM bank conflicts, DMA
//!   activity and barrier arrive/release, all tagged with hart and cycle;
//! * [`tracer`] — the [`Tracer`] event collector the simulator's units emit
//!   into. The hook is a single `Option` branch when tracing is off: no
//!   event is constructed and nothing allocates;
//! * [`profile`] — analyzers that turn an event stream into the paper's
//!   figures: per-cycle dual-issue occupancy (integer lane vs FREP lane),
//!   stall-cause attribution that cross-checks `Stats` counter-for-counter,
//!   and automatic steady-state window detection for IPC extraction;
//! * [`chrome`] — a Chrome trace-event JSON sink (loadable in Perfetto, one
//!   track per hart lane) plus a schema validator;
//! * [`text`] — an annotated text trace (cycle, pc, disassembly, stall
//!   cause) for terminals and diffs.
//!
//! The crate depends only on `snitch-riscv` (for [`Inst`] and its
//! disassembly); `snitch-sim` depends on it to emit events, and the engine
//! and drivers consume the analyzers and sinks.
//!
//! [`Stats`]: https://docs.rs/snitch-sim
//! [`Inst`]: snitch_riscv::inst::Inst

#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod profile;
pub mod text;
pub mod tracer;

pub use event::{EventKind, Lane, StallCause, TraceEvent, CLUSTER_HART};
pub use profile::{Occupancy, Profile};
pub use tracer::Tracer;
