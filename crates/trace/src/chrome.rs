//! Chrome trace-event JSON sink (the format Perfetto and `chrome://tracing`
//! load) plus a dependency-free schema validator.
//!
//! Track layout: one *process* per hart (`pid` = hart id, `pid` 255 = the
//! cluster-shared units) and one *thread* per lane:
//!
//! | tid | track        | events                                   |
//! |-----|--------------|------------------------------------------|
//! | 0   | `core issue` | every core-slot issue (`X`, 1 cycle) and barrier instants (`i`) |
//! | 1   | `frep`       | every sequencer replay (`X`, 1 cycle)    |
//! | 2   | `fpu retire` | FPU completions (`X`, 1 cycle)           |
//! | 3   | `stall`      | lost issue slots (`X`, duration = lost cycles, name = cause) |
//!
//! SSR beats, DMA activity and TCDM bank conflicts render as counter (`C`)
//! series. Timestamps are cycles (1 cycle = 1 "µs" on the Perfetto axis).

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent, CLUSTER_HART};

const TID_CORE: u8 = 0;
const TID_FREP: u8 = 1;
const TID_RETIRE: u8 = 2;
const TID_STALL: u8 = 3;

/// Incremental Chrome trace-event document builder: the shared assembly
/// layer under every trace-event sink in the workspace (the cycle-trace
/// [`render`] here and the host-span export in `snitch-telemetry`).
///
/// The builder owns the document framing — the `traceEvents` array, the
/// one-event-per-line layout, separators, and the closing `otherData`
/// stanza — so every sink produces documents with identical framing that
/// [`validate`] and Perfetto both accept. Event helpers emit keys in the
/// fixed order the golden tests pin (`ph`, `pid`, `tid`, `ts`, ...).
#[derive(Debug)]
pub struct Doc {
    out: String,
    first: bool,
}

impl Default for Doc {
    fn default() -> Self {
        Doc::new()
    }
}

impl Doc {
    /// An empty document (header written, no events).
    #[must_use]
    pub fn new() -> Self {
        Doc::with_capacity(256)
    }

    /// An empty document with a pre-sized output buffer.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut out = String::with_capacity(capacity);
        out.push_str("{\"traceEvents\":[");
        Doc { out, first: true }
    }

    /// Appends one pre-rendered event object (a complete `{...}` JSON
    /// value, no trailing separator).
    pub fn push(&mut self, event_json: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.out.push('\n');
        self.out.push_str(event_json);
        self.first = false;
    }

    /// Emits a `process_name` metadata record for `pid`.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.push(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":{}}}}}",
            escape(name)
        ));
    }

    /// Emits a `thread_name` metadata record for `(pid, tid)`.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.push(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            escape(name)
        ));
    }

    /// Emits a complete (`ph:"X"`) duration event. `args_json`, when given,
    /// must be a rendered JSON object (e.g. `{"job":"exp/base"}`).
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        ts: u64,
        dur: u64,
        name: &str,
        args_json: Option<&str>,
    ) {
        let mut line = format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"name\":{}",
            escape(name)
        );
        if let Some(args) = args_json {
            let _ = write!(line, ",\"args\":{args}");
        }
        line.push('}');
        self.push(&line);
    }

    /// Emits a thread-scoped instant (`ph:"i"`, `s:"t"`) event.
    pub fn instant(&mut self, pid: u32, tid: u32, ts: u64, name: &str) {
        self.push(&format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":{}}}",
            escape(name)
        ));
    }

    /// Emits a counter (`ph:"C"`) sample: series `name`, one `field: value`
    /// argument.
    pub fn counter(&mut self, pid: u32, ts: u64, name: &str, field: &str, value: u64) {
        self.push(&format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"ts\":{ts},\"name\":{},\
             \"args\":{{\"{field}\":{value}}}}}",
            escape(name)
        ));
    }

    /// Closes the document, labeling the timestamp unit in `otherData`
    /// (cycle traces use `"cycle"`, host-span traces `"us"`).
    #[must_use]
    pub fn finish(mut self, time_unit: &str) -> String {
        let _ = write!(
            self.out,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"timeUnit\":\"{time_unit}\"}}}}\n"
        );
        self.out
    }
}

/// Renders an event stream as a complete Chrome trace-event JSON document.
#[must_use]
pub fn render(events: &[TraceEvent]) -> String {
    let mut doc = Doc::with_capacity(events.len() * 96 + 256);

    // Metadata: name every hart process and lane thread that appears.
    let mut harts: Vec<u8> = events.iter().map(|e| e.hart).collect();
    harts.sort_unstable();
    harts.dedup();
    for &h in &harts {
        let pname = if h == CLUSTER_HART { "cluster".to_string() } else { format!("hart{h}") };
        doc.process_name(u32::from(h), &pname);
        if h == CLUSTER_HART {
            continue;
        }
        for (tid, tname) in [
            (TID_CORE, "core issue"),
            (TID_FREP, "frep"),
            (TID_RETIRE, "fpu retire"),
            (TID_STALL, "stall"),
        ] {
            doc.thread_name(u32::from(h), u32::from(tid), tname);
        }
    }

    // Counter samples are only emitted on active cycles; Perfetto holds a
    // counter at its last value, so each series needs a zero sample on the
    // first inactive cycle after activity or idle spans render as busy.
    let sampled: std::collections::HashSet<(u8, CounterSeries, u64)> = events
        .iter()
        .filter_map(|e| counter_series(&e.kind).map(|s| (e.hart, s, e.cycle)))
        .collect();
    let zero_after = |hart: u8, kind: &EventKind, cycle: u64| -> Option<(CounterSeries, u64)> {
        let series = counter_series(kind)?;
        if sampled.contains(&(hart, series, cycle + 1)) {
            return None;
        }
        Some((series, cycle + 1))
    };

    for ev in events {
        let (cycle, hart) = (ev.cycle, u32::from(ev.hart));
        match ev.kind {
            EventKind::Issue { lane, pc, inst } => {
                let tid = if lane.is_core_slot() { TID_CORE } else { TID_FREP };
                let args = pc.map(|pc| format!("{{\"pc\":\"{pc:#010x}\"}}"));
                doc.complete(hart, u32::from(tid), cycle, 1, &inst.to_string(), args.as_deref());
            }
            EventKind::Retire { lane, inst } => {
                let args = format!("{{\"lane\":\"{}\"}}", lane.tag());
                doc.complete(hart, u32::from(TID_RETIRE), cycle, 1, &inst.to_string(), Some(&args));
            }
            EventKind::Stall { cause, cycles } => {
                doc.complete(
                    hart,
                    u32::from(TID_STALL),
                    cycle,
                    u64::from(cycles),
                    &cause.to_string(),
                    None,
                );
            }
            EventKind::SsrBeat { ssr, count } => {
                doc.counter(hart, cycle, &format!("ssr{ssr}"), "beats", u64::from(count));
            }
            EventKind::BankConflicts { count } => {
                doc.counter(hart, cycle, "tcdm_conflicts", "new", u64::from(count));
            }
            EventKind::DmaActive { count } => {
                doc.counter(hart, cycle, "dma", "beats", u64::from(count));
            }
            EventKind::BarrierArrive => {
                doc.instant(hart, u32::from(TID_CORE), cycle, "barrier arrive");
            }
            EventKind::BarrierRelease => {
                doc.instant(hart, u32::from(TID_CORE), cycle, "barrier release");
            }
        }
        if let Some((series, cycle)) = zero_after(ev.hart, &ev.kind, cycle) {
            let (name, field) = series.labels();
            doc.counter(hart, cycle, &name, field, 0);
        }
    }
    doc.finish("cycle")
}

/// Identity of one counter series (per hart).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CounterSeries {
    Ssr(u8),
    Conflicts,
    Dma,
}

impl CounterSeries {
    /// `(track name, args field)` of the series' samples.
    fn labels(self) -> (String, &'static str) {
        match self {
            CounterSeries::Ssr(i) => (format!("ssr{i}"), "beats"),
            CounterSeries::Conflicts => ("tcdm_conflicts".to_string(), "new"),
            CounterSeries::Dma => ("dma".to_string(), "beats"),
        }
    }
}

/// The counter series an event samples, if it is a counter event.
fn counter_series(kind: &EventKind) -> Option<CounterSeries> {
    match *kind {
        EventKind::SsrBeat { ssr, .. } => Some(CounterSeries::Ssr(ssr)),
        EventKind::BankConflicts { .. } => Some(CounterSeries::Conflicts),
        EventKind::DmaActive { .. } => Some(CounterSeries::Dma),
        _ => None,
    }
}

/// JSON string escaping for instruction disassembly and labels.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What [`validate`] found in a well-formed trace document.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Summary {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`ph:"X"`) duration events.
    pub complete: usize,
    /// Counter (`ph:"C"`) samples.
    pub counters: usize,
    /// Instant (`ph:"i"`) events.
    pub instants: usize,
    /// Metadata (`ph:"M"`) records.
    pub metadata: usize,
}

/// Validates a Chrome trace-event document: the whole string must be
/// syntactically valid JSON, the top level must carry a `traceEvents`
/// array, and every event object must carry the keys its phase requires
/// (`X`: `pid`/`tid`/`ts`/`dur`/`name`; `C`: `pid`/`ts`/`name`/`args`;
/// `i`: `pid`/`ts`/`name`; `M`: `pid`/`name`/`args`).
///
/// # Errors
///
/// Returns a description of the first syntax or schema violation.
pub fn validate(json: &str) -> Result<Summary, String> {
    let mut p = Parser { s: json.as_bytes(), i: 0 };
    let summary = p.document()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(summary)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.s.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == want => {
                self.i += 1;
                Ok(())
            }
            other => Err(format!(
                "expected `{}` at offset {}, found {:?}",
                want as char,
                self.i,
                other.map(|b| b as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'u') => {
                            if self.i + 4 >= self.s.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            self.i += 5;
                            out.push('?');
                        }
                        Some(&c) => {
                            self.i += 1;
                            out.push(c as char);
                        }
                        None => return Err("truncated escape".to_string()),
                    }
                }
                Some(&c) => {
                    self.i += 1;
                    out.push(c as char);
                }
            }
        }
    }

    /// Skips any JSON value, validating its syntax.
    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => {
                self.object(|_, _| Ok(()))?;
                Ok(())
            }
            Some(b'[') => {
                self.eat(b'[')?;
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad array at offset {}: {other:?}", self.i)),
                    }
                }
            }
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                self.i += 1;
                while self.s.get(self.i).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.i += 1;
                }
                Ok(())
            }
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    /// Parses an object, invoking `on_key(key, parser)` positioned at each
    /// value; the callback must consume the value (default: `value()`).
    fn object(
        &mut self,
        mut on_key: impl FnMut(&str, &mut Self) -> Result<(), String>,
    ) -> Result<Vec<String>, String> {
        self.eat(b'{')?;
        let mut keys = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(keys);
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let before = self.i;
            on_key(&key, self)?;
            if self.i == before {
                self.value()?;
            }
            keys.push(key);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(keys);
                }
                other => return Err(format!("bad object at offset {}: {other:?}", self.i)),
            }
        }
    }

    fn document(&mut self) -> Result<Summary, String> {
        let mut summary = Summary::default();
        let mut saw_trace_events = false;
        self.object(|key, p| {
            if key == "traceEvents" {
                saw_trace_events = true;
                p.eat(b'[')?;
                if p.peek() == Some(b']') {
                    p.i += 1;
                    return Ok(());
                }
                loop {
                    p.event(&mut summary)?;
                    match p.peek() {
                        Some(b',') => p.i += 1,
                        Some(b']') => {
                            p.i += 1;
                            return Ok(());
                        }
                        other => {
                            return Err(format!("bad traceEvents at offset {}: {other:?}", p.i))
                        }
                    }
                }
            }
            Ok(())
        })?;
        if !saw_trace_events {
            return Err("document lacks a `traceEvents` array".to_string());
        }
        Ok(summary)
    }

    fn event(&mut self, summary: &mut Summary) -> Result<(), String> {
        let mut ph = String::new();
        let keys = self.object(|key, p| {
            if key == "ph" {
                ph = p.string()?;
            }
            Ok(())
        })?;
        let has = |k: &str| keys.iter().any(|key| key == k);
        let require = |wanted: &[&str]| -> Result<(), String> {
            for k in wanted {
                if !has(k) {
                    return Err(format!("`{ph}` event #{} lacks key `{k}`", summary.events));
                }
            }
            Ok(())
        };
        match ph.as_str() {
            "X" => {
                require(&["pid", "tid", "ts", "dur", "name"])?;
                summary.complete += 1;
            }
            "C" => {
                require(&["pid", "ts", "name", "args"])?;
                summary.counters += 1;
            }
            "i" => {
                require(&["pid", "ts", "name"])?;
                summary.instants += 1;
            }
            "M" => {
                require(&["pid", "name", "args"])?;
                summary.metadata += 1;
            }
            other => return Err(format!("unknown event phase `{other}`")),
        }
        summary.events += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Lane, StallCause};
    use snitch_riscv::inst::Inst;

    #[test]
    fn rendered_trace_validates() {
        let events = [
            TraceEvent {
                cycle: 0,
                hart: 0,
                kind: EventKind::Issue { lane: Lane::Int, pc: Some(0x8000_0000), inst: Inst::NOP },
            },
            TraceEvent {
                cycle: 1,
                hart: 0,
                kind: EventKind::Issue { lane: Lane::FpSeq, pc: None, inst: Inst::NOP },
            },
            TraceEvent {
                cycle: 1,
                hart: 0,
                kind: EventKind::Stall { cause: StallCause::Branch, cycles: 2 },
            },
            TraceEvent { cycle: 2, hart: 0, kind: EventKind::SsrBeat { ssr: 1, count: 1 } },
            TraceEvent { cycle: 2, hart: CLUSTER_HART, kind: EventKind::DmaActive { count: 4 } },
            TraceEvent { cycle: 3, hart: 0, kind: EventKind::BarrierArrive },
            TraceEvent { cycle: 4, hart: 0, kind: EventKind::BarrierRelease },
            TraceEvent {
                cycle: 5,
                hart: CLUSTER_HART,
                kind: EventKind::BankConflicts { count: 2 },
            },
            TraceEvent {
                cycle: 6,
                hart: 0,
                kind: EventKind::Retire { lane: Lane::FpSeq, inst: Inst::NOP },
            },
        ];
        let json = render(&events);
        let summary = validate(&json).expect("rendered trace must validate");
        assert_eq!(summary.complete, 4, "two issues, one stall, one retire");
        assert_eq!(summary.counters, 6, "each active sample is followed by a zero sample");
        assert_eq!(summary.instants, 2);
        assert!(summary.metadata >= 5, "process + 4 thread names for hart 0, plus cluster");
        assert!(json.contains("\"name\":\"frep\""), "one track per hart lane");
        assert!(json.contains("{\"beats\":0}"), "idle cycles drop the counter back to zero");
    }

    #[test]
    fn counter_series_zero_only_after_activity_ends() {
        // Active on cycles 1 and 2, idle from 3: one zero sample at 3, none
        // between the consecutive active samples.
        let events = [
            TraceEvent { cycle: 1, hart: 0, kind: EventKind::SsrBeat { ssr: 0, count: 1 } },
            TraceEvent { cycle: 2, hart: 0, kind: EventKind::SsrBeat { ssr: 0, count: 2 } },
        ];
        let json = render(&events);
        assert_eq!(validate(&json).unwrap().counters, 3);
        assert!(json.contains("\"ts\":3,\"name\":\"ssr0\",\"args\":{\"beats\":0}"));
        assert!(!json.contains("\"ts\":2,\"name\":\"ssr0\",\"args\":{\"beats\":0}"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("{}").is_err(), "missing traceEvents");
        assert!(validate("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err(), "X without ts");
        assert!(validate("{\"traceEvents\":[").is_err(), "truncated");
        assert!(validate("{\"traceEvents\":[{\"ph\":\"Z\",\"pid\":0}]}").is_err(), "unknown phase");
        let ok = "{\"traceEvents\":[],\"otherData\":{\"x\":[1,2,null,true,-3.5e2]}}";
        assert_eq!(validate(ok).unwrap().events, 0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
