//! The event collector the simulator emits into.

use crate::event::{EventKind, TraceEvent};

/// Collects [`TraceEvent`]s during a simulation run.
///
/// A cluster either carries no tracer at all (the untraced hot path: every
/// emission site is one `Option` branch, no event is constructed, nothing
/// allocates) or carries one of these. A *paused* tracer keeps the hook
/// plumbed in but records nothing — the state the overhead guard in
/// `bench_sim` measures against the untraced path.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// A recording tracer.
    #[must_use]
    pub fn new() -> Self {
        Tracer { enabled: true, events: Vec::new() }
    }

    /// A tracer that is attached but records nothing (for overhead
    /// measurements of the disabled hook).
    #[must_use]
    pub fn paused() -> Self {
        Tracer { enabled: false, events: Vec::new() }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when paused).
    #[inline]
    pub fn record(&mut self, cycle: u64, hart: u8, kind: EventKind) {
        if self.enabled {
            self.events.push(TraceEvent { cycle, hart, kind });
        }
    }

    /// The recorded events, in emission order (per-cycle, hart-major — the
    /// deterministic order the cluster steps its units in).
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the tracer, returning the recorded events.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallCause;

    #[test]
    fn records_in_order() {
        let mut t = Tracer::new();
        t.record(3, 0, EventKind::Stall { cause: StallCause::IntRaw, cycles: 1 });
        t.record(4, 1, EventKind::BarrierArrive);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].cycle, 3);
        assert_eq!(t.events()[1].hart, 1);
    }

    #[test]
    fn paused_tracer_records_nothing() {
        let mut t = Tracer::paused();
        t.record(0, 0, EventKind::BarrierArrive);
        assert!(t.is_empty());
        assert!(!t.is_recording());
    }
}
