//! Step 1: data-flow-graph construction and dependency classification.
//!
//! Builds the DFG of a straight-line loop body (one iteration of the kernel,
//! like Figure 1b/1c of the paper) and classifies every dependency between
//! the integer and floating-point *threads*:
//!
//! * **Type 1** — dynamic memory dependencies, from FP load/stores whose
//!   address is computed inside the body. A sub-class, *affine* Type 1, is
//!   recognised when the address is only advanced by constant pointer bumps
//!   (`addi p, p, c`): those streams can be absorbed by an SSR address
//!   generator outright.
//! * **Type 2** — static memory dependencies, from FP load/stores whose
//!   address is a loop-invariant base plus constant offset (spill buffers).
//! * **Type 3** — register dependencies through FP conversion, move and
//!   comparison instructions that touch both register files.
//!
//! Memory disambiguation uses symbolic bases: two accesses may alias only if
//! they are rooted at the same live-in base register (distinct kernel
//! pointers are assumed not to alias, as with C `restrict` arguments).

use std::collections::HashMap;

use snitch_riscv::inst::Inst;
use snitch_riscv::meta::RegRef;
use snitch_riscv::ops::AluImmOp;
use snitch_riscv::reg::IntReg;

/// Which thread (register file + instruction set) a node belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Domain {
    /// Integer thread (RV32I/M instructions and FREP/SSR/DMA config).
    Int,
    /// Floating-point thread (instructions executed by the FPSS).
    Fp,
}

/// Cross-thread dependency classification (paper §II-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CrossDepType {
    /// Dynamic memory dependency via an FP load/store with a computed
    /// address; `affine` records whether the address evolves only by
    /// constant pointer increments.
    Type1 {
        /// Whether the address stream is an affine induction pattern.
        affine: bool,
    },
    /// Static memory dependency via an FP load/store at a loop-invariant
    /// address.
    Type2,
    /// Register dependency via a cross-register-file instruction.
    Type3,
}

/// Dependency kind on a DFG edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Value flows through a register.
    Reg(RegRef),
    /// Value flows through memory (store → load); `base` identifies the
    /// buffer object when the symbolic analysis could root the address at a
    /// live-in pointer.
    Mem {
        /// Live-in base register of the buffer, if known.
        base: Option<IntReg>,
    },
}

impl DepKind {
    /// Whether this is a memory-carried dependency.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, DepKind::Mem { .. })
    }
}

/// One DFG edge: `from` produces a value `to` consumes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DepEdge {
    /// Producer node (instruction index).
    pub from: usize,
    /// Consumer node.
    pub to: usize,
    /// What carries the value.
    pub kind: DepKind,
    /// Cross-thread classification, when the edge connects the two domains
    /// (or flows through an FP load/store).
    pub cross: Option<CrossDepType>,
}

/// The data-flow graph of one loop iteration.
#[derive(Clone, Debug)]
pub struct Dfg {
    insts: Vec<Inst>,
    domains: Vec<Domain>,
    edges: Vec<DepEdge>,
    live_in: Vec<RegRef>,
    live_out: Vec<RegRef>,
    fp_accesses: Vec<FpAccess>,
}

/// Symbolic address of a memory access: a base register (as live-in value)
/// plus constant offset, or an opaque dynamic value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SymAddr {
    /// `live-in base + constant` (the base may have been bumped by the
    /// tracked constant amount within the body).
    Static { base: IntReg, offset: i32 },
    /// `live-in base + data-dependent offset` (e.g. a table index): stays
    /// within the base's object but at an unknown offset.
    Indexed { base: IntReg },
    /// Fully computed address.
    Dynamic,
}

/// Address-pattern classification of one FP memory access, deciding how
/// Step 6 maps it to a streamer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessPattern {
    /// Affine induction stream (`x[i]`/`y[i]` with pointer bumps): paper
    /// Type 1 with an affine address stream — absorbed directly by an SSR
    /// address generator.
    InductionStream,
    /// Loop-invariant address (spill buffer): paper Type 2 — becomes a
    /// contiguous block stream after tiling.
    SpillStatic,
    /// Data-dependent address (table lookups): paper Type 1 general case —
    /// requires software prefetching (Fig. 1h) or an ISSR.
    Indirect,
}

/// One FP memory access with its mapping classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FpAccess {
    /// Instruction index of the FP load/store.
    pub node: usize,
    /// Whether the access is a store.
    pub is_store: bool,
    /// Address-pattern classification.
    pub pattern: AccessPattern,
}

impl Dfg {
    /// Builds the DFG of `body` (one loop iteration, straight-line code).
    #[must_use]
    pub fn build(body: &[Inst]) -> Self {
        let domains: Vec<Domain> =
            body.iter().map(|i| if i.is_fp() { Domain::Fp } else { Domain::Int }).collect();

        // Track, per integer register, a symbolic value for address math:
        // either "live-in base + constant" or opaque.
        #[derive(Clone, Copy)]
        enum SymVal {
            BasePlus(IntReg, i32, bool), // base, offset, bumped-only (affine)
            BaseIndexed(IntReg),         // base + data-dependent offset
            Opaque,
        }
        let mut sym: HashMap<IntReg, SymVal> = HashMap::new();

        let mut last_def: HashMap<RegRef, usize> = HashMap::new();
        let mut live_in: Vec<RegRef> = Vec::new();
        let mut edges: Vec<DepEdge> = Vec::new();
        let mut fp_accesses: Vec<FpAccess> = Vec::new();
        // Memory accesses seen so far: (node, is_store, addr, bytes, fp-side)
        let mut mem_ops: Vec<(usize, bool, SymAddr, u32, bool)> = Vec::new();

        let addr_of = |inst: &Inst,
                       sym: &HashMap<IntReg, SymVal>|
         -> Option<(SymAddr, u32, bool)> {
            let (rs1, offset, bytes, fp) = match *inst {
                Inst::Load { op, rs1, offset, .. } => (rs1, offset, op.size(), false),
                Inst::Store { op, rs1, offset, .. } => (rs1, offset, op.size(), false),
                Inst::Flw { rs1, offset, .. } => (rs1, offset, 4, true),
                Inst::Fsw { rs1, offset, .. } => (rs1, offset, 4, true),
                Inst::Fld { rs1, offset, .. } => (rs1, offset, 8, true),
                Inst::Fsd { rs1, offset, .. } => (rs1, offset, 8, true),
                _ => return None,
            };
            let addr = match sym.get(&rs1) {
                None => SymAddr::Static { base: rs1, offset },
                Some(SymVal::BasePlus(b, c, _)) => SymAddr::Static { base: *b, offset: c + offset },
                Some(SymVal::BaseIndexed(b)) => SymAddr::Indexed { base: *b },
                Some(SymVal::Opaque) => SymAddr::Dynamic,
            };
            Some((addr, bytes, fp))
        };

        // Live-in pointers that the body itself advances (`addi p, p, c`)
        // carry induction streams.
        let bumped_bases: std::collections::HashSet<IntReg> = body
            .iter()
            .filter_map(|i| match *i {
                Inst::OpImm { op: AluImmOp::Addi, rd, rs1, imm } if rd == rs1 && imm != 0 => {
                    Some(rd)
                }
                _ => None,
            })
            .collect();

        for (i, inst) in body.iter().enumerate() {
            // Register uses → edges from last defs (or live-in).
            for u in inst.uses() {
                match last_def.get(&u) {
                    Some(&d) => {
                        let cross =
                            if domains[d] == domains[i] { None } else { Some(CrossDepType::Type3) };
                        edges.push(DepEdge { from: d, to: i, kind: DepKind::Reg(u), cross });
                    }
                    None => {
                        if !live_in.contains(&u) {
                            live_in.push(u);
                        }
                    }
                }
            }

            // Memory dependencies.
            if let Some((addr, bytes, fp)) = addr_of(inst, &sym) {
                let is_store =
                    matches!(inst, Inst::Store { .. } | Inst::Fsw { .. } | Inst::Fsd { .. });
                for &(j, j_store, j_addr, j_bytes, j_fp) in &mem_ops {
                    if !(is_store || j_store) {
                        continue; // load-load never conflicts
                    }
                    if !may_alias(addr, bytes, j_addr, j_bytes) {
                        continue;
                    }
                    let cross = if fp || j_fp {
                        let affine_of = |s: SymAddr| match s {
                            SymAddr::Static { base, .. } => {
                                if bumped_bases.contains(&base) {
                                    Some(true) // induction stream
                                } else {
                                    None // genuinely static
                                }
                            }
                            SymAddr::Indexed { .. } | SymAddr::Dynamic => Some(false),
                        };
                        let t = match (affine_of(addr), affine_of(j_addr)) {
                            (None, None) => CrossDepType::Type2,
                            (Some(false), _) | (_, Some(false)) => {
                                CrossDepType::Type1 { affine: false }
                            }
                            _ => CrossDepType::Type1 { affine: true },
                        };
                        Some(t)
                    } else {
                        None
                    };
                    let base = match addr {
                        SymAddr::Static { base, .. } | SymAddr::Indexed { base } => Some(base),
                        SymAddr::Dynamic => None,
                    };
                    edges.push(DepEdge { from: j, to: i, kind: DepKind::Mem { base }, cross });
                }
                mem_ops.push((i, is_store, addr, bytes, fp));
                if fp {
                    let pattern = match addr {
                        SymAddr::Static { base, .. } if bumped_bases.contains(&base) => {
                            AccessPattern::InductionStream
                        }
                        SymAddr::Static { .. } => AccessPattern::SpillStatic,
                        SymAddr::Indexed { .. } | SymAddr::Dynamic => AccessPattern::Indirect,
                    };
                    fp_accesses.push(FpAccess { node: i, is_store, pattern });
                }
            }

            // Update symbolic address tracking for integer defs.
            match *inst {
                Inst::OpImm { op: AluImmOp::Addi, rd, rs1, imm } => {
                    let v = match sym.get(&rs1) {
                        None => SymVal::BasePlus(rs1, imm, rd == rs1),
                        Some(SymVal::BasePlus(b, c, bumped)) => {
                            SymVal::BasePlus(*b, c + imm, *bumped && rd == rs1)
                        }
                        Some(SymVal::BaseIndexed(b)) => SymVal::BaseIndexed(*b),
                        Some(SymVal::Opaque) => SymVal::Opaque,
                    };
                    sym.insert(rd, v);
                }
                // `add rd, base, idx`: one known base object + one computed
                // offset stays within the base's object.
                Inst::OpReg { op: snitch_riscv::ops::AluOp::Add, rd, rs1, rs2 } => {
                    let base_of = |r: IntReg, sym: &HashMap<IntReg, SymVal>| match sym.get(&r) {
                        None => Some(r),
                        Some(SymVal::BasePlus(b, _, _) | SymVal::BaseIndexed(b)) => Some(*b),
                        Some(SymVal::Opaque) => None,
                    };
                    let v = match (base_of(rs1, &sym), base_of(rs2, &sym)) {
                        (Some(b), None) | (None, Some(b)) => SymVal::BaseIndexed(b),
                        _ => SymVal::Opaque,
                    };
                    sym.insert(rd, v);
                }
                _ => {
                    for d in inst.defs() {
                        if let RegRef::Int(r) = d {
                            sym.insert(r, SymVal::Opaque);
                        }
                    }
                }
            }

            // Record defs.
            for d in inst.defs() {
                last_def.insert(d, i);
            }
        }

        let live_out: Vec<RegRef> = last_def.keys().copied().collect();
        Dfg { insts: body.to_vec(), domains, edges, live_in, live_out, fp_accesses }
    }

    /// Every FP memory access with its Step 6 mapping classification.
    #[must_use]
    pub fn fp_accesses(&self) -> &[FpAccess] {
        &self.fp_accesses
    }

    /// The instructions (nodes) of the graph.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Per-node thread domain.
    #[must_use]
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// All dependency edges.
    #[must_use]
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges connecting the integer and FP threads (the edges COPIFT must
    /// cut or convert), including cross-thread memory flows.
    #[must_use]
    pub fn cross_edges(&self) -> Vec<DepEdge> {
        self.edges.iter().copied().filter(|e| e.cross.is_some()).collect()
    }

    /// Registers read before being written (loop-carried or parameters).
    #[must_use]
    pub fn live_in(&self) -> &[RegRef] {
        &self.live_in
    }

    /// Registers written by the body (candidates for loop-carried state).
    #[must_use]
    pub fn live_out(&self) -> &[RegRef] {
        &self.live_out
    }

    /// Registers that are both read-before-write and written: loop-carried
    /// state (accumulators, PRNG state, induction pointers).
    #[must_use]
    pub fn loop_carried(&self) -> Vec<RegRef> {
        self.live_in.iter().copied().filter(|r| self.live_out.contains(r)).collect()
    }

    /// Direct predecessors of a node.
    #[must_use]
    pub fn preds(&self, node: usize) -> Vec<usize> {
        self.edges.iter().filter(|e| e.to == node).map(|e| e.from).collect()
    }
}

fn may_alias(a: SymAddr, a_bytes: u32, b: SymAddr, b_bytes: u32) -> bool {
    match (a, b) {
        (SymAddr::Static { base: ba, offset: oa }, SymAddr::Static { base: bb, offset: ob }) => {
            // Distinct live-in bases are assumed not to alias.
            ba == bb && oa < ob + b_bytes as i32 && ob < oa + a_bytes as i32
        }
        // Base-indexed accesses stay within their base object.
        (
            SymAddr::Indexed { base: ba },
            SymAddr::Indexed { base: bb } | SymAddr::Static { base: bb, .. },
        )
        | (SymAddr::Static { base: ba, .. }, SymAddr::Indexed { base: bb }) => ba == bb,
        // A fully dynamic address may alias anything (conservative).
        (SymAddr::Dynamic, _) | (_, SymAddr::Dynamic) => true,
    }
}

/// Test-support fixtures shared across this crate's unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::inst::Inst;
    use snitch_riscv::reg::{FpReg, IntReg};

    /// The paper's Figure 1b expf loop body (one element, pointer bumps
    /// omitted as in the paper's Step 1 discussion).
    pub(crate) fn expf_body() -> Vec<Inst> {
        let mut b = ProgramBuilder::new();
        let x = IntReg::A3; // input pointer (live-in)
        let y = IntReg::A4; // output pointer (live-in)
        let ki = IntReg::S2; // &ki spill slot (live-in)
        let t = IntReg::S3; // &t spill slot (live-in)
        let tbl = IntReg::S4; // exp2 table (live-in)
        b.fld(FpReg::FA3, x, 0); // 1
        b.fmul_d(FpReg::FA3, FpReg::FA3, FpReg::FS4); // 2  x*InvLn2N
        b.fadd_d(FpReg::FA1, FpReg::FA3, FpReg::FS5); // 3  +SHIFT
        b.fsd(FpReg::FA1, ki, 0); // 4
        b.lw(IntReg::A0, ki, 0); // 5
        b.andi(IntReg::A1, IntReg::A0, 0x1f); // 6
        b.slli(IntReg::A1, IntReg::A1, 3); // 7
        b.add(IntReg::A1, tbl, IntReg::A1); // 8
        b.lw(IntReg::A2, IntReg::A1, 0); // 9
        b.lw(IntReg::A1, IntReg::A1, 4); // 10
        b.slli(IntReg::A0, IntReg::A0, 0xf); // 11
        b.sw(IntReg::A2, t, 0); // 12
        b.add(IntReg::A0, IntReg::A0, IntReg::A1); // 13
        b.sw(IntReg::A0, t, 4); // 14
        b.fsub_d(FpReg::FA2, FpReg::FA1, FpReg::FS5); // 15
        b.fsub_d(FpReg::FA3, FpReg::FA3, FpReg::FA2); // 16
        b.fmadd_d(FpReg::FA2, FpReg::FS6, FpReg::FA3, FpReg::FS7); // 17
        b.fld(FpReg::FA0, t, 0); // 18
        b.fmadd_d(FpReg::FA4, FpReg::FS8, FpReg::FA3, FpReg::FS9); // 19
        b.fmul_d(FpReg::FA1, FpReg::FA3, FpReg::FA3); // 20
        b.fmadd_d(FpReg::FA4, FpReg::FA2, FpReg::FA1, FpReg::FA4); // 21
        b.fmul_d(FpReg::FA4, FpReg::FA4, FpReg::FA0); // 22
        b.fsd(FpReg::FA4, y, 0); // 23
        b.build().unwrap().text().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::expf_body;
    use super::*;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::FpReg;

    #[test]
    fn domains_match_instruction_sets() {
        let body = expf_body();
        let dfg = Dfg::build(&body);
        let n_fp = dfg.domains().iter().filter(|d| **d == Domain::Fp).count();
        let n_int = dfg.domains().iter().filter(|d| **d == Domain::Int).count();
        assert_eq!(n_fp, 13);
        assert_eq!(n_int, 10);
    }

    #[test]
    fn expf_cross_edges_match_paper() {
        let body = expf_body();
        let dfg = Dfg::build(&body);
        // Paper Fig. 1c: fsd ki → lw ki (4→5), sw t → fld t (12→18, 14→18).
        // 0-based: 3→4, 11→17, 13→17, all static (Type 2).
        let mem_cross: Vec<(usize, usize)> =
            dfg.cross_edges().iter().filter(|e| e.kind.is_mem()).map(|e| (e.from, e.to)).collect();
        assert_eq!(mem_cross, vec![(3, 4), (11, 17), (13, 17)]);
        for e in dfg.cross_edges() {
            if e.kind.is_mem() {
                assert_eq!(e.cross, Some(CrossDepType::Type2));
            }
        }
    }

    #[test]
    fn type3_detected_for_conversions() {
        let mut b = ProgramBuilder::new();
        b.mul(IntReg::A0, IntReg::A1, IntReg::A2);
        b.fcvt_d_w(FpReg::FA0, IntReg::A0); // int → fp register dependency
        b.fadd_d(FpReg::FA1, FpReg::FA0, FpReg::FA0);
        b.flt_d(IntReg::A3, FpReg::FA1, FpReg::FA0); // fp → int
        b.add(IntReg::A4, IntReg::A3, IntReg::A3);
        let body = b.build().unwrap().text().to_vec();
        let dfg = Dfg::build(&body);
        let t3: Vec<(usize, usize)> = dfg
            .cross_edges()
            .iter()
            .filter(|e| e.cross == Some(CrossDepType::Type3))
            .map(|e| (e.from, e.to))
            .collect();
        assert!(t3.contains(&(0, 1)), "mul → fcvt.d.w");
        assert!(t3.contains(&(3, 4)), "flt.d → add");
    }

    #[test]
    fn type1_detected_for_computed_addresses() {
        // Scatter: FP store at a data-dependent index into a buffer, later
        // read back by the integer thread ⇒ Type 1.
        let mut b = ProgramBuilder::new();
        b.lw(IntReg::A0, IntReg::A1, 0); // load index
        b.slli(IntReg::A0, IntReg::A0, 3);
        b.add(IntReg::A0, IntReg::A2, IntReg::A0); // buf + idx*8
        b.fsd(FpReg::FA0, IntReg::A0, 0); // Type 1 store (not affine)
        b.lw(IntReg::A3, IntReg::A2, 0); // int read of the same object
        let body = b.build().unwrap().text().to_vec();
        let dfg = Dfg::build(&body);
        let t1: Vec<&DepEdge> = dfg
            .edges()
            .iter()
            .filter(|e| matches!(e.cross, Some(CrossDepType::Type1 { affine: false })))
            .collect();
        assert!(
            t1.iter().any(|e| e.from == 3 && e.to == 4),
            "indexed fp store → int load must be a Type 1 edge: {t1:?}"
        );
    }

    #[test]
    fn base_indexed_accesses_do_not_alias_other_objects() {
        // Table lookup via a computed index aliases only its own base
        // object: a store to a different live-in pointer gets no edge.
        let mut b = ProgramBuilder::new();
        b.lw(IntReg::A0, IntReg::A1, 0);
        b.slli(IntReg::A0, IntReg::A0, 3);
        b.add(IntReg::A0, IntReg::A2, IntReg::A0); // table + idx*8
        b.fld(FpReg::FA0, IntReg::A0, 0);
        b.fsd(FpReg::FA0, IntReg::A3, 0); // distinct object
        let body = b.build().unwrap().text().to_vec();
        let dfg = Dfg::build(&body);
        assert!(dfg.edges().iter().all(|e| !e.kind.is_mem()));
    }

    #[test]
    fn access_patterns_classified() {
        // fld through a self-incremented pointer is an induction stream
        // (paper: affine Type 1 → direct SSR mapping); a computed table
        // address is indirect; a fixed-base spill slot is static.
        let mut b = ProgramBuilder::new();
        b.fld(FpReg::FA0, IntReg::A0, 0); // induction stream (bump below)
        b.addi(IntReg::A0, IntReg::A0, 8);
        b.fsd(FpReg::FA0, IntReg::A1, 0); // spill slot
        b.lw(IntReg::A2, IntReg::A1, 0);
        b.slli(IntReg::A2, IntReg::A2, 3);
        b.add(IntReg::A2, IntReg::A3, IntReg::A2);
        b.fld(FpReg::FA1, IntReg::A2, 0); // indirect table access
        let body = b.build().unwrap().text().to_vec();
        let dfg = Dfg::build(&body);
        let patterns: Vec<AccessPattern> = dfg.fp_accesses().iter().map(|a| a.pattern).collect();
        assert_eq!(
            patterns,
            vec![
                AccessPattern::InductionStream,
                AccessPattern::SpillStatic,
                AccessPattern::Indirect
            ]
        );
    }

    #[test]
    fn expf_fp_accesses_are_spills_and_io() {
        let body = expf_body();
        let dfg = Dfg::build(&body);
        // 4 FP memory ops: fld x, fsd ki, fld t, fsd y (pointer bumps are
        // omitted in the Fig. 1b excerpt, so x/y classify as static too).
        assert_eq!(dfg.fp_accesses().len(), 4);
        assert!(dfg.fp_accesses().iter().all(|a| a.pattern == AccessPattern::SpillStatic));
    }

    #[test]
    fn distinct_bases_do_not_alias() {
        let mut b = ProgramBuilder::new();
        b.sw(IntReg::A0, IntReg::A1, 0);
        b.fld(FpReg::FA0, IntReg::A2, 0); // different live-in base
        let body = b.build().unwrap().text().to_vec();
        let dfg = Dfg::build(&body);
        assert!(dfg.edges().iter().all(|e| !e.kind.is_mem()));
    }

    #[test]
    fn loop_carried_state_reported() {
        let mut b = ProgramBuilder::new();
        b.mul(IntReg::A0, IntReg::A0, IntReg::A1); // a0 = a0 * a1 (carried)
        b.add(IntReg::A2, IntReg::A0, IntReg::A1); // a2 fresh
        let body = b.build().unwrap().text().to_vec();
        let dfg = Dfg::build(&body);
        assert!(dfg.loop_carried().contains(&RegRef::Int(IntReg::A0)));
        assert!(!dfg.loop_carried().contains(&RegRef::Int(IntReg::A2)));
    }
}
