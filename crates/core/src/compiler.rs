//! The end-to-end COPIFT analysis pipeline (Steps 1–7 as one call).
//!
//! [`analyze`] runs the whole methodology on a loop body and returns every
//! intermediate artifact plus the Table-I-style static estimates, so a
//! developer (or the `snitch-kernels` crate) can follow the paper's workflow:
//! inspect the partition, size the buffers, check FREP legality, pick a
//! block size, and emit the final mixed program.

use snitch_riscv::inst::Inst;

use crate::dfg::Dfg;
use crate::estimate::{i_prime, s_double_prime, thread_imbalance, MixCounts};
use crate::frepmap::FrepPlan;
use crate::partition::Partition;
use crate::schedule::{reorder, TilingPlan};

/// Everything the methodology derives from a loop body.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Step 1: the data-flow graph with classified dependencies.
    pub dfg: Dfg,
    /// Step 2: the phase partition.
    pub partition: Partition,
    /// Step 3: the reordered (phase-grouped) body.
    pub reordered: Vec<Inst>,
    /// Steps 4–5: buffers with replication counts and the block schedule.
    pub tiling: TilingPlan,
    /// Step 7 (with Step 6 prerequisites as diagnostics): the fused FREP
    /// body and its legality violations.
    pub frep: FrepPlan,
    /// Static instruction mix of the input body.
    pub mix: MixCounts,
    /// Thread imbalance `TI` of the input body.
    pub ti: f64,
    /// First-order expected speedup `S″ = 1 + TI` (Eq. 3).
    pub s_double_prime: f64,
    /// Expected dual-issue IPC `I′` of the body if executed as two threads
    /// (Eq. 2 applied to the input mix).
    pub i_prime: f64,
}

/// Error for bodies the methodology cannot handle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnalyzeError {
    /// The body is empty.
    EmptyBody,
    /// The body contains control flow (must be a straight-line loop body).
    ControlFlow {
        /// Index of the offending instruction.
        node: usize,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::EmptyBody => write!(f, "empty loop body"),
            AnalyzeError::ControlFlow { node } => {
                write!(f, "control flow at body instruction {node}; pass a straight-line body")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Runs Steps 1–7 on a straight-line loop body.
///
/// # Errors
///
/// Returns [`AnalyzeError`] for empty bodies or bodies with control flow.
///
/// # Example
///
/// ```
/// use copift::compiler::analyze;
/// use snitch_asm::builder::ProgramBuilder;
/// use snitch_riscv::reg::{FpReg, IntReg};
///
/// // A toy mixed body: integer index math feeding an FP accumulate.
/// let mut b = ProgramBuilder::new();
/// b.lw(IntReg::A0, IntReg::A1, 0);
/// b.sw(IntReg::A0, IntReg::A2, 0);
/// b.fld(FpReg::FA0, IntReg::A2, 0);
/// b.fadd_d(FpReg::FA1, FpReg::FA1, FpReg::FA0);
/// let body = b.build().unwrap().text().to_vec();
///
/// let analysis = analyze(&body)?;
/// assert_eq!(analysis.partition.len(), 2); // Int phase, then FP phase
/// # Ok::<(), copift::compiler::AnalyzeError>(())
/// ```
pub fn analyze(body: &[Inst]) -> Result<Analysis, AnalyzeError> {
    if body.is_empty() {
        return Err(AnalyzeError::EmptyBody);
    }
    if let Some(node) = body.iter().position(Inst::is_control_flow) {
        return Err(AnalyzeError::ControlFlow { node });
    }
    let dfg = Dfg::build(body);
    let partition = Partition::of(&dfg).expect("non-empty body");
    debug_assert!(partition.is_acyclic(&dfg), "partition must respect dependencies");
    let reordered = reorder(&dfg, &partition);
    let tiling = TilingPlan::of(&dfg, &partition);
    let frep = FrepPlan::of(&dfg, &partition);
    let mix = MixCounts::of(body);
    Ok(Analysis {
        ti: thread_imbalance(mix),
        s_double_prime: s_double_prime(mix),
        i_prime: i_prime(mix),
        dfg,
        partition,
        reordered,
        tiling,
        frep,
        mix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::tests_support::expf_body;

    #[test]
    fn full_pipeline_on_expf() {
        let a = analyze(&expf_body()).unwrap();
        assert_eq!(a.mix.n_int, 10);
        assert_eq!(a.mix.n_fp, 13);
        assert_eq!(a.partition.len(), 3);
        assert_eq!(a.tiling.buffers.len(), 3);
        assert_eq!(a.reordered.len(), 23);
        assert!((a.ti - 10.0 / 13.0).abs() < 1e-12);
        assert!((a.s_double_prime - (1.0 + 10.0 / 13.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_control_flow() {
        use snitch_asm::builder::ProgramBuilder;
        use snitch_riscv::reg::IntReg;
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.addi(IntReg::A0, IntReg::A0, -1);
        b.bnez(IntReg::A0, "x");
        let body = b.build().unwrap().text().to_vec();
        assert_eq!(analyze(&body).unwrap_err(), AnalyzeError::ControlFlow { node: 1 });
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(analyze(&[]).unwrap_err(), AnalyzeError::EmptyBody);
    }
}
