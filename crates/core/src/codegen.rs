//! End-to-end code generation for two-phase kernels: compiles a mixed
//! integer/FP loop body into a complete COPIFT-accelerated program
//! (tiled, double-buffered, SSR-mapped, FREP-wrapped), automatically.
//!
//! The paper applies Steps 3–7 by hand ("the steps in this methodology can
//! be followed by developers"); this module automates them for the common
//! *producer/consumer* shape — an integer phase feeding an FP phase — which
//! covers the Monte Carlo kernels and `logf`-like workloads:
//!
//! * the phase partition must be `[Int, Fp]` (or FP-only);
//! * every cut edge must be a register edge `Int → Fp` carried by a
//!   `fcvt.d.w[u]` / cross-register-file read (rewritten to a memory spill
//!   plus the COPIFT custom-1 replacement) or a plain FP-register value;
//! * FP memory accesses must be induction streams (`x[i]` loads / `y[i]`
//!   stores through pointer bumps), which map to SSR 1 / SSR 2; spilled cut
//!   values stream through SSR 0.
//!
//! Bodies outside this shape are rejected with a diagnostic naming the
//! manual step required — matching how the paper's more intricate kernels
//! (3-phase `expf`) were written by hand.

use std::collections::HashMap;

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::inst::Inst;
use snitch_riscv::meta::RegRef;
use snitch_riscv::ops::{AluImmOp, IntCvt};
use snitch_riscv::reg::{FpReg, IntReg};

use crate::dfg::{DepKind, Dfg, Domain};
use crate::partition::Partition;

/// A compilable kernel: one straight-line loop body plus its live-in state.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// One iteration of the loop (no control flow, no pointer bumps for the
    /// spill traffic — those are generated).
    pub body: Vec<Inst>,
    /// Elements processed by one copy of `body` (Step 4's unrolling).
    /// Bodies covering several independent elements hide the FPU latency of
    /// per-element dependency chains; `block` must be a multiple of this.
    pub elems_per_iter: usize,
    /// Loop-invariant / loop-carried integer registers and initial values.
    pub int_init: Vec<(IntReg, u32)>,
    /// Loop-invariant FP registers (constants) and initial values.
    pub fp_init: Vec<(FpReg, f64)>,
    /// Input stream: `fld rd, 0(ptr)` + `addi ptr, ptr, 8` pattern through
    /// this pointer register, fed with these values.
    pub input: Option<(IntReg, Vec<f64>)>,
    /// Output stream pointer register (per-iteration `fsd` + bump).
    pub output: Option<IntReg>,
    /// Loop-carried FP accumulators whose final values are stored, in this
    /// order, as consecutive 8-byte words at a `result` symbol after the
    /// pipeline drains (reductions live entirely in registers until then).
    pub acc_out: Vec<FpReg>,
}

/// Why a body cannot be compiled automatically.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodegenError {
    /// The phase partition is not `[Int, Fp]` or `[Fp]`.
    UnsupportedShape {
        /// Human-readable description of the found shape.
        found: String,
    },
    /// A cut edge cannot be auto-spilled.
    UnsupportedCut {
        /// Description and remedy.
        reason: String,
    },
    /// An FP memory access is not an induction stream.
    UnsupportedAccess {
        /// Offending instruction rendered as text.
        inst: String,
    },
    /// Register reserved for generated code is used by the body.
    ReservedRegister {
        /// The clashing register.
        reg: String,
    },
    /// Body analysis failed.
    Analyze(crate::compiler::AnalyzeError),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::UnsupportedShape { found } => {
                write!(f, "unsupported phase shape {found}; write the kernel manually (cf. expf)")
            }
            CodegenError::UnsupportedCut { reason } => write!(f, "unsupported cut edge: {reason}"),
            CodegenError::UnsupportedAccess { inst } => {
                write!(f, "`{inst}` is not an induction stream; map it manually (Step 6)")
            }
            CodegenError::ReservedRegister { reg } => {
                write!(f, "register {reg} is reserved by the code generator")
            }
            CodegenError::Analyze(e) => write!(f, "analysis failed: {e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// Registers the generator claims for itself.
const GEN_REGS: [IntReg; 6] = [
    IntReg::new(1),  // buffer A
    IntReg::new(2),  // buffer B
    IntReg::new(3),  // spill write pointer
    IntReg::new(4),  // outer counter
    IntReg::new(29), // scratch (config values)
    IntReg::new(30), // inner counter
];

/// One spilled cut value: produced by an int instruction, consumed by FP.
#[derive(Clone, Copy, Debug)]
struct Spill {
    /// Producing node.
    producer: usize,
    /// Register carrying the value at the producer.
    reg: IntReg,
    /// FP consumer node (must consume exactly once).
    consumer: usize,
    /// Slot index in the per-element spill record.
    slot: usize,
}

/// Compiles a two-phase kernel into a COPIFT program for `n` elements with
/// block size `block`. Output-stream results land at the `y_out` symbol;
/// accumulator state stays in FP registers during the run, and the registers
/// named in [`KernelSpec::acc_out`] are stored to a `result` symbol after
/// the drain.
///
/// # Errors
///
/// Returns [`CodegenError`] when the body falls outside the supported shape.
///
/// # Panics
///
/// Panics if `n`/`block` violate the usual divisibility constraints, or if
/// the body does not touch each declared stream exactly
/// [`elems_per_iter`](KernelSpec::elems_per_iter) times.
pub fn compile(spec: &KernelSpec, n: usize, block: usize) -> Result<Program, CodegenError> {
    assert!(block > 0 && n.is_multiple_of(block) && n / block >= 2, "need >= 2 blocks");
    let epi = spec.elems_per_iter.max(1);
    assert!(block.is_multiple_of(epi), "block must be a multiple of elems_per_iter");
    // Strip the induction-pointer bumps of the declared streams: the SSR
    // address generators absorb them (the paper's affine Type 1 elision).
    let stream_ptrs: Vec<IntReg> =
        spec.input.as_ref().map(|(r, _)| *r).into_iter().chain(spec.output).collect();
    let body: Vec<Inst> = spec
        .body
        .iter()
        .copied()
        .filter(|i| match i {
            Inst::OpImm { op: AluImmOp::Addi, rd, rs1, .. } => {
                !(rd == rs1 && stream_ptrs.contains(rd))
            }
            _ => true,
        })
        .collect();
    let analysis = crate::compiler::analyze(&body).map_err(CodegenError::Analyze)?;
    let dfg = &analysis.dfg;
    let part = &analysis.partition;
    check_shape(part)?;
    check_reserved(&body)?;

    // Classify cut edges into spills.
    let mut spills: Vec<Spill> = Vec::new();
    for e in &part.cut_edges {
        match e.kind {
            DepKind::Reg(RegRef::Int(r)) => {
                if let Some(prev) = spills.iter().find(|s| s.producer == e.from && s.reg == r) {
                    return Err(CodegenError::UnsupportedCut {
                        reason: format!(
                            "value {r} (node {}) consumed twice (also node {}); add an SSR \
                             repeat manually",
                            e.from, prev.consumer
                        ),
                    });
                }
                let slot = spills.len();
                spills.push(Spill { producer: e.from, reg: r, consumer: e.to, slot });
            }
            DepKind::Reg(RegRef::Fp(_)) => {
                return Err(CodegenError::UnsupportedCut {
                    reason: "FP-register cut in an Int→Fp partition".to_string(),
                })
            }
            DepKind::Mem { .. } => {
                return Err(CodegenError::UnsupportedCut {
                    reason: "memory-carried cut; pre-spill through registers".to_string(),
                })
            }
        }
    }

    // Identify FP stream accesses (induction loads/stores) to serve via
    // SSR1/SSR2; any other FP memory access is out of scope.
    let mut input_nodes = Vec::new();
    let mut output_nodes = Vec::new();
    for (i, inst) in body.iter().enumerate() {
        match inst {
            Inst::Fld { rs1, .. } if Some(*rs1) == spec.input.as_ref().map(|(r, _)| *r) => {
                input_nodes.push(i);
            }
            Inst::Fsd { rs1, .. } if Some(*rs1) == spec.output => output_nodes.push(i),
            Inst::Flw { .. } | Inst::Fsw { .. } | Inst::Fld { .. } | Inst::Fsd { .. } => {
                return Err(CodegenError::UnsupportedAccess { inst: inst.to_string() });
            }
            _ => {}
        }
    }
    // The SSR bounds count elements while the FREP repetition counts body
    // copies, so each declared stream must be touched exactly once per
    // element — catch a mismatched spec here rather than as a confusing
    // golden mismatch half a block downstream.
    if spec.input.is_some() {
        assert!(
            input_nodes.len() == epi,
            "body must load the input stream elems_per_iter ({epi}) times, found {}",
            input_nodes.len()
        );
    }
    if spec.output.is_some() {
        assert!(
            output_nodes.len() == epi,
            "body must store the output stream elems_per_iter ({epi}) times, found {}",
            output_nodes.len()
        );
    }

    // SSR0 streams the spill slots sequentially, so the k-th FP-phase pop
    // reads slot k: slots must follow the consumers' program order, not the
    // cut-edge enumeration order.
    spills.sort_by_key(|s| s.consumer);
    for (slot, s) in spills.iter_mut().enumerate() {
        s.slot = slot;
    }

    let slot_bytes = 8 * spills.len().max(1);
    let int_phase = rewrite_int_phase(dfg, part, &spills, slot_bytes);
    let fp_body = rewrite_fp_phase(dfg, part, &spills, &input_nodes, &output_nodes)?;
    emit_full(spec, &int_phase, &fp_body, &spills, n, block)
}

fn check_shape(part: &Partition) -> Result<(), CodegenError> {
    let doms: Vec<Domain> = part.phases.iter().map(|p| p.domain).collect();
    match doms.as_slice() {
        [Domain::Int, Domain::Fp] | [Domain::Fp] => Ok(()),
        other => Err(CodegenError::UnsupportedShape { found: format!("{other:?}") }),
    }
}

fn check_reserved(body: &[Inst]) -> Result<(), CodegenError> {
    for inst in body {
        for r in inst.uses().iter().chain(inst.defs().iter()) {
            if let RegRef::Int(ir) = r {
                if GEN_REGS.contains(ir) || ir.index() == 28 || ir.index() == 31 {
                    return Err(CodegenError::ReservedRegister { reg: ir.to_string() });
                }
            }
            if let RegRef::Fp(fr) = r {
                if fr.is_ssr_candidate() || *fr == snitch_riscv::reg::FpReg::FT11 {
                    return Err(CodegenError::ReservedRegister { reg: fr.to_string() });
                }
            }
        }
    }
    Ok(())
}

/// Integer phase: original int instructions plus a `sw`-pair per spill.
fn rewrite_int_phase(
    dfg: &Dfg,
    part: &Partition,
    spills: &[Spill],
    slot_bytes: usize,
) -> Vec<Inst> {
    let mut out = Vec::new();
    let int_phase = part.phases.iter().find(|p| p.domain == Domain::Int);
    let Some(phase) = int_phase else { return out };
    for &node in &phase.nodes {
        out.push(dfg.insts()[node]);
        for s in spills.iter().filter(|s| s.producer == node) {
            // sw value, slot_off(x3); sw zero (64-bit slot, high word zero).
            out.push(Inst::Store {
                op: snitch_riscv::ops::StoreOp::Sw,
                rs2: s.reg,
                rs1: IntReg::new(3),
                offset: (s.slot * 8) as i32,
            });
            out.push(Inst::Store {
                op: snitch_riscv::ops::StoreOp::Sw,
                rs2: IntReg::ZERO,
                rs1: IntReg::new(3),
                offset: (s.slot * 8 + 4) as i32,
            });
        }
    }
    // Advance the spill pointer by one record.
    out.push(Inst::OpImm {
        op: AluImmOp::Addi,
        rd: IntReg::new(3),
        rs1: IntReg::new(3),
        imm: slot_bytes as i32,
    });
    out
}

/// FP phase: cut-consuming instructions rewritten to pop SSR0 with the
/// COPIFT replacements; stream loads/stores rewritten to SSR1/SSR2.
fn rewrite_fp_phase(
    dfg: &Dfg,
    part: &Partition,
    spills: &[Spill],
    input_nodes: &[usize],
    output_nodes: &[usize],
) -> Result<Vec<Inst>, CodegenError> {
    let phase =
        part.phases.iter().find(|p| p.domain == Domain::Fp).expect("checked shape has an FP phase");
    let spill_by_consumer: HashMap<usize, &Spill> =
        spills.iter().map(|s| (s.consumer, s)).collect();
    let mut out = Vec::new();
    for &node in &phase.nodes {
        let inst = dfg.insts()[node];
        if input_nodes.contains(&node) {
            // fld rd, 0(x) → fsgnjx rd, ft1, f31: pops the input stream
            // exactly once (each stream-register operand slot pops one
            // element) and copies the bits exactly (f31 holds +0.0, so the
            // xor leaves the sign unchanged).
            let Inst::Fld { rd, .. } = inst else { unreachable!() };
            out.push(Inst::FpSgnj {
                op: snitch_riscv::ops::SgnjOp::Sgnjx,
                fmt: snitch_riscv::ops::FpFmt::D,
                rd,
                rs1: FpReg::FT1,
                rs2: FpReg::FT11,
            });
            continue;
        }
        if output_nodes.contains(&node) {
            // fsd rs2, 0(y) → fsgnj ft2, rs2 (push the output stream).
            let Inst::Fsd { rs2, .. } = inst else { unreachable!() };
            out.push(Inst::FpSgnj {
                op: snitch_riscv::ops::SgnjOp::Sgnj,
                fmt: snitch_riscv::ops::FpFmt::D,
                rd: FpReg::FT2,
                rs1: rs2,
                rs2,
            });
            continue;
        }
        if spill_by_consumer.contains_key(&node) {
            match inst {
                Inst::FpCvtI2F { from, rd, .. } => {
                    // Paper §II-B: the cross-RF conversion becomes its
                    // custom-1 twin reading the spilled stream.
                    let op = match from {
                        IntCvt::W => Inst::CopiftCvtI2F { from: IntCvt::W, rd, rs1: FpReg::FT0 },
                        IntCvt::Wu => Inst::CopiftCvtI2F { from: IntCvt::Wu, rd, rs1: FpReg::FT0 },
                    };
                    out.push(op);
                    continue;
                }
                other => {
                    return Err(CodegenError::UnsupportedCut {
                        reason: format!(
                            "`{other}` consumes a spilled integer value; only fcvt.d.w[u] is \
                             auto-rewritten"
                        ),
                    })
                }
            }
        }
        if !inst.frep_legal() {
            return Err(CodegenError::UnsupportedAccess { inst: inst.to_string() });
        }
        out.push(inst);
    }
    Ok(out)
}

/// Clean single-pass program emission.
fn emit_full(
    spec: &KernelSpec,
    int_phase: &[Inst],
    fp_body: &[Inst],
    spills: &[Spill],
    n: usize,
    block: usize,
) -> Result<Program, CodegenError> {
    let nb = n / block;
    let epi = spec.elems_per_iter.max(1);
    let iters = block / epi; // body repetitions per block
    let slot_bytes = 8 * spills.len().max(1); // spill record per body iteration
    let mut b = ProgramBuilder::new();
    let buf0 = b.tcdm_reserve("spill0", slot_bytes * iters, 8);
    let buf1 = b.tcdm_reserve("spill1", slot_bytes * iters, 8);
    let fp_const_img: Vec<f64> = spec.fp_init.iter().map(|(_, v)| *v).collect();
    let caddr = if fp_const_img.is_empty() { 0 } else { b.tcdm_f64("fp_consts", &fp_const_img) };
    let x_in = spec.input.as_ref().map(|(_, vals)| {
        assert!(vals.len() >= n, "input data shorter than n");
        b.tcdm_f64("x_in", &vals[..n])
    });
    let y_out = spec.output.map(|_| b.tcdm_reserve("y_out", n * 8, 8));
    let result =
        (!spec.acc_out.is_empty()).then(|| b.tcdm_reserve("result", spec.acc_out.len() * 8, 8));

    for (r, v) in &spec.int_init {
        b.li_u(*r, *v);
    }
    let scratch = GEN_REGS[4];
    for (i, (r, _)) in spec.fp_init.iter().enumerate() {
        b.li_u(scratch, caddr + (i as u32) * 8);
        b.fld(*r, scratch, 0);
    }

    if !spills.is_empty() {
        b.li(scratch, 0);
        b.scfgwi(scratch, 0, SsrCfgWord::Status);
        b.scfgwi(scratch, 0, SsrCfgWord::Repeat);
        b.li(scratch, (spills.len() * iters - 1) as i32);
        b.scfgwi(scratch, 0, SsrCfgWord::Bound(0));
        b.li(scratch, 8);
        b.scfgwi(scratch, 0, SsrCfgWord::Stride(0));
    }
    if x_in.is_some() {
        b.li(scratch, 0);
        b.scfgwi(scratch, 1, SsrCfgWord::Status);
        b.scfgwi(scratch, 1, SsrCfgWord::Repeat);
        b.li(scratch, (block - 1) as i32);
        b.scfgwi(scratch, 1, SsrCfgWord::Bound(0));
        b.li(scratch, 8);
        b.scfgwi(scratch, 1, SsrCfgWord::Stride(0));
    }
    if y_out.is_some() {
        b.li(scratch, 1);
        b.scfgwi(scratch, 2, SsrCfgWord::Status);
        b.scfgwi(scratch, 2, SsrCfgWord::Repeat);
        b.li(scratch, (block - 1) as i32);
        b.scfgwi(scratch, 2, SsrCfgWord::Bound(0));
        b.li(scratch, 8);
        b.scfgwi(scratch, 2, SsrCfgWord::Stride(0));
    }
    b.ssr_enable();
    // f31 = +0.0: the sign-neutral operand of the stream-pop fsgnjx idiom.
    b.fcvt_d_w(FpReg::FT11, IntReg::ZERO);

    let (cur, nxt, outer, inner) = (GEN_REGS[0], GEN_REGS[1], GEN_REGS[3], GEN_REGS[5]);
    b.li_u(cur, buf0);
    b.li_u(nxt, buf1);
    // x/y stream pointers advance one block per iteration.
    let xp = IntReg::new(28);
    let yp = IntReg::new(31);
    if let Some(x) = x_in {
        b.li_u(xp, x);
    }
    if let Some(y) = y_out {
        b.li_u(yp, y);
    }

    // Prologue: int phase on block 0. The int-block loop labels double as
    // the profiler's region labels (`prologue`/`spill`), so every generated
    // program carries the standard COPIFT region set — `prologue`, `body`,
    // `spill`, `reduce` — that `snitch-profile`'s region map resolves.
    emit_int_block(&mut b, int_phase, iters, epi, cur, "prologue");

    b.li(outer, (nb - 1) as i32);
    b.label("body");
    b.label("outer");
    if !spills.is_empty() {
        b.scfgwi(cur, 0, SsrCfgWord::Base);
    }
    if x_in.is_some() {
        b.scfgwi(xp, 1, SsrCfgWord::Base);
        b.addi(xp, xp, (block * 8) as i32);
    }
    if y_out.is_some() {
        b.scfgwi(yp, 2, SsrCfgWord::Base);
        b.addi(yp, yp, (block * 8) as i32);
    }
    emit_frep(&mut b, fp_body, iters);
    emit_int_block(&mut b, int_phase, iters, epi, nxt, "spill");
    b.mv(scratch, cur);
    b.mv(cur, nxt);
    b.mv(nxt, scratch);
    b.addi(outer, outer, -1);
    b.bnez(outer, "outer");
    b.label("reduce");

    // Epilogue: final FP block.
    if !spills.is_empty() {
        b.scfgwi(cur, 0, SsrCfgWord::Base);
    }
    if x_in.is_some() {
        b.scfgwi(xp, 1, SsrCfgWord::Base);
    }
    if y_out.is_some() {
        b.scfgwi(yp, 2, SsrCfgWord::Base);
    }
    emit_frep(&mut b, fp_body, iters);
    b.fpu_fence();
    b.ssr_disable();
    if let Some(raddr) = result {
        // Drain finished above: store the reduction registers to `result`.
        b.li_u(scratch, raddr);
        for (i, acc) in spec.acc_out.iter().enumerate() {
            b.fsd(*acc, scratch, (i * 8) as i32);
        }
        b.fpu_fence();
    }
    b.ecall();
    let _ = inner;
    let program = b.build().map_err(|e| CodegenError::UnsupportedCut { reason: e.to_string() })?;
    // Debug builds statically verify every generated program: the code
    // generator must never emit something `snitch-verify` rejects (unarmed
    // streams, over-popped bounds, illegal FREP bodies, out-of-bounds spill
    // traffic). Release builds skip this — the engine verifies at load time.
    #[cfg(debug_assertions)]
    {
        // Region labels are part of the generated-program contract: the
        // profiler's region map (and its sinks) resolve them by name.
        for name in ["prologue", "body", "spill", "reduce"] {
            let span = program
                .label_span(name)
                .unwrap_or_else(|| panic!("codegen must place region label `{name}`"));
            assert!(span.start < span.end, "region `{name}` covers no instructions");
        }
        let diags = snitch_verify::verify(&program, &snitch_sim::SystemConfig::default());
        let errors: Vec<String> = diags
            .iter()
            .filter(|d| d.severity == snitch_verify::Severity::Error)
            .map(ToString::to_string)
            .collect();
        assert!(
            errors.is_empty(),
            "codegen emitted a program the static verifier rejects:\n{}",
            errors.join("\n")
        );
    }
    Ok(program)
}

fn emit_int_block(
    b: &mut ProgramBuilder,
    int_phase: &[Inst],
    iters: usize,
    epi: usize,
    buf: IntReg,
    label: &str,
) {
    if int_phase.is_empty() {
        // Still anchor the label: the profiler's region map expects the
        // full `prologue`/`spill` set on every generated program (the span
        // extends to the next label, so it stays resolvable).
        b.label(label);
        return;
    }
    // Unroll single-element phases to amortize loop overhead (the spill
    // pointer advances inside each copy, so repetition preserves the serial
    // semantics); multi-element bodies are already unrolled by the caller.
    let unroll = if epi == 1 && iters.is_multiple_of(4) { 4 } else { 1 };
    b.mv(IntReg::new(3), buf);
    b.li(GEN_REGS[5], (iters / unroll) as i32);
    b.label(label);
    for _ in 0..unroll {
        for inst in int_phase {
            b.inst(*inst);
        }
    }
    b.addi(GEN_REGS[5], GEN_REGS[5], -1);
    b.bnez(GEN_REGS[5], label);
}

fn emit_frep(b: &mut ProgramBuilder, fp_body: &[Inst], iters: usize) {
    if fp_body.is_empty() {
        return;
    }
    b.li(GEN_REGS[4], (iters - 1) as i32);
    b.frep_o(GEN_REGS[4], u8::try_from(fp_body.len()).expect("body fits"), 0, 0);
    for inst in fp_body {
        b.inst(*inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::builder::ProgramBuilder;

    /// A mixed kernel: the integer thread runs an LCG; the FP thread
    /// converts the draw, applies `y = u·scale + offset` and accumulates.
    fn mixed_body() -> Vec<Inst> {
        let mut b = ProgramBuilder::new();
        let s = IntReg::new(10);
        b.mul(s, s, IntReg::new(11));
        b.add(s, s, IntReg::new(12));
        b.fcvt_d_wu(FpReg::FA0, s); // the Int→Fp cut
        b.fmadd_d(FpReg::FA1, FpReg::FA0, FpReg::FS0, FpReg::FS1);
        b.fadd_d(FpReg::FS2, FpReg::FS2, FpReg::FA1); // accumulator
        b.build().unwrap().text().to_vec()
    }

    fn spec() -> KernelSpec {
        KernelSpec {
            body: mixed_body(),
            elems_per_iter: 1,
            int_init: vec![
                (IntReg::new(10), 0xDEAD_BEEF),
                (IntReg::new(11), crate::codegen::tests::A),
                (IntReg::new(12), crate::codegen::tests::C),
            ],
            fp_init: vec![(FpReg::FS0, 0.5), (FpReg::FS1, 1.25), (FpReg::FS2, 0.0)],
            input: None,
            output: None,
            acc_out: vec![],
        }
    }

    pub(crate) const A: u32 = 1_664_525;
    pub(crate) const C: u32 = 1_013_904_223;

    fn golden(n: usize) -> f64 {
        let mut s: u32 = 0xDEAD_BEEF;
        let mut acc = 0.0f64;
        for _ in 0..n {
            s = s.wrapping_mul(A).wrapping_add(C);
            let u = f64::from(s);
            acc += u.mul_add(0.5, 1.25);
        }
        acc
    }

    #[test]
    fn compiles_and_matches_golden() {
        let n = 64;
        let program = compile(&spec(), n, 16).expect("compiles");
        let mut cluster = snitch_sim::cluster::Cluster::new(snitch_sim::ClusterConfig::default());
        cluster.load_program(&program);
        let stats = cluster.run().expect("runs");
        let acc = f64::from_bits(cluster.fp_reg(FpReg::FS2));
        assert_eq!(acc, golden(n), "auto-compiled kernel must be bit-exact");
        // And it must actually dual-issue: sequencer replays dominate.
        assert!(stats.fp_issued_seq > stats.fp_issued_core);
    }

    #[test]
    fn auto_compiled_beats_naive_baseline() {
        // Naive baseline: the original body in a plain loop.
        let n = 256;
        let mut b = ProgramBuilder::new();
        for (r, v) in spec().int_init {
            b.li_u(r, v);
        }
        let caddr = b.tcdm_f64("consts", &[0.5, 1.25, 0.0]);
        b.li_u(IntReg::new(5), caddr);
        b.fld(FpReg::FS0, IntReg::new(5), 0);
        b.fld(FpReg::FS1, IntReg::new(5), 8);
        b.fld(FpReg::FS2, IntReg::new(5), 16);
        b.li(IntReg::new(6), n as i32);
        b.label("l");
        for inst in mixed_body() {
            b.inst(inst);
        }
        b.addi(IntReg::new(6), IntReg::new(6), -1);
        b.bnez(IntReg::new(6), "l");
        b.fpu_fence();
        b.ecall();
        let baseline = b.build().unwrap();
        let mut c1 = snitch_sim::cluster::Cluster::new(snitch_sim::ClusterConfig::default());
        c1.load_program(&baseline);
        let s1 = c1.run().unwrap();

        let program = compile(&spec(), n, 32).expect("compiles");
        let mut c2 = snitch_sim::cluster::Cluster::new(snitch_sim::ClusterConfig::default());
        c2.load_program(&program);
        let s2 = c2.run().unwrap();
        assert_eq!(
            f64::from_bits(c1.fp_reg(FpReg::FS2)),
            f64::from_bits(c2.fp_reg(FpReg::FS2)),
            "same result either way"
        );
        assert!(
            s2.cycles < s1.cycles,
            "auto-COPIFT ({}) must beat the naive loop ({})",
            s2.cycles,
            s1.cycles
        );
    }

    #[test]
    fn rejects_three_phase_bodies() {
        // An Fp→Int→Fp body (like expf) is out of scope.
        let mut b = ProgramBuilder::new();
        b.fadd_d(FpReg::FA0, FpReg::FA1, FpReg::FA2);
        b.flt_d(IntReg::new(10), FpReg::FA0, FpReg::FA1);
        b.add(IntReg::new(11), IntReg::new(10), IntReg::new(10));
        b.fcvt_d_w(FpReg::FA3, IntReg::new(11));
        b.fadd_d(FpReg::FA4, FpReg::FA4, FpReg::FA3);
        let body = b.build().unwrap().text().to_vec();
        let s = KernelSpec {
            body,
            elems_per_iter: 1,
            int_init: vec![],
            fp_init: vec![],
            input: None,
            output: None,
            acc_out: vec![],
        };
        match compile(&s, 64, 16) {
            Err(CodegenError::UnsupportedShape { .. }) => {}
            other => panic!("expected shape rejection, got {other:?}"),
        }
    }

    #[test]
    fn rejects_reserved_registers() {
        let mut b = ProgramBuilder::new();
        b.add(IntReg::new(1), IntReg::new(10), IntReg::new(10)); // x1 reserved
        b.fcvt_d_w(FpReg::FA0, IntReg::new(1));
        let body = b.build().unwrap().text().to_vec();
        let s = KernelSpec {
            body,
            elems_per_iter: 1,
            int_init: vec![],
            fp_init: vec![],
            input: None,
            output: None,
            acc_out: vec![],
        };
        match compile(&s, 64, 16) {
            Err(CodegenError::ReservedRegister { .. }) => {}
            other => panic!("expected reserved-register rejection, got {other:?}"),
        }
    }

    #[test]
    fn stream_kernel_with_input_and_output() {
        // y[i] = x[i] * k + 1 — FP-only body with induction streams, plus an
        // integer side doing nothing (FP-only partition).
        let xp = IntReg::new(10);
        let yp = IntReg::new(11);
        let mut b = ProgramBuilder::new();
        b.fld(FpReg::FA0, xp, 0);
        b.fmadd_d(FpReg::FA1, FpReg::FA0, FpReg::FS0, FpReg::FS1);
        b.fsd(FpReg::FA1, yp, 0);
        b.addi(xp, xp, 8);
        b.addi(yp, yp, 8);
        let body = b.build().unwrap().text().to_vec();
        let n = 64;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let s = KernelSpec {
            body,
            elems_per_iter: 1,
            int_init: vec![],
            fp_init: vec![(FpReg::FS0, 3.0), (FpReg::FS1, 1.0)],
            input: Some((xp, xs.clone())),
            output: Some(yp),
            acc_out: vec![],
        };
        let program = compile(&s, n, 16).expect("compiles");
        let mut c = snitch_sim::cluster::Cluster::new(snitch_sim::ClusterConfig::default());
        c.load_program(&program);
        c.run().expect("runs");
        let base = program.symbol("y_out").unwrap();
        for (i, x) in xs.iter().enumerate() {
            let got = c.mem().read_f64(base + (i as u32) * 8).unwrap();
            assert_eq!(got, x.mul_add(3.0, 1.0), "y[{i}]");
        }
    }

    #[test]
    fn acc_out_stores_reductions_to_the_result_symbol() {
        let program =
            compile(&KernelSpec { acc_out: vec![FpReg::FS2], ..spec() }, 64, 16).expect("compiles");
        let mut c = snitch_sim::cluster::Cluster::new(snitch_sim::ClusterConfig::default());
        c.load_program(&program);
        c.run().expect("runs");
        let base = program.symbol("result").expect("result symbol exists");
        let got = c.mem().read_f64(base).unwrap();
        assert_eq!(got, golden(64), "stored accumulator must equal the register value");
        assert_eq!(got, f64::from_bits(c.fp_reg(FpReg::FS2)));
    }

    #[test]
    fn multi_element_bodies_match_the_serial_semantics() {
        // Two independent elements per body iteration: the LCG advances
        // twice, both draws feed separate accumulate chains — results must
        // equal the one-element body run twice as long.
        let s = IntReg::new(10);
        let mut b = ProgramBuilder::new();
        for acc in [FpReg::FS2, FpReg::FS3] {
            b.mul(s, s, IntReg::new(11));
            b.add(s, s, IntReg::new(12));
            b.fcvt_d_wu(FpReg::FA0, s);
            b.fmadd_d(FpReg::FA1, FpReg::FA0, FpReg::FS0, FpReg::FS1);
            b.fadd_d(acc, acc, FpReg::FA1);
        }
        let two = KernelSpec {
            body: b.build().unwrap().text().to_vec(),
            elems_per_iter: 2,
            fp_init: vec![
                (FpReg::FS0, 0.5),
                (FpReg::FS1, 1.25),
                (FpReg::FS2, 0.0),
                (FpReg::FS3, 0.0),
            ],
            acc_out: vec![FpReg::FS2, FpReg::FS3],
            ..spec()
        };
        let n = 64;
        let program = compile(&two, n, 16).expect("compiles");
        let mut c = snitch_sim::cluster::Cluster::new(snitch_sim::ClusterConfig::default());
        c.load_program(&program);
        c.run().expect("runs");
        // Golden: same draw order, accumulators alternate.
        let mut state: u32 = 0xDEAD_BEEF;
        let mut acc = [0.0f64; 2];
        for i in 0..n {
            state = state.wrapping_mul(A).wrapping_add(C);
            acc[i % 2] += f64::from(state).mul_add(0.5, 1.25);
        }
        let base = program.symbol("result").unwrap();
        assert_eq!(c.mem().read_f64(base).unwrap(), acc[0]);
        assert_eq!(c.mem().read_f64(base + 8).unwrap(), acc[1]);
    }
}
