//! Steps 3–5: instruction reordering, loop tiling and software pipelining.
//!
//! * **Step 3** reorders the loop body into consecutive single-domain groups
//!   following the phase order, preserving program order within each phase
//!   (which preserves all intra-phase dependencies).
//! * **Step 4** (loop tiling + fission) turns each phase into a loop over a
//!   block of `B` elements; every value crossing a phase boundary must be
//!   spilled to a block-sized buffer. [`TilingPlan`] enumerates those
//!   buffers.
//! * **Step 5** (software pipelining + multiple buffering) schedules phase
//!   `p` of block-iteration `j'` on data block `j' - p`, which requires
//!   `distance + 1` replicas of each buffer (paper: "the exact number of
//!   replicas for each buffer equals the distance between the subgraphs
//!   connected by the respective edge ... plus one").

use snitch_riscv::inst::Inst;
use snitch_riscv::meta::RegRef;

use crate::dfg::{DepKind, Dfg};
use crate::partition::Partition;

/// Step 3: the reordered loop body (phase-grouped instruction sequence).
#[must_use]
pub fn reorder(dfg: &Dfg, partition: &Partition) -> Vec<Inst> {
    let mut out = Vec::with_capacity(dfg.insts().len());
    for phase in &partition.phases {
        for &n in &phase.nodes {
            out.push(dfg.insts()[n]);
        }
    }
    out
}

/// What carries an inter-phase value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BufferKind {
    /// A register value that Step 4 spills to memory.
    RegSpill(RegRef),
    /// A value already flowing through a memory buffer in the original code.
    Mem,
}

/// One block-sized inter-phase communication buffer.
#[derive(Clone, Debug)]
pub struct BufferSpec {
    /// What the buffer carries.
    pub kind: BufferKind,
    /// Bytes per element (8 for doubles/spilled FP registers, 4 for words).
    pub elem_bytes: u32,
    /// Producing phase index.
    pub producer: usize,
    /// Consuming phase index.
    pub consumer: usize,
    /// Replicas required by the software-pipelined schedule (Step 5):
    /// `consumer - producer + 1`.
    pub replicas: usize,
}

impl BufferSpec {
    /// Total footprint for a block of `block` elements.
    #[must_use]
    pub fn footprint(&self, block: usize) -> usize {
        self.elem_bytes as usize * block * self.replicas
    }
}

/// Steps 4–5 output: buffers and the pipelined block schedule.
#[derive(Clone, Debug)]
pub struct TilingPlan {
    /// Inter-phase buffers (one per distinct crossing value).
    pub buffers: Vec<BufferSpec>,
    /// Number of phases (pipeline depth).
    pub depth: usize,
}

impl TilingPlan {
    /// Derives the plan from a partition.
    #[must_use]
    pub fn of(dfg: &Dfg, partition: &Partition) -> TilingPlan {
        let mut buffers: Vec<BufferSpec> = Vec::new();
        // Group cut edges by the value they carry: register edges by
        // (producer node, register); memory edges by the buffer object
        // (several stores into the same buffer are one spill value — e.g.
        // the two word-halves of expf's `t`).
        #[derive(PartialEq)]
        enum Key {
            Reg(usize, RegRef),
            MemBase(Option<snitch_riscv::reg::IntReg>),
        }
        let mut seen: Vec<(Key, Vec<usize>)> = Vec::new(); // key + producer nodes
        for e in &partition.cut_edges {
            let key = match e.kind {
                DepKind::Reg(r) => Key::Reg(e.from, r),
                DepKind::Mem { base } => Key::MemBase(base),
            };
            let producer = partition.assignment[e.from];
            let consumer = partition.assignment[e.to];
            let store_bytes = |node: usize| {
                dfg.insts()[node].mem_class().map_or(0, |m| match m {
                    snitch_riscv::meta::MemClass::Store { bytes }
                    | snitch_riscv::meta::MemClass::FpStore { bytes }
                    | snitch_riscv::meta::MemClass::Load { bytes }
                    | snitch_riscv::meta::MemClass::FpLoad { bytes } => bytes,
                })
            };
            if let Some(pos) = seen.iter().position(|(k, _)| *k == key) {
                // Same value/buffer: widen the distance, accumulate distinct
                // producer stores into the element size.
                if !seen[pos].1.contains(&e.from) {
                    seen[pos].1.push(e.from);
                    if matches!(key, Key::MemBase(_)) {
                        buffers[pos].elem_bytes += store_bytes(e.from);
                    }
                }
                let b = &mut buffers[pos];
                b.producer = b.producer.min(producer);
                b.consumer = b.consumer.max(consumer);
                b.replicas = b.consumer - b.producer + 1;
                continue;
            }
            let (kind, elem_bytes) = match e.kind {
                DepKind::Reg(r) => (
                    BufferKind::RegSpill(r),
                    match r {
                        RegRef::Fp(_) => 8,
                        RegRef::Int(_) => 4,
                    },
                ),
                DepKind::Mem { .. } => (BufferKind::Mem, store_bytes(e.from)),
            };
            seen.push((key, vec![e.from]));
            buffers.push(BufferSpec {
                kind,
                elem_bytes,
                producer,
                consumer,
                replicas: consumer - producer + 1,
            });
        }
        TilingPlan { buffers, depth: partition.len() }
    }

    /// Bytes of buffer storage needed per element of block size (the sum of
    /// all replicated buffers' per-element footprints).
    #[must_use]
    pub fn bytes_per_element(&self) -> usize {
        self.buffers.iter().map(|b| b.elem_bytes as usize * b.replicas).sum()
    }

    /// Largest block size fitting a scratchpad of `l1_bytes`, after
    /// reserving `reserved_bytes` (I/O arrays, tables, alignment slack).
    #[must_use]
    pub fn max_block(&self, l1_bytes: usize, reserved_bytes: usize) -> usize {
        let per_elem = self.bytes_per_element();
        if per_elem == 0 {
            return usize::MAX;
        }
        l1_bytes.saturating_sub(reserved_bytes) / per_elem
    }

    /// The data block that phase `p` works on during steady-state block
    /// iteration `j` (Step 5's schedule, Fig. 1g): `j - p`, or `None`
    /// during the prologue.
    #[must_use]
    pub fn block_for(&self, phase: usize, j: usize) -> Option<usize> {
        j.checked_sub(phase)
    }

    /// Number of block iterations (including prologue and epilogue) needed
    /// to process `n_blocks` data blocks: `n_blocks + depth - 1`.
    #[must_use]
    pub fn schedule_length(&self, n_blocks: usize) -> usize {
        if n_blocks == 0 {
            0
        } else {
            n_blocks + self.depth - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::tests_support::expf_body;
    use crate::dfg::Domain;

    fn expf_plan() -> (Dfg, Partition, TilingPlan) {
        let body = expf_body();
        let dfg = Dfg::build(&body);
        let part = Partition::of(&dfg).unwrap();
        let plan = TilingPlan::of(&dfg, &part);
        (dfg, part, plan)
    }

    #[test]
    fn reorder_groups_by_phase_and_preserves_length() {
        let (dfg, part, _) = expf_plan();
        let r = reorder(&dfg, &part);
        assert_eq!(r.len(), dfg.insts().len());
        // Grouped: a run of FP, then Int, then FP instructions.
        let doms: Vec<bool> = r.iter().map(snitch_riscv::inst::Inst::is_fp).collect();
        let transitions = doms.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 2, "three single-domain groups");
    }

    #[test]
    fn expf_buffers_match_paper() {
        // Paper Table I (Step 4): 5 buffers for expf — x, y streams plus
        // ki, t, w. The DFG cut contributes ki (mem), t (mem), w (reg fa4);
        // x and y are the kernel's I/O streams, not cut edges, so the plan
        // reports 3 inter-phase buffers.
        let (_, part, plan) = expf_plan();
        assert_eq!(part.len(), 3);
        assert_eq!(plan.buffers.len(), 3, "{:?}", plan.buffers);
        // w: produced by phase 0 (fmadd), consumed by phase 2 (fmul) ⇒
        // distance 2 ⇒ 3 replicas, exactly the paper's example.
        let w = plan
            .buffers
            .iter()
            .find(|b| matches!(b.kind, BufferKind::RegSpill(RegRef::Fp(_))))
            .expect("spilled fa4");
        assert_eq!(w.producer, 0);
        assert_eq!(w.consumer, 2);
        assert_eq!(w.replicas, 3);
        // ki: phase 0 → 1 ⇒ double buffering.
        let mem_bufs: Vec<&BufferSpec> =
            plan.buffers.iter().filter(|b| b.kind == BufferKind::Mem).collect();
        assert_eq!(mem_bufs.len(), 2);
        assert!(mem_bufs.iter().any(|b| b.producer == 0 && b.consumer == 1 && b.replicas == 2));
        assert!(mem_bufs.iter().any(|b| b.producer == 1 && b.consumer == 2 && b.replicas == 2));
    }

    #[test]
    fn pipeline_schedule_offsets_blocks() {
        let (_, _, plan) = expf_plan();
        assert_eq!(plan.depth, 3);
        assert_eq!(plan.block_for(0, 5), Some(5));
        assert_eq!(plan.block_for(2, 5), Some(3));
        assert_eq!(plan.block_for(2, 1), None, "prologue: phase 2 idle");
        assert_eq!(plan.schedule_length(10), 12);
        assert_eq!(plan.schedule_length(0), 0);
    }

    #[test]
    fn max_block_respects_l1() {
        let (_, _, plan) = expf_plan();
        let per_elem = plan.bytes_per_element();
        // w: 8 B x 3; ki: 8 B x 2 (fsd-produced); t: 8 B x 2 (two sw halves).
        assert_eq!(per_elem, 8 * 3 + 8 * 2 + 8 * 2);
        let max = plan.max_block(128 * 1024, 16 * 1024);
        assert_eq!(max, (128 * 1024 - 16 * 1024) / per_elem);
    }

    #[test]
    fn reorder_keeps_phase_internal_order() {
        let (dfg, part, _) = expf_plan();
        let r = reorder(&dfg, &part);
        // The integer phase must appear in original relative order:
        // extract int instructions from both and compare.
        let orig_int: Vec<String> = dfg
            .insts()
            .iter()
            .zip(dfg.domains())
            .filter(|(_, d)| **d == Domain::Int)
            .map(|(i, _)| i.to_string())
            .collect();
        let reord_int: Vec<String> =
            r.iter().filter(|i| !i.is_fp()).map(std::string::ToString::to_string).collect();
        assert_eq!(orig_int, reord_int);
    }
}
