//! # COPIFT — Co-Operative Parallel Integer and Floating-point Threads
//!
//! The core contribution of *Dual-Issue Execution of Mixed Integer and
//! Floating-Point Workloads on Energy-Efficient In-Order RISC-V Cores*
//! (Colagrande & Benini, DAC 2025): a methodology that restructures mixed
//! integer/FP instruction sequences so a Snitch-class core can sustain
//! pseudo dual-issue execution despite dependencies between the two
//! threads.
//!
//! The seven steps of the paper's §II-A map to modules:
//!
//! | Step | Module | What it does |
//! |------|--------|--------------|
//! | 1 | [`dfg`] | DFG construction, Type 1/2/3 dependency classification |
//! | 2 | [`partition`] | min-cut phase partitioning with acyclic precedence |
//! | 3 | [`schedule::reorder`] | phase-grouped instruction reordering |
//! | 4 | [`schedule::TilingPlan`] | loop tiling/fission, spill buffers |
//! | 5 | [`schedule::TilingPlan`] | software pipelining, buffer replication |
//! | 6 | [`ssrmap`] | SSR mapping, stream fusion, Type 1 conversion |
//! | 7 | [`frepmap`] | FREP fusion and legality (COPIFT ISA extensions) |
//!
//! [`compiler::analyze`] runs the full pipeline; [`estimate`] provides the
//! paper's Equations (1)–(3) used throughout Table I; [`codegen::compile`]
//! turns two-phase kernels into complete runnable COPIFT programs.

#![forbid(unsafe_code)]

pub mod codegen;
pub mod compiler;
pub mod dfg;
pub mod estimate;
pub mod frepmap;
pub mod partition;
pub mod schedule;
pub mod ssrmap;

pub use codegen::{compile, CodegenError, KernelSpec};
pub use compiler::{analyze, Analysis};
pub use estimate::MixCounts;
