//! Step 6: mapping FP memory accesses to SSR streams, including *stream
//! fusion* (Fig. 1i) and Type 1 → Type 2 conversion (Fig. 1h).
//!
//! After tiling, every FP-thread memory access is a 1-D block stream. A
//! Snitch core has only three SSRs, so multiple 1-D streams must often be
//! *fused* into one higher-dimensional affine stream: interleaving reads of
//! `x[i]` and `t[i]` becomes a 2-D pattern
//! `addr = i*stride + d*(base_t - base_x) + base_x` with `d ∈ {0,1}` —
//! legal whenever the per-iteration access order is fixed and the base
//! deltas are constant.
//!
//! Data-dependent (Type 1) streams either go through an ISSR (hardware
//! indirection over an index stream) or are converted to Type 2 in software
//! by prefetching into a dense staging buffer on the integer side.

use std::fmt;

/// A 1-D element stream over a block buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Stream1d {
    /// Base address (symbolic: buffer id from the tiling plan or an I/O
    /// array), represented here by its byte address within the block layout.
    pub base: u32,
    /// Byte stride between consecutive elements.
    pub stride: i32,
    /// Elements per block.
    pub count: u32,
    /// Whether the FP thread writes (true) or reads (false) the stream.
    pub write: bool,
}

/// A fused affine stream, at most four-dimensional (the SSR limit).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FusedStream {
    /// Base address of the first element.
    pub base: u32,
    /// `(bound, stride)` pairs, innermost first; `bound` is the iteration
    /// count of that dimension (not minus one).
    pub dims: Vec<(u32, i32)>,
    /// Write stream?
    pub write: bool,
}

impl FusedStream {
    /// Total elements served by the stream.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dims.iter().map(|&(b, _)| u64::from(b)).product()
    }

    /// Enumerates the generated addresses (for validation).
    #[must_use]
    #[allow(clippy::needless_range_loop)]
    pub fn addresses(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.total() as usize);
        let mut counters = vec![0u32; self.dims.len()];
        'outer: loop {
            let mut addr = self.base as i64;
            for (c, &(_, s)) in counters.iter().zip(&self.dims) {
                addr += i64::from(*c) * i64::from(s);
            }
            out.push(addr as u32);
            for d in 0..self.dims.len() {
                counters[d] += 1;
                if counters[d] < self.dims[d].0 {
                    continue 'outer;
                }
                counters[d] = 0;
            }
            break;
        }
        out
    }
}

/// Why a set of streams cannot be fused.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FusionError {
    /// Streams mix reads and writes.
    MixedDirection,
    /// Per-element interleave requires equal element counts.
    UnequalCounts,
    /// Inner strides differ between the constituent streams.
    UnequalStrides,
    /// Base deltas are not constant, so no affine dimension exists.
    IrregularBases,
    /// The fusion would exceed the SSR's four dimensions.
    TooManyDims,
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FusionError::MixedDirection => "streams mix reads and writes",
            FusionError::UnequalCounts => "streams have different element counts",
            FusionError::UnequalStrides => "streams have different strides",
            FusionError::IrregularBases => "stream bases are not equally spaced",
            FusionError::TooManyDims => "fusion exceeds four dimensions",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FusionError {}

/// Fuses `streams`, accessed round-robin once per loop iteration (the
/// paper's Fig. 1i generalized to any number of streams): element `i` of
/// stream 0, then of stream 1, ... then `i+1` of stream 0, and so on.
///
/// # Errors
///
/// Returns a [`FusionError`] explaining the failed legality condition.
pub fn fuse(streams: &[Stream1d]) -> Result<FusedStream, FusionError> {
    let Some(first) = streams.first() else {
        return Err(FusionError::UnequalCounts);
    };
    if streams.len() == 1 {
        return Ok(FusedStream {
            base: first.base,
            dims: vec![(first.count, first.stride)],
            write: first.write,
        });
    }
    if !streams.iter().all(|s| s.write == first.write) {
        return Err(FusionError::MixedDirection);
    }
    if !streams.iter().all(|s| s.count == first.count) {
        return Err(FusionError::UnequalCounts);
    }
    if !streams.iter().all(|s| s.stride == first.stride) {
        return Err(FusionError::UnequalStrides);
    }
    let delta = streams[1].base as i64 - first.base as i64;
    for w in streams.windows(2) {
        if w[1].base as i64 - w[0].base as i64 != delta {
            return Err(FusionError::IrregularBases);
        }
    }
    let fused = FusedStream {
        base: first.base,
        dims: vec![(streams.len() as u32, delta as i32), (first.count, first.stride)],
        write: first.write,
    };
    if fused.dims.len() > 4 {
        return Err(FusionError::TooManyDims);
    }
    Ok(fused)
}

/// How a Type 1 (data-dependent) stream is realized (paper §II-A, Fig. 1h).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Type1Mapping {
    /// Convert to Type 2 in software: the integer thread prefetches the
    /// indexed data into a dense staging buffer; costs `copies` extra
    /// integer load/store pairs per element.
    Prefetch {
        /// 32-bit words copied per element.
        copies: u32,
    },
    /// Map directly to an ISSR: the index stream is stored densely and the
    /// hardware performs the indirection (used by the paper's `logf`).
    Issr,
}

/// Greedy SSR allocation: fuse compatible streams until at most
/// `num_ssrs` remain.
///
/// # Errors
///
/// Returns the first [`FusionError`] if the streams cannot be reduced to
/// the available SSRs.
pub fn allocate(streams: &[Stream1d], num_ssrs: usize) -> Result<Vec<FusedStream>, FusionError> {
    let reads: Vec<Stream1d> = streams.iter().copied().filter(|s| !s.write).collect();
    let writes: Vec<Stream1d> = streams.iter().copied().filter(|s| s.write).collect();
    let mut groups: Vec<Vec<Stream1d>> = Vec::new();
    if !reads.is_empty() {
        groups.push(reads);
    }
    if !writes.is_empty() {
        groups.push(writes);
    }
    // If we have spare SSRs, split the larger group for less contention.
    while groups.len() < num_ssrs {
        let Some(big) = groups.iter_mut().max_by_key(|g| g.len()) else {
            break;
        };
        if big.len() < 2 {
            break;
        }
        let tail = big.split_off(big.len() / 2 + big.len() % 2);
        if tail.is_empty() {
            break;
        }
        groups.push(tail);
    }
    if groups.len() > num_ssrs {
        return Err(FusionError::TooManyDims);
    }
    groups.iter().map(|g| fuse(g)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1i_two_stream_merge() {
        // Two 1-D streams with equal stride and constant base delta fuse
        // into the paper's 2-D pattern.
        let a = Stream1d { base: 0x1000, stride: 8, count: 4, write: false };
        let b = Stream1d { base: 0x2000, stride: 8, count: 4, write: false };
        let f = fuse(&[a, b]).unwrap();
        assert_eq!(f.dims, vec![(2, 0x1000), (4, 8)]);
        assert_eq!(
            f.addresses(),
            vec![0x1000, 0x2000, 0x1008, 0x2008, 0x1010, 0x2010, 0x1018, 0x2018],
            "per-element interleave of the two arrays"
        );
    }

    #[test]
    fn three_stream_write_merge() {
        // The paper fuses the w, ki and y write streams: requires the three
        // block buffers to be laid out at equal deltas.
        let w = Stream1d { base: 0x100, stride: 8, count: 2, write: true };
        let ki = Stream1d { base: 0x200, stride: 8, count: 2, write: true };
        let y = Stream1d { base: 0x300, stride: 8, count: 2, write: true };
        let f = fuse(&[w, ki, y]).unwrap();
        assert_eq!(f.total(), 6);
        assert_eq!(f.addresses(), vec![0x100, 0x200, 0x300, 0x108, 0x208, 0x308]);
    }

    #[test]
    fn fusion_legality_errors() {
        let a = Stream1d { base: 0, stride: 8, count: 4, write: false };
        assert_eq!(
            fuse(&[a, Stream1d { write: true, ..a }]).unwrap_err(),
            FusionError::MixedDirection
        );
        assert_eq!(fuse(&[a, Stream1d { count: 5, ..a }]).unwrap_err(), FusionError::UnequalCounts);
        assert_eq!(
            fuse(&[a, Stream1d { stride: 16, ..a }]).unwrap_err(),
            FusionError::UnequalStrides
        );
        let b = Stream1d { base: 0x100, ..a };
        let c = Stream1d { base: 0x300, ..a }; // delta 0x200 ≠ 0x100
        assert_eq!(fuse(&[a, b, c]).unwrap_err(), FusionError::IrregularBases);
    }

    #[test]
    fn allocate_expf_streams_to_three_ssrs() {
        // The paper's 6 streams (reads x, w, t; writes w', ki, y) must fit
        // 3 SSRs. Lay the buffers out at uniform deltas.
        let reads = [
            Stream1d { base: 0x0000, stride: 8, count: 32, write: false },
            Stream1d { base: 0x1000, stride: 8, count: 32, write: false },
            Stream1d { base: 0x2000, stride: 8, count: 32, write: false },
        ];
        let writes = [
            Stream1d { base: 0x3000, stride: 8, count: 32, write: true },
            Stream1d { base: 0x4000, stride: 8, count: 32, write: true },
            Stream1d { base: 0x5000, stride: 8, count: 32, write: true },
        ];
        let all: Vec<Stream1d> = reads.iter().chain(&writes).copied().collect();
        let fused = allocate(&all, 3).unwrap();
        assert_eq!(fused.len(), 3);
        let total: u64 = fused.iter().map(FusedStream::total).sum();
        assert_eq!(total, 6 * 32, "every element of every stream is served");
    }

    #[test]
    fn single_stream_passthrough() {
        let a = Stream1d { base: 0x40, stride: -8, count: 3, write: false };
        let f = fuse(&[a]).unwrap();
        assert_eq!(f.addresses(), vec![0x40, 0x38, 0x30]);
    }
}
