//! Step 2: phase partitioning.
//!
//! Splits the DFG into an ordered sequence of single-domain *phases* with an
//! acyclic precedence relation (every edge goes forward), minimizing the
//! number of edges crossing phase boundaries — each crossing edge becomes a
//! spill buffer after tiling, so the cut size directly controls memory
//! traffic (paper: "it is important to minimize the number of edges between
//! subgraphs").
//!
//! Algorithm: nodes carry a parity constraint (phase domains alternate), so
//! each node has an ASAP phase (longest path from sources, +1 on every
//! domain change) and an ALAP phase. Nodes are then placed greedily in
//! reverse topological order at the slack position minimizing incremental
//! cut, followed by local-improvement sweeps. For the paper's kernel sizes
//! (≲ 100 nodes) this reproduces the published partitions exactly (see the
//! `expf` test).

use crate::dfg::{DepEdge, Dfg, Domain};

/// One phase: a maximal single-domain group of instructions with a fixed
/// position in the phase order.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Thread domain of every node in the phase.
    pub domain: Domain,
    /// Member nodes in original program order.
    pub nodes: Vec<usize>,
}

/// Result of Step 2.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Ordered phases (`phases[0]` executes logically first).
    pub phases: Vec<Phase>,
    /// Node → phase index.
    pub assignment: Vec<usize>,
    /// Edges crossing phase boundaries (each becomes inter-phase
    /// communication through memory after Step 4).
    pub cut_edges: Vec<DepEdge>,
}

impl Partition {
    /// Partitions a DFG. Returns `None` for an empty graph.
    #[must_use]
    pub fn of(dfg: &Dfg) -> Option<Partition> {
        let n = dfg.insts().len();
        if n == 0 {
            return None;
        }
        let domains = dfg.domains();
        let edges = dfg.edges();

        // The domain of phase p: established by the first phase's domain.
        // Try both start domains, keep the better cut.
        let best = [Domain::Fp, Domain::Int]
            .into_iter()
            .map(|start| assign(domains, edges, start))
            .min_by_key(|a| (cut_size(edges, a), a.iter().copied().max().unwrap_or(0)))?;

        let k = best.iter().copied().max().unwrap_or(0) + 1;
        let start_domain = phase_domain_table(&best, domains);
        let mut phases: Vec<Phase> =
            (0..k).map(|p| Phase { domain: start_domain(p), nodes: Vec::new() }).collect();
        for (node, &p) in best.iter().enumerate() {
            phases[p].nodes.push(node);
        }
        // Drop empty phases, compacting indices.
        let mut remap = vec![usize::MAX; k];
        let mut compact: Vec<Phase> = Vec::new();
        for (p, phase) in phases.into_iter().enumerate() {
            if !phase.nodes.is_empty() {
                remap[p] = compact.len();
                compact.push(phase);
            }
        }
        let assignment: Vec<usize> = best.iter().map(|&p| remap[p]).collect();
        let cut_edges =
            edges.iter().copied().filter(|e| assignment[e.from] != assignment[e.to]).collect();
        Some(Partition { phases: compact, assignment, cut_edges })
    }

    /// Number of phases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the partition is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Validates the acyclic precedence relation: every DFG edge must point
    /// to the same or a later phase.
    #[must_use]
    pub fn is_acyclic(&self, dfg: &Dfg) -> bool {
        dfg.edges().iter().all(|e| self.assignment[e.from] <= self.assignment[e.to])
    }
}

fn phase_domain_table<'a>(
    assignment: &'a [usize],
    domains: &'a [Domain],
) -> impl Fn(usize) -> Domain + 'a {
    move |p: usize| {
        assignment
            .iter()
            .zip(domains)
            .find_map(|(&a, &d)| if a == p { Some(d) } else { None })
            .unwrap_or(Domain::Int)
    }
}

fn parity_of(domain: Domain, start: Domain) -> usize {
    usize::from(domain != start)
}

/// Greedy slack-based assignment with local improvement.
fn assign(domains: &[Domain], edges: &[DepEdge], start: Domain) -> Vec<usize> {
    let n = domains.len();
    // ASAP: longest path with +1 per domain change, parity-aligned.
    let mut asap = vec![0usize; n];
    for i in 0..n {
        let mut p = parity_of(domains[i], start);
        for e in edges.iter().filter(|e| e.to == i) {
            let min = if domains[e.from] == domains[i] { asap[e.from] } else { asap[e.from] + 1 };
            while p < min {
                p += 2; // keep parity
            }
        }
        asap[i] = p;
    }
    let max_phase = asap.iter().copied().max().unwrap_or(0);
    // ALAP from sinks.
    let mut alap = vec![0usize; n];
    for i in (0..n).rev() {
        let mut p = max_phase - (max_phase + parity_of(domains[i], start)) % 2;
        // ^ largest phase ≤ max_phase with this node's parity
        for e in edges.iter().filter(|e| e.from == i) {
            let limit =
                if domains[e.to] == domains[i] { alap[e.to] } else { alap[e.to].saturating_sub(1) };
            while p > limit {
                p = p.saturating_sub(2);
            }
        }
        alap[i] = p.max(asap[i]);
        if alap[i] < asap[i] {
            alap[i] = asap[i];
        }
    }

    // Greedy: place nodes in topological (program) order at the slack
    // position minimizing the cut against already-placed neighbours,
    // preferring earlier phases on ties (keeps FREP loops leading).
    let mut phase: Vec<usize> = asap.clone();
    let mut improved = true;
    let mut sweeps = 0;
    while improved && sweeps < 8 {
        improved = false;
        sweeps += 1;
        for i in 0..n {
            let (lo, hi) = (asap[i], alap[i]);
            if lo == hi {
                continue;
            }
            let mut best_p = phase[i];
            let mut best_cost = node_cut_cost(i, phase[i], &phase, edges, domains);
            let mut p = lo;
            while p <= hi {
                if p != phase[i] && legal_move(i, p, &phase, edges, domains) {
                    let c = node_cut_cost(i, p, &phase, edges, domains);
                    if c < best_cost {
                        best_cost = c;
                        best_p = p;
                    }
                }
                p += 2;
            }
            if best_p != phase[i] {
                phase[i] = best_p;
                improved = true;
            }
        }
    }
    phase
}

fn legal_move(
    node: usize,
    p: usize,
    phase: &[usize],
    edges: &[DepEdge],
    domains: &[Domain],
) -> bool {
    edges.iter().all(|e| {
        if e.to == node {
            let min =
                if domains[e.from] == domains[node] { phase[e.from] } else { phase[e.from] + 1 };
            p >= min
        } else if e.from == node {
            let max = if domains[e.to] == domains[node] { phase[e.to] } else { phase[e.to] - 1 };
            p <= max
        } else {
            true
        }
    })
}

fn node_cut_cost(
    node: usize,
    p: usize,
    phase: &[usize],
    edges: &[DepEdge],
    _domains: &[Domain],
) -> usize {
    edges
        .iter()
        .filter(|e| (e.to == node && phase[e.from] != p) || (e.from == node && phase[e.to] != p))
        .count()
}

fn cut_size(edges: &[DepEdge], assignment: &[usize]) -> usize {
    edges.iter().filter(|e| assignment[e.from] != assignment[e.to]).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::tests_support::expf_body;

    #[test]
    fn expf_partitions_into_three_phases() {
        let body = expf_body();
        let dfg = Dfg::build(&body);
        let part = Partition::of(&dfg).expect("non-empty");
        // Paper Fig. 1c: FP Phase 0 → Int Phase 1 → FP Phase 2.
        assert_eq!(part.len(), 3, "phases: {:?}", part.phases);
        assert_eq!(part.phases[0].domain, Domain::Fp);
        assert_eq!(part.phases[1].domain, Domain::Int);
        assert_eq!(part.phases[2].domain, Domain::Fp);
        assert!(part.is_acyclic(&dfg));
        // The paper's cut: 4→5, 12→18, 14→18 (memory) and 21→22 (fa4),
        // 0-based: (3,4), (11,17), (13,17), (20,21).
        let mut cut: Vec<(usize, usize)> = part.cut_edges.iter().map(|e| (e.from, e.to)).collect();
        cut.sort_unstable();
        cut.dedup();
        assert_eq!(cut, vec![(3, 4), (11, 17), (13, 17), (20, 21)]);
    }

    #[test]
    fn expf_phase_membership_matches_paper() {
        let body = expf_body();
        let dfg = Dfg::build(&body);
        let part = Partition::of(&dfg).unwrap();
        // 0-based: Phase 0 = {0,1,2,3,14,15,16,18,19,20},
        // Phase 1 = {4..13}, Phase 2 = {17,21,22}.
        assert_eq!(part.phases[0].nodes, vec![0, 1, 2, 3, 14, 15, 16, 18, 19, 20]);
        assert_eq!(part.phases[1].nodes, (4..=13).collect::<Vec<_>>());
        assert_eq!(part.phases[2].nodes, vec![17, 21, 22]);
    }

    #[test]
    fn pure_single_domain_code_is_one_phase() {
        use snitch_asm::builder::ProgramBuilder;
        use snitch_riscv::reg::IntReg;
        let mut b = ProgramBuilder::new();
        b.add(IntReg::A0, IntReg::A1, IntReg::A2);
        b.add(IntReg::A3, IntReg::A0, IntReg::A2);
        let dfg = Dfg::build(b.build().unwrap().text());
        let part = Partition::of(&dfg).unwrap();
        assert_eq!(part.len(), 1);
        assert!(part.cut_edges.is_empty());
    }

    #[test]
    fn empty_body_yields_none() {
        let dfg = Dfg::build(&[]);
        assert!(Partition::of(&dfg).is_none());
    }

    #[test]
    fn interleaved_independent_domains_need_two_phases() {
        use snitch_asm::builder::ProgramBuilder;
        use snitch_riscv::reg::{FpReg, IntReg};
        let mut b = ProgramBuilder::new();
        b.add(IntReg::A0, IntReg::A1, IntReg::A2);
        b.fadd_d(FpReg::FA0, FpReg::FA1, FpReg::FA2);
        b.add(IntReg::A3, IntReg::A0, IntReg::A2);
        b.fadd_d(FpReg::FA3, FpReg::FA0, FpReg::FA2);
        let dfg = Dfg::build(b.build().unwrap().text());
        let part = Partition::of(&dfg).unwrap();
        assert_eq!(part.len(), 2, "independent threads fold into one phase each");
        assert!(part.cut_edges.is_empty(), "no cross edges, no cut");
    }
}
