//! Step 7: FREP mapping — fusing the FP phases into one hardware loop that
//! precedes the integer loop.
//!
//! Since iteration 0 of an FREP body is issued by the integer core, the FREP
//! loop must come *first* in each block iteration so its replays overlap the
//! integer phase. When a block iteration executes several FP phases (on
//! different data blocks, per the software pipeline), they are fused into a
//! single body so the integer thread overlaps all of them.
//!
//! This module also checks FREP legality: a body instruction must not touch
//! the integer register file — the exact restriction the COPIFT ISA
//! extensions lift for conversions and comparisons.

use snitch_riscv::inst::Inst;

use crate::dfg::{Dfg, Domain};
use crate::partition::Partition;

/// Why an instruction cannot appear in an FREP body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FrepViolation {
    /// Offending instruction.
    pub inst: Inst,
    /// Node index in the original body.
    pub node: usize,
    /// Human-readable reason and remedy.
    pub reason: String,
}

/// The fused FREP plan for one steady-state block iteration.
#[derive(Clone, Debug)]
pub struct FrepPlan {
    /// Fused FP body (phase order preserved; each phase operates on its own
    /// pipelined data block at run time).
    pub body: Vec<Inst>,
    /// Source phase indices fused into the body.
    pub fused_phases: Vec<usize>,
    /// Violations that must be fixed (by SSR mapping or the COPIFT ISA
    /// extensions) before the body is FREP-legal.
    pub violations: Vec<FrepViolation>,
}

impl FrepPlan {
    /// Builds the plan from a partition: concatenates all FP phases.
    #[must_use]
    pub fn of(dfg: &Dfg, partition: &Partition) -> FrepPlan {
        let mut body = Vec::new();
        let mut fused_phases = Vec::new();
        let mut violations = Vec::new();
        for (p, phase) in partition.phases.iter().enumerate() {
            if phase.domain != Domain::Fp {
                continue;
            }
            fused_phases.push(p);
            for &n in &phase.nodes {
                let inst = dfg.insts()[n];
                if !inst.frep_legal() {
                    violations.push(FrepViolation { inst, node: n, reason: remedy(&inst) });
                }
                body.push(inst);
            }
        }
        FrepPlan { body, fused_phases, violations }
    }

    /// Whether the body is already FREP-legal.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty()
    }
}

fn remedy(inst: &Inst) -> String {
    match inst {
        Inst::Flw { .. } | Inst::Fld { .. } | Inst::Fsw { .. } | Inst::Fsd { .. } => {
            format!("`{inst}` consumes an integer base address: map the access to an SSR (Step 6)")
        }
        i if i.fp_writes_int_rf() || i.fp_reads_int_rf() => format!(
            "`{inst}` crosses register files: use the COPIFT custom-1 replacement and spill \
             the integer communication through memory (paper §II-B)"
        ),
        _ => format!("`{inst}` is not an FP-subsystem instruction"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::tests_support::expf_body;

    #[test]
    fn expf_fuses_two_fp_phases() {
        let body = expf_body();
        let dfg = Dfg::build(&body);
        let part = Partition::of(&dfg).unwrap();
        let plan = FrepPlan::of(&dfg, &part);
        assert_eq!(plan.fused_phases, vec![0, 2]);
        assert_eq!(plan.body.len(), 13);
        // The raw body still holds explicit loads/stores: Step 6 must map
        // them to SSRs before the loop is legal.
        assert!(!plan.is_legal());
        assert_eq!(plan.violations.len(), 4, "fld x, fsd ki, fld t, fsd y");
        assert!(plan.violations.iter().all(|v| v.reason.contains("SSR")));
    }

    #[test]
    fn cross_rf_instructions_point_to_copift_extensions() {
        use snitch_asm::builder::ProgramBuilder;
        use snitch_riscv::reg::{FpReg, IntReg};
        let mut b = ProgramBuilder::new();
        b.fcvt_d_w(FpReg::FA0, IntReg::A0);
        b.flt_d(IntReg::A1, FpReg::FA0, FpReg::FA1);
        let dfg = Dfg::build(b.build().unwrap().text());
        let part = Partition::of(&dfg).unwrap();
        let plan = FrepPlan::of(&dfg, &part);
        assert_eq!(plan.violations.len(), 2);
        assert!(plan.violations.iter().all(|v| v.reason.contains("custom-1")));
    }

    #[test]
    fn copift_replacements_are_legal() {
        use snitch_asm::builder::ProgramBuilder;
        use snitch_riscv::reg::FpReg;
        let mut b = ProgramBuilder::new();
        b.copift_fcvt_d_wu(FpReg::FA0, FpReg::FT0);
        b.copift_flt_d(FpReg::FA1, FpReg::FA0, FpReg::FA2);
        b.fmadd_d(FpReg::FA3, FpReg::FA0, FpReg::FA1, FpReg::FA3);
        let dfg = Dfg::build(b.build().unwrap().text());
        let part = Partition::of(&dfg).unwrap();
        let plan = FrepPlan::of(&dfg, &part);
        assert!(plan.is_legal());
        assert_eq!(plan.body.len(), 3);
    }
}
