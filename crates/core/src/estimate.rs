//! Analytical speedup and IPC estimators (paper Equations 1–3).
//!
//! These are the quantities Table I reports: assuming similar per-thread
//! IPCs, the speedup of dual-issue execution is approximated from static
//! instruction counts alone:
//!
//! * `S′ = (n_int^base + n_fp^base) / max(n_int^copift, n_fp^copift)` (Eq. 1)
//! * `I′ = (n_int^copift + n_fp^copift) / max(n_int^copift, n_fp^copift)` (Eq. 2)
//! * `S″ = I″ = 1 + TI`, with thread imbalance
//!   `TI = min(n_int, n_fp) / max(n_int, n_fp)` over the *baseline* counts
//!   (Eq. 3, using `a + b = max(a,b) + min(a,b)`).

use snitch_riscv::inst::Inst;

/// Static instruction mix of one steady-state loop iteration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MixCounts {
    /// Integer-thread instructions (including FREP/SSR configuration).
    pub n_int: u64,
    /// FP-thread instructions.
    pub n_fp: u64,
}

impl MixCounts {
    /// Counts the mix of an instruction sequence.
    #[must_use]
    pub fn of(body: &[Inst]) -> Self {
        let n_fp = body.iter().filter(|i| i.is_fp()).count() as u64;
        MixCounts { n_int: body.len() as u64 - n_fp, n_fp }
    }

    /// Total instructions.
    #[must_use]
    pub fn total(self) -> u64 {
        self.n_int + self.n_fp
    }

    /// The larger thread's count (the dual-issue critical path).
    #[must_use]
    pub fn critical(self) -> u64 {
        self.n_int.max(self.n_fp)
    }
}

/// Thread imbalance `TI = min / max` of a mix (paper Eq. 3 context;
/// 0 for an empty or single-domain mix).
#[must_use]
#[allow(clippy::manual_is_multiple_of, clippy::if_not_else)]
pub fn thread_imbalance(mix: MixCounts) -> f64 {
    if mix.critical() == 0 {
        0.0
    } else {
        mix.n_int.min(mix.n_fp) as f64 / mix.critical() as f64
    }
}

/// Expected speedup `S′` from baseline and COPIFT mixes (Eq. 1).
#[must_use]
pub fn s_prime(base: MixCounts, copift: MixCounts) -> f64 {
    base.total() as f64 / copift.critical().max(1) as f64
}

/// Expected IPC `I′` of the COPIFT variant (Eq. 2), assuming one
/// instruction per thread per cycle on the critical thread.
#[must_use]
pub fn i_prime(copift: MixCounts) -> f64 {
    copift.total() as f64 / copift.critical().max(1) as f64
}

/// First-order speedup estimate `S″ = 1 + TI` from the baseline mix alone
/// (Eq. 3).
#[must_use]
pub fn s_double_prime(base: MixCounts) -> f64 {
    1.0 + thread_imbalance(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(n_int: u64, n_fp: u64) -> MixCounts {
        MixCounts { n_int, n_fp }
    }

    /// Table I rows: (kernel, base, copift, I′, S″, S′).
    type Row = (&'static str, (u64, u64), (u64, u64), f64, f64, f64);
    const TABLE1: &[Row] = &[
        ("expf", (43, 52), (43, 36), 1.84, 1.83, 2.21),
        ("logf", (39, 52), (57, 36), 1.63, 1.75, 1.6),
        ("poly_lcg", (44, 80), (72, 80), 1.9, 1.55, 1.55),
        ("pi_lcg", (44, 56), (72, 56), 1.78, 1.79, 1.39),
        ("poly_xoshiro128p", (172, 80), (200, 80), 1.4, 1.47, 1.26),
        ("pi_xoshiro128p", (172, 56), (200, 56), 1.28, 1.33, 1.14),
    ];

    #[test]
    fn estimators_reproduce_table1() {
        for &(name, (bi, bf), (ci, cf), i_p, s_pp, s_p) in TABLE1 {
            let base = mix(bi, bf);
            let cop = mix(ci, cf);
            assert!(
                (i_prime(cop) - i_p).abs() < 0.01,
                "{name}: I' {} vs paper {i_p}",
                i_prime(cop)
            );
            assert!(
                (s_double_prime(base) - s_pp).abs() < 0.01,
                "{name}: S'' {} vs paper {s_pp}",
                s_double_prime(base)
            );
            assert!(
                (s_prime(base, cop) - s_p).abs() < 0.01,
                "{name}: S' {} vs paper {s_p}",
                s_prime(base, cop)
            );
        }
    }

    #[test]
    fn table1_thread_imbalance() {
        // Paper TI column: expf 0.83, logf 0.75, poly_lcg 0.55, pi_lcg 0.79,
        // poly_xoshiro 0.47, pi_xoshiro 0.33.
        let ti: Vec<f64> =
            TABLE1.iter().map(|&(_, (bi, bf), ..)| thread_imbalance(mix(bi, bf))).collect();
        let paper = [0.83, 0.75, 0.55, 0.79, 0.47, 0.33];
        for (t, p) in ti.iter().zip(paper) {
            assert!((t - p).abs() < 0.01, "{t} vs {p}");
        }
    }

    #[test]
    fn identity_s_double_prime_equals_one_plus_ti() {
        // Property over a grid of mixes (the paper's footnote identity).
        for n_int in [1u64, 3, 17, 44, 172] {
            for n_fp in [1u64, 5, 52, 80] {
                let m = mix(n_int, n_fp);
                let lhs = m.total() as f64 / m.critical() as f64;
                assert!((lhs - s_double_prime(m)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn counts_from_instructions() {
        use snitch_asm::builder::ProgramBuilder;
        use snitch_riscv::reg::{FpReg, IntReg};
        let mut b = ProgramBuilder::new();
        b.add(IntReg::A0, IntReg::A1, IntReg::A2);
        b.fadd_d(FpReg::FA0, FpReg::FA1, FpReg::FA2);
        b.frep_o(IntReg::T0, 1, 0, 0); // integer-side config
        b.copift_flt_d(FpReg::FA0, FpReg::FA1, FpReg::FA2); // FP thread
        let m = MixCounts::of(b.build().unwrap().text());
        assert_eq!(m, mix(2, 2));
    }

    #[test]
    fn degenerate_mixes() {
        assert_eq!(thread_imbalance(mix(0, 0)), 0.0);
        assert_eq!(s_double_prime(mix(10, 0)), 1.0, "pure integer code cannot speed up");
        assert_eq!(i_prime(mix(0, 0)), 0.0);
    }
}
