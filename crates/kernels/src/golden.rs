//! Golden (bit-exact) reference models for all six workloads.
//!
//! Every model performs the *same* floating-point operations in the *same*
//! order as the corresponding simulated kernels, so simulator output is
//! validated bit-for-bit, not approximately.

/// LCG multiplier (Numerical Recipes).
pub const LCG_A: u32 = 1_664_525;
/// LCG increment.
pub const LCG_C: u32 = 1_013_904_223;
/// Base seed for the four parallel generator streams.
pub const SEED0: u32 = 0x1234_5678;
/// Stream seed spacing (golden ratio hash constant).
pub const SEED_GAMMA: u32 = 0x9E37_79B9;

/// One LCG step: `s = s*A + C`, returning the new state as the draw.
#[must_use]
pub fn lcg_next(state: &mut u32) -> u32 {
    *state = state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
    *state
}

/// Initial states of the four parallel LCG streams.
#[must_use]
pub fn lcg_seeds() -> [u32; 4] {
    std::array::from_fn(|s| SEED0.wrapping_add(SEED_GAMMA.wrapping_mul(s as u32)))
}

/// xoshiro128+ state for one stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Xoshiro128p {
    /// The four state words.
    pub s: [u32; 4],
}

impl Xoshiro128p {
    /// Seeds a stream with splitmix32 (so streams are decorrelated).
    #[must_use]
    pub fn seeded(stream: u32) -> Self {
        let mut x = SEED0.wrapping_add(SEED_GAMMA.wrapping_mul(stream)).wrapping_add(1);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9);
            let mut z = x;
            z = (z ^ (z >> 16)).wrapping_mul(0x21F0_AAAD);
            z = (z ^ (z >> 15)).wrapping_mul(0x735A_2D97);
            z ^ (z >> 15)
        };
        Xoshiro128p { s: [next(), next(), next(), next()] }
    }

    /// One xoshiro128+ step (the generator's conventional method name).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        let result = self.s[0].wrapping_add(self.s[3]);
        let t = self.s[1] << 9;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(11);
        result
    }
}

/// The two pseudo-random number generators of the paper's Monte Carlo
/// kernels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rng {
    /// 32-bit linear congruential generator (integer mul/add — exercises
    /// the write-back port hazard).
    Lcg,
    /// xoshiro128+ (xor/shift/rotate — integer-heavy, no multiplies).
    Xoshiro128p,
}

/// Generates `n_points` coordinate pairs with four interleaved streams in
/// the exact draw order of the assembly kernels: batches of 8 points =
/// 16 draws, draw `d` of a batch taken from stream `d % 4`, filling
/// x[0..4], y[0..4], x[4..8], y[4..8].
#[must_use]
pub fn gen_points(rng: Rng, n_points: usize) -> (Vec<u32>, Vec<u32>) {
    assert!(n_points.is_multiple_of(8), "points must come in batches of 8");
    let mut xs = vec![0u32; n_points];
    let mut ys = vec![0u32; n_points];
    let mut lcg = lcg_seeds();
    let mut xo: [Xoshiro128p; 4] = std::array::from_fn(|s| Xoshiro128p::seeded(s as u32));
    for batch in 0..n_points / 8 {
        let base = batch * 8;
        for k in 0..4 {
            for s in 0..4 {
                let v = match rng {
                    Rng::Lcg => lcg_next(&mut lcg[s]),
                    Rng::Xoshiro128p => xo[s].next(),
                };
                match k {
                    0 => xs[base + s] = v,
                    1 => ys[base + s] = v,
                    2 => xs[base + 4 + s] = v,
                    _ => ys[base + 4 + s] = v,
                }
            }
        }
    }
    (xs, ys)
}

/// The four parallel LCG stream states after `batches` whole batches have
/// been drawn (each batch advances every stream by 4 draws). Used to seed
/// hart `h` of a data-parallel run at the exact point of the global draw
/// sequence where its chunk begins, so the union of all harts' points equals
/// the single-core point set draw for draw.
#[must_use]
pub fn lcg_states_after(batches: usize) -> [u32; 4] {
    let mut states = lcg_seeds();
    for _ in 0..4 * batches {
        for s in &mut states {
            let _ = lcg_next(s);
        }
    }
    states
}

/// The four parallel xoshiro128+ generators after `batches` whole batches
/// (4 draws per stream per batch) — the xoshiro analogue of
/// [`lcg_states_after`].
#[must_use]
pub fn xoshiro_states_after(batches: usize) -> [Xoshiro128p; 4] {
    let mut gens: [Xoshiro128p; 4] = std::array::from_fn(|s| Xoshiro128p::seeded(s as u32));
    for _ in 0..4 * batches {
        for g in &mut gens {
            let _ = g.next();
        }
    }
    gens
}

/// 2⁻³² as a double (exact).
pub const INV_2_32: f64 = 1.0 / 4_294_967_296.0;

/// Degree-5 integrand `g(u) = 0.15 + 0.7·v + 0.7·v²` with `v = u(1-u)`,
/// expanded to coefficients `c5..c0`; range ⊂ (0, 0.4) on [0, 1).
pub const POLY_C: [f64; 6] = [0.05, 0.7, -1.4, 0.0, 0.7, 0.15];

/// The two hit-and-miss integration problems.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Integrand {
    /// Quarter-circle area (π/4): hit when `x² + y² < 1`.
    Pi,
    /// Degree-5 polynomial: hit when `y < g(x)`.
    Poly,
}

/// Baseline hit test for one point, with the paper-style [0,1) scaling
/// (`fcvt.d.wu` then multiply by 2⁻³²). Exactly 7 (Pi) / 10 (Poly) FP
/// operations, mirroring the RV32G kernels.
#[must_use]
pub fn hit_scaled(integrand: Integrand, xu: u32, yu: u32) -> bool {
    let x = f64::from(xu) * INV_2_32;
    let y = f64::from(yu) * INV_2_32;
    match integrand {
        Integrand::Pi => {
            let xx = x * x;
            let s = y.mul_add(y, xx);
            s < 1.0
        }
        Integrand::Poly => {
            let mut p = POLY_C[0];
            for c in &POLY_C[1..] {
                p = p.mul_add(x, *c);
            }
            y < p
        }
    }
}

/// COPIFT-variant hit test operating on raw 32-bit draws (scaling folded
/// into the comparison bound / coefficients). Produces *bit-identical* hits
/// to [`hit_scaled`] because all rescalings are exact powers of two.
#[must_use]
pub fn hit_raw(integrand: Integrand, xu: u32, yu: u32) -> bool {
    let x = f64::from(xu);
    let y = f64::from(yu);
    match integrand {
        Integrand::Pi => {
            let xx = x * x;
            let s = y.mul_add(y, xx);
            s < 18_446_744_073_709_551_616.0 // 2^64
        }
        Integrand::Poly => {
            // c_k' = c_k · 2^(32·(1-k)) — exact power-of-two rescale.
            let c = scaled_poly_coeffs();
            let mut p = c[0];
            for ck in &c[1..] {
                p = p.mul_add(x, *ck);
            }
            y < p
        }
    }
}

/// The raw-domain polynomial coefficients `c_k' = c_k · 2^(32(1-k))`
/// (`POLY_C[i]` multiplies `x^(5-i)`).
#[must_use]
pub fn scaled_poly_coeffs() -> [f64; 6] {
    std::array::from_fn(|i| {
        let k = 5 - i as i32;
        POLY_C[i] * 2.0_f64.powi(32 * (1 - k))
    })
}

/// Monte Carlo result: hit counts accumulated in four rotating f64
/// accumulators (`acc[p % 4]`), reduced as `(a0+a1) + (a2+a3)` — the exact
/// reduction the kernels perform.
#[must_use]
pub fn mc_hits(integrand: Integrand, rng: Rng, n_points: usize) -> f64 {
    let (xs, ys) = gen_points(rng, n_points);
    let mut acc = [0.0f64; 4];
    for p in 0..n_points {
        let hit = hit_scaled(integrand, xs[p], ys[p]);
        acc[p % 4] += f64::from(i32::from(hit));
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

// --------------------------------------------------------------------- expf

/// `N/ln2` with N = 32 (the exp2 table size).
pub const EXP_INVLN2N: f64 = 46.166_241_308_446_83;
/// Rounding shift: 1.5 × 2⁵².
pub const EXP_SHIFT: f64 = 6_755_399_441_055_744.0;
/// Polynomial coefficients (glibc `expf` method, N-scaled domain):
/// `p(r) = (C0·r + C1)·r² + (C2·r + C3)`.
pub const EXP_C: [f64; 4] = [
    0.055_503_615_593_130_85 / (32.0 * 32.0 * 32.0),
    0.240_226_511_029_239_8 / (32.0 * 32.0),
    0.693_147_182_040_323_2 / 32.0,
    1.0,
];

/// The 32-entry exp2 table: `T[i] = bits(2^(i/32)) - (i << 47)`, so adding
/// `ki << 47` reconstructs the scale factor including the exponent.
#[must_use]
pub fn exp_table() -> [u64; 32] {
    std::array::from_fn(|i| {
        let v = 2.0f64.powf(i as f64 / 32.0);
        v.to_bits().wrapping_sub((i as u64) << 47)
    })
}

/// One element of the paper's Fig. 1b expf kernel (double in, double out),
/// bit-exact with the simulated instruction sequence.
#[must_use]
pub fn expf_elem(x: f64, table: &[u64; 32]) -> f64 {
    let z = x * EXP_INVLN2N;
    let kd = z + EXP_SHIFT;
    let ki = kd.to_bits() as u32; // low word
    let idx = (ki & 31) as usize;
    let lo = table[idx] as u32;
    let hi = (table[idx] >> 32) as u32;
    let hi2 = hi.wrapping_add(ki << 15);
    let s = f64::from_bits((u64::from(hi2) << 32) | u64::from(lo));
    let kdr = kd - EXP_SHIFT;
    let r = z - kdr;
    let p = EXP_C[0].mul_add(r, EXP_C[1]);
    let q = EXP_C[2].mul_add(r, EXP_C[3]);
    let r2 = r * r;
    let y = p.mul_add(r2, q);
    y * s
}

/// Vector expf over `xs`.
#[must_use]
pub fn expf_vec(xs: &[f64]) -> Vec<f64> {
    let t = exp_table();
    xs.iter().map(|&x| expf_elem(x, &t)).collect()
}

// --------------------------------------------------------------------- logf

/// `OFF` constant of glibc `logf` (bits of ~0.6992).
pub const LOG_OFF: u32 = 0x3f33_0000;
/// ln(2).
pub const LOG_LN2: f64 = std::f64::consts::LN_2;
/// Polynomial coefficients of glibc `logf` (degree 3):
/// `y = (A0·r + A1)·r² + (A2·r + (y0 + r))` evaluated as in the kernel.
pub const LOG_A: [f64; 3] =
    [-0.308_428_103_550_667_44, 0.498_540_461_252_356_74, -0.666_676_082_866_880_5];

/// 16-entry `(invc, logc)` table of the glibc logf method, flattened to
/// `[invc0, logc0, invc1, logc1, ...]`.
#[must_use]
pub fn log_table() -> [f64; 32] {
    let mut t = [0.0f64; 32];
    for i in 0..16 {
        // Midpoint of the i-th mantissa interval after the OFF shift.
        let m_bits: u32 = LOG_OFF.wrapping_add(((i as u32) << 19) | (1 << 18));
        let m = f64::from(f32::from_bits(m_bits));
        let invc = 1.0 / m;
        let logc = m.ln();
        t[2 * i] = invc;
        t[2 * i + 1] = logc;
    }
    t
}

/// One element of logf (f32 in, f64 out), bit-exact with the simulated
/// kernels (which keep the result in double precision).
#[must_use]
pub fn logf_elem(x: f32, table: &[f64; 32]) -> f64 {
    let ix = x.to_bits();
    let tmp = ix.wrapping_sub(LOG_OFF);
    let i = ((tmp >> 19) & 15) as usize;
    let k = (tmp as i32) >> 23;
    let iz = ix.wrapping_sub(tmp & 0xff80_0000);
    let z = f64::from(f32::from_bits(iz));
    let invc = table[2 * i];
    let logc = table[2 * i + 1];
    let r = z.mul_add(invc, -1.0);
    let kd = f64::from(k);
    let y0 = kd.mul_add(LOG_LN2, logc);
    let r2 = r * r;
    let q = LOG_A[0].mul_add(r, LOG_A[1]);
    let p = q.mul_add(r, LOG_A[2]);
    let w0 = y0 + r;
    p.mul_add(r2, w0)
}

/// Vector logf over `xs`.
#[must_use]
pub fn logf_vec(xs: &[f32]) -> Vec<f64> {
    let t = log_table();
    xs.iter().map(|&x| logf_elem(x, &t)).collect()
}

/// Deterministic pseudo-random input generator for the vector kernels.
#[must_use]
pub fn input_doubles(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut s = SEED0;
    (0..n)
        .map(|_| {
            let u = f64::from(lcg_next(&mut s)) * INV_2_32;
            lo + u * (hi - lo)
        })
        .collect()
}

/// Deterministic pseudo-random f32 inputs.
#[must_use]
pub fn input_floats(n: usize, lo: f32, hi: f32) -> Vec<f32> {
    input_doubles(n, f64::from(lo), f64::from(hi)).iter().map(|&v| v as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_streams_are_distinct_and_deterministic() {
        let mut a = lcg_seeds();
        let mut b = lcg_seeds();
        for s in 0..4 {
            assert_eq!(lcg_next(&mut a[s]), lcg_next(&mut b[s]));
        }
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Self-consistency + basic distribution sanity.
        let mut g = Xoshiro128p::seeded(0);
        let first: Vec<u32> = (0..4).map(|_| g.next()).collect();
        let mut g2 = Xoshiro128p::seeded(0);
        let again: Vec<u32> = (0..4).map(|_| g2.next()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn scaled_and_raw_hits_agree_bitwise() {
        let (xs, ys) = gen_points(Rng::Lcg, 256);
        for p in 0..256 {
            for integrand in [Integrand::Pi, Integrand::Poly] {
                assert_eq!(
                    hit_scaled(integrand, xs[p], ys[p]),
                    hit_raw(integrand, xs[p], ys[p]),
                    "power-of-two rescaling must not change any hit ({integrand:?}, p={p})"
                );
            }
        }
    }

    #[test]
    fn chunked_streams_reproduce_the_global_draw_sequence() {
        // Splitting n points over H harts with seed tables from
        // *_states_after must reproduce the single-stream point set draw
        // for draw — the property the data-parallel MC kernels rely on for
        // bit-exact aggregates.
        let (n, harts) = (256usize, 4usize);
        let pph = n / harts;
        for rng in [Rng::Lcg, Rng::Xoshiro128p] {
            let (gx, gy) = gen_points(rng, n);
            for h in 0..harts {
                // Reconstruct hart h's draws from its advanced states.
                let mut lcg = lcg_states_after(h * pph / 8);
                let mut xo = xoshiro_states_after(h * pph / 8);
                let mut xs = vec![0u32; pph];
                let mut ys = vec![0u32; pph];
                for batch in 0..pph / 8 {
                    let base = batch * 8;
                    for k in 0..4 {
                        for s in 0..4 {
                            let v = match rng {
                                Rng::Lcg => lcg_next(&mut lcg[s]),
                                Rng::Xoshiro128p => xo[s].next(),
                            };
                            match k {
                                0 => xs[base + s] = v,
                                1 => ys[base + s] = v,
                                2 => xs[base + 4 + s] = v,
                                _ => ys[base + 4 + s] = v,
                            }
                        }
                    }
                }
                assert_eq!(xs, gx[h * pph..(h + 1) * pph], "{rng:?} hart {h} x draws");
                assert_eq!(ys, gy[h * pph..(h + 1) * pph], "{rng:?} hart {h} y draws");
            }
        }
    }

    #[test]
    fn pi_estimate_converges() {
        let n = 32768;
        let hits = mc_hits(Integrand::Pi, Rng::Xoshiro128p, n);
        let pi = 4.0 * hits / n as f64;
        assert!((pi - std::f64::consts::PI).abs() < 0.05, "pi estimate {pi}");
    }

    #[test]
    fn poly_estimate_matches_analytic_integral() {
        // ∫ g = 0.15 + 0.7/2 - 1.4/4 + 0.7/5 + 0.05/6 ≈ 0.2983.
        let exact = 0.05 / 6.0 + 0.7 / 5.0 - 1.4 / 4.0 + 0.7 / 2.0 + 0.15;
        let n = 32768;
        let est = mc_hits(Integrand::Poly, Rng::Lcg, n) / n as f64;
        assert!((est - exact).abs() < 0.02, "poly estimate {est} vs {exact}");
    }

    #[test]
    fn expf_accuracy_against_std() {
        let t = exp_table();
        for &x in &[-10.0, -1.5, -0.1, 0.0, 0.3, 1.0, 5.7, 10.0] {
            let got = expf_elem(x, &t);
            let want = f64::exp(x);
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-7, "expf({x}) = {got}, want {want} (rel {rel})");
        }
    }

    #[test]
    fn logf_accuracy_against_std() {
        let t = log_table();
        for &x in &[0.1f32, 0.5, 0.99, 1.0, 1.7, 2.0, 9.9, 100.0] {
            let got = logf_elem(x, &t);
            let want = f64::ln(f64::from(x));
            assert!((got - want).abs() < 2e-4, "logf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn scaled_poly_coeffs_are_exact_rescalings() {
        let c = scaled_poly_coeffs();
        assert_eq!(c[5], POLY_C[5] * 2.0f64.powi(32)); // x^0 term × 2^32
        assert_eq!(c[4], POLY_C[4]); // x^1 term unscaled
        assert_eq!(c[3], POLY_C[3] * 2.0f64.powi(-32));
    }

    #[test]
    fn inputs_are_in_range_and_deterministic() {
        let a = input_doubles(128, -10.0, 10.0);
        let b = input_doubles(128, -10.0, 10.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-10.0..10.0).contains(&v)));
        let f = input_floats(64, 0.1, 10.0);
        assert!(f.iter().all(|&v| (0.1..10.0).contains(&v)));
    }
}
