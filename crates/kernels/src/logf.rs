//! The `logf` vector-logarithm kernel (glibc method) — the paper's ISSR
//! showcase: the table lookup index depends on the input data (a Type 1
//! dependency), which the COPIFT variant maps to an *indirection* stream.
//!
//! Input is an `f32` array and output an `f64` array, both TCDM-resident
//! (unlike `expf`, no DMA streaming — the deviation is recorded in
//! EXPERIMENTS.md).
//!
//! * **Baseline**: mixed loop, 4×-unrolled; the integer thread extracts
//!   exponent/index/mantissa bits, the FP thread evaluates the polynomial;
//!   `fcvt.d.w` on the exponent is the Type 3 crossing.
//! * **COPIFT**: two phases (Int → FP). The integer thread writes, per
//!   element, the normalized mantissa **as double bits** (an exact integer
//!   reconstruction), the exponent word, and two 16-bit table indices
//!   (`2i`, `2i+1`). The FP thread pops the z/k stream (fused 3-D on
//!   SSR 0), the `(invc, logc)` pairs through the **ISSR** (SSR 1), and
//!   writes results on SSR 2; `copift.fcvt.d.w` converts the exponent
//!   entirely inside the FP register file.

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::reg::{FpReg, IntReg};

use crate::golden::{input_floats, log_table, logf_vec, LOG_A, LOG_LN2, LOG_OFF};

fn x(i: u8) -> IntReg {
    IntReg::new(i)
}
fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// Exponent-bias adjustment for the f32→f64 bit reconstruction:
/// `(1023 - 127) << 20`.
const Z_ADJ: u32 = 0x3800_0000;

/// Deterministic input vector.
#[must_use]
pub fn inputs(n: usize) -> Vec<f32> {
    input_floats(n, 0.1, 10.0)
}

/// Golden outputs (f64 bits) for the standard inputs.
#[must_use]
pub fn golden_outputs(n: usize) -> Vec<u64> {
    logf_vec(&inputs(n)).iter().map(|v| v.to_bits()).collect()
}

fn setup_fp_consts(b: &mut ProgramBuilder) {
    let caddr = b.tcdm_f64("log_consts", &[1.0, LOG_LN2, LOG_A[0], LOG_A[1], LOG_A[2]]);
    b.li_u(x(30), caddr);
    for i in 0..5u8 {
        b.fld(f(19 + i), x(30), 8 * i32::from(i));
    }
}

/// Builds the RV32G baseline program.
///
/// # Panics
///
/// Panics unless `n` is a positive multiple of 4.
#[must_use]
pub fn baseline(n: usize) -> Program {
    assert!(n > 0 && n.is_multiple_of(4));
    let mut b = ProgramBuilder::new();
    let tab = b.tcdm_f64("log_table", &log_table());
    let xs = b.tcdm_f32("x_data", &inputs(n));
    let ys = b.tcdm_reserve("y_data", n * 8, 8);
    let iz_spill = b.tcdm_reserve("iz_spill", 16, 8);

    setup_fp_consts(&mut b);
    b.li_u(x(1), xs);
    b.li_u(x(2), ys);
    b.li_u(x(3), iz_spill);
    b.li_u(x(4), tab);
    b.li(x(5), (n / 4) as i32);
    b.li_u(x(6), LOG_OFF);
    b.li_u(x(7), 0xff80_0000);

    b.label("loop");
    // Integer bit extraction, 4-way interleaved: temps a=x10+e (ix/iz),
    // b=x14+e (tmp/k), c=x18+e (taddr), d=x22+e (masked).
    for e in 0..4u8 {
        b.lw(x(10 + e), x(1), 4 * i32::from(e));
    }
    for e in 0..4u8 {
        b.sub(x(14 + e), x(10 + e), x(6)); // tmp = ix - OFF
    }
    for e in 0..4u8 {
        b.srli(x(18 + e), x(14 + e), 19);
    }
    for e in 0..4u8 {
        b.andi(x(18 + e), x(18 + e), 15); // i
    }
    for e in 0..4u8 {
        b.slli(x(18 + e), x(18 + e), 4); // ×16 (table row)
    }
    for e in 0..4u8 {
        b.add(x(18 + e), x(4), x(18 + e)); // taddr
    }
    for e in 0..4u8 {
        b.and(x(22 + e), x(14 + e), x(7)); // tmp & 0xff800000
    }
    for e in 0..4u8 {
        b.sub(x(10 + e), x(10 + e), x(22 + e)); // iz
    }
    for e in 0..4u8 {
        b.srai(x(14 + e), x(14 + e), 23); // k
    }
    for e in 0..4u8 {
        b.sw(x(10 + e), x(3), 4 * i32::from(e)); // spill iz
    }
    // FP evaluation.
    for e in 0..4u8 {
        b.flw(f(e), x(3), 4 * i32::from(e)); // z as f32 (waits on stores? int stores complete at issue)
    }
    for e in 0..4u8 {
        b.fcvt_d_s(f(e), f(e)); // z
    }
    for e in 0..4u8 {
        b.fld(f(4 + e), x(18 + e), 0); // invc
    }
    for e in 0..4u8 {
        b.fld(f(8 + e), x(18 + e), 8); // logc
    }
    for e in 0..4u8 {
        b.fcvt_d_w(f(12 + e), x(14 + e)); // kd (Type 3)
    }
    for e in 0..4u8 {
        b.fmsub_d(f(e), f(e), f(4 + e), f(19)); // r = z·invc - 1
    }
    for e in 0..4u8 {
        b.fmadd_d(f(8 + e), f(12 + e), f(20), f(8 + e)); // y0 = kd·Ln2 + logc
    }
    for e in 0..4u8 {
        b.fmul_d(f(4 + e), f(e), f(e)); // r²
    }
    for e in 0..4u8 {
        b.fmadd_d(f(12 + e), f(21), f(e), f(22)); // q = A0·r + A1
    }
    for e in 0..4u8 {
        b.fmadd_d(f(12 + e), f(12 + e), f(e), f(23)); // p = q·r + A2
    }
    for e in 0..4u8 {
        b.fadd_d(f(8 + e), f(8 + e), f(e)); // w0 = y0 + r
    }
    for e in 0..4u8 {
        b.fmadd_d(f(8 + e), f(12 + e), f(4 + e), f(8 + e)); // y
    }
    for e in 0..4u8 {
        b.fsd(f(8 + e), x(2), 8 * i32::from(e));
    }
    b.addi(x(1), x(1), 16);
    b.addi(x(2), x(2), 32);
    b.addi(x(5), x(5), -1);
    b.bnez(x(5), "loop");
    b.fpu_fence();
    b.ecall();
    b.build().expect("logf baseline assembles")
}

/// COPIFT FREP body length (8 FP ops × 4 elements).
const BODY: u8 = 32;

fn emit_fp_body(b: &mut ProgramBuilder) {
    for e in 0..4u8 {
        b.fmsub_d(f(3 + e), f(0), f(1), f(19)); // r = pop(z)·pop(invc) - 1
    }
    for e in 0..4u8 {
        b.copift_fcvt_d_w(f(7 + e), f(0)); // kd from pop(k)
    }
    for e in 0..4u8 {
        b.fmadd_d(f(7 + e), f(7 + e), f(20), f(1)); // y0 = kd·Ln2 + pop(logc)
    }
    for e in 0..4u8 {
        b.fmul_d(f(11 + e), f(3 + e), f(3 + e)); // r²
    }
    for e in 0..4u8 {
        b.fmadd_d(f(15 + e), f(21), f(3 + e), f(22)); // q
    }
    for e in 0..4u8 {
        b.fmadd_d(f(15 + e), f(15 + e), f(3 + e), f(23)); // p
    }
    for e in 0..4u8 {
        b.fadd_d(f(7 + e), f(7 + e), f(3 + e)); // w0
    }
    for e in 0..4u8 {
        b.fmadd_d(f(2), f(15 + e), f(11 + e), f(7 + e)); // push y
    }
}

/// Emits the integer phase over one block into the slot at `slot`
/// (layout: `[z/k pairs: z(block·8) | k(block·8) | idx(block·2·2)]`).
fn emit_int_phase(b: &mut ProgramBuilder, block: usize, tag: &str) {
    // x9 = x read ptr (from global x6), x22 = slot ptr, x23 = idx ptr.
    b.mv(x(22), x(8)); // slot base (z section)
    b.li(x(26), (2 * block * 8) as i32);
    b.add(x(23), x(8), x(26)); // idx section
    b.li(x(26), (block / 4) as i32);
    b.label(tag);
    for e in 0..4u8 {
        b.lw(x(10 + e), x(6), 4 * i32::from(e)); // ix
    }
    for e in 0..4u8 {
        b.sub(x(14 + e), x(10 + e), x(24)); // tmp = ix - OFF
    }
    for e in 0..4u8 {
        b.and(x(18 + e), x(14 + e), x(25)); // tmp & 0xff800000
    }
    for e in 0..4u8 {
        b.sub(x(10 + e), x(10 + e), x(18 + e)); // iz
    }
    for e in 0..4u8 {
        b.srli(x(18 + e), x(14 + e), 19);
    }
    for e in 0..4u8 {
        b.andi(x(18 + e), x(18 + e), 15);
    }
    for e in 0..4u8 {
        b.slli(x(18 + e), x(18 + e), 1); // 2i
    }
    for e in 0..4u8 {
        b.sh(x(18 + e), x(23), 2 * i32::from(e)); // idx: invc
    }
    for e in 0..4u8 {
        b.addi(x(18 + e), x(18 + e), 1);
    }
    for e in 0..4u8 {
        b.sh(x(18 + e), x(23), 8 + 2 * i32::from(e)); // idx: logc
    }
    for e in 0..4u8 {
        b.srai(x(14 + e), x(14 + e), 23); // k
    }
    for e in 0..4u8 {
        b.sw(x(14 + e), x(22), i32::try_from(block * 8).unwrap() + 8 * i32::from(e));
        // k slot low word (high stays zero)
    }
    for e in 0..4u8 {
        b.srli(x(14 + e), x(10 + e), 3); // z hi = (iz >> 3) + ADJ
    }
    for e in 0..4u8 {
        b.add(x(14 + e), x(14 + e), x(27));
    }
    for e in 0..4u8 {
        b.slli(x(10 + e), x(10 + e), 29); // z lo
    }
    for e in 0..4u8 {
        b.sw(x(10 + e), x(22), 8 * i32::from(e));
    }
    for e in 0..4u8 {
        b.sw(x(14 + e), x(22), 8 * i32::from(e) + 4);
    }
    b.addi(x(6), x(6), 16);
    b.addi(x(22), x(22), 32);
    b.addi(x(23), x(23), 16);
    b.addi(x(26), x(26), -1);
    b.bnez(x(26), tag);
}

/// Builds the COPIFT-accelerated program.
///
/// # Panics
///
/// Panics unless `block` is a multiple of 4 and `n / block >= 2`.
///
/// Note: `k` slots rely on zero-initialized high words, so blocks beyond
/// the first reuse already-zero halves (`sw` touches low words only).
#[must_use]
pub fn copift(n: usize, block: usize) -> Program {
    assert!(block.is_multiple_of(4) && block > 0 && n.is_multiple_of(block));
    assert!(block <= 252, "k-slot immediates require block <= 252");
    let nb = n / block;
    assert!(nb >= 2, "copift logf needs at least two blocks");
    let slot_bytes = 2 * block * 8 + block * 4; // z + k + idx sections
    let mut b = ProgramBuilder::new();
    let tab = b.tcdm_f64("log_table", &log_table());
    let xs = b.tcdm_f32("x_data", &inputs(n));
    let ys = b.tcdm_reserve("y_data", n * 8, 8);
    let slot0 = b.tcdm_reserve("slot0", slot_bytes, 8);
    let slot1 = b.tcdm_reserve("slot1", slot_bytes, 8);

    setup_fp_consts(&mut b);
    b.li_u(x(4), tab);
    b.li_u(x(6), xs); // x read pointer (advances)
    b.li_u(x(7), ys); // y stream base (advances per block)
    b.li_u(x(1), slot0); // previous slot (consumed by FP)
    b.li_u(x(2), slot1); // current slot (filled by int)
    b.li_u(x(24), LOG_OFF);
    b.li_u(x(25), 0xff80_0000);
    b.li_u(x(27), Z_ADJ);
    b.li(x(5), (block / 4 - 1) as i32); // FREP reps - 1

    // SSR0: fused z+k reads, 3-D (4 elems, 2 sections, block/4 groups).
    b.li(x(29), 0b100);
    b.scfgwi(x(29), 0, SsrCfgWord::Status);
    b.li(x(29), 3);
    b.scfgwi(x(29), 0, SsrCfgWord::Bound(0));
    b.li(x(29), 8);
    b.scfgwi(x(29), 0, SsrCfgWord::Stride(0));
    b.li(x(29), 1);
    b.scfgwi(x(29), 0, SsrCfgWord::Bound(1));
    b.li(x(29), (block * 8) as i32);
    b.scfgwi(x(29), 0, SsrCfgWord::Stride(1));
    b.li(x(29), (block / 4 - 1) as i32);
    b.scfgwi(x(29), 0, SsrCfgWord::Bound(2));
    b.li(x(29), 32);
    b.scfgwi(x(29), 0, SsrCfgWord::Stride(2));
    // SSR1: ISSR over the (invc, logc) table with 16-bit indices.
    b.li(x(29), 0b1000);
    b.scfgwi(x(29), 1, SsrCfgWord::Status);
    b.li(x(29), (2 * block - 1) as i32);
    b.scfgwi(x(29), 1, SsrCfgWord::Bound(0));
    b.li(x(29), 1);
    b.scfgwi(x(29), 1, SsrCfgWord::IdxSize); // 2-byte indices
                                             // SSR2: y writes, 1-D.
    b.li(x(29), 0b1);
    b.scfgwi(x(29), 2, SsrCfgWord::Status);
    b.li(x(29), (block - 1) as i32);
    b.scfgwi(x(29), 2, SsrCfgWord::Bound(0));
    b.li(x(29), 8);
    b.scfgwi(x(29), 2, SsrCfgWord::Stride(0));
    b.ssr_enable();

    // Prologue: integer phase on block 0 into slot0 (x8 = slot under fill).
    b.mv(x(8), x(1));
    emit_int_phase(&mut b, block, "int0");

    // Main loop: iteration j = 1..nb-1 — FP on block j-1, int on block j.
    if nb > 1 {
        b.li(x(28), (nb - 1) as i32);
        b.label("outer");
        b.scfgwi(x(1), 0, SsrCfgWord::Base); // z/k of previous slot
        b.li(x(29), (2 * block * 8) as i32);
        b.add(x(29), x(1), x(29));
        b.scfgwi(x(29), 1, SsrCfgWord::IdxBase);
        b.scfgwi(x(4), 1, SsrCfgWord::Base); // arm ISSR (table base)
        b.scfgwi(x(7), 2, SsrCfgWord::Base); // y of block j-1
        b.li(x(29), (block * 8) as i32);
        b.add(x(7), x(7), x(29));
        b.frep_o(x(5), BODY, 0, 0);
        emit_fp_body(&mut b);
        b.mv(x(8), x(2));
        emit_int_phase(&mut b, block, "int_loop");
        // Swap slots.
        b.mv(x(29), x(1));
        b.mv(x(1), x(2));
        b.mv(x(2), x(29));
        b.addi(x(28), x(28), -1);
        b.bnez(x(28), "outer");
    }

    // Epilogue: FP on the final block.
    b.scfgwi(x(1), 0, SsrCfgWord::Base);
    b.li(x(29), (2 * block * 8) as i32);
    b.add(x(29), x(1), x(29));
    b.scfgwi(x(29), 1, SsrCfgWord::IdxBase);
    b.scfgwi(x(4), 1, SsrCfgWord::Base);
    b.scfgwi(x(7), 2, SsrCfgWord::Base);
    b.frep_o(x(5), BODY, 0, 0);
    emit_fp_body(&mut b);
    b.fpu_fence();
    b.ssr_disable();
    b.ecall();
    b.build().expect("logf copift assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_mix_close_to_table1() {
        let p = baseline(8);
        let mix = copift::MixCounts::of(p.text());
        assert!(mix.n_fp >= 26, "13 FP/elem in the body");
    }

    #[test]
    fn body_is_32_ops() {
        let mut b = ProgramBuilder::new();
        emit_fp_body(&mut b);
        assert_eq!(b.len(), 32);
    }
}
