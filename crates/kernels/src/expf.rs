//! The `expf` vector-exponential kernel (paper Fig. 1; glibc method).
//!
//! Input/output are `f64` arrays streamed between main memory and the TCDM
//! by the cluster DMA (double-buffered), exactly as in the paper's setup
//! (the DMA activity is part of the power story for this kernel).
//!
//! * **Baseline**: one mixed loop, 4×-unrolled and software-interleaved
//!   (≈ 43 integer + 52 FP instructions per 4 elements). The
//!   `fsd ki; lw ki` and `sw t; fld t` Type 2 crossings serialize against
//!   the FP store queue; the 96-instruction body thrashes the L0 buffer.
//! * **COPIFT**: the paper's 3-phase pipeline. Per block iteration `j`, a
//!   fused FREP body runs phase 0 on data block `j` and phase 2 on block
//!   `j-2` while the integer phase processes block `j-1`. Buffers are
//!   grouped `[ki | w | y | t]` per pipeline slot (×3 rotation) so the
//!   ki/w/y writes fuse into one 3-D SSR stream (the paper's stream fusion);
//!   x and t reads fuse on a second SSR; w reads take the third.

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::reg::{FpReg, IntReg};

use crate::golden::{exp_table, expf_vec, input_doubles, EXP_C, EXP_INVLN2N, EXP_SHIFT};

fn x(i: u8) -> IntReg {
    IntReg::new(i)
}
fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// Deterministic input vector for `n` elements.
#[must_use]
pub fn inputs(n: usize) -> Vec<f64> {
    input_doubles(n, -10.0, 10.0)
}

/// Golden outputs for the standard inputs.
#[must_use]
pub fn golden_outputs(n: usize) -> Vec<u64> {
    expf_vec(&inputs(n)).iter().map(|v| v.to_bits()).collect()
}

/// Common data-section setup. Returns `(x_main, y_main)` addresses; both
/// arrays carry one extra block of slack for unconditional DMA prefetch
/// (`x`) and a leading dummy block for unguarded write-out (`y`).
fn alloc_io(b: &mut ProgramBuilder, n: usize, block: usize) -> (u32, u32) {
    let xs = inputs(n);
    let mut img: Vec<f64> = xs;
    img.extend(std::iter::repeat_n(0.0, block)); // prefetch slack
    let x_main =
        b.main_bytes("x_main", 8, &img.iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<u8>>());
    let y_main = b.main_reserve("y_main", (n + 2 * block) * 8, 8);
    // The real y output starts one (dummy) block into y_main; name that
    // window so validation can address it like any other output symbol.
    b.symbol_at("y_out", y_main + (block as u32) * 8);
    (x_main, y_main)
}

fn setup_fp_consts(b: &mut ProgramBuilder) {
    let caddr =
        b.tcdm_f64("exp_consts", &[EXP_INVLN2N, EXP_SHIFT, EXP_C[0], EXP_C[1], EXP_C[2], EXP_C[3]]);
    b.li_u(x(30), caddr);
    for i in 0..6u8 {
        b.fld(f(19 + i), x(30), 8 * i32::from(i));
    }
}

/// Starts a DMA transfer of `bytes` from `src` to `dst` registers.
fn dma_copy(b: &mut ProgramBuilder, src: IntReg, dst: IntReg, bytes: usize) {
    b.dmsrc(src);
    b.dmdst(dst);
    b.li(x(29), bytes as i32);
    b.dmcpyi(IntReg::ZERO, x(29));
}

/// Polls until all DMA transfers retire.
fn dma_wait(b: &mut ProgramBuilder, tag: &str) {
    b.label(tag);
    b.dmstati(x(29));
    b.bnez(x(29), tag);
}

/// Builds the RV32G baseline program.
///
/// # Panics
///
/// Panics unless `block` is a multiple of 4 dividing `n`.
#[must_use]
pub fn baseline(n: usize, block: usize) -> Program {
    assert!(block.is_multiple_of(4) && block > 0 && n.is_multiple_of(block) && n >= block);
    let nb = n / block;
    let mut b = ProgramBuilder::new();
    let tab = b.tcdm_u64("exp_table", &exp_table());
    let xbuf0 = b.tcdm_reserve("xbuf0", block * 8, 8);
    let xbuf1 = b.tcdm_reserve("xbuf1", block * 8, 8);
    let ybuf0 = b.tcdm_reserve("ybuf0", block * 8, 8);
    let ybuf1 = b.tcdm_reserve("ybuf1", block * 8, 8);
    let ki_spill = b.tcdm_reserve("ki_spill", 32, 8);
    let t_spill = b.tcdm_reserve("t_spill", 32, 8);
    let (x_main, y_main) = alloc_io(&mut b, n, block);

    setup_fp_consts(&mut b);
    b.li_u(x(1), xbuf0);
    b.li_u(x(2), xbuf1);
    b.li_u(x(3), ybuf0);
    b.li_u(x(4), ybuf1);
    b.li_u(x(5), ki_spill);
    b.li_u(x(6), t_spill);
    b.li_u(x(7), x_main); // prefetch source (advances)
    b.li_u(x(8), y_main); // write-out destination (block 0 is dummy)
    b.li_u(x(23), tab);
    b.li(x(24), nb as i32);

    // Preload x block 0.
    dma_copy(&mut b, x(7), x(1), block * 8);
    b.li(x(28), (block * 8) as i32);
    b.add(x(7), x(7), x(28));
    dma_wait(&mut b, "dma0");

    b.label("outer");
    // Prefetch next x (slack block makes the last prefetch harmless) and
    // write out the previous y (block 0 of y_main is a dummy).
    dma_copy(&mut b, x(7), x(2), block * 8);
    b.li(x(28), (block * 8) as i32);
    b.add(x(7), x(7), x(28));
    dma_copy(&mut b, x(4), x(8), block * 8);
    b.add(x(8), x(8), x(28));

    b.mv(x(9), x(1)); // x read pointer
    b.mv(x(22), x(3)); // y write pointer
    b.li(x(25), (block / 4) as i32);
    b.label("inner");
    // 4-element software-interleaved glibc expf body (Fig. 1b).
    for e in 0..4u8 {
        b.fld(f(e), x(9), 8 * i32::from(e));
    }
    for e in 0..4u8 {
        b.fmul_d(f(e), f(e), f(19)); // z = x·InvLn2N
    }
    for e in 0..4u8 {
        b.fadd_d(f(4 + e), f(e), f(20)); // kd = z + SHIFT
    }
    for e in 0..4u8 {
        b.fsd(f(4 + e), x(5), 8 * i32::from(e)); // spill kd → ki
    }
    for e in 0..4u8 {
        b.lw(x(10 + e), x(5), 8 * i32::from(e)); // ki (waits on FP stores)
    }
    for e in 0..4u8 {
        b.andi(x(14 + e), x(10 + e), 0x1f);
    }
    for e in 0..4u8 {
        b.slli(x(14 + e), x(14 + e), 3);
    }
    for e in 0..4u8 {
        b.add(x(14 + e), x(23), x(14 + e));
    }
    for e in 0..4u8 {
        b.lw(x(18 + e), x(14 + e), 0); // table low word
    }
    for e in 0..4u8 {
        b.lw(x(14 + e), x(14 + e), 4); // table high word
    }
    for e in 0..4u8 {
        b.slli(x(10 + e), x(10 + e), 15); // ki << 15
    }
    for e in 0..4u8 {
        b.sw(x(18 + e), x(6), 8 * i32::from(e)); // t.lo
    }
    for e in 0..4u8 {
        b.add(x(10 + e), x(10 + e), x(14 + e));
    }
    for e in 0..4u8 {
        b.sw(x(10 + e), x(6), 8 * i32::from(e) + 4); // t.hi
    }
    for e in 0..4u8 {
        b.fsub_d(f(4 + e), f(4 + e), f(20)); // kdr
    }
    for e in 0..4u8 {
        b.fsub_d(f(e), f(e), f(4 + e)); // r
    }
    for e in 0..4u8 {
        b.fmadd_d(f(8 + e), f(21), f(e), f(22)); // C0·r + C1
    }
    for e in 0..4u8 {
        b.fld(f(12 + e), x(6), 8 * i32::from(e)); // s
    }
    for e in 0..4u8 {
        b.fmadd_d(f(4 + e), f(23), f(e), f(24)); // C2·r + C3
    }
    for e in 0..4u8 {
        b.fmul_d(f(e), f(e), f(e)); // r²
    }
    for e in 0..4u8 {
        b.fmadd_d(f(4 + e), f(8 + e), f(e), f(4 + e));
    }
    for e in 0..4u8 {
        b.fmul_d(f(4 + e), f(4 + e), f(12 + e)); // × s
    }
    for e in 0..4u8 {
        b.fsd(f(4 + e), x(22), 8 * i32::from(e));
    }
    b.addi(x(9), x(9), 32);
    b.addi(x(22), x(22), 32);
    b.addi(x(25), x(25), -1);
    b.bnez(x(25), "inner");

    dma_wait(&mut b, "dma_iter");
    // Swap x and y double buffers.
    b.mv(x(28), x(1));
    b.mv(x(1), x(2));
    b.mv(x(2), x(28));
    b.mv(x(28), x(3));
    b.mv(x(3), x(4));
    b.mv(x(4), x(28));
    b.addi(x(24), x(24), -1);
    b.bnez(x(24), "outer");

    // Write out the final y block (now in the "other" buffer after swap).
    b.fpu_fence();
    dma_copy(&mut b, x(4), x(8), block * 8);
    dma_wait(&mut b, "dma_tail");
    b.ecall();
    b.build().expect("expf baseline assembles")
}

/// FREP body lengths.
const PH0_OPS: usize = 9;
const PH2_OPS: usize = 1;

/// Emits the fused FREP body covering 4 elements: phase 0 (if `ph0`) and
/// phase 2 (if `ph2`). Returns the instruction count.
fn emit_fp_body(b: &mut ProgramBuilder, ph0: bool, ph2: bool) -> u8 {
    let start = b.len();
    if ph0 {
        for e in 0..4u8 {
            b.fmul_d(f(3 + e), f(0), f(19)); // z = pop(x)·InvLn2N
        }
        for e in 0..4u8 {
            b.fadd_d(f(7 + e), f(3 + e), f(20)); // kd
        }
        for e in 0..4u8 {
            b.fmv_d(f(2), f(7 + e)); // push ki
        }
        for e in 0..4u8 {
            b.fsub_d(f(7 + e), f(7 + e), f(20)); // kdr
        }
        for e in 0..4u8 {
            b.fsub_d(f(3 + e), f(3 + e), f(7 + e)); // r
        }
        for e in 0..4u8 {
            b.fmadd_d(f(11 + e), f(21), f(3 + e), f(22));
        }
        for e in 0..4u8 {
            b.fmadd_d(f(15 + e), f(23), f(3 + e), f(24));
        }
        for e in 0..4u8 {
            b.fmul_d(f(7 + e), f(3 + e), f(3 + e)); // r²
        }
        for e in 0..4u8 {
            b.fmadd_d(f(2), f(11 + e), f(7 + e), f(15 + e)); // push w
        }
    }
    if ph2 {
        for _e in 0..4u8 {
            b.fmul_d(f(2), f(1), f(0)); // y = pop(w)·pop(t); push y
        }
    }
    u8::try_from(b.len() - start).expect("body fits")
}

/// Emits the integer phase over one block: the exp2 table lookup and scale
/// assembly for block `ki/t` group at `group` (ki section at +0, t section
/// at +3·block·8).
fn emit_int_phase(b: &mut ProgramBuilder, block: usize, group: IntReg, tag: &str) {
    b.mv(x(9), group); // ki read pointer
    b.li(x(26), (3 * block * 8) as i32);
    b.add(x(22), group, x(26)); // t write pointer
    b.li(x(26), (block / 4) as i32);
    b.label(tag);
    for e in 0..4u8 {
        b.lw(x(10 + e), x(9), 8 * i32::from(e));
    }
    for e in 0..4u8 {
        b.andi(x(14 + e), x(10 + e), 0x1f);
    }
    for e in 0..4u8 {
        b.slli(x(14 + e), x(14 + e), 3);
    }
    for e in 0..4u8 {
        b.add(x(14 + e), x(8), x(14 + e));
    }
    for e in 0..4u8 {
        b.lw(x(18 + e), x(14 + e), 0);
    }
    for e in 0..4u8 {
        b.lw(x(14 + e), x(14 + e), 4);
    }
    for e in 0..4u8 {
        b.slli(x(10 + e), x(10 + e), 15);
    }
    for e in 0..4u8 {
        b.sw(x(18 + e), x(22), 8 * i32::from(e));
    }
    for e in 0..4u8 {
        b.add(x(10 + e), x(10 + e), x(14 + e));
    }
    for e in 0..4u8 {
        b.sw(x(10 + e), x(22), 8 * i32::from(e) + 4);
    }
    b.addi(x(9), x(9), 32);
    b.addi(x(22), x(22), 32);
    b.addi(x(26), x(26), -1);
    b.bnez(x(26), tag);
}

/// Configures SSR0 (reads) for a block: `dims3` selects the fused x+t shape.
fn cfg_ssr0(b: &mut ProgramBuilder, block: usize, dims3: bool) {
    if dims3 {
        b.li(x(29), 0b100); // read, 3-D
        b.scfgwi(x(29), 0, SsrCfgWord::Status);
        b.li(x(29), 3);
        b.scfgwi(x(29), 0, SsrCfgWord::Bound(0));
        b.li(x(29), 8);
        b.scfgwi(x(29), 0, SsrCfgWord::Stride(0));
        b.li(x(29), 1);
        b.scfgwi(x(29), 0, SsrCfgWord::Bound(1));
        // Stride(1) (t - x delta) is block-dependent: set by caller.
        b.li(x(29), (block / 4 - 1) as i32);
        b.scfgwi(x(29), 0, SsrCfgWord::Bound(2));
        b.li(x(29), 32);
        b.scfgwi(x(29), 0, SsrCfgWord::Stride(2));
    } else {
        b.li(x(29), 0); // read, 1-D
        b.scfgwi(x(29), 0, SsrCfgWord::Status);
        b.li(x(29), (block - 1) as i32);
        b.scfgwi(x(29), 0, SsrCfgWord::Bound(0));
        b.li(x(29), 8);
        b.scfgwi(x(29), 0, SsrCfgWord::Stride(0));
    }
}

/// Configures SSR2 (fused writes) shape: `sections` = 2 (ki,w), 3 (ki,w,y)
/// or 1 (y only).
fn cfg_ssr2(b: &mut ProgramBuilder, block: usize, sections: u32) {
    if sections == 1 {
        b.li(x(29), 0b1);
        b.scfgwi(x(29), 2, SsrCfgWord::Status);
        b.li(x(29), (block - 1) as i32);
        b.scfgwi(x(29), 2, SsrCfgWord::Bound(0));
        b.li(x(29), 8);
        b.scfgwi(x(29), 2, SsrCfgWord::Stride(0));
    } else {
        b.li(x(29), 0b101); // write, 3-D
        b.scfgwi(x(29), 2, SsrCfgWord::Status);
        b.li(x(29), 3);
        b.scfgwi(x(29), 2, SsrCfgWord::Bound(0));
        b.li(x(29), 8);
        b.scfgwi(x(29), 2, SsrCfgWord::Stride(0));
        b.li(x(29), sections as i32 - 1);
        b.scfgwi(x(29), 2, SsrCfgWord::Bound(1));
        b.li(x(29), (block * 8) as i32);
        b.scfgwi(x(29), 2, SsrCfgWord::Stride(1));
        b.li(x(29), (block / 4 - 1) as i32);
        b.scfgwi(x(29), 2, SsrCfgWord::Bound(2));
        b.li(x(29), 32);
        b.scfgwi(x(29), 2, SsrCfgWord::Stride(2));
    }
}

/// Configures SSR1 (w reads) shape once.
fn cfg_ssr1(b: &mut ProgramBuilder, block: usize) {
    b.li(x(29), 0);
    b.scfgwi(x(29), 1, SsrCfgWord::Status);
    b.li(x(29), (block - 1) as i32);
    b.scfgwi(x(29), 1, SsrCfgWord::Bound(0));
    b.li(x(29), 8);
    b.scfgwi(x(29), 1, SsrCfgWord::Stride(0));
}

/// Builds the COPIFT-accelerated program.
///
/// # Panics
///
/// Panics unless `block` is a multiple of 4 and `n / block >= 4`.
#[must_use]
pub fn copift(n: usize, block: usize) -> Program {
    assert!(block.is_multiple_of(4) && block > 0 && n.is_multiple_of(block));
    let nb = n / block;
    assert!(nb >= 4, "copift expf needs at least 4 blocks");
    let bs = block * 8;
    let mut b = ProgramBuilder::new();
    let tab = b.tcdm_u64("exp_table", &exp_table());
    let xbuf0 = b.tcdm_reserve("xbuf0", bs, 8);
    let xbuf1 = b.tcdm_reserve("xbuf1", bs, 8);
    // Pipeline groups: [ki | w | y | t], rotated over three slots.
    let g0 = b.tcdm_reserve("group0", 4 * bs, 8);
    let g1 = b.tcdm_reserve("group1", 4 * bs, 8);
    let g2 = b.tcdm_reserve("group2", 4 * bs, 8);
    let (x_main, y_main) = alloc_io(&mut b, n, block);

    setup_fp_consts(&mut b);
    b.li_u(x(1), xbuf0); // x buffer of the current block (j % 2)
    b.li_u(x(2), xbuf1);
    // Rotation invariant: at iteration j, gcur = group[j % 3],
    // gm1 = group[(j-1) % 3], gm2 = group[(j-2) % 3]; so at j = 0 the
    // "previous" groups start as g2 and g1.
    b.li_u(x(3), g0); // gcur (block j)
    b.li_u(x(4), g2); // gm1 (block j-1)
    b.li_u(x(5), g1); // gm2 (block j-2)
    b.li_u(x(6), x_main);
    b.li_u(x(7), y_main);
    b.li(x(28), bs as i32);
    b.add(x(7), x(7), x(28)); // y block 0 lands after the dummy block
    b.li_u(x(8), tab);
    b.li(x(25), (block / 4 - 1) as i32); // FREP repetitions - 1

    cfg_ssr1(&mut b, block);
    b.ssr_enable();

    // Preload x0 and x1.
    dma_copy(&mut b, x(6), x(1), bs);
    b.li(x(28), bs as i32);
    b.add(x(6), x(6), x(28));
    dma_copy(&mut b, x(6), x(2), bs);
    b.add(x(6), x(6), x(28));
    dma_wait(&mut b, "dma_pre");

    // ---- j = 0: phase 0 on block 0 ----
    cfg_ssr0(&mut b, block, false);
    b.scfgwi(x(1), 0, SsrCfgWord::Base); // x0
    cfg_ssr2(&mut b, block, 2);
    b.scfgwi(x(3), 2, SsrCfgWord::Base); // ki/w of g(0) — wait: gcur is x(3)
    b.frep_o(x(25), (PH0_OPS * 4) as u8, 0, 0);
    emit_fp_body(&mut b, true, false);
    // rotate: j=1 → gcur g1? Keep explicit: rotation happens at iteration end.
    rotate_groups(&mut b);
    swap_xbufs(&mut b);

    // ---- j = 1: phase 0 on block 1, int phase on block 0 ----
    b.scfgwi(x(1), 0, SsrCfgWord::Base); // x1 (stalls until x0 stream done)
    b.scfgwi(x(3), 2, SsrCfgWord::Base);
    dma_copy(&mut b, x(6), x(2), bs); // prefetch x2
    b.li(x(28), bs as i32);
    b.add(x(6), x(6), x(28));
    b.frep_o(x(25), (PH0_OPS * 4) as u8, 0, 0);
    emit_fp_body(&mut b, true, false);
    emit_int_phase(&mut b, block, x(4), "int_j1");
    dma_wait(&mut b, "dma_j1");
    rotate_groups(&mut b);
    swap_xbufs(&mut b);

    // ---- j = 2: first full iteration (programs the steady 3-D shapes) ----
    cfg_ssr0(&mut b, block, true);
    cfg_ssr2(&mut b, block, 3);
    emit_steady_iteration(&mut b, block, false, "j2");

    // ---- steady loop: j = 3 .. nb-1 (nb - 3 iterations) ----
    b.li(x(24), (nb - 3) as i32);
    b.label("steady");
    emit_steady_iteration(&mut b, block, true, "steady_body");
    b.addi(x(24), x(24), -1);
    b.bnez(x(24), "steady");

    // ---- j = nb: phase 2 on block nb-2, int phase on block nb-1 ----
    cfg_ssr0(&mut b, block, false);
    b.li(x(26), (3 * bs) as i32);
    b.add(x(27), x(5), x(26)); // t section of gm2
    b.scfgwi(x(27), 0, SsrCfgWord::Base);
    b.li(x(26), bs as i32);
    b.add(x(27), x(5), x(26));
    b.scfgwi(x(27), 1, SsrCfgWord::Base); // w of gm2
    cfg_ssr2(&mut b, block, 1);
    b.li(x(26), (2 * bs) as i32);
    b.add(x(27), x(3), x(26));
    b.scfgwi(x(27), 2, SsrCfgWord::Base); // y section of gcur
    dma_out_y(&mut b, bs, "out_nb"); // y_{nb-3}
    b.frep_o(x(25), (PH2_OPS * 4) as u8, 0, 0);
    emit_fp_body(&mut b, false, true);
    emit_int_phase(&mut b, block, x(4), "int_last");
    dma_wait(&mut b, "dma_nb");
    rotate_groups(&mut b);

    // ---- j = nb+1: phase 2 on block nb-1 ----
    b.li(x(26), (3 * bs) as i32);
    b.add(x(27), x(5), x(26));
    b.scfgwi(x(27), 0, SsrCfgWord::Base);
    b.li(x(26), bs as i32);
    b.add(x(27), x(5), x(26));
    b.scfgwi(x(27), 1, SsrCfgWord::Base);
    b.li(x(26), (2 * bs) as i32);
    b.add(x(27), x(3), x(26));
    b.scfgwi(x(27), 2, SsrCfgWord::Base);
    dma_out_y(&mut b, bs, "out_nb1"); // y_{nb-2}
    b.frep_o(x(25), (PH2_OPS * 4) as u8, 0, 0);
    emit_fp_body(&mut b, false, true);
    b.fpu_fence();
    b.ssr_disable();
    // Final y block: written into gcur's y section by the last FREP.
    b.li(x(26), (2 * bs) as i32);
    b.add(x(27), x(3), x(26));
    dma_copy(&mut b, x(27), x(7), bs);
    dma_wait(&mut b, "dma_final");
    b.ecall();
    b.build().expect("expf copift assembles")
}

/// One steady block iteration (j = 2..nb-1): reconfigure bases, prefetch,
/// write out, fused FREP, integer phase, rotate.
fn emit_steady_iteration(b: &mut ProgramBuilder, block: usize, with_yout: bool, tag: &str) {
    let bs = block * 8;
    // SSR0: 3-D x+t; mid stride = t_section(gm2) - xbuf_cur.
    b.li(x(26), (3 * bs) as i32);
    b.add(x(27), x(5), x(26)); // t section of gm2
    b.sub(x(28), x(27), x(1)); // delta
    b.scfgwi(x(28), 0, SsrCfgWord::Stride(1));
    b.scfgwi(x(1), 0, SsrCfgWord::Base);
    b.li(x(26), bs as i32);
    b.add(x(27), x(5), x(26));
    b.scfgwi(x(27), 1, SsrCfgWord::Base); // w of gm2
    b.scfgwi(x(3), 2, SsrCfgWord::Base); // ki/w/y of gcur
                                         // Prefetch x_{j+1} (slack block absorbs the final overshoot).
    dma_copy(b, x(6), x(2), bs);
    b.li(x(28), bs as i32);
    b.add(x(6), x(6), x(28));
    if with_yout {
        dma_out_y(b, bs, &format!("{tag}_yout"));
    }
    b.frep_o(x(25), ((PH0_OPS + PH2_OPS) * 4) as u8, 0, 0);
    emit_fp_body(b, true, true);
    emit_int_phase(b, block, x(4), &format!("{tag}_int"));
    dma_wait(b, &format!("{tag}_dma"));
    rotate_groups(b);
    swap_xbufs(b);
}

/// Writes out the oldest pending y block (y section of gm2's *predecessor*;
/// by rotation invariants that is gcur's y from three iterations ago, i.e.
/// the section the pipeline has fully drained: gm1's y holds block j-3's
/// results at the start of iteration j ... the section used is `gm1 + 2·bs`.
fn dma_out_y(b: &mut ProgramBuilder, bs: usize, tag: &str) {
    b.li(x(26), (2 * bs) as i32);
    b.add(x(27), x(4), x(26)); // y section of gm1
    b.dmsrc(x(27));
    b.dmdst(x(7));
    b.li(x(29), bs as i32);
    b.dmcpyi(IntReg::ZERO, x(29));
    b.add(x(7), x(7), x(29));
    let _ = tag;
}

fn rotate_groups(b: &mut ProgramBuilder) {
    b.mv(x(28), x(5));
    b.mv(x(5), x(4));
    b.mv(x(4), x(3));
    b.mv(x(3), x(28));
}

fn swap_xbufs(b: &mut ProgramBuilder) {
    b.mv(x(28), x(1));
    b.mv(x(1), x(2));
    b.mv(x(2), x(28));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_mix_matches_table1_shape() {
        let p = baseline(64, 32);
        // Inner body: 52 FP + 40 int per 4 elements (plus setup/outer code).
        let mix = copift::MixCounts::of(p.text());
        assert!(mix.n_fp >= 52);
        assert!(mix.n_int > mix.n_fp / 2);
    }

    #[test]
    fn copift_body_lengths() {
        let mut b = ProgramBuilder::new();
        assert_eq!(emit_fp_body(&mut b, true, false), 36);
        assert_eq!(emit_fp_body(&mut b, false, true), 4);
        assert_eq!(emit_fp_body(&mut b, true, true), 40);
    }
}
