//! The `dot_lcg` kernel: dot product of a streamed vector with an
//! LCG-generated pseudo-random vector — compiled by [`copift::codegen`].
//!
//! Per element, the integer thread draws `u` from a 32-bit LCG (the paper's
//! write-back-port-hazard generator); the FP thread converts the raw draw,
//! scales it into `[0, 1)` and accumulates `w·x[i]` into one of four
//! rotating accumulators (the Monte Carlo kernels' reduction discipline,
//! which keeps the FMA chains independent). The four partial sums are the
//! validated result — no final reduction reorders the arithmetic.
//!
//! * **Baseline**: one mixed RV32G loop — serial draws, `fcvt.d.wu`
//!   crossings, `fld` per element, rotating-accumulator FMAs.
//! * **COPIFT**: [`copift::compile`] of the same four-element body — draws
//!   spill per block and stream through SSR 0, `x` streams through SSR 1,
//!   and [`KernelSpec::acc_out`] stores the four accumulators to the
//!   `result` symbol after the drain.

use copift::{compile, KernelSpec};
use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_riscv::reg::{FpReg, IntReg};

use crate::golden::{input_doubles, lcg_next, INV_2_32, LCG_A, LCG_C, SEED0, SEED_GAMMA};

/// Elements per unrolled iteration (both variants).
pub const UNROLL: usize = 4;

/// LCG stream seed (decorrelated from the other LCG workloads).
#[must_use]
pub fn seed() -> u32 {
    SEED0.wrapping_add(SEED_GAMMA.wrapping_mul(6))
}

/// Deterministic input vector for `n` elements.
#[must_use]
pub fn inputs(n: usize) -> Vec<f64> {
    input_doubles(n, -1.0, 1.0)
}

/// Golden partial sums (f64 bits of the four rotating accumulators).
#[must_use]
pub fn golden_result(n: usize) -> Vec<u64> {
    let xs = inputs(n);
    let mut s = seed();
    let mut acc = [0.0f64; 4];
    for (i, &xi) in xs.iter().enumerate() {
        let u = f64::from(lcg_next(&mut s));
        let w = u * INV_2_32;
        acc[i % 4] = w.mul_add(xi, acc[i % 4]);
    }
    acc.iter().map(|a| a.to_bits()).collect()
}

fn x(i: u8) -> IntReg {
    IntReg::new(i)
}
fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// Accumulators `FS8..FS11` (f24..f27); `FS0` (f8) holds 2⁻³².
fn acc_regs() -> [FpReg; 4] {
    [f(24), f(25), f(26), f(27)]
}

/// The FP work on four elements: draws in `f10+e`, inputs in `f14+e`.
fn emit_fp_elem_groups(b: &mut ProgramBuilder) {
    // w_e = u_e·2⁻³²
    for e in 0..4u8 {
        b.fmul_d(f(10 + e), f(10 + e), f(8));
    }
    // acc_e = w_e·x_e + acc_e
    for e in 0..4u8 {
        b.fmadd_d(f(24 + e), f(10 + e), f(14 + e), f(24 + e));
    }
}

/// Builds the RV32G baseline program.
///
/// # Panics
///
/// Panics unless `n` is a positive multiple of 4 (`block` is ignored).
#[must_use]
pub fn baseline(n: usize) -> Program {
    assert!(n > 0 && n.is_multiple_of(UNROLL), "n must be a positive multiple of 4");
    let mut b = ProgramBuilder::new();
    let result = b.tcdm_reserve("result", 4 * 8, 8);
    let xs = b.tcdm_f64("x_in", &inputs(n));
    let caddr = b.tcdm_f64("dot_consts", &[INV_2_32]);
    b.li_u(x(30), caddr);
    b.fld(f(8), x(30), 0);
    // Zero the accumulators.
    for reg in acc_regs() {
        b.fcvt_d_w(reg, IntReg::ZERO);
    }
    b.li_u(x(10), seed());
    b.li_u(x(11), LCG_A);
    b.li_u(x(12), LCG_C);
    b.li_u(x(13), xs);
    b.li(x(14), (n / UNROLL) as i32);

    b.label("loop");
    for e in 0..4u8 {
        b.mul(x(10), x(10), x(11));
        b.add(x(10), x(10), x(12));
        b.mv(x(20 + e), x(10));
    }
    for e in 0..4u8 {
        b.fcvt_d_wu(f(10 + e), x(20 + e));
    }
    for e in 0..4u8 {
        b.fld(f(14 + e), x(13), 8 * i32::from(e));
    }
    emit_fp_elem_groups(&mut b);
    b.addi(x(13), x(13), 32);
    b.addi(x(14), x(14), -1);
    b.bnez(x(14), "loop");
    b.fpu_fence();
    b.li_u(x(30), result);
    for (i, reg) in acc_regs().into_iter().enumerate() {
        b.fsd(reg, x(30), (i * 8) as i32);
    }
    b.fpu_fence();
    b.ecall();
    b.build().expect("dot_lcg baseline assembles")
}

/// Builds the COPIFT program via the automatic code generator.
///
/// # Panics
///
/// Panics unless `block` is a multiple of 4 dividing `n` with at least two
/// blocks.
#[must_use]
pub fn copift(n: usize, block: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for e in 0..4u8 {
        b.mul(x(10), x(10), x(11));
        b.add(x(10), x(10), x(12));
        b.fcvt_d_wu(f(10 + e), x(10));
    }
    for e in 0..4u8 {
        b.fld(f(14 + e), x(13), 8 * i32::from(e));
    }
    emit_fp_elem_groups(&mut b);
    b.addi(x(13), x(13), 32);
    let body = b.build().expect("dot_lcg body assembles").text().to_vec();

    let spec = KernelSpec {
        body,
        elems_per_iter: UNROLL,
        int_init: vec![(x(10), seed()), (x(11), LCG_A), (x(12), LCG_C)],
        fp_init: std::iter::once((f(8), INV_2_32))
            .chain(acc_regs().into_iter().map(|r| (r, 0.0)))
            .collect(),
        input: Some((x(13), inputs(n))),
        output: None,
        acc_out: acc_regs().to_vec(),
    };
    compile(&spec, n, block).expect("dot_lcg body fits the two-phase codegen shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_validate_bit_exactly() {
        use crate::registry::{Kernel, Variant};
        for variant in Variant::all() {
            let r = Kernel::DotLcg.run(variant, 128, 32).expect("validates");
            assert!(r.total_cycles > 0);
        }
    }

    #[test]
    fn golden_matches_a_plain_dot_product_approximately() {
        // The rotating accumulators reassociate the sum, so compare the
        // reduced value against a naive dot product loosely.
        let n = 1024;
        let parts: Vec<f64> = golden_result(n).iter().map(|&b| f64::from_bits(b)).collect();
        let total: f64 = parts.iter().sum();
        let xs = inputs(n);
        let mut s = seed();
        let naive: f64 = xs.iter().map(|&xi| f64::from(lcg_next(&mut s)) * INV_2_32 * xi).sum();
        assert!((total - naive).abs() < 1e-9, "rotated {total} vs naive {naive}");
    }
}
