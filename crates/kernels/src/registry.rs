//! The open workload registry: every kernel the harness can run, behind one
//! pluggable catalog.
//!
//! The paper's six Figure-2 workloads used to be a closed `enum`; the
//! registry now separates **what a workload is** (the [`Workload`] trait:
//! name, program builders, golden expectations, operating points) from
//! **how callers refer to one** (the [`Kernel`] handle, a copyable index
//! into the catalog). The built-in catalog ships the six paper kernels plus
//! the auto-compiled extended suite ([`sigmoid`], [`dot_lcg`],
//! [`softmax`]); downstream code can add more at runtime with [`register`].
//!
//! [`Kernel::all`] enumerates the full catalog, [`Kernel::paper`] the six
//! Figure-2 workloads, and [`Kernel::from_name`] resolves the names the
//! `sweep` CLI and the result sinks print.

use std::sync::RwLock;

use snitch_asm::program::Program;
use snitch_energy::EnergyModel;
use snitch_sim::config::{ClusterConfig, SystemConfig};
use snitch_sim::system::System;

use crate::golden::{mc_hits, Integrand, Rng};
use crate::harness::{HarnessError, RunOutcome};
use crate::{dot_lcg, expf, gemm_tiled, logf, mc, sigmoid, softmax};

/// Code variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// Snitch-optimized RV32G baseline.
    Baseline,
    /// COPIFT-accelerated (FREP + SSR + custom-1 extensions).
    Copift,
}

impl Variant {
    /// Both variants, baseline first.
    #[must_use]
    pub fn all() -> [Variant; 2] {
        [Variant::Baseline, Variant::Copift]
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "base",
            Variant::Copift => "copift",
        }
    }

    /// Parses a display name (as printed by [`name`](Self::name)).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Variant> {
        Variant::all().into_iter().find(|v| v.name() == name)
    }
}

/// One runnable workload: everything the engine, the sweep CLI and the
/// validation harness need to build, run and check a kernel.
///
/// Implementations are registered in the static catalog (built-ins) or at
/// runtime via [`register`]; callers address them through [`Kernel`].
pub trait Workload: Sync {
    /// The kernel's catalog name (what `sweep --kernels` accepts and the
    /// result sinks print). Must be unique within the catalog.
    fn name(&self) -> &'static str;

    /// One-line description for catalog listings.
    fn description(&self) -> &'static str;

    /// Builds the program for `variant` with problem size `n` (points or
    /// vector elements) and block size `block` (ignored by workloads
    /// without blocking).
    ///
    /// # Panics
    ///
    /// Panics on violated size constraints (see the kernel modules).
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program;

    /// Cores-aware build for data-parallel workloads: the program for a
    /// cluster of `cores` compute cores. The default ignores `cores` and
    /// builds the (hart-0-only) single-core program, which behaves
    /// identically on any cluster size.
    fn build_for(&self, variant: Variant, n: usize, block: usize, cores: usize) -> Program {
        let _ = cores;
        self.build(variant, n, block)
    }

    /// Grid-aware build for multi-cluster workloads: the program for a
    /// system of `clusters` clusters of `cores` compute cores each. The
    /// default ignores `clusters` and builds the per-cluster program — on a
    /// multi-cluster system every cluster then runs the same work, which is
    /// correct for cluster-oblivious kernels (their outputs live in TCDM
    /// and validation reads cluster 0). Tiled workloads override this to
    /// split work by the cluster-id CSR.
    fn build_grid(
        &self,
        variant: Variant,
        n: usize,
        block: usize,
        cores: usize,
        clusters: usize,
    ) -> Program {
        let _ = clusters;
        self.build_for(variant, n, block, cores)
    }

    /// Golden expectations: `(symbol, values)` checked bit-exactly after a
    /// run.
    fn expected(&self, variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)>;

    /// A representative operating point `(n, block)` for steady-state
    /// measurements (Figure 2 and the extended suite).
    fn operating_point(&self) -> (usize, usize);

    /// A small validation-friendly `(n, block)` for smoke batches.
    fn smoke_point(&self) -> (usize, usize) {
        (512, 64)
    }

    /// Whether this is a hit-and-miss Monte Carlo workload (Table I groups
    /// those at 8 points per unit).
    fn is_mc(&self) -> bool {
        false
    }

    /// Whether the steady-state `(n, 2n)` differencing methodology applies:
    /// the workload must be able to run at twice its operating size. Tiled
    /// workloads whose TCDM footprint grows with n² opt out — they are
    /// measured on the cores × clusters scaling grid instead.
    fn steady_measurable(&self) -> bool {
        true
    }

    /// Whether the workload belongs to the paper's Figure 2 suite (fixed
    /// paper-comparison batches enumerate only these).
    fn in_figure2(&self) -> bool {
        false
    }
}

// --------------------------------------------------------------- built-ins

/// One of the four hit-and-miss Monte Carlo workloads.
struct McWorkload {
    name: &'static str,
    description: &'static str,
    integrand: Integrand,
    rng: Rng,
}

impl Workload for McWorkload {
    fn name(&self) -> &'static str {
        self.name
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program {
        match variant {
            Variant::Baseline => mc::baseline(self.integrand, self.rng, n),
            Variant::Copift => mc::copift(self.integrand, self.rng, n, block),
        }
    }
    fn expected(&self, variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        let hits = mc_hits(self.integrand, self.rng, n);
        let bits = match variant {
            Variant::Baseline => hits as u64, // u32 count, zero-padded
            Variant::Copift => hits.to_bits(),
        };
        vec![("result", vec![bits])]
    }
    fn operating_point(&self) -> (usize, usize) {
        (8192, 256)
    }
    fn smoke_point(&self) -> (usize, usize) {
        (512, 128)
    }
    fn is_mc(&self) -> bool {
        true
    }
    fn in_figure2(&self) -> bool {
        true
    }
}

/// The vector-exponential workload (paper Fig. 1).
struct ExpfWorkload;

impl Workload for ExpfWorkload {
    fn name(&self) -> &'static str {
        "exp"
    }
    fn description(&self) -> &'static str {
        "vector exponential (glibc method, hand-written 3-phase pipeline)"
    }
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program {
        match variant {
            Variant::Baseline => expf::baseline(n, block),
            Variant::Copift => expf::copift(n, block),
        }
    }
    fn expected(&self, _variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        // `y_out` aliases the live output window inside `y_main`
        // (one dummy block in; see `expf::alloc_io`).
        vec![("y_out", expf::golden_outputs(n))]
    }
    fn operating_point(&self) -> (usize, usize) {
        (2048, 128)
    }
    fn in_figure2(&self) -> bool {
        true
    }
}

/// The vector-logarithm workload (ISSR showcase).
struct LogfWorkload;

impl Workload for LogfWorkload {
    fn name(&self) -> &'static str {
        "log"
    }
    fn description(&self) -> &'static str {
        "vector logarithm (glibc method, ISSR indirection showcase)"
    }
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program {
        match variant {
            Variant::Baseline => logf::baseline(n),
            Variant::Copift => logf::copift(n, block),
        }
    }
    fn expected(&self, _variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        vec![("y_data", logf::golden_outputs(n))]
    }
    fn operating_point(&self) -> (usize, usize) {
        (2048, 128)
    }
    fn in_figure2(&self) -> bool {
        true
    }
}

/// The auto-compiled polynomial-logistic workload.
struct SigmoidWorkload;

impl Workload for SigmoidWorkload {
    fn name(&self) -> &'static str {
        "sigmoid"
    }
    fn description(&self) -> &'static str {
        "polynomial logistic over LCG-generated inputs (auto-compiled COPIFT)"
    }
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program {
        match variant {
            Variant::Baseline => sigmoid::baseline(n),
            Variant::Copift => sigmoid::copift(n, block),
        }
    }
    fn expected(&self, _variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        vec![("y_out", sigmoid::golden_outputs(n))]
    }
    fn operating_point(&self) -> (usize, usize) {
        // TCDM-resident output: 2n doubles must leave room in the 128 KiB
        // scratchpad at the steady-state measurement's doubled size.
        (4096, 256)
    }
    fn smoke_point(&self) -> (usize, usize) {
        (512, 128)
    }
}

/// The auto-compiled dot-product workload.
struct DotLcgWorkload;

impl Workload for DotLcgWorkload {
    fn name(&self) -> &'static str {
        "dot_lcg"
    }
    fn description(&self) -> &'static str {
        "dot product with an LCG-generated vector (auto-compiled COPIFT)"
    }
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program {
        match variant {
            Variant::Baseline => dot_lcg::baseline(n),
            Variant::Copift => dot_lcg::copift(n, block),
        }
    }
    fn expected(&self, _variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        vec![("result", dot_lcg::golden_result(n))]
    }
    fn operating_point(&self) -> (usize, usize) {
        // TCDM-resident input: same 128 KiB bound as `sigmoid`.
        (4096, 256)
    }
    fn smoke_point(&self) -> (usize, usize) {
        (512, 128)
    }
}

/// The auto-compiled softmax exp+reduce workload.
struct SoftmaxWorkload;

impl Workload for SoftmaxWorkload {
    fn name(&self) -> &'static str {
        "softmax"
    }
    fn description(&self) -> &'static str {
        "softmax exp+reduce denominator pass (auto-compiled COPIFT, FP-only)"
    }
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program {
        match variant {
            Variant::Baseline => softmax::baseline(n),
            Variant::Copift => softmax::copift(n, block),
        }
    }
    fn expected(&self, _variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        let (ys, sums) = softmax::golden(n);
        vec![("y_out", ys), ("result", sums)]
    }
    fn operating_point(&self) -> (usize, usize) {
        (2048, 128)
    }
}

/// A data-parallel (SPMD) Monte Carlo workload: trials split over every
/// compute core of the cluster, per-hart mid-stream seeds, a hardware
/// barrier, and a TCDM tree reduction on hart 0. The aggregate is bit-exact
/// equal to the single-core golden model for **any** core count, because
/// the per-hart seed tables reproduce the global draw sequence chunk for
/// chunk and all partial sums are integer-valued doubles.
struct McParWorkload {
    name: &'static str,
    description: &'static str,
    integrand: Integrand,
    rng: Rng,
}

impl Workload for McParWorkload {
    fn name(&self) -> &'static str {
        self.name
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program {
        self.build_for(variant, n, block, 1)
    }
    fn build_for(&self, variant: Variant, n: usize, block: usize, cores: usize) -> Program {
        match variant {
            Variant::Baseline => mc::baseline_par(self.integrand, self.rng, n, cores),
            Variant::Copift => mc::copift_par(self.integrand, self.rng, n, block, cores),
        }
    }
    fn expected(&self, variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        // The cluster-wide aggregate equals the single-core golden model
        // regardless of how many harts produced it.
        let hits = mc_hits(self.integrand, self.rng, n);
        let bits = match variant {
            Variant::Baseline => hits as u64,
            Variant::Copift => hits.to_bits(),
        };
        vec![("result", vec![bits])]
    }
    fn operating_point(&self) -> (usize, usize) {
        // Valid across the whole 1..=8 cores scaling axis: at 8 cores each
        // hart still owns 16 blocks of 128 points.
        (16384, 128)
    }
    fn smoke_point(&self) -> (usize, usize) {
        // 8 harts × 2 blocks of 32 points at the largest cluster.
        (512, 32)
    }
    fn is_mc(&self) -> bool {
        true
    }
}

/// The tiled L2-staged GEMM: the first workload whose program depends on
/// the full `(cores, clusters)` grid shape, so [`Workload::build_grid`] is
/// its primary builder and the narrower entry points build degenerate
/// grids. `n` is the matrix dimension `d`; `block` is unused (the tile
/// split is fixed by the grid shape).
struct GemmTiledWorkload;

impl Workload for GemmTiledWorkload {
    fn name(&self) -> &'static str {
        "gemm_tiled"
    }
    fn description(&self) -> &'static str {
        "tiled f64 GEMM staged L2->TCDM via inter-cluster DMA (grid-tiled)"
    }
    fn build(&self, variant: Variant, n: usize, block: usize) -> Program {
        self.build_grid(variant, n, block, 1, 1)
    }
    fn build_for(&self, variant: Variant, n: usize, block: usize, cores: usize) -> Program {
        self.build_grid(variant, n, block, cores, 1)
    }
    fn build_grid(
        &self,
        variant: Variant,
        n: usize,
        _block: usize,
        cores: usize,
        clusters: usize,
    ) -> Program {
        match variant {
            Variant::Baseline => gemm_tiled::baseline(n, cores, clusters),
            Variant::Copift => gemm_tiled::copift(n, cores, clusters),
        }
    }
    fn expected(&self, _variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        // Both variants reduce k-ascending with fused multiply-adds: one
        // golden for every shape.
        vec![("c_data", gemm_tiled::golden_outputs(n))]
    }
    fn operating_point(&self) -> (usize, usize) {
        // d = 64 divides evenly for every cores x clusters shape on the
        // scaling axes (up to 4 clusters x 8 cores = 32 row owners).
        (64, 0)
    }
    fn smoke_point(&self) -> (usize, usize) {
        (32, 0)
    }
    fn steady_measurable(&self) -> bool {
        // 2n = 128 would need 3·128²·8 B of TCDM per cluster; the grid
        // drivers measure this kernel instead.
        false
    }
}

/// The built-in catalog: the paper's six Figure-2 workloads (in the paper's
/// order of increasing expected speedup `S′`) followed by the extended
/// suite.
static BUILTINS: [&dyn Workload; 12] = [
    &McWorkload {
        name: "pi_xoshiro128p",
        description: "Monte Carlo pi, xoshiro128+ draws (integer-heavy, no multiplies)",
        integrand: Integrand::Pi,
        rng: Rng::Xoshiro128p,
    },
    &McWorkload {
        name: "poly_xoshiro128p",
        description: "Monte Carlo degree-5 polynomial, xoshiro128+ draws",
        integrand: Integrand::Poly,
        rng: Rng::Xoshiro128p,
    },
    &McWorkload {
        name: "pi_lcg",
        description: "Monte Carlo pi, LCG draws (write-back-port hazard)",
        integrand: Integrand::Pi,
        rng: Rng::Lcg,
    },
    &McWorkload {
        name: "poly_lcg",
        description: "Monte Carlo degree-5 polynomial, LCG draws",
        integrand: Integrand::Poly,
        rng: Rng::Lcg,
    },
    &LogfWorkload,
    &ExpfWorkload,
    &SigmoidWorkload,
    &DotLcgWorkload,
    &SoftmaxWorkload,
    &McParWorkload {
        name: "pi_lcg_par",
        description: "data-parallel Monte Carlo pi, LCG draws (cluster scaling)",
        integrand: Integrand::Pi,
        rng: Rng::Lcg,
    },
    &McParWorkload {
        name: "pi_xoshiro128p_par",
        description: "data-parallel Monte Carlo pi, xoshiro128+ draws (cluster scaling)",
        integrand: Integrand::Pi,
        rng: Rng::Xoshiro128p,
    },
    &GemmTiledWorkload,
];

/// Workloads added at runtime via [`register`].
static EXTENSIONS: RwLock<Vec<&'static dyn Workload>> = RwLock::new(Vec::new());

/// A workload could not be added to the catalog.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegistryError {
    /// A cataloged workload already uses this name.
    DuplicateName(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateName(name) => {
                write!(f, "a workload named `{name}` is already cataloged")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Adds a workload to the catalog and returns its handle. The workload is
/// immediately visible to [`Kernel::all`], [`Kernel::from_name`] and every
/// engine grid built afterwards.
///
/// # Errors
///
/// Returns [`RegistryError::DuplicateName`] if the name is already taken.
pub fn register(workload: &'static dyn Workload) -> Result<Kernel, RegistryError> {
    let mut ext = EXTENSIONS.write().unwrap();
    let name = workload.name();
    let taken = BUILTINS.iter().any(|w| w.name() == name) || ext.iter().any(|w| w.name() == name);
    if taken {
        return Err(RegistryError::DuplicateName(name.to_string()));
    }
    let index = BUILTINS.len() + ext.len();
    ext.push(workload);
    Ok(Kernel(u16::try_from(index).expect("catalog smaller than 2^16")))
}

/// A cataloged kernel: a copyable, hashable handle into the workload
/// registry (the former closed enum, now open). The paper's six workloads
/// remain addressable by their historical names (`Kernel::PiLcg`, ...).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Kernel(u16);

#[allow(non_upper_case_globals)]
impl Kernel {
    /// Monte Carlo π with xoshiro128+.
    pub const PiXoshiro: Kernel = Kernel(0);
    /// Monte Carlo polynomial with xoshiro128+.
    pub const PolyXoshiro: Kernel = Kernel(1);
    /// Monte Carlo π with the LCG.
    pub const PiLcg: Kernel = Kernel(2);
    /// Monte Carlo polynomial with the LCG.
    pub const PolyLcg: Kernel = Kernel(3);
    /// Vector logarithm.
    pub const Logf: Kernel = Kernel(4);
    /// Vector exponential.
    pub const Expf: Kernel = Kernel(5);
    /// Polynomial logistic (extended suite, auto-compiled).
    pub const Sigmoid: Kernel = Kernel(6);
    /// LCG dot product (extended suite, auto-compiled).
    pub const DotLcg: Kernel = Kernel(7);
    /// Softmax exp+reduce (extended suite, auto-compiled).
    pub const Softmax: Kernel = Kernel(8);
    /// Data-parallel Monte Carlo π with the LCG (cluster scaling).
    pub const PiLcgPar: Kernel = Kernel(9);
    /// Data-parallel Monte Carlo π with xoshiro128+ (cluster scaling).
    pub const PiXoshiroPar: Kernel = Kernel(10);
    /// Tiled f64 GEMM staged through L2 (multi-cluster scaling).
    pub const GemmTiled: Kernel = Kernel(11);
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel({})", self.name())
    }
}

impl Kernel {
    /// The full catalog, built-ins first (the six Figure-2 workloads in the
    /// paper's order, then the extended suite, then runtime registrations).
    #[must_use]
    pub fn all() -> Vec<Kernel> {
        let total = BUILTINS.len() + EXTENSIONS.read().unwrap().len();
        (0..total).map(|i| Kernel(i as u16)).collect()
    }

    /// The six paper workloads, in Figure 2 order.
    #[must_use]
    pub fn paper() -> Vec<Kernel> {
        Kernel::all().into_iter().filter(|k| k.workload().in_figure2()).collect()
    }

    /// The cataloged workloads beyond the paper's Figure 2 suite.
    #[must_use]
    pub fn extended() -> Vec<Kernel> {
        Kernel::all().into_iter().filter(|k| !k.workload().in_figure2()).collect()
    }

    /// Parses a catalog name (as printed by [`name`](Self::name)).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::all().into_iter().find(|k| k.name() == name)
    }

    /// The workload behind this handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not come from this process's catalog.
    #[must_use]
    pub fn workload(self) -> &'static dyn Workload {
        let i = self.0 as usize;
        if i < BUILTINS.len() {
            BUILTINS[i]
        } else {
            EXTENSIONS.read().unwrap()[i - BUILTINS.len()]
        }
    }

    /// The kernel's catalog name.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.workload().name()
    }

    /// One-line description for catalog listings.
    #[must_use]
    pub fn description(self) -> &'static str {
        self.workload().description()
    }

    /// Whether this is a Monte Carlo kernel.
    #[must_use]
    pub fn is_mc(self) -> bool {
        self.workload().is_mc()
    }

    /// Builds the program for `variant` with problem size `n` (points or
    /// vector elements) and block size `block` (ignored by kernels without
    /// blocking).
    ///
    /// # Panics
    ///
    /// Panics on size constraints violated (see the kernel modules).
    #[must_use]
    pub fn build(self, variant: Variant, n: usize, block: usize) -> Program {
        self.workload().build(variant, n, block)
    }

    /// Builds the program for a cluster of `cores` compute cores. For
    /// workloads without a data-parallel implementation this is the
    /// single-core program (which boots only hart 0 on any cluster).
    ///
    /// # Panics
    ///
    /// Panics on violated size constraints (see the kernel modules).
    #[must_use]
    pub fn build_for(self, variant: Variant, n: usize, block: usize, cores: usize) -> Program {
        self.workload().build_for(variant, n, block, cores)
    }

    /// Builds the program for a system of `clusters` clusters of `cores`
    /// compute cores each. Workloads without a tiled implementation get
    /// their per-cluster program (see [`Workload::build_grid`]).
    ///
    /// # Panics
    ///
    /// Panics on violated size constraints (see the kernel modules).
    #[must_use]
    pub fn build_grid(
        self,
        variant: Variant,
        n: usize,
        block: usize,
        cores: usize,
        clusters: usize,
    ) -> Program {
        self.workload().build_grid(variant, n, block, cores, clusters)
    }

    /// Golden expectations: `(symbol, values)` checked after a run.
    #[must_use]
    pub fn expected(self, variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        self.workload().expected(variant, n)
    }

    /// Runs and validates; returns the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run(self, variant: Variant, n: usize, block: usize) -> Result<RunOutcome, HarnessError> {
        self.run_with(variant, n, block, ClusterConfig::default())
    }

    /// Runs with a custom system configuration (for ablations, multi-core
    /// and multi-cluster scaling — the program is built for the config's
    /// core and cluster counts). Accepts a plain [`ClusterConfig`] (a
    /// single-cluster system) via `Into`.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run_with(
        self,
        variant: Variant,
        n: usize,
        block: usize,
        cfg: impl Into<SystemConfig>,
    ) -> Result<RunOutcome, HarnessError> {
        let cfg = cfg.into();
        let program = self.build_grid(variant, n, block, cfg.cluster.cores, cfg.clusters);
        self.run_prebuilt(variant, n, cfg, &program)
    }

    /// Runs a pre-assembled program (e.g. one served by `snitch-engine`'s
    /// program cache) on a fresh system. A pure function of its arguments —
    /// safe to call concurrently from worker threads sharing the `Program`.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run_prebuilt(
        self,
        variant: Variant,
        n: usize,
        cfg: impl Into<SystemConfig>,
        program: &Program,
    ) -> Result<RunOutcome, HarnessError> {
        // A fresh system needs no reset.
        self.run_loaded(&mut System::new(cfg.into()), variant, n, program)
    }

    /// Runs a pre-assembled program on an existing system, resetting it
    /// first so allocations are reused across a stream of jobs. The system's
    /// configuration must describe the intended experiment; `program` must be
    /// the result of [`build_grid`](Self::build_grid) with the same `variant`
    /// and `n` (the block size is baked into the program and its output
    /// symbols).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run_on(
        self,
        system: &mut System,
        variant: Variant,
        n: usize,
        program: &Program,
    ) -> Result<RunOutcome, HarnessError> {
        system.reset();
        self.run_loaded(system, variant, n, program)
    }

    /// Runs on a system known to be in its just-constructed (or freshly
    /// [`reset`](System::reset)) state: load, run, validate, report.
    /// [`run_on`](Self::run_on) is this plus the reset; callers that time
    /// the reset separately (the engine's telemetry) call the two halves
    /// themselves.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run_loaded(
        self,
        system: &mut System,
        variant: Variant,
        n: usize,
        program: &Program,
    ) -> Result<RunOutcome, HarnessError> {
        system.load_program(program);
        let stats = system.run()?;
        self.check(variant, n, program, system)?;
        let report = EnergyModel::gf12lp().report(&stats);
        Ok(RunOutcome {
            total_cycles: stats.cycles,
            power_mw: report.avg_power_mw,
            energy_uj: report.energy_uj,
            stats,
        })
    }

    /// Validates a completed run's outputs bit-exactly against the golden
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Mismatch`] on any output bit difference, or
    /// [`HarnessError::Run`] if an output address is unmapped.
    pub fn check(
        self,
        variant: Variant,
        n: usize,
        program: &Program,
        system: &System,
    ) -> Result<(), HarnessError> {
        for (symbol, golden) in self.expected(variant, n) {
            let base = program
                .symbol(symbol)
                .unwrap_or_else(|| panic!("program lacks output symbol `{symbol}`"));
            crate::harness::check_words(system, base, &golden, symbol)?;
        }
        Ok(())
    }

    /// A representative operating point `(n, block)` for steady-state
    /// measurements (Figure 2).
    #[must_use]
    pub fn operating_point(self) -> (usize, usize) {
        self.workload().operating_point()
    }

    /// A small validation-friendly `(n, block)` for smoke batches.
    #[must_use]
    pub fn smoke_point(self) -> (usize, usize) {
        self.workload().smoke_point()
    }

    /// Whether the steady-state `(n, 2n)` differencing methodology applies
    /// (see [`Workload::steady_measurable`]).
    #[must_use]
    pub fn steady_measurable(self) -> bool {
        self.workload().steady_measurable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_sim::cluster::Cluster;

    #[test]
    fn names_follow_figure2_order_then_extended() {
        let names: Vec<&str> = Kernel::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            &names[..12],
            &[
                "pi_xoshiro128p",
                "poly_xoshiro128p",
                "pi_lcg",
                "poly_lcg",
                "log",
                "exp",
                "sigmoid",
                "dot_lcg",
                "softmax",
                "pi_lcg_par",
                "pi_xoshiro128p_par",
                "gemm_tiled"
            ]
        );
        let paper: Vec<&str> = Kernel::paper().iter().map(|k| k.name()).collect();
        assert_eq!(
            paper,
            vec!["pi_xoshiro128p", "poly_xoshiro128p", "pi_lcg", "poly_lcg", "log", "exp"]
        );
    }

    #[test]
    fn mc_baseline_pi_lcg_validates() {
        let r = Kernel::PiLcg.run(Variant::Baseline, 64, 0).expect("runs and validates");
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for k in Kernel::all() {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        for v in Variant::all() {
            assert_eq!(Variant::from_name(v.name()), Some(v));
        }
        assert_eq!(Kernel::from_name("nope"), None);
        assert_eq!(Variant::from_name("nope"), None);
    }

    #[test]
    fn historical_handles_resolve_to_their_names() {
        assert_eq!(Kernel::PiXoshiro.name(), "pi_xoshiro128p");
        assert_eq!(Kernel::PolyXoshiro.name(), "poly_xoshiro128p");
        assert_eq!(Kernel::PiLcg.name(), "pi_lcg");
        assert_eq!(Kernel::PolyLcg.name(), "poly_lcg");
        assert_eq!(Kernel::Logf.name(), "log");
        assert_eq!(Kernel::Expf.name(), "exp");
        assert_eq!(Kernel::Sigmoid.name(), "sigmoid");
        assert_eq!(Kernel::DotLcg.name(), "dot_lcg");
        assert_eq!(Kernel::Softmax.name(), "softmax");
        assert_eq!(Kernel::PiLcgPar.name(), "pi_lcg_par");
        assert_eq!(Kernel::PiXoshiroPar.name(), "pi_xoshiro128p_par");
        assert_eq!(Kernel::GemmTiled.name(), "gemm_tiled");
    }

    #[test]
    fn eight_core_pi_lcg_par_matches_the_single_core_golden_model() {
        // The acceptance bar of the multi-core tentpole: 8 harts, trials
        // split with mid-stream seeds, barrier, TCDM tree reduction — the
        // aggregate must be BIT-exact equal to the single-core golden model,
        // with real TCDM contention and per-hart statistics rolling up.
        let (n, block, cores) = (1024usize, 32usize, 8usize);
        let cfg = ClusterConfig { cores, ..ClusterConfig::default() };
        let program = Kernel::PiLcgPar.build_for(Variant::Copift, n, block, cores);
        assert!(program.parallel(), "the data-parallel program is SPMD");
        let mut cluster = Cluster::new(cfg);
        cluster.load_program(&program);
        let stats = cluster.run().expect("8-core run completes");
        // Bit-exact aggregate (run_prebuilt would also validate; assert the
        // raw memory word explicitly here).
        let result = cluster.mem().read(program.symbol("result").unwrap(), 8).unwrap();
        let golden = crate::golden::mc_hits(Integrand::Pi, Rng::Lcg, n);
        assert_eq!(result, golden.to_bits(), "aggregate must equal the single-core golden model");
        // Eight harts hammering a shared TCDM must actually contend.
        assert!(stats.tcdm_conflicts > 0, "expected TCDM bank contention across 8 harts");
        assert!(stats.stall_barrier > 0, "harts synchronized at the hardware barrier");
        // Per-hart statistics exist and roll up.
        let per_hart: u64 = (0..cores).map(|h| cluster.core_stats(h).int_issued).sum();
        assert_eq!(stats.int_issued, per_hart);
        assert!((0..cores).all(|h| cluster.core_stats(h).fp_issued_seq > 0));
        // And the full harness path validates the same program.
        Kernel::PiLcgPar
            .run_with(
                Variant::Copift,
                n,
                block,
                ClusterConfig { cores, ..ClusterConfig::default() },
            )
            .expect("harness validation of the 8-core run");
    }

    #[test]
    fn parallel_kernels_validate_across_core_counts_and_variants() {
        for kernel in [Kernel::PiLcgPar, Kernel::PiXoshiroPar] {
            for cores in [1usize, 2, 3, 8] {
                let cfg = ClusterConfig { cores, ..ClusterConfig::default() };
                kernel
                    .run_with(Variant::Baseline, 768, 0, cfg.clone())
                    .unwrap_or_else(|e| panic!("{} base x{cores}: {e}", kernel.name()));
                kernel
                    .run_with(Variant::Copift, 768, 16, cfg)
                    .unwrap_or_else(|e| panic!("{} copift x{cores}: {e}", kernel.name()));
            }
        }
    }

    /// A minimal runtime-registered workload: writes one constant word.
    struct ConstWorkload;

    impl Workload for ConstWorkload {
        fn name(&self) -> &'static str {
            "const42"
        }
        fn description(&self) -> &'static str {
            "test workload"
        }
        fn build(&self, _variant: Variant, _n: usize, _block: usize) -> Program {
            use snitch_asm::builder::ProgramBuilder;
            use snitch_riscv::reg::IntReg;
            let mut b = ProgramBuilder::new();
            let out = b.tcdm_reserve("result", 8, 8);
            b.li_u(IntReg::A0, out);
            b.li(IntReg::A1, 42);
            b.sw(IntReg::A1, IntReg::A0, 0);
            b.ecall();
            b.build().unwrap()
        }
        fn expected(&self, _variant: Variant, _n: usize) -> Vec<(&'static str, Vec<u64>)> {
            vec![("result", vec![42u64])]
        }
        fn operating_point(&self) -> (usize, usize) {
            (64, 16)
        }
    }

    #[test]
    fn runtime_registration_extends_the_catalog() {
        // Registration mutates the process-wide catalog for the rest of this
        // test binary: once this test has run, `const42` is part of
        // `Kernel::all()` and `Kernel::extended()`. Tests in this binary must
        // therefore never assert an exact catalog size or an exact extended
        // list — check the first `BUILTINS.len()` entries (a stable prefix)
        // or membership instead.
        static W: ConstWorkload = ConstWorkload;
        let handle = register(&W).expect("first registration succeeds");
        assert_eq!(Kernel::from_name("const42"), Some(handle));
        assert!(Kernel::all().contains(&handle));
        assert!(!Kernel::paper().contains(&handle), "registered kernels are not paper kernels");
        // The handle runs through the standard harness.
        let r = handle.run(Variant::Baseline, 64, 16).expect("validates");
        assert!(r.total_cycles > 0);
        // Names stay unique.
        assert_eq!(register(&W), Err(RegistryError::DuplicateName("const42".to_string())));
    }

    #[test]
    fn run_on_reused_cluster_matches_fresh_run() {
        let (n, block) = (64, 16);
        let program = Kernel::PolyLcg.build(Variant::Copift, n, block);
        let fresh = Kernel::PolyLcg
            .run_prebuilt(Variant::Copift, n, ClusterConfig::default(), &program)
            .expect("fresh run validates");
        let mut system = System::new(SystemConfig::default());
        // Dirty the system with an unrelated kernel first.
        let other = Kernel::PiLcg.build(Variant::Baseline, 64, 0);
        Kernel::PiLcg
            .run_on(&mut system, Variant::Baseline, 64, &other)
            .expect("warm-up run validates");
        let reused = Kernel::PolyLcg
            .run_on(&mut system, Variant::Copift, n, &program)
            .expect("reused run validates");
        assert_eq!(fresh.stats, reused.stats, "reuse must not perturb timing");
    }
}
