//! Kernel registry: the paper's six workloads behind one enumeration.

use snitch_asm::program::Program;
use snitch_sim::config::ClusterConfig;

use crate::golden::{mc_hits, Integrand, Rng};
use crate::harness::{run_validated, HarnessError, RunOutcome};
use crate::{expf, logf, mc};

/// Code variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// Snitch-optimized RV32G baseline.
    Baseline,
    /// COPIFT-accelerated (FREP + SSR + custom-1 extensions).
    Copift,
}

impl Variant {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "base",
            Variant::Copift => "copift",
        }
    }
}

/// The six evaluated kernels, in the paper's Figure 2 order
/// (increasing expected speedup `S′`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    /// Monte Carlo π with xoshiro128+.
    PiXoshiro,
    /// Monte Carlo polynomial with xoshiro128+.
    PolyXoshiro,
    /// Monte Carlo π with the LCG.
    PiLcg,
    /// Monte Carlo polynomial with the LCG.
    PolyLcg,
    /// Vector logarithm.
    Logf,
    /// Vector exponential.
    Expf,
}

impl Kernel {
    /// All kernels in Figure 2 order.
    #[must_use]
    pub fn all() -> [Kernel; 6] {
        [
            Kernel::PiXoshiro,
            Kernel::PolyXoshiro,
            Kernel::PiLcg,
            Kernel::PolyLcg,
            Kernel::Logf,
            Kernel::Expf,
        ]
    }

    /// The paper's kernel name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::PiXoshiro => "pi_xoshiro128p",
            Kernel::PolyXoshiro => "poly_xoshiro128p",
            Kernel::PiLcg => "pi_lcg",
            Kernel::PolyLcg => "poly_lcg",
            Kernel::Logf => "log",
            Kernel::Expf => "exp",
        }
    }

    fn mc_parts(self) -> Option<(Integrand, Rng)> {
        Some(match self {
            Kernel::PiXoshiro => (Integrand::Pi, Rng::Xoshiro128p),
            Kernel::PolyXoshiro => (Integrand::Poly, Rng::Xoshiro128p),
            Kernel::PiLcg => (Integrand::Pi, Rng::Lcg),
            Kernel::PolyLcg => (Integrand::Poly, Rng::Lcg),
            Kernel::Logf | Kernel::Expf => return None,
        })
    }

    /// Whether this is a Monte Carlo kernel.
    #[must_use]
    pub fn is_mc(self) -> bool {
        self.mc_parts().is_some()
    }

    /// Builds the program for `variant` with problem size `n` (points or
    /// vector elements) and block size `block` (ignored by the Monte Carlo
    /// and `logf` baselines, which have no DMA blocking).
    ///
    /// # Panics
    ///
    /// Panics on size constraints violated (see the kernel modules).
    #[must_use]
    pub fn build(self, variant: Variant, n: usize, block: usize) -> Program {
        match (self.mc_parts(), variant) {
            (Some((i, r)), Variant::Baseline) => mc::baseline(i, r, n),
            (Some((i, r)), Variant::Copift) => mc::copift(i, r, n, block),
            (None, Variant::Baseline) => match self {
                Kernel::Expf => expf::baseline(n, block),
                Kernel::Logf => logf::baseline(n),
                _ => unreachable!(),
            },
            (None, Variant::Copift) => match self {
                Kernel::Expf => expf::copift(n, block),
                Kernel::Logf => logf::copift(n, block),
                _ => unreachable!(),
            },
        }
    }

    /// Golden expectations: `(symbol, values)` checked after a run.
    #[must_use]
    pub fn expected(self, variant: Variant, n: usize, block: usize) -> Vec<(&'static str, Vec<u64>)> {
        match self.mc_parts() {
            Some((i, r)) => {
                let hits = mc_hits(i, r, n);
                let bits = match variant {
                    Variant::Baseline => hits as u64, // u32 count, zero-padded
                    Variant::Copift => hits.to_bits(),
                };
                vec![("result", vec![bits])]
            }
            None => match self {
                Kernel::Expf => {
                    // y lands after one dummy block in y_main.
                    let mut v = vec![0u64; block];
                    v.extend(expf::golden_outputs(n));
                    let _ = v.drain(..block);
                    vec![("y_check", v)] // resolved via offset below
                }
                Kernel::Logf => vec![("y_data", logf::golden_outputs(n))],
                _ => unreachable!(),
            },
        }
    }

    /// Runs and validates; returns the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run(self, variant: Variant, n: usize, block: usize) -> Result<RunOutcome, HarnessError> {
        self.run_with(variant, n, block, ClusterConfig::default())
    }

    /// Runs with a custom cluster configuration (for ablations).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run_with(
        self,
        variant: Variant,
        n: usize,
        block: usize,
        cfg: ClusterConfig,
    ) -> Result<RunOutcome, HarnessError> {
        let program = self.build(variant, n, block);
        if self == Kernel::Expf {
            // expf's y output sits one block after the y_main symbol.
            let (cluster, stats) = crate::harness::run_program(&program, cfg)?;
            let base = program.symbol("y_main").expect("y_main") + (block as u32) * 8;
            let golden = expf::golden_outputs(n);
            for (i, want) in golden.iter().enumerate() {
                let got = cluster
                    .mem()
                    .read(base + (i as u32) * 8, 8)
                    .map_err(|e| HarnessError::Run(snitch_sim::RunError::Fault(e.into())))?;
                if got != *want {
                    return Err(HarnessError::Mismatch {
                        what: "y".into(),
                        index: i,
                        got,
                        want: *want,
                    });
                }
            }
            let report = snitch_energy::EnergyModel::gf12lp().report(&stats);
            return Ok(RunOutcome {
                total_cycles: stats.cycles,
                power_mw: report.avg_power_mw,
                energy_uj: report.energy_uj,
                stats,
            });
        }
        let expected = self.expected(variant, n, block);
        run_validated(&program, cfg, &expected)
    }

    /// A representative operating point `(n, block)` for steady-state
    /// measurements (Figure 2).
    #[must_use]
    pub fn operating_point(self) -> (usize, usize) {
        match self {
            Kernel::Expf | Kernel::Logf => (2048, 128),
            _ => (8192, 256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_figure2_order() {
        let names: Vec<&str> = Kernel::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["pi_xoshiro128p", "poly_xoshiro128p", "pi_lcg", "poly_lcg", "log", "exp"]
        );
    }

    #[test]
    fn mc_baseline_pi_lcg_validates() {
        let r = Kernel::PiLcg.run(Variant::Baseline, 64, 0).expect("runs and validates");
        assert!(r.total_cycles > 0);
    }
}
