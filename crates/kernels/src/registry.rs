//! Kernel registry: the paper's six workloads behind one enumeration.

use snitch_asm::program::Program;
use snitch_energy::EnergyModel;
use snitch_sim::cluster::Cluster;
use snitch_sim::config::ClusterConfig;

use crate::golden::{mc_hits, Integrand, Rng};
use crate::harness::{HarnessError, RunOutcome};
use crate::{expf, logf, mc};

/// Code variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// Snitch-optimized RV32G baseline.
    Baseline,
    /// COPIFT-accelerated (FREP + SSR + custom-1 extensions).
    Copift,
}

impl Variant {
    /// Both variants, baseline first.
    #[must_use]
    pub fn all() -> [Variant; 2] {
        [Variant::Baseline, Variant::Copift]
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "base",
            Variant::Copift => "copift",
        }
    }

    /// Parses a display name (as printed by [`name`](Self::name)).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Variant> {
        Variant::all().into_iter().find(|v| v.name() == name)
    }
}

/// The six evaluated kernels, in the paper's Figure 2 order
/// (increasing expected speedup `S′`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    /// Monte Carlo π with xoshiro128+.
    PiXoshiro,
    /// Monte Carlo polynomial with xoshiro128+.
    PolyXoshiro,
    /// Monte Carlo π with the LCG.
    PiLcg,
    /// Monte Carlo polynomial with the LCG.
    PolyLcg,
    /// Vector logarithm.
    Logf,
    /// Vector exponential.
    Expf,
}

impl Kernel {
    /// All kernels in Figure 2 order.
    #[must_use]
    pub fn all() -> [Kernel; 6] {
        [
            Kernel::PiXoshiro,
            Kernel::PolyXoshiro,
            Kernel::PiLcg,
            Kernel::PolyLcg,
            Kernel::Logf,
            Kernel::Expf,
        ]
    }

    /// Parses a paper kernel name (as printed by [`name`](Self::name)).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::all().into_iter().find(|k| k.name() == name)
    }

    /// The paper's kernel name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::PiXoshiro => "pi_xoshiro128p",
            Kernel::PolyXoshiro => "poly_xoshiro128p",
            Kernel::PiLcg => "pi_lcg",
            Kernel::PolyLcg => "poly_lcg",
            Kernel::Logf => "log",
            Kernel::Expf => "exp",
        }
    }

    fn mc_parts(self) -> Option<(Integrand, Rng)> {
        Some(match self {
            Kernel::PiXoshiro => (Integrand::Pi, Rng::Xoshiro128p),
            Kernel::PolyXoshiro => (Integrand::Poly, Rng::Xoshiro128p),
            Kernel::PiLcg => (Integrand::Pi, Rng::Lcg),
            Kernel::PolyLcg => (Integrand::Poly, Rng::Lcg),
            Kernel::Logf | Kernel::Expf => return None,
        })
    }

    /// Whether this is a Monte Carlo kernel.
    #[must_use]
    pub fn is_mc(self) -> bool {
        self.mc_parts().is_some()
    }

    /// Builds the program for `variant` with problem size `n` (points or
    /// vector elements) and block size `block` (ignored by the Monte Carlo
    /// and `logf` baselines, which have no DMA blocking).
    ///
    /// # Panics
    ///
    /// Panics on size constraints violated (see the kernel modules).
    #[must_use]
    pub fn build(self, variant: Variant, n: usize, block: usize) -> Program {
        match (self.mc_parts(), variant) {
            (Some((i, r)), Variant::Baseline) => mc::baseline(i, r, n),
            (Some((i, r)), Variant::Copift) => mc::copift(i, r, n, block),
            (None, Variant::Baseline) => match self {
                Kernel::Expf => expf::baseline(n, block),
                Kernel::Logf => logf::baseline(n),
                _ => unreachable!(),
            },
            (None, Variant::Copift) => match self {
                Kernel::Expf => expf::copift(n, block),
                Kernel::Logf => logf::copift(n, block),
                _ => unreachable!(),
            },
        }
    }

    /// Golden expectations: `(symbol, values)` checked after a run.
    #[must_use]
    pub fn expected(self, variant: Variant, n: usize) -> Vec<(&'static str, Vec<u64>)> {
        match self.mc_parts() {
            Some((i, r)) => {
                let hits = mc_hits(i, r, n);
                let bits = match variant {
                    Variant::Baseline => hits as u64, // u32 count, zero-padded
                    Variant::Copift => hits.to_bits(),
                };
                vec![("result", vec![bits])]
            }
            None => match self {
                // `y_out` aliases the live output window inside `y_main`
                // (one dummy block in; see `expf::alloc_io`).
                Kernel::Expf => vec![("y_out", expf::golden_outputs(n))],
                Kernel::Logf => vec![("y_data", logf::golden_outputs(n))],
                _ => unreachable!(),
            },
        }
    }

    /// Runs and validates; returns the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run(self, variant: Variant, n: usize, block: usize) -> Result<RunOutcome, HarnessError> {
        self.run_with(variant, n, block, ClusterConfig::default())
    }

    /// Runs with a custom cluster configuration (for ablations).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run_with(
        self,
        variant: Variant,
        n: usize,
        block: usize,
        cfg: ClusterConfig,
    ) -> Result<RunOutcome, HarnessError> {
        let program = self.build(variant, n, block);
        self.run_prebuilt(variant, n, cfg, &program)
    }

    /// Runs a pre-assembled program (e.g. one served by `snitch-engine`'s
    /// program cache) on a fresh cluster. A pure function of its arguments —
    /// safe to call concurrently from worker threads sharing the `Program`.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run_prebuilt(
        self,
        variant: Variant,
        n: usize,
        cfg: ClusterConfig,
        program: &Program,
    ) -> Result<RunOutcome, HarnessError> {
        // A fresh cluster needs no reset.
        self.run_loaded(&mut Cluster::new(cfg), variant, n, program)
    }

    /// Runs a pre-assembled program on an existing cluster, resetting it
    /// first so allocations are reused across a stream of jobs. The cluster's
    /// configuration must describe the intended experiment; `program` must be
    /// the result of [`build`](Self::build) with the same `variant` and `n`
    /// (the block size is baked into the program and its output symbols).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] on simulation failure or golden mismatch.
    pub fn run_on(
        self,
        cluster: &mut Cluster,
        variant: Variant,
        n: usize,
        program: &Program,
    ) -> Result<RunOutcome, HarnessError> {
        cluster.reset();
        self.run_loaded(cluster, variant, n, program)
    }

    /// Runs on a cluster known to be in its just-constructed (or freshly
    /// reset) state: load, run, validate, report.
    fn run_loaded(
        self,
        cluster: &mut Cluster,
        variant: Variant,
        n: usize,
        program: &Program,
    ) -> Result<RunOutcome, HarnessError> {
        cluster.load_program(program);
        let stats = cluster.run()?;
        self.check(variant, n, program, cluster)?;
        let report = EnergyModel::gf12lp().report(&stats);
        Ok(RunOutcome {
            total_cycles: stats.cycles,
            power_mw: report.avg_power_mw,
            energy_uj: report.energy_uj,
            stats,
        })
    }

    /// Validates a completed run's outputs bit-exactly against the golden
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Mismatch`] on any output bit difference, or
    /// [`HarnessError::Run`] if an output address is unmapped.
    pub fn check(
        self,
        variant: Variant,
        n: usize,
        program: &Program,
        cluster: &Cluster,
    ) -> Result<(), HarnessError> {
        for (symbol, golden) in self.expected(variant, n) {
            let base = program
                .symbol(symbol)
                .unwrap_or_else(|| panic!("program lacks output symbol `{symbol}`"));
            crate::harness::check_words(cluster, base, &golden, symbol)?;
        }
        Ok(())
    }

    /// A representative operating point `(n, block)` for steady-state
    /// measurements (Figure 2).
    #[must_use]
    pub fn operating_point(self) -> (usize, usize) {
        match self {
            Kernel::Expf | Kernel::Logf => (2048, 128),
            _ => (8192, 256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_figure2_order() {
        let names: Vec<&str> = Kernel::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["pi_xoshiro128p", "poly_xoshiro128p", "pi_lcg", "poly_lcg", "log", "exp"]
        );
    }

    #[test]
    fn mc_baseline_pi_lcg_validates() {
        let r = Kernel::PiLcg.run(Variant::Baseline, 64, 0).expect("runs and validates");
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for k in Kernel::all() {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        for v in Variant::all() {
            assert_eq!(Variant::from_name(v.name()), Some(v));
        }
        assert_eq!(Kernel::from_name("nope"), None);
        assert_eq!(Variant::from_name("nope"), None);
    }

    #[test]
    fn run_on_reused_cluster_matches_fresh_run() {
        let (n, block) = (64, 16);
        let program = Kernel::PolyLcg.build(Variant::Copift, n, block);
        let fresh = Kernel::PolyLcg
            .run_prebuilt(Variant::Copift, n, ClusterConfig::default(), &program)
            .expect("fresh run validates");
        let mut cluster = Cluster::new(ClusterConfig::default());
        // Dirty the cluster with an unrelated kernel first.
        let other = Kernel::PiLcg.build(Variant::Baseline, 64, 0);
        Kernel::PiLcg
            .run_on(&mut cluster, Variant::Baseline, 64, &other)
            .expect("warm-up run validates");
        let reused = Kernel::PolyLcg
            .run_on(&mut cluster, Variant::Copift, n, &program)
            .expect("reused run validates");
        assert_eq!(fresh.stats, reused.stats, "reuse must not perturb timing");
    }
}
