//! Run-and-validate harness: executes kernel programs on the simulator,
//! checks results bit-exactly against the golden models, and measures
//! steady-state metrics by differencing two problem sizes (which cancels
//! setup, prologue and epilogue contributions — the paper's "steady-state
//! iteration" measurements).

use snitch_asm::program::Program;
use snitch_energy::EnergyModel;
use snitch_sim::config::SystemConfig;
use snitch_sim::error::RunError;
use snitch_sim::stats::Stats;
use snitch_sim::system::System;

/// Result of one validated kernel run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Full-run statistics.
    pub stats: Stats,
    /// Total cycles (convenience alias of `stats.cycles`).
    pub total_cycles: u64,
    /// Average power over the run (calibrated model), mW.
    pub power_mw: f64,
    /// Total energy, µJ.
    pub energy_uj: f64,
}

/// Validation or execution failure.
#[derive(Debug)]
pub enum HarnessError {
    /// The simulator aborted.
    Run(RunError),
    /// Simulated output disagrees with the golden model.
    Mismatch {
        /// What was being compared.
        what: String,
        /// Element index.
        index: usize,
        /// Simulated bits.
        got: u64,
        /// Golden bits.
        want: u64,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Run(e) => write!(f, "simulation failed: {e}"),
            HarnessError::Mismatch { what, index, got, want } => {
                write!(f, "golden mismatch in {what}[{index}]: got {got:#018x}, want {want:#018x}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<RunError> for HarnessError {
    fn from(e: RunError) -> Self {
        HarnessError::Run(e)
    }
}

/// Runs `program` to completion and returns the system for inspection.
/// Accepts a [`ClusterConfig`](snitch_sim::config::ClusterConfig) too (a
/// single-cluster system) via `Into`.
///
/// # Errors
///
/// Returns [`HarnessError::Run`] if the simulation faults, deadlocks or
/// times out.
pub fn run_program(
    program: &Program,
    cfg: impl Into<SystemConfig>,
) -> Result<(System, Stats), HarnessError> {
    let mut system = System::new(cfg.into());
    system.load_program(program);
    let stats = system.run()?;
    Ok((system, stats))
}

/// Runs and validates a program whose outputs are `(symbol, golden bits)`
/// arrays of 64-bit values.
///
/// # Errors
///
/// Returns [`HarnessError`] on simulation failure or any bit mismatch.
pub fn run_validated(
    program: &Program,
    cfg: impl Into<SystemConfig>,
    expected: &[(&str, Vec<u64>)],
) -> Result<RunOutcome, HarnessError> {
    let (system, stats) = run_program(program, cfg)?;
    for (symbol, golden) in expected {
        let base = program
            .symbol(symbol)
            .unwrap_or_else(|| panic!("program lacks output symbol `{symbol}`"));
        check_words(&system, base, golden, symbol)?;
    }
    let report = EnergyModel::gf12lp().report(&stats);
    Ok(RunOutcome {
        total_cycles: stats.cycles,
        power_mw: report.avg_power_mw,
        energy_uj: report.energy_uj,
        stats,
    })
}

/// Compares `golden` 64-bit words against system memory starting at `base`
/// — the one bit-exact comparison loop every validation path shares. L2
/// addresses read the canonical (post-merge) contents; everything else
/// reads cluster 0.
///
/// # Errors
///
/// Returns [`HarnessError::Mismatch`] on the first differing word, or
/// [`HarnessError::Run`] if an address is unmapped.
pub fn check_words(
    system: &System,
    base: u32,
    golden: &[u64],
    what: &str,
) -> Result<(), HarnessError> {
    for (i, want) in golden.iter().enumerate() {
        let got = system
            .read_mem(base + (i as u32) * 8, 8)
            .map_err(|e| HarnessError::Run(RunError::Fault(e.into())))?;
        if got != *want {
            return Err(HarnessError::Mismatch {
                what: what.to_string(),
                index: i,
                got,
                want: *want,
            });
        }
    }
    Ok(())
}

/// Steady-state metrics derived by differencing two runs of the same kernel
/// at different problem sizes.
#[derive(Clone, Debug)]
pub struct SteadyState {
    /// Steady-state instructions per cycle.
    pub ipc: f64,
    /// Cycles per processed element (point / vector entry).
    pub cycles_per_elem: f64,
    /// Steady-state average power, mW.
    pub power_mw: f64,
    /// Steady-state energy per element, nJ.
    pub energy_per_elem_nj: f64,
    /// The differenced counters.
    pub delta: Stats,
}

/// Computes steady-state metrics from two validated runs: `(stats_small,
/// n_small)` and `(stats_large, n_large)`.
#[must_use]
pub fn steady_state(small: &Stats, n_small: usize, large: &Stats, n_large: usize) -> SteadyState {
    assert!(n_large > n_small, "need two distinct problem sizes");
    let delta = large.delta_since(small);
    let elems = (n_large - n_small) as f64;
    let ipc = delta.ipc();
    let cycles_per_elem = delta.cycles as f64 / elems;
    let report = EnergyModel::gf12lp().report(&delta);
    SteadyState {
        ipc,
        cycles_per_elem,
        power_mw: report.avg_power_mw,
        energy_per_elem_nj: report.energy_uj * 1e3 / elems,
        delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::IntReg;
    use snitch_sim::config::ClusterConfig;

    #[test]
    fn validation_catches_wrong_output() {
        let mut b = ProgramBuilder::new();
        let out = b.tcdm_reserve("out", 8, 8);
        b.li_u(IntReg::A0, out);
        b.li(IntReg::A1, 41);
        b.sw(IntReg::A1, IntReg::A0, 0);
        b.ecall();
        let p = b.build().unwrap();
        let err = run_validated(&p, ClusterConfig::default(), &[("out", vec![42u64])])
            .expect_err("must detect mismatch");
        match err {
            HarnessError::Mismatch { got, want, .. } => {
                assert_eq!(got, 41);
                assert_eq!(want, 42);
            }
            other @ HarnessError::Run(_) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn validation_accepts_correct_output() {
        let mut b = ProgramBuilder::new();
        let out = b.tcdm_reserve("out", 8, 8);
        b.li_u(IntReg::A0, out);
        b.li(IntReg::A1, 42);
        b.sw(IntReg::A1, IntReg::A0, 0);
        b.ecall();
        let p = b.build().unwrap();
        let r = run_validated(&p, ClusterConfig::default(), &[("out", vec![42u64])]).unwrap();
        assert!(r.total_cycles > 0);
        assert!(r.power_mw > 0.0);
    }
}
