//! Tiled double-precision GEMM (`C = A·B`) staged through the shared L2.
//!
//! The first workload written *for* the multi-cluster [`System`]: `A`, `B`
//! and `C` live in L2, and every cluster DMAs its working set into TCDM
//! before computing — the data path the single-cluster kernels never
//! exercise (their inputs are TCDM-resident images).
//!
//! **Tiling.** For a `d×d` problem on `clusters × cores` harts, global row
//! `g` of `C` is owned by cluster `g/H mod C`, hart `g mod H` (blocks of
//! `H = cores` consecutive rows round-robin over the `C = clusters`
//! clusters). Each cluster stages the full `B` (reused by every row) plus
//! its `d/C` rows of `A` with one 2-D DMA descriptor (`dmstr`/`dmrep`:
//! stride `C·H·d·8` in L2, packed in TCDM), computes its `d/C` rows of `C`
//! into TCDM, and writes them back with the reversed 2-D descriptor. The
//! constraint is `d % (clusters·cores) == 0`.
//!
//! **Variants.** The baseline is the scalar RV32G loop nest (two `fld`s and
//! an `fmadd.d` per inner iteration). The COPIFT variant streams the `A`
//! row through SSR 0 (repeated `d` times via a zero-stride outer dimension)
//! and `B` column-major through SSR 1, reducing each output element with a
//! single-instruction FREP over `fmadd.d` — the 2-D affine streams from the
//! paper's GEMM discussion.
//!
//! **Bit-exactness.** Both variants accumulate in k-ascending order with
//! fused multiply-adds, so every `(cores, clusters)` shape produces the
//! same bits as the host golden model's `f64::mul_add` loop — the tiling
//! only permutes *which hart* computes a row, never the order within one.
//!
//! [`System`]: snitch_sim::system::System

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::reg::{FpReg, IntReg};

use crate::golden::input_doubles;

fn x(i: u8) -> IntReg {
    IntReg::new(i)
}
fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// Validates the shape: `d` rows must split evenly into blocks of `cores`
/// rows across `clusters` clusters, and one cluster's working set
/// (`B` + `d/clusters` rows of `A` and `C`) must fit in TCDM.
fn check_shape(d: usize, cores: usize, clusters: usize) {
    assert!(d > 0 && cores > 0 && clusters > 0, "empty shape");
    assert_eq!(
        d % (clusters * cores),
        0,
        "gemm_tiled needs d % (clusters*cores) == 0 (d={d}, cores={cores}, clusters={clusters})"
    );
    let tile_bytes = (d * d + 2 * (d / clusters) * d) * 8;
    assert!(
        tile_bytes <= snitch_asm::layout::TCDM_SIZE as usize,
        "per-cluster working set ({tile_bytes} B) exceeds TCDM"
    );
}

/// The operand matrices: one LCG stream split in two so `A` and `B` are
/// uncorrelated. Row-major `d×d`.
fn operands(d: usize) -> (Vec<f64>, Vec<f64>) {
    let v = input_doubles(2 * d * d, -1.0, 1.0);
    let (a, b) = v.split_at(d * d);
    (a.to_vec(), b.to_vec())
}

/// Host golden model: `C = A·B` with k-ascending `mul_add` per element —
/// bit-exact against the simulated `fmadd.d` reduction on every shape.
#[must_use]
pub fn golden_outputs(d: usize) -> Vec<u64> {
    let (a, b) = operands(d);
    let mut c = vec![0u64; d * d];
    for i in 0..d {
        for j in 0..d {
            let mut acc = 0.0f64;
            for k in 0..d {
                acc = a[i * d + k].mul_add(b[k * d + j], acc);
            }
            c[i * d + j] = acc.to_bits();
        }
    }
    c
}

/// Emits the shared SPMD frame around a variant-specific compute phase:
/// data in L2, hart 0 stages `B` and the cluster's `A` block into TCDM,
/// barrier, compute (`emit_compute`), fence + barrier, hart 0 writes the
/// `C` block back to L2.
fn build(
    d: usize,
    cores: usize,
    clusters: usize,
    emit_compute: impl FnOnce(&mut ProgramBuilder, [u32; 3]),
) -> Program {
    check_shape(d, cores, clusters);
    let (a, bm) = operands(d);
    let rows_pc = d / clusters; // rows of A/C owned by one cluster
    let blocks = d / (clusters * cores); // row blocks per cluster
    let dd8 = (d * d * 8) as u32; // bytes of one full matrix
    let h_d8 = (cores * d * 8) as u32; // bytes of one H-row block
    let ch_d8 = (clusters * cores * d * 8) as u32; // L2 stride between a cluster's blocks

    let mut b = ProgramBuilder::new();
    b.parallel();
    let a_l2 = b.l2_f64("a_data", &a);
    let b_l2 = b.l2_f64("b_data", &bm);
    let c_l2 = b.l2_reserve("c_data", d * d * 8, 8);
    let b_tile = b.tcdm_reserve("b_tile", d * d * 8, 8);
    let a_tile = b.tcdm_reserve("a_tile", rows_pc * d * 8, 8);
    let c_tile = b.tcdm_reserve("c_tile", rows_pc * d * 8, 8);

    b.csrr_mhartid(x(28));
    b.csrr_cluster_id(x(27));

    // Hart 0 stages the cluster's working set; everyone else parks at the
    // barrier.
    b.bnez(x(28), "tiles_staged");
    // Full B, one 1-D copy (strides/reps are in their reset state).
    b.li_u(x(5), b_l2);
    b.dmsrc(x(5));
    b.li_u(x(6), b_tile);
    b.dmdst(x(6));
    b.li_u(x(7), dd8);
    b.dmcpyi(x(31), x(7));
    // This cluster's A rows: `blocks` segments of H·d·8 bytes, strided
    // C·H·d·8 apart in L2, packed in TCDM.
    b.li_u(x(9), h_d8);
    b.mul(x(5), x(27), x(9));
    b.li_u(x(10), a_l2);
    b.add(x(5), x(5), x(10));
    b.dmsrc(x(5));
    b.li_u(x(6), a_tile);
    b.dmdst(x(6));
    b.li_u(x(10), ch_d8);
    b.dmstr(x(10), x(9));
    b.li(x(11), blocks as i32);
    b.dmrep(x(11));
    b.dmcpyi(x(31), x(9));
    b.label("stage_wait");
    b.dmstati(x(12));
    b.bnez(x(12), "stage_wait");
    b.label("tiles_staged");
    b.barrier();

    emit_compute(&mut b, [b_tile, a_tile, c_tile]);

    // C block back to L2: the reversed 2-D descriptor (packed TCDM source,
    // strided L2 destination).
    b.fpu_fence();
    b.barrier();
    b.bnez(x(28), "done");
    b.li_u(x(9), h_d8);
    b.li_u(x(5), c_tile);
    b.dmsrc(x(5));
    b.mul(x(6), x(27), x(9));
    b.li_u(x(10), c_l2);
    b.add(x(6), x(6), x(10));
    b.dmdst(x(6));
    b.li_u(x(10), ch_d8);
    b.dmstr(x(9), x(10));
    b.li(x(11), blocks as i32);
    b.dmrep(x(11));
    b.dmcpyi(x(31), x(9));
    b.label("writeback_wait");
    b.dmstati(x(12));
    b.bnez(x(12), "writeback_wait");
    b.label("done");
    b.ecall();
    b.build().expect("gemm_tiled assembles")
}

/// Emits the shared per-row loop head: `x23` holds the local row, `x22`
/// and `x21` get the row's `a_tile`/`c_tile` addresses (clobbers `x16`).
/// Symbol addresses are looked up lazily because TCDM layout is fixed at
/// this point.
fn emit_row_addrs(b: &mut ProgramBuilder, a_tile: u32, c_tile: u32) {
    b.mul(x(22), x(23), x(26));
    b.li_u(x(16), a_tile);
    b.add(x(22), x(22), x(16));
    b.mul(x(21), x(23), x(26));
    b.li_u(x(16), c_tile);
    b.add(x(21), x(21), x(16));
}

/// Snitch-optimized RV32G baseline.
///
/// # Panics
///
/// Panics when `d % (clusters*cores) != 0` or the tile exceeds TCDM.
#[must_use]
pub fn baseline(d: usize, cores: usize, clusters: usize) -> Program {
    let rows_pc = d / clusters;
    build(d, cores, clusters, |b, [b_tile, a_tile, c_tile]| {
        b.fcvt_d_w(f(0), IntReg::ZERO); // 0.0
        b.mv(x(23), x(28)); // local row = hart id
        b.li(x(24), cores as i32);
        b.li(x(25), rows_pc as i32);
        b.li(x(26), (d * 8) as i32);
        b.label("row_loop");
        emit_row_addrs(b, a_tile, c_tile);
        b.li_u(x(13), b_tile); // column base walks right each j
        b.li(x(20), d as i32);
        b.label("col_loop");
        b.mv(x(17), x(22)); // a walks the row
        b.mv(x(19), x(13)); // b walks the column
        b.fmv_d(f(3), f(0)); // acc = 0
        b.li(x(18), d as i32);
        b.label("k_loop");
        b.fld(f(1), x(17), 0);
        b.fld(f(2), x(19), 0);
        b.fmadd_d(f(3), f(1), f(2), f(3));
        b.addi(x(17), x(17), 8);
        b.add(x(19), x(19), x(26));
        b.addi(x(18), x(18), -1);
        b.bnez(x(18), "k_loop");
        b.fsd(f(3), x(21), 0);
        b.addi(x(21), x(21), 8);
        b.addi(x(13), x(13), 8);
        b.addi(x(20), x(20), -1);
        b.bnez(x(20), "col_loop");
        b.add(x(23), x(23), x(24));
        b.blt(x(23), x(25), "row_loop");
    })
}

/// COPIFT variant: 2-D affine SSR streams + single-instruction FREP.
///
/// SSR 0 serves the `A` row `d` times (inner dim walks the row, zero-stride
/// outer dim repeats it); SSR 1 serves `B` column-major (inner dim strides
/// one row down, outer dim steps one column right). Each output element is
/// then one `frep` over `fmadd.d ft5, ft0, ft1, ft5`.
///
/// # Panics
///
/// Panics when `d % (clusters*cores) != 0` or the tile exceeds TCDM.
#[must_use]
pub fn copift(d: usize, cores: usize, clusters: usize) -> Program {
    let rows_pc = d / clusters;
    build(d, cores, clusters, |b, [b_tile, a_tile, c_tile]| {
        b.fcvt_d_w(f(4), IntReg::ZERO); // 0.0 (f0..f2 are SSR streams)
        b.mv(x(23), x(28));
        b.li(x(24), cores as i32);
        b.li(x(25), rows_pc as i32);
        b.li(x(26), (d * 8) as i32);
        b.li(x(15), (d - 1) as i32);
        // Both streams: 2-D reads, d×d elements per arming.
        b.li(x(14), 0b010);
        for ssr in 0..2 {
            b.scfgwi(x(14), ssr, SsrCfgWord::Status);
            b.scfgwi(x(15), ssr, SsrCfgWord::Bound(0));
            b.scfgwi(x(15), ssr, SsrCfgWord::Bound(1));
        }
        b.li(x(13), 8);
        b.scfgwi(x(13), 0, SsrCfgWord::Stride(0)); // A: walk the row...
        b.scfgwi(IntReg::ZERO, 0, SsrCfgWord::Stride(1)); // ...d times over
        b.scfgwi(x(26), 1, SsrCfgWord::Stride(0)); // B: down a column...
        b.scfgwi(x(13), 1, SsrCfgWord::Stride(1)); // ...then right one
        b.li_u(x(12), b_tile);
        b.ssr_enable();
        b.label("row_loop");
        emit_row_addrs(b, a_tile, c_tile);
        b.scfgwi(x(22), 0, SsrCfgWord::Base); // arm A-row stream
        b.scfgwi(x(12), 1, SsrCfgWord::Base); // arm B stream
        b.li(x(20), d as i32);
        b.label("col_loop");
        b.fmv_d(f(5), f(4)); // acc = 0
        b.frep_o(x(15), 1, 0, 0);
        b.fmadd_d(f(5), f(0), f(1), f(5));
        b.fsd(f(5), x(21), 0);
        b.addi(x(21), x(21), 8);
        b.addi(x(20), x(20), -1);
        b.bnez(x(20), "col_loop");
        b.add(x(23), x(23), x(24));
        b.blt(x(23), x(25), "row_loop");
        // Drain before disabling: queued frep bodies must still pop their
        // streams (disable takes effect at once, not in issue order).
        b.fpu_fence();
        b.ssr_disable();
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_sim::{ClusterConfig, System, SystemConfig};

    fn run_shape(
        program: &Program,
        cores: usize,
        clusters: usize,
        d: usize,
    ) -> (System, snitch_sim::Stats) {
        let cfg =
            SystemConfig { cluster: ClusterConfig { cores, ..ClusterConfig::default() }, clusters };
        let mut system = System::new(cfg);
        system.load_program(program);
        let stats = system.run().unwrap_or_else(|e| panic!("x{clusters}/c{cores} d{d}: {e}"));
        (system, stats)
    }

    fn check_c(system: &System, program: &Program, d: usize, what: &str) {
        let base = program.symbol("c_data").expect("c_data symbol");
        let golden = golden_outputs(d);
        for (i, &g) in golden.iter().enumerate() {
            let got = system.read_mem(base + (i as u32) * 8, 8).expect("c word");
            assert_eq!(got, g, "{what}: C[{}][{}] mismatch", i / d, i % d);
        }
    }

    #[test]
    fn baseline_single_cluster_matches_golden() {
        let d = 8;
        let p = baseline(d, 1, 1);
        let (system, stats) = run_shape(&p, 1, 1, d);
        check_c(&system, &p, d, "base x1/c1");
        // The kernel's whole point: operands stage L2 → TCDM over the DMA,
        // paying the modeled interconnect setup latency per segment.
        assert!(stats.dma_hop_cycles > 0, "L2-side DMA segments pay interconnect setup");
        assert!(stats.dma_beats > 0, "A+B staged via DMA");
    }

    #[test]
    fn copift_single_cluster_matches_golden() {
        let d = 8;
        let p = copift(d, 1, 1);
        let (system, stats) = run_shape(&p, 1, 1, d);
        check_c(&system, &p, d, "copift x1/c1");
        assert!(stats.fp_issued_seq > 0, "FREP sequencer engaged");
        assert!(stats.ssr_beats.iter().sum::<u64>() > 0, "SSR streams engaged");
    }

    #[test]
    fn every_grid_shape_is_bit_exact() {
        let d = 32;
        for clusters in [1usize, 2, 4] {
            for cores in [1usize, 8] {
                for (name, p) in
                    [("base", baseline(d, cores, clusters)), ("copift", copift(d, cores, clusters))]
                {
                    let (system, _) = run_shape(&p, cores, clusters, d);
                    check_c(&system, &p, d, &format!("{name} x{clusters}/c{cores}"));
                }
            }
        }
    }

    #[test]
    fn copift_beats_baseline() {
        let d = 32;
        let (_, base) = run_shape(&baseline(d, 1, 1), 1, 1, d);
        let (_, cop) = run_shape(&copift(d, 1, 1), 1, 1, d);
        assert!(
            cop.cycles * 2 < base.cycles,
            "copift ({}) should be >2x faster than baseline ({})",
            cop.cycles,
            base.cycles
        );
    }

    #[test]
    fn multi_cluster_run_distributes_the_work() {
        let d = 32;
        let clusters = 4;
        let p = copift(d, 1, clusters);
        let cfg = SystemConfig { cluster: ClusterConfig::default(), clusters };
        let mut system = System::new(cfg);
        system.load_program(&p);
        system.run().expect("4-cluster run");
        // Every cluster did real FP work (its own quarter of the rows).
        for k in 0..clusters {
            let s = system.cluster_stats(k);
            assert!(s.fp_issued_seq > 0, "cluster {k} computed");
            assert!(s.dma_beats > 0, "cluster {k} staged tiles");
        }
        check_c(&system, &p, d, "copift x4/c1");
    }

    #[test]
    fn single_core_run_engages_the_block_burst_path() {
        let d = 16;
        let p = baseline(d, 1, 1);
        let (system, _) = run_shape(&p, 1, 1, d);
        assert!(
            system.block_replayed_cycles() > 0,
            "the scalar loop nest should run on the block-compiled path"
        );
    }

    #[test]
    fn both_variants_verify_clean_on_every_grid_shape() {
        let d = 32;
        for clusters in [1usize, 2, 4] {
            for cores in [1usize, 8] {
                let cfg = SystemConfig {
                    cluster: ClusterConfig { cores, ..ClusterConfig::default() },
                    clusters,
                };
                for (name, p) in
                    [("base", baseline(d, cores, clusters)), ("copift", copift(d, cores, clusters))]
                {
                    let diags = snitch_verify::verify(&p, &cfg);
                    assert_eq!(
                        snitch_verify::error_count(&diags),
                        0,
                        "{name} x{clusters}/c{cores}: {diags:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shape_constraint_is_enforced() {
        let r = std::panic::catch_unwind(|| baseline(30, 4, 2));
        assert!(r.is_err(), "30 % 8 != 0 must panic");
    }
}
