//! The `softmax` kernel: the exponential-plus-reduction pass of a softmax
//! layer (the denominator pass dominating its cost), compiled by
//! [`copift::codegen`].
//!
//! Inputs are max-subtracted scores `x ∈ [-4, 0]`. Per element the FP
//! thread evaluates `e^x` without any integer work by range-squaring:
//!
//! ```text
//! q = x/4            (q ∈ [-1, 0])
//! t = P5(q) ≈ e^q    (degree-5 Taylor, |err| ≤ 1/720)
//! e^x = ((t)²)²      (two squarings)
//! ```
//!
//! (max relative error ≈ 1.5·10⁻² at x = -4), stores `e^x` to the output
//! stream and folds it into **two interleaved partial sums** — the
//! cross-iteration FP dependency this workload exists to stress: each
//! `fadd` chain spans `n/2` elements, and with only one instruction between
//! consecutive folds of the same chain the FPU latency stays exposed (a
//! single accumulator serializes the FREP body outright and hands the win
//! back to the baseline; four rotating sums, as in the Monte Carlo kernels,
//! would hide the latency completely). Both the exponential vector
//! (`y_out`) and the two partial denominators (`result`) are validated
//! bit-exactly.
//!
//! * **Baseline**: plain RV32G loop, 4×-unrolled, TCDM-resident.
//! * **COPIFT**: [`copift::compile`] of the same FP-only body — `x` streams
//!   through SSR 1, results push on SSR 2, and the accumulator is stored
//!   via [`KernelSpec::acc_out`]. With no integer phase, the gain comes
//!   entirely from SSR/FREP issue elision.

use copift::{compile, KernelSpec};
use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_riscv::reg::{FpReg, IntReg};

use crate::golden::input_doubles;

/// Elements per unrolled iteration (both variants).
pub const UNROLL: usize = 4;

/// Range-reduction factor: `q = x·QUARTER`.
pub const QUARTER: f64 = 0.25;
/// Taylor coefficients of `e^q`, highest order first: 1/120, 1/24, 1/6,
/// 1/2, 1, 1.
pub const EXP_TAYLOR: [f64; 6] = [1.0 / 120.0, 1.0 / 24.0, 1.0 / 6.0, 0.5, 1.0, 1.0];

/// Deterministic max-subtracted input scores for `n` elements.
#[must_use]
pub fn inputs(n: usize) -> Vec<f64> {
    input_doubles(n, -4.0, 0.0)
}

/// One element, bit-exact with the simulated instruction sequence.
#[must_use]
pub fn softmax_exp_elem(x: f64) -> f64 {
    let q = x * QUARTER;
    let mut t = q.mul_add(EXP_TAYLOR[0], EXP_TAYLOR[1]);
    for c in &EXP_TAYLOR[2..] {
        t = q.mul_add(t, *c);
    }
    let s2 = t * t;
    s2 * s2
}

/// Golden outputs: the exponential vector and the two interleaved partial
/// sums, in the exact accumulation order of the kernels (element `i` folds
/// into sum `i mod 2`).
#[must_use]
pub fn golden(n: usize) -> (Vec<u64>, Vec<u64>) {
    let mut acc = [0.0f64; 2];
    let ys: Vec<u64> = inputs(n)
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let e = softmax_exp_elem(x);
            acc[i % 2] += e;
            e.to_bits()
        })
        .collect();
    (ys, acc.iter().map(|a| a.to_bits()).collect())
}

fn x(i: u8) -> IntReg {
    IntReg::new(i)
}
fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// FP constants in `FS0..FS6` (f8, f9, f18..f22).
const FP_CONSTS: [f64; 7] = [
    QUARTER,
    EXP_TAYLOR[0],
    EXP_TAYLOR[1],
    EXP_TAYLOR[2],
    EXP_TAYLOR[3],
    EXP_TAYLOR[4],
    EXP_TAYLOR[5],
];

fn fp_const_regs() -> [FpReg; 7] {
    [f(8), f(9), f(18), f(19), f(20), f(21), f(22)]
}

/// The two partial-sum accumulators (`FT8`, `FT9`).
fn acc_regs() -> [FpReg; 2] {
    [f(28), f(29)]
}

/// The FP work on four elements: inputs in `f10+e`; exponentials end up in
/// `f14+e`; element `e` folds into accumulator `f28 + (e mod 2)`.
fn emit_fp_elem_groups(b: &mut ProgramBuilder) {
    // q_e = x_e·1/4
    for e in 0..4u8 {
        b.fmul_d(f(14 + e), f(10 + e), f(8));
    }
    // t_e = q_e·C5 + C4, then four more Horner steps.
    for e in 0..4u8 {
        b.fmadd_d(f(23 + e), f(14 + e), f(9), f(18));
    }
    for c in 0..4u8 {
        for e in 0..4u8 {
            b.fmadd_d(f(23 + e), f(14 + e), f(23 + e), f(19 + c));
        }
    }
    // s2_e = t_e², e_e = s2_e²
    for e in 0..4u8 {
        b.fmul_d(f(10 + e), f(23 + e), f(23 + e));
    }
    for e in 0..4u8 {
        b.fmul_d(f(14 + e), f(10 + e), f(10 + e));
    }
}

fn emit_tail(b: &mut ProgramBuilder) {
    // Store e_e and fold it, in element order. Interleaving the stores
    // between the folds leaves exactly one instruction of slack inside each
    // partial-sum chain: the dependency under test stays on the critical
    // path without fully serializing the body.
    for e in 0..4u8 {
        b.fsd(f(14 + e), x(15), 8 * i32::from(e));
        b.fadd_d(f(28 + e % 2), f(28 + e % 2), f(14 + e));
    }
}

/// Builds the RV32G baseline program.
///
/// # Panics
///
/// Panics unless `n` is a positive multiple of 4 (`block` is ignored).
#[must_use]
pub fn baseline(n: usize) -> Program {
    assert!(n > 0 && n.is_multiple_of(UNROLL), "n must be a positive multiple of 4");
    let mut b = ProgramBuilder::new();
    let result = b.tcdm_reserve("result", 2 * 8, 8);
    let xs = b.tcdm_f64("x_in", &inputs(n));
    let ys = b.tcdm_reserve("y_out", n * 8, 8);
    let caddr = b.tcdm_f64("softmax_consts", &FP_CONSTS);
    b.li_u(x(30), caddr);
    for (i, reg) in fp_const_regs().into_iter().enumerate() {
        b.fld(reg, x(30), (i * 8) as i32);
    }
    for reg in acc_regs() {
        b.fcvt_d_w(reg, IntReg::ZERO); // partial sums = 0
    }
    b.li_u(x(13), xs);
    b.li_u(x(15), ys);
    b.li(x(14), (n / UNROLL) as i32);

    b.label("loop");
    for e in 0..4u8 {
        b.fld(f(10 + e), x(13), 8 * i32::from(e));
    }
    emit_fp_elem_groups(&mut b);
    emit_tail(&mut b);
    b.addi(x(13), x(13), 32);
    b.addi(x(15), x(15), 32);
    b.addi(x(14), x(14), -1);
    b.bnez(x(14), "loop");
    b.fpu_fence();
    b.li_u(x(30), result);
    for (i, reg) in acc_regs().into_iter().enumerate() {
        b.fsd(reg, x(30), (i * 8) as i32);
    }
    b.fpu_fence();
    b.ecall();
    b.build().expect("softmax baseline assembles")
}

/// Builds the COPIFT program via the automatic code generator.
///
/// # Panics
///
/// Panics unless `block` is a multiple of 4 dividing `n` with at least two
/// blocks.
#[must_use]
pub fn copift(n: usize, block: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for e in 0..4u8 {
        b.fld(f(10 + e), x(13), 8 * i32::from(e));
    }
    emit_fp_elem_groups(&mut b);
    emit_tail(&mut b);
    b.addi(x(13), x(13), 32);
    b.addi(x(15), x(15), 32);
    let body = b.build().expect("softmax body assembles").text().to_vec();

    let spec = KernelSpec {
        body,
        elems_per_iter: UNROLL,
        int_init: vec![],
        fp_init: fp_const_regs()
            .into_iter()
            .zip(FP_CONSTS)
            .chain(acc_regs().into_iter().map(|r| (r, 0.0)))
            .collect(),
        input: Some((x(13), inputs(n))),
        output: Some(x(15)),
        acc_out: acc_regs().to_vec(),
    };
    compile(&spec, n, block).expect("softmax body fits the FP-only codegen shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximates_exp_on_the_score_range() {
        for i in 0..=100 {
            let x = -4.0 * f64::from(i) / 100.0;
            let got = softmax_exp_elem(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 0.02, "exp({x}) = {got}, want {want} (rel {rel})");
        }
    }

    #[test]
    fn both_variants_validate_bit_exactly() {
        use crate::registry::{Kernel, Variant};
        for variant in Variant::all() {
            let r = Kernel::Softmax.run(variant, 128, 32).expect("validates");
            assert!(r.total_cycles > 0);
        }
    }

    #[test]
    fn golden_sums_accumulate_the_outputs() {
        let (ys, sums) = golden(64);
        let mut acc = [0.0f64; 2];
        for (i, bits) in ys.iter().enumerate() {
            acc[i % 2] += f64::from_bits(*bits);
        }
        assert_eq!(acc[0].to_bits(), sums[0]);
        assert_eq!(acc[1].to_bits(), sums[1]);
        // The two partial sums together are the softmax denominator.
        let denom = acc[0] + acc[1];
        assert!(denom > 0.0 && denom < 64.0);
    }
}
