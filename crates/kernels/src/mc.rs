//! The four hit-and-miss Monte Carlo kernels (`{poly,pi}_{lcg,xoshiro128p}`).
//!
//! Structure (both variants work in batches of 8 points = 16 draws from four
//! interleaved PRNG streams, matching [`crate::golden::gen_points`]):
//!
//! * **Baseline (RV32G)**: single instruction stream; draws feed
//!   `fcvt.d.wu` (a Type 3 crossing), coordinates are scaled into [0,1) as
//!   glibc-style code would, `flt.d` writes the hit flag to the *integer*
//!   RF (the second Type 3 crossing) and an integer add accumulates.
//! * **COPIFT**: the integer thread generates draws and spills them to a
//!   double-buffered block of 64-bit slots (`sw` low + `sw` zero high — the
//!   SSRs stream 64-bit elements); the FP thread runs under FREP, converting
//!   with `copift.fcvt.d.wu`, comparing with `copift.flt.d` against
//!   power-of-two-rescaled bounds (bit-identical hits, see
//!   [`crate::golden::hit_raw`]) and accumulating in four rotating FP
//!   registers. SSR 0 streams the draws; reconfiguring it at each block
//!   boundary doubles as the pipeline synchronization.

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_riscv::reg::{FpReg, IntReg};

use crate::golden::{
    lcg_states_after, scaled_poly_coeffs, xoshiro_states_after, Integrand, Rng, INV_2_32, LCG_A,
    LCG_C, POLY_C,
};

/// Points per batch (16 draws).
pub const BATCH_POINTS: usize = 8;

fn x(i: u8) -> IntReg {
    IntReg::new(i)
}
fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// Emits the 16 draws of one batch. `sink` receives `(draw_index, value_reg)`
/// right after each 4-draw group so values are consumed before the stream's
/// next draw overwrites the register.
///
/// Register map: LCG states in `x5..x8`; xoshiro states in `x5..x20`
/// (stream-major), results in `x21..x24`, scratch `x25`.
/// LCG constants A, C in `x26`, `x27`.
fn emit_draw_batch(
    b: &mut ProgramBuilder,
    rng: Rng,
    mut sink: impl FnMut(&mut ProgramBuilder, usize, IntReg),
) {
    for k in 0..4 {
        match rng {
            Rng::Lcg => {
                // muls first, adds second: the adds collide with the mul
                // write-backs on the single RF port (the paper's hazard).
                for s in 0..4u8 {
                    b.mul(x(5 + s), x(5 + s), x(26));
                }
                for s in 0..4u8 {
                    b.add(x(5 + s), x(5 + s), x(27));
                }
                for s in 0..4u8 {
                    sink(b, k * 4 + s as usize, x(5 + s));
                }
            }
            Rng::Xoshiro128p => {
                for s in 0..4u8 {
                    let st = |w: u8| x(5 + 4 * s + w);
                    let r = x(21 + s);
                    let tmp = x(25);
                    b.add(r, st(0), st(3));
                    b.slli(tmp, st(1), 9);
                    b.xor(st(2), st(2), st(0));
                    b.xor(st(3), st(3), st(1));
                    b.xor(st(1), st(1), st(2));
                    b.xor(st(0), st(0), st(3));
                    b.xor(st(2), st(2), tmp);
                    b.slli(tmp, st(3), 11);
                    b.srli(st(3), st(3), 21);
                    b.or(st(3), st(3), tmp);
                }
                for s in 0..4u8 {
                    sink(b, k * 4 + s as usize, x(21 + s));
                }
            }
        }
    }
}

/// Point index and coordinate of draw `d` within a batch
/// (the k-major mapping of [`crate::golden::gen_points`]).
fn draw_slot(d: usize) -> (usize, bool) {
    let k = d / 4;
    let s = d % 4;
    match k {
        0 => (s, false),
        1 => (s, true),
        2 => (4 + s, false),
        _ => (4 + s, true),
    }
}

/// Initializes RNG state registers to match the golden seeds.
fn emit_rng_setup(b: &mut ProgramBuilder, rng: Rng) {
    match rng {
        Rng::Lcg => {
            for (s, seed) in crate::golden::lcg_seeds().iter().enumerate() {
                b.li_u(x(5 + s as u8), *seed);
            }
            b.li_u(x(26), LCG_A);
            b.li_u(x(27), LCG_C);
        }
        Rng::Xoshiro128p => {
            for s in 0..4u8 {
                let st = crate::golden::Xoshiro128p::seeded(u32::from(s));
                for w in 0..4u8 {
                    b.li_u(x(5 + 4 * s + w), st.s[w as usize]);
                }
            }
        }
    }
}

/// Builds the RV32G baseline program for `n` points.
///
/// # Panics
///
/// Panics unless `n` is a positive multiple of 8.
#[must_use]
pub fn baseline(integrand: Integrand, rng: Rng, n: usize) -> Program {
    assert!(n > 0 && n.is_multiple_of(BATCH_POINTS), "n must be a positive multiple of 8");
    let mut b = ProgramBuilder::new();
    let result = b.tcdm_reserve("result", 8, 8);
    // FP constants live in TCDM and are loaded once.
    let consts: Vec<f64> = match integrand {
        Integrand::Pi => vec![INV_2_32, 1.0],
        Integrand::Poly => {
            let mut v = vec![INV_2_32];
            v.extend_from_slice(&POLY_C);
            v
        }
    };
    let caddr = b.tcdm_f64("consts", &consts);

    emit_rng_setup(&mut b, rng);
    b.li_u(x(28), caddr);
    // Constants: f26 = 2^-32; Pi: f16 = 1.0; Poly: f20..f25 = c5..c0.
    b.fld(f(26), x(28), 0);
    match integrand {
        Integrand::Pi => b.fld(f(16), x(28), 8),
        Integrand::Poly => {
            for i in 0..6u8 {
                b.fld(f(20 + i), x(28), 8 + 8 * i32::from(i));
            }
        }
    }
    b.li(x(29), (n / BATCH_POINTS) as i32); // batch counter
    b.li(x(31), 0); // integer hit accumulator

    b.label("batch");
    // Draws + conversions + scaling: x in f0..f7, y in f8..f15.
    emit_draw_batch(&mut b, rng, |b, d, reg| {
        let (p, is_y) = draw_slot(d);
        let dst = f(if is_y { 8 } else { 0 } + p as u8);
        b.fcvt_d_wu(dst, reg);
        b.fmul_d(dst, dst, f(26));
    });
    match integrand {
        Integrand::Pi => {
            for p in 0..8u8 {
                b.fmul_d(f(p), f(p), f(p)); // x²
            }
            for p in 0..8u8 {
                b.fmadd_d(f(8 + p), f(8 + p), f(8 + p), f(p)); // y² + x²
            }
            // flt in two groups of 4 with immediate accumulation.
            for g in 0..2u8 {
                for i in 0..4u8 {
                    b.flt_d(x(21 + i), f(8 + 4 * g + i), f(16));
                }
                for i in 0..4u8 {
                    b.add(x(31), x(31), x(21 + i));
                }
            }
        }
        Integrand::Poly => {
            // Horner ×8, coefficient-level-major so the eight point chains
            // interleave (distance 8 ≥ FPU latency). Temps in
            // f16..f19, f27..f30.
            let t = |p: u8| if p < 4 { f(16 + p) } else { f(23 + p) };
            for p in 0..8u8 {
                b.fmadd_d(t(p), f(20), f(p), f(21)); // c5·x + c4
            }
            for c in 0..4u8 {
                for p in 0..8u8 {
                    b.fmadd_d(t(p), t(p), f(p), f(22 + c));
                }
            }
            for g in 0..2u8 {
                for i in 0..4u8 {
                    b.flt_d(x(21 + i), f(8 + 4 * g + i), t(4 * g + i));
                }
                for i in 0..4u8 {
                    b.add(x(31), x(31), x(21 + i));
                }
            }
        }
    }
    b.addi(x(29), x(29), -1);
    b.bnez(x(29), "batch");
    b.li_u(x(30), result);
    b.sw(x(31), x(30), 0);
    b.ecall();
    b.build().expect("mc baseline assembles")
}

/// Emits the COPIFT FREP body for one batch: two 4-point sub-bodies.
/// Register map: x `f3..f6`, y `f7..f10`, poly temps `f11..f14`,
/// accumulators `f15..f18`, constants from `f20`.
fn emit_copift_fp_body(b: &mut ProgramBuilder, integrand: Integrand) -> u8 {
    let start = b.len();
    for _sub in 0..2 {
        for p in 0..4u8 {
            b.copift_fcvt_d_wu(f(3 + p), f(0)); // pop x from SSR0
        }
        for p in 0..4u8 {
            b.copift_fcvt_d_wu(f(7 + p), f(0)); // pop y
        }
        match integrand {
            Integrand::Pi => {
                for p in 0..4u8 {
                    b.fmul_d(f(3 + p), f(3 + p), f(3 + p));
                }
                for p in 0..4u8 {
                    b.fmadd_d(f(7 + p), f(7 + p), f(7 + p), f(3 + p));
                }
                for p in 0..4u8 {
                    b.copift_flt_d(f(3 + p), f(7 + p), f(20)); // < 2^64
                }
            }
            Integrand::Poly => {
                for p in 0..4u8 {
                    b.fmadd_d(f(11 + p), f(20), f(3 + p), f(21));
                }
                for c in 0..4u8 {
                    for p in 0..4u8 {
                        b.fmadd_d(f(11 + p), f(11 + p), f(3 + p), f(22 + c));
                    }
                }
                for p in 0..4u8 {
                    b.copift_flt_d(f(3 + p), f(7 + p), f(11 + p));
                }
            }
        }
        for p in 0..4u8 {
            b.copift_fcvt_d_w(f(3 + p), f(3 + p));
        }
        for p in 0..4u8 {
            b.fadd_d(f(15 + p), f(15 + p), f(3 + p));
        }
    }
    u8::try_from(b.len() - start).expect("frep body fits u8")
}

/// Emits the integer generation of one block (`points` points) into the
/// buffer at register `buf`, as a loop over batches. Uses `x30` as inner
/// counter and `x28` as running pointer.
fn emit_copift_gen_block(b: &mut ProgramBuilder, rng: Rng, points: usize, buf: IntReg, tag: &str) {
    b.mv(x(28), buf);
    b.li(x(30), (points / BATCH_POINTS) as i32);
    b.label(tag);
    emit_draw_batch(b, rng, |b, d, reg| {
        // Buffer layout matches the FP body's pop order — two 4-point
        // sub-batches of [x0..x3 | y0..y3 | x4..x7 | y4..y7] — which is
        // exactly draw order: offset = draw_index · 8.
        let off = (d * 8) as i32;
        b.sw(reg, x(28), off);
        b.sw(IntReg::ZERO, x(28), off + 4); // zero high word: 64-bit slots
    });
    b.addi(x(28), x(28), 128);
    b.addi(x(30), x(30), -1);
    b.bnez(x(30), tag);
}

/// Builds the COPIFT-accelerated program for `n` points with block size
/// `block` points.
///
/// # Panics
///
/// Panics unless `n` and `block` are multiples of 8, `block` divides `n`,
/// and at least two blocks exist.
#[must_use]
pub fn copift(integrand: Integrand, rng: Rng, n: usize, block: usize) -> Program {
    assert!(block.is_multiple_of(BATCH_POINTS) && block > 0, "block must be a multiple of 8");
    assert!(n.is_multiple_of(block) && n / block >= 2, "need at least two blocks");
    let nb = n / block;
    let mut b = ProgramBuilder::new();
    let result = b.tcdm_reserve("result", 8, 8);
    let consts: Vec<f64> = match integrand {
        Integrand::Pi => vec![18_446_744_073_709_551_616.0], // 2^64
        Integrand::Poly => scaled_poly_coeffs().to_vec(),
    };
    let caddr = b.tcdm_f64("consts", &consts);
    let buf0 = b.tcdm_reserve("rnd0", block * 16, 8); // 2 draws/point × 8 B
    let buf1 = b.tcdm_reserve("rnd1", block * 16, 8);

    emit_rng_setup(&mut b, rng);
    b.li_u(x(28), caddr);
    match integrand {
        Integrand::Pi => b.fld(f(20), x(28), 0),
        Integrand::Poly => {
            for i in 0..6u8 {
                b.fld(f(20 + i), x(28), 8 * i32::from(i));
            }
        }
    }
    // Zero the accumulators.
    for p in 0..4u8 {
        b.fcvt_d_w(f(15 + p), IntReg::ZERO);
    }
    // SSR0: 1-D read stream of 2·block 64-bit elements (fixed shape).
    use snitch_riscv::csr::SsrCfgWord;
    b.li(x(29), 0);
    b.scfgwi(x(29), 0, SsrCfgWord::Status); // read, 1-D, 8-byte
    b.scfgwi(x(29), 0, SsrCfgWord::Repeat);
    b.li(x(29), (2 * block - 1) as i32);
    b.scfgwi(x(29), 0, SsrCfgWord::Bound(0));
    b.li(x(29), 8);
    b.scfgwi(x(29), 0, SsrCfgWord::Stride(0));
    b.ssr_enable();

    // Control registers live in ra/sp/gp/tp, which are free in these
    // bare-metal programs (xoshiro's 16 state words occupy x5..x20).
    let rep = x(1); // FREP repetitions per block (body covers 8 points)
    b.li(rep, (block / BATCH_POINTS - 1) as i32);
    let cur = x(2); // buffer being consumed by the FP thread
    let nxt = x(3); // buffer being filled by the integer thread
    b.li_u(cur, buf0);
    b.li_u(nxt, buf1);

    // Prologue: generate block 0.
    emit_copift_gen_block(&mut b, rng, block, cur, "prologue");

    // Steady loop: iteration j consumes block j-1 and generates block j.
    let outer = x(4);
    b.li(outer, (nb - 1) as i32);
    // `body`/`spill`/`reduce` (with `prologue` above) are the standard
    // COPIFT region labels the profiler's region map resolves.
    b.label("body");
    b.label("outer");
    b.scfgwi(cur, 0, SsrCfgWord::Base); // arms SSR0; stalls on prior stream
    b.frep_o(rep, body_len(integrand), 0, 0);
    let emitted = emit_copift_fp_body(&mut b, integrand);
    debug_assert_eq!(emitted, body_len(integrand));
    emit_copift_gen_block(&mut b, rng, block, nxt, "spill");
    // Swap buffers.
    b.mv(x(31), cur);
    b.mv(cur, nxt);
    b.mv(nxt, x(31));
    b.addi(outer, outer, -1);
    b.bnez(outer, "outer");
    b.label("reduce");

    // Epilogue: consume the final block, reduce, store.
    b.scfgwi(cur, 0, SsrCfgWord::Base);
    b.frep_o(rep, body_len(integrand), 0, 0);
    let emitted = emit_copift_fp_body(&mut b, integrand);
    debug_assert_eq!(emitted, body_len(integrand));
    b.fpu_fence();
    b.ssr_disable();
    b.fadd_d(f(3), f(15), f(16));
    b.fadd_d(f(4), f(17), f(18));
    b.fadd_d(f(3), f(3), f(4));
    b.li_u(x(28), result);
    b.fsd(f(3), x(28), 0);
    b.fpu_fence();
    b.ecall();
    b.build().expect("mc copift assembles")
}

// ------------------------------------------------------- data-parallel SPMD

/// Maximum cluster size of the data-parallel variants (the paper's cluster
/// has 8 compute cores; the tree reduction loads one partial per hart into
/// `f4..f11`).
pub const MAX_CORES: usize = 8;

/// Per-hart RNG seed table: hart `h` starts each of its four streams at the
/// state the *global* draw sequence has after `h · batches_per_hart`
/// batches, so the union of all harts' points is exactly the single-core
/// point set.
fn par_seed_table(rng: Rng, cores: usize, batches_per_hart: usize) -> Vec<u32> {
    let mut table = Vec::with_capacity(cores * if rng == Rng::Lcg { 4 } else { 16 });
    for h in 0..cores {
        match rng {
            Rng::Lcg => table.extend_from_slice(&lcg_states_after(h * batches_per_hart)),
            Rng::Xoshiro128p => {
                for g in xoshiro_states_after(h * batches_per_hart) {
                    table.extend_from_slice(&g.s);
                }
            }
        }
    }
    table
}

/// Emits the per-hart RNG state setup: loads this hart's stream states from
/// the seed table into the registers [`emit_draw_batch`] expects. Expects
/// the hart id in `x28`; clobbers `x29`/`x30` (and sets the LCG constants).
fn emit_par_rng_setup(b: &mut ProgramBuilder, rng: Rng, seeds: u32) {
    // Per-hart stride: 16 B (LCG: 4 states) or 64 B (xoshiro: 16 words).
    let (shift, words) = match rng {
        Rng::Lcg => (4, 4u8),
        Rng::Xoshiro128p => (6, 16),
    };
    b.slli(x(29), x(28), shift);
    b.li_u(x(30), seeds);
    b.add(x(29), x(29), x(30));
    for w in 0..words {
        b.lw(x(5 + w), x(29), 4 * i32::from(w));
    }
    if rng == Rng::Lcg {
        b.li_u(x(26), LCG_A);
        b.li_u(x(27), LCG_C);
    }
}

/// Asserts the size constraints shared by both data-parallel variants and
/// returns the per-hart point count.
fn par_points_per_hart(n: usize, cores: usize) -> usize {
    assert!((1..=MAX_CORES).contains(&cores), "cores must be in 1..={MAX_CORES}");
    assert!(n.is_multiple_of(cores), "n must split evenly over {cores} harts");
    let pph = n / cores;
    assert!(
        pph > 0 && pph.is_multiple_of(BATCH_POINTS),
        "per-hart share must be a positive multiple of 8"
    );
    pph
}

/// Builds the data-parallel RV32G baseline: every hart runs the single-core
/// baseline loop over its `n / cores` chunk (seeded mid-stream from the
/// seed table), stores its integer hit count, meets at the hardware
/// barrier, and hart 0 sums the per-hart counts into `result`. The
/// aggregate equals the single-core count exactly.
///
/// # Panics
///
/// Panics unless `cores ∈ 1..=8` and `n / cores` is a positive multiple
/// of 8.
#[must_use]
pub fn baseline_par(integrand: Integrand, rng: Rng, n: usize, cores: usize) -> Program {
    let pph = par_points_per_hart(n, cores);
    let mut b = ProgramBuilder::new();
    b.parallel();
    let result = b.tcdm_reserve("result", 8, 8);
    let partials = b.tcdm_reserve("partials", cores * 4, 4);
    let consts: Vec<f64> = match integrand {
        Integrand::Pi => vec![INV_2_32, 1.0],
        Integrand::Poly => {
            let mut v = vec![INV_2_32];
            v.extend_from_slice(&POLY_C);
            v
        }
    };
    let caddr = b.tcdm_f64("consts", &consts);
    let seeds = b.tcdm_u32("seeds", &par_seed_table(rng, cores, pph / BATCH_POINTS));

    // Hart-local RNG state, then the FP constants (x28 is scratch by then).
    b.csrr_mhartid(x(28));
    emit_par_rng_setup(&mut b, rng, seeds);
    b.li_u(x(28), caddr);
    b.fld(f(26), x(28), 0);
    match integrand {
        Integrand::Pi => b.fld(f(16), x(28), 8),
        Integrand::Poly => {
            for i in 0..6u8 {
                b.fld(f(20 + i), x(28), 8 + 8 * i32::from(i));
            }
        }
    }
    b.li(x(29), (pph / BATCH_POINTS) as i32);
    b.li(x(31), 0);

    // Identical batch body to the single-core baseline.
    b.label("batch");
    emit_draw_batch(&mut b, rng, |b, d, reg| {
        let (p, is_y) = draw_slot(d);
        let dst = f(if is_y { 8 } else { 0 } + p as u8);
        b.fcvt_d_wu(dst, reg);
        b.fmul_d(dst, dst, f(26));
    });
    match integrand {
        Integrand::Pi => {
            for p in 0..8u8 {
                b.fmul_d(f(p), f(p), f(p));
            }
            for p in 0..8u8 {
                b.fmadd_d(f(8 + p), f(8 + p), f(8 + p), f(p));
            }
            for g in 0..2u8 {
                for i in 0..4u8 {
                    b.flt_d(x(21 + i), f(8 + 4 * g + i), f(16));
                }
                for i in 0..4u8 {
                    b.add(x(31), x(31), x(21 + i));
                }
            }
        }
        Integrand::Poly => {
            let t = |p: u8| if p < 4 { f(16 + p) } else { f(23 + p) };
            for p in 0..8u8 {
                b.fmadd_d(t(p), f(20), f(p), f(21));
            }
            for c in 0..4u8 {
                for p in 0..8u8 {
                    b.fmadd_d(t(p), t(p), f(p), f(22 + c));
                }
            }
            for g in 0..2u8 {
                for i in 0..4u8 {
                    b.flt_d(x(21 + i), f(8 + 4 * g + i), t(4 * g + i));
                }
                for i in 0..4u8 {
                    b.add(x(31), x(31), x(21 + i));
                }
            }
        }
    }
    b.addi(x(29), x(29), -1);
    b.bnez(x(29), "batch");

    // Publish the hart's count, synchronize, and let hart 0 aggregate.
    b.csrr_mhartid(x(25));
    b.slli(x(26), x(25), 2);
    b.li_u(x(30), partials);
    b.add(x(30), x(30), x(26));
    b.sw(x(31), x(30), 0);
    b.barrier();
    b.bnez(x(25), "done");
    b.li_u(x(30), partials);
    b.li(x(31), 0);
    for h in 0..cores {
        b.lw(x(26), x(30), (4 * h) as i32);
        b.add(x(31), x(31), x(26));
    }
    b.li_u(x(30), result);
    b.sw(x(31), x(30), 0);
    b.label("done");
    b.ecall();
    b.build().expect("mc parallel baseline assembles")
}

/// Builds the data-parallel COPIFT program: every hart runs the
/// double-buffered single-core COPIFT pipeline over its `n / cores` chunk
/// with per-hart TCDM buffers and mid-stream seeds, reduces its four
/// rotating accumulators to one partial, stores it to the `partials` table,
/// meets at the hardware barrier, and hart 0 tree-reduces the partials in
/// TCDM into `result`. All partials are integer-valued doubles, so the
/// aggregate is bit-exact equal to the single-core golden hit count.
///
/// # Panics
///
/// Panics unless `cores ∈ 1..=8`, `block` is a positive multiple of 8, and
/// each hart's `n / cores` share consists of at least two whole blocks.
#[must_use]
pub fn copift_par(integrand: Integrand, rng: Rng, n: usize, block: usize, cores: usize) -> Program {
    assert!(block.is_multiple_of(BATCH_POINTS) && block > 0, "block must be a multiple of 8");
    let pph = par_points_per_hart(n, cores);
    assert!(pph.is_multiple_of(block) && pph / block >= 2, "need at least two blocks per hart");
    let nb = pph / block;
    let mut b = ProgramBuilder::new();
    b.parallel();
    let result = b.tcdm_reserve("result", 8, 8);
    let partials = b.tcdm_reserve("partials", cores * 8, 8);
    let consts: Vec<f64> = match integrand {
        Integrand::Pi => vec![18_446_744_073_709_551_616.0], // 2^64
        Integrand::Poly => scaled_poly_coeffs().to_vec(),
    };
    let caddr = b.tcdm_f64("consts", &consts);
    let seeds = b.tcdm_u32("seeds", &par_seed_table(rng, cores, pph / BATCH_POINTS));
    // Per-hart double buffers, hart-major: hart h owns
    // [h·block·16, (h+1)·block·16) of each arena.
    let buf0 = b.tcdm_reserve("rnd0", cores * block * 16, 8);
    let buf1 = b.tcdm_reserve("rnd1", cores * block * 16, 8);

    // --- per-hart setup (hart id in x28 until the buffers are derived) ---
    b.csrr_mhartid(x(28));
    emit_par_rng_setup(&mut b, rng, seeds);
    let cur = x(2);
    let nxt = x(3);
    b.li(x(30), (block * 16) as i32);
    b.mul(x(30), x(30), x(28));
    b.li_u(cur, buf0);
    b.add(cur, cur, x(30));
    b.li_u(nxt, buf1);
    b.add(nxt, nxt, x(30));

    b.li_u(x(28), caddr);
    match integrand {
        Integrand::Pi => b.fld(f(20), x(28), 0),
        Integrand::Poly => {
            for i in 0..6u8 {
                b.fld(f(20 + i), x(28), 8 * i32::from(i));
            }
        }
    }
    for p in 0..4u8 {
        b.fcvt_d_w(f(15 + p), IntReg::ZERO);
    }
    // SSR0: 1-D read stream of 2·block 64-bit elements (fixed shape; each
    // hart programs its own streamer).
    use snitch_riscv::csr::SsrCfgWord;
    b.li(x(29), 0);
    b.scfgwi(x(29), 0, SsrCfgWord::Status);
    b.scfgwi(x(29), 0, SsrCfgWord::Repeat);
    b.li(x(29), (2 * block - 1) as i32);
    b.scfgwi(x(29), 0, SsrCfgWord::Bound(0));
    b.li(x(29), 8);
    b.scfgwi(x(29), 0, SsrCfgWord::Stride(0));
    b.ssr_enable();

    let rep = x(1);
    b.li(rep, (block / BATCH_POINTS - 1) as i32);

    // Prologue: generate block 0.
    emit_copift_gen_block(&mut b, rng, block, cur, "prologue");

    // Steady loop: iteration j consumes block j-1 and generates block j.
    let outer = x(4);
    b.li(outer, (nb - 1) as i32);
    // `body`/`spill`/`reduce` (with `prologue` above) are the standard
    // COPIFT region labels the profiler's region map resolves.
    b.label("body");
    b.label("outer");
    b.scfgwi(cur, 0, SsrCfgWord::Base);
    b.frep_o(rep, body_len(integrand), 0, 0);
    let emitted = emit_copift_fp_body(&mut b, integrand);
    debug_assert_eq!(emitted, body_len(integrand));
    emit_copift_gen_block(&mut b, rng, block, nxt, "spill");
    b.mv(x(31), cur);
    b.mv(cur, nxt);
    b.mv(nxt, x(31));
    b.addi(outer, outer, -1);
    b.bnez(outer, "outer");
    b.label("reduce");

    // Epilogue: consume the final block, reduce to this hart's partial.
    b.scfgwi(cur, 0, SsrCfgWord::Base);
    b.frep_o(rep, body_len(integrand), 0, 0);
    let emitted = emit_copift_fp_body(&mut b, integrand);
    debug_assert_eq!(emitted, body_len(integrand));
    b.fpu_fence();
    b.ssr_disable();
    b.fadd_d(f(3), f(15), f(16));
    b.fadd_d(f(4), f(17), f(18));
    b.fadd_d(f(3), f(3), f(4));
    // Publish the partial; the fence commits the store before the barrier.
    b.csrr_mhartid(x(28));
    b.slli(x(29), x(28), 3);
    b.li_u(x(30), partials);
    b.add(x(30), x(30), x(29));
    b.fsd(f(3), x(30), 0);
    b.fpu_fence();
    b.barrier();
    b.bnez(x(28), "done");

    // Hart 0: tree reduction over the TCDM partials table.
    b.li_u(x(30), partials);
    let mut vals: Vec<FpReg> = (0..cores).map(|h| f(4 + h as u8)).collect();
    for (h, &reg) in vals.iter().enumerate() {
        b.fld(reg, x(30), (8 * h) as i32);
    }
    while vals.len() > 1 {
        let mut next = Vec::with_capacity(vals.len().div_ceil(2));
        for pair in vals.chunks(2) {
            if let [a, c] = *pair {
                b.fadd_d(a, a, c);
            }
            next.push(pair[0]);
        }
        vals = next;
    }
    b.li_u(x(28), result);
    b.fsd(vals[0], x(28), 0);
    b.fpu_fence();
    b.label("done");
    b.ecall();
    b.build().expect("mc parallel copift assembles")
}

/// FREP body length per batch: 7 (Pi) or 10 (Poly) FP ops per point × 8.
#[must_use]
pub fn body_len(integrand: Integrand) -> u8 {
    match integrand {
        Integrand::Pi => 56,
        Integrand::Poly => 80,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_counts_match_paper_shape() {
        let p = baseline(Integrand::Pi, Rng::Lcg, 8);
        let mix = copift::MixCounts::of(p.text());
        // Per batch + setup; the FP count is dominated by 7 ops/point.
        assert!(mix.n_fp >= 56, "pi needs ≥ 7 FP ops per point, got {}", mix.n_fp);
        let p = baseline(Integrand::Poly, Rng::Xoshiro128p, 8);
        let mix = copift::MixCounts::of(p.text());
        assert!(mix.n_fp >= 80);
        assert!(mix.n_int >= 160);
    }

    #[test]
    fn draw_slot_mapping_is_k_major() {
        assert_eq!(draw_slot(0), (0, false));
        assert_eq!(draw_slot(3), (3, false));
        assert_eq!(draw_slot(4), (0, true));
        assert_eq!(draw_slot(8), (4, false));
        assert_eq!(draw_slot(15), (7, true));
    }
}
