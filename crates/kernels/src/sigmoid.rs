//! The `sigmoid` kernel: a polynomial logistic function over on-the-fly
//! LCG-generated inputs — the first workload *compiled* by
//! [`copift::codegen`] rather than hand-scheduled.
//!
//! Per element, the integer thread draws `u` from a 32-bit LCG; the FP
//! thread converts the raw draw (`fcvt.d.wu`, the Type 3 crossing that
//! becomes `copift.fcvt.d.wu` under COPIFT), maps it to `x ∈ [-2, 2)` and
//! evaluates the odd Taylor polynomial of the logistic function
//!
//! ```text
//! σ̃(x) = 1/2 + x·(C1 + x²·(C3 + x²·C5)),   C1 = 1/4, C3 = -1/48, C5 = 1/480
//! ```
//!
//! (max error ≈ 2·10⁻² on the generated range). Both variants process four
//! independent elements per unrolled iteration so the per-element FMA chains
//! interleave past the FPU latency.
//!
//! * **Baseline**: one mixed RV32G loop — serial draws (mul/add write-back
//!   hazard), `fcvt.d.wu` crossings, interleaved polynomial, `fsd` per
//!   element.
//! * **COPIFT**: [`copift::compile`] of the same four-element body — the
//!   integer thread spills draws per block, the FP thread pops them through
//!   SSR 0 under FREP and pushes results on SSR 2.

use copift::{compile, KernelSpec};
use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_riscv::reg::{FpReg, IntReg};

use crate::golden::{lcg_next, INV_2_32, LCG_A, LCG_C, SEED0, SEED_GAMMA};

/// Elements per unrolled iteration (both variants).
pub const UNROLL: usize = 4;

/// Draw-to-input scaling: maps `[0, 2³²)` onto `[-2, 2)`.
pub const SCALE: f64 = 4.0 * INV_2_32;
/// Lower bound of the input range.
pub const LO: f64 = -2.0;
/// Odd polynomial coefficients `(C1, C3, C5)` of the logistic Taylor series.
pub const SIG_C: [f64; 3] = [0.25, -1.0 / 48.0, 1.0 / 480.0];

/// LCG stream seed (decorrelated from the Monte Carlo streams).
#[must_use]
pub fn seed() -> u32 {
    SEED0.wrapping_add(SEED_GAMMA.wrapping_mul(5))
}

/// One element, bit-exact with the simulated instruction sequence.
#[must_use]
pub fn sigmoid_elem(draw: u32) -> f64 {
    let u = f64::from(draw);
    let x = u.mul_add(SCALE, LO);
    let x2 = x * x;
    let t = x2.mul_add(SIG_C[2], SIG_C[1]);
    let t = x2.mul_add(t, SIG_C[0]);
    x.mul_add(t, 0.5)
}

/// Golden outputs (f64 bits) for `n` elements.
#[must_use]
pub fn golden_outputs(n: usize) -> Vec<u64> {
    let mut s = seed();
    (0..n).map(|_| sigmoid_elem(lcg_next(&mut s)).to_bits()).collect()
}

fn x(i: u8) -> IntReg {
    IntReg::new(i)
}
fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// The shared four-element loop body. `copift_form` keeps only what the
/// code generator needs (the baseline adds its own loads/stores around it).
fn emit_fp_elem_groups(b: &mut ProgramBuilder) {
    // x_e = u_e·SCALE + LO  (u_e sits in FA0+e = f10+e)
    for e in 0..4u8 {
        b.fmadd_d(f(10 + e), f(10 + e), f(8), f(9));
    }
    // x2_e = x_e²
    for e in 0..4u8 {
        b.fmul_d(f(14 + e), f(10 + e), f(10 + e));
    }
    // t_e = x2_e·C5 + C3
    for e in 0..4u8 {
        b.fmadd_d(f(22 + e), f(14 + e), f(18), f(19));
    }
    // t_e = x2_e·t_e + C1
    for e in 0..4u8 {
        b.fmadd_d(f(22 + e), f(14 + e), f(22 + e), f(20));
    }
    // y_e = x_e·t_e + 1/2
    for e in 0..4u8 {
        b.fmadd_d(f(14 + e), f(10 + e), f(22 + e), f(21));
    }
}

/// FP constants in registers `FS0..FS5` (f8, f9, f18..f21).
const FP_CONSTS: [f64; 6] = [SCALE, LO, SIG_C[2], SIG_C[1], SIG_C[0], 0.5];

fn fp_const_regs() -> [FpReg; 6] {
    [f(8), f(9), f(18), f(19), f(20), f(21)]
}

/// Builds the RV32G baseline program.
///
/// # Panics
///
/// Panics unless `n` is a positive multiple of 4 (`block` is ignored — the
/// kernel has no DMA blocking).
#[must_use]
pub fn baseline(n: usize) -> Program {
    assert!(n > 0 && n.is_multiple_of(UNROLL), "n must be a positive multiple of 4");
    let mut b = ProgramBuilder::new();
    let ys = b.tcdm_reserve("y_out", n * 8, 8);
    let caddr = b.tcdm_f64("sig_consts", &FP_CONSTS);
    b.li_u(x(30), caddr);
    for (i, reg) in fp_const_regs().into_iter().enumerate() {
        b.fld(reg, x(30), (i * 8) as i32);
    }
    b.li_u(x(10), seed());
    b.li_u(x(11), LCG_A);
    b.li_u(x(12), LCG_C);
    b.li_u(x(13), ys);
    b.li(x(14), (n / UNROLL) as i32);

    b.label("loop");
    // Four serial draws (the LCG write-back-port hazard), then the crossings.
    for e in 0..4u8 {
        b.mul(x(10), x(10), x(11));
        b.add(x(10), x(10), x(12));
        b.mv(x(20 + e), x(10));
    }
    for e in 0..4u8 {
        b.fcvt_d_wu(f(10 + e), x(20 + e));
    }
    emit_fp_elem_groups(&mut b);
    for e in 0..4u8 {
        b.fsd(f(14 + e), x(13), 8 * i32::from(e));
    }
    b.addi(x(13), x(13), 32);
    b.addi(x(14), x(14), -1);
    b.bnez(x(14), "loop");
    b.fpu_fence();
    b.ecall();
    b.build().expect("sigmoid baseline assembles")
}

/// Builds the COPIFT program via the automatic code generator.
///
/// # Panics
///
/// Panics unless `block` is a multiple of 4 dividing `n` with at least two
/// blocks.
#[must_use]
pub fn copift(n: usize, block: usize) -> Program {
    // Four serial draws; each feeds one fcvt (the Int→Fp cuts).
    let mut b = ProgramBuilder::new();
    for e in 0..4u8 {
        b.mul(x(10), x(10), x(11));
        b.add(x(10), x(10), x(12));
        b.fcvt_d_wu(f(10 + e), x(10));
    }
    emit_fp_elem_groups(&mut b);
    for e in 0..4u8 {
        b.fsd(f(14 + e), x(13), 8 * i32::from(e));
    }
    b.addi(x(13), x(13), 32);
    let body = b.build().expect("sigmoid body assembles").text().to_vec();

    let spec = KernelSpec {
        body,
        elems_per_iter: UNROLL,
        int_init: vec![(x(10), seed()), (x(11), LCG_A), (x(12), LCG_C)],
        fp_init: fp_const_regs().into_iter().zip(FP_CONSTS).collect(),
        input: None,
        output: Some(x(13)),
        acc_out: vec![],
    };
    compile(&spec, n, block).expect("sigmoid body fits the two-phase codegen shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximates_the_logistic_function() {
        for i in 0..100 {
            let x = -2.0 + 4.0 * f64::from(i) / 100.0;
            let draw = ((x + 2.0) / SCALE) as u32;
            let got = sigmoid_elem(draw);
            let x_actual = f64::from(draw).mul_add(SCALE, LO);
            let want = 1.0 / (1.0 + (-x_actual).exp());
            assert!((got - want).abs() < 0.05, "sigmoid({x_actual}) = {got}, want {want}");
        }
    }

    #[test]
    fn both_variants_validate_bit_exactly() {
        use crate::registry::{Kernel, Variant};
        for variant in Variant::all() {
            let r = Kernel::Sigmoid.run(variant, 128, 32).expect("validates");
            assert!(r.total_cycles > 0);
        }
    }

    #[test]
    fn golden_is_deterministic_and_bounded() {
        let a = golden_outputs(64);
        assert_eq!(a, golden_outputs(64));
        for bits in a {
            let y = f64::from_bits(bits);
            assert!((-0.1..1.1).contains(&y), "sigmoid output {y} out of range");
        }
    }
}
