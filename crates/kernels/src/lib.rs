//! The COPIFT workload catalog: the paper's six mixed integer/floating-point
//! workloads plus an auto-compiled extended suite, each as a golden Rust
//! model, an optimized RV32G baseline program and a COPIFT-accelerated
//! program, plus the run/validate harness.
//!
//! | Kernel | Domain | Module |
//! |--------|--------|--------|
//! | `exp` | vector exponential (softmax motif) | [`expf`] |
//! | `log` | vector logarithm (ISSR showcase) | [`logf`] |
//! | `poly_lcg`, `pi_lcg`, `poly_xoshiro128p`, `pi_xoshiro128p` | hit-and-miss Monte Carlo | [`mc`] |
//! | `sigmoid` | polynomial logistic over LCG inputs | [`sigmoid`] |
//! | `dot_lcg` | dot product with an LCG-generated vector | [`dot_lcg`] |
//! | `softmax` | softmax exp+reduce denominator pass | [`softmax`] |
//!
//! The first six are hand-scheduled reproductions of the paper's Figure 2
//! suite; the extended three are *compiled* from plain loop bodies by
//! [`copift::codegen`] — the paper's Steps 3–7 applied automatically.
//!
//! All simulated results are validated **bit-exactly** against the golden
//! models. [`registry`] is the open catalog the benchmarks drive: the
//! [`registry::Workload`] trait describes one workload, [`registry::Kernel`]
//! is the copyable handle grids and caches key on, and
//! [`registry::register`] adds workloads at runtime.

#![forbid(unsafe_code)]

pub mod dot_lcg;
pub mod expf;
pub mod gemm_tiled;
pub mod golden;
pub mod harness;
pub mod logf;
pub mod mc;
pub mod registry;
pub mod sigmoid;
pub mod softmax;

pub use harness::{HarnessError, RunOutcome, SteadyState};
pub use registry::{register, Kernel, RegistryError, Variant, Workload};
