//! The six mixed integer/floating-point workloads evaluated in the COPIFT
//! paper, each as a golden Rust model, an optimized RV32G baseline program
//! and a COPIFT-accelerated program, plus the run/validate harness.
//!
//! | Kernel | Domain | Module |
//! |--------|--------|--------|
//! | `expf` | vector exponential (softmax motif) | [`expf`] |
//! | `logf` | vector logarithm (ISSR showcase) | [`logf`] |
//! | `poly_lcg`, `pi_lcg`, `poly_xoshiro128p`, `pi_xoshiro128p` | hit-and-miss Monte Carlo | [`mc`] |
//!
//! All simulated results are validated **bit-exactly** against [`golden`].
//! [`registry::Kernel`] is the enumeration the benchmarks drive.

pub mod expf;
pub mod golden;
pub mod harness;
pub mod logf;
pub mod mc;
pub mod registry;

pub use harness::{HarnessError, RunOutcome, SteadyState};
pub use registry::{Kernel, Variant};
