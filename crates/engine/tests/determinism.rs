//! Golden determinism tests: a sweep's serialized output must not depend on
//! the worker count or on scheduling.

use snitch_engine::{job, sink, Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::ClusterConfig;

fn mixed_batch() -> Vec<JobSpec> {
    vec![
        JobSpec::new(Kernel::PiLcg, Variant::Baseline, 128, 0),
        JobSpec::new(Kernel::PiLcg, Variant::Copift, 128, 32),
        JobSpec::new(Kernel::Logf, Variant::Baseline, 64, 16),
        JobSpec::new(Kernel::PiXoshiro, Variant::Baseline, 64, 0)
            .with_config(ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() }),
        // Extended-suite kernels flow through the same deterministic sinks.
        JobSpec::new(Kernel::Sigmoid, Variant::Copift, 128, 32),
        JobSpec::new(Kernel::Softmax, Variant::Baseline, 64, 16),
    ]
}

#[test]
fn jsonl_is_byte_identical_across_worker_counts() {
    let jobs = mixed_batch();
    let serial = sink::to_jsonl(&Engine::new(1).run(&jobs));
    for workers in [2, 4, 8] {
        let parallel = sink::to_jsonl(&Engine::new(workers).run(&jobs));
        assert_eq!(serial, parallel, "JSON-lines output diverged at {workers} workers");
    }
    // Sanity on the content itself.
    assert_eq!(serial.lines().count(), 6);
    assert!(serial.lines().all(|l| l.contains("\"ok\":true")));
}

#[test]
fn csv_is_byte_identical_across_worker_counts() {
    let jobs = mixed_batch();
    let serial = sink::to_csv(&Engine::new(1).run(&jobs));
    let parallel = sink::to_csv(&Engine::new(4).run(&jobs));
    assert_eq!(serial, parallel);
    assert_eq!(serial.lines().count(), 7, "header plus six rows");
}

#[test]
fn multicore_grid_is_byte_identical_across_worker_counts() {
    // The multi-core scaling grid mixes cluster sizes 1..=8 — worker-local
    // cluster reuse must rebuild on every cores change and the serialized
    // output must not depend on how jobs land on workers.
    let jobs = job::scaling(&[Kernel::PiLcgPar, Kernel::PiXoshiroPar], &[1, 2, 4, 8], 512, 32);
    assert_eq!(jobs.len(), 16);
    let serial = sink::to_jsonl(&Engine::new(1).run(&jobs));
    for workers in [2, 8] {
        let parallel = sink::to_jsonl(&Engine::new(workers).run(&jobs));
        assert_eq!(serial, parallel, "multi-core grid output diverged at {workers} workers");
    }
    assert!(serial.lines().all(|l| l.contains("\"ok\":true")), "all scaling jobs validate");
    // More cores must never slow the fixed-size COPIFT workload down at
    // this operating point… at minimum, the records must carry distinct
    // config fingerprints per core count.
    let fingerprints: std::collections::HashSet<&str> = serial
        .lines()
        .filter_map(|l| l.split("\"config\":\"").nth(1).and_then(|r| r.split('"').next()))
        .collect();
    assert_eq!(fingerprints.len(), 4, "one fingerprint per core count");
}

#[test]
fn multicluster_grid_is_byte_identical_across_worker_counts() {
    // The tiled 2-D grid mixes cluster counts 1/2/4 with core counts 1/8 —
    // worker-local system reuse must rebuild on every shape change and the
    // serialized sinks must not depend on how jobs land on workers.
    let jobs = job::scaling_grid(&[Kernel::GemmTiled], &[1, 8], &[1, 2, 4], 32, 0);
    assert_eq!(jobs.len(), 12);
    let serial_records = Engine::new(1).run(&jobs);
    let serial_jsonl = sink::to_jsonl(&serial_records);
    let serial_csv = sink::to_csv(&serial_records);
    for workers in [2, 8] {
        let records = Engine::new(workers).run(&jobs);
        assert_eq!(
            serial_jsonl,
            sink::to_jsonl(&records),
            "multi-cluster JSON-lines output diverged at {workers} workers"
        );
        assert_eq!(
            serial_csv,
            sink::to_csv(&records),
            "multi-cluster CSV output diverged at {workers} workers"
        );
    }
    assert!(serial_jsonl.lines().all(|l| l.contains("\"ok\":true")), "all grid jobs validate");
    // Every grid shape keeps its own config fingerprint (2 cores x 3
    // clusters), and the single-shape labels carry the /cN and /xN suffixes.
    let fingerprints: std::collections::HashSet<&str> = serial_jsonl
        .lines()
        .filter_map(|l| l.split("\"config\":\"").nth(1).and_then(|r| r.split('"').next()))
        .collect();
    assert_eq!(fingerprints.len(), 6, "one fingerprint per (cores, clusters) shape");
    let labels: Vec<String> = jobs.iter().map(job::JobSpec::label).collect();
    assert!(labels.contains(&"gemm_tiled/base/n32/b0".to_string()));
    assert!(labels.contains(&"gemm_tiled/copift/n32/b0/c8/x4".to_string()));
}

#[test]
fn traced_runs_are_byte_identical_across_worker_counts() {
    // Tracing must not perturb determinism: with every job requesting an
    // event trace, the serialized result sinks AND the rendered trace
    // output must be byte-identical whether one worker or many ran the
    // batch (workers reuse clusters, so tracer state must reset cleanly
    // between jobs).
    let jobs: Vec<JobSpec> = mixed_batch().into_iter().map(JobSpec::traced).collect();
    let render = |records: &[snitch_engine::RunRecord]| {
        let mut out = String::new();
        for r in records {
            let events = r.trace.as_deref().expect("every job requested a trace");
            out.push_str(&snitch_trace::chrome::render(events));
            out.push_str(&snitch_trace::text::render(events));
        }
        out
    };
    let serial_records = Engine::new(1).run(&jobs);
    let serial_sink = sink::to_jsonl(&serial_records);
    let serial_traces = render(&serial_records);
    for workers in [2, 8] {
        let parallel_records = Engine::new(workers).run(&jobs);
        assert_eq!(
            serial_sink,
            sink::to_jsonl(&parallel_records),
            "traced sink output diverged at {workers} workers"
        );
        assert_eq!(
            serial_traces,
            render(&parallel_records),
            "trace output diverged at {workers} workers"
        );
    }
    // And the traced sink matches the untraced batch byte for byte — the
    // trace request is invisible to the serialized results.
    let untraced = sink::to_jsonl(&Engine::new(4).run(&mixed_batch()));
    assert_eq!(serial_sink, untraced);
}

#[test]
fn figure2_batch_matches_direct_serial_runs() {
    // The engine must reproduce exactly what `Kernel::run` reports —
    // cluster reuse, caching and threading may not perturb a single cycle.
    let jobs = job::figure2();
    let records = Engine::default().run(&jobs);
    assert_eq!(records.len(), 24);
    // Spot-check a quarter of the batch against the direct path (checking
    // all 24 would double the test's runtime for no extra coverage).
    for record in records.iter().step_by(4) {
        let job = &record.job;
        let direct =
            job.kernel.run(job.variant, job.n, job.block).expect("direct serial run validates");
        assert!(record.ok, "{} must validate through the engine", job.label());
        assert_eq!(
            record.stats.as_ref().unwrap(),
            &direct.stats,
            "{}: engine and serial stats diverge",
            job.label()
        );
    }
}
