//! Guest-profiler integration: the profile is an exact decomposition of
//! `Stats` (counter for counter, with the block-burst fast path engaged),
//! fully deterministic across worker counts, and invisible to everything
//! else — byte-identical result sinks, no program-cache split.

use snitch_engine::{sink, Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_profile::{disasm, flame, perfetto, Lane, Profiler, RegionMap, StallCause};
use snitch_sim::config::ClusterConfig;
use snitch_sim::system::System;

/// Every paper kernel in both variants at its smoke point.
fn paper_batch() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for kernel in Kernel::paper() {
        let (n, block) = kernel.smoke_point();
        for variant in Variant::all() {
            jobs.push(JobSpec::new(kernel, variant, n, block));
        }
    }
    jobs
}

/// The profile must equal the run's `Stats` exactly: per-lane issue totals
/// and all 13 per-cause stall totals, for every paper kernel and variant —
/// with the block-burst fast path still engaged (the profiler must not
/// silently demote the simulator to the reference stepper).
#[test]
fn profile_totals_mirror_stats_for_all_paper_kernels() {
    let jobs: Vec<JobSpec> = paper_batch().into_iter().map(JobSpec::profiled).collect();
    let records = Engine::new(2).run(&jobs);
    let (mut cycles, mut replayed) = (0u64, 0u64);
    for record in &records {
        let label = record.job.label();
        assert!(record.ok, "{label}: {:?}", record.error);
        let stats = record.stats.as_ref().expect("success carries stats");
        let profile = record.profile.as_ref().expect("profiled job carries a profile");
        assert_eq!(profile.issued_total(Lane::Int), stats.int_issued, "{label}: int issues");
        assert_eq!(
            profile.issued_total(Lane::FpCore),
            stats.fp_issued_core,
            "{label}: fp core issues"
        );
        assert_eq!(
            profile.issued_total(Lane::FpSeq),
            stats.fp_issued_seq,
            "{label}: fp sequencer issues"
        );
        for cause in StallCause::all() {
            assert_eq!(
                profile.stall_total(cause),
                stats.stall_by_cause(cause),
                "{label}: {cause} stalls"
            );
        }
        cycles += record.cycles;
        replayed += record.block_replayed_cycles;
    }
    // Engagement: profiling must ride the fast path, not disable it.
    let engagement = replayed as f64 / cycles as f64;
    assert!(
        engagement >= 0.9,
        "block-burst engagement collapsed with profiling on: {:.1}%",
        100.0 * engagement
    );
}

/// The same exact-mirror property on the reference stepper (block compile
/// off): the two execution paths must charge identical profiles — the
/// histograms, not just the totals, are path-independent.
#[test]
fn profile_is_identical_with_block_compile_off() {
    for kernel in Kernel::paper() {
        let (n, block) = kernel.smoke_point();
        for variant in Variant::all() {
            let program = kernel.build_for(variant, n, block, 1);
            let run = |bursts: bool| -> (Profiler, snitch_sim::stats::Stats) {
                let mut system = System::new(ClusterConfig::profiled().into());
                system.set_block_compile(bursts);
                let outcome = kernel
                    .run_loaded(&mut system, variant, n, &program)
                    .unwrap_or_else(|e| panic!("{}/{variant:?}: {e}", kernel.name()));
                (system.profile().expect("profiler attached").clone(), outcome.stats)
            };
            let (profile_on, stats_on) = run(true);
            let (profile_off, stats_off) = run(false);
            assert_eq!(stats_on, stats_off, "{}/{variant:?}: stats diverged", kernel.name());
            assert_eq!(
                profile_on,
                profile_off,
                "{}/{variant:?}: burst and reference profiles diverged",
                kernel.name()
            );
            for cause in StallCause::all() {
                assert_eq!(
                    profile_off.stall_total(cause),
                    stats_off.stall_by_cause(cause),
                    "{}/{variant:?}: {cause}",
                    kernel.name()
                );
            }
        }
    }
}

/// Profiles are bit-identical at any worker count, and so is every sink
/// rendered from them (the byte-stability contract of the reports).
#[test]
fn profiles_and_sinks_are_deterministic_across_worker_counts() {
    let jobs: Vec<JobSpec> = paper_batch().into_iter().map(JobSpec::profiled).collect();
    let reference = Engine::new(1).run(&jobs);
    for workers in [2, 8] {
        let records = Engine::new(workers).run(&jobs);
        for (r, base) in records.iter().zip(&reference) {
            assert_eq!(
                r.profile,
                base.profile,
                "{}: profile diverged at {workers} workers",
                base.job.label()
            );
        }
    }
    // Sinks: byte-stable given equal profiles (spot-check one COPIFT job).
    let copift = reference
        .iter()
        .find(|r| r.job.variant == Variant::Copift && r.job.kernel == Kernel::PolyLcg)
        .expect("batch contains poly_lcg/copift");
    let profile = copift.profile.as_ref().expect("profiled");
    let program =
        copift.job.kernel.build_for(copift.job.variant, copift.job.n, copift.job.block, 1);
    let map = RegionMap::new(&program);
    let flame_text = flame::render(profile, &map);
    assert_eq!(flame_text, flame::render(profile, &map));
    assert!(flame::validate(&flame_text).expect("flamegraph grammar") > 0);
    assert!(flame_text.lines().any(|l| l.starts_with("spill;")), "regions label the stacks");
    let listing = disasm::render(profile, &program);
    assert_eq!(listing, disasm::render(profile, &program));
    assert!(listing.contains("prologue:") && listing.contains("reduce:"));
    let json = perfetto::render(profile, &map);
    snitch_trace::chrome::validate(&json).expect("perfetto document validates");
}

/// Profiling must not perturb results or split the program cache: the
/// profiled batch serializes to the very same JSON-lines/CSV rows as the
/// unprofiled one, through the same cached programs.
#[test]
fn profiled_runs_match_unprofiled_rows_and_share_the_cache() {
    let jobs = paper_batch();
    let profiled: Vec<JobSpec> = jobs.iter().cloned().map(JobSpec::profiled).collect();
    let engine = Engine::new(2);
    let baseline = engine.run(&jobs);
    let misses = engine.cache().misses();
    let with_profile = engine.run(&profiled);
    assert_eq!(
        engine.cache().misses(),
        misses,
        "profiling must not compile anything new (ProgramKey is profile-blind)"
    );
    assert_eq!(
        sink::to_jsonl(&baseline),
        sink::to_jsonl(&with_profile),
        "profiled JSON-lines rows diverged"
    );
    assert_eq!(sink::to_csv(&baseline), sink::to_csv(&with_profile), "profiled CSV rows diverged");
    assert!(baseline.iter().all(|r| r.profile.is_none()), "unprofiled runs carry no profile");
    assert!(with_profile.iter().all(|r| r.profile.is_some()));
}
