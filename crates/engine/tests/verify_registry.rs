//! Every registry kernel — the six paper workloads and the extended suite,
//! both variants, across representative sizes, block sizes and core counts
//! — must verify clean (zero errors). This is the CI gate that keeps the
//! static checks calibrated against real codegen output.

use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::ClusterConfig;
use snitch_verify::{error_count, report, verify};

#[test]
fn all_registry_kernels_verify_clean() {
    let mut checked = 0usize;
    for kernel in Kernel::all() {
        let w = kernel.workload();
        for variant in Variant::all() {
            for &(n, block) in &[(64usize, 16usize), (256, 64)] {
                let program = w.build(variant, n, block);
                let cores = if program.parallel() { 4 } else { 1 };
                let config = ClusterConfig { cores, ..ClusterConfig::default() };
                let diags = verify(&program, &config);
                assert_eq!(
                    error_count(&diags),
                    0,
                    "{}",
                    report(&format!("{}/{} n={n} block={block}", w.name(), variant.name()), &diags)
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 2 * 2 * 9, "catalog unexpectedly small: {checked}");
}
