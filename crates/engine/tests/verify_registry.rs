//! Every registry kernel — the six paper workloads and the extended suite,
//! both variants, across representative sizes, block sizes and core counts
//! — must verify clean (zero errors). This is the CI gate that keeps the
//! static checks calibrated against real codegen output.

use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::{ClusterConfig, SystemConfig};
use snitch_verify::{error_count, report, verify};

#[test]
fn all_registry_kernels_verify_clean() {
    let mut checked = 0usize;
    for kernel in Kernel::all() {
        for variant in Variant::all() {
            // Each kernel's own representative points — fixed sizes would
            // reject the tiled kernels, whose TCDM footprint grows with n².
            for (n, block) in [kernel.smoke_point(), kernel.operating_point()] {
                let probe = kernel.build_grid(variant, n, block, 1, 1);
                let cores = if probe.parallel() { 4 } else { 1 };
                let program =
                    if cores == 1 { probe } else { kernel.build_grid(variant, n, block, cores, 1) };
                let config = SystemConfig {
                    cluster: ClusterConfig { cores, ..ClusterConfig::default() },
                    clusters: 1,
                };
                let diags = verify(&program, &config);
                assert_eq!(
                    error_count(&diags),
                    0,
                    "{}",
                    report(
                        &format!("{}/{} n={n} block={block}", kernel.name(), variant.name()),
                        &diags
                    )
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 2 * 2 * 9, "catalog unexpectedly small: {checked}");
}
