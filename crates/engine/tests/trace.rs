//! Acceptance tests of the tracing subsystem against the `Stats` counters:
//! for every paper kernel, trace-derived stall attribution and IPC must
//! agree with the aggregate counters *exactly*, and the emitted Perfetto
//! JSON must show the paper's dual-issue picture (concurrent lanes under
//! COPIFT, serialized lanes in the baseline).

use snitch_engine::{Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_trace::{chrome, text, Profile, StallCause};

/// Every paper kernel, both variants, at its smoke point, traced.
fn traced_paper_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for kernel in Kernel::paper() {
        let (n, block) = kernel.smoke_point();
        for variant in Variant::all() {
            jobs.push(JobSpec::new(kernel, variant, n, block).traced());
        }
    }
    jobs
}

#[test]
fn attribution_and_ipc_match_stats_for_every_paper_kernel() {
    let jobs = traced_paper_jobs();
    let records = Engine::new(4).run(&jobs);
    for record in &records {
        let label = record.job.label();
        assert!(record.ok, "{label} must validate");
        let stats = record.stats.as_ref().expect("stats on success");
        let events = record.trace.as_deref().expect("traced job carries events");
        let profile = Profile::new(events, stats.cycles);

        // Stall attribution decomposes into the thirteen causes and matches
        // the counters counter-for-counter.
        for cause in StallCause::all() {
            assert_eq!(
                profile.stall_cycles(None, cause),
                stats.stall_by_cause(cause),
                "{label}: stall attribution for `{cause}` diverged from Stats"
            );
        }

        // Per-lane issue-cycle occupancy matches the issue counters: the
        // core slot issues at most once per cycle, as does the sequencer.
        let occ = profile.occupancy(0);
        assert_eq!(occ.core_busy, stats.int_issued + stats.fp_issued_core, "{label}");
        assert_eq!(occ.frep_busy, stats.fp_issued_seq, "{label}");

        // IPC over the full-run window reproduces Stats::ipc() exactly.
        let full = 0..stats.cycles;
        assert_eq!(profile.instructions_in(&full), stats.instructions(), "{label}");
        assert!(
            (profile.ipc_in(&full) - stats.ipc()).abs() < f64::EPSILON,
            "{label}: trace IPC {} != stats IPC {}",
            profile.ipc_in(&full),
            stats.ipc()
        );

        // The steady-state window is a valid sub-window with sane IPC.
        let steady = profile.steady_window();
        assert!(steady.start < steady.end && steady.end <= stats.cycles, "{label}");
        assert!(profile.steady_ipc() > 0.0 && profile.steady_ipc() <= 2.0, "{label}");

        // Both sinks render, and the JSON passes the trace-event schema.
        let json = chrome::render(events);
        let summary = chrome::validate(&json)
            .unwrap_or_else(|e| panic!("{label}: emitted JSON fails its schema: {e}"));
        assert!(summary.complete as u64 >= stats.instructions(), "{label}");
        assert!(!text::render(events).is_empty(), "{label}");
    }
}

#[test]
fn copift_overlaps_lanes_where_the_baseline_serializes() {
    let (n, block) = Kernel::PiLcg.smoke_point();
    let jobs = vec![
        JobSpec::new(Kernel::PiLcg, Variant::Baseline, n, block).traced(),
        JobSpec::new(Kernel::PiLcg, Variant::Copift, n, block).traced(),
    ];
    let records = Engine::new(2).run(&jobs);
    let profile = |i: usize| {
        let r = &records[i];
        assert!(r.ok);
        Profile::new(r.trace.as_deref().unwrap(), r.stats.as_ref().unwrap().cycles)
    };

    // Baseline RV32G never uses FREP: the sequencer lane stays empty, so
    // the lanes are serialized by construction and IPC is capped at 1.
    let base = profile(0);
    let base_occ = base.occupancy(0);
    assert_eq!(base_occ.frep_busy, 0, "baseline must not dual-issue");
    assert_eq!(base_occ.overlap, 0);
    let base_json = chrome::render(records[0].trace.as_deref().unwrap());
    assert!(
        !base_json.contains("\"tid\":1,\"ts\""),
        "baseline Perfetto trace must have an empty frep track"
    );

    // COPIFT decouples the streams: the frep lane runs concurrently with
    // the integer lane for a substantial fraction of the run.
    let copift = profile(1);
    let copift_occ = copift.occupancy(0);
    assert!(copift_occ.frep_busy > 0, "COPIFT replays through the sequencer");
    assert!(
        copift_occ.overlap_frac() > 0.2,
        "COPIFT pi_lcg must show substantial dual-issue overlap, got {:.3}",
        copift_occ.overlap_frac()
    );
    let copift_json = chrome::render(records[1].trace.as_deref().unwrap());
    assert!(
        copift_json.contains("\"tid\":1,\"ts\""),
        "COPIFT Perfetto trace must populate the frep track"
    );
    // And its sustained dual-issue plateau beats the baseline's IPC ceiling.
    assert!(copift.steady_ipc() > 1.0, "steady IPC {:.3}", copift.steady_ipc());
}

#[test]
fn trace_request_does_not_perturb_results_or_cache_identity() {
    let (n, block) = Kernel::PolyLcg.smoke_point();
    let plain = JobSpec::new(Kernel::PolyLcg, Variant::Copift, n, block);
    let traced = plain.clone().traced();
    assert_eq!(plain.program_key(), traced.program_key(), "trace must not split the cache");
    assert_eq!(plain.config.fingerprint(), traced.config.fingerprint());

    let engine = Engine::new(2);
    let records = engine.run(&[plain, traced]);
    assert_eq!(engine.cache().misses(), 1, "both jobs share one compiled program");
    assert!(records[0].trace.is_none());
    assert!(records[1].trace.is_some());
    assert_eq!(records[0].stats, records[1].stats, "tracing must not change a single counter");
    // Identical serialized rows: the sinks cannot tell the jobs apart.
    assert_eq!(records[0].json_line(), records[1].json_line());
    assert_eq!(records[0].csv_row(), records[1].csv_row());
}
