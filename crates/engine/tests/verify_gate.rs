//! The engine's verification gate: a job whose program fails static
//! verification is failed at compile time — before it ever reaches a
//! cluster — with the offending check ids in the error, unless the engine
//! was built with `allow_invalid`. Diagnostics ride on the records either
//! way, shared through the program cache.

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::program::Program;
use snitch_engine::job::JobSpec;
use snitch_engine::Engine;
use snitch_kernels::registry::{register, Variant, Workload};
use snitch_riscv::reg::IntReg;
use snitch_sim::config::ClusterConfig;

/// A deliberately-broken SPMD workload: hart 0 takes one more barrier than
/// its peers. The simulator's release rule (halted harts count as arrived)
/// lets it *run* to completion, so only the static check catches the bug —
/// exactly the situation the gate exists for.
struct SkewedBarrier;

impl Workload for SkewedBarrier {
    fn name(&self) -> &'static str {
        "test-skewed-barrier"
    }
    fn description(&self) -> &'static str {
        "broken fixture: hart-guarded barrier"
    }
    fn build(&self, _variant: Variant, _n: usize, _block: usize) -> Program {
        let mut b = ProgramBuilder::new();
        b.parallel();
        b.csrr_mhartid(IntReg::A0);
        b.bnez(IntReg::A0, "skip");
        b.barrier(); // hart 0 only
        b.label("skip");
        b.ecall();
        b.build().unwrap()
    }
    fn expected(&self, _variant: Variant, _n: usize) -> Vec<(&'static str, Vec<u64>)> {
        Vec::new() // nothing to validate: the fixture only exercises the gate
    }
    fn operating_point(&self) -> (usize, usize) {
        (16, 0)
    }
}

fn skewed_job() -> JobSpec {
    static KERNEL: std::sync::OnceLock<snitch_kernels::registry::Kernel> =
        std::sync::OnceLock::new();
    let kernel = *KERNEL.get_or_init(|| register(&SkewedBarrier).expect("fixture registers once"));
    JobSpec::new(kernel, Variant::Baseline, 16, 0)
        .with_config(ClusterConfig { cores: 4, ..ClusterConfig::default() })
}

#[test]
fn invalid_program_fails_the_job_with_check_ids() {
    let records = Engine::new(1).run(&[skewed_job()]);
    assert_eq!(records.len(), 1);
    let r = &records[0];
    assert!(!r.ok);
    let err = r.error.as_deref().unwrap_or_default();
    assert!(err.contains("static verification"), "unexpected error: {err}");
    assert!(err.contains("barrier-consistency"), "error must name the check: {err}");
    assert_eq!(r.cycles, 0, "the job must not have been simulated");
    assert!(
        snitch_verify::has_errors(&r.diagnostics),
        "diagnostics must ride on the record: {:?}",
        r.diagnostics
    );
}

#[test]
fn allow_invalid_runs_the_job_anyway() {
    let records = Engine::new(1).allow_invalid(true).run(&[skewed_job()]);
    assert_eq!(records.len(), 1);
    let r = &records[0];
    // The sim releases barrier waiters when their peers halt, so the broken
    // program still completes; the diagnostics are attached regardless.
    assert!(r.ok, "{:?}", r.error);
    assert!(r.cycles > 0);
    assert!(snitch_verify::has_errors(&r.diagnostics));
}

#[test]
fn clean_programs_carry_empty_or_warning_diagnostics() {
    use snitch_kernels::registry::Kernel;
    let jobs = vec![JobSpec::new(Kernel::PiLcg, Variant::Copift, 128, 32)];
    let records = Engine::new(1).run(&jobs);
    assert!(records[0].ok, "{:?}", records[0].error);
    assert!(!snitch_verify::has_errors(&records[0].diagnostics));
}
