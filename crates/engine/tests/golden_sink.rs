//! Committed golden sink bytes for single-cluster runs.
//!
//! The fixtures under `tests/goldens/` were generated before the
//! multi-cluster `System` layer landed; every single-cluster job here must
//! keep producing byte-identical JSON-lines and CSV output forever — the
//! configuration fingerprint, the stats counters and the serialized field
//! order are all load-bearing. Regenerate (only for a deliberate,
//! documented format change) with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p snitch-engine --test golden_sink
//! ```

use std::path::PathBuf;

use snitch_engine::{sink, Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::ClusterConfig;

/// A fixed batch covering the serialization surface: default configs, a
/// config-ablated job (distinct fingerprint), and a multi-core job.
fn batch() -> Vec<JobSpec> {
    vec![
        JobSpec::new(Kernel::PiLcg, Variant::Baseline, 128, 0),
        JobSpec::new(Kernel::PiLcg, Variant::Copift, 128, 32),
        JobSpec::new(Kernel::Logf, Variant::Baseline, 64, 16),
        JobSpec::new(Kernel::Sigmoid, Variant::Copift, 128, 32),
        JobSpec::new(Kernel::Softmax, Variant::Baseline, 64, 16),
        JobSpec::new(Kernel::PiXoshiro, Variant::Baseline, 64, 0)
            .with_config(ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() }),
        JobSpec::new(Kernel::PiLcgPar, Variant::Copift, 512, 32)
            .with_config(ClusterConfig { cores: 8, ..ClusterConfig::default() }),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

#[test]
fn single_cluster_sink_bytes_match_committed_goldens() {
    let records = Engine::new(2).run(&batch());
    assert!(records.iter().all(|r| r.ok), "every golden job validates");
    let jsonl = sink::to_jsonl(&records);
    let csv = sink::to_csv(&records);

    let dir = golden_dir();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("single_cluster.jsonl"), &jsonl).unwrap();
        std::fs::write(dir.join("single_cluster.csv"), &csv).unwrap();
        return;
    }

    let want_jsonl = std::fs::read_to_string(dir.join("single_cluster.jsonl"))
        .expect("committed golden tests/goldens/single_cluster.jsonl");
    let want_csv = std::fs::read_to_string(dir.join("single_cluster.csv"))
        .expect("committed golden tests/goldens/single_cluster.csv");
    assert_eq!(
        jsonl, want_jsonl,
        "single-cluster JSON-lines output diverged from the pre-System goldens"
    );
    assert_eq!(csv, want_csv, "single-cluster CSV output diverged from the pre-System goldens");
}
