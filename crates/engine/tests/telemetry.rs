//! Host-telemetry integration: spans and counters must observe a batch
//! without perturbing it — byte-identical sinks at any worker count, no
//! program-cache split, and a Chrome export that passes the shared
//! trace-document validator.

use snitch_engine::{job, sink, Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::ClusterConfig;
use snitch_telemetry::{chrome, metrics, Phase, Report, Telemetry, MAIN_WORKER};

fn mixed_batch() -> Vec<JobSpec> {
    vec![
        JobSpec::new(Kernel::PiLcg, Variant::Baseline, 128, 0),
        JobSpec::new(Kernel::PiLcg, Variant::Copift, 128, 32),
        JobSpec::new(Kernel::Logf, Variant::Baseline, 64, 16),
        JobSpec::new(Kernel::Sigmoid, Variant::Copift, 128, 32),
        JobSpec::new(Kernel::PiXoshiro, Variant::Baseline, 64, 0)
            .with_config(ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() }),
    ]
}

#[test]
fn telemetry_enabled_sinks_are_byte_identical_across_worker_counts() {
    let jobs = mixed_batch();
    // The reference: telemetry fully disabled (the plain `run` path).
    let baseline_jsonl = sink::to_jsonl(&Engine::new(1).run(&jobs));
    let baseline_csv = sink::to_csv(&Engine::new(1).run(&jobs));
    for workers in [1, 2, 8] {
        let tel = Telemetry::new();
        let records = Engine::new(workers).run_with(&jobs, &tel);
        assert!(tel.spans().len() >= jobs.len(), "a span log was recorded");
        assert_eq!(
            baseline_jsonl,
            sink::to_jsonl(&records),
            "telemetry-enabled JSON-lines diverged at {workers} workers"
        );
        assert_eq!(
            baseline_csv,
            sink::to_csv(&records),
            "telemetry-enabled CSV diverged at {workers} workers"
        );
    }
}

#[test]
fn telemetry_does_not_split_the_program_cache() {
    // Same batch run with and without telemetry through one engine: the
    // second pass must be all cache hits — the handle must never leak into
    // ProgramKey or the job specs.
    let jobs = mixed_batch();
    let engine = Engine::new(2);
    let _ = engine.run_with(&jobs, &Telemetry::new());
    let misses_after_first = engine.cache().misses();
    assert_eq!(misses_after_first, jobs.len() as u64, "one build per distinct program");
    let _ = engine.run(&jobs);
    let _ = engine.run_with(&jobs, &Telemetry::new());
    assert_eq!(
        engine.cache().misses(),
        misses_after_first,
        "re-running with telemetry on or off must not compile anything new"
    );
    // Config fingerprints are equally telemetry-blind: records from both
    // paths serialize the same fingerprint set.
    let with_tel = sink::to_jsonl(&engine.run_with(&jobs, &Telemetry::new()));
    let without = sink::to_jsonl(&engine.run(&jobs));
    assert_eq!(with_tel, without);
}

#[test]
fn spans_cover_the_expected_phases() {
    let jobs = mixed_batch();
    let tel = Telemetry::new();
    let t0 = std::time::Instant::now();
    let records = Engine::new(1).run_with(&jobs, &tel);
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    assert!(records.iter().all(|r| r.ok));
    let spans = tel.spans();
    let count = |phase: Phase| spans.iter().filter(|s| s.phase == phase).count();
    assert_eq!(count(Phase::Compile), jobs.len(), "cold cache: every job compiles");
    assert_eq!(count(Phase::CacheHit), 0);
    assert_eq!(count(Phase::Simulate), jobs.len());
    assert_eq!(count(Phase::Reset), jobs.len());
    assert_eq!(count(Phase::Collect), 1, "one collection span on the main thread");
    assert!(count(Phase::Warm) >= 1, "at least one cluster construction");
    assert!(
        spans.iter().filter(|s| s.phase == Phase::Collect).all(|s| s.worker == MAIN_WORKER),
        "collection happens on the calling thread"
    );
    // Serial coverage: on one worker the span totals must account for the
    // measured wall time within 5% (the perf-report acceptance bar), minus
    // scheduler noise. Allow a generous floor here — CI machines stutter —
    // but the structure (spans covering most of the wall) must hold.
    let report = Report::new(&spans, wall_ns);
    assert!(
        report.span_coverage() > 0.5,
        "serial span coverage collapsed: {:.1}%",
        100.0 * report.span_coverage()
    );
    // A second pass over a warm engine flips Compile to CacheHit.
    let engine = Engine::new(1);
    let _ = engine.run(&jobs);
    let warm_tel = Telemetry::new();
    let _ = engine.run_with(&jobs, &warm_tel);
    let warm_spans = warm_tel.spans();
    assert_eq!(warm_spans.iter().filter(|s| s.phase == Phase::CacheHit).count(), jobs.len());
    assert_eq!(warm_spans.iter().filter(|s| s.phase == Phase::Compile).count(), 0);
}

#[test]
fn chrome_export_of_a_multiworker_run_passes_the_shared_validator() {
    let jobs = job::smoke();
    let tel = Telemetry::new();
    let records = Engine::new(4).run_with(&jobs, &tel);
    assert!(records.iter().all(|r| r.ok));
    let spans = tel.spans();
    let json = chrome::render(&spans);
    let summary =
        snitch_trace::chrome::validate(&json).expect("host trace must be a valid document");
    assert_eq!(summary.complete, spans.len(), "one duration event per span");
    assert_eq!(summary.counters, jobs.len(), "one queue sample per job");
    assert!(json.contains("\"name\":\"worker 0\""));
    assert!(json.contains("\"name\":\"simulate\""));
}

#[test]
fn metrics_of_a_real_batch_validate_and_balance() {
    let jobs = mixed_batch();
    let tel = Telemetry::new();
    let t0 = std::time::Instant::now();
    let _ = Engine::new(2).run_with(&jobs, &tel);
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let report = Report::new(&tel.spans(), wall_ns);
    let rendered = metrics::render(2, &report);
    let lines = metrics::validate(&rendered).expect("rendered metrics validate");
    assert!(lines > 1 + 7, "batch + phases + at least one worker line");
    // The ledger balances: busy + idle == workers x wall, per worker.
    for w in &report.workers {
        assert_eq!(w.busy_ns + w.idle_ns(), report.wall_ns, "worker {} ledger", w.worker);
        assert!(w.startup_ns() + w.gap_ns() + w.barrier_ns() <= w.idle_ns() + 1);
    }
}
