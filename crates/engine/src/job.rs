//! The job model: one simulation job and the constructors that expand
//! experiment matrices into batches.
//!
//! All constructors produce jobs in a **deterministic order** (row-major
//! over their input axes); the executor preserves that order in its results,
//! so batch expansion fully defines the layout of every result file.

use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::{ClusterConfig, SystemConfig};

use crate::cache::ProgramKey;

/// One simulation job: which program to run under which configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    /// Workload.
    pub kernel: Kernel,
    /// Code variant.
    pub variant: Variant,
    /// Problem size (points or vector elements).
    pub n: usize,
    /// DMA/tiling block size (ignored by kernels without blocking).
    pub block: usize,
    /// System configuration to simulate under (a single default cluster
    /// unless the job says otherwise).
    pub config: SystemConfig,
}

impl JobSpec {
    /// A job at the default single-cluster configuration.
    #[must_use]
    pub fn new(kernel: Kernel, variant: Variant, n: usize, block: usize) -> Self {
        JobSpec { kernel, variant, n, block, config: SystemConfig::default() }
    }

    /// Replaces the system configuration. Accepts a plain
    /// [`ClusterConfig`] (a single-cluster system) via `Into`.
    #[must_use]
    pub fn with_config(mut self, config: impl Into<SystemConfig>) -> Self {
        self.config = config.into();
        self
    }

    /// Requests a cycle-accurate event trace of this job: the run's
    /// [`RunRecord`](crate::record::RunRecord) will carry the recorded
    /// events. The request rides on `config.trace`, which is excluded from
    /// both the program-cache key and the configuration fingerprint — a
    /// traced job compiles no extra program, simulates bit-identically, and
    /// serializes to the same JSON-lines/CSV rows as its untraced twin.
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.config.cluster.trace = true;
        self
    }

    /// Whether this job requests an event trace.
    #[must_use]
    pub fn trace(&self) -> bool {
        self.config.cluster.trace
    }

    /// Requests a per-pc cycle/stall profile of this job: the run's
    /// [`RunRecord`](crate::record::RunRecord) will carry the finished
    /// [`Profiler`](snitch_profile::Profiler). Like [`traced`](Self::traced)
    /// the request rides on `config.profile`, which is excluded from the
    /// program-cache key and the configuration fingerprint — a profiled job
    /// compiles no extra program, simulates bit-identically (block bursts
    /// stay engaged) and serializes to the same JSON-lines/CSV rows as its
    /// unprofiled twin.
    #[must_use]
    pub fn profiled(mut self) -> Self {
        self.config.cluster.profile = true;
        self
    }

    /// Whether this job requests a cycle profile.
    #[must_use]
    pub fn profile(&self) -> bool {
        self.config.cluster.profile
    }

    /// The program-cache key: timing-configuration changes never rebuild
    /// programs, but the grid shape does (data-parallel programs bake the
    /// core count into seed tables and reductions; tiled programs bake the
    /// cluster count into their DMA descriptors), so programs for different
    /// shapes never collide in the cache.
    #[must_use]
    pub fn program_key(&self) -> ProgramKey {
        ProgramKey {
            kernel: self.kernel,
            variant: self.variant,
            n: self.n,
            block: self.block,
            cores: self.config.cluster.cores,
            clusters: self.config.clusters,
        }
    }

    /// Human-readable job label, e.g. `exp/copift/n2048/b128`. Multi-core
    /// jobs append `/cN` (cores per cluster); multi-cluster jobs append
    /// `/xN` (cluster count) after that — `gemm_tiled/copift/n64/b0/c8/x4`
    /// is the 4-cluster, 8-cores-per-cluster shape.
    #[must_use]
    pub fn label(&self) -> String {
        use std::fmt::Write as _;
        let mut label =
            format!("{}/{}/n{}/b{}", self.kernel.name(), self.variant.name(), self.n, self.block);
        if self.config.cluster.cores > 1 {
            let _ = write!(label, "/c{}", self.config.cluster.cores);
        }
        if self.config.clusters > 1 {
            let _ = write!(label, "/x{}", self.config.clusters);
        }
        label
    }

    /// Full four-axis matrix expansion: every `kernel × variant × (n, block)
    /// × config` combination, row-major in that axis order. Accepts slices
    /// of [`ClusterConfig`] (single-cluster systems) or [`SystemConfig`].
    #[must_use]
    pub fn grid_with_configs<C: Clone + Into<SystemConfig>>(
        kernels: &[Kernel],
        variants: &[Variant],
        points: &[(usize, usize)],
        configs: &[C],
    ) -> Vec<JobSpec> {
        let mut jobs =
            Vec::with_capacity(kernels.len() * variants.len() * points.len() * configs.len());
        for &kernel in kernels {
            for &variant in variants {
                for &(n, block) in points {
                    for config in configs {
                        jobs.push(JobSpec {
                            kernel,
                            variant,
                            n,
                            block,
                            config: config.clone().into(),
                        });
                    }
                }
            }
        }
        jobs
    }

    /// Three-axis matrix at the default configuration.
    #[must_use]
    pub fn grid(
        kernels: &[Kernel],
        variants: &[Variant],
        points: &[(usize, usize)],
    ) -> Vec<JobSpec> {
        Self::grid_with_configs(kernels, variants, points, &[SystemConfig::default()])
    }
}

/// Free-function alias of [`JobSpec::grid`], for readable call sites.
#[must_use]
pub fn grid(kernels: &[Kernel], variants: &[Variant], points: &[(usize, usize)]) -> Vec<JobSpec> {
    JobSpec::grid(kernels, variants, points)
}

/// Steady-state measurement pairs: every given kernel, both variants, at
/// the kernel's operating point `n` and at `2n` (steady-state measurements
/// difference the two sizes). `4 × kernels.len()` jobs, kernel-major in the
/// given order.
#[must_use]
pub fn steady_pairs(kernels: &[Kernel]) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(4 * kernels.len());
    for &kernel in kernels {
        let (n, block) = kernel.operating_point();
        for variant in Variant::all() {
            jobs.push(JobSpec::new(kernel, variant, n, block));
            jobs.push(JobSpec::new(kernel, variant, 2 * n, block));
        }
    }
    jobs
}

/// The full Figure 2 batch: [`steady_pairs`] over the paper's six kernels
/// (24 jobs, Figure 2 order).
#[must_use]
pub fn figure2() -> Vec<JobSpec> {
    steady_pairs(&Kernel::paper())
}

/// The extended-suite batch: [`steady_pairs`] over every cataloged kernel
/// beyond the paper's Figure 2 suite that supports the `(n, 2n)`
/// steady-state methodology (the tiled kernels opt out — the scaling-grid
/// batch measures them instead).
#[must_use]
pub fn extended() -> Vec<JobSpec> {
    let kernels: Vec<Kernel> =
        Kernel::extended().into_iter().filter(|k| k.steady_measurable()).collect();
    steady_pairs(&kernels)
}

/// The paper's Figure 3 block sizes.
pub const FIG3_BLOCKS: [usize; 7] = [32, 48, 64, 96, 128, 192, 256];
/// The paper's Figure 3 problem sizes.
pub const FIG3_SIZES: [usize; 8] = [768, 1536, 3072, 6144, 12288, 24576, 49152, 98304];

/// A Figure 3-style grid: `poly_lcg` COPIFT over `sizes × blocks`,
/// size-major (one row of the figure at a time).
#[must_use]
pub fn figure3(sizes: &[usize], blocks: &[usize]) -> Vec<JobSpec> {
    let points: Vec<(usize, usize)> =
        sizes.iter().flat_map(|&n| blocks.iter().map(move |&b| (n, b))).collect();
    JobSpec::grid(&[Kernel::PolyLcg], &[Variant::Copift], &points)
}

/// [`figure3`] at the paper's own axes ([`FIG3_SIZES`] × [`FIG3_BLOCKS`]):
/// the full 56-cell grid.
#[must_use]
pub fn figure3_paper() -> Vec<JobSpec> {
    figure3(&FIG3_SIZES, &FIG3_BLOCKS)
}

/// The smoke batch: every cataloged kernel, both variants, at each
/// kernel's small validation-friendly smoke point (kernel-major in catalog
/// order; 2 jobs per cataloged kernel).
#[must_use]
pub fn smoke() -> Vec<JobSpec> {
    let kernels = Kernel::all();
    let mut jobs = Vec::with_capacity(2 * kernels.len());
    for kernel in kernels {
        let (n, block) = kernel.smoke_point();
        for variant in Variant::all() {
            jobs.push(JobSpec::new(kernel, variant, n, block));
        }
    }
    jobs
}

/// Replicates one job across many configurations (ablations). The compiled
/// program is shared by all replicas through the program cache. Accepts
/// slices of [`ClusterConfig`] or [`SystemConfig`].
#[must_use]
pub fn config_sweep<C: Clone + Into<SystemConfig>>(base: &JobSpec, configs: &[C]) -> Vec<JobSpec> {
    configs.iter().map(|c| base.clone().with_config(c.clone())).collect()
}

/// The canonical core-scaling axis, shared by the sweep CLI's `scaling`
/// preset and the bench `scaling` driver so both always produce the same
/// batch.
pub const SCALING_CORES: [usize; 4] = [1, 2, 4, 8];

/// The canonical cluster-count axis of the 2-D (cores × clusters) scaling
/// grid.
pub const SCALING_CLUSTERS: [usize; 3] = [1, 2, 4];

/// The data-parallel kernels of the canonical scaling batch.
#[must_use]
pub fn scaling_kernels() -> [Kernel; 2] {
    [Kernel::PiLcgPar, Kernel::PiXoshiroPar]
}

/// The canonical cluster-scaling batch: [`scaling_kernels`] ×
/// both variants × [`SCALING_CORES`] at the kernels' shared operating
/// point (16 jobs; the EXPERIMENTS.md "Cluster scaling" table).
#[must_use]
pub fn scaling_default() -> Vec<JobSpec> {
    let (n, block) = Kernel::PiLcgPar.operating_point();
    scaling(&scaling_kernels(), &SCALING_CORES, n, block)
}

/// Cluster-scaling batch: every `kernel × variant × cores` combination at a
/// fixed `(n, block)` operating point, kernel-major then variant-major then
/// cores in the given order (the layout the `scaling` driver's table
/// assumes). Each cores value builds its own program — data-parallel
/// workloads bake the cluster size into their code.
#[must_use]
pub fn scaling(kernels: &[Kernel], cores: &[usize], n: usize, block: usize) -> Vec<JobSpec> {
    scaling_grid(kernels, cores, &[1], n, block)
}

/// The canonical 2-D scaling grid: `gemm_tiled` × both variants ×
/// [`SCALING_CORES`] × [`SCALING_CLUSTERS`] at the kernel's operating point
/// (24 jobs; the EXPERIMENTS.md "Cores × clusters scaling" table).
#[must_use]
pub fn scaling_grid_default() -> Vec<JobSpec> {
    let (n, block) = Kernel::GemmTiled.operating_point();
    scaling_grid(&[Kernel::GemmTiled], &SCALING_CORES, &SCALING_CLUSTERS, n, block)
}

/// 2-D scaling batch over the full system shape: every `kernel × variant ×
/// clusters × cores` combination at a fixed `(n, block)` operating point,
/// kernel-major, then variant, then clusters, with cores innermost (one
/// table row per clusters value in the drivers). Every grid shape builds
/// its own program — tiled workloads bake both counts into their code.
#[must_use]
pub fn scaling_grid(
    kernels: &[Kernel],
    cores: &[usize],
    clusters: &[usize],
    n: usize,
    block: usize,
) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(kernels.len() * 2 * cores.len() * clusters.len());
    for &kernel in kernels {
        for variant in Variant::all() {
            for &x in clusters {
                for &c in cores {
                    let config = SystemConfig {
                        cluster: ClusterConfig { cores: c, ..ClusterConfig::default() },
                        clusters: x,
                    };
                    jobs.push(JobSpec::new(kernel, variant, n, block).with_config(config));
                }
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_row_major_and_complete() {
        let jobs = grid(&[Kernel::PiLcg, Kernel::Logf], &Variant::all(), &[(64, 16), (128, 16)]);
        assert_eq!(jobs.len(), 8);
        let labels: Vec<String> = jobs.iter().map(JobSpec::label).collect();
        assert_eq!(labels[0], "pi_lcg/base/n64/b16");
        assert_eq!(labels[1], "pi_lcg/base/n128/b16");
        assert_eq!(labels[2], "pi_lcg/copift/n64/b16");
        assert_eq!(labels[7], "log/copift/n128/b16");
    }

    #[test]
    fn figure2_covers_all_paper_kernels_twice_per_variant() {
        let jobs = figure2();
        assert_eq!(jobs.len(), 24);
        for kernel in Kernel::paper() {
            let (n, block) = kernel.operating_point();
            for variant in Variant::all() {
                for size in [n, 2 * n] {
                    assert!(
                        jobs.iter().any(|j| j.kernel == kernel
                            && j.variant == variant
                            && j.n == size
                            && j.block == block),
                        "missing {}/{}/{size}",
                        kernel.name(),
                        variant.name()
                    );
                }
            }
        }
    }

    #[test]
    fn smoke_and_extended_enumerate_the_catalog() {
        let catalog = Kernel::all();
        let smoke_jobs = smoke();
        assert_eq!(smoke_jobs.len(), 2 * catalog.len());
        for kernel in &catalog {
            assert!(
                smoke_jobs.iter().any(|j| j.kernel == *kernel),
                "{} missing from the smoke batch",
                kernel.name()
            );
        }
        let ext = extended();
        let steady = Kernel::extended().into_iter().filter(|k| k.steady_measurable()).count();
        assert_eq!(ext.len(), 4 * steady);
        assert!(ext.iter().all(|j| !Kernel::paper().contains(&j.kernel)));
        assert!(
            ext.iter().all(|j| j.kernel.name() != "gemm_tiled"),
            "the tiled kernel cannot run at 2n; the scaling-grid batch measures it"
        );
        assert!(ext.iter().any(|j| j.kernel.name() == "sigmoid"));
        assert!(ext.iter().any(|j| j.kernel.name() == "softmax"));
        assert!(ext.iter().any(|j| j.kernel.name() == "dot_lcg"));
    }

    #[test]
    fn scaling_batch_layout_labels_and_keys() {
        let jobs = scaling(&[Kernel::PiLcgPar], &[1, 8], 512, 32);
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].label(), "pi_lcg_par/base/n512/b32");
        assert_eq!(jobs[1].label(), "pi_lcg_par/base/n512/b32/c8");
        assert_eq!(jobs[1].config.cluster.cores, 8);
        // Different core counts never share a compiled program.
        assert_ne!(jobs[0].program_key(), jobs[1].program_key());
        assert_eq!(jobs[1].program_key().cores, 8);
    }

    #[test]
    fn grid_labels_append_cores_then_clusters() {
        let jobs = scaling_grid(&[Kernel::GemmTiled], &[1, 8], &[1, 4], 64, 0);
        assert_eq!(jobs.len(), 8);
        let labels: Vec<String> = jobs.iter().map(JobSpec::label).collect();
        // clusters-major with cores innermost; /cN before /xN.
        assert_eq!(labels[0], "gemm_tiled/base/n64/b0");
        assert_eq!(labels[1], "gemm_tiled/base/n64/b0/c8");
        assert_eq!(labels[2], "gemm_tiled/base/n64/b0/x4");
        assert_eq!(labels[3], "gemm_tiled/base/n64/b0/c8/x4");
        // Different cluster counts never share a compiled program.
        assert_ne!(jobs[0].program_key(), jobs[2].program_key());
        assert_eq!(jobs[3].program_key().clusters, 4);
        // Single-cluster keys and labels are identical to the pre-system
        // forms (the `/x` suffix and the key's clusters axis are inert).
        assert_eq!(jobs[0].program_key().clusters, 1);
    }

    #[test]
    fn config_sweep_shares_the_program_key() {
        let base = JobSpec::new(Kernel::PiLcg, Variant::Baseline, 64, 0);
        let sweep = config_sweep(
            &base,
            &[
                ClusterConfig::default(),
                ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() },
            ],
        );
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].program_key(), sweep[1].program_key());
        assert_ne!(sweep[0].config, sweep[1].config);
    }
}
