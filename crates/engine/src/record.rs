//! Per-job result records and their serialized forms.

use snitch_kernels::harness::RunOutcome;
use snitch_sim::stats::Stats;
use snitch_trace::TraceEvent;

use crate::job::JobSpec;

/// The outcome of one engine job.
///
/// Serialization is fully deterministic: field order is fixed, floats use
/// Rust's shortest round-trip formatting, and no timestamps, durations or
/// host details are recorded — so a sweep's output is byte-identical across
/// runs and worker counts.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The job that produced this record.
    pub job: JobSpec,
    /// Whether the run completed *and* validated bit-exactly.
    pub ok: bool,
    /// Failure description when `ok` is false.
    pub error: Option<String>,
    /// Total cycles (0 on failure).
    pub cycles: u64,
    /// Total instructions (0 on failure).
    pub instructions: u64,
    /// Instructions per cycle (0 on failure).
    pub ipc: f64,
    /// Average power, mW (0 on failure).
    pub power_mw: f64,
    /// Total energy, µJ (0 on failure).
    pub energy_uj: f64,
    /// Fingerprint of the system configuration (joins rows to configs).
    /// Single-cluster fingerprints keep the historical cluster-only form;
    /// multi-cluster configurations hash in the cluster count, so every
    /// `/cN`/`/xN` grid cell gets its own `config` column value.
    pub config_fingerprint: u64,
    /// Full counter set of the run (absent on failure).
    pub stats: Option<Stats>,
    /// The recorded event trace, when the job requested one
    /// ([`JobSpec::traced`]). Never serialized into the JSON-lines/CSV
    /// sinks — render it with `snitch_trace::{chrome, text}`.
    pub trace: Option<Vec<TraceEvent>>,
    /// The finished cycle profile, when the job requested one
    /// ([`JobSpec::profiled`]). Like `trace`, never serialized into the
    /// JSON-lines/CSV sinks — render it with `snitch_profile`'s sinks.
    pub profile: Option<snitch_profile::Profiler>,
    /// Cycles the simulator spent on its block-compiled burst path (host
    /// observability, see `Cluster::block_replayed_cycles`). Like `trace`,
    /// never serialized: it describes the simulator run, not the simulated
    /// machine, and would break byte-identical sweep output across hosts.
    pub block_replayed_cycles: u64,
    /// Static-verifier findings for the job's program (shared across every
    /// job built from the same cached program). Like `trace`, never
    /// serialized into the line sinks — render with `snitch_verify::report`.
    pub diagnostics: std::sync::Arc<Vec<snitch_verify::Diagnostic>>,
}

impl RunRecord {
    /// Record for a validated run.
    #[must_use]
    pub fn success(job: JobSpec, outcome: &RunOutcome) -> Self {
        let fingerprint = job.config.fingerprint();
        RunRecord {
            job,
            ok: true,
            error: None,
            cycles: outcome.stats.cycles,
            instructions: outcome.stats.instructions(),
            ipc: outcome.stats.ipc(),
            power_mw: outcome.power_mw,
            energy_uj: outcome.energy_uj,
            config_fingerprint: fingerprint,
            stats: Some(outcome.stats.clone()),
            trace: None,
            profile: None,
            block_replayed_cycles: 0,
            diagnostics: std::sync::Arc::new(Vec::new()),
        }
    }

    /// Attaches a recorded event trace.
    #[must_use]
    pub fn with_trace(mut self, events: Vec<TraceEvent>) -> Self {
        self.trace = Some(events);
        self
    }

    /// Attaches a finished cycle profile.
    #[must_use]
    pub fn with_profile(mut self, profile: snitch_profile::Profiler) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Record for a failed (fault/timeout/mismatch) run.
    #[must_use]
    pub fn failure(job: JobSpec, error: String) -> Self {
        let fingerprint = job.config.fingerprint();
        RunRecord {
            job,
            ok: false,
            error: Some(error),
            cycles: 0,
            instructions: 0,
            ipc: 0.0,
            power_mw: 0.0,
            energy_uj: 0.0,
            config_fingerprint: fingerprint,
            stats: None,
            trace: None,
            profile: None,
            block_replayed_cycles: 0,
            diagnostics: std::sync::Arc::new(Vec::new()),
        }
    }

    /// Sum of all integer-core stall cycles (0 on failure).
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stats.as_ref().map_or(0, |s| {
            s.stall_int_raw
                + s.stall_wb_port
                + s.stall_offload_full
                + s.stall_fp_pending
                + s.stall_ssr_cfg
                + s.stall_fence
                + s.stall_branch
                + s.stall_tcdm_conflict
                + s.stall_store_order
        })
    }

    /// One JSON object on a single line (JSON-lines form).
    #[must_use]
    pub fn json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"kernel\":{},\"variant\":{},\"n\":{},\"block\":{},\"config\":\"{:016x}\",\"ok\":{}",
            json_str(self.job.kernel.name()),
            json_str(self.job.variant.name()),
            self.job.n,
            self.job.block,
            self.config_fingerprint,
            self.ok,
        );
        if let Some(e) = &self.error {
            let _ = write!(s, ",\"error\":{}", json_str(e));
        }
        let _ = write!(
            s,
            ",\"cycles\":{},\"instructions\":{},\"ipc\":{:?},\"power_mw\":{:?},\"energy_uj\":{:?}",
            self.cycles, self.instructions, self.ipc, self.power_mw, self.energy_uj,
        );
        if let Some(st) = &self.stats {
            let _ = write!(
                s,
                ",\"stats\":{{\"int_issued\":{},\"fp_issued_core\":{},\"fp_issued_seq\":{},\
                 \"stall_cycles\":{},\"stall_wb_port\":{},\"stall_branch\":{},\
                 \"stall_offload_full\":{},\"stall_fp_pending\":{},\"l0_hits\":{},\
                 \"l0_misses\":{},\"tcdm_conflicts\":{},\"ssr_beats\":{},\"dma_beats\":{}}}",
                st.int_issued,
                st.fp_issued_core,
                st.fp_issued_seq,
                self.stall_cycles(),
                st.stall_wb_port,
                st.stall_branch,
                st.stall_offload_full,
                st.stall_fp_pending,
                st.l0_hits,
                st.l0_misses,
                st.tcdm_conflicts,
                st.ssr_beats.iter().sum::<u64>(),
                st.dma_beats,
            );
        }
        s.push('}');
        s
    }

    /// The CSV header matching [`csv_row`](Self::csv_row).
    #[must_use]
    pub fn csv_header() -> &'static str {
        "kernel,variant,n,block,config,ok,cycles,instructions,ipc,power_mw,energy_uj,stall_cycles"
    }

    /// One CSV row.
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:016x},{},{},{},{:?},{:?},{:?},{}",
            self.job.kernel.name(),
            self.job.variant.name(),
            self.job.n,
            self.job.block,
            self.config_fingerprint,
            self.ok,
            self.cycles,
            self.instructions,
            self.ipc,
            self.power_mw,
            self.energy_uj,
            self.stall_cycles(),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_kernels::registry::{Kernel, Variant};

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn failure_record_serializes_with_error() {
        let job = JobSpec::new(Kernel::PiLcg, Variant::Baseline, 64, 0);
        let r = RunRecord::failure(job, "simulation failed: watchdog".to_string());
        let line = r.json_line();
        assert!(line.contains("\"ok\":false"));
        assert!(line.contains("\"error\":\"simulation failed: watchdog\""));
        assert!(!line.contains("\"stats\""));
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}
