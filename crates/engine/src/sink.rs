//! Result sinks: stream a batch of records to JSON-lines or CSV.
//!
//! Output is written in job order (the order of the batch passed to the
//! executor), which the engine guarantees is independent of worker
//! scheduling — so a sweep's files are byte-identical across worker counts.
//!
//! Rows identify their job by the `kernel`, `variant`, `n` and `block`
//! columns plus the `config` fingerprint, which separates grid shapes: jobs
//! whose labels carry the `/cN` (cores) or `/xN` (clusters) suffix carry a
//! distinct fingerprint per shape, while plain single-core, single-cluster
//! rows keep the historical fingerprint bytes.

use std::io::{self, Write};

use crate::record::RunRecord;

/// Writes one JSON object per line.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(records: &[RunRecord], w: &mut W) -> io::Result<()> {
    for r in records {
        writeln!(w, "{}", r.json_line())?;
    }
    Ok(())
}

/// Renders a whole batch as one JSON-lines string.
#[must_use]
pub fn to_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.json_line());
        out.push('\n');
    }
    out
}

/// Writes a CSV table with a header row.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_csv<W: Write>(records: &[RunRecord], w: &mut W) -> io::Result<()> {
    writeln!(w, "{}", RunRecord::csv_header())?;
    for r in records {
        writeln!(w, "{}", r.csv_row())?;
    }
    Ok(())
}

/// Renders a whole batch as one CSV string (with header).
#[must_use]
pub fn to_csv(records: &[RunRecord]) -> String {
    let mut out = String::from(RunRecord::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    out
}
