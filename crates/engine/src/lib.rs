//! # snitch-engine — parallel, batched experiment execution
//!
//! The COPIFT experiment drivers (`fig2`, `fig3`, `table1`, `experiments`,
//! `ablations`) all reduce to the same shape of work: expand a matrix of
//! `Kernel × Variant × problem size × ClusterConfig` into jobs, simulate
//! every job, and aggregate structured results. This crate is that execution
//! layer, factored out once:
//!
//! * [`job::JobSpec`] — one simulation job, plus grid/sweep constructors
//!   ([`JobSpec::grid`], [`job::figure2`], [`job::figure3`],
//!   [`job::config_sweep`]) that expand experiment matrices in a
//!   deterministic order;
//! * [`cache::ProgramCache`] — a keyed cache of compiled [`Program`]s so
//!   each `(kernel, variant, n, block)` assembles exactly once per sweep,
//!   shared across worker threads via `Arc`;
//! * [`executor::Engine`] — a scoped-thread worker pool that runs each job
//!   in its own (reused) `Cluster` and returns results **in job order**,
//!   independent of worker scheduling;
//! * [`record::RunRecord`] + [`sink`] — per-job results (cycles, IPC,
//!   stalls, power/energy, validation status, config fingerprint) serialized
//!   as JSON-lines and CSV, byte-identical for any worker count;
//! * tracing — [`JobSpec::traced`] opts a job into a cycle-accurate
//!   `snitch-trace` event trace carried on [`RunRecord::trace`] (same
//!   compiled program, bit-identical simulation, identical sink rows); the
//!   `trace` binary is the CLI entry point.
//!
//! [`Program`]: snitch_asm::program::Program
//!
//! # Example
//!
//! ```
//! use snitch_engine::{job, Engine};
//!
//! // pi_lcg, both variants, two problem sizes: 4 jobs.
//! let jobs = job::grid(
//!     &[snitch_kernels::Kernel::PiLcg],
//!     &snitch_kernels::Variant::all(),
//!     &[(64, 32), (128, 32)],
//! );
//! let records = Engine::new(2).run(&jobs);
//! assert_eq!(records.len(), 4);
//! assert!(records.iter().all(|r| r.ok));
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod executor;
pub mod job;
pub mod record;
pub mod sink;

pub use cache::{ProgramCache, ProgramKey};
pub use executor::Engine;
pub use job::JobSpec;
pub use record::RunRecord;
