//! The parallel executor: a scoped-thread worker pool over a job batch.
//!
//! Workers pull jobs from a shared atomic cursor, so load-balancing is
//! dynamic, but each result lands in the slot of its job index — the
//! returned `Vec<RunRecord>` is always in batch order regardless of how the
//! OS schedules the workers. Each worker keeps one `System` alive and
//! [`reset`](snitch_sim::system::System::reset)s it between jobs with the
//! same configuration, reusing the multi-MiB memory allocations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use snitch_sim::system::System;
use snitch_telemetry::{Phase, Telemetry, MAIN_WORKER};

use crate::cache::ProgramCache;
use crate::job::JobSpec;
use crate::record::RunRecord;

/// Batched experiment executor.
#[derive(Debug)]
pub struct Engine {
    workers: usize,
    cache: ProgramCache,
    allow_invalid: bool,
}

impl Default for Engine {
    /// An engine with one worker per available hardware thread.
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Engine::new(workers)
    }
}

impl Engine {
    /// An engine with a fixed worker count, clamped to at least 1 and to at
    /// most the host's available parallelism. Simulation workers are pure
    /// CPU burners, so a pool wider than the hardware only adds context
    /// switching and scales *backwards*; the run itself further caps the
    /// pool at the batch size, since an idle worker thread is pure spawn
    /// cost.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let cap = std::thread::available_parallelism().map_or(usize::MAX, std::num::NonZero::get);
        Engine {
            workers: workers.clamp(1, cap.max(1)),
            cache: ProgramCache::new(),
            allow_invalid: false,
        }
    }

    /// Lets jobs whose program fails static verification run anyway (the
    /// `--allow-invalid` escape hatch). Diagnostics are still collected and
    /// attached to the records; only the fail-the-job behaviour is off.
    #[must_use]
    pub fn allow_invalid(mut self, allow: bool) -> Self {
        self.allow_invalid = allow;
        self
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The program cache (counters survive across batches, so several
    /// batches run through one engine share compiled programs).
    #[must_use]
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// Runs every job in `jobs` and returns one record per job, **in job
    /// order**. Simulation failures and validation mismatches are captured
    /// in the records (`ok = false`), never panicked, so one bad
    /// configuration cannot take down a sweep.
    #[must_use]
    pub fn run(&self, jobs: &[JobSpec]) -> Vec<RunRecord> {
        self.run_with(jobs, &Telemetry::off())
    }

    /// [`run`](Self::run) with host telemetry: phase spans (cache lookup,
    /// cluster warm-up, reset, simulation, collection) land in `telemetry`
    /// along with the batch progress counters. `run` delegates here with a
    /// disabled handle, so there is exactly one execution path and a
    /// disabled hook costs one `Option` branch. Telemetry never influences
    /// scheduling, cache keys or records — results are byte-identical with
    /// it on, off, and at any worker count.
    #[must_use]
    pub fn run_with(&self, jobs: &[JobSpec], telemetry: &Telemetry) -> Vec<RunRecord> {
        telemetry.begin_batch(jobs.len() as u64);
        let slots: Vec<OnceLock<RunRecord>> = jobs.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.workers.min(jobs.len()).max(1);
        std::thread::scope(|s| {
            for w in 0..workers {
                let tel = telemetry.clone();
                let (slots, cursor) = (&slots, &cursor);
                s.spawn(move || {
                    let worker = u32::try_from(w).unwrap_or(u32::MAX - 1);
                    // One system per worker, rebuilt only on config change.
                    let mut system: Option<System> = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        tel.job_started();
                        // An illegal spec panics in Kernel::build (size
                        // asserts); contain it to this job's record so one
                        // bad spec cannot abort the whole sweep.
                        let record = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            self.exec(job, &mut system, worker, i as u32, &tel)
                        }))
                        .unwrap_or_else(|panic| {
                            // A panicked run leaves the system in an
                            // unknown state; drop it.
                            system = None;
                            RunRecord::failure(job.clone(), panic_message(panic.as_ref()))
                        });
                        slots[i].set(record).expect("each job index is claimed once");
                        tel.job_done();
                    }
                });
            }
        });
        // The scope exit above is the result barrier; assembling the ordered
        // vector afterwards is the collection phase.
        telemetry.time(MAIN_WORKER, None, Phase::Collect, || {
            slots.into_iter().map(|s| s.into_inner().expect("every job slot is filled")).collect()
        })
    }

    /// Runs one job, reusing `system` when its configuration matches.
    fn exec(
        &self,
        job: &JobSpec,
        system: &mut Option<System>,
        worker: u32,
        index: u32,
        tel: &Telemetry,
    ) -> RunRecord {
        let job_id = Some(index);
        let t0 = tel.start();
        let (program, hit) = self.cache.get_with_status(job.program_key());
        tel.finish(t0, worker, job_id, if hit { Phase::CacheHit } else { Phase::Compile });
        // Static verification, cached alongside the program: hard errors
        // fail the job before it ever reaches a cluster (unless the engine
        // was built with `allow_invalid`).
        let t0 = tel.start();
        let (diagnostics, verified_now) =
            self.cache.diagnostics_for(job.program_key(), &program, &job.config);
        if verified_now {
            tel.finish(t0, worker, job_id, Phase::Verify);
        }
        if snitch_verify::has_errors(&diagnostics) && !self.allow_invalid {
            let failed: Vec<&str> = {
                let mut ids: Vec<&str> = diagnostics
                    .iter()
                    .filter(|d| d.severity == snitch_verify::Severity::Error)
                    .map(|d| d.check.name())
                    .collect();
                ids.dedup();
                ids
            };
            let mut record = RunRecord::failure(
                job.clone(),
                format!(
                    "program failed static verification ({} error(s): {})",
                    snitch_verify::error_count(&diagnostics),
                    failed.join(", ")
                ),
            );
            record.diagnostics = diagnostics;
            return record;
        }
        let reusable = system.as_ref().is_some_and(|s| *s.config() == job.config);
        if !reusable {
            let built = tel.time(worker, job_id, Phase::Warm, || System::new(job.config.clone()));
            *system = Some(built);
        }
        let system = system.as_mut().expect("system was just ensured");
        tel.time(worker, job_id, Phase::Reset, || system.reset());
        let t0 = tel.start();
        let result = job.kernel.run_loaded(system, job.variant, job.n, &program);
        tel.finish(t0, worker, job_id, Phase::Simulate);
        let mut record = match result {
            Ok(outcome) => {
                let mut record = RunRecord::success(job.clone(), &outcome);
                record.block_replayed_cycles = system.block_replayed_cycles();
                if job.trace() {
                    // The reset just above ran before the load, so the
                    // attached tracer holds exactly this job's events.
                    let events = system.trace_events().unwrap_or_default().to_vec();
                    record = record.with_trace(events);
                }
                if job.profile() {
                    if let Some(profile) = system.profile() {
                        record = record.with_profile(profile.clone());
                    }
                }
                record
            }
            Err(e) => RunRecord::failure(job.clone(), e.to_string()),
        };
        record.diagnostics = diagnostics;
        record
    }
}

/// Extracts the human-readable message from a caught panic payload. The
/// caller must pass the payload itself (`Box::as_ref`), not a reference to
/// the `Box` — the latter would coerce the box into a second `dyn Any` layer
/// and defeat the downcasts.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    let msg = panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    format!("illegal job spec: {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job;
    use snitch_kernels::registry::{Kernel, Variant};
    use snitch_sim::config::ClusterConfig;

    #[test]
    fn results_arrive_in_job_order() {
        // Mix job sizes so completion order differs from submission order.
        let jobs = vec![
            JobSpec::new(Kernel::PiLcg, Variant::Baseline, 256, 0),
            JobSpec::new(Kernel::PiLcg, Variant::Baseline, 16, 0),
            JobSpec::new(Kernel::PiLcg, Variant::Copift, 128, 32),
            JobSpec::new(Kernel::PiLcg, Variant::Baseline, 64, 0),
        ];
        let records = Engine::new(4).run(&jobs);
        assert_eq!(records.len(), 4);
        for (r, j) in records.iter().zip(&jobs) {
            assert_eq!(r.job, *j, "record order must match job order");
            assert!(r.ok, "{} must validate", j.label());
        }
    }

    #[test]
    fn worker_pool_is_clamped_to_host_parallelism() {
        let hw = std::thread::available_parallelism().map_or(usize::MAX, std::num::NonZero::get);
        assert_eq!(Engine::new(0).workers(), 1, "zero workers clamps up to one");
        assert!(
            Engine::new(usize::MAX).workers() <= hw,
            "an oversubscribed pool must clamp down to the hardware threads"
        );
        assert_eq!(Engine::default().workers(), Engine::new(usize::MAX).workers());
    }

    #[test]
    fn failures_are_recorded_not_panicked() {
        // A one-cycle watchdog guarantees a timeout.
        let strangled = ClusterConfig { max_cycles: 1, ..ClusterConfig::default() };
        let jobs = vec![
            JobSpec::new(Kernel::PiLcg, Variant::Baseline, 64, 0),
            JobSpec::new(Kernel::PiLcg, Variant::Baseline, 64, 0).with_config(strangled),
        ];
        let records = Engine::new(2).run(&jobs);
        assert!(records[0].ok);
        assert!(!records[1].ok);
        assert!(records[1].error.as_deref().unwrap_or("").contains("simulation failed"));
    }

    #[test]
    fn illegal_spec_is_recorded_not_fatal() {
        // block 3 violates the MC COPIFT block constraints and panics in
        // Kernel::build; the sweep must survive and the other jobs succeed.
        let jobs = vec![
            JobSpec::new(Kernel::PiLcg, Variant::Baseline, 64, 0),
            JobSpec::new(Kernel::PiLcg, Variant::Copift, 64, 3),
            JobSpec::new(Kernel::PiLcg, Variant::Copift, 64, 32),
        ];
        let records = Engine::new(2).run(&jobs);
        assert!(records[0].ok);
        assert!(!records[1].ok);
        let error = records[1].error.as_deref().unwrap_or("");
        assert!(error.starts_with("illegal job spec:"), "got {error:?}");
        assert!(error.contains("block"), "the kernel's assert message must survive: {error:?}");
        assert!(records[2].ok, "jobs after the bad spec still run");
    }

    #[test]
    fn config_sweep_builds_each_program_once() {
        let base = JobSpec::new(Kernel::PiLcg, Variant::Baseline, 64, 0);
        let configs: Vec<ClusterConfig> = (1..=4)
            .map(|p| ClusterConfig { int_wb_ports: p, ..ClusterConfig::default() })
            .collect();
        let jobs = job::config_sweep(&base, &configs);
        let engine = Engine::new(2);
        let records = engine.run(&jobs);
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.ok));
        assert_eq!(engine.cache().misses(), 1, "one program serves all configs");
        assert_eq!(engine.cache().hits(), 3);
        // More write-back ports never hurt.
        assert!(records[1].cycles <= records[0].cycles);
    }
}
