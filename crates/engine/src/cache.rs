//! Keyed cache of compiled programs.
//!
//! A sweep typically runs the same program under many configurations (and a
//! steady-state measurement runs each program at two sizes); assembling a
//! kernel is pure, so the cache keys on exactly the inputs of
//! [`Kernel::build`] and shares the result across worker threads via `Arc`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use snitch_asm::program::Program;
use snitch_kernels::registry::{Kernel, Variant};

/// Cache key: the full input domain of [`Kernel::build_grid`]. The timing
/// configuration is deliberately absent — it affects cycles, never code —
/// with two exceptions: the core count, which data-parallel workloads bake
/// into their programs (per-hart seed tables, buffer strides, reduction
/// fan-in), and the cluster count, which tiled workloads bake into their
/// DMA descriptors and row ownership — so programs built for different
/// grid shapes can never collide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProgramKey {
    /// Workload.
    pub kernel: Kernel,
    /// Code variant.
    pub variant: Variant,
    /// Problem size.
    pub n: usize,
    /// Block size.
    pub block: usize,
    /// Compute cores per cluster the program is built for.
    pub cores: usize,
    /// Clusters the program is built for.
    pub clusters: usize,
}

/// Thread-safe compiled-program cache.
///
/// Builds happen outside the map lock, so a slow assembly never blocks
/// unrelated lookups; if two workers race on the same key, the first insert
/// wins and every later [`get`](Self::get) returns that same `Arc`.
#[derive(Default, Debug)]
pub struct ProgramCache {
    map: Mutex<HashMap<ProgramKey, Arc<Program>>>,
    diags: Mutex<HashMap<ProgramKey, Arc<Vec<snitch_verify::Diagnostic>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the compiled program for `key`, assembling it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the kernel's size constraints reject `(n, block)` — exactly
    /// as [`Kernel::build`] does.
    #[must_use]
    pub fn get(&self, key: ProgramKey) -> Arc<Program> {
        self.get_with_status(key).0
    }

    /// Like [`get`](Self::get), but also reports whether the lookup was a
    /// hit (`true`) or assembled the program (`false`) — the engine's
    /// telemetry uses this to attribute the lookup time to the right phase
    /// without re-deriving it from the counters (which other workers mutate
    /// concurrently).
    ///
    /// # Panics
    ///
    /// Panics if the kernel's size constraints reject `(n, block)` — exactly
    /// as [`Kernel::build`] does.
    #[must_use]
    pub fn get_with_status(&self, key: ProgramKey) -> (Arc<Program>, bool) {
        if let Some(p) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(p), true);
        }
        // Miss: assemble outside the lock, then re-check — another worker
        // may have inserted while we were building. The counters stay
        // exact: hits + misses == lookups and misses == distinct programs,
        // regardless of races (a lost race counts as a hit).
        let program =
            Arc::new(key.kernel.build_grid(key.variant, key.n, key.block, key.cores, key.clusters));
        match self.map.lock().unwrap().entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(e.get()), true)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(v.insert(program)), false)
            }
        }
    }

    /// Returns the static-verifier diagnostics for `key`'s program,
    /// verifying it on first use (cached alongside the program — a sweep
    /// of many configurations over one program verifies it once). The
    /// `bool` reports whether this call ran the verifier (`true`) so the
    /// caller can attribute the time to the `Verify` telemetry phase.
    ///
    /// Verification keys on the program, but needs the grid shape from
    /// `config` (barrier consistency is a cross-hart property; memory-map
    /// bounds depend on the instantiated cluster count); the key already
    /// pins `cores` and `clusters`, so the cache stays coherent.
    #[must_use]
    pub fn diagnostics_for(
        &self,
        key: ProgramKey,
        program: &Program,
        config: &snitch_sim::config::SystemConfig,
    ) -> (Arc<Vec<snitch_verify::Diagnostic>>, bool) {
        if let Some(d) = self.diags.lock().unwrap().get(&key) {
            return (Arc::clone(d), false);
        }
        // Verify outside the lock (same discipline as program builds).
        let diags = Arc::new(snitch_verify::verify(program, config));
        match self.diags.lock().unwrap().entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), true),
            std::collections::hash_map::Entry::Vacant(v) => (Arc::clone(v.insert(diags)), true),
        }
    }

    /// Number of lookups served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that assembled a program.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct programs held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_keys_share_one_program() {
        let cache = ProgramCache::new();
        let key = ProgramKey {
            kernel: Kernel::PiLcg,
            variant: Variant::Baseline,
            n: 64,
            block: 0,
            cores: 1,
            clusters: 1,
        };
        let a = cache.get(key);
        let b = cache.get(key);
        assert!(Arc::ptr_eq(&a, &b), "duplicate specs must return the same program");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_programs() {
        let cache = ProgramCache::new();
        let a = cache.get(ProgramKey {
            kernel: Kernel::PiLcg,
            variant: Variant::Baseline,
            n: 64,
            block: 0,
            cores: 1,
            clusters: 1,
        });
        let b = cache.get(ProgramKey {
            kernel: Kernel::PiLcg,
            variant: Variant::Baseline,
            n: 128,
            block: 0,
            cores: 1,
            clusters: 1,
        });
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn core_counts_never_share_a_program() {
        // A data-parallel kernel's code depends on the cluster size; the
        // key must keep 1- and 8-core programs apart.
        let cache = ProgramCache::new();
        let base = ProgramKey {
            kernel: Kernel::PiLcgPar,
            variant: Variant::Copift,
            n: 512,
            block: 32,
            cores: 1,
            clusters: 1,
        };
        let single = cache.get(base);
        let octa = cache.get(ProgramKey { cores: 8, ..base });
        assert!(!Arc::ptr_eq(&single, &octa));
        assert!(octa.parallel() && single.parallel());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cluster_counts_never_share_a_program() {
        // A tiled kernel's code depends on the cluster count (DMA strides,
        // row ownership); the key must keep 1- and 4-cluster programs apart.
        let cache = ProgramCache::new();
        let base = ProgramKey {
            kernel: Kernel::GemmTiled,
            variant: Variant::Copift,
            n: 32,
            block: 0,
            cores: 1,
            clusters: 1,
        };
        let single = cache.get(base);
        let quad = cache.get(ProgramKey { clusters: 4, ..base });
        assert!(!Arc::ptr_eq(&single, &quad));
        assert_eq!(cache.misses(), 2);
    }
}
