//! `perf-report` — profile the engine's own scaling and diagnose where the
//! multi-worker speedup goes.
//!
//! ```text
//! perf-report                         # profile smoke grid at 1/4/8 workers
//! perf-report --markdown              # emit the EXPERIMENTS.md section
//! perf-report --metrics METRICS.json --chrome host.trace.json
//! perf-report --overhead-guard       # enforce telemetry overhead < 2%
//! perf-report --validate METRICS.json # schema-check an existing file
//! ```
//!
//! Each worker count runs the same smoke batch through
//! [`Engine::run_with`] with telemetry enabled; the span log becomes a
//! phase-attribution [`Report`] (compile/warm/reset/simulate/collect/sink
//! plus the startup/gap/barrier idle split), and the per-count throughputs
//! become `scaling` metric lines. The diagnosis compares the base and worst
//! runs bucket by bucket and names the dominant cause of the lost speedup.

use std::process::ExitCode;
use std::time::Instant;

use snitch_engine::{job, Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_profile::{regions, RegionMap, StallCause};
use snitch_telemetry::{chrome, metrics, Phase, Report, Telemetry};

const USAGE: &str = "\
usage: perf-report [OPTIONS]

Profiles the engine on the smoke job grid across worker counts and
diagnoses host-side scaling: phase attribution, idle split, throughput
ratios, and the dominant cause of any lost speedup.

Options:
  --workers LIST    worker counts to profile (default: 1,4,8)
  --metrics PATH    write METRICS.json lines for every profiled count
  --chrome PATH     write a Chrome/Perfetto trace of the last profiled run
  --markdown        emit the diagnosis as a markdown section on stdout
  --overhead-guard  also verify telemetry overhead stays under 2%
  --validate PATH   validate an existing METRICS.json file and exit
";

/// One profiled batch: worker count, measured wall time, throughput in
/// simulated cycles per host second, and the span attribution.
struct Profile {
    workers: usize,
    wall_ns: u64,
    cycles: u64,
    /// Cycles the simulator executed on its block-compiled burst path.
    replayed: u64,
    report: Report,
}

impl Profile {
    fn cps(&self) -> f64 {
        self.cycles as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Fraction of simulated cycles served by the block-compiled burst.
    fn burst_frac(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.replayed as f64 / self.cycles as f64
        }
    }
}

struct Args {
    workers: Vec<usize>,
    metrics: Option<String>,
    chrome: Option<String>,
    markdown: bool,
    overhead_guard: bool,
    validate: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workers: vec![1, 4, 8],
        metrics: None,
        chrome: None,
        markdown: false,
        overhead_guard: false,
        validate: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--workers" => {
                args.workers = value_of("--workers")?
                    .split(',')
                    .map(|v| v.trim().parse().map_err(|_| format!("--workers: bad value `{v}`")))
                    .collect::<Result<_, _>>()?;
                if args.workers.is_empty() || args.workers.contains(&0) {
                    return Err("--workers: counts must be positive".to_string());
                }
            }
            "--metrics" => args.metrics = Some(value_of("--metrics")?),
            "--chrome" => args.chrome = Some(value_of("--chrome")?),
            "--markdown" => args.markdown = true,
            "--overhead-guard" => args.overhead_guard = true,
            "--validate" => args.validate = Some(value_of("--validate")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Runs the batch once at `workers` with telemetry on, returning the
/// attribution profile. Each run uses a fresh engine, so the program-cache
/// compile cost is part of the profile — exactly what a cold sweep pays.
/// The profile records the engine's *actual* pool width, which may be
/// smaller than `workers`: the engine clamps to the host's parallelism.
fn profile(jobs: &[JobSpec], workers: usize) -> Profile {
    let engine = Engine::new(workers);
    let tel = Telemetry::new();
    let t0 = Instant::now();
    let records = engine.run_with(jobs, &tel);
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let cycles = records.iter().map(|r| r.cycles).sum();
    let replayed = records.iter().map(|r| r.block_replayed_cycles).sum();
    let workers = engine.workers();
    Profile { workers, wall_ns, cycles, replayed, report: Report::new(&tel.spans(), wall_ns) }
}

/// The "where did the speedup go" comparison of the base profile and the
/// worst-scaling profile: per-bucket worker-time ledger, largest first,
/// closing with the dominant cause.
fn diagnose(base: &Profile, worst: &Profile) -> Vec<String> {
    let ratio = worst.cps() / base.cps();
    let ms = |ns: u64| ns as f64 / 1e6;
    // Worker-time ledger of the worst run, against the base run's busy time
    // as the "useful work" yardstick (the job set is identical).
    let pool = worst.report.workers.len().max(1) as u64;
    let budget_ns = worst.wall_ns * pool;
    let sim_base = base.report.phase_total(Phase::Simulate);
    let sim_worst = worst.report.phase_total(Phase::Simulate);
    let buckets: Vec<(String, u64)> = vec![
        (
            format!(
                "simulation inflation (simulate span total grew {:.2}ms -> {:.2}ms for the \
                 same jobs: concurrent clusters contend for host memory bandwidth/caches)",
                ms(sim_base),
                ms(sim_worst)
            ),
            sim_worst.saturating_sub(sim_base),
        ),
        (
            "program assembly (compile + cache lookups)".to_string(),
            worst.report.phase_total(Phase::Compile) + worst.report.phase_total(Phase::CacheHit),
        ),
        ("cluster construction (warm)".to_string(), worst.report.phase_total(Phase::Warm)),
        ("cluster reset".to_string(), worst.report.phase_total(Phase::Reset)),
        (
            "worker startup skew (thread spawn to first span)".to_string(),
            worst.report.workers.iter().map(snitch_telemetry::WorkerSummary::startup_ns).sum(),
        ),
        (
            "inter-job gaps (queue/slot handoff)".to_string(),
            worst.report.workers.iter().map(snitch_telemetry::WorkerSummary::gap_ns).sum(),
        ),
        (
            "collection-barrier wait (ran out of jobs early)".to_string(),
            worst.report.workers.iter().map(snitch_telemetry::WorkerSummary::barrier_ns).sum(),
        ),
    ];
    let mut ranked: Vec<&(String, u64)> = buckets.iter().collect();
    ranked.sort_by_key(|(_, ns)| std::cmp::Reverse(*ns));
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut lines = vec![format!(
        "workers {} -> {}: throughput {:.2}M -> {:.2}M cycles/s (ratio {ratio:.2}, ideal {}.00)",
        base.workers,
        worst.workers,
        base.cps() / 1e6,
        worst.cps() / 1e6,
        worst.workers
    )];
    if worst.workers > hw {
        lines.push(format!(
            "host parallelism: {hw} hardware thread(s) — a {}-worker pool oversubscribes the \
             host, so every bucket below is inflated by timesharing; no pool larger than {hw} \
             can win here",
            worst.workers
        ));
    }
    lines.push(format!(
        "worker-time budget at {} workers: {:.2}ms ({} x {:.2}ms wall); the same jobs took \
         {:.2}ms of simulate time at {} worker(s)",
        worst.workers,
        ms(budget_ns),
        pool,
        ms(worst.wall_ns),
        ms(sim_base),
        base.workers
    ));
    for (label, ns) in &ranked {
        if *ns > 0 {
            lines.push(format!(
                "  {:>6.1}% of budget  {:>9.2}ms  {label}",
                100.0 * *ns as f64 / budget_ns as f64,
                ms(*ns)
            ));
        }
    }
    if let Some((label, ns)) = ranked.first() {
        lines.push(format!(
            "dominant cause: {label} ({:.2}ms, {:.1}% of the worker-time budget)",
            ms(*ns),
            100.0 * *ns as f64 / budget_ns as f64
        ));
    }
    lines
}

/// Measures telemetry overhead: the smoke batch through one warmed engine,
/// disabled vs enabled handles interleaved, min-of-repeats, with re-measure
/// attempts (the `bench_sim` guard recipe). Returns `(off_ns, on_ns)` of the
/// passing attempt.
fn overhead_guard(jobs: &[JobSpec]) -> Result<(u64, u64), (u64, u64)> {
    const REPEATS: usize = 5;
    const ATTEMPTS: usize = 3;
    const TOLERANCE: f64 = 1.02;
    let engine = Engine::new(1);
    let _warm = engine.run(jobs); // compile programs, fault in allocations
    let time = |tel: &Telemetry| -> u64 {
        let t0 = Instant::now();
        let records = engine.run_with(jobs, tel);
        assert!(records.iter().all(|r| r.ok), "guard batch must validate");
        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    };
    let mut last = (0, 0);
    for _ in 0..ATTEMPTS {
        let mut off = u64::MAX;
        let mut on = u64::MAX;
        for _ in 0..REPEATS {
            off = off.min(time(&Telemetry::off()));
            let tel = Telemetry::new();
            on = on.min(time(&tel));
        }
        last = (off, on);
        if on as f64 <= off as f64 * TOLERANCE {
            return Ok(last);
        }
    }
    Err(last)
}

/// The guest-side counterpart of the host attribution: one representative
/// COPIFT job run with the cycle profiler, reduced to per-region markdown
/// rows (`| region | core | issue | stall | frep | dominant |`). Returns the
/// job label and the rows; a failed run returns an explanatory single row.
fn hot_region_rows() -> (String, Vec<String>) {
    let (kernel, variant) = (Kernel::PolyLcg, Variant::Copift);
    let (n, block) = kernel.operating_point();
    let profiled = JobSpec::new(kernel, variant, n, block).profiled();
    let label = profiled.label();
    let records = Engine::new(1).run(std::slice::from_ref(&profiled));
    let Some(profile) = records[0].profile.as_ref() else {
        let why = records[0].error.clone().unwrap_or_else(|| "no profile".to_string());
        return (label, vec![format!("| (profiling failed: {why}) | | | | | |")]);
    };
    let map = RegionMap::new(&kernel.build_for(variant, n, block, 1));
    let rows = regions(profile, &map)
        .iter()
        .map(|r| {
            let stalled: u64 = StallCause::all().iter().map(|&c| r.stall(c)).sum();
            let dom = r
                .dominant_stall()
                .map_or_else(|| "-".to_string(), |(c, cyc)| format!("{} ({cyc})", c.name()));
            format!(
                "| {} | {} | {} | {} | {} | {dom} |",
                r.name, r.core_cycles, r.issued, stalled, r.seq_cycles
            )
        })
        .collect();
    (label, rows)
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("perf-report: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.validate {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("perf-report: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match metrics::validate(&contents) {
            Ok(n) => {
                println!("perf-report: {path}: {n} valid metric lines");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("perf-report: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let jobs = job::smoke();
    let profiles: Vec<Profile> = args.workers.iter().map(|&w| profile(&jobs, w)).collect();
    let base = &profiles[0];
    let worst =
        profiles.iter().min_by(|a, b| a.cps().total_cmp(&b.cps())).expect("at least one profile");

    let mut metrics_out = String::new();
    for p in &profiles {
        metrics_out.push_str(&metrics::render(p.workers, &p.report));
        metrics_out.push_str(&metrics::render_scaling(
            "smoke",
            base.workers,
            base.cps(),
            p.workers,
            p.cps(),
        ));
        metrics_out.push_str(&metrics::render_burst(p.workers, p.cycles, p.replayed));
    }
    debug_assert!(metrics::validate(&metrics_out).is_ok());

    let diagnosis = diagnose(base, worst);
    if args.markdown {
        println!("### Host scaling diagnosis (perf-report, smoke grid)\n");
        println!(
            "| workers | wall ms | Mcycles/s | vs 1w | simulate ms | warm ms | idle % | burst % |"
        );
        println!("|---:|---:|---:|---:|---:|---:|---:|---:|");
        for p in &profiles {
            println!(
                "| {} | {:.2} | {:.2} | {:.2}x | {:.2} | {:.2} | {:.1} | {:.1} |",
                p.workers,
                p.wall_ns as f64 / 1e6,
                p.cps() / 1e6,
                p.cps() / base.cps(),
                p.report.phase_total(Phase::Simulate) as f64 / 1e6,
                p.report.phase_total(Phase::Warm) as f64 / 1e6,
                100.0 * p.report.idle_frac(),
                100.0 * p.burst_frac(),
            );
        }
        println!();
        println!("```text");
        for line in &diagnosis {
            println!("{line}");
        }
        println!("```");
        let (label, rows) = hot_region_rows();
        println!();
        println!("### Where the simulated cycles go ({label})\n");
        println!("| region | core cycles | issue | stall | frep | dominant stall |");
        println!("|---|---:|---:|---:|---:|---|");
        for row in &rows {
            println!("{row}");
        }
    } else {
        for p in &profiles {
            println!("=== {} worker(s) ===", p.workers);
            print!("{}", p.report.render_text());
            println!(
                "throughput: {:.2}M simulated cycles/s ({:.2}x of {}-worker base), \
                 block-burst engagement {:.1}%\n",
                p.cps() / 1e6,
                p.cps() / base.cps(),
                base.workers,
                100.0 * p.burst_frac(),
            );
        }
        println!("--- scaling diagnosis ---");
        for line in &diagnosis {
            println!("{line}");
        }
        let (label, rows) = hot_region_rows();
        println!("--- hot regions ({label}) ---");
        println!("| region | core cycles | issue | stall | frep | dominant stall |");
        for row in &rows {
            println!("{row}");
        }
    }

    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, &metrics_out) {
            eprintln!("perf-report: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.chrome {
        // The last profiled count's span log (at the default 1,4,8 that is
        // the 8-worker run — the interesting one).
        let last = profiles.last().expect("at least one profile");
        let spans = last.report.spans();
        if let Err(e) = std::fs::write(path, chrome::render(spans)) {
            eprintln!("perf-report: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Static-verification overhead guard, always on. Each profiled batch
    // runs a fresh engine and so re-verifies cold, but a real sweep (many
    // seeds and configs per program, one engine) pays verification once per
    // distinct program and serves cached diagnostics after that. The guard
    // therefore charges ONE cold verification pass (the base profile's)
    // against the whole profiled run's wall time — the overhead a sweep
    // actually pays. A verify:compile ratio can never be small (verification
    // walks every instruction several times per hart while assembly is a
    // single emit pass), so that ratio is only reported alongside for
    // trend-watching, not gated on.
    let verify_ns: u64 = base.report.phase_total(Phase::Verify);
    let compile_ns = base.report.phase_total(Phase::Compile);
    let total_wall: u64 = profiles.iter().map(|p| p.wall_ns).sum();
    let verify_pct = 100.0 * verify_ns as f64 / total_wall as f64;
    let vs_compile = if compile_ns == 0 { 0.0 } else { verify_ns as f64 / compile_ns as f64 };
    eprintln!(
        "perf-report: verify overhead: {:.3}ms across {:.3}ms of profiled batches \
         ({verify_pct:.2}%, budget 5%; {vs_compile:.1}x the {:.3}ms assembly time)",
        verify_ns as f64 / 1e6,
        total_wall as f64 / 1e6,
        compile_ns as f64 / 1e6,
    );
    if verify_ns * 20 > total_wall {
        eprintln!("perf-report: verify overhead guard FAILED: {verify_pct:.2}% > 5% budget");
        return ExitCode::FAILURE;
    }

    if args.overhead_guard {
        match overhead_guard(&jobs) {
            Ok((off, on)) => eprintln!(
                "perf-report: overhead guard ok: disabled {:.2}ms, enabled {:.2}ms ({:+.2}%)",
                off as f64 / 1e6,
                on as f64 / 1e6,
                100.0 * (on as f64 / off as f64 - 1.0)
            ),
            Err((off, on)) => {
                eprintln!(
                    "perf-report: overhead guard FAILED: disabled {:.2}ms, enabled {:.2}ms \
                     ({:+.2}% > 2% budget)",
                    off as f64 / 1e6,
                    on as f64 / 1e6,
                    100.0 * (on as f64 / off as f64 - 1.0)
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
