//! `profile` — run one kernel with the guest cycle profiler and emit
//! where-the-cycles-go reports: a collapsed-stack flamegraph, an annotated
//! disassembly listing, Perfetto counter tracks over the pc axis, and a
//! terminal hot-pc/region summary.
//!
//! ```text
//! profile --kernel pi_lcg --variant copift --flame flame.txt
//! profile --kernel poly_lcg --n 3072 --block 128 --disasm listing.txt
//! profile --kernel pi_lcg_par --cores 8 --chrome profile.json
//! ```
//!
//! Every file is validated against its format before it is written: the
//! flamegraph against the collapsed-stack grammar, the Perfetto JSON
//! against the trace-event schema.

use std::process::ExitCode;

use snitch_engine::{Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_profile::{disasm, flame, perfetto, RegionMap, StallCause};
use snitch_sim::config::ClusterConfig;
use snitch_trace::chrome;

const USAGE: &str = "\
usage: profile --kernel NAME [OPTIONS]

Options:
  --kernel NAME   cataloged kernel to profile (required; see `sweep --help`)
  --variant V     base or copift (default: copift)
  --n N           problem size (default: the kernel's smoke point)
  --block B       block size (default: the kernel's smoke point)
  --cores N       compute cores to simulate (default: 1)
  --flame PATH    write the collapsed-stack flamegraph (flamegraph.pl,
                  inferno, speedscope)
  --disasm PATH   write the annotated disassembly listing
  --chrome PATH   write Perfetto counter tracks over the pc axis
  --top N         hot pcs to print in the terminal summary (default: 10)
  --quiet         suppress the terminal summary
";

struct Args {
    kernel: Kernel,
    variant: Variant,
    n: Option<usize>,
    block: Option<usize>,
    cores: usize,
    flame: Option<String>,
    disasm: Option<String>,
    chrome: Option<String>,
    top: usize,
    quiet: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut kernel = None;
    let mut variant = Variant::Copift;
    let (mut n, mut block) = (None, None);
    let mut cores = 1usize;
    let (mut flame, mut disasm, mut chrome) = (None, None, None);
    let mut top = 10usize;
    let mut quiet = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--kernel" => {
                let name = value_of("--kernel")?;
                kernel = Some(
                    Kernel::from_name(name).ok_or_else(|| format!("unknown kernel `{name}`"))?,
                );
            }
            "--variant" => {
                let name = value_of("--variant")?;
                variant =
                    Variant::from_name(name).ok_or_else(|| format!("unknown variant `{name}`"))?;
            }
            "--n" => n = Some(value_of("--n")?.parse().map_err(|_| "--n: bad value")?),
            "--block" => {
                block = Some(value_of("--block")?.parse().map_err(|_| "--block: bad value")?);
            }
            "--cores" => {
                cores = value_of("--cores")?.parse().map_err(|_| "--cores: bad value")?;
            }
            "--flame" => flame = Some(value_of("--flame")?.clone()),
            "--disasm" => disasm = Some(value_of("--disasm")?.clone()),
            "--chrome" => chrome = Some(value_of("--chrome")?.clone()),
            "--top" => top = value_of("--top")?.parse().map_err(|_| "--top: bad value")?,
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let kernel = kernel.ok_or("--kernel is required")?;
    Ok(Args { kernel, variant, n, block, cores, flame, disasm, chrome, top, quiet })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("profile: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let (smoke_n, smoke_block) = args.kernel.smoke_point();
    let (n, block) = (args.n.unwrap_or(smoke_n), args.block.unwrap_or(smoke_block));
    let config = ClusterConfig { cores: args.cores, ..ClusterConfig::default() };
    let job = JobSpec::new(args.kernel, args.variant, n, block).with_config(config).profiled();
    let label = job.label();

    let records = Engine::new(1).run(std::slice::from_ref(&job));
    let record = &records[0];
    if !record.ok {
        eprintln!("profile: {label} failed: {}", record.error.as_deref().unwrap_or("unknown"));
        return ExitCode::FAILURE;
    }
    let profile = record.profile.as_ref().expect("profiled job carries a profile");
    let stats = record.stats.as_ref().expect("successful record carries stats");
    // The same program the engine just ran (the cache builds deterministically).
    let program = args.kernel.build_for(args.variant, n, block, args.cores);
    let map = RegionMap::new(&program);

    if let Some(path) = &args.flame {
        let text = flame::render(profile, &map);
        let stacks = match flame::validate(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("profile: internal error: flamegraph fails its grammar: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("profile: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("profile: wrote {path}: {stacks} stacks (collapsed format)");
    }
    if let Some(path) = &args.disasm {
        if let Err(e) = std::fs::write(path, disasm::render(profile, &program)) {
            eprintln!("profile: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("profile: wrote {path}");
    }
    if let Some(path) = &args.chrome {
        let json = perfetto::render(profile, &map);
        let summary = match chrome::validate(&json) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("profile: internal error: emitted JSON fails its schema: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("profile: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "profile: wrote {path}: {} counters, {} region markers — load at ui.perfetto.dev",
            summary.counters, summary.instants
        );
    }

    if !args.quiet {
        println!("{label}: {} cycles, IPC {:.3}", stats.cycles, stats.ipc());
        let hot = snitch_profile::hot_pcs(profile, args.top);
        if !hot.is_empty() {
            println!("hot pcs (top {} by core+frep cycles):", hot.len());
            println!("  address       region        core  issue  stall  frep  cause");
            for r in &hot {
                let idx = ((r.pc - snitch_asm::layout::TEXT_BASE) / 4) as usize;
                let cause = profile
                    .dominant_stall_at(idx)
                    .map_or_else(|| "-".to_string(), |(c, _)| c.name().to_string());
                println!(
                    "  {:#010x} {:<12} {:>7} {:>6} {:>6} {:>5}  {cause}",
                    r.pc,
                    map.region_of(r.pc),
                    r.core_cycles,
                    r.issued,
                    r.stalled,
                    r.seq_cycles,
                );
            }
        }
        let regions = snitch_profile::regions(profile, &map);
        if !regions.is_empty() {
            println!("regions:");
            println!("  name          core cycles   issue   stall    frep  dominant stall");
            for r in &regions {
                let stalled: u64 = StallCause::all().iter().map(|&c| r.stall(c)).sum();
                let dom = r
                    .dominant_stall()
                    .map_or_else(|| "-".to_string(), |(c, n)| format!("{} ({n})", c.name()));
                println!(
                    "  {:<12} {:>11} {:>7} {:>7} {:>7}  {dom}",
                    r.name, r.core_cycles, r.issued, stalled, r.seq_cycles,
                );
            }
        }
    }
    ExitCode::SUCCESS
}
