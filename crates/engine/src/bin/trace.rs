//! `trace` — run one kernel with cycle-accurate tracing and emit its
//! profile: a Perfetto-loadable Chrome trace-event JSON, an optional
//! annotated text trace, and a terminal occupancy/stall summary.
//!
//! ```text
//! trace --kernel pi_lcg --variant copift --out trace.json
//! trace --kernel pi_lcg --variant copift --cores 8 --n 1024 --block 32 --out trace.json
//! trace --kernel exp --variant base --text trace.txt
//! ```
//!
//! The JSON is validated against the trace-event schema before it is
//! written, so a file this tool produces always loads in Perfetto
//! (<https://ui.perfetto.dev>).

use std::process::ExitCode;

use snitch_engine::{Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::ClusterConfig;
use snitch_trace::{chrome, text, Profile, StallCause};

const USAGE: &str = "\
usage: trace --kernel NAME [OPTIONS]

Options:
  --kernel NAME   cataloged kernel to trace (required; see `sweep --help`)
  --variant V     base or copift (default: copift)
  --n N           problem size (default: the kernel's smoke point)
  --block B       block size (default: the kernel's smoke point)
  --cores N       compute cores to simulate (default: 1)
  --out PATH      write Chrome trace-event JSON (Perfetto-loadable)
  --text PATH     write the annotated text trace
  --quiet         suppress the terminal summary
";

struct Args {
    kernel: Kernel,
    variant: Variant,
    n: Option<usize>,
    block: Option<usize>,
    cores: usize,
    out: Option<String>,
    text: Option<String>,
    quiet: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut kernel = None;
    let mut variant = Variant::Copift;
    let (mut n, mut block) = (None, None);
    let mut cores = 1usize;
    let (mut out, mut text) = (None, None);
    let mut quiet = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--kernel" => {
                let name = value_of("--kernel")?;
                kernel = Some(
                    Kernel::from_name(name).ok_or_else(|| format!("unknown kernel `{name}`"))?,
                );
            }
            "--variant" => {
                let name = value_of("--variant")?;
                variant =
                    Variant::from_name(name).ok_or_else(|| format!("unknown variant `{name}`"))?;
            }
            "--n" => n = Some(value_of("--n")?.parse().map_err(|_| "--n: bad value")?),
            "--block" => {
                block = Some(value_of("--block")?.parse().map_err(|_| "--block: bad value")?);
            }
            "--cores" => {
                cores = value_of("--cores")?.parse().map_err(|_| "--cores: bad value")?;
            }
            "--out" => out = Some(value_of("--out")?.clone()),
            "--text" => text = Some(value_of("--text")?.clone()),
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let kernel = kernel.ok_or("--kernel is required")?;
    Ok(Args { kernel, variant, n, block, cores, out, text, quiet })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("trace: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let (smoke_n, smoke_block) = args.kernel.smoke_point();
    let (n, block) = (args.n.unwrap_or(smoke_n), args.block.unwrap_or(smoke_block));
    let config = ClusterConfig { cores: args.cores, ..ClusterConfig::default() };
    let job = JobSpec::new(args.kernel, args.variant, n, block).with_config(config).traced();
    let label = job.label();

    let records = Engine::new(1).run(std::slice::from_ref(&job));
    let record = &records[0];
    if !record.ok {
        eprintln!("trace: {label} failed: {}", record.error.as_deref().unwrap_or("unknown"));
        return ExitCode::FAILURE;
    }
    let events = record.trace.as_deref().expect("traced job carries events");
    let stats = record.stats.as_ref().expect("successful record carries stats");
    let profile = Profile::new(events, stats.cycles);

    if let Some(path) = &args.out {
        let json = chrome::render(events);
        let summary = match chrome::validate(&json) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace: internal error: emitted JSON fails its schema: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("trace: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace: wrote {path}: {} events ({} spans, {} counters) — load at ui.perfetto.dev",
            summary.events, summary.complete, summary.counters
        );
    }
    if let Some(path) = &args.text {
        if let Err(e) = std::fs::write(path, text::render(events)) {
            eprintln!("trace: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace: wrote {path}");
    }

    if !args.quiet {
        let steady = profile.steady_window();
        println!("{label}: {} cycles, IPC {:.3} (full run)", stats.cycles, stats.ipc());
        println!(
            "steady-state window [{}, {}): IPC {:.3}",
            steady.start,
            steady.end,
            profile.steady_ipc()
        );
        for hart in profile.harts() {
            let occ = profile.occupancy(hart);
            println!(
                "hart {hart}: core {} cycles, frep {} cycles, overlap {} ({:.1}% of run), idle {}",
                occ.core_busy,
                occ.frep_busy,
                occ.overlap,
                100.0 * occ.overlap_frac(),
                occ.idle
            );
        }
        let attr = profile.attribution(None);
        let lost: u64 = attr.values().sum();
        if lost > 0 {
            println!("lost cycles by cause:");
            for cause in StallCause::all() {
                if attr[&cause] > 0 {
                    println!("  {:<14} {:>8}", cause.name(), attr[&cause]);
                }
            }
        }
        // A Perfetto-screenshot-equivalent glimpse of the steady state.
        let width = 72u64;
        let window = if steady.end - steady.start > width {
            steady.start..steady.start + width
        } else {
            steady.clone()
        };
        println!(
            "occupancy, cycles [{}, {}) (█ = lane issued, · = idle):",
            window.start, window.end
        );
        print!("{}", profile.ascii_timeline(0, &window, width as usize));
    }
    ExitCode::SUCCESS
}
