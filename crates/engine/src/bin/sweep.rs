//! `sweep` — run batched experiment sweeps through `snitch-engine`.
//!
//! ```text
//! sweep fig2 --workers 8 --jsonl fig2.jsonl
//! sweep --kernels pi_lcg,exp --variants base,copift --n 256,512 --block 32 --csv out.csv
//! sweep --kernels poly_lcg --variants copift --n 512 --block 128 --fifo-depth 2,4,8,16
//! ```
//!
//! Any comma-separated configuration flag expands into a configuration axis
//! and the engine sweeps the full cross product — ablations (write-back
//! ports, FPU latency, FIFO depth, bank count, ...) are one flag away.

use std::io::{IsTerminal as _, Write as _};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use snitch_engine::record::RunRecord;
use snitch_engine::{job, sink, Engine, JobSpec};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::SystemConfig;
use snitch_telemetry::{metrics, Phase, Report, Telemetry, MAIN_WORKER};

const USAGE: &str = "\
usage: sweep [PRESET] [OPTIONS]

Presets (job batch templates):
  fig2            the 6 paper kernels x 2 variants at (n, 2n) operating points (24 jobs)
  fig3            poly_lcg COPIFT over the paper's size x block grid (56 jobs)
  extended        the extended-suite kernels x 2 variants at (n, 2n) operating points
  smoke           every cataloged kernel x variants at small sizes
  scaling         the data-parallel kernels x 2 variants over 1/2/4/8 cores
  scaling-grid    gemm_tiled x 2 variants over the cores x clusters grid
  verify          statically verify every program of the above batches and
                  print a diagnostic report (no simulation; exits non-zero
                  if any program has verification errors)

Job axes (ignored when a preset is given):
  --kernels K,..  cataloged kernel names (see the catalog below); default: all
  --variants V,.. base, copift; default: both
  --n N,..        problem sizes; default: 256
  --block B,..    block sizes; default: 32

Configuration axes (comma lists expand into sweep dimensions; these also
apply to presets, replicating the preset batch per configuration):
  --wb-ports N,..         integer RF write-back ports
  --l0 N,..               L0 instruction-buffer capacity
  --fifo-depth N,..       offload FIFO depth
  --seq-depth N,..        FREP sequencer ring depth
  --banks N,..            TCDM bank count (power of two)
  --cores N,..            compute cores per cluster (1..=32; the data-parallel
                          kernels support up to 8 and rebuild their program
                          per core count)
  --clusters N,..         clusters in the system (1..=32; tiled kernels rebuild
                          their program per cluster count)
  --fpu-lat-muladd N,..   FPU add/mul/FMA latency
  --mul-latency N,..      integer multiply write-back latency
  --branch-penalty N,..   taken-branch penalty

Execution and output:
  --workers N     worker threads (default: all hardware threads)
  --jsonl PATH    write JSON-lines records (\"-\" for stdout)
  --csv PATH      write CSV records (\"-\" for stdout)
  --metrics PATH  write host-telemetry METRICS.json lines (\"-\" for stdout)
  --allow-invalid run jobs whose program fails static verification anyway
                  (default: such jobs fail without simulating)
  --quiet         suppress the summary table and the progress line

Record labels name each job as kernel/variant/nN/bB, with /cN appended when
the job runs on more than one core and /xN when it spans more than one
cluster (for example gemm_tiled/copift/n64/b0/c8/x4).

A live progress line (jobs done/total, elapsed, ETA) is printed to stderr
while the batch runs, when stderr is a terminal and --quiet is absent.
";

struct Args {
    preset: Option<String>,
    kernels: Vec<Kernel>,
    variants: Vec<Variant>,
    sizes: Vec<usize>,
    blocks: Vec<usize>,
    config_axes: Vec<(String, Vec<u32>)>,
    workers: Option<usize>,
    jsonl: Option<String>,
    csv: Option<String>,
    metrics: Option<String>,
    allow_invalid: bool,
    quiet: bool,
}

/// Comma-separated listing of every cataloged kernel name (for error
/// messages — the same live catalog `--help` prints in full).
fn kernel_names() -> String {
    Kernel::all().iter().map(|k| k.name()).collect::<Vec<_>>().join(", ")
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(|v| v.trim().parse::<T>().map_err(|_| format!("{flag}: bad value `{v}`")))
        .collect()
}

#[allow(clippy::too_many_lines)]
fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        preset: None,
        kernels: Kernel::all(),
        variants: Variant::all().to_vec(),
        sizes: vec![256],
        blocks: vec![32],
        config_axes: Vec::new(),
        workers: None,
        jsonl: None,
        csv: None,
        metrics: None,
        allow_invalid: false,
        quiet: false,
    };
    let mut it = argv.iter().peekable();
    let config_flags = [
        "--wb-ports",
        "--l0",
        "--fifo-depth",
        "--seq-depth",
        "--banks",
        "--cores",
        "--clusters",
        "--fpu-lat-muladd",
        "--mul-latency",
        "--branch-penalty",
    ];
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "fig2" | "fig3" | "smoke" | "extended" | "scaling" | "scaling-grid" | "verify" => {
                args.preset = Some(arg.clone());
            }
            "--kernels" => {
                let v = value_of("--kernels")?;
                args.kernels = v
                    .split(',')
                    .map(|name| {
                        Kernel::from_name(name.trim()).ok_or_else(|| {
                            format!(
                                "unknown kernel `{}` (valid kernels: {})",
                                name.trim(),
                                kernel_names()
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--variants" => {
                let v = value_of("--variants")?;
                args.variants = v
                    .split(',')
                    .map(|name| {
                        Variant::from_name(name.trim())
                            .ok_or_else(|| format!("unknown variant `{name}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--n" => args.sizes = parse_list("--n", &value_of("--n")?)?,
            "--block" => args.blocks = parse_list("--block", &value_of("--block")?)?,
            "--workers" => {
                args.workers = Some(
                    value_of("--workers")?
                        .parse()
                        .map_err(|_| "--workers: expected a number".to_string())?,
                );
            }
            "--jsonl" => args.jsonl = Some(value_of("--jsonl")?),
            "--csv" => args.csv = Some(value_of("--csv")?),
            "--metrics" => args.metrics = Some(value_of("--metrics")?),
            "--allow-invalid" => args.allow_invalid = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            flag if config_flags.contains(&flag) => {
                let values = parse_list(flag, &value_of(flag)?)?;
                args.config_axes.push((flag.to_string(), values));
            }
            other if !other.starts_with('-') => {
                // A bare word can only be a preset: reject misspellings
                // loudly instead of silently running the default grid.
                return Err(format!(
                    "unknown preset `{other}` (valid presets: fig2, fig3, extended, smoke, \
                     scaling, scaling-grid, verify)"
                ));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Expands the configuration axes into the cross product of all overrides.
fn expand_configs(axes: &[(String, Vec<u32>)]) -> Vec<SystemConfig> {
    let mut configs = vec![SystemConfig::default()];
    for (flag, values) in axes {
        configs = configs
            .iter()
            .flat_map(|cfg| {
                values.iter().map(|&v| {
                    let mut c = cfg.clone();
                    match flag.as_str() {
                        "--wb-ports" => c.cluster.int_wb_ports = v,
                        "--l0" => c.cluster.l0_capacity = v as usize,
                        "--fifo-depth" => c.cluster.offload_fifo_depth = v as usize,
                        "--seq-depth" => c.cluster.sequencer_depth = v as usize,
                        "--banks" => c.cluster.tcdm_banks = v as usize,
                        "--cores" => c.cluster.cores = v as usize,
                        "--clusters" => c.clusters = v as usize,
                        "--fpu-lat-muladd" => c.cluster.fpu_lat_muladd = v,
                        "--mul-latency" => c.cluster.mul_latency = v,
                        "--branch-penalty" => c.cluster.branch_penalty = v,
                        other => unreachable!("unhandled config flag {other}"),
                    }
                    c
                })
            })
            .collect();
    }
    configs
}

fn build_jobs(args: &Args) -> Vec<JobSpec> {
    let configs = expand_configs(&args.config_axes);
    let preset_jobs = match args.preset.as_deref() {
        Some("fig2") => job::figure2(),
        Some("fig3") => job::figure3_paper(),
        Some("smoke") => job::smoke(),
        Some("extended") => job::extended(),
        Some("scaling") => job::scaling_default(),
        Some("scaling-grid") => job::scaling_grid_default(),
        _ => {
            let points: Vec<(usize, usize)> =
                args.sizes.iter().flat_map(|&n| args.blocks.iter().map(move |&b| (n, b))).collect();
            return JobSpec::grid_with_configs(&args.kernels, &args.variants, &points, &configs);
        }
    };
    // Configuration axes apply to presets too: replicate the preset batch
    // job-major across the expanded configurations. A preset that sets its
    // own grid shape (scaling, scaling-grid) keeps it unless the matching
    // axis was given explicitly.
    let cores_axis_given = args.config_axes.iter().any(|(flag, _)| flag == "--cores");
    let clusters_axis_given = args.config_axes.iter().any(|(flag, _)| flag == "--clusters");
    preset_jobs
        .into_iter()
        .flat_map(|j| {
            configs.iter().map(move |c| {
                let mut config = c.clone();
                if !cores_axis_given {
                    config.cluster.cores = j.config.cluster.cores;
                }
                if !clusters_axis_given {
                    config.clusters = j.config.clusters;
                }
                j.clone().with_config(config)
            })
        })
        .collect()
}

/// The usage text plus the live workload catalog (runtime registrations
/// included, so the help always matches what `--kernels` accepts).
fn print_usage(to_stderr: bool) {
    use std::fmt::Write as _;
    let mut listing = String::from("Workload catalog (--kernels accepts any of these):\n");
    let paper = Kernel::paper();
    for kernel in Kernel::all() {
        let star = if paper.contains(&kernel) { "*" } else { " " };
        let _ = writeln!(listing, "  {star}{:<18} {}", kernel.name(), kernel.description());
    }
    listing.push_str("  (* = paper Figure 2 suite)\n");
    if to_stderr {
        eprint!("{USAGE}\n{listing}");
    } else {
        print!("{USAGE}\n{listing}");
    }
}

fn write_out(path: &str, contents: &str) -> std::io::Result<()> {
    if path == "-" {
        std::io::stdout().write_all(contents.as_bytes())
    } else {
        std::fs::write(path, contents)
    }
}

/// Runs the batch with a live stderr progress line (jobs done/total,
/// elapsed, ETA), polled off the telemetry counters every 200 ms from a
/// side thread. The line rewrites itself in place and is cleared before
/// this returns, so it never lands in redirected output.
fn run_with_progress(engine: &Engine, jobs: &[JobSpec], tel: &Telemetry) -> Vec<RunRecord> {
    let finished = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            let t0 = Instant::now();
            let mut width = 0;
            while !finished.load(Ordering::Relaxed) {
                if let Some((done, _, total)) = tel.progress().filter(|&(_, _, t)| t > 0) {
                    let elapsed = t0.elapsed().as_secs_f64();
                    let eta = if done > 0 {
                        let remaining = total.saturating_sub(done) as f64;
                        format!("{:.0}s", elapsed / done as f64 * remaining)
                    } else {
                        "--".to_string()
                    };
                    let line = format!("sweep: {done}/{total} jobs, {elapsed:.1}s, eta {eta}");
                    width = width.max(line.len());
                    eprint!("\r{line:<width$}");
                }
                std::thread::sleep(Duration::from_millis(200));
            }
            eprint!("\r{:<width$}\r", "");
        });
        let records = engine.run_with(jobs, tel);
        finished.store(true, Ordering::Relaxed);
        records
    })
}

/// `sweep verify`: statically verify every distinct program the preset
/// batches can produce — each unique (kernel, variant, n, block, cores,
/// clusters) builds once, runs through `snitch_verify`, and prints its
/// diagnostic report. Nothing is simulated. Exits non-zero if any program
/// carries a hard error, unless `--allow-invalid` downgrades that to a
/// report.
fn run_verify(args: &Args) -> ExitCode {
    let mut batch = job::smoke();
    batch.extend(job::figure2());
    batch.extend(job::figure3_paper());
    batch.extend(job::extended());
    batch.extend(job::scaling_default());
    batch.extend(job::scaling_grid_default());
    let mut seen = std::collections::HashSet::new();
    let (mut programs, mut errors, mut warnings) = (0usize, 0usize, 0usize);
    for job in batch {
        let key = job.program_key();
        if !seen.insert(key) {
            continue;
        }
        let program = key.kernel.build_grid(key.variant, key.n, key.block, key.cores, key.clusters);
        let diags = snitch_verify::verify(&program, &job.config);
        programs += 1;
        let errs = snitch_verify::error_count(&diags);
        errors += errs;
        warnings += diags.len() - errs;
        if !diags.is_empty() && (errs > 0 || !args.quiet) {
            print!("{}", snitch_verify::report(&job.label(), &diags));
        }
    }
    eprintln!("sweep verify: {programs} program(s), {errors} error(s), {warnings} warning(s)");
    if errors > 0 && !args.allow_invalid {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print_usage(false);
                return ExitCode::SUCCESS;
            }
            eprintln!("sweep: {msg}");
            print_usage(true);
            return ExitCode::FAILURE;
        }
    };
    if args.preset.as_deref() == Some("verify") {
        return run_verify(&args);
    }

    let jobs = build_jobs(&args);
    if jobs.is_empty() {
        eprintln!("sweep: empty job batch");
        return ExitCode::FAILURE;
    }
    let engine =
        args.workers.map_or_else(Engine::default, Engine::new).allow_invalid(args.allow_invalid);
    // Telemetry powers the progress line and --metrics; with neither wanted
    // the engine runs with the disabled (no-op) handle.
    let progress = !args.quiet && std::io::stderr().is_terminal();
    let tel = if progress || args.metrics.is_some() { Telemetry::new() } else { Telemetry::off() };
    let t0 = Instant::now();
    let records = if progress {
        run_with_progress(&engine, &jobs, &tel)
    } else {
        engine.run_with(&jobs, &tel)
    };
    let wall = t0.elapsed();

    let sink_t0 = tel.start();
    if let Some(path) = &args.jsonl {
        if let Err(e) = write_out(path, &sink::to_jsonl(&records)) {
            eprintln!("sweep: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.csv {
        if let Err(e) = write_out(path, &sink::to_csv(&records)) {
            eprintln!("sweep: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    tel.finish(sink_t0, MAIN_WORKER, None, Phase::Sink);

    if let Some(path) = &args.metrics {
        let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        let report = Report::new(&tel.spans(), wall_ns);
        if let Err(e) = write_out(path, &metrics::render(engine.workers(), &report)) {
            eprintln!("sweep: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let failed = records.iter().filter(|r| !r.ok).count();
    if !args.quiet {
        println!(
            "{:<18} {:<7} {:>7} {:>6} {:>4} {:>10} {:>7} {:>8} {:>9}",
            "kernel", "variant", "n", "block", "ok", "cycles", "ipc", "power", "energy"
        );
        for r in &records {
            println!(
                "{:<18} {:<7} {:>7} {:>6} {:>4} {:>10} {:>7.3} {:>7.1}m {:>8.2}u",
                r.job.kernel.name(),
                r.job.variant.name(),
                r.job.n,
                r.job.block,
                if r.ok { "ok" } else { "FAIL" },
                r.cycles,
                r.ipc,
                r.power_mw,
                r.energy_uj,
            );
        }
    }
    eprintln!(
        "sweep: {} jobs, {} workers, {:.2?} wall; program cache: {} built, {} reused{}",
        records.len(),
        engine.workers(),
        wall,
        engine.cache().misses(),
        engine.cache().hits(),
        if failed > 0 { format!("; {failed} FAILED") } else { String::new() },
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
