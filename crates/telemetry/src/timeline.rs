//! Phase attribution and per-worker utilization timelines.
//!
//! A [`Report`] turns a span log plus the measured batch wall time into the
//! numbers the scaling diagnosis needs: where each worker's wall-seconds
//! went (per [`Phase`]), how much was idle, and how the idle splits into
//! startup skew, inter-job gaps and the wait at the ordered
//! result-collection barrier.

use crate::span::{Phase, Span, MAIN_WORKER};

/// Where one worker's share of the batch wall time went.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Worker index ([`MAIN_WORKER`] for the batch's calling thread).
    pub worker: u32,
    /// Distinct jobs this worker simulated.
    pub jobs: u32,
    /// Time in spans, per phase.
    pub phase_ns: [u64; Phase::COUNT],
    /// Total time in spans.
    pub busy_ns: u64,
    /// Start of the worker's first span.
    pub first_ns: u64,
    /// End of the worker's last span.
    pub last_ns: u64,
    /// Batch wall time (denominator for the idle split).
    pub wall_ns: u64,
}

impl WorkerSummary {
    /// Time before the worker's first span (thread spawn + first dispatch).
    #[must_use]
    pub fn startup_ns(&self) -> u64 {
        self.first_ns
    }

    /// Unattributed time inside the worker's busy window (between spans:
    /// queue cursor fetches, slot stores, scheduler preemption).
    #[must_use]
    pub fn gap_ns(&self) -> u64 {
        (self.last_ns - self.first_ns).saturating_sub(self.busy_ns)
    }

    /// Time from the worker's last span to the end of the batch: the wait
    /// at the ordered result-collection barrier (the worker ran out of
    /// jobs while others were still simulating).
    #[must_use]
    pub fn barrier_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.last_ns)
    }

    /// Total idle time (startup + gaps + barrier wait).
    #[must_use]
    pub fn idle_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.busy_ns)
    }

    /// Fraction of the batch wall time this worker spent in spans.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.wall_ns as f64
    }
}

/// Phase attribution of one batch: per-worker summaries plus totals.
#[derive(Clone, Debug)]
pub struct Report {
    /// Measured batch wall time (clamped up to the last span end, so a
    /// slightly-early measurement can never produce negative idle).
    pub wall_ns: u64,
    /// Pool workers, sorted by worker index. Main-thread spans (collect,
    /// sink) are kept separately in [`main`](Report::main).
    pub workers: Vec<WorkerSummary>,
    /// The batch's calling thread (result collection, sink writing).
    pub main: WorkerSummary,
    /// Span time per phase, summed over pool workers and main.
    pub phase_ns: [u64; Phase::COUNT],
    /// Distinct jobs observed in job-scoped spans.
    pub jobs: u32,
    spans: Vec<Span>,
}

impl Report {
    /// Builds the attribution from a span snapshot and the measured batch
    /// wall time (nanoseconds).
    #[must_use]
    pub fn new(spans: &[Span], wall_ns: u64) -> Self {
        let wall_ns = wall_ns.max(spans.iter().map(|s| s.end_ns).max().unwrap_or(0));
        let mut ids: Vec<u32> = spans.iter().map(|s| s.worker).collect();
        ids.sort_unstable();
        ids.dedup();
        let summarize = |worker: u32| -> WorkerSummary {
            let mut s = WorkerSummary {
                worker,
                jobs: 0,
                phase_ns: [0; Phase::COUNT],
                busy_ns: 0,
                first_ns: u64::MAX,
                last_ns: 0,
                wall_ns,
            };
            let mut jobs = Vec::new();
            for span in spans.iter().filter(|sp| sp.worker == worker) {
                s.phase_ns[span.phase.index()] += span.dur_ns();
                s.busy_ns += span.dur_ns();
                s.first_ns = s.first_ns.min(span.start_ns);
                s.last_ns = s.last_ns.max(span.end_ns);
                if let Some(j) = span.job {
                    jobs.push(j);
                }
            }
            if s.first_ns == u64::MAX {
                s.first_ns = 0;
            }
            jobs.sort_unstable();
            jobs.dedup();
            s.jobs = jobs.len() as u32;
            s
        };
        let workers: Vec<WorkerSummary> =
            ids.iter().filter(|&&w| w != MAIN_WORKER).map(|&w| summarize(w)).collect();
        let main = summarize(MAIN_WORKER);
        let mut phase_ns = [0u64; Phase::COUNT];
        for w in workers.iter().chain(std::iter::once(&main)) {
            for (total, ns) in phase_ns.iter_mut().zip(w.phase_ns.iter()) {
                *total += ns;
            }
        }
        let mut jobs: Vec<u32> = spans.iter().filter_map(|s| s.job).collect();
        jobs.sort_unstable();
        jobs.dedup();
        Report { wall_ns, workers, main, phase_ns, jobs: jobs.len() as u32, spans: spans.to_vec() }
    }

    /// The span snapshot the report was built from (sorted as delivered by
    /// `Telemetry::spans`) — for re-export sinks like the Chrome trace.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total span time over pool workers and main.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Total span time in one phase.
    #[must_use]
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// Total idle time over pool workers.
    #[must_use]
    pub fn idle_ns(&self) -> u64 {
        self.workers.iter().map(WorkerSummary::idle_ns).sum()
    }

    /// Mean pool-worker idle fraction (0 when there are no workers).
    #[must_use]
    pub fn idle_frac(&self) -> f64 {
        if self.workers.is_empty() || self.wall_ns == 0 {
            return 0.0;
        }
        self.idle_ns() as f64 / (self.wall_ns as f64 * self.workers.len() as f64)
    }

    /// Fraction of total worker wall time (pool size × wall) covered by
    /// measured spans, counting the main thread's collect/sink spans
    /// toward the numerator. For a single-worker batch this is the "span
    /// totals sum to measured wall time" instrumentation-quality number:
    /// everything uncovered is either real idle (startup, barrier — near
    /// zero at one worker) or unattributed executor overhead.
    #[must_use]
    pub fn span_coverage(&self) -> f64 {
        if self.workers.is_empty() || self.wall_ns == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / (self.wall_ns as f64 * self.workers.len() as f64)
    }

    /// An ASCII utilization timeline of one worker: `width` columns over
    /// the batch wall time, each column labeled with the [`Phase::tag`] of
    /// the phase that dominates it (`·` = idle).
    #[must_use]
    pub fn timeline(&self, worker: u32, width: usize) -> String {
        let width = width.max(1);
        let mut cols = vec![0u64; width * Phase::COUNT];
        let bucket = (self.wall_ns / width as u64).max(1);
        for span in self.spans.iter().filter(|s| s.worker == worker) {
            let (mut start, end) = (span.start_ns, span.end_ns.min(self.wall_ns));
            while start < end {
                let col = ((start / bucket) as usize).min(width - 1);
                // The last column absorbs the rounded-off tail of the wall,
                // so every span byte lands somewhere and `start` advances.
                let col_end =
                    if col == width - 1 { end } else { ((col as u64 + 1) * bucket).min(end) };
                cols[col * Phase::COUNT + span.phase.index()] += col_end - start;
                start = col_end;
            }
        }
        let mut out = String::with_capacity(width);
        for col in 0..width {
            let slice = &cols[col * Phase::COUNT..(col + 1) * Phase::COUNT];
            let (best, ns) =
                slice.iter().enumerate().max_by_key(|&(_, ns)| *ns).expect("non-empty");
            out.push(if *ns == 0 { '·' } else { Phase::all()[best].tag() });
        }
        out
    }

    /// Renders the human-readable attribution report: phase totals, the
    /// per-worker table with the idle split, and per-worker timelines.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let wall = self.wall_ns as f64 / 1e6;
        let _ = writeln!(
            out,
            "batch: {} jobs, {} workers, wall {:.2} ms; spans cover {:.1}% of worker-time, \
             pool idle {:.1}%",
            self.jobs,
            self.workers.len(),
            wall,
            100.0 * self.busy_total_frac(),
            100.0 * self.idle_frac(),
        );
        out.push_str("phase totals:");
        for phase in Phase::all() {
            let ns = self.phase_total(phase);
            if ns > 0 {
                let _ = write!(out, " {} {:.2}ms", phase.name(), ns as f64 / 1e6);
            }
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "{:>6} {:>5} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}  idle split (startup/gap/barrier ms)",
            "worker", "jobs", "util%", "compile", "warm", "reset", "simulate", "idle",
        );
        for w in &self.workers {
            let ms = |ns: u64| ns as f64 / 1e6;
            let _ = writeln!(
                out,
                "{:>6} {:>5} {:>6.1} {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m  \
                 ({:.2}/{:.2}/{:.2})",
                w.worker,
                w.jobs,
                100.0 * w.utilization(),
                ms(w.phase_ns[Phase::Compile.index()]
                    + w.phase_ns[Phase::Verify.index()]
                    + w.phase_ns[Phase::CacheHit.index()]),
                ms(w.phase_ns[Phase::Warm.index()]),
                ms(w.phase_ns[Phase::Reset.index()]),
                ms(w.phase_ns[Phase::Simulate.index()]),
                ms(w.idle_ns()),
                ms(w.startup_ns()),
                ms(w.gap_ns()),
                ms(w.barrier_ns()),
            );
        }
        if self.main.busy_ns > 0 {
            let _ = writeln!(
                out,
                "  main: collect {:.3} ms, sink {:.3} ms",
                self.main.phase_ns[Phase::Collect.index()] as f64 / 1e6,
                self.main.phase_ns[Phase::Sink.index()] as f64 / 1e6,
            );
        }
        let width = 64;
        let _ = writeln!(
            out,
            "timeline ({:.2} ms/col; C compile, V verify, c cache, W warm, r reset, \
             S simulate, · idle):",
            self.wall_ns as f64 / 1e6 / width as f64
        );
        for w in &self.workers {
            let _ = writeln!(out, "  w{:<3} |{}|", w.worker, self.timeline(w.worker, width));
        }
        out
    }

    /// Fraction of pool worker wall time spent inside spans (busy).
    #[must_use]
    pub fn busy_total_frac(&self) -> f64 {
        if self.workers.is_empty() || self.wall_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        busy as f64 / (self.wall_ns as f64 * self.workers.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(worker: u32, job: Option<u32>, phase: Phase, start: u64, end: u64) -> Span {
        Span { worker, job, phase, start_ns: start, end_ns: end }
    }

    #[test]
    fn attribution_splits_phases_and_idle() {
        // Worker 0: warm 0..10, sim 10..40; worker 1: warm 5..20, sim 20..30,
        // then idle until the batch ends at 50. Main collects 40..45.
        let spans = [
            span(0, Some(0), Phase::Warm, 0, 10),
            span(0, Some(0), Phase::Simulate, 10, 40),
            span(1, Some(1), Phase::Warm, 5, 20),
            span(1, Some(1), Phase::Simulate, 20, 30),
            span(MAIN_WORKER, None, Phase::Collect, 40, 45),
        ];
        let r = Report::new(&spans, 50);
        assert_eq!(r.workers.len(), 2);
        assert_eq!(r.jobs, 2);
        assert_eq!(r.phase_total(Phase::Warm), 25);
        assert_eq!(r.phase_total(Phase::Simulate), 40);
        assert_eq!(r.phase_total(Phase::Collect), 5);
        let w1 = &r.workers[1];
        assert_eq!(w1.startup_ns(), 5);
        assert_eq!(w1.barrier_ns(), 20, "worker 1 waits at the collection barrier");
        assert_eq!(w1.idle_ns(), 25);
        assert_eq!(w1.gap_ns(), 0);
        let w0 = &r.workers[0];
        assert_eq!(w0.idle_ns(), 10, "wall 50 minus 40 busy");
        assert!(r.idle_frac() > 0.0);
    }

    #[test]
    fn wall_clamps_to_last_span_end() {
        let spans = [span(0, Some(0), Phase::Simulate, 0, 100)];
        let r = Report::new(&spans, 10);
        assert_eq!(r.wall_ns, 100, "a short wall measurement cannot produce negative idle");
        assert_eq!(r.workers[0].idle_ns(), 0);
    }

    #[test]
    fn timeline_marks_dominant_phase_per_column() {
        let spans =
            [span(0, Some(0), Phase::Warm, 0, 50), span(0, Some(0), Phase::Simulate, 50, 100)];
        let r = Report::new(&spans, 200);
        let line = r.timeline(0, 4);
        assert_eq!(line, "WS··");
    }

    #[test]
    fn timeline_tail_column_absorbs_rounding_remainder() {
        // wall 100 / width 64 gives bucket 1, so columns cover only 0..64;
        // a span reaching past that must land in the last column and
        // terminate (this was an infinite loop once).
        let spans = [span(0, Some(0), Phase::Simulate, 0, 100)];
        let r = Report::new(&spans, 100);
        let line = r.timeline(0, 64);
        assert_eq!(line.chars().count(), 64);
        assert!(line.chars().all(|c| c == 'S'), "{line}");
    }

    #[test]
    fn render_text_mentions_every_active_phase() {
        let spans = [
            span(0, Some(0), Phase::Compile, 0, 10),
            span(0, Some(0), Phase::Simulate, 10, 90),
            span(MAIN_WORKER, None, Phase::Collect, 90, 95),
        ];
        let text = Report::new(&spans, 100).render_text();
        assert!(text.contains("compile 0.00ms") || text.contains("compile"), "{text}");
        assert!(text.contains("simulate"));
        assert!(text.contains("timeline"));
        assert!(text.contains("w0"));
    }
}
