//! The span vocabulary: executor phases and timed spans.

/// Pseudo-worker id for spans recorded on the batch's calling thread (the
/// ordered result collection and sink writing happen there, not on a pool
/// worker).
pub const MAIN_WORKER: u32 = u32::MAX;

/// One executor stage. Every wall-second of a batch lands in exactly one
/// phase (or in derived idle time); the taxonomy is the host-side analog of
/// `snitch_trace::StallCause`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phase {
    /// Program-cache miss: assembling a kernel program.
    Compile,
    /// Statically verifying a freshly compiled program (`snitch-verify`).
    Verify,
    /// Program-cache hit: lookup only.
    CacheHit,
    /// Constructing a worker's `Cluster` (multi-MiB TCDM/memory
    /// allocation) because none existed or the configuration changed.
    Warm,
    /// Resetting a reused cluster between jobs.
    Reset,
    /// Simulating: load, run, validate, energy report.
    Simulate,
    /// Assembling the ordered result vector after the worker barrier
    /// (main thread).
    Collect,
    /// Serializing and writing result sinks (main thread).
    Sink,
}

impl Phase {
    /// Every phase, in report order.
    #[must_use]
    pub const fn all() -> [Phase; Phase::COUNT] {
        [
            Phase::Compile,
            Phase::Verify,
            Phase::CacheHit,
            Phase::Warm,
            Phase::Reset,
            Phase::Simulate,
            Phase::Collect,
            Phase::Sink,
        ]
    }

    /// Number of phases (array-index domain of [`index`](Self::index)).
    pub const COUNT: usize = 8;

    /// Dense index for per-phase accumulator arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Phase::Compile => 0,
            Phase::Verify => 1,
            Phase::CacheHit => 2,
            Phase::Warm => 3,
            Phase::Reset => 4,
            Phase::Simulate => 5,
            Phase::Collect => 6,
            Phase::Sink => 7,
        }
    }

    /// Stable `snake_case` name (METRICS.json field values, report rows).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Compile => "compile",
            Phase::Verify => "verify",
            Phase::CacheHit => "cache_hit",
            Phase::Warm => "warm",
            Phase::Reset => "reset",
            Phase::Simulate => "simulate",
            Phase::Collect => "collect",
            Phase::Sink => "sink",
        }
    }

    /// One-character tag for ASCII timelines.
    #[must_use]
    pub const fn tag(self) -> char {
        match self {
            Phase::Compile => 'C',
            Phase::Verify => 'V',
            Phase::CacheHit => 'c',
            Phase::Warm => 'W',
            Phase::Reset => 'r',
            Phase::Simulate => 'S',
            Phase::Collect => 'K',
            Phase::Sink => 'O',
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One timed phase on one worker, in nanoseconds since the collector's
/// epoch (relative timestamps keep spans comparable across threads and keep
/// absolute host time out of every artifact).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// Worker index within the batch's pool, or [`MAIN_WORKER`].
    pub worker: u32,
    /// Job index within the batch, when the phase is job-scoped.
    pub job: Option<u32>,
    /// What the time was spent on.
    pub phase: Phase,
    /// Start, ns since the collector epoch.
    pub start_ns: u64,
    /// End, ns since the collector epoch.
    pub end_ns: u64,
}

impl Span {
    /// Span duration in nanoseconds.
    #[must_use]
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_ordered() {
        for (i, p) in Phase::all().iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: std::collections::HashSet<&str> =
            Phase::all().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::COUNT, "phase names are distinct");
    }

    #[test]
    fn span_duration_saturates() {
        let s = Span { worker: 0, job: None, phase: Phase::Simulate, start_ns: 10, end_ns: 25 };
        assert_eq!(s.dur_ns(), 15);
        let backwards = Span { start_ns: 25, end_ns: 10, ..s };
        assert_eq!(backwards.dur_ns(), 0);
    }
}
