//! The machine-readable metrics sink: `METRICS.json` lines plus a
//! dependency-free validator.
//!
//! One JSON object per line, every line carrying a `metric` discriminator:
//!
//! | metric    | meaning                                      |
//! |-----------|----------------------------------------------|
//! | `batch`   | one engine batch: wall, busy, idle, coverage |
//! | `phase`   | span time in one phase across the batch      |
//! | `worker`  | one worker's utilization and idle split      |
//! | `scaling` | a workers-N vs workers-base throughput ratio |
//!
//! Field order is fixed and floats use shortest round-trip formatting, so
//! metrics files diff cleanly; wall-clock derived *values* of course vary
//! run to run. [`validate`] checks syntax and the per-metric required keys
//! the same way `snitch_trace::chrome::validate` checks trace documents —
//! CI runs it on every `perf-report` output.

use std::fmt::Write as _;

use crate::span::Phase;
use crate::timeline::Report;

/// Renders the full JSON-lines metrics block for one batch: one `batch`
/// line, one `phase` line per phase, one `worker` line per pool worker.
/// `workers` is the configured pool size (the scope key joining the lines).
#[must_use]
pub fn render(workers: usize, report: &Report) -> String {
    let mut out = String::with_capacity(256 * (report.workers.len() + Phase::COUNT + 1));
    let _ = writeln!(
        out,
        "{{\"metric\":\"batch\",\"workers\":{workers},\"jobs\":{},\"wall_ns\":{},\
         \"busy_ns\":{},\"idle_ns\":{},\"span_coverage\":{:?}}}",
        report.jobs,
        report.wall_ns,
        report.busy_ns(),
        report.idle_ns(),
        report.span_coverage(),
    );
    for phase in Phase::all() {
        let _ = writeln!(
            out,
            "{{\"metric\":\"phase\",\"workers\":{workers},\"phase\":\"{}\",\"ns\":{}}}",
            phase.name(),
            report.phase_total(phase),
        );
    }
    for w in &report.workers {
        let _ = write!(
            out,
            "{{\"metric\":\"worker\",\"workers\":{workers},\"worker\":{},\"jobs\":{},\
             \"busy_ns\":{},\"idle_ns\":{},\"startup_ns\":{},\"gap_ns\":{},\"barrier_ns\":{}",
            w.worker,
            w.jobs,
            w.busy_ns,
            w.idle_ns(),
            w.startup_ns(),
            w.gap_ns(),
            w.barrier_ns(),
        );
        for phase in Phase::all() {
            let _ = write!(out, ",\"{}_ns\":{}", phase.name(), w.phase_ns[phase.index()]);
        }
        out.push_str("}\n");
    }
    out
}

/// Renders one `scaling` line: throughput at `workers` relative to the
/// `workers_base` measurement of the same workload.
#[must_use]
pub fn render_scaling(
    workload: &str,
    workers_base: usize,
    cps_base: f64,
    workers: usize,
    cps: f64,
) -> String {
    format!(
        "{{\"metric\":\"scaling\",\"workload\":\"{workload}\",\"workers_base\":{workers_base},\
         \"cps_base\":{cps_base:.0},\"workers\":{workers},\"cps\":{cps:.0},\
         \"ratio\":{:?}}}\n",
        cps / cps_base,
    )
}

/// Renders one `burst` line: the batch's block-burst engagement — the
/// fraction of simulated cycles the simulator served on its block-compiled
/// fast path (`Cluster::block_replayed_cycles` summed over the records).
#[must_use]
pub fn render_burst(workers: usize, cycles: u64, replayed_cycles: u64) -> String {
    let engagement = if cycles == 0 { 0.0 } else { replayed_cycles as f64 / cycles as f64 };
    format!(
        "{{\"metric\":\"burst\",\"workers\":{workers},\"cycles\":{cycles},\
         \"replayed_cycles\":{replayed_cycles},\"engagement\":{engagement:?}}}\n"
    )
}

/// Required keys per metric kind (the minimal schema CI enforces).
fn required_keys(metric: &str) -> Option<&'static [&'static str]> {
    match metric {
        "batch" => Some(&["workers", "jobs", "wall_ns", "busy_ns", "idle_ns", "span_coverage"]),
        "phase" => Some(&["workers", "phase", "ns"]),
        "worker" => Some(&["workers", "worker", "jobs", "busy_ns", "idle_ns", "barrier_ns"]),
        "scaling" => Some(&["workload", "workers_base", "workers", "ratio"]),
        "burst" => Some(&["workers", "cycles", "replayed_cycles", "engagement"]),
        _ => None,
    }
}

/// Validates a METRICS.json document: every non-empty line must be a
/// syntactically valid JSON object carrying a known `metric` discriminator
/// and that metric's required keys. Returns the number of metric lines.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate(contents: &str) -> Result<usize, String> {
    let mut lines = 0;
    for (lineno, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let keys = parse_object_keys(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let metric = keys
            .iter()
            .find(|(k, _)| k == "metric")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| format!("line {}: no `metric` key", lineno + 1))?;
        let required = required_keys(&metric)
            .ok_or_else(|| format!("line {}: unknown metric `{metric}`", lineno + 1))?;
        for want in required {
            if !keys.iter().any(|(k, _)| k == want) {
                return Err(format!("line {}: metric `{metric}` lacks key `{want}`", lineno + 1));
            }
        }
        lines += 1;
    }
    Ok(lines)
}

/// Parses one JSON object, returning its top-level `(key, value-if-string)`
/// pairs (non-string values return an empty string). Validates the full
/// syntax of the line, nested values included.
fn parse_object_keys(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut p = Parser { s: s.as_bytes(), i: 0 };
    let keys = p.object()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(keys)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.s.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == want => {
                self.i += 1;
                Ok(())
            }
            other => Err(format!(
                "expected `{}` at offset {}, found {:?}",
                want as char,
                self.i,
                other.map(|b| b as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'u') => {
                            if self.i + 4 >= self.s.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            self.i += 5;
                            out.push('?');
                        }
                        Some(&c) => {
                            self.i += 1;
                            out.push(c as char);
                        }
                        None => return Err("truncated escape".to_string()),
                    }
                }
                Some(&c) => {
                    self.i += 1;
                    out.push(c as char);
                }
            }
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    /// Skips any JSON value, validating its syntax; returns the value when
    /// it is a string.
    fn value(&mut self) -> Result<Option<String>, String> {
        match self.peek() {
            Some(b'{') => {
                self.object()?;
                Ok(None)
            }
            Some(b'[') => {
                self.eat(b'[')?;
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(None);
                }
                loop {
                    self.value()?;
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(None);
                        }
                        other => return Err(format!("bad array at offset {}: {other:?}", self.i)),
                    }
                }
            }
            Some(b'"') => self.string().map(Some),
            Some(b't') => self.literal("true").map(|()| None),
            Some(b'f') => self.literal("false").map(|()| None),
            Some(b'n') => self.literal("null").map(|()| None),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                self.i += 1;
                while self.s.get(self.i).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.i += 1;
                }
                Ok(None)
            }
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Vec<(String, String)>, String> {
        self.eat(b'{')?;
        let mut keys = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(keys);
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.value()?;
            keys.push((key, value.unwrap_or_default()));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(keys);
                }
                other => return Err(format!("bad object at offset {}: {other:?}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, MAIN_WORKER};

    fn sample_report() -> Report {
        let spans = [
            Span { worker: 0, job: Some(0), phase: Phase::Warm, start_ns: 0, end_ns: 10 },
            Span { worker: 0, job: Some(0), phase: Phase::Simulate, start_ns: 10, end_ns: 90 },
            Span {
                worker: MAIN_WORKER,
                job: None,
                phase: Phase::Collect,
                start_ns: 90,
                end_ns: 95,
            },
        ];
        Report::new(&spans, 100)
    }

    #[test]
    fn rendered_metrics_validate() {
        let mut doc = render(1, &sample_report());
        doc.push_str(&render_scaling("smoke", 1, 14.0e6, 8, 4.9e6));
        doc.push_str(&render_burst(1, 1000, 990));
        let lines = validate(&doc).expect("rendered metrics must validate");
        // 1 batch + 8 phases + 1 worker + 1 scaling + 1 burst.
        assert_eq!(lines, 12);
        assert!(doc.contains("\"metric\":\"batch\""));
        assert!(doc.contains("\"phase\":\"simulate\",\"ns\":80"));
        assert!(doc.contains("\"barrier_ns\":"));
        assert!(doc.contains("\"ratio\":0.35"));
        assert!(doc.contains("\"metric\":\"burst\"") && doc.contains("\"engagement\":0.99"));
    }

    #[test]
    fn burst_line_handles_empty_batches() {
        let line = render_burst(4, 0, 0);
        assert!(line.contains("\"engagement\":0.0"), "no cycles means zero engagement: {line}");
        assert_eq!(validate(&line), Ok(1));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"metric\":\"nope\"}").is_err(), "unknown metric");
        assert!(validate("{\"metric\":\"phase\",\"workers\":1}").is_err(), "missing keys");
        assert!(validate("{\"workers\":1}").is_err(), "no metric key");
        assert!(validate(
            "{\"metric\":\"batch\",\"workers\":1,\"jobs\":2,\"wall_ns\":3,\
                           \"busy_ns\":1,\"idle_ns\":0,\"span_coverage\":0.9}"
        )
        .is_ok_and(|n| n == 1));
        assert_eq!(validate("\n\n").unwrap(), 0, "blank lines are skipped");
    }
}
