//! Chrome trace-event export of host spans: one process (`host`), one
//! thread track per worker plus one for the main thread, loadable in
//! Perfetto next to the simulator's own cycle traces.
//!
//! Built on the shared [`snitch_trace::chrome::Doc`] assembly layer, so the
//! document framing is identical to the cycle-trace sink and passes the
//! same dependency-free schema validator
//! ([`snitch_trace::chrome::validate`]). Timestamps are microseconds (the
//! trace-event native unit); span timestamps are nanosecond-precise, so
//! sub-microsecond spans are emitted with their duration rounded up to
//! 1 µs rather than dropped.

use snitch_trace::chrome::Doc;

use crate::span::{Span, MAIN_WORKER};

/// The host process id in the exported document.
const HOST_PID: u32 = 0;
/// The main thread's track id (workers are `worker + 1`).
const TID_MAIN: u32 = 0;

/// Track id of a worker (main thread first, pool workers after it).
fn tid(worker: u32) -> u32 {
    if worker == MAIN_WORKER {
        TID_MAIN
    } else {
        worker + 1
    }
}

/// Renders host spans as a complete Chrome trace-event JSON document:
/// per-phase duration events on one track per worker, plus a `queue`
/// counter series (jobs not yet dispatched) sampled at every job-scoped
/// span start.
#[must_use]
pub fn render(spans: &[Span]) -> String {
    let mut doc = Doc::with_capacity(spans.len() * 96 + 256);
    doc.process_name(HOST_PID, "host");

    let mut workers: Vec<u32> = spans.iter().map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    // MAIN_WORKER is u32::MAX, so it sorts last; emit its track first.
    if workers.last() == Some(&MAIN_WORKER) {
        workers.pop();
        doc.thread_name(HOST_PID, TID_MAIN, "main");
    }
    for &w in &workers {
        doc.thread_name(HOST_PID, tid(w), &format!("worker {w}"));
    }

    // The queue-depth counter: total jobs minus jobs dispatched so far. A
    // job counts as dispatched at its first job-scoped span.
    let mut starts: Vec<(u64, u32)> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for s in spans {
            if let Some(job) = s.job {
                if seen.insert(job) {
                    starts.push((s.start_ns, job));
                }
            }
        }
    }
    starts.sort_unstable();
    let total = starts.len() as u64;

    let mut emitted = 0u64;
    let mut next_start = starts.iter().peekable();
    for span in spans {
        // Interleave queue samples so the counter steps exactly where jobs
        // leave the queue (events stay in timestamp order).
        while let Some(&&(at, _)) = next_start.peek() {
            if at > span.start_ns {
                break;
            }
            emitted += 1;
            doc.counter(HOST_PID, at / 1_000, "queue", "jobs", total - emitted);
            next_start.next();
        }
        let ts = span.start_ns / 1_000;
        let dur = (span.dur_ns() / 1_000).max(1);
        let args = span.job.map(|j| format!("{{\"job\":{j}}}"));
        doc.complete(HOST_PID, tid(span.worker), ts, dur, span.phase.name(), args.as_deref());
    }
    for &(at, _) in next_start {
        emitted += 1;
        doc.counter(HOST_PID, at / 1_000, "queue", "jobs", total - emitted);
    }
    doc.finish("us")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    #[test]
    fn rendered_host_trace_passes_the_shared_validator() {
        let spans = [
            Span { worker: 0, job: Some(0), phase: Phase::Compile, start_ns: 0, end_ns: 4_000 },
            Span {
                worker: 0,
                job: Some(0),
                phase: Phase::Simulate,
                start_ns: 4_000,
                end_ns: 90_000,
            },
            Span { worker: 1, job: Some(1), phase: Phase::Warm, start_ns: 2_000, end_ns: 52_000 },
            Span {
                worker: MAIN_WORKER,
                job: None,
                phase: Phase::Collect,
                start_ns: 95_000,
                end_ns: 96_500,
            },
        ];
        let json = render(&spans);
        let summary = snitch_trace::chrome::validate(&json).expect("host trace must validate");
        assert_eq!(summary.complete, 4, "one duration event per span");
        assert_eq!(summary.counters, 2, "one queue sample per dispatched job");
        assert_eq!(summary.metadata, 4, "process + main + two worker tracks");
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"name\":\"main\""));
        assert!(json.contains("\"name\":\"simulate\""));
        assert!(json.contains("\"queue\",\"args\":{\"jobs\":1}"));
        assert!(json.contains("\"timeUnit\":\"us\""));
    }

    #[test]
    fn sub_microsecond_spans_keep_a_visible_duration() {
        let spans =
            [Span { worker: 0, job: Some(0), phase: Phase::Reset, start_ns: 100, end_ns: 400 }];
        let json = render(&spans);
        assert!(json.contains("\"dur\":1"), "300 ns rounds up to 1 µs, not 0: {json}");
    }
}
