//! The [`Telemetry`] collector the engine records spans and counters into.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::span::{Phase, Span};

/// Shared host-telemetry handle.
///
/// Mirrors the `snitch_trace::Tracer` contract one level up: an engine
/// either runs with a *disabled* handle (the default — every hook is one
/// `Option` branch, no clock is read, nothing allocates) or an *enabled*
/// one that records [`Span`]s and progress counters. Handles are cheap to
/// clone (`Arc` inside); clones share one span log and one epoch, so spans
/// recorded on different worker threads are directly comparable.
///
/// Telemetry is deliberately invisible to results: it never touches job
/// specs, cache keys, config fingerprints or record serialization, so runs
/// with and without telemetry produce byte-identical sink files.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    jobs_total: AtomicU64,
    jobs_done: AtomicU64,
    started: AtomicU64,
}

impl Telemetry {
    /// An enabled collector; its epoch is the moment of construction.
    #[must_use]
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                jobs_total: AtomicU64::new(0),
                jobs_done: AtomicU64::new(0),
                started: AtomicU64::new(0),
            })),
        }
    }

    /// A disabled collector: every operation is a no-op behind a single
    /// branch. This is what `Engine::run` uses, and what the perf-report
    /// overhead guard measures against the enabled path.
    #[must_use]
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// Whether spans and counters are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts timing a phase: reads the clock only when enabled. Pass the
    /// result to [`finish`](Self::finish).
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Ends a phase started with [`start`](Self::start) and records the
    /// span (no-op when disabled or when `started` is `None`).
    pub fn finish(&self, started: Option<Instant>, worker: u32, job: Option<u32>, phase: Phase) {
        if let (Some(inner), Some(t0)) = (self.inner.as_deref(), started) {
            let end = Instant::now();
            let span = Span {
                worker,
                job,
                phase,
                start_ns: duration_ns(inner.epoch, t0),
                end_ns: duration_ns(inner.epoch, end),
            };
            inner.spans.lock().unwrap().push(span);
        }
    }

    /// Times `f` as one span of `phase` (records nothing when disabled —
    /// the closure runs either way and its value is returned).
    pub fn time<T>(&self, worker: u32, job: Option<u32>, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t0 = self.start();
        let out = f();
        self.finish(t0, worker, job, phase);
        out
    }

    /// Opens a new batch: sets the total job count and clears the progress
    /// counters. Spans from earlier batches on the same handle are kept
    /// (one handle can observe a whole multi-batch session).
    pub fn begin_batch(&self, jobs_total: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.jobs_total.store(jobs_total, Ordering::Relaxed);
            inner.jobs_done.store(0, Ordering::Relaxed);
            inner.started.store(0, Ordering::Relaxed);
        }
    }

    /// Marks one job dispatched to a worker (feeds the queue-depth
    /// counter: `jobs_total - jobs_started` is the depth of the shared
    /// queue).
    pub fn job_started(&self) {
        if let Some(inner) = self.inner.as_deref() {
            inner.started.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks one job finished (its record is in its slot).
    pub fn job_done(&self) {
        if let Some(inner) = self.inner.as_deref() {
            inner.jobs_done.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(done, started, total)` progress counters of the current batch,
    /// or `None` when disabled. Safe to poll from any thread while a batch
    /// runs — this is what drives the sweep CLI's progress line.
    #[must_use]
    pub fn progress(&self) -> Option<(u64, u64, u64)> {
        self.inner.as_deref().map(|inner| {
            (
                inner.jobs_done.load(Ordering::Relaxed),
                inner.started.load(Ordering::Relaxed),
                inner.jobs_total.load(Ordering::Relaxed),
            )
        })
    }

    /// Nanoseconds elapsed since the collector's epoch (0 when disabled).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.as_deref().map_or(0, |inner| duration_ns(inner.epoch, Instant::now()))
    }

    /// A snapshot of the recorded spans, sorted by `(start, worker, phase)`
    /// so the snapshot is stable regardless of which worker won the log
    /// mutex last.
    #[must_use]
    pub fn spans(&self) -> Vec<Span> {
        let mut spans = self
            .inner
            .as_deref()
            .map(|inner| inner.spans.lock().unwrap().clone())
            .unwrap_or_default();
        spans.sort_by_key(|s| (s.start_ns, s.worker, s.phase.index()));
        spans
    }

    /// Discards all recorded spans (counters are reset by
    /// [`begin_batch`](Self::begin_batch)).
    pub fn clear(&self) {
        if let Some(inner) = self.inner.as_deref() {
            inner.spans.lock().unwrap().clear();
        }
    }
}

/// Nanoseconds from `epoch` to `t`, saturating at zero.
fn duration_ns(epoch: Instant, t: Instant) -> u64 {
    u64::try_from(t.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_passes_values_through() {
        let tel = Telemetry::off();
        assert!(!tel.is_enabled());
        let out = tel.time(0, Some(3), Phase::Simulate, || 42);
        assert_eq!(out, 42);
        tel.begin_batch(10);
        tel.job_started();
        tel.job_done();
        assert!(tel.spans().is_empty());
        assert_eq!(tel.progress(), None);
        assert_eq!(tel.start(), None);
    }

    #[test]
    fn enabled_handle_records_ordered_spans() {
        let tel = Telemetry::new();
        tel.time(1, Some(0), Phase::Warm, || std::hint::black_box(0));
        tel.time(1, Some(0), Phase::Simulate, || std::hint::black_box(0));
        let spans = tel.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Warm);
        assert_eq!(spans[1].phase, Phase::Simulate);
        assert!(spans[0].start_ns <= spans[1].start_ns, "spans sorted by start");
        assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
        assert_eq!(spans[0].job, Some(0));
    }

    #[test]
    fn clones_share_one_log_and_one_counter_set() {
        let tel = Telemetry::new();
        let worker_handle = tel.clone();
        tel.begin_batch(4);
        worker_handle.job_started();
        worker_handle.job_done();
        worker_handle.time(0, None, Phase::Collect, || ());
        assert_eq!(tel.progress(), Some((1, 1, 4)));
        assert_eq!(tel.spans().len(), 1);
        tel.clear();
        assert!(worker_handle.spans().is_empty());
    }

    #[test]
    fn begin_batch_resets_progress_but_keeps_spans() {
        let tel = Telemetry::new();
        tel.begin_batch(2);
        tel.job_started();
        tel.job_done();
        tel.time(0, Some(0), Phase::Simulate, || ());
        tel.begin_batch(8);
        assert_eq!(tel.progress(), Some((0, 0, 8)));
        assert_eq!(tel.spans().len(), 1, "span log survives across batches");
    }
}
