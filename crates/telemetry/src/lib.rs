//! # snitch-telemetry — host-side observability for the experiment engine
//!
//! `snitch-trace` answers "where did the *simulated* cycles go"; this crate
//! answers the same question for the *host*: which wall-seconds of a sweep
//! went to compiling programs, constructing clusters, resetting them,
//! simulating, collecting ordered results and writing sinks — per job and
//! per worker. It exists because the engine's multi-worker scaling cannot
//! be fixed blind: the attribution built here is what names the dominant
//! cost before the executor is reworked.
//!
//! * [`span`] — the span vocabulary: a [`Phase`] taxonomy (one variant per
//!   executor stage) and [`Span`]s tagged with worker, job index and
//!   nanosecond timestamps relative to the collector's epoch;
//! * [`collector`] — the [`Telemetry`] handle the engine records into.
//!   Mirroring `snitch_trace::Tracer`, a disabled handle is zero-cost: no
//!   clock is read, no span is constructed, nothing allocates — the hook
//!   is one `Option` branch;
//! * [`timeline`] — the analyzer: per-worker utilization timelines and a
//!   phase-attribution [`Report`] (busy/idle split, startup skew,
//!   inter-job gaps, result-barrier wait);
//! * [`metrics`] — the machine-readable `METRICS.json` sink (JSON-lines)
//!   plus a dependency-free line validator;
//! * [`chrome`] — a Chrome trace-event export of host spans (one track per
//!   worker, built on `snitch_trace::chrome::Doc`, loadable in Perfetto).
//!
//! Telemetry is strictly host-side: it never touches `ProgramKey`,
//! `ClusterConfig` or `RunRecord` serialization, so a sweep run under
//! telemetry produces byte-identical result files to one without.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod collector;
pub mod metrics;
pub mod span;
pub mod timeline;

pub use collector::Telemetry;
pub use span::{Phase, Span, MAIN_WORKER};
pub use timeline::{Report, WorkerSummary};
