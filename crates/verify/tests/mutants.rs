//! The mutant library: deliberately-broken programs, at least one per
//! check, each of which the verifier must flag with the *right* check id.
//! This is the negative half of the differential validation — the positive
//! half (verifier-clean programs run to completion) lives in
//! `differential.rs`.

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::layout::{TCDM_BASE, TCDM_SIZE};
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::reg::{FpReg, IntReg};
use snitch_sim::config::ClusterConfig;
use snitch_verify::{verify_cluster as verify, CheckId, Severity};

/// Runs the verifier (on a 4-core cluster, so SPMD mutants analyze every
/// hart) and asserts a finding with exactly `(check, severity)` fired.
fn assert_caught(b: ProgramBuilder, check: CheckId, severity: Severity) {
    let p = b.build().unwrap();
    let config = ClusterConfig { cores: 4, ..ClusterConfig::default() };
    let diags = verify(&p, &config);
    assert!(
        diags.iter().any(|d| d.check == check && d.severity == severity),
        "expected {severity:?} from {check:?}, got: {diags:?}"
    );
    if severity == Severity::Error {
        assert!(snitch_verify::has_errors(&diags));
    }
}

/// Arms stream `ssr` as an `n`-element read stream over fresh TCDM.
fn arm_read(b: &mut ProgramBuilder, ssr: usize, n: u32) {
    let base = b.tcdm_reserve("mutbuf", usize::try_from(n).unwrap() * 8, 8);
    b.li(IntReg::T0, 0);
    b.scfgwi(IntReg::T0, ssr, SsrCfgWord::Status);
    b.scfgwi(IntReg::T0, ssr, SsrCfgWord::Repeat);
    b.li(IntReg::T1, i32::try_from(n).unwrap() - 1);
    b.scfgwi(IntReg::T1, ssr, SsrCfgWord::Bound(0));
    b.li_u(IntReg::T2, base);
    b.scfgwi(IntReg::T2, ssr, SsrCfgWord::Base);
}

// ----------------------------------------------------------- frep-legality

#[test]
fn mutant_frep_body_exceeds_sequencer_depth() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::T0, 3);
    b.frep_o(IntReg::T0, 200, 0, 0); // depth is 128
    for _ in 0..200 {
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FS1);
    }
    b.ecall();
    assert_caught(b, CheckId::FrepLegality, Severity::Error);
}

#[test]
fn mutant_integer_op_inside_frep_body() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::T0, 3);
    b.frep_o(IntReg::T0, 2, 0, 0);
    b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FS1);
    b.addi(IntReg::A0, IntReg::A0, 1); // int core op in the FP body
    b.ecall();
    assert_caught(b, CheckId::FrepLegality, Severity::Error);
}

#[test]
fn mutant_frep_body_runs_past_text_end() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::T0, 1);
    b.frep_o(IntReg::T0, 8, 0, 0); // claims 8 body insts, only 1 follows
    b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FS1);
    assert_caught(b, CheckId::FrepLegality, Severity::Error);
}

#[test]
fn mutant_branch_into_frep_body() {
    let mut b = ProgramBuilder::new();
    let flag = b.tcdm_u32("flag", &[0]);
    b.li(IntReg::T0, 1);
    b.li_u(IntReg::T1, flag);
    b.lw(IntReg::T1, IntReg::T1, 0); // data-dependent: both paths live
    b.bnez(IntReg::T1, "inside");
    b.frep_o(IntReg::T0, 2, 0, 0);
    b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FS1);
    b.label("inside");
    b.fmul_d(FpReg::FS2, FpReg::FS2, FpReg::FS1); // 2nd body inst, jumped into
    b.ecall();
    assert_caught(b, CheckId::FrepLegality, Severity::Error);
}

// ---------------------------------------------------------- ssr-discipline

#[test]
fn mutant_read_of_unarmed_stream() {
    let mut b = ProgramBuilder::new();
    b.ssr_enable();
    b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0); // ft0 never armed
    b.ssr_disable();
    b.ecall();
    assert_caught(b, CheckId::SsrDiscipline, Severity::Error);
}

#[test]
fn mutant_write_to_read_mode_stream() {
    let mut b = ProgramBuilder::new();
    arm_read(&mut b, 1, 4);
    b.ssr_enable();
    b.fadd_d(FpReg::FT1, FpReg::FS0, FpReg::FS1); // writes the read stream
    b.ssr_disable();
    b.ecall();
    assert_caught(b, CheckId::SsrDiscipline, Severity::Error);
}

#[test]
fn mutant_reads_past_the_configured_bound() {
    let mut b = ProgramBuilder::new();
    arm_read(&mut b, 0, 2); // 2 elements armed...
    b.ssr_enable();
    b.li(IntReg::T3, 3);
    b.frep_o(IntReg::T3, 1, 0, 0); // ...4 pops issued
    b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
    b.fpu_fence();
    b.ssr_disable();
    b.ecall();
    assert_caught(b, CheckId::SsrDiscipline, Severity::Error);
}

#[test]
fn mutant_stream_armed_but_never_used() {
    let mut b = ProgramBuilder::new();
    arm_read(&mut b, 2, 4);
    b.ecall();
    assert_caught(b, CheckId::SsrDiscipline, Severity::Warning);
}

// ----------------------------------------------------------- definite-init

#[test]
fn mutant_read_of_never_written_register() {
    let mut b = ProgramBuilder::new();
    b.fadd_d(FpReg::FS0, FpReg::FA3, FpReg::FA3); // fa3 never initialized
    b.ecall();
    assert_caught(b, CheckId::DefiniteInit, Severity::Warning);
}

// -------------------------------------------------------------- mem-bounds

#[test]
fn mutant_store_to_unmapped_address() {
    let mut b = ProgramBuilder::new();
    b.li_u(IntReg::A0, TCDM_BASE + TCDM_SIZE + 64); // past the TCDM end
    b.sw(IntReg::A1, IntReg::A0, 0);
    b.ecall();
    assert_caught(b, CheckId::MemBounds, Severity::Error);
}

#[test]
fn mutant_dma_to_unmapped_destination() {
    let mut b = ProgramBuilder::new();
    let buf = b.tcdm_f64("src", &[0.0; 8]);
    b.li_u(IntReg::A0, buf);
    b.dmsrc(IntReg::A0);
    b.li_u(IntReg::A1, 0x0300_0000); // hole below TCDM
    b.dmdst(IntReg::A1);
    b.li(IntReg::A2, 64);
    b.dmcpyi(IntReg::A3, IntReg::A2);
    b.ecall();
    assert_caught(b, CheckId::MemBounds, Severity::Error);
}

// ----------------------------------------------------- barrier-consistency

#[test]
fn mutant_hart_guarded_barrier() {
    let mut b = ProgramBuilder::new();
    b.parallel();
    b.csrr_mhartid(IntReg::A0);
    b.bnez(IntReg::A0, "skip"); // only hart 0 reaches the barrier
    b.barrier();
    b.label("skip");
    b.ecall();
    assert_caught(b, CheckId::BarrierConsistency, Severity::Error);
}

#[test]
fn mutant_library_covers_every_check() {
    // Meta-test: the cases above span all five check ids (and this file
    // holds the promised ≥10 mutants — one test per mutant).
    let covered = [
        CheckId::FrepLegality,
        CheckId::SsrDiscipline,
        CheckId::DefiniteInit,
        CheckId::MemBounds,
        CheckId::BarrierConsistency,
    ];
    assert_eq!(covered.len(), CheckId::all().len());
}
