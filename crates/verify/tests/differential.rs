//! Differential validation against the simulator, positive half: programs
//! the verifier passes as error-free must run to completion (no deadlock,
//! no fault) on a real cluster. The seeded generator covers integer loops,
//! FREP bodies, SSR streams, DMA copies with wait loops and SPMD barriers —
//! every shape the checks reason about.

use snitch_sim::config::ClusterConfig;
use snitch_sim::testing::{observe_with, random_program, Rng};
use snitch_verify::{error_count, report, verify_cluster as verify};

/// 40 seeds across single-core and SPMD shapes: the verifier must report
/// zero errors, and the simulator must agree by running each program to
/// completion (`observe_with` panics on deadlock or fault).
#[test]
fn verifier_passed_programs_do_not_deadlock() {
    for seed in 0..40u64 {
        let mut rng = Rng(0x5eed_0000 + seed);
        let cores = [1usize, 2, 4][(seed % 3) as usize];
        let frags = 3 + (seed % 5) as usize;
        let program = random_program(&mut rng, cores, frags);
        let config = ClusterConfig { cores, ..ClusterConfig::default() };
        let diags = verify(&program, &config);
        assert_eq!(
            error_count(&diags),
            0,
            "seed {seed}: generator output must verify clean\n{}",
            report(&format!("seed {seed}"), &diags)
        );
        // The sim is the ground truth the severity contract is calibrated
        // against: error-free implies it completes.
        let obs = observe_with(&program, cores, |_| {});
        assert!(obs.stats.cycles > 0, "seed {seed} ran");
    }
}
