//! Per-hart control-flow graph over the decoded text section.
//!
//! Nodes are text indices (`pc = TEXT_BASE + 4 * index`, the same indexing
//! as the simulator's block cache). Edges follow the *integer core's*
//! control flow: an FREP body is straight-line code from the sequencer's
//! point of view — the core issues each body instruction once and the FP
//! sequencer replays them — so FREP does not introduce edges. `jalr` has no
//! statically-known successors and is treated as a terminator (nothing in
//! the assembler or codegen emits computed jumps today; if that changes the
//! conservative answer is still sound for every check, which only reasons
//! about reachable states).

use snitch_asm::layout::TEXT_BASE;
use snitch_riscv::inst::Inst;

/// Successors of one instruction — at most two (branch fallthrough then
/// taken target), stored inline so building the graph allocates nothing per
/// instruction. Derefs to a slice.
#[derive(Clone, Copy, Default, Debug)]
pub struct Succs {
    n: u8,
    s: [usize; 2],
}

impl Succs {
    fn push(&mut self, v: usize) {
        self.s[usize::from(self.n)] = v;
        self.n += 1;
    }
}

impl std::ops::Deref for Succs {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        &self.s[..usize::from(self.n)]
    }
}

/// The reconstructed control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// Successor indices per text index.
    pub succs: Vec<Succs>,
    /// Whether the index is reachable from the entry point (index 0).
    pub reachable: Vec<bool>,
    /// For `Branch`/`Jal` instructions, the resolved target index when it
    /// lands inside the text section.
    pub targets: Vec<Option<usize>>,
}

impl Cfg {
    /// The pc of text index `i`.
    #[must_use]
    pub fn pc(i: usize) -> u32 {
        TEXT_BASE.wrapping_add(i as u32 * 4)
    }

    /// Builds the CFG for `text` and computes reachability from index 0.
    #[must_use]
    pub fn build(text: &[Inst]) -> Cfg {
        let n = text.len();
        let mut succs: Vec<Succs> = vec![Succs::default(); n];
        let mut targets: Vec<Option<usize>> = vec![None; n];
        for (i, inst) in text.iter().enumerate() {
            let pc = Self::pc(i);
            match *inst {
                Inst::Branch { offset, .. } => {
                    let t = Self::index_of(pc.wrapping_add(offset as u32), n);
                    targets[i] = t;
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    }
                    if let Some(t) = t {
                        if !succs[i].contains(&t) {
                            succs[i].push(t);
                        }
                    }
                }
                Inst::Jal { offset, .. } => {
                    let t = Self::index_of(pc.wrapping_add(offset as u32), n);
                    targets[i] = t;
                    if let Some(t) = t {
                        succs[i].push(t);
                    }
                }
                Inst::Jalr { .. } | Inst::Ecall | Inst::Ebreak => {}
                _ => {
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    }
                }
            }
        }
        let mut reachable = vec![false; n];
        let mut stack = if n > 0 { vec![0usize] } else { Vec::new() };
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut reachable[i], true) {
                continue;
            }
            stack.extend(succs[i].iter().copied().filter(|&s| !reachable[s]));
        }
        Cfg { succs, reachable, targets }
    }

    fn index_of(pc: u32, len: usize) -> Option<usize> {
        let off = pc.wrapping_sub(TEXT_BASE);
        if off.is_multiple_of(4) && ((off / 4) as usize) < len {
            Some((off / 4) as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::IntReg;

    #[test]
    fn loop_edges_resolve() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 3); // 0 (one inst: small immediate)
        b.label("loop");
        b.addi(IntReg::A0, IntReg::A0, -1); // 1
        b.bnez(IntReg::A0, "loop"); // 2
        b.ecall(); // 3
        let p = b.build().unwrap();
        let cfg = Cfg::build(p.text());
        assert_eq!(*cfg.succs[2], [3, 1], "branch: fallthrough then taken");
        assert_eq!(cfg.targets[2], Some(1));
        assert!(cfg.succs[3].is_empty(), "ecall terminates");
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn code_after_jump_is_unreachable() {
        let mut b = ProgramBuilder::new();
        b.j("end"); // 0
        b.addi(IntReg::A0, IntReg::A0, 1); // 1: skipped
        b.label("end");
        b.ecall(); // 2
        let p = b.build().unwrap();
        let cfg = Cfg::build(p.text());
        assert!(cfg.reachable[0] && cfg.reachable[2]);
        assert!(!cfg.reachable[1]);
    }
}
