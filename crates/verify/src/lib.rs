//! Static verification of compiled Snitch programs.
//!
//! [`verify`] takes a loaded [`Program`] plus the [`SystemConfig`] it will
//! run under (cluster shape and cluster count — [`verify_cluster`] is the
//! single-cluster convenience form), reconstructs the per-hart control-flow
//! graph from the decoded text section, runs a forward abstract
//! interpretation (constant propagation, register-initialization masks, SSR
//! stream states, barrier counts — see [`interp`]), and evaluates a catalog
//! of checks over the converged states. The result is a list of structured,
//! severity-ranked [`Diagnostic`]s.
//!
//! The severity contract is calibrated against the simulator (and the
//! hardware it models):
//!
//! * [`Severity::Error`] — the program will fault, deadlock or is
//!   hardware-illegal (an FREP body the sequencer cannot replay, a read from
//!   an unarmed SSR stream, a store to an unmapped address, a barrier-count
//!   mismatch across harts). Error-free is what "verifies clean" means.
//! * [`Severity::Warning`] — well-defined under the simulator's semantics
//!   but fragile or wasteful (reads relying on the boot-time zeroed register
//!   files, streams left armed at exit, misaligned TCDM accesses that split
//!   bank lines).
//!
//! Checks, one module each under [`checks`]: FREP legality, SSR discipline,
//! definite initialization, statically-resolvable memory bounds, and barrier
//! consistency. For SPMD ([`Program::parallel`]) programs the dataflow runs
//! once per hart with `mhartid` bound to that hart's constant, so per-hart
//! addresses and branch decisions resolve exactly; diagnostics common to all
//! harts are collapsed to `hart: None`.

#![forbid(unsafe_code)]

use snitch_asm::program::Program;
use snitch_sim::config::{ClusterConfig, SystemConfig};

pub mod cfg;
pub mod checks;
pub mod interp;

/// Which check produced a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CheckId {
    /// FREP body shape: length vs the sequencer depth, non-FP or
    /// integer-RF-touching instructions in the body, branches into a body.
    FrepLegality,
    /// SSR stream discipline: `ft0..ft2` access vs enable/arm state,
    /// over-/under-consumed streams, reconfiguration of busy streams.
    SsrDiscipline,
    /// Reads of registers never written on some path from entry.
    DefiniteInit,
    /// Statically-resolved data accesses and DMA descriptors vs the memory
    /// map.
    MemBounds,
    /// Barrier-count agreement across the harts of an SPMD program.
    BarrierConsistency,
}

impl CheckId {
    /// Every check, in report order.
    #[must_use]
    pub const fn all() -> [CheckId; 5] {
        [
            CheckId::FrepLegality,
            CheckId::SsrDiscipline,
            CheckId::DefiniteInit,
            CheckId::MemBounds,
            CheckId::BarrierConsistency,
        ]
    }

    /// Stable kebab-case name (report rows, CI grep targets).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CheckId::FrepLegality => "frep-legality",
            CheckId::SsrDiscipline => "ssr-discipline",
            CheckId::DefiniteInit => "definite-init",
            CheckId::MemBounds => "mem-bounds",
            CheckId::BarrierConsistency => "barrier-consistency",
        }
    }
}

impl std::fmt::Display for CheckId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Diagnostic severity. `Error` means the program will fault, deadlock or is
/// hardware-illegal; `Warning` is a lint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Suspicious but well-defined under the simulator's semantics.
    Warning,
    /// Faults, deadlocks, or violates a hardware invariant.
    Error,
}

impl Severity {
    /// Lowercase name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: where, what, how bad.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// The check that fired.
    pub check: CheckId,
    /// How bad it is.
    pub severity: Severity,
    /// Address of the offending instruction.
    pub addr: u32,
    /// The cluster the finding applies to; `None` when it holds on every
    /// cluster (always `None` for single-cluster systems).
    pub cluster: Option<u32>,
    /// The hart the finding applies to; `None` when it holds on every hart.
    pub hart: Option<u32>,
    /// Disassembly of the offending instruction.
    pub disasm: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}] {:#010x}", self.severity.name(), self.check, self.addr)?;
        if let Some(c) = self.cluster {
            write!(f, " cluster {c}")?;
        }
        if let Some(h) = self.hart {
            write!(f, " hart {h}")?;
        }
        write!(f, ": `{}` — {}", self.disasm, self.message)
    }
}

/// Whether any diagnostic is an [`Severity::Error`] (the "fails
/// verification" predicate).
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Number of [`Severity::Error`] diagnostics.
#[must_use]
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.severity == Severity::Error).count()
}

/// Renders a text report: one header line, then one line per diagnostic.
#[must_use]
pub fn report(label: &str, diags: &[Diagnostic]) -> String {
    use std::fmt::Write as _;
    let errors = error_count(diags);
    let warnings = diags.len() - errors;
    let mut out = format!(
        "{label}: {}{errors} error(s), {warnings} warning(s)\n",
        if errors == 0 { "clean — " } else { "" }
    );
    for d in diags {
        let _ = writeln!(out, "  {d}");
    }
    out
}

/// Runs every check over `program` as it would execute under a single
/// cluster of `config` — the pre-[`SystemConfig`] entry point, kept for
/// callers that think in clusters.
#[must_use]
pub fn verify_cluster(program: &Program, config: &ClusterConfig) -> Vec<Diagnostic> {
    verify(program, &SystemConfig::from(config.clone()))
}

/// Runs every check over `program` as it would execute under `config` and
/// returns the findings, deterministically ordered (errors first, then by
/// address, check, cluster, hart).
///
/// For multi-cluster systems the dataflow runs once per (cluster, hart)
/// pair with both the cluster-id CSR and `mhartid` bound to constants, so
/// cluster-role guards prune exactly like SPMD hart guards do. Findings
/// identical across every hart of a cluster collapse to `hart: None`;
/// findings identical across every cluster collapse to `cluster: None`.
#[must_use]
pub fn verify(program: &Program, config: &SystemConfig) -> Vec<Diagnostic> {
    let text = program.text();
    let graph = cfg::Cfg::build(text);
    let mut out = Vec::new();
    checks::frep::check(text, &config.cluster, &graph, &mut out);

    // One dataflow pass per (cluster, hart), with the identity CSRs bound
    // to constants, so per-hart addresses and branch decisions resolve
    // exactly. Single-core programs boot only hart 0 (of every cluster).
    let harts: Vec<u32> =
        if program.parallel() { (0..config.cluster.cores as u32).collect() } else { vec![0] };
    let clusters = config.clusters;
    let metas: std::rc::Rc<[interp::OpMeta]> = interp::OpMeta::table(text).into();
    let mut per_cluster: Vec<Vec<Diagnostic>> = Vec::with_capacity(clusters);
    for cluster in 0..clusters as u32 {
        let mut per_hart: Vec<Vec<Diagnostic>> = Vec::with_capacity(harts.len());
        let mut exits = Vec::with_capacity(harts.len());
        for &hart in &harts {
            let ctx = interp::HartCtx::new(cluster, hart);
            let flow = interp::analyze_with(text, std::rc::Rc::clone(&metas), &graph, ctx);
            let mut hd = Vec::new();
            // One fused walk drives all per-instruction checks: the walk
            // recomputes states by re-running the transfer function, so
            // sharing it costs one transfer per instruction instead of one
            // per check.
            let mut ssr = checks::ssr::Scan::new(hart);
            let mut init = checks::init::Scan::new(hart);
            flow.walk(text, |i, st, meta| {
                init.visit(text, i, st, meta, &mut hd);
                let (want_ssr, want_mem) = checks::interest(&text[i], meta);
                if want_ssr {
                    ssr.visit(text, i, st, meta, &mut hd);
                }
                if want_mem {
                    checks::mem::visit(text, i, st, hart, clusters, &mut hd);
                }
            });
            ssr.finish(text, &flow, &mut hd);
            exits.push(flow.exit);
            per_hart.push(hd);
        }
        let mut cd = collapse_common(per_hart, harts.len());
        checks::barrier::check(text, &graph, program.parallel(), &harts, &exits, &mut cd);
        for d in &mut cd {
            d.cluster = Some(cluster);
        }
        per_cluster.push(cd);
    }
    out.extend(collapse_clusters(per_cluster, clusters));

    out.sort_by(|a, b| {
        (b.severity, a.addr, a.check, a.cluster, a.hart, &a.message)
            .cmp(&(a.severity, b.addr, b.check, b.cluster, b.hart, &b.message))
    });
    out
}

/// Collapses diagnostics that fired identically on every hart into a single
/// `hart: None` finding; hart-specific findings keep their hart tag.
fn collapse_common(per_hart: Vec<Vec<Diagnostic>>, harts: usize) -> Vec<Diagnostic> {
    if harts <= 1 {
        // Single-hart analyses are reported hart-agnostically.
        let mut v: Vec<Diagnostic> = per_hart.into_iter().flatten().collect();
        for d in &mut v {
            d.hart = None;
        }
        return v;
    }
    let mut counts: std::collections::HashMap<(CheckId, Severity, u32, String), u32> =
        std::collections::HashMap::new();
    for diags in &per_hart {
        for d in diags {
            *counts.entry((d.check, d.severity, d.addr, d.message.clone())).or_insert(0) += 1;
        }
    }
    let mut out = Vec::new();
    let mut emitted: std::collections::HashSet<(CheckId, Severity, u32, String)> =
        std::collections::HashSet::new();
    for diags in per_hart {
        for mut d in diags {
            let key = (d.check, d.severity, d.addr, d.message.clone());
            if counts[&key] as usize == harts {
                if emitted.insert(key) {
                    d.hart = None;
                    out.push(d);
                }
            } else {
                out.push(d);
            }
        }
    }
    out
}

/// Collapses (already hart-collapsed) per-cluster diagnostics that fired
/// identically on every cluster into a single `cluster: None` finding;
/// cluster-specific findings keep their cluster tag. Single-cluster systems
/// report everything cluster-agnostically.
fn collapse_clusters(per_cluster: Vec<Vec<Diagnostic>>, clusters: usize) -> Vec<Diagnostic> {
    type Key = (CheckId, Severity, u32, Option<u32>, String);
    if clusters <= 1 {
        let mut v: Vec<Diagnostic> = per_cluster.into_iter().flatten().collect();
        for d in &mut v {
            d.cluster = None;
        }
        return v;
    }
    let key_of =
        |d: &Diagnostic| -> Key { (d.check, d.severity, d.addr, d.hart, d.message.clone()) };
    let mut counts: std::collections::HashMap<Key, u32> = std::collections::HashMap::new();
    for diags in &per_cluster {
        for d in diags {
            *counts.entry(key_of(d)).or_insert(0) += 1;
        }
    }
    let mut out = Vec::new();
    let mut emitted: std::collections::HashSet<Key> = std::collections::HashSet::new();
    for diags in per_cluster {
        for mut d in diags {
            let key = key_of(&d);
            if counts[&key] as usize == clusters {
                if emitted.insert(key) {
                    d.cluster = None;
                    out.push(d);
                }
            } else {
                out.push(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::IntReg;

    #[test]
    fn trivial_program_is_clean() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 1);
        b.ecall();
        let p = b.build().unwrap();
        let diags = verify_cluster(&p, &ClusterConfig::default());
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn report_renders_summary_and_lines() {
        let d = Diagnostic {
            check: CheckId::MemBounds,
            severity: Severity::Error,
            addr: 0x8000_0010,
            cluster: None,
            hart: Some(2),
            disasm: "sw a0, 0(a1)".to_string(),
            message: "store to unmapped address".to_string(),
        };
        let r = report("prog", std::slice::from_ref(&d));
        assert!(r.starts_with("prog: 1 error(s), 0 warning(s)"));
        assert!(r.contains("error[mem-bounds] 0x80000010 hart 2"));
        assert!(format!("{d}").contains("sw a0, 0(a1)"));
        assert!(has_errors(&[d]));
    }

    #[test]
    fn cluster_guarded_code_is_analyzed_per_cluster() {
        use snitch_asm::layout::tcdm_alias_base;
        // Only cluster 1 executes the faulting store (into an alias window
        // of a cluster the system does not have); the finding must come
        // back tagged with that cluster.
        let mut b = ProgramBuilder::new();
        b.csrr_cluster_id(IntReg::A0);
        b.li(IntReg::A1, 1);
        b.bne(IntReg::A0, IntReg::A1, "done");
        b.li_u(IntReg::A2, tcdm_alias_base(7));
        b.sw(IntReg::ZERO, IntReg::A2, 0);
        b.label("done");
        b.ecall();
        let p = b.build().unwrap();

        let diags = verify(&p, &SystemConfig::with_clusters(2));
        assert!(has_errors(&diags), "{diags:?}");
        let err = diags.iter().find(|d| d.severity == Severity::Error).unwrap();
        assert_eq!(err.cluster, Some(1), "{err}");
        assert!(format!("{err}").contains("cluster 1"));

        // A single-cluster system never takes the guarded path: clean.
        let diags1 = verify(&p, &SystemConfig::default());
        assert!(!has_errors(&diags1), "{diags1:?}");
    }

    #[test]
    fn findings_common_to_every_cluster_collapse() {
        let mut b = ProgramBuilder::new();
        b.li_u(IntReg::A0, 0x0300_0000);
        b.sw(IntReg::ZERO, IntReg::A0, 0);
        b.ecall();
        let p = b.build().unwrap();
        let diags = verify(&p, &SystemConfig::with_clusters(4));
        let errs: Vec<_> = diags.iter().filter(|d| d.severity == Severity::Error).collect();
        assert_eq!(errs.len(), 1, "{diags:?}");
        assert_eq!(errs[0].cluster, None);
    }

    #[test]
    fn check_ids_have_distinct_names() {
        let names: std::collections::HashSet<&str> =
            CheckId::all().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), CheckId::all().len());
    }
}
