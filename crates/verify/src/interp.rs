//! Forward abstract interpretation over the per-hart CFG.
//!
//! One [`analyze`] run models one hart: `mhartid` reads are bound to the
//! hart's constant, so SPMD guards (`beqz`/`bnez` on the hart id) resolve to
//! exactly one successor and each hart only sees its own path. The abstract
//! [`State`] tracks:
//!
//! * integer-register constants (both register files boot zeroed in the
//!   simulator, so the entry state is all-`Some(0)`),
//! * definitely-written masks over both register files (for the
//!   definite-initialization lint — "was ever written", separate from the
//!   constant lattice),
//! * the SSR enable bit ([`Tri`]) and per-stream arm/direction/consumption
//!   state ([`Stream`]), including the pending config words so a
//!   `scfgwi Base` arm can compute the stream's total element capacity,
//! * the barrier count as an interval, and the DMA source/destination
//!   latches.
//!
//! The fixpoint is a standard worklist; intervals that keep growing through
//! a back edge are widened to `∞` after a bounded number of merges at a
//! node, so termination does not depend on loop trip counts. Widening only
//! ever *loses* warnings (growing maxima feed "definitely leftover /
//! definitely busy" claims); the error-side bounds (`min` consumption) are
//! monotonically decreasing under merge and converge on their own.

use std::rc::Rc;

use snitch_riscv::csr::{SsrCfgWord, CSR_BARRIER, CSR_CLUSTER_ID, CSR_MHARTID, CSR_SSR, NUM_SSRS};
use snitch_riscv::inst::Inst;
use snitch_riscv::meta::RegRef;
use snitch_riscv::ops::CsrOp;
use snitch_riscv::reg::IntReg;

use crate::cfg::Cfg;

/// Merges-per-node before growing interval maxima are widened to `∞`.
/// Low on purpose: every extra round before widening re-interprets the
/// whole loop body, and only the warning-side `max` bounds benefit (the
/// error-side `min` bounds decrease monotonically and converge in one or
/// two rounds regardless).
const WIDEN_AFTER: u32 = 2;

/// Infinity sentinel for interval maxima.
pub const INF: u64 = u64::MAX;

/// A three-valued boolean.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tri {
    /// Definitely false on every path reaching here.
    False,
    /// Definitely true on every path reaching here.
    True,
    /// Differs by path (or set from a non-constant source).
    Unknown,
}

impl Tri {
    fn merge(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Unknown
        }
    }

    /// Whether the value may be true.
    #[must_use]
    pub fn maybe(self) -> bool {
        self != Tri::False
    }
}

/// A `[min, max]` interval over `u64`, `max == INF` meaning unbounded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Inclusive lower bound.
    pub min: u64,
    /// Inclusive upper bound (`INF` = unbounded).
    pub max: u64,
}

impl Interval {
    /// The exact value zero.
    pub const ZERO: Interval = Interval { min: 0, max: 0 };

    /// Shifts the interval up by `[lo, hi]`.
    fn add(&mut self, lo: u64, hi: u64) {
        self.min = self.min.saturating_add(lo);
        self.max = self.max.saturating_add(hi);
    }

    /// Lattice join; `widen` sends a growing max straight to `INF`.
    fn merge(&mut self, other: Interval, widen: bool) -> bool {
        let old = *self;
        self.min = self.min.min(other.min);
        self.max = if widen && other.max > self.max { INF } else { self.max.max(other.max) };
        *self != old
    }
}

/// Per-stream pending configuration (the `scfgwi` words written so far).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StreamCfg {
    /// Status word: bit 0 write mode, bits 2:1 dims, bit 3 indirect.
    pub status: Option<u32>,
    /// Repetition count minus one.
    pub repeat: Option<u32>,
    /// Dimension-0 bound minus one.
    pub bound0: Option<u32>,
}

impl StreamCfg {
    /// Reset values (the simulator zeroes SSR config registers).
    const RESET: StreamCfg = StreamCfg { status: Some(0), repeat: Some(0), bound0: Some(0) };

    fn merge(&mut self, other: &StreamCfg) -> bool {
        let old = *self;
        self.status = merge_const(self.status, other.status);
        self.repeat = merge_const(self.repeat, other.repeat);
        self.bound0 = merge_const(self.bound0, other.bound0);
        *self != old
    }

    /// Total register-file beats the armed stream will serve, when
    /// statically known. For a 1-D non-indirect *read* stream each of the
    /// `bound0 + 1` elements is popped `repeat + 1` times; a *write* stream
    /// drains exactly one push per address step, so `repeat` does not
    /// multiply (mirroring `sim::ssr::step_write` vs `finish_element`).
    fn capacity(&self, write_mode: bool) -> Option<u64> {
        let status = self.status?;
        // Multi-dimensional, indirect or packed-SIMD streams: give up on
        // counting elements (bits 2:1 dims, bit 3 indirect, bit 4 elem size).
        if status & 0b1_1110 != 0 {
            return None;
        }
        let elems = u64::from(self.bound0?) + 1;
        if write_mode {
            Some(elems)
        } else {
            Some(elems * (u64::from(self.repeat?) + 1))
        }
    }
}

/// Abstract state of one SSR data mover.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stream {
    /// Not armed since reset (or fully drained and re-idle is never modeled
    /// — a drained stream stays `Read` with `served == cap`).
    Idle,
    /// Armed as a read stream.
    Read {
        /// Total elements it will serve, when statically known.
        cap: Option<u64>,
        /// Elements popped so far.
        served: Interval,
    },
    /// Armed as a write stream.
    Write {
        /// Total elements it will accept, when statically known.
        cap: Option<u64>,
        /// Elements pushed so far.
        served: Interval,
    },
    /// Differs by path.
    Unknown,
}

impl Stream {
    fn merge(&mut self, other: &Stream, widen: bool) -> bool {
        let old = *self;
        *self = match (*self, *other) {
            (Stream::Idle, Stream::Idle) => Stream::Idle,
            (Stream::Read { cap: c1, served: mut s1 }, Stream::Read { cap: c2, served: s2 })
                if c1 == c2 =>
            {
                s1.merge(s2, widen);
                Stream::Read { cap: c1, served: s1 }
            }
            (Stream::Write { cap: c1, served: mut s1 }, Stream::Write { cap: c2, served: s2 })
                if c1 == c2 =>
            {
                s1.merge(s2, widen);
                Stream::Write { cap: c1, served: s1 }
            }
            _ => Stream::Unknown,
        };
        *self != old
    }
}

/// FREP body bookkeeping: how many more instructions belong to the pending
/// body, and the per-element replay multiplicity (`rep + 1`) when constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrepPending {
    /// Instructions of the body not yet seen.
    pub remaining: u8,
    /// Total issue count per body instruction (`rep + 1`), if constant.
    pub mult: Option<u64>,
}

/// The abstract machine state at one program point.
#[derive(Clone, PartialEq, Debug)]
pub struct State {
    /// Constant values of the integer registers (`x0` is always 0).
    pub int: [Option<u32>; 32],
    /// Bitmask of integer registers written since entry.
    pub int_init: u32,
    /// Bitmask of FP registers written since entry.
    pub fp_init: u32,
    /// The SSR enable CSR bit.
    pub ssr_enabled: Tri,
    /// Arm/consumption state per stream.
    pub ssr: [Stream; NUM_SSRS],
    /// Pending config words per stream.
    pub ssr_cfg: [StreamCfg; NUM_SSRS],
    /// How many barriers this hart has executed.
    pub barriers: Interval,
    /// DMA source address latch, when constant.
    pub dm_src: Option<u32>,
    /// DMA destination address latch, when constant.
    pub dm_dst: Option<u32>,
    /// Set while inside a pending FREP body.
    pub frep: Option<FrepPending>,
}

impl State {
    fn entry(hart: u32) -> State {
        let mut int = [Some(0u32); 32];
        int[0] = Some(0);
        let _ = hart; // the hart constant enters via CSR_MHARTID reads
        State {
            int,
            int_init: 1, // x0 counts as initialized
            fp_init: 0,
            ssr_enabled: Tri::False,
            ssr: [Stream::Idle; NUM_SSRS],
            ssr_cfg: [StreamCfg::RESET; NUM_SSRS],
            barriers: Interval::ZERO,
            dm_src: Some(0),
            dm_dst: Some(0),
            frep: None,
        }
    }

    /// Constant value of an integer register (`x0` reads as 0).
    #[must_use]
    pub fn get(&self, r: IntReg) -> Option<u32> {
        if r.is_zero() {
            Some(0)
        } else {
            self.int[usize::from(r.index())]
        }
    }

    fn set(&mut self, r: IntReg, v: Option<u32>) {
        if !r.is_zero() {
            self.int[usize::from(r.index())] = v;
            self.int_init |= 1 << r.index();
        }
    }

    /// The replay multiplicity `[min, max]` of the instruction whose
    /// in-state this is: `(1, 1)` outside an FREP body, `(rep+1, rep+1)` in
    /// a body with a constant repetition count, `(1, INF)` otherwise.
    #[must_use]
    pub fn mult(&self) -> (u64, u64) {
        match self.frep {
            None => (1, 1),
            Some(FrepPending { mult: Some(m), .. }) => (m, m),
            Some(FrepPending { mult: None, .. }) => (1, INF),
        }
    }

    fn merge(&mut self, other: &State, widen: bool) -> bool {
        let mut changed = false;
        for i in 1..32 {
            let m = merge_const(self.int[i], other.int[i]);
            changed |= m != self.int[i];
            self.int[i] = m;
        }
        let ii = self.int_init & other.int_init;
        let fi = self.fp_init & other.fp_init;
        changed |= ii != self.int_init || fi != self.fp_init;
        self.int_init = ii;
        self.fp_init = fi;
        let en = self.ssr_enabled.merge(other.ssr_enabled);
        changed |= en != self.ssr_enabled;
        self.ssr_enabled = en;
        for k in 0..NUM_SSRS {
            changed |= self.ssr[k].merge(&other.ssr[k], widen);
            changed |= self.ssr_cfg[k].merge(&other.ssr_cfg[k]);
        }
        changed |= self.barriers.merge(other.barriers, widen);
        let ds = merge_const(self.dm_src, other.dm_src);
        let dd = merge_const(self.dm_dst, other.dm_dst);
        changed |= ds != self.dm_src || dd != self.dm_dst;
        self.dm_src = ds;
        self.dm_dst = dd;
        if self.frep != other.frep {
            changed |= self.frep.is_some();
            self.frep = None;
        }
        changed
    }
}

fn merge_const(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) if x == y => Some(x),
        _ => None,
    }
}

/// Precomputed operand facts of one instruction: register bitmasks and
/// `ft0..ft2` stream-slot counts. Built once per program ([`OpMeta::table`])
/// and shared by every hart's fixpoint, walks and checks, so the hot paths
/// read a couple of words instead of re-visiting operands per transfer.
#[derive(Clone, Copy, Default, Debug)]
pub struct OpMeta {
    /// Integer registers read.
    pub int_uses: u32,
    /// FP registers read.
    pub fp_uses: u32,
    /// FP registers written.
    pub fp_defs: u32,
    /// Read-operand slots per stream register `ft0..ft2`.
    pub ssr_uses: [u8; NUM_SSRS],
    /// Write-operand slots per stream register.
    pub ssr_defs: [u8; NUM_SSRS],
    /// Total stream-register operand slots (the "touches any `ftN`" gate).
    pub ssr_slots: u8,
}

impl OpMeta {
    fn of(inst: &Inst) -> OpMeta {
        let mut m = OpMeta::default();
        inst.for_each_use(|r| match r {
            RegRef::Int(x) => m.int_uses |= 1 << x.index(),
            RegRef::Fp(f) => {
                m.fp_uses |= 1 << f.index();
                let k = usize::from(f.index());
                if k < NUM_SSRS {
                    m.ssr_uses[k] += 1;
                }
            }
        });
        inst.for_each_def(|r| {
            if let RegRef::Fp(f) = r {
                m.fp_defs |= 1 << f.index();
                let k = usize::from(f.index());
                if k < NUM_SSRS {
                    m.ssr_defs[k] += 1;
                }
            }
        });
        m.ssr_slots = m.ssr_uses.iter().chain(&m.ssr_defs).sum();
        m
    }

    /// The operand table for a whole text section.
    #[must_use]
    pub fn table(text: &[Inst]) -> Vec<OpMeta> {
        text.iter().map(Self::of).collect()
    }
}

/// The converged dataflow result for one hart.
///
/// Only the in-state at each basic-block head is stored; per-instruction
/// states are recomputed on demand by [`walk`](Flow::walk) — for the
/// mostly-straight-line programs codegen emits, that is orders of magnitude
/// less state to allocate, clone and merge than a per-instruction table.
/// The identity one analysis run is bound to: `mhartid` reads resolve to
/// `hart` and cluster-id CSR reads to `cluster`, so both SPMD guards and
/// cluster-role guards prune to the analyzed path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HartCtx {
    /// The cluster id the cluster-id CSR returns.
    pub cluster: u32,
    /// The hart id `mhartid` returns.
    pub hart: u32,
}

impl HartCtx {
    /// Context for `hart` of `cluster`.
    #[must_use]
    pub fn new(cluster: u32, hart: u32) -> Self {
        HartCtx { cluster, hart }
    }
}

#[derive(Debug)]
pub struct Flow {
    ctx: HartCtx,
    /// Shared per-instruction operand facts (same table for every hart).
    metas: Rc<[OpMeta]>,
    /// Text index of every basic-block head, ascending.
    blocks: Vec<usize>,
    /// Converged in-state per block; `None` for blocks this hart never
    /// reaches (including constant-branch-pruned SPMD arms).
    heads: Vec<Option<State>>,
    /// Merged state at every reachable halt (`ecall`/`ebreak`); `None` when
    /// the hart has no reachable halt.
    pub exit: Option<State>,
}

impl Flow {
    /// Visits every instruction this hart reaches, in text order, with its
    /// in-state — recomputed per block from the converged head states — and
    /// its precomputed [`OpMeta`].
    pub fn walk(&self, text: &[Inst], mut f: impl FnMut(usize, &State, &OpMeta)) {
        for (bi, &b) in self.blocks.iter().enumerate() {
            let Some(head) = &self.heads[bi] else { continue };
            let mut st = head.clone();
            let end = self.blocks.get(bi + 1).copied().unwrap_or(text.len());
            #[allow(clippy::needless_range_loop)] // indexes text AND metas
            for i in b..end - 1 {
                f(i, &st, &self.metas[i]);
                transfer(&mut st, text[i], &self.metas[i], Cfg::pc(i), self.ctx);
            }
            // The post-state of the block's last instruction is never
            // observed, so its transfer is skipped.
            f(end - 1, &st, &self.metas[end - 1]);
        }
    }

    /// The in-state at text index `i`, if this hart reaches it. A point
    /// query over [`walk`](Self::walk) — prefer `walk` for scans.
    #[must_use]
    pub fn state_at(&self, text: &[Inst], want: usize) -> Option<State> {
        let mut found = None;
        self.walk(text, |i, st, _| {
            if i == want {
                found = Some(st.clone());
            }
        });
        found
    }

    /// The block id owning block-head index `s`.
    fn block_of(&self, s: usize) -> usize {
        self.blocks.binary_search(&s).expect("every successor edge lands on a block head")
    }
}

/// Whether `inst` ends a basic block (control transfer or terminator).
fn is_block_end(inst: Inst) -> bool {
    matches!(
        inst,
        Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Ecall | Inst::Ebreak
    )
}

/// Runs the abstract interpretation for `hart` (of cluster 0) to a fixpoint
/// over the basic-block graph and returns the converged [`Flow`]. Builds its
/// own operand table; when analyzing several harts of one program, build the
/// table once and use [`analyze_with`].
#[must_use]
pub fn analyze(text: &[Inst], graph: &Cfg, hart: u32) -> Flow {
    analyze_with(text, OpMeta::table(text).into(), graph, HartCtx::new(0, hart))
}

/// [`analyze`] with a caller-provided (shared) operand table and a full
/// (cluster, hart) identity.
#[must_use]
pub fn analyze_with(text: &[Inst], metas: Rc<[OpMeta]>, graph: &Cfg, ctx: HartCtx) -> Flow {
    let n = text.len();
    // Block leaders: entry, every branch/jump target, and the instruction
    // after every control transfer or terminator.
    let mut blocks = Vec::new();
    if n > 0 {
        let mut leader = vec![false; n];
        leader[0] = true;
        for i in 0..n {
            if is_block_end(text[i]) && i + 1 < n {
                leader[i + 1] = true;
            }
            if let Some(t) = graph.targets[i] {
                leader[t] = true;
            }
        }
        blocks = (0..n).filter(|&i| leader[i]).collect();
    }
    let nb = blocks.len();
    let mut flow = Flow { ctx, metas, blocks, heads: vec![None; nb], exit: None };
    if n == 0 {
        return flow;
    }
    flow.heads[0] = Some(State::entry(ctx.hart));
    let mut visits = vec![0u32; nb];
    let mut work = vec![0usize]; // block ids
    while let Some(bi) = work.pop() {
        let Some(mut st) = flow.heads[bi].clone() else { continue };
        let b = flow.blocks[bi];
        let end = flow.blocks.get(bi + 1).copied().unwrap_or(n);
        let last = end - 1;
        #[allow(clippy::needless_range_loop)] // indexes text AND metas
        for i in b..last {
            transfer(&mut st, text[i], &flow.metas[i], Cfg::pc(i), ctx);
        }
        // A halt is always a block end, so its in-state is in hand right
        // here. Merging it on every visit is exact: head states only grow
        // across visits and `transfer` is monotone, so the pre-convergence
        // halt states are all ⊑ the final one and the join collapses to it.
        if matches!(text[last], Inst::Ecall | Inst::Ebreak) {
            match &mut flow.exit {
                Some(e) => {
                    e.merge(&st, false);
                }
                None => flow.exit = Some(st.clone()),
            }
        }
        transfer(&mut st, text[last], &flow.metas[last], Cfg::pc(last), ctx);
        for &s in resolved_succs(text[last], &st, graph, last) {
            let si = flow.block_of(s);
            let widen = visits[si] >= WIDEN_AFTER;
            let changed = match &mut flow.heads[si] {
                Some(existing) => existing.merge(&st, widen),
                slot @ None => {
                    *slot = Some(st.clone());
                    true
                }
            };
            if changed {
                visits[si] += 1;
                if !work.contains(&si) {
                    work.push(si);
                }
            }
        }
    }
    flow
}

/// Successors of `i` given the post-state: a branch whose operands are both
/// constant follows only the edge it actually takes, which is what lets each
/// hart's `mhartid` guards prune the other harts' code.
fn resolved_succs<'a>(inst: Inst, out: &State, graph: &'a Cfg, i: usize) -> &'a [usize] {
    if let Inst::Branch { op, rs1, rs2, .. } = inst {
        if let (Some(a), Some(b)) = (out.get(rs1), out.get(rs2)) {
            let taken = op.taken(a, b);
            // succs[i] is [fallthrough, target] (deduped); pick the live one.
            let want = if taken { graph.targets[i] } else { Some(i + 1) };
            if let Some(w) = want {
                if let Some(pos) = graph.succs[i].iter().position(|&s| s == w) {
                    return &graph.succs[i][pos..=pos];
                }
            }
            return &[];
        }
    }
    &graph.succs[i]
}

/// Applies one instruction's effect to the state. `pc` is the instruction's
/// own address (for `auipc`/link values).
#[allow(clippy::too_many_lines)]
fn transfer(st: &mut State, inst: Inst, meta: &OpMeta, pc: u32, ctx: HartCtx) {
    // Replay multiplicity of *this* instruction, then retire it from the
    // pending body count.
    let (mult_lo, mult_hi) = st.mult();
    if let Some(p) = &mut st.frep {
        p.remaining -= 1;
        if p.remaining == 0 {
            st.frep = None;
        }
    }

    // SSR traffic: while the enable bit may be set, each ft0..ft2 operand
    // slot of an FP instruction pops (uses) or pushes (defs) one element
    // per issue. With the bit only *possibly* set, the min stays put and
    // the max grows — sound for both the over-read (min) and leftover
    // (max) claims. (Only FP instructions have stream-register operand
    // slots, so `ssr_slots` doubles as the is-fp gate.)
    if meta.ssr_slots != 0 && st.ssr_enabled.maybe() {
        let lo = if st.ssr_enabled == Tri::True { mult_lo } else { 0 };
        for k in 0..NUM_SSRS {
            let slots = u64::from(meta.ssr_uses[k]) + u64::from(meta.ssr_defs[k]);
            if slots != 0 {
                if let Stream::Read { served, .. } | Stream::Write { served, .. } = &mut st.ssr[k] {
                    served.add(slots * lo, mult_hi.saturating_mul(slots));
                }
            }
        }
    }

    match inst {
        Inst::Lui { rd, imm } => st.set(rd, Some(imm as u32)),
        Inst::Auipc { rd, imm } => st.set(rd, Some(pc.wrapping_add(imm as u32))),
        Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => st.set(rd, Some(pc.wrapping_add(4))),
        Inst::OpImm { op, rd, rs1, imm } => {
            let v = st.get(rs1).map(|a| op.eval(a, imm));
            st.set(rd, v);
        }
        Inst::OpReg { op, rd, rs1, rs2 } => {
            let v = match (st.get(rs1), st.get(rs2)) {
                (Some(a), Some(b)) => Some(op.eval(a, b)),
                _ => None,
            };
            st.set(rd, v);
        }
        Inst::Load { rd, .. } => st.set(rd, None),
        Inst::Csr { op, rd, csr, src } => {
            transfer_csr(st, op, rd, csr, src, ctx);
        }
        Inst::Scfgwi { value, addr } => {
            if let Some((word, ssr)) = SsrCfgWord::from_addr(addr) {
                let v = st.get(value);
                match word {
                    SsrCfgWord::Status => st.ssr_cfg[ssr].status = v,
                    SsrCfgWord::Repeat => st.ssr_cfg[ssr].repeat = v,
                    SsrCfgWord::Bound(0) => st.ssr_cfg[ssr].bound0 = v,
                    SsrCfgWord::Bound(_) | SsrCfgWord::Stride(_) => {}
                    SsrCfgWord::IdxBase | SsrCfgWord::IdxSize => {}
                    SsrCfgWord::Base => {
                        // Writing the base word arms the streamer.
                        let cfg = st.ssr_cfg[ssr];
                        st.ssr[ssr] = match cfg.status {
                            Some(s) if s & 1 == 1 => {
                                Stream::Write { cap: cfg.capacity(true), served: Interval::ZERO }
                            }
                            Some(_) => {
                                Stream::Read { cap: cfg.capacity(false), served: Interval::ZERO }
                            }
                            None => Stream::Unknown,
                        };
                    }
                }
            }
        }
        Inst::Scfgri { rd, .. } => st.set(rd, None),
        Inst::Dma { op, rd, rs1, .. } => {
            use snitch_riscv::ops::DmaOp;
            match op {
                DmaOp::Src => st.dm_src = st.get(rs1),
                DmaOp::Dst => st.dm_dst = st.get(rs1),
                DmaOp::CpyI | DmaOp::StatI => st.set(rd, None),
                DmaOp::Str | DmaOp::Rep => {
                    // 2-D descriptor state isn't modeled; a following copy
                    // still transfers `size` bytes per row from the latched
                    // addresses, which the bounds check treats 1-D (sound
                    // for the common memset/memcpy shapes codegen emits).
                }
            }
        }
        Inst::FrepO { rep, max_inst, .. } | Inst::FrepI { rep, max_inst, .. } => {
            st.frep = Some(FrepPending {
                remaining: max_inst,
                mult: st.get(rep).map(|r| u64::from(r) + 1),
            });
        }
        // FP ops landing in the integer RF.
        Inst::FpCmp { rd, .. }
        | Inst::FpCvtF2I { rd, .. }
        | Inst::FpMvF2X { rd, .. }
        | Inst::FpClass { rd, .. } => st.set(rd, None),
        _ => {}
    }

    // FP register file definite-init: any FP def marks the register
    // written. (Under SSR semantics a write to ft0..ft2 feeds the stream
    // instead, but init only *reads* this mask for non-stream registers.)
    st.fp_init |= meta.fp_defs;
}

fn transfer_csr(st: &mut State, op: CsrOp, rd: IntReg, csr: u16, src: u8, ctx: HartCtx) {
    match csr {
        CSR_SSR => {
            let bit = |v: u32| {
                if v & 1 == 1 {
                    Tri::True
                } else {
                    Tri::False
                }
            };
            st.ssr_enabled = match op {
                CsrOp::Rwi => bit(u32::from(src)),
                CsrOp::Rsi if src & 1 == 1 => Tri::True,
                CsrOp::Rci if src & 1 == 1 => Tri::False,
                CsrOp::Rsi | CsrOp::Rci => st.ssr_enabled,
                // Register forms: x0 source means pure read for set/clear;
                // otherwise the written value decides when constant.
                CsrOp::Rs | CsrOp::Rc if IntReg::new(src).is_zero() => st.ssr_enabled,
                CsrOp::Rw => match st.get(IntReg::new(src)) {
                    Some(v) => bit(v),
                    None => Tri::Unknown,
                },
                CsrOp::Rs | CsrOp::Rc => Tri::Unknown,
            };
            st.set(rd, None);
        }
        CSR_BARRIER => {
            st.barriers.add(1, 1);
            st.set(rd, Some(0));
        }
        CSR_MHARTID => st.set(rd, Some(ctx.hart)),
        CSR_CLUSTER_ID => st.set(rd, Some(ctx.cluster)),
        _ => st.set(rd, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::{FpReg, IntReg};

    fn flow_of(b: ProgramBuilder, hart: u32) -> (Vec<Inst>, Flow) {
        let p = b.build().unwrap();
        let text = p.text().to_vec();
        let graph = Cfg::build(&text);
        let flow = analyze(&text, &graph, hart);
        (text, flow)
    }

    #[test]
    fn constants_propagate_through_alu() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 6);
        b.addi(IntReg::A1, IntReg::A0, 4); // a1 = 10
        b.ecall();
        let (_, flow) = flow_of(b, 0);
        let exit = flow.exit.unwrap();
        assert_eq!(exit.get(IntReg::A1), Some(10));
        assert_eq!(exit.get(IntReg::ZERO), Some(0));
    }

    #[test]
    fn loop_counter_loses_constness_but_converges() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 3);
        b.label("loop");
        b.addi(IntReg::A0, IntReg::A0, -1);
        b.bnez(IntReg::A0, "loop");
        b.ecall();
        let (text, flow) = flow_of(b, 0);
        // At the loop head the counter differs between entry (3) and the
        // back edge, so it must be ⊤ (None), not any single constant.
        let head = flow.state_at(&text, 1).unwrap();
        assert_eq!(head.get(IntReg::A0), None);
        assert!(flow.exit.is_some());
    }

    #[test]
    fn mhartid_guard_prunes_other_harts_path() {
        let mut b = ProgramBuilder::new();
        b.parallel();
        b.csrr_mhartid(IntReg::A0);
        b.bnez(IntReg::A0, "other"); // 1
        b.li(IntReg::A1, 111); // 2: hart 0 only
        b.ecall(); // 3
        b.label("other");
        b.li(IntReg::A1, 222); // 4 (li small imm = one inst)
        b.ecall(); // 5
        let p = b.build().unwrap();
        let text = p.text().to_vec();
        let graph = Cfg::build(&text);
        let f0 = analyze(&text, &graph, 0);
        let f1 = analyze(&text, &graph, 1);
        assert_eq!(f0.exit.as_ref().unwrap().get(IntReg::A1), Some(111));
        assert!(f0.state_at(&text, 4).is_none(), "hart 0 never reaches the other arm");
        assert_eq!(f1.exit.as_ref().unwrap().get(IntReg::A1), Some(222));
        assert!(f1.state_at(&text, 2).is_none());
    }

    #[test]
    fn armed_stream_counts_frep_pops() {
        let mut b = ProgramBuilder::new();
        // Arm ssr0 as a 4-element read stream, then drain it with an FREP
        // body of one fadd issued 4 times.
        let base = b.tcdm_reserve("buf", 4 * 8, 8);
        b.li(IntReg::T0, 0); // status: read, 1-D
        b.scfgwi(IntReg::T0, 0, SsrCfgWord::Status);
        b.scfgwi(IntReg::T0, 0, SsrCfgWord::Repeat);
        b.li(IntReg::T1, 3); // bound0 = n-1
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
        b.li_u(IntReg::T2, base);
        b.scfgwi(IntReg::T2, 0, SsrCfgWord::Base);
        b.ssr_enable();
        b.li(IntReg::T3, 3); // rep = n-1
        b.frep_o(IntReg::T3, 1, 0, 0);
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
        b.fpu_fence();
        b.ssr_disable();
        b.ecall();
        let (_, flow) = flow_of(b, 0);
        let exit = flow.exit.unwrap();
        match exit.ssr[0] {
            Stream::Read { cap, served } => {
                assert_eq!(cap, Some(4));
                assert_eq!(served, Interval { min: 4, max: 4 });
            }
            ref s => panic!("expected armed read stream, got {s:?}"),
        }
        assert_eq!(exit.ssr_enabled, Tri::False);
    }

    #[test]
    fn barrier_counts_accumulate() {
        let mut b = ProgramBuilder::new();
        b.parallel();
        b.barrier();
        b.barrier();
        b.ecall();
        let (_, flow) = flow_of(b, 0);
        assert_eq!(flow.exit.unwrap().barriers, Interval { min: 2, max: 2 });
    }
}
