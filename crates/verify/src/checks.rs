//! The check catalog. One module per [`CheckId`]; each takes
//! the decoded text plus whatever slice of the analysis it needs (the CFG
//! for structural checks, the converged [`Flow`](crate::interp::Flow) for
//! dataflow checks) and appends [`Diagnostic`]s.

pub mod barrier;
pub mod frep;
pub mod init;
pub mod mem;
pub mod ssr;

use snitch_riscv::inst::Inst;

use crate::cfg::Cfg;
use crate::{CheckId, Diagnostic, Severity};

/// Which gated per-instruction checks care about `inst`: `(ssr, mem)`. The
/// fused walk's single dispatch point — integer ALU instructions (the bulk
/// of compiled programs) skip both check bodies entirely. `init` inspects
/// every instruction's operands and is not gated. Keep in sync with what
/// [`ssr::Scan::visit`] and [`mem::visit`] actually match on.
pub(crate) fn interest(inst: &Inst, meta: &crate::interp::OpMeta) -> (bool, bool) {
    let ssr =
        meta.ssr_slots != 0 || matches!(inst, Inst::Scfgwi { .. } | Inst::Ecall | Inst::Ebreak);
    let mem = matches!(
        inst,
        Inst::Load { .. }
            | Inst::Store { .. }
            | Inst::Flw { .. }
            | Inst::Fsw { .. }
            | Inst::Fld { .. }
            | Inst::Fsd { .. }
            | Inst::Dma { .. }
    );
    (ssr, mem)
}

/// Builds a diagnostic anchored at text index `i`.
pub(crate) fn diag(
    check: CheckId,
    severity: Severity,
    i: usize,
    inst: &Inst,
    hart: Option<u32>,
    message: String,
) -> Diagnostic {
    Diagnostic {
        check,
        severity,
        addr: Cfg::pc(i),
        cluster: None,
        hart,
        disasm: inst.to_string(),
        message,
    }
}
