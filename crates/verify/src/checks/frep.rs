//! FREP legality: the body an `frep` marks out must be something the FP
//! sequencer can actually buffer and replay.
//!
//! Structural (CFG-level, hart-agnostic) conditions, all [`Severity::Error`]
//! because the simulator faults or the hardware wedges on every one of them:
//!
//! * `max_inst` exceeds the sequencer depth — the body does not fit in the
//!   replay buffer;
//! * the body runs past the end of the text section;
//! * a nested `frep` inside a pending body;
//! * a body instruction the sequencer cannot replay: anything non-FP, a raw
//!   FP load/store, or an FP op that touches the integer register file
//!   (comparisons, moves, int conversions) — those synchronize with the
//!   integer core and cannot be buffered;
//! * a branch from outside the body jumping into it, which would issue body
//!   instructions without the sequencer set up.

use snitch_riscv::inst::Inst;
use snitch_sim::config::ClusterConfig;

use super::diag;
use crate::cfg::Cfg;
use crate::{CheckId, Diagnostic, Severity};

/// Reason a body instruction cannot be replayed, or `None` if it is legal.
fn illegal_reason(inst: &Inst) -> Option<&'static str> {
    if inst.is_frep() {
        return Some("nested FREP inside a pending FREP body");
    }
    if inst.frep_legal() {
        return None;
    }
    if !inst.is_fp() {
        return Some("non-FP instruction inside an FREP body");
    }
    if matches!(inst, Inst::Flw { .. } | Inst::Fld { .. } | Inst::Fsw { .. } | Inst::Fsd { .. }) {
        return Some("FP load/store inside an FREP body (the sequencer cannot replay memory ops)");
    }
    Some("FREP body instruction touches the integer register file")
}

/// Runs the check over every reachable `frep`.
pub fn check(text: &[Inst], config: &ClusterConfig, graph: &Cfg, out: &mut Vec<Diagnostic>) {
    let err = |i: usize, msg: String| {
        diag(CheckId::FrepLegality, Severity::Error, i, &text[i], None, msg)
    };
    // Body membership for the branch-into-body scan: index of the owning
    // frep, for every instruction inside some reachable body.
    let mut body_of: Vec<Option<usize>> = vec![None; text.len()];
    for (i, inst) in text.iter().enumerate() {
        if !graph.reachable[i] || !inst.is_frep() {
            continue;
        }
        let (Inst::FrepO { max_inst, .. } | Inst::FrepI { max_inst, .. }) = *inst else {
            continue;
        };
        let len = usize::from(max_inst);
        if len > config.sequencer_depth {
            out.push(err(
                i,
                format!(
                    "FREP body of {len} instruction(s) exceeds the sequencer depth \
                     ({} entries)",
                    config.sequencer_depth
                ),
            ));
        }
        if i + len >= text.len() {
            out.push(err(i, "FREP body runs past the end of the text section".to_string()));
            continue;
        }
        for j in i + 1..=i + len {
            body_of[j] = Some(i);
            if let Some(reason) = illegal_reason(&text[j]) {
                out.push(diag(
                    CheckId::FrepLegality,
                    Severity::Error,
                    j,
                    &text[j],
                    None,
                    reason.to_string(),
                ));
            }
        }
    }
    // Branches into a body from outside it (the frep itself entering at
    // body start is the legal entry).
    for (i, inst) in text.iter().enumerate() {
        if !graph.reachable[i] || !matches!(inst, Inst::Branch { .. } | Inst::Jal { .. }) {
            continue;
        }
        if let Some(t) = graph.targets[i] {
            if let Some(owner) = body_of[t] {
                if body_of[i] != Some(owner) && i != owner {
                    out.push(err(
                        i,
                        format!(
                            "branch into the middle of the FREP body at {:#010x}",
                            Cfg::pc(owner)
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::{FpReg, IntReg};

    fn run(b: ProgramBuilder) -> Vec<Diagnostic> {
        let p = b.build().unwrap();
        let graph = Cfg::build(p.text());
        let mut out = Vec::new();
        check(p.text(), &ClusterConfig::default(), &graph, &mut out);
        out
    }

    #[test]
    fn legal_frep_body_is_clean() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::T0, 3);
        b.frep_o(IntReg::T0, 2, 0, 0);
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FS1);
        b.fmul_d(FpReg::FS2, FpReg::FS2, FpReg::FS1);
        b.ecall();
        assert!(run(b).is_empty());
    }

    #[test]
    fn integer_instruction_in_body_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::T0, 3);
        b.frep_o(IntReg::T0, 1, 0, 0);
        b.addi(IntReg::A0, IntReg::A0, 1);
        b.ecall();
        let d = run(b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].check, CheckId::FrepLegality);
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("non-FP"), "{}", d[0].message);
    }

    #[test]
    fn body_past_text_end_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::T0, 3);
        b.frep_o(IntReg::T0, 4, 0, 0);
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FS1);
        // No further instructions: the body claims 4 insts, only 1 exists.
        let d = run(b);
        assert!(d.iter().any(|d| d.message.contains("past the end")), "{d:?}");
    }

    #[test]
    fn oversized_body_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::T0, 3);
        b.frep_o(IntReg::T0, 200, 0, 0);
        for _ in 0..200 {
            b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FS1);
        }
        b.ecall();
        let d = run(b);
        assert!(d.iter().any(|d| d.message.contains("sequencer depth")), "{d:?}");
    }

    #[test]
    fn branch_into_body_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::T0, 3); // 0
        b.bnez(IntReg::T0, "inside"); // 1: jumps into the body
        b.frep_o(IntReg::T0, 2, 0, 0); // 2
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FS1); // 3
        b.label("inside");
        b.fmul_d(FpReg::FS2, FpReg::FS2, FpReg::FS1); // 4
        b.ecall();
        let d = run(b);
        assert!(d.iter().any(|d| d.message.contains("branch into")), "{d:?}");
    }
}
