//! Statically-resolvable memory bounds: every load/store/DMA descriptor
//! whose address the constant propagation pins down is checked against the
//! cluster memory map.
//!
//! Unmapped or out-of-range accesses are [`Severity::Error`]s — the
//! simulator faults on them (`access to unmapped address ...`). Misaligned
//! accesses are [`Severity::Warning`]s: the simulator tolerates them, but
//! they split TCDM bank lines on real hardware. Accesses whose base register
//! is not constant at the access site are silently skipped — this check only
//! ever claims what it can prove.

use snitch_asm::layout::{alias_cluster, is_l2, is_main, is_tcdm};
use snitch_riscv::inst::Inst;
use snitch_riscv::ops::DmaOp;

use super::diag;
use crate::interp::{Flow, State};
use crate::{CheckId, Diagnostic, Severity};

/// `[addr, addr + size)` lies fully inside one mapped region of a system
/// with `clusters` clusters: TCDM, main memory, shared L2, or the TCDM
/// alias window of an instantiated cluster.
fn span_mapped(addr: u32, size: u32, clusters: usize) -> bool {
    let end = addr.wrapping_add(size - 1);
    if end < addr {
        return false;
    }
    if (is_tcdm(addr) && is_tcdm(end)) || (is_main(addr) && is_main(end)) {
        return true;
    }
    if is_l2(addr) && is_l2(end) {
        return true;
    }
    // Alias windows route to the target cluster's TCDM; a span is mapped
    // when both ends fall inside the same instantiated cluster's window
    // (within TCDM bounds — `alias_cluster` is `None` past them).
    matches!((alias_cluster(addr), alias_cluster(end)),
        (Some((ka, _)), Some((kb, _))) if ka == kb && ka < clusters)
}

/// Whether the address lands inside a region that exists in this system's
/// memory map — picks the "runs past the end" wording over "unmapped
/// address". Alias windows of clusters the system does not instantiate do
/// not exist, so stores there read as plain unmapped accesses.
fn in_known_region(addr: u32, clusters: usize) -> bool {
    is_tcdm(addr)
        || is_main(addr)
        || is_l2(addr)
        || matches!(alias_cluster(addr), Some((k, _)) if k < clusters)
}

/// Processes instruction `i` given its in-state (stateless — called from the
/// fused per-instruction walk; see [`super::ssr::Scan`]).
pub fn visit(
    text: &[Inst],
    i: usize,
    st: &State,
    hart: u32,
    clusters: usize,
    out: &mut Vec<Diagnostic>,
) {
    let inst = &text[i];
    {
        // Plain loads/stores with a constant base.
        let access = match *inst {
            Inst::Load { op, rs1, offset, .. } => Some((rs1, offset, op.size())),
            Inst::Store { op, rs1, offset, .. } => Some((rs1, offset, op.size())),
            Inst::Flw { rs1, offset, .. } | Inst::Fsw { rs1, offset, .. } => Some((rs1, offset, 4)),
            Inst::Fld { rs1, offset, .. } | Inst::Fsd { rs1, offset, .. } => Some((rs1, offset, 8)),
            _ => None,
        };
        if let Some((rs1, offset, size)) = access {
            if let Some(base) = st.get(rs1) {
                let addr = base.wrapping_add(offset as u32);
                if !span_mapped(addr, size, clusters) {
                    let what = if in_known_region(addr, clusters) {
                        format!(
                            "{size}-byte access at {addr:#010x} runs past the end of its \
                                 memory region"
                        )
                    } else {
                        format!("access to unmapped address {addr:#010x}")
                    };
                    out.push(diag(CheckId::MemBounds, Severity::Error, i, inst, Some(hart), what));
                } else if addr % size != 0 {
                    out.push(diag(
                        CheckId::MemBounds,
                        Severity::Warning,
                        i,
                        inst,
                        Some(hart),
                        format!("misaligned {size}-byte access at {addr:#010x}"),
                    ));
                }
            }
        }
        // DMA copies with statically-known descriptor.
        if let Inst::Dma { op: DmaOp::CpyI, rs1, .. } = *inst {
            let (Some(src), Some(dst), Some(size)) = (st.dm_src, st.dm_dst, st.get(rs1)) else {
                return;
            };
            if size == 0 {
                return;
            }
            for (name, addr) in [("source", src), ("destination", dst)] {
                if !span_mapped(addr, size, clusters) {
                    let what = if in_known_region(addr, clusters) {
                        format!(
                            "DMA {name} range {addr:#010x}+{size} runs past the end of \
                                 its memory region"
                        )
                    } else {
                        format!("DMA {name} is an unmapped address {addr:#010x}")
                    };
                    out.push(diag(CheckId::MemBounds, Severity::Error, i, inst, Some(hart), what));
                }
            }
        }
    }
}

/// Runs the check for one hart (of a `clusters`-cluster system) over the
/// converged dataflow.
pub fn check(text: &[Inst], flow: &Flow, hart: u32, clusters: usize, out: &mut Vec<Diagnostic>) {
    flow.walk(text, |i, st, _meta| visit(text, i, st, hart, clusters, out));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::interp;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_asm::layout::{TCDM_BASE, TCDM_SIZE};
    use snitch_riscv::reg::{FpReg, IntReg};

    fn run_on(b: ProgramBuilder, clusters: usize) -> Vec<Diagnostic> {
        let p = b.build().unwrap();
        let text = p.text().to_vec();
        let graph = Cfg::build(&text);
        let flow = interp::analyze(&text, &graph, 0);
        let mut out = Vec::new();
        check(&text, &flow, 0, clusters, &mut out);
        out
    }

    fn run(b: ProgramBuilder) -> Vec<Diagnostic> {
        run_on(b, 1)
    }

    #[test]
    fn in_bounds_tcdm_access_is_clean() {
        let mut b = ProgramBuilder::new();
        let buf = b.tcdm_f64("x", &[1.0, 2.0]);
        b.li_u(IntReg::A0, buf);
        b.fld(FpReg::FS0, IntReg::A0, 8);
        b.fsd(FpReg::FS0, IntReg::A0, 0);
        b.ecall();
        let d = run(b);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn store_to_unmapped_address_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.li_u(IntReg::A0, 0x0300_0000);
        b.sw(IntReg::A1, IntReg::A0, 0);
        b.ecall();
        let d = run(b);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("unmapped address 0x03000000"), "{}", d[0].message);
    }

    #[test]
    fn l2_and_instantiated_alias_windows_are_mapped() {
        use snitch_asm::layout::{tcdm_alias_base, L2_BASE};
        let mut b = ProgramBuilder::new();
        b.li_u(IntReg::A0, L2_BASE + 16);
        b.sw(IntReg::A1, IntReg::A0, 0);
        b.li_u(IntReg::A0, tcdm_alias_base(1) + 8);
        b.sw(IntReg::A1, IntReg::A0, 0);
        b.ecall();
        let d = run_on(b, 2);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn alias_window_of_an_uninstantiated_cluster_is_unmapped() {
        use snitch_asm::layout::tcdm_alias_base;
        let mut b = ProgramBuilder::new();
        b.li_u(IntReg::A0, tcdm_alias_base(3));
        b.sw(IntReg::A1, IntReg::A0, 0);
        b.ecall();
        let d = run_on(b, 2);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("unmapped"), "{}", d[0].message);
    }

    #[test]
    fn access_straddling_the_tcdm_end_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.li_u(IntReg::A0, TCDM_BASE + TCDM_SIZE - 4);
        b.fld(FpReg::FS0, IntReg::A0, 0); // 8-byte read, last 4 bytes out
        b.ecall();
        let d = run(b);
        assert!(
            d.iter().any(|d| d.severity == Severity::Error && d.message.contains("runs past")),
            "{d:?}"
        );
    }

    #[test]
    fn misaligned_access_is_a_warning() {
        let mut b = ProgramBuilder::new();
        b.li_u(IntReg::A0, TCDM_BASE + 4);
        b.fld(FpReg::FS0, IntReg::A0, 0); // 8-byte load at 4-byte alignment
        b.ecall();
        let d = run(b);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("misaligned"), "{}", d[0].message);
    }

    #[test]
    fn dma_with_unmapped_destination_is_an_error() {
        let mut b = ProgramBuilder::new();
        let buf = b.tcdm_f64("x", &[1.0; 8]);
        b.li_u(IntReg::A0, buf);
        b.dmsrc(IntReg::A0);
        b.li_u(IntReg::A1, 0x0300_0000);
        b.dmdst(IntReg::A1);
        b.li(IntReg::A2, 64);
        b.dmcpyi(IntReg::A3, IntReg::A2);
        b.ecall();
        let d = run(b);
        assert!(
            d.iter()
                .any(|d| d.severity == Severity::Error && d.message.contains("DMA destination")),
            "{d:?}"
        );
    }

    #[test]
    fn unknown_base_is_skipped() {
        let mut b = ProgramBuilder::new();
        let buf = b.tcdm_u32("p", &[TCDM_BASE]);
        b.li_u(IntReg::A0, buf);
        b.lw(IntReg::A1, IntReg::A0, 0); // a1 now unknown
        b.sw(IntReg::ZERO, IntReg::A1, 0); // can't prove anything: silent
        b.ecall();
        let d = run(b);
        assert!(d.is_empty(), "{d:?}");
    }
}
