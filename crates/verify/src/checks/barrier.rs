//! Barrier consistency across the harts of an SPMD program.
//!
//! Every hart of a `parallel()` program must execute the same number of
//! hardware barriers, or a hart ends up waiting at a barrier its peers never
//! reach. The simulator's release rule (waiting + halted == all harts) means
//! a *halted* peer lets the others through — a mismatch shows up as skewed
//! phase boundaries rather than a hang — but real hardware wedges, so a
//! provable mismatch is a [`Severity::Error`] (this is the static face of
//! the sim's deadlock detector).
//!
//! The per-hart counts come from each hart's merged exit state, as intervals
//! (loops with data-dependent trip counts widen to "at least N"). Disjoint
//! intervals are a definite mismatch; a non-singleton interval is only a
//! warning (the count is data-dependent, which SPMD code normally avoids).
//! A barrier in a non-`parallel()` program is a warning too: only hart 0
//! boots, so the barrier is a no-op.

use snitch_riscv::csr::CSR_BARRIER;
use snitch_riscv::inst::Inst;

use super::diag;
use crate::cfg::Cfg;
use crate::interp::{Interval, State, INF};
use crate::{CheckId, Diagnostic, Severity};

fn fmt(iv: Interval) -> String {
    if iv.min == iv.max {
        format!("{}", iv.min)
    } else if iv.max == INF {
        format!("at least {}", iv.min)
    } else {
        format!("between {} and {}", iv.min, iv.max)
    }
}

/// Runs the check given each hart's merged exit state.
pub fn check(
    text: &[Inst],
    graph: &Cfg,
    parallel: bool,
    harts: &[u32],
    exits: &[Option<State>],
    out: &mut Vec<Diagnostic>,
) {
    let Some(anchor) = text.iter().enumerate().position(|(i, inst)| {
        graph.reachable[i] && matches!(inst, Inst::Csr { csr, .. } if *csr == CSR_BARRIER)
    }) else {
        return; // no reachable barrier anywhere: nothing to compare
    };
    if !parallel {
        out.push(diag(
            CheckId::BarrierConsistency,
            Severity::Warning,
            anchor,
            &text[anchor],
            None,
            "hardware barrier in a non-parallel program (only hart 0 boots, so it \
             synchronizes nothing)"
                .to_string(),
        ));
        return;
    }
    // A hart with no reachable halt spins forever; its barrier count is not
    // a finite exit property, so stay silent rather than guess.
    let counts: Vec<(u32, Interval)> =
        harts.iter().zip(exits).filter_map(|(&h, e)| e.as_ref().map(|s| (h, s.barriers))).collect();
    if counts.len() < harts.len() {
        return;
    }
    for (a_idx, &(ha, ia)) in counts.iter().enumerate() {
        for &(hb, ib) in &counts[a_idx + 1..] {
            if ia.max < ib.min || ib.max < ia.min {
                out.push(diag(
                    CheckId::BarrierConsistency,
                    Severity::Error,
                    anchor,
                    &text[anchor],
                    None,
                    format!(
                        "barrier-count mismatch: hart {ha} executes {} barrier(s) but \
                         hart {hb} executes {} (a hart waiting at a barrier its peers \
                         never reach wedges real hardware)",
                        fmt(ia),
                        fmt(ib)
                    ),
                ));
                return; // one mismatch explains the program; avoid O(n²) spam
            }
        }
    }
    for &(h, iv) in &counts {
        if iv.min != iv.max {
            out.push(diag(
                CheckId::BarrierConsistency,
                Severity::Warning,
                anchor,
                &text[anchor],
                Some(h),
                format!("barrier count on hart {h} is data-dependent ({})", fmt(iv)),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::IntReg;

    fn run(b: ProgramBuilder, cores: usize) -> Vec<Diagnostic> {
        let p = b.build().unwrap();
        let text = p.text().to_vec();
        let graph = Cfg::build(&text);
        let harts: Vec<u32> =
            if p.parallel() { (0..u32::try_from(cores).unwrap()).collect() } else { vec![0] };
        let exits: Vec<Option<State>> =
            harts.iter().map(|&h| interp::analyze(&text, &graph, h).exit).collect();
        let mut out = Vec::new();
        check(&text, &graph, p.parallel(), &harts, &exits, &mut out);
        out
    }

    #[test]
    fn matched_barriers_are_clean() {
        let mut b = ProgramBuilder::new();
        b.parallel();
        b.barrier();
        b.barrier();
        b.ecall();
        let d = run(b, 4);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hart_guarded_barrier_is_a_mismatch_error() {
        let mut b = ProgramBuilder::new();
        b.parallel();
        b.csrr_mhartid(IntReg::A0);
        b.bnez(IntReg::A0, "skip"); // only hart 0 takes the barrier
        b.barrier();
        b.label("skip");
        b.ecall();
        let d = run(b, 2);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, CheckId::BarrierConsistency);
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("mismatch"), "{}", d[0].message);
    }

    #[test]
    fn barrier_in_single_hart_program_is_a_warning() {
        let mut b = ProgramBuilder::new();
        b.barrier();
        b.ecall();
        let d = run(b, 1);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("non-parallel"), "{}", d[0].message);
    }
}
