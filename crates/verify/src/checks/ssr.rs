//! SSR stream discipline: while the SSR enable bit is set, `ft0..ft2` are
//! stream ports, not registers, and every access must line up with an armed
//! stream of the right direction and enough remaining elements.
//!
//! Errors (the simulator deadlocks / the FPU stalls forever on each):
//!
//! * FP read of `ftN` while SSR-enabled with stream `N` unarmed, or armed as
//!   a write stream (and the symmetric write cases);
//! * popping past the configured element count
//!   (`(bound0 + 1) * (rep + 1)`) — the streamer has nothing left to serve;
//! * `scfgwi` to a stream that is definitely still busy (elements remaining)
//!   — config writes stall until the streamer drains, i.e. forever.
//!
//! Warnings (well-defined but almost certainly a bug):
//!
//! * a stream armed but `ftN` never accessed anywhere in the program;
//! * elements left unconsumed at exit (the stream is still busy when the
//!   hart halts);
//! * the SSR enable bit still set at exit.

use snitch_riscv::csr::{SsrCfgWord, NUM_SSRS};
use snitch_riscv::inst::Inst;

use super::diag;
use crate::interp::{Flow, OpMeta, State, Stream, Tri};
use crate::{CheckId, Diagnostic, Severity};

/// Per-hart streaming scan. Feed every reached instruction through
/// [`Scan::visit`] — from one [`Flow::walk`] fused with the other
/// per-instruction checks — then call [`Scan::finish`] for the exit lints.
pub struct Scan {
    hart: u32,
    touched: [bool; NUM_SSRS],
    armed_at: [Option<usize>; NUM_SSRS],
    halt_at: Option<usize>,
}

impl Scan {
    /// A fresh scan for `hart`.
    #[must_use]
    pub fn new(hart: u32) -> Self {
        Scan { hart, touched: [false; NUM_SSRS], armed_at: [None; NUM_SSRS], halt_at: None }
    }

    /// Processes instruction `i` given its in-state and operand facts.
    #[allow(clippy::too_many_lines)]
    pub fn visit(
        &mut self,
        text: &[Inst],
        i: usize,
        st: &State,
        meta: &OpMeta,
        out: &mut Vec<Diagnostic>,
    ) {
        let hart = self.hart;
        let inst = &text[i];
        if matches!(inst, Inst::Ecall | Inst::Ebreak) && self.halt_at.is_none() {
            self.halt_at = Some(i);
        }

        if let Inst::Scfgwi { addr, .. } = *inst {
            if let Some((word, k)) = SsrCfgWord::from_addr(addr) {
                if word == SsrCfgWord::Base && self.armed_at[k].is_none() {
                    self.armed_at[k] = Some(i);
                }
                // Reconfiguring a definitely-busy stream stalls forever.
                if let Stream::Read { cap: Some(c), served }
                | Stream::Write { cap: Some(c), served } = st.ssr[k]
                {
                    if served.max < c {
                        out.push(diag(
                            CheckId::SsrDiscipline,
                            Severity::Error,
                            i,
                            inst,
                            Some(hart),
                            format!(
                                "reconfigures stream {k} while it is still busy ({} of {c} \
                                 element(s) unconsumed — config writes stall until the \
                                 streamer drains)",
                                c - served.max
                            ),
                        ));
                    }
                }
            }
            return;
        }

        if meta.ssr_slots == 0 {
            return;
        }
        let uses = meta.ssr_uses.map(u64::from);
        let defs = meta.ssr_defs.map(u64::from);
        for k in 0..NUM_SSRS {
            if uses[k] + defs[k] > 0 {
                self.touched[k] = true;
            }
        }
        if st.ssr_enabled != Tri::True {
            return;
        }
        let (mult_lo, _) = st.mult();
        for k in 0..NUM_SSRS {
            let err = |msg: String| {
                diag(CheckId::SsrDiscipline, Severity::Error, i, inst, Some(hart), msg)
            };
            if uses[k] > 0 {
                match st.ssr[k] {
                    Stream::Idle => out.push(err(format!(
                        "reads ft{k} while SSR-enabled but stream {k} is not armed \
                         (the FPU stalls forever)"
                    ))),
                    Stream::Write { .. } => out.push(err(format!(
                        "reads ft{k} but stream {k} is armed as a write stream"
                    ))),
                    Stream::Read { cap: Some(c), served } if served.min + uses[k] * mult_lo > c => {
                        out.push(err(format!(
                            "pops past the end of stream {k}: at least {} element(s) \
                             consumed of {c} configured (the FPU stalls forever)",
                            served.min + uses[k] * mult_lo
                        )));
                    }
                    Stream::Read { .. } | Stream::Unknown => {}
                }
            }
            if defs[k] > 0 {
                match st.ssr[k] {
                    Stream::Idle => out.push(err(format!(
                        "writes ft{k} while SSR-enabled but stream {k} is not armed \
                         (the FPU stalls forever)"
                    ))),
                    Stream::Read { .. } => out.push(err(format!(
                        "writes ft{k} but stream {k} is armed as a read stream"
                    ))),
                    Stream::Write { cap: Some(c), served }
                        if served.min + defs[k] * mult_lo > c =>
                    {
                        out.push(err(format!(
                            "pushes past the end of stream {k}: at least {} element(s) \
                             written of {c} configured (the FPU stalls forever)",
                            served.min + defs[k] * mult_lo
                        )));
                    }
                    Stream::Write { .. } | Stream::Unknown => {}
                }
            }
        }
    }

    /// Emits the exit-state lints, anchored at the first reachable halt.
    pub fn finish(self, text: &[Inst], flow: &Flow, out: &mut Vec<Diagnostic>) {
        let hart = self.hart;
        let (Some(exit), Some(h)) = (&flow.exit, self.halt_at) else { return };
        let warn = |i: usize, msg: String| {
            diag(CheckId::SsrDiscipline, Severity::Warning, i, &text[i], Some(hart), msg)
        };
        if exit.ssr_enabled == Tri::True {
            out.push(warn(h, "SSR register semantics still enabled at exit".to_string()));
        }
        for k in 0..NUM_SSRS {
            if let Some(site) = self.armed_at[k] {
                if !self.touched[k] {
                    out.push(warn(
                        site,
                        format!("stream {k} is armed but ft{k} is never accessed"),
                    ));
                    continue;
                }
            }
            if let Stream::Read { cap: Some(c), served } | Stream::Write { cap: Some(c), served } =
                exit.ssr[k]
            {
                if served.max < c {
                    out.push(warn(
                        h,
                        format!(
                            "stream {k} leaves {} of {c} element(s) unconsumed at exit \
                             (streamer still busy)",
                            c - served.max
                        ),
                    ));
                }
            }
        }
    }
}

/// Runs the check for one hart over the converged dataflow.
pub fn check(text: &[Inst], flow: &Flow, hart: u32, out: &mut Vec<Diagnostic>) {
    let mut scan = Scan::new(hart);
    flow.walk(text, |i, st, meta| scan.visit(text, i, st, meta, out));
    scan.finish(text, flow, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::interp;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::{FpReg, IntReg};

    fn run(b: ProgramBuilder) -> Vec<Diagnostic> {
        let p = b.build().unwrap();
        let text = p.text().to_vec();
        let graph = Cfg::build(&text);
        let flow = interp::analyze(&text, &graph, 0);
        let mut out = Vec::new();
        check(&text, &flow, 0, &mut out);
        out
    }

    /// Arms stream `ssr` as an `n`-element read stream over fresh TCDM.
    fn arm_read(b: &mut ProgramBuilder, ssr: usize, n: u32) {
        let base = b.tcdm_reserve("ssrbuf", usize::try_from(n).unwrap() * 8, 8);
        b.li(IntReg::T0, 0);
        b.scfgwi(IntReg::T0, ssr, SsrCfgWord::Status);
        b.scfgwi(IntReg::T0, ssr, SsrCfgWord::Repeat);
        b.li(IntReg::T1, i32::try_from(n).unwrap() - 1);
        b.scfgwi(IntReg::T1, ssr, SsrCfgWord::Bound(0));
        b.li_u(IntReg::T2, base);
        b.scfgwi(IntReg::T2, ssr, SsrCfgWord::Base);
    }

    #[test]
    fn drained_stream_is_clean() {
        let mut b = ProgramBuilder::new();
        arm_read(&mut b, 0, 4);
        b.ssr_enable();
        b.li(IntReg::T3, 3);
        b.frep_o(IntReg::T3, 1, 0, 0);
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
        b.fpu_fence();
        b.ssr_disable();
        b.ecall();
        let d = run(b);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn read_of_unarmed_stream_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.ssr_enable();
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
        b.ecall();
        let d = run(b);
        assert!(
            d.iter().any(|d| d.severity == Severity::Error && d.message.contains("not armed")),
            "{d:?}"
        );
    }

    #[test]
    fn write_to_read_stream_is_an_error() {
        let mut b = ProgramBuilder::new();
        arm_read(&mut b, 1, 2);
        b.ssr_enable();
        b.fadd_d(FpReg::FT1, FpReg::FS0, FpReg::FS1);
        b.ecall();
        let d = run(b);
        assert!(
            d.iter()
                .any(|d| d.severity == Severity::Error
                    && d.message.contains("armed as a read stream")),
            "{d:?}"
        );
    }

    #[test]
    fn popping_past_the_bound_is_an_error() {
        let mut b = ProgramBuilder::new();
        arm_read(&mut b, 0, 2); // 2 elements...
        b.ssr_enable();
        b.li(IntReg::T3, 3); // ...but frep pops 4
        b.frep_o(IntReg::T3, 1, 0, 0);
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
        b.ecall();
        let d = run(b);
        assert!(
            d.iter().any(|d| d.severity == Severity::Error && d.message.contains("pops past")),
            "{d:?}"
        );
    }

    #[test]
    fn armed_but_never_accessed_is_a_warning() {
        let mut b = ProgramBuilder::new();
        arm_read(&mut b, 2, 4);
        b.ecall();
        let d = run(b);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("never accessed"), "{}", d[0].message);
    }

    #[test]
    fn leftover_elements_at_exit_are_a_warning() {
        let mut b = ProgramBuilder::new();
        arm_read(&mut b, 0, 4);
        b.ssr_enable();
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0); // pops 1 of 4
        b.fpu_fence();
        b.ssr_disable();
        b.ecall();
        let d = run(b);
        assert!(
            d.iter().any(|d| d.severity == Severity::Warning && d.message.contains("unconsumed")),
            "{d:?}"
        );
        assert!(!d.iter().any(|d| d.severity == Severity::Error), "{d:?}");
    }
}
