//! Definite initialization: reads of registers no path has written.
//!
//! The simulator (like the RTL testbench it models) zeroes both register
//! files at reset, so such a read is well-defined — it observes zero — and
//! this is a [`Severity::Warning`], not an error. It is still worth
//! flagging: relying on boot-time zeros breaks the moment a program runs
//! after another one warmed the register file, which is exactly what the
//! engine's program cache enables.
//!
//! `ft0..ft2` reads are skipped whenever the SSR enable bit may be set —
//! they are stream ports there, not registers. Each register is reported at
//! most once per hart, at its first reachable read site.

use snitch_riscv::csr::NUM_SSRS;
use snitch_riscv::inst::Inst;
use snitch_riscv::reg::{FpReg, IntReg};

use super::diag;
use crate::interp::{Flow, OpMeta, State};
use crate::{CheckId, Diagnostic, Severity};

/// Per-hart streaming scan; see [`super::ssr::Scan`] for the fused-walk
/// protocol. Tracks which registers were already reported so each fires at
/// most once, at its first reachable read site.
pub struct Scan {
    hart: u32,
    reported_int: u32,
    reported_fp: u32,
}

impl Scan {
    /// A fresh scan for `hart`.
    #[must_use]
    pub fn new(hart: u32) -> Self {
        Scan { hart, reported_int: 0, reported_fp: 0 }
    }

    /// Processes instruction `i` given its in-state and operand facts.
    pub fn visit(
        &mut self,
        text: &[Inst],
        i: usize,
        st: &State,
        meta: &OpMeta,
        out: &mut Vec<Diagnostic>,
    ) {
        let hart = self.hart;
        let inst = &text[i];
        // x0 (bit 0) reads are always fine.
        let mut ints = meta.int_uses & !st.int_init & !self.reported_int & !1;
        while ints != 0 {
            let idx = ints.trailing_zeros();
            ints &= ints - 1;
            self.reported_int |= 1 << idx;
            let x = IntReg::new(idx as u8);
            out.push(diag(
                CheckId::DefiniteInit,
                Severity::Warning,
                i,
                inst,
                Some(hart),
                format!(
                    "reads {x} before any write (relies on the boot-time \
                     zeroed register file)"
                ),
            ));
        }
        // While the SSR enable bit may be set, ft0..ft2 are stream ports,
        // not registers.
        let stream_ports = if st.ssr_enabled.maybe() { (1u32 << NUM_SSRS) - 1 } else { 0 };
        let mut fps = meta.fp_uses & !st.fp_init & !self.reported_fp & !stream_ports;
        while fps != 0 {
            let idx = fps.trailing_zeros();
            fps &= fps - 1;
            self.reported_fp |= 1 << idx;
            let f = FpReg::new(idx as u8);
            out.push(diag(
                CheckId::DefiniteInit,
                Severity::Warning,
                i,
                inst,
                Some(hart),
                format!(
                    "reads {f} before any write (relies on the boot-time \
                     zeroed register file)"
                ),
            ));
        }
    }
}

/// Runs the check for one hart over the converged dataflow.
pub fn check(text: &[Inst], flow: &Flow, hart: u32, out: &mut Vec<Diagnostic>) {
    let mut scan = Scan::new(hart);
    flow.walk(text, |i, st, meta| scan.visit(text, i, st, meta, out));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::interp;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::{FpReg, IntReg};

    fn run(b: ProgramBuilder) -> Vec<Diagnostic> {
        let p = b.build().unwrap();
        let text = p.text().to_vec();
        let graph = Cfg::build(&text);
        let flow = interp::analyze(&text, &graph, 0);
        let mut out = Vec::new();
        check(&text, &flow, 0, &mut out);
        out
    }

    #[test]
    fn written_then_read_is_clean() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 7);
        b.addi(IntReg::A1, IntReg::A0, 1);
        b.fcvt_d_w(FpReg::FS0, IntReg::A0);
        b.fadd_d(FpReg::FS1, FpReg::FS0, FpReg::FS0);
        b.ecall();
        let d = run(b);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn read_of_never_written_fp_reg_warns_once() {
        let mut b = ProgramBuilder::new();
        b.fadd_d(FpReg::FS1, FpReg::FA3, FpReg::FA3); // fa3 never written
        b.fmul_d(FpReg::FS2, FpReg::FA3, FpReg::FS1); // same reg: no 2nd report
        b.ecall();
        let d = run(b);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, CheckId::DefiniteInit);
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("fa3"), "{}", d[0].message);
    }

    #[test]
    fn write_on_only_one_path_still_warns() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 1);
        b.beqz(IntReg::A0, "skip"); // not taken, but operands are const...
        b.li(IntReg::A1, 5);
        b.label("skip");
        b.addi(IntReg::A2, IntReg::A1, 0);
        b.ecall();
        // With a0 constant the branch resolves not-taken, so a1 *is*
        // definitely written on the only live path: clean.
        let d = run(b);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn x0_reads_never_warn() {
        let mut b = ProgramBuilder::new();
        b.addi(IntReg::A0, IntReg::ZERO, 3);
        b.ecall();
        assert!(run(b).is_empty());
    }
}
