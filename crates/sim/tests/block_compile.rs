//! Equivalence of the block-compiled fast path against the force-stepped
//! reference loop: pseudo-random programs (integer loops, FP and FREP
//! bodies, SSR streams, DMA copies with wait loops, barriers) must produce
//! bit-identical [`Stats`](snitch_sim::Stats) (including final cycle
//! counts), FP registers and memory with block compilation enabled and with
//! both fast paths disabled — plus engagement pins that the burst actually
//! fired, and fallback pins that tracers and the deadlock/timeout watchdogs
//! behave identically.
//!
//! The program generator is the shared one in [`snitch_sim::testing`]; the
//! quiescent-skip path has its own suite in `quiescent_skip.rs`.

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::layout::TCDM_BASE;
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::reg::IntReg;
use snitch_sim::cluster::Cluster;
use snitch_sim::config::ClusterConfig;
use snitch_sim::error::RunError;
use snitch_sim::testing::{observe_with, random_program, Observation, Rng};

/// The reference arm: every fast path off, pure per-cycle stepping.
fn observe_stepped(program: &snitch_asm::program::Program, cores: usize) -> Observation {
    observe_with(program, cores, |c| {
        c.set_block_compile(false);
        c.set_quiescent_skip(false);
    })
}

#[test]
fn block_matches_force_stepped_reference_on_random_programs() {
    let mut rng = Rng(0xb10c_cafe_f00d_0002);
    for case in 0..40 {
        let cores = [1, 1, 2, 4][rng.below(4) as usize];
        let frags = 3 + rng.below(5) as usize;
        let program = random_program(&mut rng, cores, frags);
        let fast = observe_with(&program, cores, |_| {}); // both fast paths on (defaults)
        let reference = observe_stepped(&program, cores);
        assert_eq!(fast.stats, reference.stats, "stats diverge (case {case}, cores {cores})");
        assert_eq!(fast.fp_regs, reference.fp_regs, "fp registers diverge (case {case})");
        assert_eq!(fast.tcdm, reference.tcdm, "memory diverges (case {case})");
    }
}

/// Engagement pin on the random population: single-core programs start with
/// every burst entry guard satisfied, so the fast path must fire on each of
/// them — and its counter stays disjoint from the quiescent-skip counter.
#[test]
fn block_burst_engages_on_random_single_core_programs() {
    let mut rng = Rng(0xb10c_cafe_f00d_0003);
    for case in 0..10 {
        let frags = 3 + rng.below(5) as usize;
        let program = random_program(&mut rng, 1, frags);
        let mut c = Cluster::new(ClusterConfig::default());
        c.load_program(&program);
        let stats = c.run().expect("random program completes");
        assert!(
            c.block_replayed_cycles() > 0,
            "burst never engaged (case {case}, {} cycles)",
            stats.cycles
        );
        assert!(
            c.block_replayed_cycles() + c.skipped_cycles() <= stats.cycles,
            "fast-path counters overlap (case {case})"
        );
    }
}

/// On a pure integer program the burst owns the run end to end: every
/// elapsed cycle is a replayed cycle, and the quiescent-skip path (which
/// would otherwise fast-forward the branch refill windows) never engages.
#[test]
fn block_burst_owns_a_pure_integer_run() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 500);
    b.label("spin");
    b.addi(IntReg::A0, IntReg::A0, -1);
    b.bnez(IntReg::A0, "spin");
    b.ecall();
    let p = b.build().unwrap();

    let mut c = Cluster::new(ClusterConfig::default());
    c.load_program(&p);
    let stats = c.run().unwrap();
    assert_eq!(c.block_replayed_cycles(), stats.cycles, "the whole run bursts");
    assert_eq!(c.skipped_cycles(), 0, "nothing left for the quiescent path");

    let mut reference = Cluster::new(ClusterConfig::default());
    reference.set_block_compile(false);
    reference.set_quiescent_skip(false);
    reference.load_program(&p);
    let ref_stats = reference.run().unwrap();
    assert_eq!(reference.block_replayed_cycles(), 0);
    assert_eq!(stats, ref_stats);
}

/// A recording tracer forces the stepper (the burst has no event hooks), so
/// traced runs must be cycle- and event-identical with block compilation on
/// vs off — and the engagement counter must stay at zero.
#[test]
fn traced_runs_are_event_identical_block_on_vs_off() {
    let mut rng = Rng(0xb10c_cafe_f00d_0004);
    let program = random_program(&mut rng, 1, 5);

    let run = |block: bool| {
        let mut c = Cluster::new(ClusterConfig::traced());
        c.set_block_compile(block);
        c.load_program(&program);
        let stats = c.run().expect("traced program completes");
        let replayed = c.block_replayed_cycles();
        let events = c.take_tracer().expect("cfg.trace attaches a tracer");
        (stats, replayed, events.into_events())
    };
    let (on_stats, on_replayed, on_events) = run(true);
    let (off_stats, _, off_events) = run(false);
    assert_eq!(on_replayed, 0, "a recording tracer must force the stepper");
    assert_eq!(on_stats, off_stats, "traced stats diverge");
    assert_eq!(on_events, off_events, "traced event streams diverge");
}

/// The deadlock watchdog must report the same cycle and pc with the burst
/// on and off (the burst bails out long before the deadlock window closes,
/// leaving the report to the reference path).
#[test]
fn deadlock_reported_at_identical_cycles_block_on_vs_off() {
    // An armed SSR stream nobody consumes: reconfiguring it stalls forever.
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 3);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Bound(0));
    b.li(IntReg::A0, 8);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Stride(0));
    b.li_u(IntReg::A0, TCDM_BASE);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Base); // arms
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Base); // stalls forever
    b.ecall();
    let p = b.build().unwrap();

    let run = |block: bool| {
        let mut c = Cluster::new(ClusterConfig::default());
        c.set_block_compile(block);
        c.set_quiescent_skip(block); // reference arm: everything off
        c.load_program(&p);
        c.run()
    };
    match (run(true), run(false)) {
        (
            Err(RunError::Deadlock { cycle: c1, pc: p1 }),
            Err(RunError::Deadlock { cycle: c2, pc: p2 }),
        ) => {
            assert_eq!((c1, p1), (c2, p2), "deadlock report must be cycle-identical");
        }
        other => panic!("expected two deadlocks, got {other:?}"),
    }
}

/// The timeout watchdog must fire at exactly `max_cycles` with the burst on
/// and off, even when the limit lands mid-burst (the burst clamps to it).
#[test]
fn timeout_reported_at_identical_cycles_block_on_vs_off() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 1_000_000);
    b.label("spin");
    b.addi(IntReg::A0, IntReg::A0, -1);
    b.bnez(IntReg::A0, "spin");
    b.ecall();
    let p = b.build().unwrap();

    let run = |block: bool, max_cycles: u64| {
        let mut c = Cluster::new(ClusterConfig { max_cycles, ..ClusterConfig::default() });
        c.set_block_compile(block);
        c.set_quiescent_skip(block);
        c.load_program(&p);
        c.run()
    };
    for max_cycles in 50..58 {
        match (run(true, max_cycles), run(false, max_cycles)) {
            (Err(RunError::Timeout { cycles: c1 }), Err(RunError::Timeout { cycles: c2 })) => {
                assert_eq!(c1, c2, "timeout at limit {max_cycles}");
                assert_eq!(c1, max_cycles);
            }
            other => panic!("expected two timeouts at limit {max_cycles}, got {other:?}"),
        }
    }
}
