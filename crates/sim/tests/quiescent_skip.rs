//! Equivalence of the quiescent-skip fast path against a force-stepped
//! reference loop: pseudo-random multi-core programs (integer loops, FP and
//! FREP bodies, SSR streams, DMA copies with wait loops, barriers) must
//! produce identical [`Stats`], final memory and register state with skip
//! enabled and disabled — and the deadlock/timeout watchdogs must report
//! their errors at exactly the same cycles.
//!
//! Deterministic generator (seeded xorshift), no external property-testing
//! dependency — the repo convention since PR 1.

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::layout::{MAIN_BASE, TCDM_BASE};
use snitch_asm::program::Program;
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::reg::{FpReg, IntReg};
use snitch_sim::cluster::Cluster;
use snitch_sim::config::ClusterConfig;
use snitch_sim::error::RunError;
use snitch_sim::stats::Stats;

/// Small xorshift PRNG for deterministic program generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits one random program fragment; `tag` uniquifies labels.
fn fragment(b: &mut ProgramBuilder, rng: &mut Rng, tag: usize, parallel: bool) {
    match rng.below(if parallel { 7 } else { 6 }) {
        // Integer loop with a data-dependent tail (taken branches produce
        // the silent refill windows the skip path targets).
        0 => {
            let iters = 2 + rng.below(6) as i32;
            b.li(IntReg::A1, iters);
            b.label(&format!("int{tag}"));
            b.addi(IntReg::T3, IntReg::T3, 3);
            b.mul(IntReg::T4, IntReg::T3, IntReg::A1);
            b.addi(IntReg::A1, IntReg::A1, -1);
            b.bnez(IntReg::A1, &format!("int{tag}"));
        }
        // FP block, sometimes fenced (unfenced blocks leave in-flight work
        // for the post-run drain loop to retire).
        1 => {
            b.li(IntReg::A2, 7 + tag as i32);
            b.fcvt_d_w(FpReg::FA1, IntReg::A2);
            b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FA1);
            b.fmul_d(FpReg::FS1, FpReg::FA1, FpReg::FA1);
            if rng.below(2) == 0 {
                b.fpu_fence();
            }
        }
        // FREP body replayed by the sequencer.
        2 => {
            b.li(IntReg::A2, 3 + tag as i32);
            b.fcvt_d_w(FpReg::FA2, IntReg::A2);
            b.li(IntReg::T0, rng.below(6) as i32 + 1);
            b.frep_o(IntReg::T0, 2, 0, 0);
            b.fadd_d(FpReg::FS2, FpReg::FS2, FpReg::FA2);
            b.fmadd_d(FpReg::FS3, FpReg::FA2, FpReg::FA2, FpReg::FS3);
            if rng.below(2) == 0 {
                b.fpu_fence();
            }
        }
        // SSR read stream summed through an FREP body.
        3 => {
            let n = 2 + rng.below(4) as u32; // elements
            let data: Vec<f64> = (0..n).map(|i| f64::from(i + tag as u32) * 0.5).collect();
            let xs = b.tcdm_f64(&format!("xs{tag}"), &data);
            b.li(IntReg::T1, 0);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Status);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Repeat);
            b.li(IntReg::T1, n as i32 - 1);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
            b.li(IntReg::T1, 8);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Stride(0));
            b.li_u(IntReg::T1, xs);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Base);
            b.ssr_enable();
            b.li(IntReg::T0, n as i32 - 1);
            b.frep_o(IntReg::T0, 1, 0, 0);
            b.fadd_d(FpReg::FS4, FpReg::FS4, FpReg::FT0);
            b.fpu_fence();
            b.ssr_disable();
        }
        // DMA copy main→TCDM with a busy-wait loop; sometimes unaligned so
        // beats split at bank-line boundaries.
        4 => {
            let unaligned = rng.below(2) == 0;
            let dst = b.tcdm_reserve(&format!("dma{tag}"), 64, 8);
            b.li_u(IntReg::A3, MAIN_BASE + 128 * tag as u32);
            b.li(IntReg::A4, 0x55 + tag as i32);
            b.sw(IntReg::A4, IntReg::A3, 0);
            b.sw(IntReg::A4, IntReg::A3, 16);
            b.dmsrc(IntReg::A3);
            b.li_u(IntReg::A4, if unaligned { dst + 4 } else { dst });
            b.dmdst(IntReg::A4);
            b.li(IntReg::A5, 24);
            b.dmcpyi(IntReg::A6, IntReg::A5);
            b.label(&format!("dw{tag}"));
            b.dmstati(IntReg::A7);
            b.bnez(IntReg::A7, &format!("dw{tag}"));
        }
        // Per-hart store (hart-offset slot so SPMD runs stay racefree).
        5 => {
            let slots = b.tcdm_reserve(&format!("sl{tag}"), 32 * 4, 4);
            b.csrr_mhartid(IntReg::A1);
            b.slli(IntReg::A2, IntReg::A1, 2);
            b.li_u(IntReg::A3, slots);
            b.add(IntReg::A2, IntReg::A2, IntReg::A3);
            b.addi(IntReg::A4, IntReg::A1, 11 + tag as i32);
            b.sw(IntReg::A4, IntReg::A2, 0);
            b.lw(IntReg::A5, IntReg::A2, 0);
            b.add(IntReg::T5, IntReg::T5, IntReg::A5);
        }
        // Barrier (SPMD only; every hart passes through the same sequence).
        _ => {
            b.barrier();
        }
    }
}

/// Builds a random program of `frags` fragments.
fn random_program(rng: &mut Rng, cores: usize, frags: usize) -> Program {
    let mut b = ProgramBuilder::new();
    if cores > 1 {
        b.parallel();
    }
    for tag in 0..frags {
        fragment(&mut b, rng, tag, cores > 1);
    }
    if cores > 1 {
        b.barrier();
    }
    b.ecall();
    b.build().expect("generated program assembles")
}

/// Runs `program` and captures (stats, per-hart FP registers, TCDM image).
fn observe(program: &Program, cores: usize, skip: bool) -> (Stats, Vec<u64>, Vec<u64>) {
    let cfg = ClusterConfig { cores, ..ClusterConfig::default() };
    let mut c = Cluster::new(cfg);
    c.set_quiescent_skip(skip);
    c.load_program(program);
    let stats = c.run().expect("random program completes");
    let mut regs = Vec::new();
    for h in 0..cores {
        for r in 0..32u8 {
            regs.push(c.fp_reg_of(h, FpReg::new(r)));
        }
    }
    // The generator allocates all data in the first few KiB of the TCDM.
    let tcdm: Vec<u64> =
        (0..2048).map(|i| c.mem().read(TCDM_BASE + i * 8, 8).expect("tcdm read")).collect();
    (stats, regs, tcdm)
}

#[test]
fn skip_matches_force_stepped_reference_on_random_programs() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for case in 0..40 {
        let cores = [1, 1, 2, 4][rng.below(4) as usize];
        let frags = 3 + rng.below(5) as usize;
        let program = random_program(&mut rng, cores, frags);
        let fast = observe(&program, cores, true);
        let reference = observe(&program, cores, false);
        assert_eq!(fast.0, reference.0, "stats diverge (case {case}, cores {cores})");
        assert_eq!(fast.1, reference.1, "fp registers diverge (case {case})");
        assert_eq!(fast.2, reference.2, "memory diverges (case {case})");
    }
}

/// The fast path must actually engage: a branch-heavy integer loop with an
/// idle FP subsystem spends two silent refill cycles per iteration, and the
/// skip path fast-forwards them.
#[test]
fn skip_engages_on_branch_refill_windows() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 500);
    b.label("spin");
    b.addi(IntReg::A0, IntReg::A0, -1);
    b.bnez(IntReg::A0, "spin");
    b.ecall();
    let p = b.build().unwrap();

    let mut c = Cluster::new(ClusterConfig::default());
    c.load_program(&p);
    let stats = c.run().unwrap();
    // 499 taken branches x 2 refill cycles, every one of them skipped.
    assert_eq!(c.skipped_cycles(), 998);
    assert_eq!(stats.stall_branch, 998, "skipped cycles still count as branch stalls");

    let mut reference = Cluster::new(ClusterConfig::default());
    reference.set_quiescent_skip(false);
    reference.load_program(&p);
    let ref_stats = reference.run().unwrap();
    assert_eq!(reference.skipped_cycles(), 0);
    assert_eq!(stats, ref_stats);
}

/// The deadlock watchdog must report the same cycle and pc with and without
/// the fast path (the skip clamps its jumps to the deadlock deadline).
#[test]
fn deadlock_reported_at_identical_cycles() {
    // An armed SSR stream nobody consumes: reconfiguring it stalls forever.
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 3);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Bound(0));
    b.li(IntReg::A0, 8);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Stride(0));
    b.li_u(IntReg::A0, TCDM_BASE);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Base); // arms
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Base); // stalls forever
    b.ecall();
    let p = b.build().unwrap();

    let run = |skip: bool| {
        let mut c = Cluster::new(ClusterConfig::default());
        c.set_quiescent_skip(skip);
        c.load_program(&p);
        c.run()
    };
    match (run(true), run(false)) {
        (
            Err(RunError::Deadlock { cycle: c1, pc: p1 }),
            Err(RunError::Deadlock { cycle: c2, pc: p2 }),
        ) => {
            assert_eq!((c1, p1), (c2, p2), "deadlock report must be cycle-identical");
        }
        other => panic!("expected two deadlocks, got {other:?}"),
    }
}

/// The timeout watchdog must likewise fire at exactly `max_cycles` in both
/// modes, even when the timeout lands inside a skippable window.
#[test]
fn timeout_reported_at_identical_cycles() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 1_000_000);
    b.label("spin");
    b.addi(IntReg::A0, IntReg::A0, -1);
    b.bnez(IntReg::A0, "spin"); // 2-cycle silent refill window per iteration
    b.ecall();
    let p = b.build().unwrap();

    let run = |skip: bool, max_cycles: u64| {
        let mut c = Cluster::new(ClusterConfig { max_cycles, ..ClusterConfig::default() });
        c.set_quiescent_skip(skip);
        c.load_program(&p);
        c.run()
    };
    // Sweep the limit across a few phases of the loop so some limits land
    // mid-refill (inside a skipped window) and some on issue cycles.
    for max_cycles in 50..58 {
        match (run(true, max_cycles), run(false, max_cycles)) {
            (Err(RunError::Timeout { cycles: c1 }), Err(RunError::Timeout { cycles: c2 })) => {
                assert_eq!(c1, c2, "timeout at limit {max_cycles}");
                assert_eq!(c1, max_cycles);
            }
            other => panic!("expected two timeouts at limit {max_cycles}, got {other:?}"),
        }
    }
}
