//! Equivalence of the quiescent-skip fast path against a force-stepped
//! reference loop: pseudo-random multi-core programs (integer loops, FP and
//! FREP bodies, SSR streams, DMA copies with wait loops, barriers) must
//! produce identical [`Stats`](snitch_sim::Stats), final memory and register
//! state with skip enabled and disabled — and the deadlock/timeout watchdogs
//! must report their errors at exactly the same cycles.
//!
//! Every cluster here runs with `set_block_compile(false)` so the suite
//! isolates the quiescent-skip path; the block-compiled path has its own
//! differential suite in `block_compile.rs`. The program generator is the
//! shared one in [`snitch_sim::testing`].

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::layout::TCDM_BASE;
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::reg::IntReg;
use snitch_sim::cluster::Cluster;
use snitch_sim::config::ClusterConfig;
use snitch_sim::error::RunError;
use snitch_sim::testing::{observe_with, random_program, Observation, Rng};

/// Runs with block compilation off and quiescent skip as given.
fn observe(program: &snitch_asm::program::Program, cores: usize, skip: bool) -> Observation {
    observe_with(program, cores, |c| {
        c.set_block_compile(false);
        c.set_quiescent_skip(skip);
    })
}

#[test]
fn skip_matches_force_stepped_reference_on_random_programs() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for case in 0..40 {
        let cores = [1, 1, 2, 4][rng.below(4) as usize];
        let frags = 3 + rng.below(5) as usize;
        let program = random_program(&mut rng, cores, frags);
        let fast = observe(&program, cores, true);
        let reference = observe(&program, cores, false);
        assert_eq!(fast.stats, reference.stats, "stats diverge (case {case}, cores {cores})");
        assert_eq!(fast.fp_regs, reference.fp_regs, "fp registers diverge (case {case})");
        assert_eq!(fast.tcdm, reference.tcdm, "memory diverges (case {case})");
    }
}

/// The fast path must actually engage: a branch-heavy integer loop with an
/// idle FP subsystem spends two silent refill cycles per iteration, and the
/// skip path fast-forwards them.
#[test]
fn skip_engages_on_branch_refill_windows() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 500);
    b.label("spin");
    b.addi(IntReg::A0, IntReg::A0, -1);
    b.bnez(IntReg::A0, "spin");
    b.ecall();
    let p = b.build().unwrap();

    let mut c = Cluster::new(ClusterConfig::default());
    c.set_block_compile(false);
    c.load_program(&p);
    let stats = c.run().unwrap();
    // 499 taken branches x 2 refill cycles, every one of them skipped.
    assert_eq!(c.skipped_cycles(), 998);
    assert_eq!(stats.stall_branch, 998, "skipped cycles still count as branch stalls");

    let mut reference = Cluster::new(ClusterConfig::default());
    reference.set_block_compile(false);
    reference.set_quiescent_skip(false);
    reference.load_program(&p);
    let ref_stats = reference.run().unwrap();
    assert_eq!(reference.skipped_cycles(), 0);
    assert_eq!(stats, ref_stats);
}

/// The deadlock watchdog must report the same cycle and pc with and without
/// the fast path (the skip clamps its jumps to the deadlock deadline).
#[test]
fn deadlock_reported_at_identical_cycles() {
    // An armed SSR stream nobody consumes: reconfiguring it stalls forever.
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 3);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Bound(0));
    b.li(IntReg::A0, 8);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Stride(0));
    b.li_u(IntReg::A0, TCDM_BASE);
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Base); // arms
    b.scfgwi(IntReg::A0, 0, SsrCfgWord::Base); // stalls forever
    b.ecall();
    let p = b.build().unwrap();

    let run = |skip: bool| {
        let mut c = Cluster::new(ClusterConfig::default());
        c.set_block_compile(false);
        c.set_quiescent_skip(skip);
        c.load_program(&p);
        c.run()
    };
    match (run(true), run(false)) {
        (
            Err(RunError::Deadlock { cycle: c1, pc: p1 }),
            Err(RunError::Deadlock { cycle: c2, pc: p2 }),
        ) => {
            assert_eq!((c1, p1), (c2, p2), "deadlock report must be cycle-identical");
        }
        other => panic!("expected two deadlocks, got {other:?}"),
    }
}

/// The timeout watchdog must likewise fire at exactly `max_cycles` in both
/// modes, even when the timeout lands inside a skippable window.
#[test]
fn timeout_reported_at_identical_cycles() {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::A0, 1_000_000);
    b.label("spin");
    b.addi(IntReg::A0, IntReg::A0, -1);
    b.bnez(IntReg::A0, "spin"); // 2-cycle silent refill window per iteration
    b.ecall();
    let p = b.build().unwrap();

    let run = |skip: bool, max_cycles: u64| {
        let mut c = Cluster::new(ClusterConfig { max_cycles, ..ClusterConfig::default() });
        c.set_block_compile(false);
        c.set_quiescent_skip(skip);
        c.load_program(&p);
        c.run()
    };
    // Sweep the limit across a few phases of the loop so some limits land
    // mid-refill (inside a skipped window) and some on issue cycles.
    for max_cycles in 50..58 {
        match (run(true, max_cycles), run(false, max_cycles)) {
            (Err(RunError::Timeout { cycles: c1 }), Err(RunError::Timeout { cycles: c2 })) => {
                assert_eq!(c1, c2, "timeout at limit {max_cycles}");
                assert_eq!(c1, max_cycles);
            }
            other => panic!("expected two timeouts at limit {max_cycles}, got {other:?}"),
        }
    }
}
