//! Stream semantic register (SSR) data movers, including ISSR indirection.
//!
//! Snitch maps the FP registers `ft0..ft2` onto three hardware streamers when
//! the SSR CSR is set: reads pop elements prefetched from an affine (or, for
//! ISSRs, indirect) address pattern; writes push results that a streamer
//! drains to memory. Streams are configured through `scfgwi` writes (see
//! [`snitch_riscv::csr::SsrCfgWord`]); writing the `Base` word arms the
//! streamer.
//!
//! Reconfiguring a streamer that is still active stalls the integer core
//! until the stream completes — the synchronization that makes the COPIFT
//! per-block SSR reprogramming safe.

use std::collections::VecDeque;

use snitch_riscv::csr::SsrCfgWord;

use crate::mem::{Memory, TcdmArbiter, TcdmPort};

/// Shadow configuration written by `scfgwi`.
#[derive(Clone, Copy, Debug, Default)]
struct SsrConfig {
    write_mode: bool,
    indirect: bool,
    /// Active dimensions minus one (0..=3).
    dims: u8,
    /// Four-byte elements if true, else eight-byte.
    elem4: bool,
    bounds: [u32; 4],
    strides: [i32; 4],
    repeat: u32,
    base: u32,
    idx_base: u32,
    /// log2 of the index element size in bytes (0, 1 or 2).
    idx_size_log2: u8,
}

/// One SSR data mover.
#[derive(Clone, Debug)]
pub struct Ssr {
    cfg: SsrConfig,
    fifo_capacity: usize,
    active: bool,
    done_generating: bool,
    counters: [u32; 4],
    idx_counter: u32,
    pending_index: Option<u32>,
    data_fifo: VecDeque<u64>,
    write_reserved: usize,
    beats: u64,
}

impl Ssr {
    /// Creates an idle streamer with the given data-FIFO depth.
    #[must_use]
    pub fn new(fifo_capacity: usize) -> Self {
        assert!(fifo_capacity > 0);
        Ssr {
            cfg: SsrConfig::default(),
            fifo_capacity,
            active: false,
            done_generating: false,
            counters: [0; 4],
            idx_counter: 0,
            pending_index: None,
            data_fifo: VecDeque::with_capacity(fifo_capacity),
            write_reserved: 0,
            beats: 0,
        }
    }

    /// Restores the just-constructed idle state (configuration cleared,
    /// nothing armed, counters zeroed), reusing the data FIFO allocation —
    /// the allocation-free equivalent of `Ssr::new(fifo_capacity)`.
    pub fn reset(&mut self) {
        self.cfg = SsrConfig::default();
        self.active = false;
        self.done_generating = false;
        self.counters = [0; 4];
        self.idx_counter = 0;
        self.pending_index = None;
        self.data_fifo.clear();
        self.write_reserved = 0;
        self.beats = 0;
    }

    /// Whether the streamer still owns its configuration: it has been armed
    /// and has not finished generating/draining its stream. The core must
    /// stall configuration writes while this holds.
    #[must_use]
    pub fn busy(&self) -> bool {
        if !self.active {
            return false;
        }
        if self.cfg.write_mode {
            !(self.done_generating && self.data_fifo.is_empty() && self.write_reserved == 0)
        } else {
            // A read stream is released once all elements are generated and
            // consumed.
            !(self.done_generating && self.data_fifo.is_empty())
        }
    }

    /// Writes a configuration word. The caller must ensure `!self.busy()`.
    pub fn write_cfg(&mut self, word: SsrCfgWord, value: u32) {
        debug_assert!(!self.busy(), "configuration write to a busy streamer");
        match word {
            SsrCfgWord::Status => {
                self.cfg.write_mode = value & 1 != 0;
                self.cfg.dims = ((value >> 1) & 0b11) as u8;
                self.cfg.indirect = value & 0b1000 != 0;
                self.cfg.elem4 = value & 0b1_0000 != 0;
            }
            SsrCfgWord::Repeat => self.cfg.repeat = value,
            SsrCfgWord::Bound(d) => self.cfg.bounds[d as usize] = value,
            SsrCfgWord::Stride(d) => self.cfg.strides[d as usize] = value as i32,
            SsrCfgWord::IdxBase => self.cfg.idx_base = value,
            SsrCfgWord::IdxSize => self.cfg.idx_size_log2 = (value & 0b11) as u8,
            SsrCfgWord::Base => {
                self.cfg.base = value;
                self.arm();
            }
        }
    }

    /// Reads back a configuration word (`scfgri`).
    #[must_use]
    pub fn read_cfg(&self, word: SsrCfgWord) -> u32 {
        match word {
            SsrCfgWord::Status => {
                u32::from(self.cfg.write_mode)
                    | (u32::from(self.cfg.dims) << 1)
                    | (u32::from(self.cfg.indirect) << 3)
                    | (u32::from(self.cfg.elem4) << 4)
            }
            SsrCfgWord::Repeat => self.cfg.repeat,
            SsrCfgWord::Bound(d) => self.cfg.bounds[d as usize],
            SsrCfgWord::Stride(d) => self.cfg.strides[d as usize] as u32,
            SsrCfgWord::IdxBase => self.cfg.idx_base,
            SsrCfgWord::IdxSize => u32::from(self.cfg.idx_size_log2),
            SsrCfgWord::Base => self.cfg.base,
        }
    }

    fn arm(&mut self) {
        self.active = true;
        self.done_generating = false;
        self.counters = [0; 4];
        self.idx_counter = 0;
        self.pending_index = None;
        self.data_fifo.clear();
        self.write_reserved = 0;
    }

    fn elem_bytes(&self) -> u32 {
        if self.cfg.elem4 {
            4
        } else {
            8
        }
    }

    fn current_addr(&self) -> u32 {
        let mut addr = self.cfg.base;
        for d in 0..=self.cfg.dims as usize {
            addr = addr.wrapping_add((self.counters[d] as i64 * self.cfg.strides[d] as i64) as u32);
        }
        addr
    }

    /// Advances the affine counters; returns `false` when the pattern is
    /// exhausted.
    fn advance(&mut self) -> bool {
        for d in 0..=self.cfg.dims as usize {
            if self.counters[d] < self.cfg.bounds[d] {
                self.counters[d] += 1;
                return true;
            }
            self.counters[d] = 0;
        }
        false
    }

    // ------------------------------------------------------- FPU interface

    /// Read mode: whether an element is available to pop this cycle.
    #[must_use]
    pub fn read_available(&self) -> bool {
        !self.cfg.write_mode && !self.data_fifo.is_empty()
    }

    /// Read mode: number of elements available to pop this cycle.
    #[must_use]
    pub fn available_elements(&self) -> usize {
        if self.cfg.write_mode {
            0
        } else {
            self.data_fifo.len()
        }
    }

    /// Pops the next stream element (operand bits).
    ///
    /// # Panics
    ///
    /// Panics if no element is available (callers check
    /// [`read_available`](Self::read_available)).
    pub fn pop(&mut self) -> u64 {
        debug_assert!(self.read_available());
        self.data_fifo.pop_front().expect("ssr pop on empty fifo")
    }

    /// Write mode: whether the write FIFO can accept a reservation.
    #[must_use]
    pub fn write_ready(&self) -> bool {
        self.cfg.write_mode && self.data_fifo.len() + self.write_reserved < self.fifo_capacity
    }

    /// Reserves one write slot (at FPU issue time).
    pub fn reserve_write(&mut self) {
        debug_assert!(self.write_ready());
        self.write_reserved += 1;
    }

    /// Delivers a previously reserved write (at FPU completion time).
    pub fn push(&mut self, bits: u64) {
        debug_assert!(self.write_reserved > 0, "push without reservation");
        self.write_reserved -= 1;
        self.data_fifo.push_back(bits);
    }

    /// Total elements moved to/from memory.
    #[must_use]
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Whether the streamer is armed (used for activity statistics).
    #[must_use]
    pub fn armed(&self) -> bool {
        self.active && !self.done_generating
    }

    /// Whether a cycle of streamer work would change nothing at all: not
    /// armed (so no prefetch/drain attempt and no activity accounting) and
    /// no queued write data left to store. A quiescent streamer can be
    /// skipped over by the cluster's fast path without perturbing a single
    /// counter. (Leftover *read* data waiting to be popped is quiescent:
    /// the streamer itself takes no action until the FPU pops.)
    #[must_use]
    pub fn quiescent(&self) -> bool {
        !self.armed() && (!self.cfg.write_mode || self.data_fifo.is_empty())
    }

    // ------------------------------------------------------------- timing

    /// One cycle of streamer work: fill the read FIFO or drain the write
    /// FIFO, with TCDM bank arbitration as `port`. Returns the number of
    /// TCDM accesses performed (0 or 1).
    pub fn step(&mut self, mem: &mut Memory, arb: &mut TcdmArbiter, port: TcdmPort) -> u32 {
        if !self.active || self.done_generating && self.cfg.write_mode && self.data_fifo.is_empty()
        {
            return 0;
        }
        if self.cfg.write_mode {
            self.step_write(mem, arb, port)
        } else {
            self.step_read(mem, arb, port)
        }
    }

    fn step_read(&mut self, mem: &mut Memory, arb: &mut TcdmArbiter, port: TcdmPort) -> u32 {
        if self.done_generating {
            return 0;
        }
        // Need room for the element and its repeats.
        let copies = self.cfg.repeat as usize + 1;
        if self.data_fifo.len() + copies > self.fifo_capacity.max(copies) {
            return 0;
        }
        if self.cfg.indirect {
            // Phase 1: fetch the index; phase 2: fetch the data.
            match self.pending_index {
                None => {
                    let idx_bytes = 1u32 << self.cfg.idx_size_log2;
                    let idx_addr = self.cfg.idx_base.wrapping_add(self.idx_counter * idx_bytes);
                    if !arb.request(port, idx_addr) {
                        return 0;
                    }
                    let idx = mem.read(idx_addr, idx_bytes).expect("issr index fetch") as u32;
                    self.pending_index = Some(idx);
                    self.idx_counter += 1;
                    1
                }
                Some(idx) => {
                    let addr = self.cfg.base.wrapping_add(idx * self.elem_bytes());
                    if !arb.request(port, addr) {
                        return 0;
                    }
                    let bits = self.read_elem(mem, addr);
                    self.finish_element(bits);
                    self.pending_index = None;
                    1
                }
            }
        } else {
            let addr = self.current_addr();
            if !arb.request(port, addr) {
                return 0;
            }
            let bits = self.read_elem(mem, addr);
            self.finish_element(bits);
            1
        }
    }

    fn read_elem(&mut self, mem: &Memory, addr: u32) -> u64 {
        self.beats += 1;
        mem.read(addr, self.elem_bytes()).expect("ssr data fetch")
    }

    fn finish_element(&mut self, bits: u64) {
        for _ in 0..=self.cfg.repeat {
            self.data_fifo.push_back(bits);
        }
        if !self.advance() {
            self.done_generating = true;
        }
    }

    fn step_write(&mut self, mem: &mut Memory, arb: &mut TcdmArbiter, port: TcdmPort) -> u32 {
        let Some(&bits) = self.data_fifo.front() else {
            return 0;
        };
        let addr = self.current_addr();
        if !arb.request(port, addr) {
            return 0;
        }
        mem.write(addr, self.elem_bytes(), bits).expect("ssr data store");
        self.data_fifo.pop_front();
        self.beats += 1;
        if !self.advance() {
            self.done_generating = true;
            // Anything pushed beyond the pattern would be a kernel bug; the
            // busy() condition keeps the streamer owned until drained.
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::layout::TCDM_BASE;

    fn armed_read_ssr(bounds0: u32, stride0: i32) -> Ssr {
        let mut s = Ssr::new(4);
        s.write_cfg(SsrCfgWord::Status, 0); // read, 1-D, 8-byte
        s.write_cfg(SsrCfgWord::Bound(0), bounds0);
        s.write_cfg(SsrCfgWord::Stride(0), stride0 as u32);
        s.write_cfg(SsrCfgWord::Repeat, 0);
        s.write_cfg(SsrCfgWord::Base, TCDM_BASE);
        s
    }

    #[test]
    fn one_dimensional_read_stream() {
        let mut mem = Memory::new();
        for i in 0..4u64 {
            mem.write(TCDM_BASE + (i as u32) * 8, 8, 100 + i).unwrap();
        }
        let mut arb = TcdmArbiter::new(32);
        let mut s = armed_read_ssr(3, 8);
        assert!(s.busy());
        let mut popped = Vec::new();
        for _ in 0..16 {
            arb.begin_cycle();
            s.step(&mut mem, &mut arb, TcdmPort::Ssr(0, 0));
            if s.read_available() {
                popped.push(s.pop());
            }
        }
        assert_eq!(popped, vec![100, 101, 102, 103]);
        assert!(!s.busy(), "drained read stream releases the streamer");
        assert_eq!(s.beats(), 4);
    }

    #[test]
    fn repeat_serves_elements_multiple_times() {
        let mut mem = Memory::new();
        mem.write(TCDM_BASE, 8, 7).unwrap();
        mem.write(TCDM_BASE + 8, 8, 9).unwrap();
        let mut arb = TcdmArbiter::new(32);
        let mut s = Ssr::new(4);
        s.write_cfg(SsrCfgWord::Status, 0);
        s.write_cfg(SsrCfgWord::Bound(0), 1);
        s.write_cfg(SsrCfgWord::Stride(0), 8);
        s.write_cfg(SsrCfgWord::Repeat, 1);
        s.write_cfg(SsrCfgWord::Base, TCDM_BASE);
        let mut popped = Vec::new();
        for _ in 0..16 {
            arb.begin_cycle();
            s.step(&mut mem, &mut arb, TcdmPort::Ssr(0, 0));
            while s.read_available() {
                popped.push(s.pop());
            }
        }
        assert_eq!(popped, vec![7, 7, 9, 9]);
        assert_eq!(s.beats(), 2, "one memory beat per element despite repeats");
    }

    #[test]
    fn two_dimensional_stream_fuses_loops() {
        // 2-D: inner bound 2 (3 elements) stride 8; outer bound 1 (2 iters)
        // stride -16: addresses 0,8,16, 8,16,24... relative to base 16.
        let mut mem = Memory::new();
        for i in 0..6u64 {
            mem.write(TCDM_BASE + (i as u32) * 8, 8, i).unwrap();
        }
        let mut arb = TcdmArbiter::new(32);
        let mut s = Ssr::new(8);
        s.write_cfg(SsrCfgWord::Status, 0b010); // read, dims=1 (2-D)
        s.write_cfg(SsrCfgWord::Bound(0), 2);
        s.write_cfg(SsrCfgWord::Stride(0), 8);
        s.write_cfg(SsrCfgWord::Bound(1), 1);
        s.write_cfg(SsrCfgWord::Stride(1), (-16i32) as u32);
        s.write_cfg(SsrCfgWord::Base, TCDM_BASE + 16);
        let mut popped = Vec::new();
        for _ in 0..20 {
            arb.begin_cycle();
            s.step(&mut mem, &mut arb, TcdmPort::Ssr(0, 0));
            while s.read_available() {
                popped.push(s.pop());
            }
        }
        assert_eq!(popped, vec![2, 3, 4, 0, 1, 2]);
    }

    #[test]
    fn write_stream_drains_to_memory() {
        let mut mem = Memory::new();
        let mut arb = TcdmArbiter::new(32);
        let mut s = Ssr::new(4);
        s.write_cfg(SsrCfgWord::Status, 1); // write mode
        s.write_cfg(SsrCfgWord::Bound(0), 2);
        s.write_cfg(SsrCfgWord::Stride(0), 8);
        s.write_cfg(SsrCfgWord::Base, TCDM_BASE + 64);
        for v in [10u64, 11, 12] {
            assert!(s.write_ready());
            s.reserve_write();
            s.push(v);
        }
        assert!(s.busy());
        for _ in 0..8 {
            arb.begin_cycle();
            s.step(&mut mem, &mut arb, TcdmPort::Ssr(0, 0));
        }
        assert!(!s.busy());
        assert_eq!(mem.read(TCDM_BASE + 64, 8).unwrap(), 10);
        assert_eq!(mem.read(TCDM_BASE + 72, 8).unwrap(), 11);
        assert_eq!(mem.read(TCDM_BASE + 80, 8).unwrap(), 12);
    }

    #[test]
    fn indirect_stream_reads_via_index_list() {
        let mut mem = Memory::new();
        // Data table at base; index list picks elements 3, 0, 2.
        for i in 0..4u64 {
            mem.write(TCDM_BASE + (i as u32) * 8, 8, 200 + i).unwrap();
        }
        let idx_base = TCDM_BASE + 512;
        for (j, idx) in [3u16, 0, 2].iter().enumerate() {
            mem.write(idx_base + (j as u32) * 2, 2, u64::from(*idx)).unwrap();
        }
        let mut arb = TcdmArbiter::new(32);
        let mut s = Ssr::new(4);
        s.write_cfg(SsrCfgWord::Status, 0b1000); // read, indirect
        s.write_cfg(SsrCfgWord::Bound(0), 2); // 3 elements
        s.write_cfg(SsrCfgWord::IdxBase, idx_base);
        s.write_cfg(SsrCfgWord::IdxSize, 1); // 2-byte indices
        s.write_cfg(SsrCfgWord::Base, TCDM_BASE);
        let mut popped = Vec::new();
        for _ in 0..20 {
            arb.begin_cycle();
            s.step(&mut mem, &mut arb, TcdmPort::Ssr(0, 0));
            while s.read_available() {
                popped.push(s.pop());
            }
        }
        assert_eq!(popped, vec![203, 200, 202]);
        // Index + data beats both hit memory.
        assert_eq!(s.beats(), 3, "data beats");
    }

    #[test]
    fn four_byte_elements() {
        let mut mem = Memory::new();
        mem.write(TCDM_BASE, 4, 0xaaaa_bbbb).unwrap();
        mem.write(TCDM_BASE + 4, 4, 0xcccc_dddd).unwrap();
        let mut arb = TcdmArbiter::new(32);
        let mut s = Ssr::new(4);
        s.write_cfg(SsrCfgWord::Status, 0b1_0000); // read, 4-byte elems
        s.write_cfg(SsrCfgWord::Bound(0), 1);
        s.write_cfg(SsrCfgWord::Stride(0), 4);
        s.write_cfg(SsrCfgWord::Base, TCDM_BASE);
        let mut popped = Vec::new();
        for _ in 0..8 {
            arb.begin_cycle();
            s.step(&mut mem, &mut arb, TcdmPort::Ssr(0, 0));
            while s.read_available() {
                popped.push(s.pop());
            }
        }
        assert_eq!(popped, vec![0xaaaa_bbbb, 0xcccc_dddd]);
    }

    #[test]
    fn fifo_backpressure_stops_prefetch() {
        let mut mem = Memory::new();
        let mut arb = TcdmArbiter::new(32);
        let mut s = armed_read_ssr(63, 8);
        // Never pop: the streamer must stop at FIFO capacity.
        for _ in 0..32 {
            arb.begin_cycle();
            s.step(&mut mem, &mut arb, TcdmPort::Ssr(0, 0));
        }
        assert_eq!(s.beats(), 4, "prefetch limited by fifo depth");
    }
}
