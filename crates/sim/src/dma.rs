//! Cluster DMA engine (Snitch xdma).
//!
//! Programmed through `dmsrc`/`dmdst`/`dmstr`/`dmrep`/`dmcpyi`; moves data
//! between main memory, the shared L2, remote clusters' TCDMs (through
//! their alias windows) and the local TCDM at a configurable rate (default
//! 8 B/cycle), arbitrating for TCDM banks against the cores and SSRs.
//! 2-D transfers (`dmrep` + `dmstr`) are expanded into row segments.
//!
//! Segments that cross the cluster interconnect (an L2 or alias-window
//! side) pay a per-segment setup latency — the L2 access latency plus one
//! hop to reach L2, two hops for a remote TCDM — and are clamped to the L2
//! port bandwidth. Interconnect sides do not arbitrate for local TCDM
//! banks; only genuinely local TCDM sides do.

use std::collections::VecDeque;

use crate::mem::{Memory, TcdmArbiter, TcdmPort};
use snitch_asm::layout;

#[derive(Clone, Copy, Debug)]
struct Segment {
    src: u32,
    dst: u32,
    remaining: u32,
    /// Interconnect setup cycles still to pay before the first beat.
    setup: u32,
}

/// The DMA engine.
#[derive(Clone, Debug)]
pub struct Dma {
    bytes_per_cycle: u32,
    /// L2 port bandwidth: interconnect beats move at
    /// `min(bytes_per_cycle, l2_bytes_per_cycle)`.
    l2_bytes_per_cycle: u32,
    /// L2 access latency (segment setup component).
    l2_latency: u32,
    /// One-way interconnect hop latency (segment setup component).
    hop_latency: u32,
    src: u32,
    dst: u32,
    src_stride: u32,
    dst_stride: u32,
    reps: u32,
    queue: VecDeque<Segment>,
    current: Option<Segment>,
    /// Read data of a same-bank TCDM→TCDM beat awaiting its write cycle
    /// (`(chunk, value)`): one bank serves one request per cycle, so such a
    /// beat is serialized into a read cycle and a write cycle.
    latch: Option<(u32, u64)>,
    next_id: u32,
    busy_cycles: u64,
    blocked_cycles: u64,
    beats: u64,
    hop_cycles: u64,
}

impl Dma {
    /// Creates an idle engine with a zero-latency, full-bandwidth
    /// interconnect (local-only timing; see
    /// [`with_interconnect`](Self::with_interconnect)).
    #[must_use]
    pub fn new(bytes_per_cycle: u32) -> Self {
        Dma::with_interconnect(bytes_per_cycle, 0, bytes_per_cycle, 0)
    }

    /// Creates an idle engine with the given interconnect timing.
    #[must_use]
    pub fn with_interconnect(
        bytes_per_cycle: u32,
        l2_latency: u32,
        l2_bytes_per_cycle: u32,
        hop_latency: u32,
    ) -> Self {
        assert!(bytes_per_cycle > 0 && l2_bytes_per_cycle > 0);
        Dma {
            bytes_per_cycle,
            l2_bytes_per_cycle,
            l2_latency,
            hop_latency,
            src: 0,
            dst: 0,
            src_stride: 0,
            dst_stride: 0,
            reps: 0,
            queue: VecDeque::new(),
            current: None,
            latch: None,
            next_id: 0,
            busy_cycles: 0,
            blocked_cycles: 0,
            beats: 0,
            hop_cycles: 0,
        }
    }

    /// Restores the just-constructed idle state, reusing the queue — the
    /// allocation-free equivalent of `Dma::new(bytes_per_cycle)`.
    pub fn reset(&mut self) {
        self.src = 0;
        self.dst = 0;
        self.src_stride = 0;
        self.dst_stride = 0;
        self.reps = 0;
        self.queue.clear();
        self.current = None;
        self.latch = None;
        self.next_id = 0;
        self.busy_cycles = 0;
        self.blocked_cycles = 0;
        self.beats = 0;
        self.hop_cycles = 0;
    }

    /// The per-segment interconnect setup cost for a `src → dst` burst:
    /// nothing for purely local (TCDM/main) segments, L2 latency + one hop
    /// for an L2 side, two hops for a remote-TCDM (alias window) side.
    fn setup_cost(&self, src: u32, dst: u32) -> u32 {
        let mut cost = 0;
        if layout::is_l2(src) || layout::is_l2(dst) {
            cost += self.l2_latency + self.hop_latency;
        }
        if layout::is_cluster_alias(src) || layout::is_cluster_alias(dst) {
            cost += 2 * self.hop_latency;
        }
        cost
    }

    /// `dmsrc`: sets the source address.
    pub fn set_src(&mut self, addr: u32) {
        self.src = addr;
    }

    /// `dmdst`: sets the destination address.
    pub fn set_dst(&mut self, addr: u32) {
        self.dst = addr;
    }

    /// `dmstr`: sets source and destination strides for 2-D transfers.
    pub fn set_strides(&mut self, src_stride: u32, dst_stride: u32) {
        self.src_stride = src_stride;
        self.dst_stride = dst_stride;
    }

    /// `dmrep`: sets the repetition count for 2-D transfers.
    pub fn set_reps(&mut self, reps: u32) {
        self.reps = reps;
    }

    /// `dmcpyi`: enqueues a transfer of `size` bytes (per row, if 2-D) and
    /// returns the transfer id.
    pub fn start(&mut self, size: u32) -> u32 {
        let rows = self.reps.max(1);
        for r in 0..rows {
            let src = self.src.wrapping_add(r * self.src_stride);
            let dst = self.dst.wrapping_add(r * self.dst_stride);
            self.queue.push_back(Segment {
                src,
                dst,
                remaining: size,
                setup: self.setup_cost(src, dst),
            });
        }
        // One-shot: 2-D state does not persist across transfers.
        self.reps = 0;
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// `dmstati`: number of outstanding transfers (queued + active).
    #[must_use]
    pub fn outstanding(&self) -> u32 {
        self.queue.len() as u32 + u32::from(self.current.is_some())
    }

    /// Whether the engine is idle.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Cycles spent actually moving data (a beat performed). Arbitration-
    /// blocked cycles are counted separately in
    /// [`blocked_cycles`](Self::blocked_cycles), so the energy model's
    /// per-busy-cycle term charges only real datapath activity.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Cycles an active transfer was stalled by TCDM bank arbitration
    /// (no byte moved, nothing charged as datapath activity).
    #[must_use]
    pub fn blocked_cycles(&self) -> u64 {
        self.blocked_cycles
    }

    /// 64-bit (or partial) beats transferred.
    #[must_use]
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Cycles spent in interconnect segment setup (L2 latency + hops).
    #[must_use]
    pub fn hop_cycles(&self) -> u64 {
        self.hop_cycles
    }

    /// One cycle of DMA work. Returns the number of TCDM accesses performed.
    ///
    /// A beat happens only if **every** TCDM-side port wins its bank this
    /// cycle: both sides are arbitrated up front, and a granted side whose
    /// partner was denied releases its bank ungranted — nothing is counted
    /// (accesses, beats, busy cycles) for a cycle that moves no data.
    /// Beats are split at 8-byte bank-line boundaries on each TCDM side, so
    /// an unaligned beat never touches two banks under one grant; and a
    /// TCDM→TCDM beat whose sides map to the *same* bank is serialized into
    /// a read cycle plus a write cycle (one bank serves one request per
    /// cycle — the pre-fix model wedged forever on this case, with the src
    /// grant starving its own dst request).
    pub fn step(&mut self, mem: &mut Memory, arb: &mut TcdmArbiter) -> u32 {
        if self.current.is_none() {
            self.current = self.queue.pop_front();
        }
        let Some(seg) = &mut self.current else {
            return 0;
        };
        // Interconnect setup: the segment's request is in flight across the
        // cluster interconnect; no data moves and no bank is touched.
        if seg.setup > 0 {
            seg.setup -= 1;
            self.hop_cycles += 1;
            return 0;
        }
        // Write phase of a serialized same-bank beat.
        if let Some((chunk, val)) = self.latch {
            if !arb.request(TcdmPort::DmaDst, seg.dst) {
                self.blocked_cycles += 1;
                return 0;
            }
            self.busy_cycles += 1;
            mem.write(seg.dst, chunk, val).expect("dma destination write");
            self.latch = None;
            Self::advance(&mut self.current, &mut self.beats, chunk);
            return 1;
        }
        let src_tcdm = layout::is_tcdm(seg.src);
        let dst_tcdm = layout::is_tcdm(seg.dst);
        let interconnect = layout::is_l2(seg.src)
            || layout::is_l2(seg.dst)
            || layout::is_cluster_alias(seg.src)
            || layout::is_cluster_alias(seg.dst);
        let mut rate = self.bytes_per_cycle;
        if interconnect {
            rate = rate.min(self.l2_bytes_per_cycle);
        }
        let mut chunk = seg.remaining.min(rate);
        if src_tcdm {
            chunk = chunk.min(8 - (seg.src & 7));
        }
        if dst_tcdm {
            chunk = chunk.min(8 - (seg.dst & 7));
        }
        if src_tcdm && dst_tcdm && arb.bank_of(seg.src) == arb.bank_of(seg.dst) {
            // Read phase of a serialized same-bank beat.
            if !arb.request(TcdmPort::DmaSrc, seg.src) {
                self.blocked_cycles += 1;
                return 0;
            }
            self.busy_cycles += 1;
            self.latch = Some((chunk, mem.read(seg.src, chunk).expect("dma source read")));
            return 1;
        }
        let src_ok = !src_tcdm || arb.request(TcdmPort::DmaSrc, seg.src);
        let dst_ok = !dst_tcdm || arb.request(TcdmPort::DmaDst, seg.dst);
        if !(src_ok && dst_ok) {
            if src_ok && src_tcdm {
                arb.release(seg.src);
            }
            if dst_ok && dst_tcdm {
                arb.release(seg.dst);
            }
            self.blocked_cycles += 1;
            return 0;
        }
        self.busy_cycles += 1;
        let val = mem.read(seg.src, chunk).expect("dma source read");
        mem.write(seg.dst, chunk, val).expect("dma destination write");
        Self::advance(&mut self.current, &mut self.beats, chunk);
        u32::from(src_tcdm) + u32::from(dst_tcdm)
    }

    /// Completes one beat of `chunk` bytes on the active segment.
    fn advance(current: &mut Option<Segment>, beats: &mut u64, chunk: u32) {
        let seg = current.as_mut().expect("advance with an active segment");
        seg.src = seg.src.wrapping_add(chunk);
        seg.dst = seg.dst.wrapping_add(chunk);
        seg.remaining -= chunk;
        *beats += 1;
        if seg.remaining == 0 {
            *current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::layout::{MAIN_BASE, TCDM_BASE};

    #[test]
    fn one_dimensional_copy_main_to_tcdm() {
        let mut mem = Memory::new();
        for i in 0..8u32 {
            mem.write(MAIN_BASE + i * 8, 8, u64::from(i) + 50).unwrap();
        }
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE + 256);
        let id = dma.start(64);
        assert_eq!(id, 0);
        assert_eq!(dma.outstanding(), 1);
        let mut cycles = 0;
        while !dma.idle() {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
            cycles += 1;
            assert!(cycles < 100);
        }
        for i in 0..8u32 {
            assert_eq!(mem.read(TCDM_BASE + 256 + i * 8, 8).unwrap(), u64::from(i) + 50);
        }
        assert_eq!(dma.beats(), 8);
        assert_eq!(cycles, 8, "8 bytes per cycle");
    }

    #[test]
    fn two_dimensional_copy_expands_rows() {
        let mut mem = Memory::new();
        for i in 0..16u32 {
            mem.write(MAIN_BASE + i * 4, 4, u64::from(i)).unwrap();
        }
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE);
        dma.set_strides(32, 16); // gather every other 16-byte row
        dma.set_reps(2);
        dma.start(16);
        while !dma.idle() {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
        }
        // Row 0 = words 0..3, row 1 = words 8..11.
        assert_eq!(mem.read(TCDM_BASE, 4).unwrap(), 0);
        assert_eq!(mem.read(TCDM_BASE + 16, 4).unwrap(), 8);
        // 2-D state is one-shot.
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE + 1024);
        dma.start(8);
        assert_eq!(dma.outstanding(), 1);
    }

    #[test]
    fn second_transfer_queues_behind_first() {
        let mut mem = Memory::new();
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE);
        dma.start(32);
        dma.set_src(MAIN_BASE + 64);
        dma.set_dst(TCDM_BASE + 64);
        let id = dma.start(32);
        assert_eq!(id, 1);
        assert_eq!(dma.outstanding(), 2);
        arb.begin_cycle();
        dma.step(&mut mem, &mut arb);
        assert_eq!(dma.outstanding(), 2, "first still active");
        for _ in 0..16 {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
        }
        assert!(dma.idle());
    }

    /// Regression (src-granted/dst-denied): a TCDM→TCDM beat whose source
    /// bank is free but whose destination bank is owned by someone else must
    /// move nothing, count nothing, and give the source bank back — the
    /// pre-fix `step` consumed the src grant, reported one TCDM access and
    /// left `busy_cycles` inflated while no byte moved.
    #[test]
    fn src_granted_dst_denied_counts_and_holds_nothing() {
        let mut mem = Memory::new();
        mem.write(TCDM_BASE, 8, 0xfeed_face_cafe_f00d).unwrap();
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(TCDM_BASE); // bank 0
        dma.set_dst(TCDM_BASE + 8 * 32 + 8); // bank 1 (second sweep)
        dma.start(8);

        arb.begin_cycle();
        // A core owns the *destination* bank; the source bank is free.
        assert!(arb.request(TcdmPort::CoreLsu(0), TCDM_BASE + 8));
        let conflicts_before = arb.conflicts();
        assert_eq!(dma.step(&mut mem, &mut arb), 0, "no access may be counted");
        assert_eq!(dma.beats(), 0, "no data moved");
        assert_eq!(dma.busy_cycles(), 0, "a blocked cycle is not a moving cycle");
        assert_eq!(dma.blocked_cycles(), 1);
        assert_eq!(arb.conflicts() - conflicts_before, 1, "one conflict for the denied dst");
        // The src bank grant was released: another unit can still use it.
        assert!(
            arb.request(TcdmPort::Ssr(0, 0), TCDM_BASE),
            "src bank must not be held by a transfer that made no progress"
        );
        assert_eq!(mem.read(TCDM_BASE + 8 * 32 + 8, 8).unwrap(), 0);

        // Retry with both banks free: the whole beat completes.
        arb.begin_cycle();
        assert_eq!(dma.step(&mut mem, &mut arb), 2, "both sides are TCDM accesses");
        assert_eq!(dma.beats(), 1);
        assert_eq!(dma.busy_cycles(), 1);
        assert_eq!(dma.blocked_cycles(), 1, "unchanged on the moving cycle");
        assert!(dma.idle());
        assert_eq!(mem.read(TCDM_BASE + 8 * 32 + 8, 8).unwrap(), 0xfeed_face_cafe_f00d);
    }

    /// An 8-byte beat at a non-8-aligned TCDM address spans two banks; it
    /// must be split at the bank-line boundary (two beats, one bank each),
    /// not served under a single bank grant.
    #[test]
    fn unaligned_beat_splits_at_bank_boundary() {
        let mut mem = Memory::new();
        mem.write(MAIN_BASE, 8, 0x1122_3344_5566_7788).unwrap();
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE + 4); // straddles banks 0 and 1
        dma.start(8);
        let mut cycles = 0;
        while !dma.idle() {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
            cycles += 1;
            assert!(cycles < 10);
        }
        assert_eq!(cycles, 2, "4 bytes into bank 0's line, then 4 into bank 1's");
        assert_eq!(dma.beats(), 2);
        assert_eq!(mem.read(TCDM_BASE + 4, 8).unwrap(), 0x1122_3344_5566_7788);

        // Unaligned TCDM *source*: the first beat is clamped to the 4 bytes
        // left in bank 0's line, the second moves a full aligned 8.
        let mut dma = Dma::new(8);
        dma.set_src(TCDM_BASE + 4);
        dma.set_dst(MAIN_BASE + 64);
        dma.start(12);
        let mut cycles = 0;
        while !dma.idle() {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
            cycles += 1;
            assert!(cycles < 10);
        }
        assert_eq!(cycles, 2, "4 bytes to the line end, then one aligned 8");
        assert_eq!(mem.read(MAIN_BASE + 64, 8).unwrap(), 0x1122_3344_5566_7788);
    }

    /// A TCDM→TCDM beat whose source and destination share a bank cannot be
    /// served by two grants in one cycle; it is serialized read-then-write.
    /// (The pre-fix model wedged forever here: the src request won the bank
    /// every cycle and thereby denied its own dst request.)
    #[test]
    fn same_bank_copy_serializes_read_and_write() {
        let mut mem = Memory::new();
        mem.write(TCDM_BASE, 8, 77).unwrap();
        mem.write(TCDM_BASE + 8, 8, 88).unwrap();
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(TCDM_BASE); // bank 0
        dma.set_dst(TCDM_BASE + 32 * 8); // also bank 0
        dma.start(16);
        let mut cycles = 0;
        while !dma.idle() {
            arb.begin_cycle();
            let accesses = dma.step(&mut mem, &mut arb);
            assert!(accesses <= 1, "one access per cycle on a shared bank");
            cycles += 1;
            assert!(cycles < 20);
        }
        assert_eq!(cycles, 4, "two beats, each read + write serialized");
        assert_eq!(dma.beats(), 2);
        assert_eq!(dma.busy_cycles(), 4);
        assert_eq!(mem.read(TCDM_BASE + 32 * 8, 8).unwrap(), 77);
        assert_eq!(mem.read(TCDM_BASE + 32 * 8 + 8, 8).unwrap(), 88);
    }

    #[test]
    fn l2_segment_pays_setup_and_is_bandwidth_clamped() {
        let mut mem = Memory::new();
        for i in 0..4u32 {
            mem.write(layout::L2_BASE + i * 8, 8, u64::from(i) + 9).unwrap();
        }
        let mut arb = TcdmArbiter::new(32);
        // 16 B/cycle DMA against a 8 B/cycle L2 port, 12 + 4 setup.
        let mut dma = Dma::with_interconnect(16, 12, 8, 4);
        dma.set_src(layout::L2_BASE);
        dma.set_dst(TCDM_BASE);
        dma.start(32);
        let mut cycles = 0;
        while !dma.idle() {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
            cycles += 1;
            assert!(cycles < 100);
        }
        // 16 setup cycles (l2_latency 12 + one hop 4), then 32 bytes at the
        // clamped 8 B/cycle rate.
        assert_eq!(dma.hop_cycles(), 16);
        assert_eq!(cycles, 16 + 4);
        assert_eq!(dma.beats(), 4);
        for i in 0..4u32 {
            assert_eq!(mem.read(TCDM_BASE + i * 8, 8).unwrap(), u64::from(i) + 9);
        }
    }

    #[test]
    fn each_2d_row_pays_its_own_setup() {
        let mut mem = Memory::new();
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::with_interconnect(8, 12, 8, 4);
        dma.set_src(layout::L2_BASE);
        dma.set_dst(TCDM_BASE);
        dma.set_strides(64, 16);
        dma.set_reps(3);
        dma.start(16);
        while !dma.idle() {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
        }
        assert_eq!(dma.hop_cycles(), 3 * 16, "every row segment is its own L2 burst");
        assert_eq!(dma.beats(), 6);
    }

    #[test]
    fn remote_alias_segment_pays_two_hops_and_skips_arbitration() {
        let mut mem = Memory::new();
        mem.enable_peers(2, 0);
        mem.sync_peer_in(1, 0, &[0xab; 16]);
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::with_interconnect(8, 12, 8, 4);
        dma.set_src(layout::tcdm_alias_base(1));
        dma.set_dst(layout::MAIN_BASE);
        dma.start(16);
        arb.begin_cycle();
        // Every bank is owned by someone else: an alias→main transfer must
        // not care (neither side is local TCDM).
        for b in 0..32u32 {
            assert!(arb.request(TcdmPort::CoreLsu(0), TCDM_BASE + b * 8));
        }
        let mut cycles = 0;
        while !dma.idle() {
            arb.begin_cycle();
            assert_eq!(dma.step(&mut mem, &mut arb), 0, "no TCDM access on either side");
            cycles += 1;
            assert!(cycles < 50);
        }
        assert_eq!(dma.hop_cycles(), 8, "two hops each way: 2 * hop_latency");
        assert_eq!(cycles, 8 + 2);
        assert_eq!(dma.blocked_cycles(), 0);
        assert_eq!(mem.read(layout::MAIN_BASE + 8, 8).unwrap(), 0xabab_abab_abab_abab);
    }

    #[test]
    fn local_segments_pay_no_setup() {
        let dma = Dma::with_interconnect(8, 12, 8, 4);
        assert_eq!(dma.setup_cost(layout::MAIN_BASE, TCDM_BASE), 0);
        assert_eq!(dma.setup_cost(TCDM_BASE, TCDM_BASE + 64), 0);
        assert_eq!(dma.setup_cost(TCDM_BASE, layout::L2_BASE), 16);
        assert_eq!(dma.setup_cost(layout::tcdm_alias_base(3), TCDM_BASE), 8);
        // L2 → remote alias crosses both: pays both components.
        assert_eq!(dma.setup_cost(layout::L2_BASE, layout::tcdm_alias_base(1)), 24);
    }

    #[test]
    fn blocked_bank_stalls_dma() {
        let mut mem = Memory::new();
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE);
        dma.start(8);
        arb.begin_cycle();
        assert!(arb.request(TcdmPort::CoreLsu(0), TCDM_BASE)); // someone else owns bank 0
        assert_eq!(dma.step(&mut mem, &mut arb), 0);
        assert!(!dma.idle());
        arb.begin_cycle();
        dma.step(&mut mem, &mut arb);
        assert!(dma.idle());
    }
}
