//! Cluster DMA engine (Snitch xdma).
//!
//! Programmed through `dmsrc`/`dmdst`/`dmstr`/`dmrep`/`dmcpyi`; moves data
//! between main memory and the TCDM at a configurable rate (default
//! 8 B/cycle), arbitrating for TCDM banks against the cores and SSRs.
//! 2-D transfers (`dmrep` + `dmstr`) are expanded into row segments.

use std::collections::VecDeque;

use crate::mem::{Memory, TcdmArbiter, TcdmPort};
use snitch_asm::layout;

#[derive(Clone, Copy, Debug)]
struct Segment {
    src: u32,
    dst: u32,
    remaining: u32,
}

/// The DMA engine.
#[derive(Clone, Debug)]
pub struct Dma {
    bytes_per_cycle: u32,
    src: u32,
    dst: u32,
    src_stride: u32,
    dst_stride: u32,
    reps: u32,
    queue: VecDeque<Segment>,
    current: Option<Segment>,
    next_id: u32,
    busy_cycles: u64,
    beats: u64,
}

impl Dma {
    /// Creates an idle engine.
    #[must_use]
    pub fn new(bytes_per_cycle: u32) -> Self {
        assert!(bytes_per_cycle > 0);
        Dma {
            bytes_per_cycle,
            src: 0,
            dst: 0,
            src_stride: 0,
            dst_stride: 0,
            reps: 0,
            queue: VecDeque::new(),
            current: None,
            next_id: 0,
            busy_cycles: 0,
            beats: 0,
        }
    }

    /// `dmsrc`: sets the source address.
    pub fn set_src(&mut self, addr: u32) {
        self.src = addr;
    }

    /// `dmdst`: sets the destination address.
    pub fn set_dst(&mut self, addr: u32) {
        self.dst = addr;
    }

    /// `dmstr`: sets source and destination strides for 2-D transfers.
    pub fn set_strides(&mut self, src_stride: u32, dst_stride: u32) {
        self.src_stride = src_stride;
        self.dst_stride = dst_stride;
    }

    /// `dmrep`: sets the repetition count for 2-D transfers.
    pub fn set_reps(&mut self, reps: u32) {
        self.reps = reps;
    }

    /// `dmcpyi`: enqueues a transfer of `size` bytes (per row, if 2-D) and
    /// returns the transfer id.
    pub fn start(&mut self, size: u32) -> u32 {
        let rows = self.reps.max(1);
        for r in 0..rows {
            self.queue.push_back(Segment {
                src: self.src.wrapping_add(r * self.src_stride),
                dst: self.dst.wrapping_add(r * self.dst_stride),
                remaining: size,
            });
        }
        // One-shot: 2-D state does not persist across transfers.
        self.reps = 0;
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// `dmstati`: number of outstanding transfers (queued + active).
    #[must_use]
    pub fn outstanding(&self) -> u32 {
        self.queue.len() as u32 + u32::from(self.current.is_some())
    }

    /// Whether the engine is idle.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Cycles spent moving data (or blocked on arbitration).
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// 64-bit (or partial) beats transferred.
    #[must_use]
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// One cycle of DMA work. Returns the number of TCDM accesses performed.
    pub fn step(&mut self, mem: &mut Memory, arb: &mut TcdmArbiter) -> u32 {
        if self.current.is_none() {
            self.current = self.queue.pop_front();
        }
        let Some(seg) = &mut self.current else {
            return 0;
        };
        self.busy_cycles += 1;
        let chunk = seg.remaining.min(self.bytes_per_cycle);
        // Arbitrate for whichever side (or both) touches the TCDM.
        let mut tcdm_accesses = 0;
        if layout::is_tcdm(seg.src) {
            if !arb.request(TcdmPort::DmaSrc, seg.src) {
                return 0;
            }
            tcdm_accesses += 1;
        }
        if layout::is_tcdm(seg.dst) && !arb.request(TcdmPort::DmaDst, seg.dst) {
            return tcdm_accesses;
        } else if layout::is_tcdm(seg.dst) {
            tcdm_accesses += 1;
        }
        let val = mem.read(seg.src, chunk).expect("dma source read");
        mem.write(seg.dst, chunk, val).expect("dma destination write");
        seg.src = seg.src.wrapping_add(chunk);
        seg.dst = seg.dst.wrapping_add(chunk);
        seg.remaining -= chunk;
        self.beats += 1;
        if seg.remaining == 0 {
            self.current = None;
        }
        tcdm_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::layout::{MAIN_BASE, TCDM_BASE};

    #[test]
    fn one_dimensional_copy_main_to_tcdm() {
        let mut mem = Memory::new();
        for i in 0..8u32 {
            mem.write(MAIN_BASE + i * 8, 8, u64::from(i) + 50).unwrap();
        }
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE + 256);
        let id = dma.start(64);
        assert_eq!(id, 0);
        assert_eq!(dma.outstanding(), 1);
        let mut cycles = 0;
        while !dma.idle() {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
            cycles += 1;
            assert!(cycles < 100);
        }
        for i in 0..8u32 {
            assert_eq!(mem.read(TCDM_BASE + 256 + i * 8, 8).unwrap(), u64::from(i) + 50);
        }
        assert_eq!(dma.beats(), 8);
        assert_eq!(cycles, 8, "8 bytes per cycle");
    }

    #[test]
    fn two_dimensional_copy_expands_rows() {
        let mut mem = Memory::new();
        for i in 0..16u32 {
            mem.write(MAIN_BASE + i * 4, 4, u64::from(i)).unwrap();
        }
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE);
        dma.set_strides(32, 16); // gather every other 16-byte row
        dma.set_reps(2);
        dma.start(16);
        while !dma.idle() {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
        }
        // Row 0 = words 0..3, row 1 = words 8..11.
        assert_eq!(mem.read(TCDM_BASE, 4).unwrap(), 0);
        assert_eq!(mem.read(TCDM_BASE + 16, 4).unwrap(), 8);
        // 2-D state is one-shot.
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE + 1024);
        dma.start(8);
        assert_eq!(dma.outstanding(), 1);
    }

    #[test]
    fn second_transfer_queues_behind_first() {
        let mut mem = Memory::new();
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE);
        dma.start(32);
        dma.set_src(MAIN_BASE + 64);
        dma.set_dst(TCDM_BASE + 64);
        let id = dma.start(32);
        assert_eq!(id, 1);
        assert_eq!(dma.outstanding(), 2);
        arb.begin_cycle();
        dma.step(&mut mem, &mut arb);
        assert_eq!(dma.outstanding(), 2, "first still active");
        for _ in 0..16 {
            arb.begin_cycle();
            dma.step(&mut mem, &mut arb);
        }
        assert!(dma.idle());
    }

    #[test]
    fn blocked_bank_stalls_dma() {
        let mut mem = Memory::new();
        let mut arb = TcdmArbiter::new(32);
        let mut dma = Dma::new(8);
        dma.set_src(MAIN_BASE);
        dma.set_dst(TCDM_BASE);
        dma.start(8);
        arb.begin_cycle();
        assert!(arb.request(TcdmPort::CoreLsu(0), TCDM_BASE)); // someone else owns bank 0
        assert_eq!(dma.step(&mut mem, &mut arb), 0);
        assert!(!dma.idle());
        arb.begin_cycle();
        dma.step(&mut mem, &mut arb);
        assert!(dma.idle());
    }
}
