//! Block compilation: the whole text section pre-lowered into compact
//! micro-ops for the burst execution path.
//!
//! `Decoded` keeps the full [`Inst`] and re-matches it on every issue
//! attempt; a [`BlockInst`] instead pre-resolves everything that is static
//! per pc — the operand scoreboard indices, immediate values, pc-relative
//! targets (`auipc`, `jal`, branch targets) and mul/div latencies — so the
//! burst loop in `cluster.rs` issues with one small match and no decode
//! work. Ops whose semantics depend on cluster state machines (CSRs
//! including the barrier and FPU fence, SSR configuration, DMA commands)
//! compile to [`BlockOp::Generic`] and delegate to the reference stepper
//! instruction-for-instruction, so they can never drift from it.
//!
//! The cache is keyed purely by pc: entry `i` corresponds to
//! `TEXT_BASE + 4*i`, in lockstep with `Cluster::text`. It is rebuilt by
//! `load_program` and cleared by `reset` (text is immutable between loads,
//! so there is no other invalidation source). All *dynamic* keying —
//! sequencer and SSR state, DMA activity, barrier occupancy — lives in the
//! burst entry guards, which fall back to the stepper whenever any of it is
//! live.

use snitch_asm::layout;
use snitch_riscv::csr::CSR_FPU_FENCE;
use snitch_riscv::inst::Inst;
use snitch_riscv::ops::{AluImmOp, AluOp, BranchOp, CsrOp, LoadOp, StoreOp};
use snitch_riscv::reg::IntReg;

use crate::config::ClusterConfig;
use crate::core::Decoded;

/// How an FP offload's captured integer operand is computed at issue time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OffloadVal {
    /// No integer operand travels with the offload.
    None,
    /// `rs1 + offset` (FP loads and stores).
    Addr { rs1: u8, offset: i32 },
    /// A plain register read (`fcvt`/`fmv` int sources, FREP repeat counts).
    Reg { rs1: u8 },
}

/// One pre-lowered micro-op. Register operands are raw indices; pc-relative
/// values are resolved against the op's own pc at compile time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum BlockOp {
    Lui {
        value: u32,
    },
    /// `pc + imm`, precomputed.
    Auipc {
        value: u32,
    },
    AluImm {
        op: AluImmOp,
        rs1: u8,
        imm: i32,
    },
    AluReg {
        op: AluOp,
        rs1: u8,
        rs2: u8,
        latency: u32,
    },
    Load {
        op: LoadOp,
        rs1: u8,
        offset: i32,
    },
    Store {
        op: StoreOp,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        taken_pc: u32,
    },
    Jal {
        target: u32,
    },
    Jalr {
        rs1: u8,
        offset: i32,
    },
    Fence,
    /// `ecall`/`ebreak`: halts without advancing the pc.
    Ecall,
    /// FP/FREP offload into the FP subsystem (the actual [`Inst`] is read
    /// from the parallel `text` entry at issue time; `meta` is its
    /// pre-extracted issue metadata, saved here so the offload path never
    /// re-derives it).
    Offload {
        val: OffloadVal,
        meta: crate::fpss::FpMeta,
        is_frep: bool,
        writes_int_rf: bool,
    },
    /// The canonical FPU fence (`csrrs x0, fpu_fence, x0`): executes through
    /// the stepper like [`Generic`](Self::Generic), but while the FP
    /// subsystem has queued work the burst loop recognizes that the only
    /// possible outcome is one Fence stall and skips the delegated call.
    FenceWait,
    /// Delegated to `IntCore::step` (CSR, SSR config, DMA, unknown ops).
    Generic,
}

/// A pre-compiled instruction: the micro-op plus its integer hazard
/// operands. Index 0 is x0, whose scoreboard slot is always ready, so it
/// doubles as the "no operand" sentinel.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockInst {
    pub(crate) op: BlockOp,
    /// Integer source register indices for the issue hazard scan (same
    /// collapsed order as [`Decoded::int_srcs`]).
    pub(crate) srcs: [u8; 2],
    /// Integer destination register index (0 when none).
    pub(crate) dst: u8,
}

impl BlockInst {
    fn compile(d: &Decoded, pc: u32, cfg: &ClusterConfig) -> Self {
        let srcs = [reg_index(d.int_srcs[0]), reg_index(d.int_srcs[1])];
        let dst = reg_index(d.int_dst);
        let op = if d.inst.is_fp() || d.inst.is_frep() {
            let val = match d.inst {
                Inst::Flw { rs1, offset, .. }
                | Inst::Fld { rs1, offset, .. }
                | Inst::Fsw { rs1, offset, .. }
                | Inst::Fsd { rs1, offset, .. } => OffloadVal::Addr { rs1: rs1.index(), offset },
                Inst::FpCvtI2F { rs1, .. } | Inst::FpMvX2F { rs1, .. } => {
                    OffloadVal::Reg { rs1: rs1.index() }
                }
                Inst::FrepO { rep, .. } | Inst::FrepI { rep, .. } => {
                    OffloadVal::Reg { rs1: rep.index() }
                }
                _ => OffloadVal::None,
            };
            BlockOp::Offload {
                val,
                meta: crate::fpss::FpMeta::of(&d.inst),
                is_frep: d.inst.is_frep(),
                writes_int_rf: d.inst.fp_writes_int_rf(),
            }
        } else {
            match d.inst {
                Inst::Lui { imm, .. } => BlockOp::Lui { value: imm as u32 },
                Inst::Auipc { imm, .. } => BlockOp::Auipc { value: pc.wrapping_add(imm as u32) },
                Inst::OpImm { op, rs1, imm, .. } => BlockOp::AluImm { op, rs1: rs1.index(), imm },
                Inst::OpReg { op, rs1, rs2, .. } => BlockOp::AluReg {
                    op,
                    rs1: rs1.index(),
                    rs2: rs2.index(),
                    latency: if op.is_div() {
                        cfg.div_latency
                    } else if op.is_muldiv() {
                        cfg.mul_latency
                    } else {
                        1
                    },
                },
                Inst::Jal { offset, .. } => BlockOp::Jal { target: pc.wrapping_add(offset as u32) },
                Inst::Jalr { rs1, offset, .. } => BlockOp::Jalr { rs1: rs1.index(), offset },
                Inst::Branch { op, rs1, rs2, offset } => BlockOp::Branch {
                    op,
                    rs1: rs1.index(),
                    rs2: rs2.index(),
                    taken_pc: pc.wrapping_add(offset as u32),
                },
                Inst::Load { op, rs1, offset, .. } => {
                    BlockOp::Load { op, rs1: rs1.index(), offset }
                }
                Inst::Store { op, rs2, rs1, offset } => {
                    BlockOp::Store { op, rs1: rs1.index(), rs2: rs2.index(), offset }
                }
                Inst::Fence => BlockOp::Fence,
                Inst::Ecall | Inst::Ebreak => BlockOp::Ecall,
                // Only the canonical zero-register encoding: any other
                // fence-CSR form could carry real hazards or a write.
                Inst::Csr { op: CsrOp::Rs, rd, csr: CSR_FPU_FENCE, src: 0 } if rd.is_zero() => {
                    BlockOp::FenceWait
                }
                _ => BlockOp::Generic,
            }
        };
        BlockInst { op, srcs, dst }
    }
}

fn reg_index(r: Option<IntReg>) -> u8 {
    r.map_or(0, IntReg::index)
}

/// The compiled text section: one [`BlockInst`] per `text` entry, indexed
/// by `(pc - TEXT_BASE) / 4`.
#[derive(Clone, Debug, Default)]
pub(crate) struct BlockCache {
    ops: Vec<BlockInst>,
}

impl BlockCache {
    /// Rebuilds the cache for a freshly loaded text section, reusing the
    /// allocation.
    pub(crate) fn recompile(&mut self, text: &[Decoded], cfg: &ClusterConfig) {
        self.ops.clear();
        self.ops.reserve(text.len());
        for (i, d) in text.iter().enumerate() {
            let pc = layout::TEXT_BASE.wrapping_add(i as u32 * 4);
            self.ops.push(BlockInst::compile(d, pc, cfg));
        }
    }

    /// Drops the compiled ops (on `Cluster::reset`, mirroring `text`).
    pub(crate) fn clear(&mut self) {
        self.ops.clear();
    }

    /// The compiled micro-ops, parallel to the text section.
    pub(crate) fn ops(&self) -> &[BlockInst] {
        &self.ops
    }
}
