//! Cycle-accurate simulator of a Snitch compute cluster.
//!
//! Models the evaluation platform of the COPIFT paper (Colagrande & Benini,
//! DAC 2025): a single-issue in-order RV32 integer core with a decoupled FP
//! subsystem providing *pseudo dual-issue* execution via the FREP hardware
//! loop, three SSR/ISSR stream semantic registers, a 32-bank TCDM scratchpad,
//! an L0 instruction buffer and a cluster DMA engine.
//!
//! The timing model captures the mechanisms the paper's evaluation hinges on:
//!
//! * one integer issue slot per cycle; FP instructions consume it on offload,
//!   so RV32G baselines cannot exceed IPC 1;
//! * FREP replays issue from the sequencer concurrently with integer
//!   execution (peak IPC 2), with offload-FIFO backpressure bounding
//!   integer-thread run-ahead;
//! * FP→integer write-backs (Type 3 dependencies) serialize the core;
//! * the single ALU/mul write-back port structural hazard (the LCG stalls);
//! * L0 instruction-buffer hits/misses (I$ energy, loop-body capacity);
//! * TCDM bank conflicts among core, FP LSU, SSRs and DMA.
//!
//! See `DESIGN.md` for parameter provenance and modelled deviations, and
//! [`cluster::Cluster`] for the entry point.

#![forbid(unsafe_code)]

mod block;
pub mod cluster;
pub mod config;
pub mod core;
pub mod dma;
pub mod error;
pub mod fpss;
pub mod icache;
pub mod mem;
pub mod ssr;
pub mod stats;
pub mod system;
#[cfg(feature = "testing")]
pub mod testing;

pub use cluster::Cluster;
pub use config::{ClusterConfig, SystemConfig};
pub use error::{RunError, SimFault};
pub use stats::Stats;
pub use system::System;

/// Emits a trace event when a tracer is attached. The `$kind` expression is
/// only evaluated on the traced path, so the untraced hot path pays exactly
/// one `Option` branch — no event construction, no allocation.
macro_rules! trace_event {
    ($tracer:expr, $cycle:expr, $hart:expr, $kind:expr) => {
        if let Some(t) = $tracer.as_mut() {
            t.record($cycle, $hart, $kind);
        }
    };
}
pub(crate) use trace_event;
