//! L0 instruction buffer model.
//!
//! Snitch places a small fully-associative L0 instruction buffer in front of
//! the shared L1 instruction cache. Loops that fit the L0 are served entirely
//! from it; larger loops thrash it (FIFO replacement with sequential reuse
//! yields no hits), so every fetch pays an L1 access — the paper uses exactly
//! this effect to explain why the `exp`/`log` COPIFT variants *reduce* I$
//! power: after separating the FP instructions, the integer loop body fits L0.
//!
//! The model is energy-oriented: hits and misses are counted per fetch, while
//! timing assumes the L0's next-line prefetcher hides the L1 latency (fetch
//! never stalls the core in this model; taken-branch refill is charged
//! separately by the core as the branch penalty).
//!
//! Implementation: this is queried once per issued instruction, so it sits on
//! the simulator's hottest path. Residency is an open-addressed,
//! direct-mapped-with-linear-probing table of pc words (no hasher — pcs are
//! word-aligned, so `pc >> 2` indexes the table directly), and FIFO order is
//! a fixed ring of `capacity` slots. Both are allocated once at construction;
//! `fetch` performs no allocation and no hashing. Behavior (hit/miss per
//! access, FIFO eviction order) is identical to a set + queue model.

/// Empty-slot sentinel in the probe table. Program counters live at
/// `TEXT_BASE` and are 4-byte aligned, so `u32::MAX` can never be a real pc.
const EMPTY: u32 = u32::MAX;

/// L0 instruction buffer with FIFO replacement.
#[derive(Clone, Debug)]
pub struct L0Cache {
    capacity: usize,
    /// Open-addressed residency table (power-of-two, ≤50% load).
    table: Vec<u32>,
    /// `table.len() - 1`, for masking probe indices.
    mask: usize,
    /// `32 - log2(table.len())`: selects the high hash bits as the home slot.
    shift: u32,
    /// FIFO ring of resident pcs (eviction order).
    fifo: Vec<u32>,
    head: usize,
    len: usize,
    hits: u64,
    misses: u64,
}

impl L0Cache {
    /// Creates a buffer holding `capacity` instructions.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "L0 capacity must be positive");
        let slots = (capacity * 2).next_power_of_two();
        L0Cache {
            capacity,
            table: vec![EMPTY; slots],
            mask: slots - 1,
            shift: 32 - slots.trailing_zeros(),
            fifo: vec![EMPTY; capacity],
            head: 0,
            len: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Home slot of `pc`: the word index spread by a Fibonacci multiply
    /// (high bits). Straight-line code occupies *runs* of consecutive pcs,
    /// so indexing by `(pc >> 2) & mask` would pack them into one contiguous
    /// cluster and a missing pc adjacent to the run would probe across all
    /// of it; the multiplicative spread keeps probe chains O(1) at ≤50%
    /// load.
    fn slot_of(&self, pc: u32) -> usize {
        let spread = (pc >> 2).wrapping_mul(0x9E37_79B9);
        (spread as usize >> self.shift) & self.mask
    }

    fn contains(&self, pc: u32) -> bool {
        let mut i = self.slot_of(pc);
        loop {
            let e = self.table[i];
            if e == pc {
                return true;
            }
            if e == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, pc: u32) {
        let mut i = self.slot_of(pc);
        while self.table[i] != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.table[i] = pc;
    }

    /// Removes `pc` with backward-shift deletion, preserving the probe
    /// invariant (every entry reachable from its home slot) without
    /// tombstones.
    fn remove(&mut self, pc: u32) {
        let mut i = self.slot_of(pc);
        while self.table[i] != pc {
            debug_assert_ne!(self.table[i], EMPTY, "removing a non-resident pc");
            i = (i + 1) & self.mask;
        }
        self.table[i] = EMPTY;
        let mut j = (i + 1) & self.mask;
        while self.table[j] != EMPTY {
            let home = self.slot_of(self.table[j]);
            // Shift back iff the hole lies within this entry's probe path:
            // cyclically, home..=j must contain i.
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.table[i] = self.table[j];
                self.table[j] = EMPTY;
                i = j;
            }
            j = (j + 1) & self.mask;
        }
    }

    /// Restores the just-constructed empty state, reusing both tables — the
    /// allocation-free equivalent of `L0Cache::new(capacity)`.
    pub fn reset(&mut self) {
        self.table.fill(EMPTY);
        self.head = 0;
        self.len = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Records a fetch of the instruction at `pc`; returns whether it hit.
    pub fn fetch(&mut self, pc: u32) -> bool {
        debug_assert_ne!(pc, EMPTY);
        if self.contains(pc) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            if self.len == self.capacity {
                let evicted = self.fifo[self.head];
                self.head += 1;
                if self.head == self.capacity {
                    self.head = 0;
                }
                self.len -= 1;
                self.remove(evicted);
            }
            let mut tail = self.head + self.len;
            if tail >= self.capacity {
                tail -= self.capacity;
            }
            self.fifo[tail] = pc;
            self.len += 1;
            self.insert(pc);
            false
        }
    }

    /// Fetches served from the buffer.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fetches forwarded to the L1 instruction cache.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_loop_hits_after_first_iteration() {
        let mut c = L0Cache::new(8);
        for _ in 0..10 {
            for pc in (0..4 * 4).step_by(4) {
                c.fetch(pc);
            }
        }
        assert_eq!(c.misses(), 4);
        assert_eq!(c.hits(), 36);
    }

    #[test]
    fn loop_larger_than_capacity_thrashes() {
        // 12-instruction loop in an 8-entry FIFO: sequential reuse never hits.
        let mut c = L0Cache::new(8);
        for _ in 0..5 {
            for pc in (0..12 * 4).step_by(4) {
                c.fetch(pc);
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 60);
    }

    #[test]
    fn boundary_loop_exactly_capacity_fits() {
        let mut c = L0Cache::new(8);
        for _ in 0..3 {
            for pc in (0..8 * 4).step_by(4) {
                c.fetch(pc);
            }
        }
        assert_eq!(c.misses(), 8);
        assert_eq!(c.hits(), 16);
    }

    /// The open-addressed implementation must agree access-for-access with
    /// the obvious set + FIFO-queue reference model on adversarial patterns
    /// (colliding home slots, re-fetch after eviction, capacity churn).
    #[test]
    fn matches_reference_model_on_pseudo_random_patterns() {
        use std::collections::{HashSet, VecDeque};

        struct Reference {
            capacity: usize,
            resident: HashSet<u32>,
            order: VecDeque<u32>,
        }
        impl Reference {
            fn fetch(&mut self, pc: u32) -> bool {
                if self.resident.contains(&pc) {
                    return true;
                }
                if self.order.len() == self.capacity {
                    let evicted = self.order.pop_front().unwrap();
                    self.resident.remove(&evicted);
                }
                self.order.push_back(pc);
                self.resident.insert(pc);
                false
            }
        }

        for capacity in [1usize, 3, 8, 16, 64] {
            let mut c = L0Cache::new(capacity);
            let mut r = Reference { capacity, resident: HashSet::new(), order: VecDeque::new() };
            // xorshift-ish pc stream biased toward collisions: addresses are
            // word-aligned and folded into a small window so home slots clash.
            let mut x: u32 = 0x9e37_79b9;
            for step in 0..20_000u32 {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                // Mix short sequential bursts (loop-like) with random jumps.
                let pc = if step % 7 < 5 {
                    (step % 97) * 4
                } else {
                    (x % (capacity as u32 * 4 + 13)) * 4
                };
                assert_eq!(c.fetch(pc), r.fetch(pc), "divergence at step {step} pc {pc:#x}");
            }
            assert_eq!(c.hits() + c.misses(), 20_000);
        }
    }
}
