//! L0 instruction buffer model.
//!
//! Snitch places a small fully-associative L0 instruction buffer in front of
//! the shared L1 instruction cache. Loops that fit the L0 are served entirely
//! from it; larger loops thrash it (FIFO replacement with sequential reuse
//! yields no hits), so every fetch pays an L1 access — the paper uses exactly
//! this effect to explain why the `exp`/`log` COPIFT variants *reduce* I$
//! power: after separating the FP instructions, the integer loop body fits L0.
//!
//! The model is energy-oriented: hits and misses are counted per fetch, while
//! timing assumes the L0's next-line prefetcher hides the L1 latency (fetch
//! never stalls the core in this model; taken-branch refill is charged
//! separately by the core as the branch penalty).

use std::collections::HashSet;
use std::collections::VecDeque;

/// L0 instruction buffer with FIFO replacement.
#[derive(Clone, Debug)]
pub struct L0Cache {
    capacity: usize,
    resident: HashSet<u32>,
    order: VecDeque<u32>,
    hits: u64,
    misses: u64,
}

impl L0Cache {
    /// Creates a buffer holding `capacity` instructions.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "L0 capacity must be positive");
        L0Cache {
            capacity,
            resident: HashSet::with_capacity(capacity * 2),
            order: VecDeque::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Records a fetch of the instruction at `pc`; returns whether it hit.
    pub fn fetch(&mut self, pc: u32) -> bool {
        if self.resident.contains(&pc) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            if self.order.len() == self.capacity {
                let evicted = self.order.pop_front().expect("non-empty at capacity");
                self.resident.remove(&evicted);
            }
            self.order.push_back(pc);
            self.resident.insert(pc);
            false
        }
    }

    /// Fetches served from the buffer.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fetches forwarded to the L1 instruction cache.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_loop_hits_after_first_iteration() {
        let mut c = L0Cache::new(8);
        for _ in 0..10 {
            for pc in (0..4 * 4).step_by(4) {
                c.fetch(pc);
            }
        }
        assert_eq!(c.misses(), 4);
        assert_eq!(c.hits(), 36);
    }

    #[test]
    fn loop_larger_than_capacity_thrashes() {
        // 12-instruction loop in an 8-entry FIFO: sequential reuse never hits.
        let mut c = L0Cache::new(8);
        for _ in 0..5 {
            for pc in (0..12 * 4).step_by(4) {
                c.fetch(pc);
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 60);
    }

    #[test]
    fn boundary_loop_exactly_capacity_fits() {
        let mut c = L0Cache::new(8);
        for _ in 0..3 {
            for pc in (0..8 * 4).step_by(4) {
                c.fetch(pc);
            }
        }
        assert_eq!(c.misses(), 8);
        assert_eq!(c.hits(), 16);
    }
}
