//! The FP subsystem (FPSS): offload FIFO, FREP sequencer, FPU timing and the
//! SSR register interface.
//!
//! FP instructions are issued by the integer core and pushed into an offload
//! FIFO (each push consumes one integer issue slot — this is why baseline
//! RV32G code can never exceed IPC 1). The sequencer pops the FIFO in order;
//! an `frep.o` marker makes it capture the next `max_inst` FP instructions
//! into a ring buffer while issuing them once (iteration 0), then replay the
//! ring `rep` more times *without* involving the integer core — Snitch's
//! *pseudo dual-issue*. Only one hardware loop is active at a time; later
//! offloads queue in the FIFO, whose backpressure bounds how far the integer
//! thread can run ahead (this is what makes COPIFT's double/triple buffering
//! sufficient).

use std::collections::VecDeque;

use snitch_profile::Profiler;
use snitch_riscv::inst::Inst;
use snitch_riscv::meta::InstClass;
use snitch_riscv::ops::{f64_to_i32, f64_to_u32, FpAluOp, FpCmpOp, FpFmt, IntCvt, SgnjOp};
use snitch_riscv::reg::{FpReg, IntReg};
use snitch_trace::{EventKind, Lane, StallCause, Tracer};

use crate::config::ClusterConfig;
use crate::error::SimFault;
use crate::mem::{Memory, TcdmArbiter};
use crate::ssr::Ssr;
use crate::stats::Stats;
use crate::trace_event;
use snitch_asm::layout;

/// Counts a lost FPU issue slot against the blocked instruction's issue pc
/// and emits the matching trace event.
#[allow(clippy::too_many_arguments)]
fn fpu_stall(
    now: u64,
    hart: u8,
    pc: u32,
    cause: StallCause,
    stats: &mut Stats,
    tracer: &mut Option<Tracer>,
    profiler: &mut Option<Profiler>,
) {
    stats.add_stall(cause, 1);
    if let Some(p) = profiler {
        p.stall(usize::from(hart), pc, cause, 1);
    }
    trace_event!(tracer, now, hart, EventKind::Stall { cause, cycles: 1 });
}

/// Register-index sentinel in [`FpMeta`]: no register in this slot.
const NO_REG: u8 = 0xFF;

/// Pre-lowered issue metadata of one FP instruction: operand register
/// indices and the resource class, extracted from the [`Inst`] once when the
/// [`OffloadEntry`] is built so the per-cycle issue path (which runs again
/// on every stall retry and every sequencer replay) never re-matches the
/// instruction encoding. The block cache precomputes it per pc so the burst
/// offload path skips even that one-time extraction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FpMeta {
    /// FP source register indices in operand order ([`NO_REG`] = empty slot).
    srcs: [u8; 3],
    /// FP destination register index ([`NO_REG`] = none).
    dst: u8,
    /// Execution-resource class (drives latency and the op counters).
    class: InstClass,
}

impl FpMeta {
    pub(crate) fn of(inst: &Inst) -> Self {
        let s = fp_sources(inst);
        FpMeta {
            srcs: [
                s[0].map_or(NO_REG, FpReg::index),
                s[1].map_or(NO_REG, FpReg::index),
                s[2].map_or(NO_REG, FpReg::index),
            ],
            dst: fp_dest(inst).map_or(NO_REG, FpReg::index),
            class: inst.class(),
        }
    }
}

/// An instruction offloaded by the integer core, with any integer operand
/// captured at issue time (register value, computed address, or FREP
/// repetition count).
#[derive(Clone, Copy, Debug)]
pub struct OffloadEntry {
    /// The offloaded instruction (an FP instruction or an FREP marker).
    pub inst: Inst,
    /// Captured integer operand, if the instruction consumes one.
    pub int_val: Option<u32>,
    /// Pre-lowered issue metadata (kept consistent with `inst` by
    /// construction; staggered replays remap both together).
    meta: FpMeta,
    /// The pc the core issued this instruction from — the profiler's charge
    /// point for FPU-side stalls and sequencer replays (staggering remaps
    /// registers, never the pc).
    pc: u32,
}

impl OffloadEntry {
    /// Builds an offload entry, pre-lowering the issue metadata. Harness
    /// constructor: charges attribute to pc 0 (outside any program text).
    #[must_use]
    pub fn new(inst: Inst, int_val: Option<u32>) -> Self {
        OffloadEntry { inst, int_val, meta: FpMeta::of(&inst), pc: 0 }
    }

    /// [`new`](Self::new) with the issue pc attached (the core's path).
    pub(crate) fn at(inst: Inst, int_val: Option<u32>, pc: u32) -> Self {
        OffloadEntry { inst, int_val, meta: FpMeta::of(&inst), pc }
    }

    /// Builds an offload entry from metadata already extracted for this
    /// exact instruction (the block cache's per-pc copy).
    pub(crate) fn with_meta(inst: Inst, int_val: Option<u32>, meta: FpMeta, pc: u32) -> Self {
        OffloadEntry { inst, int_val, meta, pc }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SeqState {
    Idle,
    Capture {
        remaining: u8,
        rep: u32,
        stagger_max: u8,
        stagger_mask: u8,
        inst_major: bool,
    },
    /// `inst_major` = `frep.i`: each instruction repeats back-to-back before
    /// the next; otherwise (`frep.o`) the whole sequence repeats.
    Replay {
        iter: u32,
        total: u32,
        pos: usize,
        stagger_max: u8,
        stagger_mask: u8,
        inst_major: bool,
    },
}

/// A completed FP→integer write-back to deliver to the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntWriteback {
    /// Destination integer register.
    pub rd: IntReg,
    /// Value to write.
    pub value: u32,
}

/// The FP subsystem.
#[derive(Clone, Debug)]
pub struct Fpss {
    fifo: VecDeque<OffloadEntry>,
    fifo_capacity: usize,
    ring: Vec<OffloadEntry>,
    ring_capacity: usize,
    seq: SeqState,
    regs: [u64; 32],
    ready_at: [u64; 32],
    ssr_enabled: bool,
    pending_stores: usize,
    divsqrt_busy_until: u64,
    busy_until: u64,
    int_wb: Vec<(u64, IntWriteback)>,
    ssr_pushes: Vec<(u64, usize, u64)>,
}

impl Fpss {
    /// Creates an idle FP subsystem.
    #[must_use]
    pub fn new(cfg: &ClusterConfig) -> Self {
        Fpss {
            fifo: VecDeque::with_capacity(cfg.offload_fifo_depth),
            fifo_capacity: cfg.offload_fifo_depth,
            ring: Vec::with_capacity(cfg.sequencer_depth),
            ring_capacity: cfg.sequencer_depth,
            seq: SeqState::Idle,
            regs: [0; 32],
            ready_at: [0; 32],
            ssr_enabled: false,
            pending_stores: 0,
            divsqrt_busy_until: 0,
            busy_until: 0,
            int_wb: Vec::new(),
            ssr_pushes: Vec::new(),
        }
    }

    /// Restores the just-constructed state (empty queues, zeroed register
    /// file, SSR semantics off), reusing every buffer — the allocation-free
    /// equivalent of `Fpss::new(cfg)` for the same configuration.
    pub fn reset(&mut self) {
        self.fifo.clear();
        self.ring.clear();
        self.seq = SeqState::Idle;
        self.regs = [0; 32];
        self.ready_at = [0; 32];
        self.ssr_enabled = false;
        self.pending_stores = 0;
        self.divsqrt_busy_until = 0;
        self.busy_until = 0;
        self.int_wb.clear();
        self.ssr_pushes.clear();
    }

    /// Whether the offload FIFO can accept another instruction.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.fifo.len() < self.fifo_capacity
    }

    /// Pushes an offloaded instruction (the core's issue slot for it).
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full; callers check [`can_accept`](Self::can_accept).
    pub fn offload(&mut self, entry: OffloadEntry) {
        assert!(self.can_accept(), "offload into full FIFO");
        if matches!(entry.inst, Inst::Fsw { .. } | Inst::Fsd { .. }) {
            self.pending_stores += 1;
        }
        self.fifo.push_back(entry);
    }

    /// Whether FP stores are still queued (not yet performed). Integer loads
    /// must wait for them to preserve the single-thread memory ordering the
    /// baseline RV32G kernels rely on (e.g. `fsd ki; lw ki` in the paper's
    /// Fig. 1b).
    #[must_use]
    pub fn has_pending_stores(&self) -> bool {
        self.pending_stores > 0
    }

    /// Sets the SSR register-semantics enable (CSR 0x7C0 bit 0).
    pub fn set_ssr_enabled(&mut self, enabled: bool) {
        self.ssr_enabled = enabled;
    }

    /// Whether SSR semantics are currently enabled.
    #[must_use]
    pub fn ssr_enabled(&self) -> bool {
        self.ssr_enabled
    }

    /// Reads an FP register (for the harness / debugging).
    #[must_use]
    pub fn reg(&self, r: FpReg) -> u64 {
        self.regs[r.index() as usize]
    }

    /// Whether everything issued has completed and nothing is pending
    /// (the FPU-fence condition, not counting SSR streamer drain).
    #[must_use]
    pub fn drained(&self, now: u64) -> bool {
        self.fifo.is_empty()
            && self.seq == SeqState::Idle
            && self.int_wb.is_empty()
            && self.ssr_pushes.is_empty()
            && self.busy_until <= now
    }

    /// Delivers FP→integer write-backs due at `now` to `apply`, in issue
    /// order (called by the cluster before the core issues, so results are
    /// visible the cycle they retire). Allocation-free: the pending list is
    /// drained in place — this runs for every hart every cycle.
    pub fn drain_int_writebacks(&mut self, now: u64, mut apply: impl FnMut(IntWriteback)) {
        if self.int_wb.is_empty() {
            return;
        }
        self.int_wb.retain(|&(cycle, wb)| {
            if cycle <= now {
                apply(wb);
                false
            } else {
                true
            }
        });
    }

    /// Collects the write-backs due at `now` into a fresh `Vec` (convenience
    /// for tests and instrumentation; the cluster hot path uses
    /// [`drain_int_writebacks`](Self::drain_int_writebacks)).
    pub fn take_int_writebacks(&mut self, now: u64) -> Vec<IntWriteback> {
        let mut due = Vec::new();
        self.drain_int_writebacks(now, |wb| due.push(wb));
        due
    }

    /// Whether the subsystem has nothing queued and nothing in flight to
    /// deliver — a cycle of [`step`](Self::step) would be a pure no-op.
    /// Unlike [`drained`](Self::drained), in-flight latency (`busy_until`)
    /// does not matter here: it produces no action by itself.
    #[must_use]
    pub fn idle_now(&self) -> bool {
        self.fifo.is_empty()
            && self.seq == SeqState::Idle
            && self.int_wb.is_empty()
            && self.ssr_pushes.is_empty()
    }

    /// If the subsystem provably does nothing on its own until some future
    /// cycle, returns the earliest cycle at which it can act again: the next
    /// write-back or SSR-push delivery, or the pipeline drain point
    /// (`busy_until`, observable through the fence condition). Returns
    /// `u64::MAX` when fully idle with nothing in flight, and `None` when it
    /// has queued work (non-empty FIFO or an active sequencer) and may act —
    /// and count stalls — on the very next cycle.
    #[must_use]
    pub fn quiescent_until(&self, now: u64) -> Option<u64> {
        if !self.fifo.is_empty() || self.seq != SeqState::Idle {
            return None;
        }
        let mut wake = u64::MAX;
        for &(cycle, _) in &self.int_wb {
            wake = wake.min(cycle);
        }
        for &(cycle, _, _) in &self.ssr_pushes {
            wake = wake.min(cycle);
        }
        if self.busy_until > now {
            wake = wake.min(self.busy_until);
        }
        Some(wake)
    }

    /// One cycle of FPSS work: deliver due SSR pushes, then let the
    /// sequencer/FPU issue at most one operation.
    ///
    /// # Errors
    ///
    /// Returns a [`SimFault`] on malformed programs (FREP body overflow or
    /// non-FP instructions inside a capture) and on memory faults.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        now: u64,
        hart: u8,
        cfg: &ClusterConfig,
        mem: &mut Memory,
        arb: &mut TcdmArbiter,
        ssrs: &mut [Ssr; 3],
        stats: &mut Stats,
        tracer: &mut Option<Tracer>,
        profiler: &mut Option<Profiler>,
    ) -> Result<(), SimFault> {
        // Deliver FPU results into SSR write FIFOs.
        let mut idx = 0;
        while idx < self.ssr_pushes.len() {
            if self.ssr_pushes[idx].0 <= now {
                let (_, ssr, bits) = self.ssr_pushes.swap_remove(idx);
                ssrs[ssr].push(bits);
            } else {
                idx += 1;
            }
        }

        if matches!(self.seq, SeqState::Replay { .. }) {
            stats.seq_active_cycles += 1;
        }

        match self.seq {
            SeqState::Idle => {
                // Process at most one FREP marker, then try to issue.
                if let Some(front) = self.fifo.front().copied() {
                    let frep = match front.inst {
                        Inst::FrepO { max_inst, stagger_max, stagger_mask, .. } => {
                            Some((max_inst, stagger_max, stagger_mask, false))
                        }
                        Inst::FrepI { max_inst, stagger_max, stagger_mask, .. } => {
                            Some((max_inst, stagger_max, stagger_mask, true))
                        }
                        _ => None,
                    };
                    if let Some((max_inst, stagger_max, stagger_mask, inst_major)) = frep {
                        if usize::from(max_inst) > self.ring_capacity {
                            return Err(SimFault::new(format!(
                                "frep body of {max_inst} exceeds sequencer depth {}",
                                self.ring_capacity
                            )));
                        }
                        self.fifo.pop_front();
                        self.ring.clear();
                        let rep = front.int_val.unwrap_or(0);
                        self.seq = SeqState::Capture {
                            remaining: max_inst,
                            rep,
                            stagger_max,
                            stagger_mask,
                            inst_major,
                        };
                        return self
                            .step_capture(now, hart, cfg, mem, arb, ssrs, stats, tracer, profiler);
                    }
                    if self.try_issue(
                        &front,
                        Lane::FpCore,
                        now,
                        hart,
                        cfg,
                        mem,
                        arb,
                        ssrs,
                        stats,
                        tracer,
                        profiler,
                    )? {
                        self.fifo.pop_front();
                        stats.fpu_busy_cycles += 1;
                    }
                }
                Ok(())
            }
            SeqState::Capture { .. } => {
                self.step_capture(now, hart, cfg, mem, arb, ssrs, stats, tracer, profiler)
            }
            SeqState::Replay { iter, total, pos, stagger_max, stagger_mask, inst_major } => {
                let mut staggered = self.ring[pos];
                let offset =
                    if stagger_max == 0 { 0 } else { (iter % (u32::from(stagger_max) + 1)) as u8 };
                stagger_entry(&mut staggered, stagger_mask, offset);
                if self.try_issue(
                    &staggered,
                    Lane::FpSeq,
                    now,
                    hart,
                    cfg,
                    mem,
                    arb,
                    ssrs,
                    stats,
                    tracer,
                    profiler,
                )? {
                    stats.fp_issued_seq += 1;
                    stats.fpu_busy_cycles += 1;
                    if let Some(p) = profiler {
                        p.issue(usize::from(hart), staggered.pc, Lane::FpSeq);
                    }
                    trace_event!(
                        tracer,
                        now,
                        hart,
                        EventKind::Issue { lane: Lane::FpSeq, pc: None, inst: staggered.inst }
                    );
                    // Advance: sequence-major (frep.o) wraps positions per
                    // iteration; instruction-major (frep.i) exhausts each
                    // instruction's repetitions before moving on. Note the
                    // first (capture) pass already issued each instruction
                    // once, so frep.i replays instruction `pos` from
                    // iteration `iter` onwards.
                    let (next_pos, next_iter, done) = if inst_major {
                        if iter + 1 == total {
                            if pos + 1 == self.ring.len() {
                                (0, 0, true)
                            } else {
                                (pos + 1, 1, false)
                            }
                        } else {
                            (pos, iter + 1, false)
                        }
                    } else if pos + 1 == self.ring.len() {
                        if iter + 1 == total {
                            (0, 0, true)
                        } else {
                            (0, iter + 1, false)
                        }
                    } else {
                        (pos + 1, iter, false)
                    };
                    if done {
                        self.seq = SeqState::Idle;
                        self.ring.clear();
                    } else {
                        self.seq = SeqState::Replay {
                            iter: next_iter,
                            total,
                            pos: next_pos,
                            stagger_max,
                            stagger_mask,
                            inst_major,
                        };
                    }
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step_capture(
        &mut self,
        now: u64,
        hart: u8,
        cfg: &ClusterConfig,
        mem: &mut Memory,
        arb: &mut TcdmArbiter,
        ssrs: &mut [Ssr; 3],
        stats: &mut Stats,
        tracer: &mut Option<Tracer>,
        profiler: &mut Option<Profiler>,
    ) -> Result<(), SimFault> {
        let SeqState::Capture { remaining, rep, stagger_max, stagger_mask, inst_major } = self.seq
        else {
            unreachable!("step_capture outside capture state");
        };
        let Some(front) = self.fifo.front().copied() else {
            return Ok(());
        };
        if !front.inst.is_fp() {
            return Err(SimFault::new(format!(
                "non-FP instruction `{}` inside an FREP body",
                front.inst
            )));
        }
        if self.try_issue(
            &front,
            Lane::FpCore,
            now,
            hart,
            cfg,
            mem,
            arb,
            ssrs,
            stats,
            tracer,
            profiler,
        )? {
            self.fifo.pop_front();
            stats.fpu_busy_cycles += 1;
            self.ring.push(front);
            let remaining = remaining - 1;
            if remaining == 0 {
                self.seq = if rep > 0 {
                    SeqState::Replay {
                        iter: 1,
                        total: rep + 1,
                        pos: 0,
                        stagger_max,
                        stagger_mask,
                        inst_major,
                    }
                } else {
                    self.ring.clear();
                    SeqState::Idle
                };
            } else {
                self.seq =
                    SeqState::Capture { remaining, rep, stagger_max, stagger_mask, inst_major };
            }
        }
        Ok(())
    }

    /// Attempts to issue one FP instruction to the FPU. Returns whether it
    /// issued (false = stall this cycle). `lane` tags the trace events with
    /// the issue slot the instruction came from (core offload vs sequencer).
    #[allow(clippy::too_many_arguments)]
    fn try_issue(
        &mut self,
        entry: &OffloadEntry,
        lane: Lane,
        now: u64,
        hart: u8,
        cfg: &ClusterConfig,
        mem: &mut Memory,
        arb: &mut TcdmArbiter,
        ssrs: &mut [Ssr; 3],
        stats: &mut Stats,
        tracer: &mut Option<Tracer>,
        profiler: &mut Option<Profiler>,
    ) -> Result<bool, SimFault> {
        let inst = entry.inst;
        let meta = entry.meta;
        let ssr_on = self.ssr_enabled;

        // --- hazard checks (no side effects until all pass) ---
        // An instruction reading a stream register in several operand slots
        // pops one element per slot, so availability is counted per SSR.
        let mut pops_needed = [0usize; 3];
        for &s in &meta.srcs {
            if s == NO_REG {
                continue;
            }
            if ssr_on && s < 3 {
                pops_needed[s as usize] += 1;
            } else if self.ready_at[s as usize] > now {
                fpu_stall(now, hart, entry.pc, StallCause::FpuRaw, stats, tracer, profiler);
                return Ok(false);
            }
        }
        if ssr_on {
            for (i, &needed) in pops_needed.iter().enumerate() {
                if needed > 0 && ssrs[i].available_elements() < needed {
                    fpu_stall(now, hart, entry.pc, StallCause::FpuSsr, stats, tracer, profiler);
                    return Ok(false);
                }
            }
        }
        if meta.dst != NO_REG {
            if ssr_on && meta.dst < 3 {
                if !ssrs[meta.dst as usize].write_ready() {
                    fpu_stall(now, hart, entry.pc, StallCause::FpuSsr, stats, tracer, profiler);
                    return Ok(false);
                }
            } else if self.ready_at[meta.dst as usize] > now {
                fpu_stall(now, hart, entry.pc, StallCause::FpuRaw, stats, tracer, profiler);
                return Ok(false);
            }
        }
        let class = meta.class;
        if class == InstClass::FpDivSqrt && self.divsqrt_busy_until > now {
            fpu_stall(now, hart, entry.pc, StallCause::FpuRaw, stats, tracer, profiler);
            return Ok(false);
        }
        // Memory operations arbitrate last (a grant must not be wasted).
        if matches!(class, InstClass::FpLoad | InstClass::FpStore) {
            let addr = entry.int_val.expect("fp load/store carries its address");
            if layout::is_tcdm(addr) {
                if !arb.request(crate::mem::TcdmPort::FpLsu(hart), addr) {
                    fpu_stall(now, hart, entry.pc, StallCause::FpuTcdm, stats, tracer, profiler);
                    return Ok(false);
                }
                stats.tcdm_fp_accesses += 1;
            } else if layout::is_main(addr) {
                stats.main_mem_accesses += 1;
            } else {
                stats.l2_accesses += 1;
            }
        }

        // --- execute (latency lookup and op counter in one dispatch) ---
        let latency = match class {
            InstClass::FpMulAdd => {
                stats.fpu_muladd_ops += 1;
                cfg.fpu_lat_muladd
            }
            InstClass::FpShort => {
                stats.fpu_short_ops += 1;
                cfg.fpu_lat_short
            }
            InstClass::FpCvt => {
                stats.fpu_cvt_ops += 1;
                cfg.fpu_lat_cvt
            }
            InstClass::FpDivSqrt => {
                stats.fpu_divsqrt_ops += 1;
                self.divsqrt_busy_until = now + u64::from(cfg.fpu_lat_divsqrt);
                cfg.fpu_lat_divsqrt
            }
            InstClass::FpLoad => {
                stats.fp_mem_ops += 1;
                let addr = entry.int_val.expect("checked above");
                let mut l = cfg.fp_load_latency;
                if layout::is_main(addr) {
                    l += cfg.main_mem_extra_latency;
                } else if !layout::is_tcdm(addr) {
                    // Shared L2 or a cluster alias window.
                    l += cfg.l2_latency;
                }
                l
            }
            InstClass::FpStore => {
                stats.fp_mem_ops += 1;
                debug_assert!(self.pending_stores > 0);
                self.pending_stores -= 1;
                1
            }
            other => {
                return Err(SimFault::new(format!(
                    "instruction `{inst}` (class {other:?}) reached the FPU"
                )))
            }
        };

        // Gather operand bits, popping SSR streams.
        let mut bits = [0u64; 3];
        for (slot, &s) in meta.srcs.iter().enumerate() {
            if s == NO_REG {
                continue;
            }
            bits[slot] =
                if ssr_on && s < 3 { ssrs[s as usize].pop() } else { self.regs[s as usize] };
        }

        let outcome = exec_fp(&inst, bits, entry.int_val, mem)?;
        let done_at = now + u64::from(latency);
        self.busy_until = self.busy_until.max(done_at);
        trace_event!(tracer, done_at, hart, EventKind::Retire { lane, inst });
        match outcome {
            Outcome::Fp(value) => {
                debug_assert_ne!(meta.dst, NO_REG, "fp-result instruction has an fp destination");
                if ssr_on && meta.dst < 3 {
                    let i = meta.dst as usize;
                    ssrs[i].reserve_write();
                    self.ssr_pushes.push((done_at, i, value));
                } else {
                    self.regs[meta.dst as usize] = value;
                    self.ready_at[meta.dst as usize] = done_at;
                }
            }
            Outcome::Int(rd, value) => {
                if !rd.is_zero() {
                    self.int_wb.push((done_at, IntWriteback { rd, value }));
                }
            }
            Outcome::None => {}
        }
        Ok(true)
    }
}

/// Result routing of one FP instruction.
enum Outcome {
    Fp(u64),
    Int(IntReg, u32),
    None,
}

/// FP source registers of an instruction, in operand order.
fn fp_sources(inst: &Inst) -> [Option<FpReg>; 3] {
    match *inst {
        Inst::FpOp { op: FpAluOp::Sqrt, rs1, .. } => [Some(rs1), None, None],
        Inst::FpOp { rs1, rs2, .. } | Inst::FpSgnj { rs1, rs2, .. } => [Some(rs1), Some(rs2), None],
        Inst::FpFma { rs1, rs2, rs3, .. } => [Some(rs1), Some(rs2), Some(rs3)],
        Inst::FpCmp { rs1, rs2, .. } | Inst::CopiftCmp { rs1, rs2, .. } => {
            [Some(rs1), Some(rs2), None]
        }
        Inst::FpCvtF2I { rs1, .. }
        | Inst::FpCvtF2F { rs1, .. }
        | Inst::FpMvF2X { rs1, .. }
        | Inst::FpClass { rs1, .. }
        | Inst::CopiftCvtF2I { rs1, .. }
        | Inst::CopiftCvtI2F { rs1, .. }
        | Inst::CopiftClass { rs1, .. } => [Some(rs1), None, None],
        Inst::Fsw { rs2, .. } | Inst::Fsd { rs2, .. } => [Some(rs2), None, None],
        // Integer-sourced and load instructions have no FP sources.
        Inst::FpCvtI2F { .. } | Inst::FpMvX2F { .. } | Inst::Flw { .. } | Inst::Fld { .. } => {
            [None, None, None]
        }
        _ => [None, None, None],
    }
}

/// FP destination register of an instruction, if any.
fn fp_dest(inst: &Inst) -> Option<FpReg> {
    match *inst {
        Inst::Flw { rd, .. }
        | Inst::Fld { rd, .. }
        | Inst::FpOp { rd, .. }
        | Inst::FpFma { rd, .. }
        | Inst::FpSgnj { rd, .. }
        | Inst::FpCvtI2F { rd, .. }
        | Inst::FpCvtF2F { rd, .. }
        | Inst::FpMvX2F { rd, .. }
        | Inst::CopiftCmp { rd, .. }
        | Inst::CopiftCvtF2I { rd, .. }
        | Inst::CopiftCvtI2F { rd, .. }
        | Inst::CopiftClass { rd, .. } => Some(rd),
        _ => None,
    }
}

/// Applies FREP register staggering: operand fields selected by `mask`
/// (bit 0 = rd, 1 = rs1, 2 = rs2, 3 = rs3) are offset by the iteration
/// index. SSR-candidate registers (`ft0..ft2`) are never staggered, and
/// staggered indices wrap within `f3..f31` so they cannot collide with the
/// stream registers.
fn stagger_entry(entry: &mut OffloadEntry, mask: u8, offset: u8) {
    if mask == 0 || offset == 0 {
        return;
    }
    let remap = |r: FpReg, bit: u8| -> FpReg {
        if mask & (1 << bit) == 0 || r.is_ssr_candidate() {
            r
        } else {
            FpReg::new(3 + (r.index() - 3 + offset) % 29)
        }
    };
    let inst = match entry.inst {
        Inst::FpOp { op, fmt, rd, rs1, rs2 } => {
            Inst::FpOp { op, fmt, rd: remap(rd, 0), rs1: remap(rs1, 1), rs2: remap(rs2, 2) }
        }
        Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => Inst::FpFma {
            op,
            fmt,
            rd: remap(rd, 0),
            rs1: remap(rs1, 1),
            rs2: remap(rs2, 2),
            rs3: remap(rs3, 3),
        },
        Inst::FpSgnj { op, fmt, rd, rs1, rs2 } => {
            Inst::FpSgnj { op, fmt, rd: remap(rd, 0), rs1: remap(rs1, 1), rs2: remap(rs2, 2) }
        }
        Inst::CopiftCmp { op, rd, rs1, rs2 } => {
            Inst::CopiftCmp { op, rd: remap(rd, 0), rs1: remap(rs1, 1), rs2: remap(rs2, 2) }
        }
        Inst::CopiftCvtF2I { to, rd, rs1 } => {
            Inst::CopiftCvtF2I { to, rd: remap(rd, 0), rs1: remap(rs1, 1) }
        }
        Inst::CopiftCvtI2F { from, rd, rs1 } => {
            Inst::CopiftCvtI2F { from, rd: remap(rd, 0), rs1: remap(rs1, 1) }
        }
        Inst::CopiftClass { rd, rs1 } => Inst::CopiftClass { rd: remap(rd, 0), rs1: remap(rs1, 1) },
        Inst::FpCvtF2F { to, rd, rs1 } => {
            Inst::FpCvtF2F { to, rd: remap(rd, 0), rs1: remap(rs1, 1) }
        }
        _ => return,
    };
    entry.inst = inst;
    // Remap the pre-lowered metadata in lockstep: every staggerable variant
    // lists its FP sources in `rs1, rs2, rs3` operand order, so source slot
    // `i` pairs with mask bit `i + 1` and the destination with bit 0.
    let remap_idx = |r: u8, bit: u8| -> u8 {
        if r == NO_REG || mask & (1 << bit) == 0 || r < 3 {
            r
        } else {
            3 + (r - 3 + offset) % 29
        }
    };
    entry.meta.dst = remap_idx(entry.meta.dst, 0);
    for (i, s) in entry.meta.srcs.iter_mut().enumerate() {
        *s = remap_idx(*s, i as u8 + 1);
    }
}

const F32_SIGN: u32 = 0x8000_0000;
const F64_SIGN: u64 = 0x8000_0000_0000_0000;

fn nan_box(bits32: u32) -> u64 {
    0xFFFF_FFFF_0000_0000 | u64::from(bits32)
}

fn f32_of(bits: u64) -> f32 {
    f32::from_bits(bits as u32)
}

/// RISC-V `fclass` result mask.
fn classify_f64(v: f64) -> u32 {
    let bits = v.to_bits();
    let sign = bits & F64_SIGN != 0;
    if v.is_nan() {
        // Signaling vs quiet: MSB of the mantissa.
        if bits & 0x0008_0000_0000_0000 == 0 {
            1 << 8
        } else {
            1 << 9
        }
    } else if v.is_infinite() {
        if sign {
            1 << 0
        } else {
            1 << 7
        }
    } else if v == 0.0 {
        if sign {
            1 << 3
        } else {
            1 << 4
        }
    } else if v.is_subnormal() {
        if sign {
            1 << 2
        } else {
            1 << 5
        }
    } else if sign {
        1 << 1
    } else {
        1 << 6
    }
}

/// Functional evaluation of one FP instruction on operand `bits`
/// (gathered in [`fp_sources`] order).
fn exec_fp(
    inst: &Inst,
    bits: [u64; 3],
    int_val: Option<u32>,
    mem: &mut Memory,
) -> Result<Outcome, SimFault> {
    Ok(match *inst {
        Inst::Flw { .. } => {
            let addr = int_val.expect("flw address");
            let v = mem.read(addr, 4).map_err(SimFault::from)?;
            Outcome::Fp(nan_box(v as u32))
        }
        Inst::Fld { .. } => {
            let addr = int_val.expect("fld address");
            Outcome::Fp(mem.read(addr, 8).map_err(SimFault::from)?)
        }
        Inst::Fsw { .. } => {
            let addr = int_val.expect("fsw address");
            mem.write(addr, 4, bits[0] & 0xFFFF_FFFF).map_err(SimFault::from)?;
            Outcome::None
        }
        Inst::Fsd { .. } => {
            let addr = int_val.expect("fsd address");
            mem.write(addr, 8, bits[0]).map_err(SimFault::from)?;
            Outcome::None
        }
        Inst::FpOp { op, fmt: FpFmt::D, .. } => {
            let (a, b) = (f64::from_bits(bits[0]), f64::from_bits(bits[1]));
            let r = match op {
                FpAluOp::Add => a + b,
                FpAluOp::Sub => a - b,
                FpAluOp::Mul => a * b,
                FpAluOp::Div => a / b,
                FpAluOp::Sqrt => a.sqrt(),
                FpAluOp::Min => a.min(b),
                FpAluOp::Max => a.max(b),
            };
            Outcome::Fp(r.to_bits())
        }
        Inst::FpOp { op, fmt: FpFmt::S, .. } => {
            let (a, b) = (f32_of(bits[0]), f32_of(bits[1]));
            let r = match op {
                FpAluOp::Add => a + b,
                FpAluOp::Sub => a - b,
                FpAluOp::Mul => a * b,
                FpAluOp::Div => a / b,
                FpAluOp::Sqrt => a.sqrt(),
                FpAluOp::Min => a.min(b),
                FpAluOp::Max => a.max(b),
            };
            Outcome::Fp(nan_box(r.to_bits()))
        }
        Inst::FpFma { op, fmt: FpFmt::D, .. } => {
            let r = op.eval_f64(
                f64::from_bits(bits[0]),
                f64::from_bits(bits[1]),
                f64::from_bits(bits[2]),
            );
            Outcome::Fp(r.to_bits())
        }
        Inst::FpFma { op, fmt: FpFmt::S, .. } => {
            let r = op.eval_f32(f32_of(bits[0]), f32_of(bits[1]), f32_of(bits[2]));
            Outcome::Fp(nan_box(r.to_bits()))
        }
        Inst::FpSgnj { op, fmt: FpFmt::D, .. } => {
            let (a, b) = (bits[0], bits[1]);
            let sign = match op {
                SgnjOp::Sgnj => b & F64_SIGN,
                SgnjOp::Sgnjn => !b & F64_SIGN,
                SgnjOp::Sgnjx => (a ^ b) & F64_SIGN,
            };
            Outcome::Fp((a & !F64_SIGN) | sign)
        }
        Inst::FpSgnj { op, fmt: FpFmt::S, .. } => {
            let (a, b) = (bits[0] as u32, bits[1] as u32);
            let sign = match op {
                SgnjOp::Sgnj => b & F32_SIGN,
                SgnjOp::Sgnjn => !b & F32_SIGN,
                SgnjOp::Sgnjx => (a ^ b) & F32_SIGN,
            };
            Outcome::Fp(nan_box((a & !F32_SIGN) | sign))
        }
        Inst::FpCmp { op, fmt, rd, .. } => {
            let r = cmp_bits(op, fmt, bits);
            Outcome::Int(rd, r)
        }
        Inst::FpCvtF2I { to, fmt, rd, .. } => {
            let v = match fmt {
                FpFmt::D => f64::from_bits(bits[0]),
                FpFmt::S => f64::from(f32_of(bits[0])),
            };
            let r = match to {
                IntCvt::W => f64_to_i32(v) as u32,
                IntCvt::Wu => f64_to_u32(v),
            };
            Outcome::Int(rd, r)
        }
        Inst::FpCvtI2F { from, fmt, .. } => {
            let iv = int_val.expect("fcvt from integer operand");
            let v = match from {
                IntCvt::W => f64::from(iv as i32),
                IntCvt::Wu => f64::from(iv),
            };
            match fmt {
                FpFmt::D => Outcome::Fp(v.to_bits()),
                FpFmt::S => Outcome::Fp(nan_box((v as f32).to_bits())),
            }
        }
        Inst::FpCvtF2F { to: FpFmt::D, .. } => Outcome::Fp(f64::from(f32_of(bits[0])).to_bits()),
        Inst::FpCvtF2F { to: FpFmt::S, .. } => {
            Outcome::Fp(nan_box((f64::from_bits(bits[0]) as f32).to_bits()))
        }
        Inst::FpMvF2X { rd, .. } => Outcome::Int(rd, bits[0] as u32),
        Inst::FpMvX2F { .. } => Outcome::Fp(nan_box(int_val.expect("fmv.w.x operand"))),
        Inst::FpClass { fmt, rd, .. } => {
            let mask = match fmt {
                FpFmt::D => classify_f64(f64::from_bits(bits[0])),
                FpFmt::S => classify_f64(f64::from(f32_of(bits[0]))),
            };
            Outcome::Int(rd, mask)
        }
        // ---- COPIFT custom-1: identical arithmetic, FP register file only.
        Inst::CopiftCmp { op, .. } => Outcome::Fp(u64::from(cmp_bits(op, FpFmt::D, bits))),
        Inst::CopiftCvtF2I { to, .. } => {
            let v = f64::from_bits(bits[0]);
            let r = match to {
                IntCvt::W => f64_to_i32(v) as u32,
                IntCvt::Wu => f64_to_u32(v),
            };
            Outcome::Fp(u64::from(r))
        }
        Inst::CopiftCvtI2F { from, .. } => {
            let low = bits[0] as u32;
            let v = match from {
                IntCvt::W => f64::from(low as i32),
                IntCvt::Wu => f64::from(low),
            };
            Outcome::Fp(v.to_bits())
        }
        Inst::CopiftClass { .. } => Outcome::Fp(u64::from(classify_f64(f64::from_bits(bits[0])))),
        ref other => {
            return Err(SimFault::new(format!("`{other}` is not an FP instruction")));
        }
    })
}

fn cmp_bits(op: FpCmpOp, fmt: FpFmt, bits: [u64; 3]) -> u32 {
    let r = match fmt {
        FpFmt::D => op.eval_f64(f64::from_bits(bits[0]), f64::from_bits(bits[1])),
        FpFmt::S => op.eval_f32(f32_of(bits[0]), f32_of(bits[1])),
    };
    u32::from(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_riscv::ops::FmaOp;

    fn harness() -> (ClusterConfig, Memory, TcdmArbiter, [Ssr; 3], Stats) {
        let cfg = ClusterConfig::default();
        let ssrs = [
            Ssr::new(cfg.ssr_fifo_depth),
            Ssr::new(cfg.ssr_fifo_depth),
            Ssr::new(cfg.ssr_fifo_depth),
        ];
        (cfg, Memory::new(), TcdmArbiter::new(32), ssrs, Stats::default())
    }

    fn fp(inst: Inst) -> OffloadEntry {
        OffloadEntry::new(inst, None)
    }

    #[test]
    fn fadd_completes_with_latency() {
        let (cfg, mut mem, mut arb, mut ssrs, mut stats) = harness();
        let mut fpss = Fpss::new(&cfg);
        fpss.regs[FpReg::FA1.index() as usize] = 2.0f64.to_bits();
        fpss.regs[FpReg::FA2.index() as usize] = 3.0f64.to_bits();
        fpss.offload(fp(Inst::FpOp {
            op: FpAluOp::Add,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FA1,
            rs2: FpReg::FA2,
        }));
        arb.begin_cycle();
        fpss.step(0, 0, &cfg, &mut mem, &mut arb, &mut ssrs, &mut stats, &mut None, &mut None)
            .unwrap();
        assert_eq!(f64::from_bits(fpss.reg(FpReg::FA0)), 5.0);
        assert!(!fpss.drained(0), "latency still in flight");
        assert!(fpss.drained(u64::from(cfg.fpu_lat_muladd)));
        assert_eq!(stats.fpu_muladd_ops, 1);
    }

    #[test]
    fn raw_dependency_stalls_issue() {
        let (cfg, mut mem, mut arb, mut ssrs, mut stats) = harness();
        let mut fpss = Fpss::new(&cfg);
        fpss.offload(fp(Inst::FpOp {
            op: FpAluOp::Add,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FA1,
            rs2: FpReg::FA2,
        }));
        fpss.offload(fp(Inst::FpOp {
            op: FpAluOp::Mul,
            fmt: FpFmt::D,
            rd: FpReg::FA3,
            rs1: FpReg::FA0, // depends on previous
            rs2: FpReg::FA2,
        }));
        let mut issue_cycles = Vec::new();
        for now in 0..10u64 {
            arb.begin_cycle();
            let before = stats.fpu_busy_cycles;
            fpss.step(
                now, 0, &cfg, &mut mem, &mut arb, &mut ssrs, &mut stats, &mut None, &mut None,
            )
            .unwrap();
            if stats.fpu_busy_cycles > before {
                issue_cycles.push(now);
            }
        }
        assert_eq!(issue_cycles, vec![0, u64::from(ClusterConfig::default().fpu_lat_muladd)]);
        assert!(stats.fpu_stall_raw > 0);
    }

    #[test]
    fn frep_replays_without_core_issues() {
        let (cfg, mut mem, mut arb, mut ssrs, mut stats) = harness();
        let mut fpss = Fpss::new(&cfg);
        fpss.regs[FpReg::FA1.index() as usize] = 1.0f64.to_bits();
        // frep.o with rep = 3 (4 total iterations) over a 1-instruction body
        // accumulating fa0 += fa1.
        fpss.offload(OffloadEntry::new(
            Inst::FrepO { rep: IntReg::T0, max_inst: 1, stagger_max: 0, stagger_mask: 0 },
            Some(3),
        ));
        fpss.offload(fp(Inst::FpOp {
            op: FpAluOp::Add,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FA0,
            rs2: FpReg::FA1,
        }));
        let mut now = 0;
        while !fpss.drained(now) {
            arb.begin_cycle();
            fpss.step(
                now, 0, &cfg, &mut mem, &mut arb, &mut ssrs, &mut stats, &mut None, &mut None,
            )
            .unwrap();
            now += 1;
            assert!(now < 100, "frep must converge");
        }
        assert_eq!(f64::from_bits(fpss.reg(FpReg::FA0)), 4.0);
        assert_eq!(stats.fp_issued_seq, 3, "three replayed iterations");
        assert!(stats.seq_active_cycles >= 3);
    }

    #[test]
    fn frep_body_overflow_is_a_fault() {
        let (mut cfg, mut mem, mut arb, mut ssrs, mut stats) = harness();
        cfg.sequencer_depth = 2;
        let mut fpss = Fpss::new(&cfg);
        fpss.offload(OffloadEntry::new(
            Inst::FrepO { rep: IntReg::T0, max_inst: 3, stagger_max: 0, stagger_mask: 0 },
            Some(1),
        ));
        arb.begin_cycle();
        let err = fpss
            .step(0, 0, &cfg, &mut mem, &mut arb, &mut ssrs, &mut stats, &mut None, &mut None)
            .unwrap_err();
        assert!(err.to_string().contains("sequencer depth"));
    }

    #[test]
    fn int_writeback_is_delivered_after_latency() {
        let (cfg, mut mem, mut arb, mut ssrs, mut stats) = harness();
        let mut fpss = Fpss::new(&cfg);
        fpss.regs[FpReg::FA0.index() as usize] = 1.0f64.to_bits();
        fpss.regs[FpReg::FA1.index() as usize] = 2.0f64.to_bits();
        fpss.offload(fp(Inst::FpCmp {
            op: FpCmpOp::Lt,
            fmt: FpFmt::D,
            rd: IntReg::A0,
            rs1: FpReg::FA0,
            rs2: FpReg::FA1,
        }));
        arb.begin_cycle();
        fpss.step(0, 0, &cfg, &mut mem, &mut arb, &mut ssrs, &mut stats, &mut None, &mut None)
            .unwrap();
        assert!(fpss.take_int_writebacks(0).is_empty());
        let wbs = fpss.take_int_writebacks(u64::from(cfg.fpu_lat_short));
        assert_eq!(wbs, vec![IntWriteback { rd: IntReg::A0, value: 1 }]);
    }

    #[test]
    fn copift_ops_stay_in_fp_rf() {
        let (cfg, mut mem, mut arb, mut ssrs, mut stats) = harness();
        let mut fpss = Fpss::new(&cfg);
        fpss.regs[FpReg::FA1.index() as usize] = 3.0f64.to_bits();
        fpss.regs[FpReg::FA2.index() as usize] = 7.0f64.to_bits();
        fpss.offload(fp(Inst::CopiftCmp {
            op: FpCmpOp::Lt,
            rd: FpReg::FA0,
            rs1: FpReg::FA1,
            rs2: FpReg::FA2,
        }));
        fpss.offload(fp(Inst::CopiftCvtI2F { from: IntCvt::W, rd: FpReg::FA3, rs1: FpReg::FA0 }));
        let mut now = 0;
        while !fpss.drained(now) {
            arb.begin_cycle();
            fpss.step(
                now, 0, &cfg, &mut mem, &mut arb, &mut ssrs, &mut stats, &mut None, &mut None,
            )
            .unwrap();
            now += 1;
        }
        assert_eq!(fpss.reg(FpReg::FA0), 1, "comparison result as integer bits");
        assert_eq!(f64::from_bits(fpss.reg(FpReg::FA3)), 1.0, "converted to double");
        assert!(fpss.take_int_writebacks(now).is_empty(), "no integer RF traffic");
    }

    #[test]
    fn classify_covers_all_classes() {
        assert_eq!(classify_f64(f64::NEG_INFINITY), 1 << 0);
        assert_eq!(classify_f64(-1.5), 1 << 1);
        assert_eq!(classify_f64(-f64::MIN_POSITIVE / 2.0), 1 << 2);
        assert_eq!(classify_f64(-0.0), 1 << 3);
        assert_eq!(classify_f64(0.0), 1 << 4);
        assert_eq!(classify_f64(f64::MIN_POSITIVE / 2.0), 1 << 5);
        assert_eq!(classify_f64(2.5), 1 << 6);
        assert_eq!(classify_f64(f64::INFINITY), 1 << 7);
        assert_eq!(classify_f64(f64::NAN), 1 << 9);
    }

    #[test]
    fn cvt_saturation() {
        assert_eq!(f64_to_i32(f64::NAN), i32::MAX);
        assert_eq!(f64_to_i32(1e300), i32::MAX);
        assert_eq!(f64_to_i32(-1e300), i32::MIN);
        assert_eq!(f64_to_i32(-3.7), -3, "truncation toward zero");
        assert_eq!(f64_to_u32(-1.0), 0);
        assert_eq!(f64_to_u32(4.9), 4);
        assert_eq!(f64_to_u32(1e300), u32::MAX);
    }

    #[test]
    fn stagger_remaps_selected_fields() {
        let entry = fp(Inst::FpFma {
            op: FmaOp::Madd,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FT0, // SSR candidate: never staggered
            rs2: FpReg::FA1,
            rs3: FpReg::FA0,
        });
        let mut s = entry;
        stagger_entry(&mut s, 0b1001, 2); // rd and rs3
        match s.inst {
            Inst::FpFma { rd, rs1, rs2, rs3, .. } => {
                assert_eq!(rd, FpReg::new(12));
                assert_eq!(rs1, FpReg::FT0);
                assert_eq!(rs2, FpReg::FA1, "unselected field untouched");
                assert_eq!(rs3, FpReg::new(12));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
