//! Execution statistics and activity counters.
//!
//! [`Stats`] is both the performance report (cycles, issues, stalls) and the
//! activity interface consumed by the `snitch-energy` power model: every
//! energy-relevant event in the cluster increments exactly one counter here.

use snitch_trace::StallCause;

/// Counters collected over a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total elapsed cycles.
    pub cycles: u64,

    // ---- instruction issue ----
    /// Integer-side instructions issued by the core (everything that is not
    /// offloaded to the FP subsystem, including FREP/SSR/DMA configuration).
    pub int_issued: u64,
    /// FP instructions issued by the integer core (offload pass-through,
    /// i.e. iteration 0 of FREP bodies and all non-FREP FP instructions).
    pub fp_issued_core: u64,
    /// FP instructions issued by the FREP sequencer (replayed iterations) —
    /// the *pseudo dual-issue* instructions.
    pub fp_issued_seq: u64,

    // ---- integer core stalls (cycles) ----
    /// Core stalled waiting on a busy integer source/destination register.
    pub stall_int_raw: u64,
    /// Core stalled because the single RF write-back port was already claimed
    /// for the cycle its result would retire (the paper's LCG hazard).
    pub stall_wb_port: u64,
    /// Core stalled pushing into a full offload FIFO.
    pub stall_offload_full: u64,
    /// Core stalled on an integer register pending an FP→int write-back
    /// (Type 3 serialization).
    pub stall_fp_pending: u64,
    /// Core stalled reconfiguring a still-active SSR streamer.
    pub stall_ssr_cfg: u64,
    /// Core stalled on the FPU fence CSR.
    pub stall_fence: u64,
    /// Cycles lost to taken-branch pipeline refill.
    pub stall_branch: u64,
    /// Core stalled on a TCDM bank conflict.
    pub stall_tcdm_conflict: u64,
    /// Integer load stalled behind queued FP stores (memory ordering).
    pub stall_store_order: u64,
    /// Core stalled at the cluster hardware barrier.
    pub stall_barrier: u64,

    // ---- instruction fetch ----
    /// Fetches served by the L0 loop buffer.
    pub l0_hits: u64,
    /// Fetches that missed L0 and were served by the L1 instruction cache.
    pub l0_misses: u64,

    // ---- FP subsystem ----
    /// FPU operations executed, by latency class.
    pub fpu_muladd_ops: u64,
    /// Short FP ops (compare/sign-inject/move/classify/COPIFT).
    pub fpu_short_ops: u64,
    /// Conversions.
    pub fpu_cvt_ops: u64,
    /// Divide/sqrt operations.
    pub fpu_divsqrt_ops: u64,
    /// FP loads/stores executed by the FP LSU (explicit, non-SSR).
    pub fp_mem_ops: u64,
    /// Cycles the FPU issued an operation.
    pub fpu_busy_cycles: u64,
    /// Cycles the sequencer was replaying (hardware-loop active).
    pub seq_active_cycles: u64,
    /// FPU issue stalled on a busy FP register.
    pub fpu_stall_raw: u64,
    /// FPU issue stalled on an empty SSR read FIFO or full SSR write FIFO.
    pub fpu_stall_ssr: u64,
    /// FPU issue stalled on a TCDM conflict for an FP load/store.
    pub fpu_stall_tcdm: u64,

    // ---- memory system ----
    /// TCDM accesses by the core LSU.
    pub tcdm_core_accesses: u64,
    /// TCDM accesses by the FP LSU.
    pub tcdm_fp_accesses: u64,
    /// TCDM accesses by the SSR streamers (data + index beats).
    pub tcdm_ssr_accesses: u64,
    /// TCDM accesses by the DMA engine.
    pub tcdm_dma_accesses: u64,
    /// Requests denied by the bank arbiter (retried next cycle).
    pub tcdm_conflicts: u64,
    /// Core accesses to main memory (slow path).
    pub main_mem_accesses: u64,
    /// Core accesses to the shared L2 region (interconnect path).
    pub l2_accesses: u64,

    // ---- SSR / DMA ----
    /// Data elements streamed per SSR.
    pub ssr_beats: [u64; 3],
    /// Cycles each SSR streamer was enabled (armed and not done).
    pub ssr_active_cycles: [u64; 3],
    /// Cycles the DMA engine was moving data (a beat performed). This is
    /// what the energy model charges per-cycle DMA activity against; cycles
    /// an active transfer lost to bank arbitration are counted separately
    /// in [`dma_blocked_cycles`](Self::dma_blocked_cycles).
    pub dma_busy_cycles: u64,
    /// Cycles an active DMA transfer was stalled by TCDM bank arbitration
    /// (no data moved, no datapath energy charged).
    pub dma_blocked_cycles: u64,
    /// 64-bit beats transferred by the DMA.
    pub dma_beats: u64,
    /// Cycles DMA segments spent in interconnect setup (L2 access latency
    /// plus per-hop latency for L2 / remote-cluster targets).
    pub dma_hop_cycles: u64,
}

impl Stats {
    /// Total instructions executed (integer + FP pass-through + sequencer
    /// replays).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.int_issued + self.fp_issued_core + self.fp_issued_seq
    }

    /// Total FP instructions executed.
    #[must_use]
    pub fn fp_instructions(&self) -> u64 {
        self.fp_issued_core + self.fp_issued_seq
    }

    /// Instructions per cycle over the whole run.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / self.cycles as f64
        }
    }

    /// The counter field tracking `cause` — the single mapping between the
    /// trace-event stall taxonomy and these counters. The simulator counts
    /// stalls *through* this (see [`add_stall`](Self::add_stall)), so trace
    /// attribution and counters agree counter-for-counter by construction.
    fn stall_field(&mut self, cause: StallCause) -> &mut u64 {
        match cause {
            StallCause::IntRaw => &mut self.stall_int_raw,
            StallCause::WbPort => &mut self.stall_wb_port,
            StallCause::OffloadFull => &mut self.stall_offload_full,
            StallCause::FpPending => &mut self.stall_fp_pending,
            StallCause::SsrCfg => &mut self.stall_ssr_cfg,
            StallCause::Fence => &mut self.stall_fence,
            StallCause::Branch => &mut self.stall_branch,
            StallCause::TcdmConflict => &mut self.stall_tcdm_conflict,
            StallCause::StoreOrder => &mut self.stall_store_order,
            StallCause::Barrier => &mut self.stall_barrier,
            StallCause::FpuRaw => &mut self.fpu_stall_raw,
            StallCause::FpuSsr => &mut self.fpu_stall_ssr,
            StallCause::FpuTcdm => &mut self.fpu_stall_tcdm,
        }
    }

    /// Adds `cycles` lost cycles to the counter tracking `cause`.
    pub fn add_stall(&mut self, cause: StallCause, cycles: u64) {
        *self.stall_field(cause) += cycles;
    }

    /// Reads the counter tracking `cause`.
    #[must_use]
    pub fn stall_by_cause(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::IntRaw => self.stall_int_raw,
            StallCause::WbPort => self.stall_wb_port,
            StallCause::OffloadFull => self.stall_offload_full,
            StallCause::FpPending => self.stall_fp_pending,
            StallCause::SsrCfg => self.stall_ssr_cfg,
            StallCause::Fence => self.stall_fence,
            StallCause::Branch => self.stall_branch,
            StallCause::TcdmConflict => self.stall_tcdm_conflict,
            StallCause::StoreOrder => self.stall_store_order,
            StallCause::Barrier => self.stall_barrier,
            StallCause::FpuRaw => self.fpu_stall_raw,
            StallCause::FpuSsr => self.fpu_stall_ssr,
            StallCause::FpuTcdm => self.fpu_stall_tcdm,
        }
    }

    /// Adds `other` field-wise into `self` (the per-core → cluster and
    /// per-cluster → system rollup; `cycles` is deliberately excluded —
    /// elapsed time does not sum across cores stepping in lockstep, the
    /// caller sets it).
    ///
    /// Addition saturates per counter, mirroring
    /// [`delta_since`](Self::delta_since): a rollup over many clusters of a
    /// pathological run must clamp at `u64::MAX` rather than panic in debug
    /// builds or silently wrap in release builds.
    pub fn accumulate(&mut self, other: &Stats) {
        macro_rules! acc {
            ($($f:ident),* $(,)?) => {
                $( self.$f = self.$f.saturating_add(other.$f); )*
            };
        }
        acc!(
            int_issued,
            fp_issued_core,
            fp_issued_seq,
            stall_int_raw,
            stall_wb_port,
            stall_offload_full,
            stall_fp_pending,
            stall_ssr_cfg,
            stall_fence,
            stall_branch,
            stall_tcdm_conflict,
            stall_store_order,
            stall_barrier,
            l0_hits,
            l0_misses,
            fpu_muladd_ops,
            fpu_short_ops,
            fpu_cvt_ops,
            fpu_divsqrt_ops,
            fp_mem_ops,
            fpu_busy_cycles,
            seq_active_cycles,
            fpu_stall_raw,
            fpu_stall_ssr,
            fpu_stall_tcdm,
            tcdm_core_accesses,
            tcdm_fp_accesses,
            tcdm_ssr_accesses,
            tcdm_dma_accesses,
            tcdm_conflicts,
            main_mem_accesses,
            l2_accesses,
            dma_busy_cycles,
            dma_blocked_cycles,
            dma_beats,
            dma_hop_cycles,
        );
        for i in 0..3 {
            self.ssr_beats[i] = self.ssr_beats[i].saturating_add(other.ssr_beats[i]);
            self.ssr_active_cycles[i] =
                self.ssr_active_cycles[i].saturating_add(other.ssr_active_cycles[i]);
        }
    }

    /// Difference of two stats snapshots (for steady-state windows):
    /// `self - earlier`, field by field.
    ///
    /// Subtraction saturates at zero per counter: steady-state window
    /// extraction differences snapshots taken mid-run (or from distinct
    /// runs whose prologues differ by a few cycles), and a window analysis
    /// must degrade to a zero delta rather than take the caller down.
    #[must_use]
    pub fn delta_since(&self, earlier: &Stats) -> Stats {
        macro_rules! sub {
            ($($f:ident),* $(,)?) => {
                Stats {
                    $( $f: self.$f.saturating_sub(earlier.$f), )*
                    ssr_beats: std::array::from_fn(|i| {
                        self.ssr_beats[i].saturating_sub(earlier.ssr_beats[i])
                    }),
                    ssr_active_cycles: std::array::from_fn(|i| {
                        self.ssr_active_cycles[i].saturating_sub(earlier.ssr_active_cycles[i])
                    }),
                }
            };
        }
        sub!(
            cycles,
            int_issued,
            fp_issued_core,
            fp_issued_seq,
            stall_int_raw,
            stall_wb_port,
            stall_offload_full,
            stall_fp_pending,
            stall_ssr_cfg,
            stall_fence,
            stall_branch,
            stall_tcdm_conflict,
            stall_store_order,
            stall_barrier,
            l0_hits,
            l0_misses,
            fpu_muladd_ops,
            fpu_short_ops,
            fpu_cvt_ops,
            fpu_divsqrt_ops,
            fp_mem_ops,
            fpu_busy_cycles,
            seq_active_cycles,
            fpu_stall_raw,
            fpu_stall_ssr,
            fpu_stall_tcdm,
            tcdm_core_accesses,
            tcdm_fp_accesses,
            tcdm_ssr_accesses,
            tcdm_dma_accesses,
            tcdm_conflicts,
            main_mem_accesses,
            l2_accesses,
            dma_busy_cycles,
            dma_blocked_cycles,
            dma_beats,
            dma_hop_cycles,
        )
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "cycles            {:>12}", self.cycles)?;
        writeln!(
            f,
            "instructions      {:>12}  (int {} + fp-core {} + fp-seq {})",
            self.instructions(),
            self.int_issued,
            self.fp_issued_core,
            self.fp_issued_seq
        )?;
        writeln!(f, "ipc               {:>12.3}", self.ipc())?;
        writeln!(
            f,
            "stalls: raw {} wb-port {} offload {} fp-pending {} ssr-cfg {} fence {} branch {} tcdm {} barrier {}",
            self.stall_int_raw,
            self.stall_wb_port,
            self.stall_offload_full,
            self.stall_fp_pending,
            self.stall_ssr_cfg,
            self.stall_fence,
            self.stall_branch,
            self.stall_tcdm_conflict,
            self.stall_barrier
        )?;
        writeln!(f, "l0: hits {} misses {}", self.l0_hits, self.l0_misses)?;
        writeln!(
            f,
            "fpu ops: muladd {} short {} cvt {} divsqrt {} mem {}",
            self.fpu_muladd_ops,
            self.fpu_short_ops,
            self.fpu_cvt_ops,
            self.fpu_divsqrt_ops,
            self.fp_mem_ops
        )?;
        writeln!(
            f,
            "tcdm: core {} fp {} ssr {} dma {} conflicts {}  l2: {}",
            self.tcdm_core_accesses,
            self.tcdm_fp_accesses,
            self.tcdm_ssr_accesses,
            self.tcdm_dma_accesses,
            self.tcdm_conflicts,
            self.l2_accesses
        )?;
        write!(
            f,
            "ssr beats {:?}  dma: busy {} blocked {} beats {} hop {}",
            self.ssr_beats,
            self.dma_busy_cycles,
            self.dma_blocked_cycles,
            self.dma_beats,
            self.dma_hop_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(Stats::default().ipc(), 0.0);
    }

    #[test]
    fn instructions_sum_all_sources() {
        let s = Stats { int_issued: 10, fp_issued_core: 5, fp_issued_seq: 20, ..Stats::default() };
        assert_eq!(s.instructions(), 35);
        assert_eq!(s.fp_instructions(), 25);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let early = Stats { cycles: 100, int_issued: 50, ssr_beats: [1, 2, 3], ..Stats::default() };
        let late =
            Stats { cycles: 300, int_issued: 170, ssr_beats: [11, 22, 33], ..Stats::default() };
        let d = late.delta_since(&early);
        assert_eq!(d.cycles, 200);
        assert_eq!(d.int_issued, 120);
        assert_eq!(d.ssr_beats, [10, 20, 30]);
    }

    #[test]
    fn delta_saturates_on_reversed_counters() {
        // A mid-run snapshot pair can have individual counters "go
        // backwards" (e.g. comparing windows of two separate runs); the
        // delta must clamp at zero per field instead of panicking.
        let early = Stats { cycles: 100, int_issued: 80, ssr_beats: [5, 0, 0], ..Stats::default() };
        let late = Stats { cycles: 300, int_issued: 40, ssr_beats: [2, 9, 0], ..Stats::default() };
        let d = late.delta_since(&early);
        assert_eq!(d.cycles, 200);
        assert_eq!(d.int_issued, 0, "reversed counter clamps to zero");
        assert_eq!(d.ssr_beats, [0, 9, 0]);
        // And the fully reversed pair is all zeros, not a panic.
        let z = early.delta_since(&late);
        assert_eq!(z.cycles, 0);
    }

    #[test]
    fn accumulate_saturates_instead_of_wrapping() {
        let mut total = Stats {
            int_issued: u64::MAX - 5,
            ssr_beats: [u64::MAX, 0, 3],
            dma_hop_cycles: 10,
            ..Stats::default()
        };
        let part = Stats {
            int_issued: 100,
            l2_accesses: 7,
            ssr_beats: [1, 2, 3],
            dma_hop_cycles: 4,
            ..Stats::default()
        };
        total.accumulate(&part);
        assert_eq!(total.int_issued, u64::MAX, "per-counter saturation, not wraparound");
        assert_eq!(total.ssr_beats, [u64::MAX, 2, 6]);
        assert_eq!(total.l2_accesses, 7);
        assert_eq!(total.dma_hop_cycles, 14);
        assert_eq!(total.cycles, 0, "cycles stay caller-owned");
    }

    #[test]
    fn stall_accessors_cover_every_cause() {
        let mut s = Stats::default();
        for (i, cause) in StallCause::all().into_iter().enumerate() {
            s.add_stall(cause, (i + 1) as u64);
        }
        for (i, cause) in StallCause::all().into_iter().enumerate() {
            assert_eq!(s.stall_by_cause(cause), (i + 1) as u64, "{cause}");
        }
        // Spot-check the mapping against the named fields.
        assert_eq!(s.stall_int_raw, 1);
        assert_eq!(s.stall_barrier, 10);
        assert_eq!(s.fpu_stall_tcdm, 13);
    }
}
