//! Data memory: TCDM scratchpad, main memory, and the per-cycle bank
//! arbiter.
//!
//! Functional state (byte contents) is separated from timing (bank grants).
//! Units request a bank through [`TcdmArbiter`] each cycle; a denied request
//! is retried the next cycle by the requesting unit.

use snitch_asm::layout;

/// Identifies a TCDM master port for arbitration and statistics. With a
/// multi-core cluster every per-core unit is a distinct port, so the arbiter
/// can attribute a stalled request to its requester.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcdmPort {
    /// Integer-core load/store unit of hart `h`.
    CoreLsu(u8),
    /// FP-subsystem load/store unit of hart `h`.
    FpLsu(u8),
    /// SSR data mover `(hart, streamer 0..2)`.
    Ssr(u8, u8),
    /// Cluster DMA engine, source side.
    DmaSrc,
    /// Cluster DMA engine, destination side.
    DmaDst,
}

/// Per-cycle TCDM bank arbiter.
///
/// Banks are 64-bit wide and interleaved at 8-byte granularity (`addr >> 3`
/// selects the bank — matching the 64-bit banking the SSR and LSU data paths
/// assume). Each bank serves one request per cycle; the caller order in
/// `Cluster::step` establishes the fixed priority (hart 0 > hart 1 > ... and,
/// within a hart, core > FP LSU > SSR0..2; the DMA engine arbitrates last).
///
/// A denied request is retried by the requesting unit every cycle until
/// granted, but is counted as **one** conflict, not one per retry cycle —
/// `conflicts` counts distinct stalled requests, so the statistic stays
/// linear in the amount of contention rather than in its duration.
///
/// Grants are tracked as a generation-stamped table: a bank is taken this
/// cycle iff its stamp equals the current cycle generation, so
/// [`begin_cycle`](Self::begin_cycle) is a single counter increment instead
/// of clearing the whole grant table (the per-cycle cost the simulator hot
/// loop pays even on cycles with no memory traffic).
#[derive(Clone, Debug)]
pub struct TcdmArbiter {
    banks: usize,
    /// Per-bank grant stamp; the bank is granted iff `granted[b] == gen`.
    granted: Vec<u64>,
    /// Current cycle generation (starts at 1 so a zeroed table is all-free).
    gen: u64,
    conflicts: u64,
    /// Ports whose in-flight request has already been counted as a conflict
    /// (cleared when the port's retry is finally granted).
    stalled: Vec<TcdmPort>,
}

impl TcdmArbiter {
    /// Creates an arbiter for `banks` banks.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        TcdmArbiter { banks, granted: vec![0; banks], gen: 1, conflicts: 0, stalled: Vec::new() }
    }

    /// Invalidates all grants at the start of a cycle by advancing the grant
    /// generation. (Stall tracking persists: a request denied last cycle
    /// that retries this cycle is the same request.)
    pub fn begin_cycle(&mut self) {
        self.gen += 1;
    }

    /// Restores the just-constructed state, reusing the grant table — the
    /// allocation-free equivalent of `TcdmArbiter::new(banks)`.
    pub fn reset(&mut self) {
        self.granted.fill(0);
        self.gen = 1;
        self.conflicts = 0;
        self.stalled.clear();
    }

    /// The bank index serving `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> usize {
        ((addr >> 3) as usize) & (self.banks - 1)
    }

    /// Requests the bank serving `addr` for `port` this cycle. Returns
    /// whether the request was granted; a denied request is counted as one
    /// conflict the first time it is denied (retries of the same stalled
    /// request do not re-count).
    pub fn request(&mut self, port: TcdmPort, addr: u32) -> bool {
        let bank = self.bank_of(addr);
        if self.granted[bank] == self.gen {
            if !self.stalled.contains(&port) {
                self.conflicts += 1;
                self.stalled.push(port);
            }
            false
        } else {
            self.granted[bank] = self.gen;
            if let Some(i) = self.stalled.iter().position(|p| *p == port) {
                self.stalled.swap_remove(i);
            }
            true
        }
    }

    /// Returns the bank serving `addr` to the free pool for the remainder of
    /// the cycle. Used by multi-port units (the DMA engine) that must hold
    /// *all* their banks to make progress: a granted side whose partner was
    /// denied gives its bank back instead of blocking it for a transfer that
    /// cannot happen this cycle.
    pub fn release(&mut self, addr: u32) {
        let bank = self.bank_of(addr);
        debug_assert_eq!(self.granted[bank], self.gen, "release of an ungranted bank");
        self.granted[bank] = 0;
    }

    /// Total distinct stalled requests so far.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

/// Byte-addressable cluster memory (functional contents).
///
/// Writes maintain per-region dirty watermarks so [`clear`](Self::clear) —
/// called once per job by the engine's cluster reuse — zeroes only the bytes
/// actually touched instead of the full multi-MiB address space (which
/// dominated per-job wall time for small programs).
#[derive(Clone, Debug)]
pub struct Memory {
    tcdm: Vec<u8>,
    main: Vec<u8>,
    /// Local copy of the shared L2 region. In a multi-cluster `System` the
    /// canonical contents live in the `System`; this buffer is synced in
    /// before the cluster runs and the self-written range is merged back out
    /// afterwards. In a standalone single-cluster run it *is* the L2.
    l2: Vec<u8>,
    /// Snapshot buffers of remote clusters' TCDMs, backing the per-cluster
    /// alias windows. Empty (windows unmapped) until
    /// [`enable_peers`](Self::enable_peers); the own-cluster entry stays
    /// empty because the own window routes to `tcdm` directly.
    peers: Vec<Vec<u8>>,
    /// Which peer entry is this cluster itself.
    self_cluster: usize,
    /// Dirty byte range of `tcdm` (`lo..hi` offsets; empty when `lo >= hi`).
    tcdm_dirty: (usize, usize),
    /// Dirty byte range of `main`.
    main_dirty: (usize, usize),
    /// Dirty byte range of `l2` — everything written, for `clear`.
    l2_dirty: (usize, usize),
    /// Bytes of `l2` written *by this cluster's units* (not by sync-in):
    /// the range the `System` merges back into the canonical L2.
    l2_touched: (usize, usize),
    /// Per-peer dirty ranges (for `clear`).
    peers_dirty: Vec<(usize, usize)>,
    /// Per-peer self-written ranges (remote stores the `System` must apply
    /// to the real owner's TCDM).
    peers_touched: Vec<(usize, usize)>,
}

/// An empty watermark range.
const CLEAN: (usize, usize) = (usize::MAX, 0);

/// Error for an access outside the mapped regions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemFault {
    /// Faulting byte address.
    pub addr: u32,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "access to unmapped address {:#010x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

impl Memory {
    /// Creates zeroed memory.
    #[must_use]
    pub fn new() -> Self {
        Memory {
            tcdm: vec![0; layout::TCDM_SIZE as usize],
            main: vec![0; layout::MAIN_SIZE as usize],
            l2: vec![0; layout::L2_SIZE as usize],
            peers: Vec::new(),
            self_cluster: 0,
            tcdm_dirty: CLEAN,
            main_dirty: CLEAN,
            l2_dirty: CLEAN,
            l2_touched: CLEAN,
            peers_dirty: Vec::new(),
            peers_touched: Vec::new(),
        }
    }

    /// Loads initial images (from an assembled program).
    pub fn load_images(&mut self, tcdm: &[u8], main: &[u8]) {
        self.tcdm[..tcdm.len()].copy_from_slice(tcdm);
        self.main[..main.len()].copy_from_slice(main);
        widen(&mut self.tcdm_dirty, 0, tcdm.len());
        widen(&mut self.main_dirty, 0, main.len());
    }

    /// Loads the initial L2 image. Counts as sync-in, not as a write by
    /// this cluster's units.
    pub fn load_l2(&mut self, l2: &[u8]) {
        self.l2[..l2.len()].copy_from_slice(l2);
        widen(&mut self.l2_dirty, 0, l2.len());
    }

    /// Maps the alias windows of an `clusters`-cluster system, identifying
    /// this memory as cluster `self_cluster`. The own window routes straight
    /// to the TCDM; remote windows get snapshot buffers the `System` fills
    /// before each run.
    ///
    /// # Panics
    ///
    /// Panics if `self_cluster >= clusters` or `clusters` exceeds
    /// [`layout::MAX_CLUSTERS`].
    pub fn enable_peers(&mut self, clusters: usize, self_cluster: usize) {
        assert!(self_cluster < clusters && clusters <= layout::MAX_CLUSTERS);
        self.self_cluster = self_cluster;
        self.peers =
            (0..clusters)
                .map(|k| {
                    if k == self_cluster {
                        Vec::new()
                    } else {
                        vec![0; layout::TCDM_SIZE as usize]
                    }
                })
                .collect();
        self.peers_dirty = vec![CLEAN; clusters];
        self.peers_touched = vec![CLEAN; clusters];
    }

    /// Zeroes all written contents in place, reusing the allocations. After
    /// `clear` plus `load_images` the memory is indistinguishable from a
    /// freshly constructed one. Only the dirty watermark range is touched,
    /// so the cost is proportional to the bytes a job actually wrote.
    pub fn clear(&mut self) {
        for (buf, range) in [
            (&mut self.tcdm, &mut self.tcdm_dirty),
            (&mut self.main, &mut self.main_dirty),
            (&mut self.l2, &mut self.l2_dirty),
        ] {
            let (lo, hi) = *range;
            if lo < hi {
                buf[lo..hi].fill(0);
            }
            *range = CLEAN;
        }
        for (buf, range) in self.peers.iter_mut().zip(&mut self.peers_dirty) {
            let (lo, hi) = *range;
            if lo < hi {
                buf[lo..hi].fill(0);
            }
            *range = CLEAN;
        }
        self.l2_touched = CLEAN;
        self.peers_touched.fill(CLEAN);
    }

    /// Whether `addr..addr+len` is mapped.
    #[must_use]
    pub fn is_mapped(&self, addr: u32, len: u32) -> bool {
        let end = addr.wrapping_add(len.saturating_sub(1));
        if (layout::is_tcdm(addr) && layout::is_tcdm(end))
            || (layout::is_main(addr) && layout::is_main(end))
            || (layout::is_l2(addr) && layout::is_l2(end))
        {
            return true;
        }
        match (layout::alias_cluster(addr), layout::alias_cluster(end)) {
            (Some((k, _)), Some((k2, _))) if k == k2 => {
                k == self.self_cluster || self.peers.get(k).is_some_and(|p| !p.is_empty())
            }
            _ => false,
        }
    }

    /// Routes an in-bounds alias access to its backing buffer index, or
    /// faults when the window's cluster does not exist in this system.
    fn alias_target(&self, addr: u32, len: u32) -> Result<Option<(usize, usize)>, MemFault> {
        let (Some((k, off)), Some((k2, _))) =
            (layout::alias_cluster(addr), layout::alias_cluster(addr + len - 1))
        else {
            return Ok(None);
        };
        if k != k2 || !(k == self.self_cluster || self.peers.get(k).is_some_and(|p| !p.is_empty()))
        {
            return Err(MemFault { addr });
        }
        Ok(Some((k, off as usize)))
    }

    fn slice(&self, addr: u32, len: u32) -> Result<&[u8], MemFault> {
        if layout::is_tcdm(addr) && layout::is_tcdm(addr + len - 1) {
            let off = (addr - layout::TCDM_BASE) as usize;
            Ok(&self.tcdm[off..off + len as usize])
        } else if layout::is_main(addr) && layout::is_main(addr + len - 1) {
            let off = (addr - layout::MAIN_BASE) as usize;
            Ok(&self.main[off..off + len as usize])
        } else if layout::is_l2(addr) && layout::is_l2(addr + len - 1) {
            let off = (addr - layout::L2_BASE) as usize;
            Ok(&self.l2[off..off + len as usize])
        } else if let Some((k, off)) = self.alias_target(addr, len)? {
            let buf = if k == self.self_cluster { &self.tcdm } else { &self.peers[k] };
            Ok(&buf[off..off + len as usize])
        } else {
            Err(MemFault { addr })
        }
    }

    fn slice_mut(&mut self, addr: u32, len: u32) -> Result<&mut [u8], MemFault> {
        if layout::is_tcdm(addr) && layout::is_tcdm(addr + len - 1) {
            let off = (addr - layout::TCDM_BASE) as usize;
            widen(&mut self.tcdm_dirty, off, off + len as usize);
            Ok(&mut self.tcdm[off..off + len as usize])
        } else if layout::is_main(addr) && layout::is_main(addr + len - 1) {
            let off = (addr - layout::MAIN_BASE) as usize;
            widen(&mut self.main_dirty, off, off + len as usize);
            Ok(&mut self.main[off..off + len as usize])
        } else if layout::is_l2(addr) && layout::is_l2(addr + len - 1) {
            let off = (addr - layout::L2_BASE) as usize;
            widen(&mut self.l2_dirty, off, off + len as usize);
            widen(&mut self.l2_touched, off, off + len as usize);
            Ok(&mut self.l2[off..off + len as usize])
        } else if let Some((k, off)) = self.alias_target(addr, len)? {
            if k == self.self_cluster {
                widen(&mut self.tcdm_dirty, off, off + len as usize);
                Ok(&mut self.tcdm[off..off + len as usize])
            } else {
                widen(&mut self.peers_dirty[k], off, off + len as usize);
                widen(&mut self.peers_touched[k], off, off + len as usize);
                Ok(&mut self.peers[k][off..off + len as usize])
            }
        } else {
            Err(MemFault { addr })
        }
    }

    // ---- System synchronisation (multi-cluster runs) ----

    /// Overwrites `l2[off..off+data.len()]` with canonical bytes from the
    /// `System`. Counts toward `clear` but not toward the cluster's own
    /// written range.
    pub fn sync_l2_in(&mut self, off: usize, data: &[u8]) {
        self.l2[off..off + data.len()].copy_from_slice(data);
        widen(&mut self.l2_dirty, off, off + data.len());
    }

    /// Overwrites peer `k`'s snapshot window with that cluster's actual TCDM
    /// bytes (same sync-in semantics as [`sync_l2_in`](Self::sync_l2_in)).
    pub fn sync_peer_in(&mut self, k: usize, off: usize, data: &[u8]) {
        self.peers[k][off..off + data.len()].copy_from_slice(data);
        widen(&mut self.peers_dirty[k], off, off + data.len());
    }

    /// The `l2` range written by this cluster's own units since the last
    /// take, as `(offset, bytes)`; resets the watermark.
    pub fn take_l2_touched(&mut self) -> Option<(usize, &[u8])> {
        let (lo, hi) = std::mem::replace(&mut self.l2_touched, CLEAN);
        (lo < hi).then(|| (lo, &self.l2[lo..hi]))
    }

    /// The bytes this cluster stored into peer `k`'s alias window since the
    /// last take (to be applied to the owner's TCDM); resets the watermark.
    pub fn take_peer_touched(&mut self, k: usize) -> Option<(usize, &[u8])> {
        let (lo, hi) = std::mem::replace(&mut self.peers_touched[k], CLEAN);
        (lo < hi).then(|| (lo, &self.peers[k][lo..hi]))
    }

    /// The TCDM range written so far (images + stores), for the `System`'s
    /// peer-snapshot refresh.
    #[must_use]
    pub fn tcdm_written(&self) -> Option<(usize, &[u8])> {
        let (lo, hi) = self.tcdm_dirty;
        (lo < hi).then(|| (lo, &self.tcdm[lo..hi]))
    }

    /// Overwrites `tcdm[off..]` with bytes another cluster stored through
    /// this cluster's alias window.
    pub fn apply_remote_tcdm(&mut self, off: usize, data: &[u8]) {
        widen(&mut self.tcdm_dirty, off, off + data.len());
        self.tcdm[off..off + data.len()].copy_from_slice(data);
    }

    /// Reads `len` (1, 2, 4 or 8) bytes as a little-endian value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    pub fn read(&self, addr: u32, len: u32) -> Result<u64, MemFault> {
        let s = self.slice(addr, len)?;
        Ok(match *s {
            [b0] => u64::from(b0),
            [b0, b1] => u64::from(u16::from_le_bytes([b0, b1])),
            [b0, b1, b2, b3] => u64::from(u32::from_le_bytes([b0, b1, b2, b3])),
            [b0, b1, b2, b3, b4, b5, b6, b7] => {
                u64::from_le_bytes([b0, b1, b2, b3, b4, b5, b6, b7])
            }
            _ => {
                let mut v = 0u64;
                for (i, b) in s.iter().enumerate() {
                    v |= u64::from(*b) << (8 * i);
                }
                v
            }
        })
    }

    /// Writes `len` (1, 2, 4 or 8) low-order bytes of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    pub fn write(&mut self, addr: u32, len: u32, value: u64) -> Result<(), MemFault> {
        let s = self.slice_mut(addr, len)?;
        let bytes = value.to_le_bytes();
        match s.len() {
            8 => s.copy_from_slice(&bytes),
            n => s.copy_from_slice(&bytes[..n]),
        }
        Ok(())
    }

    /// Convenience: reads an `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    pub fn read_f64(&self, addr: u32) -> Result<f64, MemFault> {
        Ok(f64::from_bits(self.read(addr, 8)?))
    }

    /// Convenience: reads an `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    pub fn read_f32(&self, addr: u32) -> Result<f32, MemFault> {
        Ok(f32::from_bits(self.read(addr, 4)? as u32))
    }

    /// Convenience: reads a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemFault> {
        Ok(self.read(addr, 4)? as u32)
    }
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

/// Widens a dirty watermark range to cover `lo..hi`.
fn widen(range: &mut (usize, usize), lo: usize, hi: usize) {
    if lo < range.0 {
        range.0 = lo;
    }
    if hi > range.1 {
        range.1 = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_tcdm() {
        let mut m = Memory::new();
        m.write(layout::TCDM_BASE + 16, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read(layout::TCDM_BASE + 16, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read(layout::TCDM_BASE + 16, 4).unwrap(), 0x5566_7788);
        assert_eq!(m.read(layout::TCDM_BASE + 20, 4).unwrap(), 0x1122_3344);
        assert_eq!(m.read(layout::TCDM_BASE + 16, 1).unwrap(), 0x88);
    }

    #[test]
    fn read_write_roundtrip_main() {
        let mut m = Memory::new();
        m.write(layout::MAIN_BASE, 4, 0xdead_beef).unwrap();
        assert_eq!(m.read_u32(layout::MAIN_BASE).unwrap(), 0xdead_beef);
    }

    #[test]
    fn clear_zeroes_exactly_what_was_written() {
        let mut m = Memory::new();
        // Dirty both regions through every write path: direct writes and
        // image loads.
        m.write(layout::TCDM_BASE + 1000, 8, u64::MAX).unwrap();
        m.write(layout::TCDM_BASE + 64 * 1024, 4, 0xdead_beef).unwrap();
        m.write(layout::MAIN_BASE + 12_000_000, 8, 42).unwrap();
        m.load_images(&[1, 2, 3], &[4, 5]);
        m.clear();
        // Everything reads back zero, wherever it was written.
        for addr in [
            layout::TCDM_BASE,
            layout::TCDM_BASE + 1000,
            layout::TCDM_BASE + 64 * 1024,
            layout::MAIN_BASE,
            layout::MAIN_BASE + 12_000_000,
        ] {
            assert_eq!(m.read(addr, 8).unwrap(), 0, "{addr:#x} not cleared");
        }
        // And a cleared memory behaves like a fresh one for new writes.
        m.write(layout::TCDM_BASE + 8, 8, 7).unwrap();
        m.clear();
        assert_eq!(m.read(layout::TCDM_BASE + 8, 8).unwrap(), 0);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new();
        assert!(m.read(0x0300_0000, 4).is_err());
        assert!(m.read(layout::TCDM_BASE + layout::TCDM_SIZE - 2, 8).is_err());
        // Beyond the backed part of an alias window.
        assert!(m.read(layout::CLUSTER_ALIAS_BASE + layout::TCDM_SIZE, 4).is_err());
        // A remote cluster's window faults until peers are enabled.
        assert!(m.read(layout::tcdm_alias_base(1), 4).is_err());
    }

    #[test]
    fn l2_round_trips_and_clears() {
        let mut m = Memory::new();
        m.write(layout::L2_BASE + 40, 8, 0xfeed_f00d).unwrap();
        assert_eq!(m.read(layout::L2_BASE + 40, 8).unwrap(), 0xfeed_f00d);
        assert_eq!(m.take_l2_touched().map(|(off, b)| (off, b.len())), Some((40, 8)));
        assert_eq!(m.take_l2_touched(), None, "take resets the watermark");
        m.clear();
        assert_eq!(m.read(layout::L2_BASE + 40, 8).unwrap(), 0);
    }

    #[test]
    fn sync_in_is_not_a_local_write() {
        let mut m = Memory::new();
        m.load_l2(&[9; 16]);
        m.sync_l2_in(64, &[7; 8]);
        assert_eq!(m.read(layout::L2_BASE, 8).unwrap(), 0x0909_0909_0909_0909);
        assert_eq!(m.read(layout::L2_BASE + 64, 8).unwrap(), 0x0707_0707_0707_0707);
        assert_eq!(m.take_l2_touched(), None, "sync-in must not mark the merge-out range");
        m.clear();
        assert_eq!(m.read(layout::L2_BASE, 8).unwrap(), 0, "sync-in still counts for clear");
        assert_eq!(m.read(layout::L2_BASE + 64, 8).unwrap(), 0);
    }

    #[test]
    fn own_alias_window_routes_to_own_tcdm() {
        let mut m = Memory::new();
        m.write(layout::tcdm_alias_base(0) + 24, 8, 0xabcd).unwrap();
        assert_eq!(m.read(layout::TCDM_BASE + 24, 8).unwrap(), 0xabcd);
        // ... in an enabled multi-cluster system too, at the self index.
        let mut m = Memory::new();
        m.enable_peers(4, 2);
        m.write(layout::tcdm_alias_base(2) + 8, 4, 77).unwrap();
        assert_eq!(m.read(layout::TCDM_BASE + 8, 4).unwrap(), 77);
    }

    #[test]
    fn peer_windows_snapshot_and_track_remote_stores() {
        let mut m = Memory::new();
        m.enable_peers(2, 0);
        m.sync_peer_in(1, 0, &[1, 2, 3, 4]);
        assert_eq!(m.read(layout::tcdm_alias_base(1), 4).unwrap(), 0x0403_0201);
        assert_eq!(m.take_peer_touched(1), None, "snapshot fill is not a remote store");
        m.write(layout::tcdm_alias_base(1) + 2, 2, 0xbeef).unwrap();
        assert_eq!(
            m.take_peer_touched(1).map(|(off, b)| (off, b.to_vec())),
            Some((2, vec![0xef, 0xbe]))
        );
        // Windows of clusters outside the system stay unmapped.
        assert!(m.read(layout::tcdm_alias_base(2), 4).is_err());
        assert!(!m.is_mapped(layout::tcdm_alias_base(2), 4));
        assert!(m.is_mapped(layout::tcdm_alias_base(1), 4));
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = Memory::new();
        m.write(layout::TCDM_BASE, 8, std::f64::consts::PI.to_bits()).unwrap();
        assert_eq!(m.read_f64(layout::TCDM_BASE).unwrap(), std::f64::consts::PI);
    }

    const P0: TcdmPort = TcdmPort::CoreLsu(0);
    const P1: TcdmPort = TcdmPort::CoreLsu(1);

    #[test]
    fn arbiter_grants_one_per_bank() {
        let mut a = TcdmArbiter::new(4);
        a.begin_cycle();
        assert!(a.request(P0, layout::TCDM_BASE)); // bank 0
        assert!(a.request(P0, layout::TCDM_BASE + 8)); // bank 1
        assert!(!a.request(P1, layout::TCDM_BASE + 4 * 8)); // bank 0 again: conflict
        assert_eq!(a.conflicts(), 1);
        a.begin_cycle();
        assert!(a.request(P1, layout::TCDM_BASE + 4 * 8)); // free again
    }

    #[test]
    fn stalled_request_counts_one_conflict_across_retries() {
        // Port 1 loses bank 0 to port 0 for five consecutive cycles, then
        // finally wins: that is ONE stalled request, not five conflicts.
        let mut a = TcdmArbiter::new(32);
        for _ in 0..5 {
            a.begin_cycle();
            assert!(a.request(P0, layout::TCDM_BASE));
            assert!(!a.request(P1, layout::TCDM_BASE));
        }
        a.begin_cycle();
        assert!(a.request(P1, layout::TCDM_BASE), "uncontended retry is granted");
        assert_eq!(a.conflicts(), 1, "retries of one stalled request must not re-count");
    }

    #[test]
    fn two_stream_conflict_count_is_pinned() {
        // Regression: two SSR-style streams walking the TCDM with 8-byte
        // stride, offset so they collide on every second element. Stream A
        // (higher priority) always wins; stream B conflicts once per
        // colliding element and then drains it the next cycle.
        // Pattern per element pair: cycle k — A@bank b granted, B@bank b
        // denied (1 conflict); cycle k+1 — B@bank b granted (A idle).
        let mut a = TcdmArbiter::new(32);
        let sa = TcdmPort::Ssr(0, 0);
        let sb = TcdmPort::Ssr(1, 0);
        let mut granted_b = 0;
        for elem in 0..8u32 {
            a.begin_cycle();
            assert!(a.request(sa, layout::TCDM_BASE + elem * 8));
            assert!(!a.request(sb, layout::TCDM_BASE + elem * 8));
            a.begin_cycle();
            assert!(a.request(sb, layout::TCDM_BASE + elem * 8));
            granted_b += 1;
        }
        assert_eq!(granted_b, 8);
        assert_eq!(a.conflicts(), 8, "exactly one conflict per colliding element");
        // Distinct ports stall independently: both denied in one cycle is
        // two conflicts.
        a.begin_cycle();
        assert!(a.request(P0, layout::TCDM_BASE));
        assert!(!a.request(sa, layout::TCDM_BASE));
        assert!(!a.request(sb, layout::TCDM_BASE));
        assert_eq!(a.conflicts(), 10);
    }

    #[test]
    fn released_bank_is_grantable_again_within_the_cycle() {
        let mut a = TcdmArbiter::new(4);
        a.begin_cycle();
        assert!(a.request(P0, layout::TCDM_BASE));
        a.release(layout::TCDM_BASE);
        assert!(a.request(P1, layout::TCDM_BASE), "released bank is free again");
        assert_eq!(a.conflicts(), 0, "a release is not a conflict");
        // The new grant is a real one: a third request conflicts.
        assert!(!a.request(TcdmPort::Ssr(0, 0), layout::TCDM_BASE));
        assert_eq!(a.conflicts(), 1);
    }

    #[test]
    fn grant_generations_reset_every_cycle() {
        // Many begin_cycle calls with no fill: grants never leak across
        // cycles (the generation-counter equivalent of clearing the table).
        let mut a = TcdmArbiter::new(4);
        for _ in 0..1000 {
            a.begin_cycle();
            assert!(a.request(P0, layout::TCDM_BASE));
            assert!(!a.request(P1, layout::TCDM_BASE));
        }
        a.begin_cycle();
        assert!(a.request(P1, layout::TCDM_BASE), "fresh cycle frees every bank");
    }

    #[test]
    fn bank_interleave_is_8_bytes() {
        let a = TcdmArbiter::new(32);
        assert_eq!(a.bank_of(layout::TCDM_BASE), a.bank_of(layout::TCDM_BASE + 7));
        assert_ne!(a.bank_of(layout::TCDM_BASE), a.bank_of(layout::TCDM_BASE + 8));
        assert_eq!(a.bank_of(layout::TCDM_BASE), a.bank_of(layout::TCDM_BASE + 32 * 8));
    }
}
