//! Simulator error types.

use std::error::Error;
use std::fmt;

use crate::mem::MemFault;

/// A machine-level fault raised by a malformed program (unmapped access,
/// illegal FREP body, unsupported instruction in a unit, ...).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimFault {
    message: String,
}

impl SimFault {
    /// Creates a fault with a human-readable description.
    #[must_use]
    pub fn new(message: String) -> Self {
        SimFault { message }
    }
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for SimFault {}

impl From<MemFault> for SimFault {
    fn from(e: MemFault) -> Self {
        SimFault::new(e.to_string())
    }
}

/// Error terminating a simulation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// The watchdog cycle limit was reached.
    Timeout {
        /// Cycle at which the run was aborted.
        cycles: u64,
    },
    /// No unit made progress for an extended period (a kernel
    /// synchronization bug, e.g. an FPU fence that can never drain).
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Program counter at that point.
        pc: u32,
    },
    /// The program counter left the text section.
    PcOutOfRange {
        /// Faulting program counter.
        pc: u32,
    },
    /// A machine fault (see [`SimFault`]).
    Fault(SimFault),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Timeout { cycles } => write!(f, "watchdog timeout after {cycles} cycles"),
            RunError::Deadlock { cycle, pc } => {
                write!(f, "deadlock detected at cycle {cycle} (pc {pc:#010x})")
            }
            RunError::PcOutOfRange { pc } => write!(f, "pc {pc:#010x} outside text section"),
            RunError::Fault(e) => write!(f, "machine fault: {e}"),
        }
    }
}

impl Error for RunError {}

impl From<SimFault> for RunError {
    fn from(e: SimFault) -> Self {
        RunError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RunError::Timeout { cycles: 10 };
        assert!(e.to_string().contains("10"));
        let f: RunError = SimFault::new("bad".into()).into();
        assert!(f.to_string().contains("bad"));
    }
}
