//! The in-order single-issue integer core.
//!
//! Timing model (see `DESIGN.md` §3):
//!
//! * one instruction issued per cycle at most; FP instructions occupy the
//!   issue slot and are pushed into the FPSS offload FIFO;
//! * a scoreboard tracks per-register readiness; reads of a register pending
//!   an FP→int write-back stall (Type 3 serialization);
//! * the ALU and the multi-cycle mul/div unit share one register-file
//!   write-back port: an instruction whose write-back cycle is already
//!   claimed stalls at issue — the structural hazard the paper identifies in
//!   the LCG kernels. Loads and FPSS responses return on a separate port;
//! * taken branches pay a fixed refill penalty;
//! * `scfgwi` to a busy streamer stalls until the stream completes, and the
//!   FPU-fence CSR stalls until the FP subsystem and streamers drain.

use snitch_profile::Profiler;
use snitch_riscv::csr::{
    SsrCfgWord, CSR_BARRIER, CSR_CLUSTER_ID, CSR_FPU_FENCE, CSR_MCYCLE, CSR_MHARTID, CSR_MINSTRET,
    CSR_SSR,
};
use snitch_riscv::inst::Inst;
use snitch_riscv::meta::RegRef;
use snitch_riscv::ops::{CsrOp, DmaOp};
use snitch_riscv::reg::IntReg;
use snitch_trace::{EventKind, Lane, StallCause, Tracer};

use crate::config::ClusterConfig;
use crate::dma::Dma;
use crate::error::SimFault;
use crate::fpss::{Fpss, OffloadEntry};
use crate::icache::L0Cache;
use crate::mem::{Memory, TcdmArbiter, TcdmPort};
use crate::ssr::Ssr;
use crate::stats::Stats;
use crate::trace_event;
use snitch_asm::layout;

/// Sentinel `ready_at` for a register awaiting an FP→int write-back.
const PENDING_FP: u64 = u64::MAX;

/// A pre-decoded instruction with the integer-side metadata the issue stage
/// needs every cycle.
#[derive(Clone, Copy, Debug)]
pub struct Decoded {
    /// The instruction.
    pub inst: Inst,
    /// Integer source registers (at most two).
    pub int_srcs: [Option<IntReg>; 2],
    /// Integer destination register, if any.
    pub int_dst: Option<IntReg>,
}

impl Decoded {
    /// Pre-decodes an instruction.
    #[must_use]
    pub fn new(inst: Inst) -> Self {
        let mut int_srcs = [None, None];
        let mut n = 0;
        for u in inst.uses() {
            if let RegRef::Int(r) = u {
                if !r.is_zero() && n < 2 && !int_srcs.contains(&Some(r)) {
                    int_srcs[n] = Some(r);
                    n += 1;
                }
            }
        }
        let int_dst = inst.defs().into_iter().find_map(|d| match d {
            RegRef::Int(r) => Some(r),
            RegRef::Fp(_) => None,
        });
        // FP instructions that write the integer RF also define an int reg.
        let int_dst = int_dst.or(match inst {
            Inst::FpCmp { rd, .. }
            | Inst::FpCvtF2I { rd, .. }
            | Inst::FpMvF2X { rd, .. }
            | Inst::FpClass { rd, .. } => {
                if rd.is_zero() {
                    None
                } else {
                    Some(rd)
                }
            }
            _ => None,
        });
        Decoded { inst, int_srcs, int_dst }
    }
}

/// Progress of a hart through the cluster hardware barrier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BarrierState {
    /// Not at a barrier.
    Idle,
    /// Arrived; stalled until every hart arrives (or halts).
    Waiting,
    /// Released by the cluster; the barrier CSR read completes next issue.
    Released,
}

/// The integer core.
#[derive(Clone, Debug)]
pub struct IntCore {
    hart_id: u32,
    /// Index of this core's cluster in the system (the `CSR_CLUSTER_ID`
    /// value). Physical identity: survives [`reset`](Self::reset).
    cluster_id: u32,
    pc: u32,
    regs: [u32; 32],
    ready_at: [u64; 32],
    stall_until: u64,
    /// Claimed ALU/mul write-back port slots: (cycle, claims).
    wb_claims: Vec<(u64, u32)>,
    halted: bool,
    barrier: BarrierState,
}

impl IntCore {
    /// Creates core `hart_id` with `pc` at the text base.
    #[must_use]
    pub fn new(hart_id: u32) -> Self {
        IntCore {
            hart_id,
            cluster_id: 0,
            pc: layout::TEXT_BASE,
            regs: [0; 32],
            ready_at: [0; 32],
            stall_until: 0,
            wb_claims: Vec::with_capacity(8),
            halted: false,
            barrier: BarrierState::Idle,
        }
    }

    /// This core's hart id (the `mhartid` CSR value).
    #[must_use]
    pub fn hart_id(&self) -> u32 {
        self.hart_id
    }

    /// Sets the cluster id visible through `CSR_CLUSTER_ID` (assigned by the
    /// `System` when placing the cluster in the grid).
    pub fn set_cluster_id(&mut self, cluster_id: u32) {
        self.cluster_id = cluster_id;
    }

    /// Restores boot state (pc at the text base, zeroed registers and
    /// scoreboard, no stalls, not halted), reusing the write-back claim
    /// buffer — the allocation-free equivalent of `IntCore::new(hart_id)`.
    pub fn reset(&mut self, hart_id: u32) {
        self.hart_id = hart_id;
        self.pc = layout::TEXT_BASE;
        self.regs = [0; 32];
        self.ready_at = [0; 32];
        self.stall_until = 0;
        self.wb_claims.clear();
        self.halted = false;
        self.barrier = BarrierState::Idle;
    }

    /// Whether the core is stalled at the cluster hardware barrier.
    #[must_use]
    pub fn barrier_waiting(&self) -> bool {
        self.barrier == BarrierState::Waiting
    }

    /// Releases the core from the barrier (called by the cluster once every
    /// hart has arrived or halted).
    pub fn release_barrier(&mut self) {
        debug_assert_eq!(self.barrier, BarrierState::Waiting);
        self.barrier = BarrierState::Released;
    }

    /// Parks the core in the halted state without executing anything — used
    /// for secondary harts booting a non-parallel (hart-0-only) program.
    pub fn force_halt(&mut self) {
        self.halted = true;
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether the core has executed `ecall`/`ebreak`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The first cycle at which this core will attempt to issue again. While
    /// `stall_until > now` the core is in a *silent* stall (a taken branch's
    /// refill window, charged in full at branch time): `step` returns
    /// without touching any counter, which is what makes these cycles
    /// skippable by the cluster's quiescent fast path.
    #[must_use]
    pub fn stall_until(&self) -> u64 {
        self.stall_until
    }

    /// Reads an integer register (for the harness).
    #[must_use]
    pub fn reg(&self, r: IntReg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Delivers a completed FP→int write-back.
    pub fn apply_writeback(&mut self, rd: IntReg, value: u32, now: u64) {
        if !rd.is_zero() {
            self.regs[rd.index() as usize] = value;
            self.ready_at[rd.index() as usize] = now;
        }
    }

    fn can_claim_wb(&self, cycle: u64, ports: u32) -> bool {
        self.wb_claims.iter().find(|&&(c, _)| c == cycle).is_none_or(|&(_, n)| n < ports)
    }

    fn claim_wb(&mut self, cycle: u64) {
        if let Some(e) = self.wb_claims.iter_mut().find(|e| e.0 == cycle) {
            e.1 += 1;
        } else {
            self.wb_claims.push((cycle, 1));
        }
    }

    fn write_reg(&mut self, rd: IntReg, value: u32, ready_at: u64) {
        if !rd.is_zero() {
            self.regs[rd.index() as usize] = value;
            self.ready_at[rd.index() as usize] = ready_at;
        }
    }

    /// Counts a lost issue slot against `cause` and emits the matching
    /// trace event (both go through the same [`StallCause`], so trace
    /// attribution can never drift from the counters). `now` is the first
    /// *lost* cycle: the current cycle for a failed issue attempt, the next
    /// cycle for a taken branch's refill window (the branch itself issues).
    /// `pc` is the instruction the cycles are charged to — the current pc
    /// everywhere except the taken-branch arms, which capture the branch pc
    /// before redirecting.
    #[allow(clippy::too_many_arguments)]
    fn stall(
        &self,
        now: u64,
        pc: u32,
        cause: StallCause,
        cycles: u32,
        stats: &mut Stats,
        tracer: &mut Option<Tracer>,
        profiler: &mut Option<Profiler>,
    ) {
        if cycles == 0 {
            return;
        }
        stats.add_stall(cause, u64::from(cycles));
        if let Some(p) = profiler {
            p.stall(self.hart_id as usize, pc, cause, u64::from(cycles));
        }
        trace_event!(tracer, now, self.hart_id as u8, EventKind::Stall { cause, cycles });
    }

    /// One issue attempt. Returns `Err` on machine faults; sets
    /// [`halted`](Self::halted) on `ecall`.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        now: u64,
        cfg: &ClusterConfig,
        text: &[Decoded],
        l0: &mut L0Cache,
        mem: &mut Memory,
        arb: &mut TcdmArbiter,
        fpss: &mut Fpss,
        ssrs: &mut [Ssr; 3],
        dma: &mut Dma,
        stats: &mut Stats,
        tracer: &mut Option<Tracer>,
        profiler: &mut Option<Profiler>,
    ) -> Result<(), SimFault> {
        if self.halted {
            return Ok(());
        }
        self.wb_claims.retain(|&(c, _)| c >= now);
        if self.stall_until > now {
            return Ok(());
        }
        let idx = (self.pc.wrapping_sub(layout::TEXT_BASE) / 4) as usize;
        let Some(d) = text.get(idx) else {
            return Err(SimFault::new(format!("pc {:#010x} outside text section", self.pc)));
        };
        let d = *d;

        // ---- operand readiness ----
        for src in d.int_srcs.iter().flatten() {
            let r = self.ready_at[src.index() as usize];
            if r > now {
                let cause =
                    if r == PENDING_FP { StallCause::FpPending } else { StallCause::IntRaw };
                self.stall(now, self.pc, cause, 1, stats, tracer, profiler);
                return Ok(());
            }
        }
        if let Some(rd) = d.int_dst {
            let r = self.ready_at[rd.index() as usize];
            if r > now {
                let cause =
                    if r == PENDING_FP { StallCause::FpPending } else { StallCause::IntRaw };
                self.stall(now, self.pc, cause, 1, stats, tracer, profiler);
                return Ok(());
            }
        }

        // ---- FP-domain offload (incl. FREP markers) ----
        if d.inst.is_fp() || d.inst.is_frep() {
            if !fpss.can_accept() {
                self.stall(now, self.pc, StallCause::OffloadFull, 1, stats, tracer, profiler);
                return Ok(());
            }
            let int_val = match d.inst {
                Inst::Flw { rs1, offset, .. }
                | Inst::Fld { rs1, offset, .. }
                | Inst::Fsw { rs1, offset, .. }
                | Inst::Fsd { rs1, offset, .. } => {
                    Some(self.regs[rs1.index() as usize].wrapping_add(offset as u32))
                }
                Inst::FpCvtI2F { rs1, .. } | Inst::FpMvX2F { rs1, .. } => {
                    Some(self.regs[rs1.index() as usize])
                }
                Inst::FrepO { rep, .. } | Inst::FrepI { rep, .. } => {
                    Some(self.regs[rep.index() as usize])
                }
                _ => None,
            };
            if d.inst.fp_writes_int_rf() {
                if let Some(rd) = d.int_dst {
                    self.ready_at[rd.index() as usize] = PENDING_FP;
                }
            }
            fpss.offload(OffloadEntry::at(d.inst, int_val, self.pc));
            self.fetched(now, d.inst, l0, stats, tracer, profiler);
            if d.inst.is_frep() {
                stats.int_issued += 1;
            } else {
                stats.fp_issued_core += 1;
            }
            self.pc = self.pc.wrapping_add(4);
            return Ok(());
        }

        // ---- integer-side execution ----
        match d.inst {
            Inst::Lui { rd, imm } => {
                if !self.issue_alu_like(
                    now, cfg, l0, d.inst, rd, imm as u32, 1, stats, tracer, profiler,
                ) {
                    return Ok(());
                }
            }
            Inst::Auipc { rd, imm } => {
                let v = self.pc.wrapping_add(imm as u32);
                if !self.issue_alu_like(now, cfg, l0, d.inst, rd, v, 1, stats, tracer, profiler) {
                    return Ok(());
                }
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = op.eval(self.regs[rs1.index() as usize], imm);
                if !self.issue_alu_like(now, cfg, l0, d.inst, rd, v, 1, stats, tracer, profiler) {
                    return Ok(());
                }
            }
            Inst::OpReg { op, rd, rs1, rs2 } => {
                let lat = if op.is_div() {
                    cfg.div_latency
                } else if op.is_muldiv() {
                    cfg.mul_latency
                } else {
                    1
                };
                let v = op.eval(self.regs[rs1.index() as usize], self.regs[rs2.index() as usize]);
                if !self.issue_alu_like(now, cfg, l0, d.inst, rd, v, lat, stats, tracer, profiler) {
                    return Ok(());
                }
            }
            Inst::Jal { rd, offset } => {
                if !rd.is_zero() && !self.can_claim_wb(now + 1, cfg.int_wb_ports) {
                    self.stall(now, self.pc, StallCause::WbPort, 1, stats, tracer, profiler);
                    return Ok(());
                }
                let link = self.pc.wrapping_add(4);
                if !rd.is_zero() {
                    self.claim_wb(now + 1);
                }
                self.write_reg(rd, link, now + 1);
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
                let jump_pc = self.pc;
                self.pc = self.pc.wrapping_add(offset as u32);
                self.stall_until = now + 1 + u64::from(cfg.branch_penalty);
                self.stall(
                    now + 1,
                    jump_pc,
                    StallCause::Branch,
                    cfg.branch_penalty,
                    stats,
                    tracer,
                    profiler,
                );
                return Ok(());
            }
            Inst::Jalr { rd, rs1, offset } => {
                if !rd.is_zero() && !self.can_claim_wb(now + 1, cfg.int_wb_ports) {
                    self.stall(now, self.pc, StallCause::WbPort, 1, stats, tracer, profiler);
                    return Ok(());
                }
                let target = self.regs[rs1.index() as usize].wrapping_add(offset as u32) & !1;
                let link = self.pc.wrapping_add(4);
                if !rd.is_zero() {
                    self.claim_wb(now + 1);
                }
                self.write_reg(rd, link, now + 1);
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
                let jump_pc = self.pc;
                self.pc = target;
                self.stall_until = now + 1 + u64::from(cfg.branch_penalty);
                self.stall(
                    now + 1,
                    jump_pc,
                    StallCause::Branch,
                    cfg.branch_penalty,
                    stats,
                    tracer,
                    profiler,
                );
                return Ok(());
            }
            Inst::Branch { op, rs1, rs2, offset } => {
                let taken =
                    op.taken(self.regs[rs1.index() as usize], self.regs[rs2.index() as usize]);
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
                if taken {
                    let branch_pc = self.pc;
                    self.pc = self.pc.wrapping_add(offset as u32);
                    self.stall_until = now + 1 + u64::from(cfg.branch_penalty);
                    self.stall(
                        now + 1,
                        branch_pc,
                        StallCause::Branch,
                        cfg.branch_penalty,
                        stats,
                        tracer,
                        profiler,
                    );
                } else {
                    self.pc = self.pc.wrapping_add(4);
                }
                return Ok(());
            }
            Inst::Load { op, rd, rs1, offset } => {
                // Integer loads may not bypass queued FP stores (single-
                // thread memory ordering; see Fpss::has_pending_stores).
                if fpss.has_pending_stores() {
                    self.stall(now, self.pc, StallCause::StoreOrder, 1, stats, tracer, profiler);
                    return Ok(());
                }
                let addr = self.regs[rs1.index() as usize].wrapping_add(offset as u32);
                let lat = if layout::is_tcdm(addr) {
                    if !arb.request(TcdmPort::CoreLsu(self.hart_id as u8), addr) {
                        self.stall(
                            now,
                            self.pc,
                            StallCause::TcdmConflict,
                            1,
                            stats,
                            tracer,
                            profiler,
                        );
                        return Ok(());
                    }
                    stats.tcdm_core_accesses += 1;
                    cfg.load_latency
                } else if layout::is_main(addr) {
                    stats.main_mem_accesses += 1;
                    cfg.load_latency + cfg.main_mem_extra_latency
                } else {
                    // Shared L2 or a cluster alias window: interconnect path.
                    stats.l2_accesses += 1;
                    cfg.load_latency + cfg.l2_latency
                };
                let raw = mem.read(addr, op.size()).map_err(SimFault::from)? as u32;
                let v = match op {
                    snitch_riscv::ops::LoadOp::Lb => (raw as i8) as i32 as u32,
                    snitch_riscv::ops::LoadOp::Lh => (raw as i16) as i32 as u32,
                    _ => raw,
                };
                self.write_reg(rd, v, now + u64::from(lat));
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
            }
            Inst::Store { op, rs2, rs1, offset } => {
                let addr = self.regs[rs1.index() as usize].wrapping_add(offset as u32);
                if layout::is_tcdm(addr) {
                    if !arb.request(TcdmPort::CoreLsu(self.hart_id as u8), addr) {
                        self.stall(
                            now,
                            self.pc,
                            StallCause::TcdmConflict,
                            1,
                            stats,
                            tracer,
                            profiler,
                        );
                        return Ok(());
                    }
                    stats.tcdm_core_accesses += 1;
                } else if layout::is_main(addr) {
                    stats.main_mem_accesses += 1;
                } else {
                    stats.l2_accesses += 1;
                }
                mem.write(addr, op.size(), u64::from(self.regs[rs2.index() as usize]))
                    .map_err(SimFault::from)?;
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
            }
            Inst::Fence => {
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
            }
            Inst::Ecall | Inst::Ebreak => {
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
                self.halted = true;
                return Ok(());
            }
            Inst::Csr { op, rd, csr, src } => {
                if !self.issue_csr(
                    now, cfg, l0, d.inst, op, rd, csr, src, fpss, ssrs, stats, tracer, profiler,
                ) {
                    return Ok(());
                }
            }
            Inst::Scfgwi { value, addr } => {
                let Some((word, i)) = SsrCfgWord::from_addr(addr) else {
                    return Err(SimFault::new(format!("invalid ssr config address {addr:#x}")));
                };
                if ssrs[i].busy() {
                    self.stall(now, self.pc, StallCause::SsrCfg, 1, stats, tracer, profiler);
                    return Ok(());
                }
                ssrs[i].write_cfg(word, self.regs[value.index() as usize]);
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
            }
            Inst::Scfgri { rd, addr } => {
                let Some((word, i)) = SsrCfgWord::from_addr(addr) else {
                    return Err(SimFault::new(format!("invalid ssr config address {addr:#x}")));
                };
                let v = ssrs[i].read_cfg(word);
                if !self.issue_alu_like(now, cfg, l0, d.inst, rd, v, 1, stats, tracer, profiler) {
                    return Ok(());
                }
            }
            Inst::Dma { op, rd, rs1, rs2, imm5: _ } => {
                let a = self.regs[rs1.index() as usize];
                let b = self.regs[rs2.index() as usize];
                match op {
                    DmaOp::Src => dma.set_src(a),
                    DmaOp::Dst => dma.set_dst(a),
                    DmaOp::Str => dma.set_strides(a, b),
                    DmaOp::Rep => dma.set_reps(a),
                    DmaOp::CpyI => {
                        let id = dma.start(a);
                        if !self.issue_alu_like(
                            now, cfg, l0, d.inst, rd, id, 1, stats, tracer, profiler,
                        ) {
                            return Ok(());
                        }
                        self.pc = self.pc.wrapping_add(4);
                        return Ok(());
                    }
                    DmaOp::StatI => {
                        let v = dma.outstanding();
                        if !self
                            .issue_alu_like(now, cfg, l0, d.inst, rd, v, 1, stats, tracer, profiler)
                        {
                            return Ok(());
                        }
                        self.pc = self.pc.wrapping_add(4);
                        return Ok(());
                    }
                }
                self.fetched(now, d.inst, l0, stats, tracer, profiler);
                stats.int_issued += 1;
            }
            other => {
                return Err(SimFault::new(format!("unhandled integer instruction `{other}`")));
            }
        }
        self.pc = self.pc.wrapping_add(4);
        Ok(())
    }

    /// Issues an ALU-like operation writing `rd` with `latency` on the shared
    /// write-back port. Returns false (and counts a stall) if the port is
    /// already claimed for the write-back cycle.
    #[allow(clippy::too_many_arguments)]
    fn issue_alu_like(
        &mut self,
        now: u64,
        cfg: &ClusterConfig,
        l0: &mut L0Cache,
        inst: Inst,
        rd: IntReg,
        value: u32,
        latency: u32,
        stats: &mut Stats,
        tracer: &mut Option<Tracer>,
        profiler: &mut Option<Profiler>,
    ) -> bool {
        let wb_cycle = now + u64::from(latency);
        if !rd.is_zero() {
            if !self.can_claim_wb(wb_cycle, cfg.int_wb_ports) {
                self.stall(now, self.pc, StallCause::WbPort, 1, stats, tracer, profiler);
                return false;
            }
            self.claim_wb(wb_cycle);
        }
        self.write_reg(rd, value, wb_cycle);
        self.fetched(now, inst, l0, stats, tracer, profiler);
        stats.int_issued += 1;
        true
    }

    /// Fetch-path accounting; called exactly once per issued instruction, so
    /// it is also the single issue-event emission site for the core slot —
    /// and the profiler's core-lane charge point (`self.pc` still addresses
    /// the issuing instruction here; the advance happens afterwards).
    fn fetched(
        &mut self,
        now: u64,
        inst: Inst,
        l0: &mut L0Cache,
        stats: &mut Stats,
        tracer: &mut Option<Tracer>,
        profiler: &mut Option<Profiler>,
    ) {
        if l0.fetch(self.pc) {
            stats.l0_hits += 1;
        } else {
            stats.l0_misses += 1;
        }
        let lane = if inst.is_fp() { Lane::FpCore } else { Lane::Int };
        if let Some(p) = profiler {
            p.issue(self.hart_id as usize, self.pc, lane);
        }
        trace_event!(
            tracer,
            now,
            self.hart_id as u8,
            EventKind::Issue { lane, pc: Some(self.pc), inst }
        );
    }
}

impl Default for IntCore {
    fn default() -> Self {
        IntCore::new(0)
    }
}

impl IntCore {
    #[allow(clippy::too_many_arguments)]
    fn issue_csr(
        &mut self,
        now: u64,
        cfg: &ClusterConfig,
        l0: &mut L0Cache,
        inst: Inst,
        op: CsrOp,
        rd: IntReg,
        csr: u16,
        src: u8,
        fpss: &mut Fpss,
        ssrs: &mut [Ssr; 3],
        stats: &mut Stats,
        tracer: &mut Option<Tracer>,
        profiler: &mut Option<Profiler>,
    ) -> bool {
        let old: u32 = match csr {
            CSR_SSR => u32::from(fpss.ssr_enabled()),
            CSR_FPU_FENCE => {
                let drained = fpss.drained(now) && ssrs.iter().all(|s| !s.busy());
                if !drained {
                    self.stall(now, self.pc, StallCause::Fence, 1, stats, tracer, profiler);
                    return false;
                }
                0
            }
            CSR_BARRIER => match self.barrier {
                BarrierState::Released => {
                    // Every hart has arrived; the read completes now.
                    self.barrier = BarrierState::Idle;
                    0
                }
                BarrierState::Idle | BarrierState::Waiting => {
                    // Arrive (idempotently) and stall until the cluster
                    // releases all waiting harts in one cycle.
                    if self.barrier == BarrierState::Idle {
                        trace_event!(tracer, now, self.hart_id as u8, EventKind::BarrierArrive);
                    }
                    self.barrier = BarrierState::Waiting;
                    self.stall(now, self.pc, StallCause::Barrier, 1, stats, tracer, profiler);
                    return false;
                }
            },
            CSR_MHARTID => self.hart_id,
            CSR_CLUSTER_ID => self.cluster_id,
            CSR_MCYCLE => now as u32,
            CSR_MINSTRET => stats.instructions() as u32,
            _ => 0,
        };
        let wmask: Option<u32> = match op {
            CsrOp::Rw | CsrOp::Rwi => Some(self.src_value(op, src)),
            CsrOp::Rs | CsrOp::Rsi => {
                let v = self.src_value(op, src);
                if v == 0 {
                    None
                } else {
                    Some(old | v)
                }
            }
            CsrOp::Rc | CsrOp::Rci => {
                let v = self.src_value(op, src);
                if v == 0 {
                    None
                } else {
                    Some(old & !v)
                }
            }
        };
        if let Some(new) = wmask {
            if csr == CSR_SSR {
                fpss.set_ssr_enabled(new & 1 != 0);
            }
            // Other CSRs are read-only or scratch in this model.
        }
        self.issue_alu_like(now, cfg, l0, inst, rd, old, 1, stats, tracer, profiler)
    }

    fn src_value(&self, op: CsrOp, src: u8) -> u32 {
        if op.is_imm() {
            u32::from(src)
        } else {
            self.regs[usize::from(src)]
        }
    }
}

/// The block-compiled issue path. Each method here is a semantically exact
/// mirror of its counterpart in [`step`](IntCore::step) with no tracer
/// attached — same hazard scan order, same stall causes and counts, same
/// write-back port claims, same pc updates — but driven by pre-lowered
/// [`BlockInst`] micro-ops instead of re-matching [`Inst`] every cycle.
/// The differential suite in `tests/block_compile.rs` pins the equivalence.
impl IntCore {
    /// One issue attempt on the fast path. Callers guarantee the core is
    /// not halted and not inside a `stall_until` window.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step_block(
        &mut self,
        now: u64,
        cfg: &ClusterConfig,
        text: &[Decoded],
        blocks: &[crate::block::BlockInst],
        l0: &mut L0Cache,
        mem: &mut Memory,
        arb: &mut TcdmArbiter,
        fpss: &mut Fpss,
        ssrs: &mut [Ssr; 3],
        dma: &mut Dma,
        stats: &mut Stats,
        profiler: &mut Option<Profiler>,
    ) -> Result<(), SimFault> {
        use crate::block::{BlockOp, OffloadVal};
        debug_assert!(!self.halted && self.stall_until <= now);
        let idx = (self.pc.wrapping_sub(layout::TEXT_BASE) / 4) as usize;
        let Some(b) = blocks.get(idx) else {
            return Err(SimFault::new(format!("pc {:#010x} outside text section", self.pc)));
        };
        let b = *b;
        // CSR (barrier, fences, SSR enable), SSR-config and DMA micro-ops
        // keep their stateful semantics by delegating to the reference
        // stepper, which redoes its own housekeeping and hazard scan.
        if matches!(b.op, BlockOp::Generic | BlockOp::FenceWait) {
            return self
                .step(now, cfg, text, l0, mem, arb, fpss, ssrs, dma, stats, &mut None, profiler);
        }
        self.wb_claims.retain(|&(c, _)| c >= now);
        // Operand scoreboard scan in the stepper's order: sources, then the
        // destination. Index 0 is x0, whose slot is always ready.
        for r in [b.srcs[0], b.srcs[1], b.dst] {
            let ready = self.ready_at[r as usize];
            if ready > now {
                let cause =
                    if ready == PENDING_FP { StallCause::FpPending } else { StallCause::IntRaw };
                self.charge_stall_fast(cause, 1, stats, profiler);
                return Ok(());
            }
        }
        match b.op {
            BlockOp::Offload { val, meta, is_frep, writes_int_rf } => {
                if !fpss.can_accept() {
                    self.charge_stall_fast(StallCause::OffloadFull, 1, stats, profiler);
                    return Ok(());
                }
                let int_val = match val {
                    OffloadVal::None => None,
                    OffloadVal::Addr { rs1, offset } => {
                        Some(self.regs[rs1 as usize].wrapping_add(offset as u32))
                    }
                    OffloadVal::Reg { rs1 } => Some(self.regs[rs1 as usize]),
                };
                if writes_int_rf && b.dst != 0 {
                    self.ready_at[b.dst as usize] = PENDING_FP;
                }
                fpss.offload(OffloadEntry::with_meta(text[idx].inst, int_val, meta, self.pc));
                let lane = if is_frep { Lane::Int } else { Lane::FpCore };
                self.fetched_fast(l0, stats, profiler, lane);
                if is_frep {
                    stats.int_issued += 1;
                } else {
                    stats.fp_issued_core += 1;
                }
            }
            BlockOp::Lui { value } | BlockOp::Auipc { value } => {
                if !self.issue_alu_fast(now, cfg, l0, b.dst, value, 1, stats, profiler) {
                    return Ok(());
                }
            }
            BlockOp::AluImm { op, rs1, imm } => {
                let v = op.eval(self.regs[rs1 as usize], imm);
                if !self.issue_alu_fast(now, cfg, l0, b.dst, v, 1, stats, profiler) {
                    return Ok(());
                }
            }
            BlockOp::AluReg { op, rs1, rs2, latency } => {
                let v = op.eval(self.regs[rs1 as usize], self.regs[rs2 as usize]);
                if !self.issue_alu_fast(now, cfg, l0, b.dst, v, latency, stats, profiler) {
                    return Ok(());
                }
            }
            BlockOp::Jal { target } => {
                self.jump_fast(now, cfg, l0, b.dst, target, stats, profiler);
                return Ok(());
            }
            BlockOp::Jalr { rs1, offset } => {
                // Target from the *old* rs1 (rd may alias rs1).
                let target = self.regs[rs1 as usize].wrapping_add(offset as u32) & !1;
                self.jump_fast(now, cfg, l0, b.dst, target, stats, profiler);
                return Ok(());
            }
            BlockOp::Branch { op, rs1, rs2, taken_pc } => {
                let taken = op.taken(self.regs[rs1 as usize], self.regs[rs2 as usize]);
                self.fetched_fast(l0, stats, profiler, Lane::Int);
                stats.int_issued += 1;
                if taken {
                    self.charge_stall_fast(StallCause::Branch, cfg.branch_penalty, stats, profiler);
                    self.pc = taken_pc;
                    self.stall_until = now + 1 + u64::from(cfg.branch_penalty);
                } else {
                    self.pc = self.pc.wrapping_add(4);
                }
                return Ok(());
            }
            BlockOp::Load { op, rs1, offset } => {
                if fpss.has_pending_stores() {
                    self.charge_stall_fast(StallCause::StoreOrder, 1, stats, profiler);
                    return Ok(());
                }
                let addr = self.regs[rs1 as usize].wrapping_add(offset as u32);
                let lat = if layout::is_tcdm(addr) {
                    if !arb.request(TcdmPort::CoreLsu(self.hart_id as u8), addr) {
                        self.charge_stall_fast(StallCause::TcdmConflict, 1, stats, profiler);
                        return Ok(());
                    }
                    stats.tcdm_core_accesses += 1;
                    cfg.load_latency
                } else if layout::is_main(addr) {
                    stats.main_mem_accesses += 1;
                    cfg.load_latency + cfg.main_mem_extra_latency
                } else {
                    // Shared L2 or a cluster alias window: interconnect path.
                    stats.l2_accesses += 1;
                    cfg.load_latency + cfg.l2_latency
                };
                let raw = mem.read(addr, op.size()).map_err(SimFault::from)? as u32;
                let v = match op {
                    snitch_riscv::ops::LoadOp::Lb => (raw as i8) as i32 as u32,
                    snitch_riscv::ops::LoadOp::Lh => (raw as i16) as i32 as u32,
                    _ => raw,
                };
                if b.dst != 0 {
                    self.regs[b.dst as usize] = v;
                    self.ready_at[b.dst as usize] = now + u64::from(lat);
                }
                self.fetched_fast(l0, stats, profiler, Lane::Int);
                stats.int_issued += 1;
            }
            BlockOp::Store { op, rs1, rs2, offset } => {
                let addr = self.regs[rs1 as usize].wrapping_add(offset as u32);
                if layout::is_tcdm(addr) {
                    if !arb.request(TcdmPort::CoreLsu(self.hart_id as u8), addr) {
                        self.charge_stall_fast(StallCause::TcdmConflict, 1, stats, profiler);
                        return Ok(());
                    }
                    stats.tcdm_core_accesses += 1;
                } else if layout::is_main(addr) {
                    stats.main_mem_accesses += 1;
                } else {
                    stats.l2_accesses += 1;
                }
                mem.write(addr, op.size(), u64::from(self.regs[rs2 as usize]))
                    .map_err(SimFault::from)?;
                self.fetched_fast(l0, stats, profiler, Lane::Int);
                stats.int_issued += 1;
            }
            BlockOp::Fence => {
                self.fetched_fast(l0, stats, profiler, Lane::Int);
                stats.int_issued += 1;
            }
            BlockOp::Ecall => {
                self.fetched_fast(l0, stats, profiler, Lane::Int);
                stats.int_issued += 1;
                self.halted = true;
                return Ok(());
            }
            BlockOp::Generic | BlockOp::FenceWait => {
                unreachable!("dispatched to the stepper above")
            }
        }
        self.pc = self.pc.wrapping_add(4);
        Ok(())
    }

    /// [`stall`](IntCore::stall) without the tracer hook: books the cycles
    /// against the counter and the profiler at the current pc (callers
    /// charge *before* any redirect, so taken branches bill their own pc).
    fn charge_stall_fast(
        &self,
        cause: StallCause,
        cycles: u32,
        stats: &mut Stats,
        profiler: &mut Option<Profiler>,
    ) {
        if cycles == 0 {
            return;
        }
        stats.add_stall(cause, u64::from(cycles));
        if let Some(p) = profiler {
            p.stall(self.hart_id as usize, self.pc, cause, u64::from(cycles));
        }
    }

    /// `jal`/`jalr` tail: link write on the shared port, redirect, refill
    /// penalty (mirrors the stepper's two jump arms).
    #[allow(clippy::too_many_arguments)]
    fn jump_fast(
        &mut self,
        now: u64,
        cfg: &ClusterConfig,
        l0: &mut L0Cache,
        dst: u8,
        target: u32,
        stats: &mut Stats,
        profiler: &mut Option<Profiler>,
    ) {
        if dst != 0 {
            if !self.can_claim_wb(now + 1, cfg.int_wb_ports) {
                self.charge_stall_fast(StallCause::WbPort, 1, stats, profiler);
                return;
            }
            self.claim_wb(now + 1);
            self.regs[dst as usize] = self.pc.wrapping_add(4);
            self.ready_at[dst as usize] = now + 1;
        }
        self.fetched_fast(l0, stats, profiler, Lane::Int);
        stats.int_issued += 1;
        self.charge_stall_fast(StallCause::Branch, cfg.branch_penalty, stats, profiler);
        self.pc = target;
        self.stall_until = now + 1 + u64::from(cfg.branch_penalty);
    }

    /// [`issue_alu_like`](IntCore::issue_alu_like) without the tracer hook.
    #[allow(clippy::too_many_arguments)]
    fn issue_alu_fast(
        &mut self,
        now: u64,
        cfg: &ClusterConfig,
        l0: &mut L0Cache,
        dst: u8,
        value: u32,
        latency: u32,
        stats: &mut Stats,
        profiler: &mut Option<Profiler>,
    ) -> bool {
        let wb_cycle = now + u64::from(latency);
        if dst != 0 {
            if !self.can_claim_wb(wb_cycle, cfg.int_wb_ports) {
                self.charge_stall_fast(StallCause::WbPort, 1, stats, profiler);
                return false;
            }
            self.claim_wb(wb_cycle);
            self.regs[dst as usize] = value;
            self.ready_at[dst as usize] = wb_cycle;
        }
        self.fetched_fast(l0, stats, profiler, Lane::Int);
        stats.int_issued += 1;
        true
    }

    /// [`fetched`](IntCore::fetched) without the issue-event emission (the
    /// fast path never runs with a recording tracer; the profiler hook
    /// stays engaged).
    fn fetched_fast(
        &mut self,
        l0: &mut L0Cache,
        stats: &mut Stats,
        profiler: &mut Option<Profiler>,
        lane: Lane,
    ) {
        if l0.fetch(self.pc) {
            stats.l0_hits += 1;
        } else {
            stats.l0_misses += 1;
        }
        if let Some(p) = profiler {
            p.issue(self.hart_id as usize, self.pc, lane);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_riscv::ops::{AluImmOp, AluOp};

    #[test]
    fn decoded_extracts_int_metadata() {
        let d = Decoded::new(Inst::OpReg {
            op: AluOp::Add,
            rd: IntReg::A0,
            rs1: IntReg::A1,
            rs2: IntReg::A2,
        });
        assert_eq!(d.int_srcs, [Some(IntReg::A1), Some(IntReg::A2)]);
        assert_eq!(d.int_dst, Some(IntReg::A0));

        // Duplicate sources collapse; x0 is ignored.
        let d = Decoded::new(Inst::OpReg {
            op: AluOp::Add,
            rd: IntReg::ZERO,
            rs1: IntReg::A1,
            rs2: IntReg::A1,
        });
        assert_eq!(d.int_srcs, [Some(IntReg::A1), None]);
        assert_eq!(d.int_dst, None);
    }

    #[test]
    fn decoded_flags_fp_to_int_destinations() {
        let d = Decoded::new(Inst::FpCmp {
            op: snitch_riscv::ops::FpCmpOp::Lt,
            fmt: snitch_riscv::ops::FpFmt::D,
            rd: IntReg::A0,
            rs1: snitch_riscv::reg::FpReg::FA0,
            rs2: snitch_riscv::reg::FpReg::FA1,
        });
        assert_eq!(d.int_dst, Some(IntReg::A0));
    }

    #[test]
    fn wb_port_claims() {
        let mut c = IntCore::new(0);
        assert!(c.can_claim_wb(5, 1));
        c.claim_wb(5);
        assert!(!c.can_claim_wb(5, 1));
        assert!(c.can_claim_wb(5, 2));
        assert!(c.can_claim_wb(6, 1));
    }

    #[test]
    fn decoded_addi_sources() {
        let d = Decoded::new(Inst::OpImm {
            op: AluImmOp::Addi,
            rd: IntReg::A0,
            rs1: IntReg::ZERO,
            imm: 5,
        });
        assert_eq!(d.int_srcs, [None, None]);
    }
}
