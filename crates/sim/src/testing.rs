//! Shared differential-testing harness (the `testing` feature).
//!
//! The seeded random multi-core program generator and the state-capture
//! helper used by the fast-path equivalence suites (`tests/quiescent_skip.rs`
//! and `tests/block_compile.rs`). One generator instead of per-suite copies:
//! a fragment kind added here is exercised against *every* fast path.
//!
//! Deterministic by construction (seeded xorshift, no external
//! property-testing dependency — the repo convention since PR 1); not part
//! of the simulator API and compiled only with the `testing` feature.

use snitch_asm::builder::ProgramBuilder;
use snitch_asm::layout::{MAIN_BASE, TCDM_BASE};
use snitch_asm::program::Program;
use snitch_riscv::csr::SsrCfgWord;
use snitch_riscv::reg::{FpReg, IntReg};

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::stats::Stats;

/// Small xorshift PRNG for deterministic program generation.
pub struct Rng(pub u64);

impl Rng {
    /// The next raw 64-bit value. Not an `Iterator`: the stream is
    /// infinite and only ever consumed through the helpers below.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A value in `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits one random program fragment; `tag` uniquifies labels.
fn fragment(b: &mut ProgramBuilder, rng: &mut Rng, tag: usize, parallel: bool) {
    match rng.below(if parallel { 7 } else { 6 }) {
        // Integer loop with a data-dependent tail (taken branches produce
        // the silent refill windows the fast paths target).
        0 => {
            let iters = 2 + rng.below(6) as i32;
            b.li(IntReg::A1, iters);
            b.label(&format!("int{tag}"));
            b.addi(IntReg::T3, IntReg::T3, 3);
            b.mul(IntReg::T4, IntReg::T3, IntReg::A1);
            b.addi(IntReg::A1, IntReg::A1, -1);
            b.bnez(IntReg::A1, &format!("int{tag}"));
        }
        // FP block, sometimes fenced (unfenced blocks leave in-flight work
        // for the post-run drain loop to retire).
        1 => {
            b.li(IntReg::A2, 7 + tag as i32);
            b.fcvt_d_w(FpReg::FA1, IntReg::A2);
            b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FA1);
            b.fmul_d(FpReg::FS1, FpReg::FA1, FpReg::FA1);
            if rng.below(2) == 0 {
                b.fpu_fence();
            }
        }
        // FREP body replayed by the sequencer.
        2 => {
            b.li(IntReg::A2, 3 + tag as i32);
            b.fcvt_d_w(FpReg::FA2, IntReg::A2);
            b.li(IntReg::T0, rng.below(6) as i32 + 1);
            b.frep_o(IntReg::T0, 2, 0, 0);
            b.fadd_d(FpReg::FS2, FpReg::FS2, FpReg::FA2);
            b.fmadd_d(FpReg::FS3, FpReg::FA2, FpReg::FA2, FpReg::FS3);
            if rng.below(2) == 0 {
                b.fpu_fence();
            }
        }
        // SSR read stream summed through an FREP body.
        3 => {
            let n = 2 + rng.below(4) as u32; // elements
            let data: Vec<f64> = (0..n).map(|i| f64::from(i + tag as u32) * 0.5).collect();
            let xs = b.tcdm_f64(&format!("xs{tag}"), &data);
            b.li(IntReg::T1, 0);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Status);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Repeat);
            b.li(IntReg::T1, n as i32 - 1);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
            b.li(IntReg::T1, 8);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Stride(0));
            b.li_u(IntReg::T1, xs);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Base);
            b.ssr_enable();
            b.li(IntReg::T0, n as i32 - 1);
            b.frep_o(IntReg::T0, 1, 0, 0);
            b.fadd_d(FpReg::FS4, FpReg::FS4, FpReg::FT0);
            b.fpu_fence();
            b.ssr_disable();
        }
        // DMA copy main→TCDM with a busy-wait loop; sometimes unaligned so
        // beats split at bank-line boundaries.
        4 => {
            let unaligned = rng.below(2) == 0;
            let dst = b.tcdm_reserve(&format!("dma{tag}"), 64, 8);
            b.li_u(IntReg::A3, MAIN_BASE + 128 * tag as u32);
            b.li(IntReg::A4, 0x55 + tag as i32);
            b.sw(IntReg::A4, IntReg::A3, 0);
            b.sw(IntReg::A4, IntReg::A3, 16);
            b.dmsrc(IntReg::A3);
            b.li_u(IntReg::A4, if unaligned { dst + 4 } else { dst });
            b.dmdst(IntReg::A4);
            b.li(IntReg::A5, 24);
            b.dmcpyi(IntReg::A6, IntReg::A5);
            b.label(&format!("dw{tag}"));
            b.dmstati(IntReg::A7);
            b.bnez(IntReg::A7, &format!("dw{tag}"));
        }
        // Per-hart store (hart-offset slot so SPMD runs stay racefree).
        5 => {
            let slots = b.tcdm_reserve(&format!("sl{tag}"), 32 * 4, 4);
            b.csrr_mhartid(IntReg::A1);
            b.slli(IntReg::A2, IntReg::A1, 2);
            b.li_u(IntReg::A3, slots);
            b.add(IntReg::A2, IntReg::A2, IntReg::A3);
            b.addi(IntReg::A4, IntReg::A1, 11 + tag as i32);
            b.sw(IntReg::A4, IntReg::A2, 0);
            b.lw(IntReg::A5, IntReg::A2, 0);
            b.add(IntReg::T5, IntReg::T5, IntReg::A5);
        }
        // Barrier (SPMD only; every hart passes through the same sequence).
        _ => {
            b.barrier();
        }
    }
}

/// Builds a random program of `frags` fragments mixing integer loops, FP and
/// FREP bodies, SSR streams, DMA copies with wait loops and (for SPMD
/// shapes) barriers.
pub fn random_program(rng: &mut Rng, cores: usize, frags: usize) -> Program {
    let mut b = ProgramBuilder::new();
    if cores > 1 {
        b.parallel();
    }
    for tag in 0..frags {
        fragment(&mut b, rng, tag, cores > 1);
    }
    if cores > 1 {
        b.barrier();
    }
    b.ecall();
    b.build().expect("generated program assembles")
}

/// Everything a differential suite compares bit-for-bit after a run.
#[derive(Debug, PartialEq)]
pub struct Observation {
    /// The cluster statistics rollup (includes the final cycle count).
    pub stats: Stats,
    /// All 32 FP registers of every hart, raw bits, hart-major.
    pub fp_regs: Vec<u64>,
    /// The first 16 KiB of the TCDM as 64-bit words (the generator allocates
    /// all data there).
    pub tcdm: Vec<u64>,
}

/// Runs `program` on a fresh `cores`-core cluster — `configure` picks the
/// execution mode (fast paths on/off, tracers) before the program loads —
/// and captures the architectural state a differential suite compares.
///
/// # Panics
///
/// Panics if the program does not run to completion.
pub fn observe_with(
    program: &Program,
    cores: usize,
    configure: impl FnOnce(&mut Cluster),
) -> Observation {
    let cfg = ClusterConfig { cores, ..ClusterConfig::default() };
    let mut c = Cluster::new(cfg);
    configure(&mut c);
    c.load_program(program);
    let stats = c.run().expect("random program completes");
    let mut fp_regs = Vec::new();
    for h in 0..cores {
        for r in 0..32u8 {
            fp_regs.push(c.fp_reg_of(h, FpReg::new(r)));
        }
    }
    let tcdm: Vec<u64> =
        (0..2048).map(|i| c.mem().read(TCDM_BASE + i * 8, 8).expect("tcdm read")).collect();
    Observation { stats, fp_regs, tcdm }
}
