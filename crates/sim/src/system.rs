//! The multi-cluster system: N identical [`Cluster`]s behind a shared L2.
//!
//! # Execution and memory-visibility model
//!
//! Clusters execute **sequentially to completion in cluster-id order**; the
//! system's elapsed cycles are the maximum over clusters (they would run
//! concurrently in hardware). The canonical L2 contents live here; each
//! cluster's [`Memory`](crate::mem::Memory) holds a local L2 copy that is
//! synced in before the
//! cluster runs and whose self-written range is merged back out afterwards.
//! Remote-TCDM alias windows work the same way, against per-cluster snapshot
//! buffers.
//!
//! The resulting visibility rule is simple and deterministic: cluster `k`
//! observes the L2 and the TCDMs of clusters `j < k` *after* those clusters
//! completed, and the TCDMs of clusters `j > k` in their pre-run (image)
//! state. Programs that need cross-cluster dataflow in both directions must
//! structure it in cluster-id order (the tiled kernels do: every cluster
//! reads shared inputs from L2 and writes disjoint outputs back). Run-to-run
//! this is exactly reproducible, which is what the engine's determinism
//! contract needs.
//!
//! A `clusters == 1` system delegates directly to [`Cluster::run`] with no
//! sync steps at all, so single-cluster runs are bit-identical — stats,
//! registers, memory and trace — to driving a [`Cluster`] by hand.

use snitch_asm::layout;
use snitch_asm::program::Program;
use snitch_profile::Profiler;
use snitch_trace::{TraceEvent, Tracer};

use crate::cluster::Cluster;
use crate::config::SystemConfig;
use crate::error::RunError;
use crate::mem::MemFault;
use crate::stats::Stats;

/// A system of one or more Snitch clusters sharing an L2 region.
#[derive(Clone, Debug)]
pub struct System {
    cfg: SystemConfig,
    clusters: Vec<Cluster>,
    /// Canonical shared-L2 contents (authoritative between cluster runs).
    l2: Vec<u8>,
    /// High-water mark of meaningful canonical L2 bytes (image + merges):
    /// bounds how much each sync-in copies.
    l2_live: usize,
    /// System rollup, refreshed by [`run`](Self::run).
    stats: Stats,
}

impl System {
    /// Builds the system: `cfg.clusters` identical clusters.
    ///
    /// # Panics
    ///
    /// Panics if the cluster count is outside `1..=MAX_CLUSTERS`.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(
            (1..=layout::MAX_CLUSTERS).contains(&cfg.clusters),
            "system size {} outside the supported 1..={} clusters",
            cfg.clusters,
            layout::MAX_CLUSTERS
        );
        let mut clusters: Vec<Cluster> =
            (0..cfg.clusters).map(|_| Cluster::new(cfg.cluster.clone())).collect();
        if cfg.clusters > 1 {
            for (k, c) in clusters.iter_mut().enumerate() {
                c.join_system(cfg.clusters, k);
            }
        }
        // The canonical L2 buffer is only needed when sync steps exist.
        let l2 = if cfg.clusters > 1 { vec![0; layout::L2_SIZE as usize] } else { Vec::new() };
        System { cfg, clusters, l2, l2_live: 0, stats: Stats::default() }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.clusters.len()
    }

    /// One cluster, by index (for registers, per-cluster stats, tracer).
    #[must_use]
    pub fn cluster(&self, k: usize) -> &Cluster {
        &self.clusters[k]
    }

    /// Mutable cluster access (instrumentation attach points).
    pub fn cluster_mut(&mut self, k: usize) -> &mut Cluster {
        &mut self.clusters[k]
    }

    /// Loads the same SPMD program into every cluster and primes the
    /// canonical L2 from the program's L2 image.
    pub fn load_program(&mut self, program: &Program) {
        for c in &mut self.clusters {
            c.load_program(program);
        }
        let image = program.l2_image();
        if self.clusters.len() > 1 {
            self.l2[..image.len()].copy_from_slice(image);
        }
        self.l2_live = image.len();
    }

    /// Restores the just-constructed state, reusing every allocation (the
    /// per-cluster reset contract, plus the canonical L2 watermark).
    pub fn reset(&mut self) {
        for c in &mut self.clusters {
            c.reset();
        }
        if self.l2_live > 0 && !self.l2.is_empty() {
            self.l2[..self.l2_live].fill(0);
        }
        self.l2_live = 0;
        self.stats = Stats::default();
    }

    /// Runs every cluster to completion (in cluster-id order) and returns
    /// the system rollup: per-cluster stats summed (saturating), elapsed
    /// cycles = max over clusters.
    ///
    /// # Errors
    ///
    /// Returns the first cluster's [`RunError`] (faults abort the whole
    /// system run; the deadlock/watchdog contracts are per-cluster).
    pub fn run(&mut self) -> Result<Stats, RunError> {
        if self.clusters.len() == 1 {
            let stats = self.clusters[0].run()?;
            self.stats = stats.clone();
            return Ok(stats);
        }
        for k in 0..self.clusters.len() {
            self.sync_in(k);
            self.clusters[k].run()?;
            self.merge_out(k);
        }
        let mut roll = Stats::default();
        let mut cycles = 0;
        for c in &self.clusters {
            roll.accumulate(c.stats());
            cycles = cycles.max(c.stats().cycles);
        }
        roll.cycles = cycles;
        self.stats = roll.clone();
        Ok(roll)
    }

    /// Copies the canonical L2 and the peer-TCDM snapshots into cluster
    /// `k`'s memory before it runs.
    fn sync_in(&mut self, k: usize) {
        if self.l2_live > 0 {
            let live = &self.l2[..self.l2_live];
            self.clusters[k].mem_mut().sync_l2_in(0, live);
        }
        // Peer snapshots: cluster k sees every other cluster's TCDM as
        // written so far (post-run for j < k, pre-run images for j > k).
        for j in 0..self.clusters.len() {
            if j == k {
                continue;
            }
            let Some((off, bytes)) = self.clusters[j].mem().tcdm_written() else {
                continue;
            };
            let copy = bytes.to_vec();
            self.clusters[k].mem_mut().sync_peer_in(j, off, &copy);
        }
    }

    /// Merges cluster `k`'s L2 writes into the canonical L2 and applies its
    /// remote-window stores to the owning clusters' TCDMs.
    fn merge_out(&mut self, k: usize) {
        if let Some((off, bytes)) = self.clusters[k].mem_mut().take_l2_touched() {
            let copy = bytes.to_vec();
            self.l2[off..off + copy.len()].copy_from_slice(&copy);
            self.l2_live = self.l2_live.max(off + copy.len());
        }
        for j in 0..self.clusters.len() {
            if j == k {
                continue;
            }
            let Some((off, bytes)) = self.clusters[k].mem_mut().take_peer_touched(j) else {
                continue;
            };
            let copy = bytes.to_vec();
            self.clusters[j].mem_mut().apply_remote_tcdm(off, &copy);
        }
    }

    /// The system statistics rollup from the last [`run`](Self::run).
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// One cluster's statistics rollup.
    #[must_use]
    pub fn cluster_stats(&self, k: usize) -> &Stats {
        self.clusters[k].stats()
    }

    /// Reads `len` (1, 2, 4 or 8) bytes as a little-endian value, routing
    /// L2 addresses to the canonical (post-merge) contents and everything
    /// else to cluster 0's memory — the single-cluster-compatible view the
    /// harness validates results through.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    pub fn read_mem(&self, addr: u32, len: u32) -> Result<u64, MemFault> {
        if self.clusters.len() > 1 && layout::is_l2(addr) && layout::is_l2(addr + len - 1) {
            let off = (addr - layout::L2_BASE) as usize;
            let mut v = 0u64;
            for (i, b) in self.l2[off..off + len as usize].iter().enumerate() {
                v |= u64::from(*b) << (8 * i);
            }
            return Ok(v);
        }
        self.clusters[0].mem().read(addr, len)
    }

    /// Convenience: reads an `f64` through [`read_mem`](Self::read_mem).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    pub fn read_f64(&self, addr: u32) -> Result<f64, MemFault> {
        Ok(f64::from_bits(self.read_mem(addr, 8)?))
    }

    /// Whether every hart of every cluster has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.clusters.iter().all(Cluster::halted)
    }

    /// Forces block compilation on or off in every cluster (see
    /// [`Cluster::set_block_compile`]). [`reset`](Self::reset) restores the
    /// default.
    pub fn set_block_compile(&mut self, enabled: bool) {
        for c in &mut self.clusters {
            c.set_block_compile(enabled);
        }
    }

    /// Cluster 0's recorded trace events, if a tracer is attached (the
    /// per-cluster trace contract: traces and profiles of a multi-cluster
    /// run report cluster 0).
    #[must_use]
    pub fn trace_events(&self) -> Option<&[TraceEvent]> {
        self.clusters[0].trace_events()
    }

    /// Detaches cluster 0's tracer.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.clusters[0].take_tracer()
    }

    /// Cluster 0's profiler, if one is attached.
    #[must_use]
    pub fn profile(&self) -> Option<&Profiler> {
        self.clusters[0].profile()
    }

    /// Detaches cluster 0's profiler.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.clusters[0].take_profiler()
    }

    /// Cycles executed inside block-compiled bursts, summed over clusters.
    #[must_use]
    pub fn block_replayed_cycles(&self) -> u64 {
        self.clusters.iter().map(Cluster::block_replayed_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::IntReg;

    #[test]
    fn single_cluster_system_matches_bare_cluster() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 21);
        b.add(IntReg::A0, IntReg::A0, IntReg::A0);
        b.ecall();
        let p = b.build().unwrap();

        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&p);
        let sys_stats = sys.run().unwrap();

        let mut c = Cluster::new(ClusterConfig::default());
        c.load_program(&p);
        let c_stats = c.run().unwrap();

        assert_eq!(sys_stats, c_stats, "clusters == 1 must delegate bit-identically");
        assert_eq!(sys.cluster(0).int_reg(IntReg::A0), 42);
    }

    #[test]
    fn cluster_id_csr_distinguishes_clusters() {
        let mut b = ProgramBuilder::new();
        let out = b.tcdm_reserve("out", 8, 8);
        b.csrr_cluster_id(IntReg::A0);
        b.li_u(IntReg::A1, out);
        b.sw(IntReg::A0, IntReg::A1, 0);
        b.ecall();
        let p = b.build().unwrap();

        let mut sys = System::new(SystemConfig::with_clusters(3));
        sys.load_program(&p);
        sys.run().unwrap();
        for k in 0..3 {
            assert_eq!(
                sys.cluster(k).mem().read(out, 4).unwrap(),
                k as u64,
                "cluster {k} reads its own id"
            );
        }
    }

    #[test]
    fn l2_writes_merge_in_cluster_order() {
        // Every cluster adds its (id + 1) into the same L2 word — the
        // sequential model makes this a well-defined sum.
        let mut b = ProgramBuilder::new();
        let acc = b.l2_reserve("acc", 8, 8);
        b.csrr_cluster_id(IntReg::A0);
        b.addi(IntReg::A0, IntReg::A0, 1);
        b.li_u(IntReg::A1, acc);
        b.lw(IntReg::A2, IntReg::A1, 0);
        b.add(IntReg::A2, IntReg::A2, IntReg::A0);
        b.sw(IntReg::A2, IntReg::A1, 0);
        b.ecall();
        let p = b.build().unwrap();

        let mut sys = System::new(SystemConfig::with_clusters(4));
        sys.load_program(&p);
        let stats = sys.run().unwrap();
        assert_eq!(sys.read_mem(acc, 4).unwrap(), 1 + 2 + 3 + 4);
        assert!(stats.l2_accesses >= 8, "every cluster load+store hits L2");
        // System cycles are the max, not the sum.
        let per = (0..4).map(|k| sys.cluster_stats(k).cycles).collect::<Vec<_>>();
        assert_eq!(stats.cycles, per.iter().copied().max().unwrap());
    }

    #[test]
    fn remote_tcdm_stores_land_in_the_owner() {
        // Cluster 0 stores a value into cluster 1's TCDM through the alias
        // window; cluster 1 (running later) reads it from its own TCDM.
        let mut b = ProgramBuilder::new();
        let slot = b.tcdm_reserve("slot", 8, 8);
        let out = b.tcdm_reserve("out", 8, 8);
        b.csrr_cluster_id(IntReg::A0);
        b.bnez(IntReg::A0, "reader");
        // Cluster 0: write 99 into cluster 1's `slot`.
        b.li_u(IntReg::A1, layout::tcdm_alias_base(1) + (slot - layout::TCDM_BASE));
        b.li(IntReg::A2, 99);
        b.sw(IntReg::A2, IntReg::A1, 0);
        b.ecall();
        b.label("reader");
        // Cluster 1: copy `slot` into `out`.
        b.li_u(IntReg::A1, slot);
        b.lw(IntReg::A2, IntReg::A1, 0);
        b.li_u(IntReg::A3, out);
        b.sw(IntReg::A2, IntReg::A3, 0);
        b.ecall();
        let p = b.build().unwrap();

        let mut sys = System::new(SystemConfig::with_clusters(2));
        sys.load_program(&p);
        sys.run().unwrap();
        assert_eq!(sys.cluster(1).mem().read(out, 4).unwrap(), 99);
        assert_eq!(sys.cluster(0).mem().read(out, 4).unwrap(), 0, "cluster 0 took the store path");
    }

    #[test]
    fn reset_then_rerun_is_bit_identical() {
        let mut b = ProgramBuilder::new();
        let acc = b.l2_f64("acc", &[1.5]);
        b.li_u(IntReg::A1, acc);
        b.lw(IntReg::A2, IntReg::A1, 0);
        b.sw(IntReg::A2, IntReg::A1, 8);
        b.ecall();
        let p = b.build().unwrap();
        let mut sys = System::new(SystemConfig::with_clusters(2));
        sys.load_program(&p);
        let first = sys.run().unwrap();
        let word = sys.read_mem(acc + 8, 4).unwrap();
        sys.reset();
        sys.load_program(&p);
        let second = sys.run().unwrap();
        assert_eq!(first, second);
        assert_eq!(sys.read_mem(acc + 8, 4).unwrap(), word);
    }
}
