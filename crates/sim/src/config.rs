//! Cluster configuration.

/// Microarchitectural parameters of the simulated Snitch cluster.
///
/// Defaults follow the published Snitch core (Zaruba et al., IEEE TC 2021)
/// and the configuration used in the COPIFT paper (§III); every deviation is
/// called out in `DESIGN.md`.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    // ---- integer core ----
    /// Extra cycles lost on a taken branch or jump (pipeline refill).
    pub branch_penalty: u32,
    /// Cycles from issue of a TCDM load until the result writes back
    /// (dependent instructions can issue that cycle): load-use distance.
    pub load_latency: u32,
    /// Additional load latency when the access targets main memory instead
    /// of the TCDM.
    pub main_mem_extra_latency: u32,
    /// Integer multiply write-back latency. With a single RF write port this
    /// is the source of the structural hazards the paper blames for the LCG
    /// kernels' residual stalls.
    pub mul_latency: u32,
    /// Integer divide latency (non-pipelined).
    pub div_latency: u32,
    /// Number of integer register-file write ports (Snitch: 1).
    pub int_wb_ports: u32,

    // ---- instruction fetch ----
    /// L0 instruction-buffer capacity in instructions. The paper: loop bodies
    /// "less than 64 instructions ... entirely fit in Snitch's L0 I$".
    pub l0_capacity: usize,

    // ---- FP subsystem ----
    /// Depth of the accelerator offload FIFO between the integer core and
    /// the FP subsystem. Bounds integer-thread run-ahead.
    pub offload_fifo_depth: usize,
    /// FREP sequencer ring-buffer capacity in instructions.
    pub sequencer_depth: usize,
    /// FPU latency of add/sub/mul/FMA (pipelined).
    pub fpu_lat_muladd: u32,
    /// FPU latency of comparisons, sign injection, min/max, moves,
    /// classification and the COPIFT custom-1 instructions.
    pub fpu_lat_short: u32,
    /// FPU latency of conversions.
    pub fpu_lat_cvt: u32,
    /// FPU latency of divide/sqrt (iterative, non-pipelined).
    pub fpu_lat_divsqrt: u32,
    /// FP load latency from the TCDM.
    pub fp_load_latency: u32,

    // ---- SSR streamers ----
    /// Per-streamer data FIFO depth.
    pub ssr_fifo_depth: usize,

    // ---- TCDM ----
    /// Number of 64-bit TCDM banks.
    pub tcdm_banks: usize,

    // ---- DMA ----
    /// DMA throughput in bytes per cycle.
    pub dma_bytes_per_cycle: u32,

    // ---- harness ----
    /// Watchdog: abort the run after this many cycles.
    pub max_cycles: u64,
    /// Record a full instruction trace (costly; for debugging).
    pub trace: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            branch_penalty: 2,
            load_latency: 2,
            main_mem_extra_latency: 8,
            mul_latency: 2,
            div_latency: 12,
            int_wb_ports: 1,
            l0_capacity: 64,
            offload_fifo_depth: 8,
            sequencer_depth: 128,
            fpu_lat_muladd: 3,
            fpu_lat_short: 1,
            fpu_lat_cvt: 2,
            fpu_lat_divsqrt: 21,
            fp_load_latency: 2,
            ssr_fifo_depth: 4,
            tcdm_banks: 32,
            dma_bytes_per_cycle: 8,
            max_cycles: 200_000_000,
            trace: false,
        }
    }
}

impl ClusterConfig {
    /// Configuration with tracing enabled.
    #[must_use]
    pub fn traced() -> Self {
        ClusterConfig { trace: true, ..ClusterConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_design_document() {
        let c = ClusterConfig::default();
        assert_eq!(c.l0_capacity, 64);
        assert_eq!(c.tcdm_banks, 32);
        assert_eq!(c.int_wb_ports, 1);
        assert_eq!(c.mul_latency, 2);
        assert!(!c.trace);
    }
}
