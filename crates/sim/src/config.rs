//! Cluster and system configuration.

/// Microarchitectural parameters of the simulated Snitch cluster.
///
/// Defaults follow the published Snitch core (Zaruba et al., IEEE TC 2021)
/// and the configuration used in the COPIFT paper (§III); every deviation is
/// called out in `DESIGN.md`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClusterConfig {
    // ---- cluster topology ----
    /// Number of compute cores (harts). Each core has its own integer
    /// pipeline, FP subsystem, SSR streamers and L0 buffer; all cores share
    /// the banked TCDM, the DMA engine and the hardware barrier. The paper's
    /// cluster has 8 compute cores (plus the DMA core, modelled as the
    /// shared engine).
    pub cores: usize,

    // ---- integer core ----
    /// Extra cycles lost on a taken branch or jump (pipeline refill).
    pub branch_penalty: u32,
    /// Cycles from issue of a TCDM load until the result writes back
    /// (dependent instructions can issue that cycle): load-use distance.
    pub load_latency: u32,
    /// Additional load latency when the access targets main memory instead
    /// of the TCDM.
    pub main_mem_extra_latency: u32,
    /// Integer multiply write-back latency. With a single RF write port this
    /// is the source of the structural hazards the paper blames for the LCG
    /// kernels' residual stalls.
    pub mul_latency: u32,
    /// Integer divide latency (non-pipelined).
    pub div_latency: u32,
    /// Number of integer register-file write ports (Snitch: 1).
    pub int_wb_ports: u32,

    // ---- instruction fetch ----
    /// L0 instruction-buffer capacity in instructions. The paper: loop bodies
    /// "less than 64 instructions ... entirely fit in Snitch's L0 I$".
    pub l0_capacity: usize,

    // ---- FP subsystem ----
    /// Depth of the accelerator offload FIFO between the integer core and
    /// the FP subsystem. Bounds integer-thread run-ahead.
    pub offload_fifo_depth: usize,
    /// FREP sequencer ring-buffer capacity in instructions.
    pub sequencer_depth: usize,
    /// FPU latency of add/sub/mul/FMA (pipelined).
    pub fpu_lat_muladd: u32,
    /// FPU latency of comparisons, sign injection, min/max, moves,
    /// classification and the COPIFT custom-1 instructions.
    pub fpu_lat_short: u32,
    /// FPU latency of conversions.
    pub fpu_lat_cvt: u32,
    /// FPU latency of divide/sqrt (iterative, non-pipelined).
    pub fpu_lat_divsqrt: u32,
    /// FP load latency from the TCDM.
    pub fp_load_latency: u32,

    // ---- SSR streamers ----
    /// Per-streamer data FIFO depth.
    pub ssr_fifo_depth: usize,

    // ---- TCDM ----
    /// Number of 64-bit TCDM banks.
    pub tcdm_banks: usize,

    // ---- DMA ----
    /// DMA throughput in bytes per cycle.
    pub dma_bytes_per_cycle: u32,

    // ---- system interconnect (L2 / inter-cluster) ----
    /// Extra cycles a core load pays to reach the shared L2, and the setup
    /// latency of a DMA segment touching L2.
    pub l2_latency: u32,
    /// L2 port bandwidth in bytes per cycle: DMA segments touching L2 (or a
    /// remote cluster) are clamped to `min(dma_bytes_per_cycle, this)`.
    pub l2_bytes_per_cycle: u32,
    /// One-way cluster-interconnect hop latency: DMA segments pay one hop to
    /// reach L2 and two hops to reach a remote cluster's TCDM.
    pub hop_latency: u32,

    // ---- harness ----
    /// Watchdog: abort the run after this many cycles.
    pub max_cycles: u64,
    /// Record a full instruction trace (costly; for debugging).
    pub trace: bool,
    /// Collect a per-pc cycle/stall profile (cheap; stays on the block-burst
    /// fast path).
    pub profile: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cores: 1,
            branch_penalty: 2,
            load_latency: 2,
            main_mem_extra_latency: 8,
            mul_latency: 2,
            div_latency: 12,
            int_wb_ports: 1,
            l0_capacity: 64,
            offload_fifo_depth: 8,
            sequencer_depth: 128,
            fpu_lat_muladd: 3,
            fpu_lat_short: 1,
            fpu_lat_cvt: 2,
            fpu_lat_divsqrt: 21,
            fp_load_latency: 2,
            ssr_fifo_depth: 4,
            tcdm_banks: 32,
            dma_bytes_per_cycle: 8,
            l2_latency: 12,
            l2_bytes_per_cycle: 8,
            hop_latency: 4,
            max_cycles: 200_000_000,
            trace: false,
            profile: false,
        }
    }
}

impl ClusterConfig {
    /// Configuration with tracing enabled.
    #[must_use]
    pub fn traced() -> Self {
        ClusterConfig { trace: true, ..ClusterConfig::default() }
    }

    /// Configuration with cycle profiling enabled.
    #[must_use]
    pub fn profiled() -> Self {
        ClusterConfig { profile: true, ..ClusterConfig::default() }
    }

    /// Canonical textual form of every timing-relevant parameter, used as
    /// the cache/sweep identity of a configuration. Two configs with equal
    /// `canonical()` produce identical simulations; `trace`, `profile` and
    /// `max_cycles` are excluded because they do not change architectural
    /// behavior (a watchdog abort is an error, not a result).
    #[must_use]
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "cores{};bp{};ll{};mm{};mul{};div{};wb{};l0:{};fifo{};seq{};fma{};fshort{};fcvt{};fdiv{};fld{};ssr{};banks{};dma{}",
            self.cores,
            self.branch_penalty,
            self.load_latency,
            self.main_mem_extra_latency,
            self.mul_latency,
            self.div_latency,
            self.int_wb_ports,
            self.l0_capacity,
            self.offload_fifo_depth,
            self.sequencer_depth,
            self.fpu_lat_muladd,
            self.fpu_lat_short,
            self.fpu_lat_cvt,
            self.fpu_lat_divsqrt,
            self.fp_load_latency,
            self.ssr_fifo_depth,
            self.tcdm_banks,
            self.dma_bytes_per_cycle,
        );
        // The interconnect parameters are appended only when they deviate
        // from the defaults: configurations that predate the System layer
        // must keep their published fingerprints (sweep rows join on them).
        let d = ClusterConfig::default();
        if (self.l2_latency, self.l2_bytes_per_cycle, self.hop_latency)
            != (d.l2_latency, d.l2_bytes_per_cycle, d.hop_latency)
        {
            let _ = write!(
                s,
                ";l2l{};l2bw{};hop{}",
                self.l2_latency, self.l2_bytes_per_cycle, self.hop_latency
            );
        }
        s
    }

    /// Stable 64-bit fingerprint of [`canonical`](Self::canonical) (FNV-1a;
    /// independent of platform, process and `HashMap` seeding). Sweep result
    /// records carry this so rows can be joined back to the exact
    /// configuration that produced them.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.canonical())
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parameters of the whole simulated system: `clusters` identical Snitch
/// clusters (each described by `cluster`) behind a shared L2.
///
/// A `SystemConfig` with `clusters == 1` is *the same identity* as its inner
/// [`ClusterConfig`]: `canonical()` and `fingerprint()` match byte-for-byte,
/// so every sweep row and cache key produced before the System layer existed
/// remains valid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemConfig {
    /// Per-cluster microarchitecture (identical across clusters).
    pub cluster: ClusterConfig,
    /// Number of clusters in the system (1..=[`MAX_CLUSTERS`]).
    ///
    /// [`MAX_CLUSTERS`]: snitch_asm::layout::MAX_CLUSTERS
    pub clusters: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig { cluster: ClusterConfig::default(), clusters: 1 }
    }
}

impl From<ClusterConfig> for SystemConfig {
    fn from(cluster: ClusterConfig) -> Self {
        SystemConfig { cluster, clusters: 1 }
    }
}

impl SystemConfig {
    /// Configuration with `clusters` clusters and default microarchitecture.
    #[must_use]
    pub fn with_clusters(clusters: usize) -> Self {
        SystemConfig { cluster: ClusterConfig::default(), clusters }
    }

    /// Compute cores per cluster (convenience passthrough).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cluster.cores
    }

    /// Canonical textual identity: the inner cluster's [`canonical`]
    /// followed by a `;x{clusters}` suffix — appended only for multi-cluster
    /// systems so single-cluster identities stay unchanged.
    ///
    /// [`canonical`]: ClusterConfig::canonical
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut s = self.cluster.canonical();
        if self.clusters > 1 {
            use std::fmt::Write as _;
            let _ = write!(s, ";x{}", self.clusters);
        }
        s
    }

    /// Stable FNV-1a fingerprint of [`canonical`](Self::canonical); equals
    /// the inner [`ClusterConfig::fingerprint`] when `clusters == 1`.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_design_document() {
        let c = ClusterConfig::default();
        assert_eq!(c.cores, 1);
        assert_eq!(c.l0_capacity, 64);
        assert_eq!(c.tcdm_banks, 32);
        assert_eq!(c.int_wb_ports, 1);
        assert_eq!(c.mul_latency, 2);
        assert!(!c.trace);
        assert!(!c.profile);
    }

    #[test]
    fn fingerprint_tracks_timing_parameters_only() {
        let base = ClusterConfig::default();
        assert_eq!(base.fingerprint(), ClusterConfig::default().fingerprint());
        // Harness knobs do not change the identity...
        let traced = ClusterConfig { trace: true, max_cycles: 1, ..ClusterConfig::default() };
        assert_eq!(base.fingerprint(), traced.fingerprint());
        assert_eq!(base.fingerprint(), ClusterConfig::profiled().fingerprint());
        // ...but every timing knob does.
        let variants = [
            ClusterConfig { cores: 8, ..ClusterConfig::default() },
            ClusterConfig { branch_penalty: 3, ..ClusterConfig::default() },
            ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() },
            ClusterConfig { l0_capacity: 32, ..ClusterConfig::default() },
            ClusterConfig { offload_fifo_depth: 2, ..ClusterConfig::default() },
            ClusterConfig { sequencer_depth: 80, ..ClusterConfig::default() },
            ClusterConfig { fpu_lat_muladd: 4, ..ClusterConfig::default() },
            ClusterConfig { tcdm_banks: 16, ..ClusterConfig::default() },
        ];
        let mut prints: Vec<u64> = variants.iter().map(ClusterConfig::fingerprint).collect();
        prints.push(base.fingerprint());
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), variants.len() + 1, "all fingerprints distinct");
    }

    #[test]
    fn interconnect_params_only_appear_when_ablated() {
        let base = ClusterConfig::default();
        assert!(
            !base.canonical().contains("l2l"),
            "default canonical string must not grow a suffix: {}",
            base.canonical()
        );
        let slow = ClusterConfig { l2_latency: 20, ..ClusterConfig::default() };
        assert!(slow.canonical().ends_with(";l2l20;l2bw8;hop4"));
        assert_ne!(base.fingerprint(), slow.fingerprint());
        assert_ne!(
            slow.fingerprint(),
            ClusterConfig { hop_latency: 8, ..slow.clone() }.fingerprint()
        );
    }

    #[test]
    fn system_identity_collapses_to_cluster_identity_at_one_cluster() {
        let cluster = ClusterConfig::default();
        let sys = SystemConfig::default();
        assert_eq!(sys.clusters, 1);
        assert_eq!(sys.canonical(), cluster.canonical());
        assert_eq!(sys.fingerprint(), cluster.fingerprint());
        let sys8 = SystemConfig::from(ClusterConfig { cores: 8, ..ClusterConfig::default() });
        assert_eq!(
            sys8.fingerprint(),
            ClusterConfig { cores: 8, ..ClusterConfig::default() }.fingerprint()
        );
    }

    #[test]
    fn cluster_count_is_a_fingerprint_axis() {
        let prints: Vec<u64> =
            [1, 2, 4].iter().map(|&k| SystemConfig::with_clusters(k).fingerprint()).collect();
        assert_ne!(prints[0], prints[1]);
        assert_ne!(prints[1], prints[2]);
        assert!(SystemConfig::with_clusters(2).canonical().ends_with(";x2"));
        assert_eq!(SystemConfig::with_clusters(4).cores(), 1);
    }
}
