//! The cluster top level: wiring, the cycle loop and the public run API.

use snitch_asm::program::Program;
use snitch_profile::Profiler;
use snitch_riscv::reg::{FpReg, IntReg};
use snitch_trace::{EventKind, TraceEvent, Tracer, CLUSTER_HART};

use crate::block::BlockCache;
use crate::config::ClusterConfig;
use crate::core::{Decoded, IntCore};
use crate::dma::Dma;
use crate::error::RunError;
use crate::fpss::Fpss;
use crate::icache::L0Cache;
use crate::mem::{Memory, TcdmArbiter, TcdmPort};
use crate::ssr::Ssr;
use crate::stats::Stats;
use crate::trace_event;

/// Cycles without any unit making progress before a deadlock is declared.
const DEADLOCK_WINDOW: u64 = 50_000;

/// Consecutive progress-free cycles after which a block burst hands back to
/// the generic loop. Far below [`DEADLOCK_WINDOW`], so a genuinely stuck
/// program spends the bulk of its deadlock window — and reports the error —
/// on the reference path, at exactly the reference cycle.
const BLOCK_STUCK_EXIT: u64 = 64;

/// Everything private to one compute core (hart): the integer pipeline, its
/// FP subsystem, the three SSR streamers, the L0 instruction buffer and the
/// hart's own statistics. The TCDM, its bank arbiter, the DMA engine and the
/// hardware barrier are cluster-shared.
#[derive(Clone, Debug)]
struct CoreUnit {
    core: IntCore,
    fpss: Fpss,
    ssrs: [Ssr; 3],
    l0: L0Cache,
    stats: Stats,
}

impl CoreUnit {
    fn new(hart: u32, cfg: &ClusterConfig) -> Self {
        CoreUnit {
            core: IntCore::new(hart),
            fpss: Fpss::new(cfg),
            ssrs: [
                Ssr::new(cfg.ssr_fifo_depth),
                Ssr::new(cfg.ssr_fifo_depth),
                Ssr::new(cfg.ssr_fifo_depth),
            ],
            l0: L0Cache::new(cfg.l0_capacity),
            stats: Stats::default(),
        }
    }
}

/// A simulated Snitch compute cluster: `cores` integer cores, each with its
/// own FP subsystem, three SSR streamers and L0 instruction buffer, all
/// sharing the banked TCDM (through the bank arbiter), one DMA engine and a
/// hardware barrier.
///
/// Single-core programs (the default) boot only hart 0; SPMD programs built
/// with [`ProgramBuilder::parallel`](snitch_asm::builder::ProgramBuilder::parallel)
/// boot every hart at the entry point and branch on `mhartid`.
///
/// # Example
///
/// ```
/// use snitch_asm::builder::ProgramBuilder;
/// use snitch_riscv::reg::IntReg;
/// use snitch_sim::cluster::Cluster;
/// use snitch_sim::config::ClusterConfig;
///
/// let mut b = ProgramBuilder::new();
/// b.li(IntReg::A0, 21);
/// b.add(IntReg::A0, IntReg::A0, IntReg::A0);
/// b.ecall();
/// let program = b.build()?;
///
/// let mut cluster = Cluster::new(ClusterConfig::default());
/// cluster.load_program(&program);
/// let stats = cluster.run()?;
/// assert_eq!(cluster.int_reg(IntReg::A0), 42);
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    text: Vec<Decoded>,
    units: Vec<CoreUnit>,
    dma: Dma,
    mem: Memory,
    arb: TcdmArbiter,
    /// Cluster-level rollup of all per-hart statistics plus the shared
    /// counters (refreshed at the end of every public `step`/`run`).
    stats: Stats,
    /// TCDM accesses performed by the shared DMA engine.
    tcdm_dma_accesses: u64,
    cycle: u64,
    /// Last cycle on which any unit did observable work (issued, streamed a
    /// beat, moved a DMA byte) — maintained O(1) per cycle from what each
    /// unit's step reports, replacing the per-cycle `progress_signature()`
    /// counter scan of earlier revisions.
    last_progress_cycle: u64,
    /// Harts currently halted (maintained on the `ecall` transition, so the
    /// run loop's exit test is one integer compare instead of an all-units
    /// scan per cycle).
    halted_count: usize,
    /// Harts currently stalled at the hardware barrier (maintained on
    /// arrive/release transitions, same reasoning).
    barrier_waiting_count: usize,
    /// Quiescent-skip fast path enable (on by default; see
    /// [`set_quiescent_skip`](Self::set_quiescent_skip)).
    skip: bool,
    /// Cycles the run loop advanced without stepping any unit (diagnostic;
    /// not part of [`Stats`] — skipped cycles are ordinary elapsed cycles).
    skipped_cycles: u64,
    /// Block-compiled fast path enable (on by default; see
    /// [`set_block_compile`](Self::set_block_compile)).
    block: bool,
    /// Cycles executed inside block bursts (diagnostic; not part of
    /// [`Stats`] — replayed cycles are ordinary elapsed cycles).
    block_replayed_cycles: u64,
    /// The text section pre-lowered into burst micro-ops (rebuilt by
    /// [`load_program`](Self::load_program)).
    blocks: BlockCache,
    /// Event collector, attached when `cfg.trace` is set (or explicitly via
    /// [`attach_tracer`](Self::attach_tracer)). `None` is the hot path:
    /// every emission site is a single branch and constructs nothing.
    tracer: Option<Tracer>,
    /// Cycle-profile collector, attached when `cfg.profile` is set (or
    /// explicitly via [`attach_profiler`](Self::attach_profiler)). Unlike
    /// the tracer it stays engaged on the block-burst fast path — charges
    /// are O(1) array increments, not event records.
    profiler: Option<Profiler>,
}

impl Cluster {
    /// Creates an empty cluster.
    #[must_use]
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(
            (1..=32).contains(&cfg.cores),
            "cluster size {} outside the supported 1..=32 cores",
            cfg.cores
        );
        let units = (0..cfg.cores).map(|h| CoreUnit::new(h as u32, &cfg)).collect();
        let dma = Dma::with_interconnect(
            cfg.dma_bytes_per_cycle,
            cfg.l2_latency,
            cfg.l2_bytes_per_cycle,
            cfg.hop_latency,
        );
        let arb = TcdmArbiter::new(cfg.tcdm_banks);
        let tracer = cfg.trace.then(Tracer::new);
        let profiler = cfg.profile.then(Profiler::new);
        Cluster {
            cfg,
            text: Vec::new(),
            units,
            dma,
            mem: Memory::new(),
            arb,
            stats: Stats::default(),
            tcdm_dma_accesses: 0,
            cycle: 0,
            last_progress_cycle: 0,
            halted_count: 0,
            barrier_waiting_count: 0,
            skip: true,
            skipped_cycles: 0,
            block: true,
            block_replayed_cycles: 0,
            blocks: BlockCache::default(),
            tracer,
            profiler,
        }
    }

    /// Loads a program (text + memory images) and resets execution state.
    /// Non-parallel programs boot only hart 0 (secondary harts park halted);
    /// [`Program::parallel`] programs boot every hart at the entry point.
    pub fn load_program(&mut self, program: &Program) {
        self.text = program.text().iter().copied().map(Decoded::new).collect();
        self.blocks.recompile(&self.text, &self.cfg);
        self.mem.load_images(program.tcdm_image(), program.main_image());
        self.mem.load_l2(program.l2_image());
        let mut halted = 0;
        for (h, unit) in self.units.iter_mut().enumerate() {
            unit.core.reset(h as u32);
            if h > 0 && !program.parallel() {
                unit.core.force_halt();
                halted += 1;
            }
        }
        self.halted_count = halted;
        self.barrier_waiting_count = 0;
        if let Some(p) = &mut self.profiler {
            p.size(self.units.len(), self.text.len());
        }
    }

    /// Restores the cluster to its just-constructed state while reusing
    /// *every* allocation — the memory arrays (cleared only over their dirty
    /// watermarks), per-unit queues and tables — so one `Cluster` can
    /// execute a stream of jobs with zero per-job allocation and a clear
    /// cost proportional to what the previous job touched.
    ///
    /// After `reset()` + [`load_program`](Self::load_program), a run is
    /// bit-identical (results *and* [`Stats`]) to one on a fresh
    /// `Cluster::new(cfg)` — the determinism guarantee `snitch-engine`'s
    /// worker pool relies on, pinned by the reset/fresh-equivalence tests.
    /// The quiescent-skip setting is restored to its default (enabled).
    pub fn reset(&mut self) {
        self.text.clear();
        self.mem.clear();
        for (h, unit) in self.units.iter_mut().enumerate() {
            unit.core.reset(h as u32);
            unit.fpss.reset();
            for ssr in &mut unit.ssrs {
                ssr.reset();
            }
            unit.l0.reset();
            unit.stats = Stats::default();
        }
        self.dma.reset();
        self.arb.reset();
        self.stats = Stats::default();
        self.tcdm_dma_accesses = 0;
        self.cycle = 0;
        self.last_progress_cycle = 0;
        self.halted_count = 0;
        self.barrier_waiting_count = 0;
        self.skip = true;
        self.skipped_cycles = 0;
        self.block = true;
        self.block_replayed_cycles = 0;
        self.blocks.clear();
        self.tracer = self.cfg.trace.then(Tracer::new);
        self.profiler = self.cfg.profile.then(Profiler::new);
    }

    /// The configuration this cluster was built with.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of compute cores in this cluster.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.units.len()
    }

    /// The cluster-level statistics rollup: per-hart counters summed, plus
    /// the shared DMA/arbiter counters. With `cores = 1` this is exactly the
    /// single core's statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The statistics of one hart (cluster-shared counters — DMA, TCDM
    /// conflicts — are reported only in the [`stats`](Self::stats) rollup).
    ///
    /// # Panics
    ///
    /// Panics if `hart >= cores`.
    #[must_use]
    pub fn core_stats(&self, hart: usize) -> &Stats {
        &self.units[hart].stats
    }

    /// The data memory (for result validation after a run).
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable data memory (for the `System`'s L2 / peer-window sync).
    pub(crate) fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Places this cluster at index `cluster_id` of a `clusters`-cluster
    /// system: every core's `CSR_CLUSTER_ID` reads the index, and the other
    /// clusters' TCDM alias windows become mapped (snapshot-backed).
    /// Identity is physical — it survives [`reset`](Self::reset).
    pub fn join_system(&mut self, clusters: usize, cluster_id: usize) {
        for unit in &mut self.units {
            unit.core.set_cluster_id(cluster_id as u32);
        }
        self.mem.enable_peers(clusters, cluster_id);
    }

    /// Attaches an event collector (replacing any existing one). A cluster
    /// built from a [`ClusterConfig`] with `trace` set already carries a
    /// recording tracer; this entry point exists for instrumentation that
    /// needs explicit control (e.g. attaching a [`Tracer::paused`] collector
    /// to measure the disabled hook's overhead).
    ///
    /// Note that [`reset`](Self::reset) restores the config-driven state:
    /// a fresh (empty) tracer when `cfg.trace` is set, none otherwise.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The events recorded so far, if a tracer is attached.
    #[must_use]
    pub fn trace_events(&self) -> Option<&[TraceEvent]> {
        self.tracer.as_ref().map(Tracer::events)
    }

    /// Detaches the tracer (if any) and returns it with its events.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Attaches a cycle-profile collector (replacing any existing one). A
    /// cluster built from a [`ClusterConfig`] with `profile` set already
    /// carries a recording profiler; this entry point exists for
    /// instrumentation that needs explicit control (e.g. attaching a
    /// [`Profiler::paused`] collector to measure the disabled hook's
    /// overhead). Attach *before* [`load_program`](Self::load_program),
    /// which sizes the histograms to the text section.
    ///
    /// Note that [`reset`](Self::reset) restores the config-driven state:
    /// a fresh profiler when `cfg.profile` is set, none otherwise.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// The cycle profile collected so far, if a profiler is attached.
    #[must_use]
    pub fn profile(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Detaches the profiler (if any) and returns it with its histograms.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// Reads an integer register of hart 0.
    #[must_use]
    pub fn int_reg(&self, r: IntReg) -> u32 {
        self.int_reg_of(0, r)
    }

    /// Reads an integer register of `hart`.
    ///
    /// # Panics
    ///
    /// Panics if `hart >= cores`.
    #[must_use]
    pub fn int_reg_of(&self, hart: usize, r: IntReg) -> u32 {
        self.units[hart].core.reg(r)
    }

    /// Reads an FP register's raw bits (hart 0).
    #[must_use]
    pub fn fp_reg(&self, r: FpReg) -> u64 {
        self.fp_reg_of(0, r)
    }

    /// Reads an FP register's raw bits of `hart`.
    ///
    /// # Panics
    ///
    /// Panics if `hart >= cores`.
    #[must_use]
    pub fn fp_reg_of(&self, hart: usize, r: FpReg) -> u64 {
        self.units[hart].fpss.reg(r)
    }

    /// Whether every hart has halted (`ecall`).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted_count == self.units.len()
    }

    /// Enables or disables the quiescent-skip fast path (on by default).
    ///
    /// With skip enabled, `run` advances the cluster clock directly to the
    /// next wake event whenever every unit is provably silent (see
    /// `DESIGN.md` §13); results, [`Stats`] and traces are bit-identical
    /// either way — the force-stepped mode exists as the reference for the
    /// equivalence tests. [`reset`](Self::reset) restores the default.
    pub fn set_quiescent_skip(&mut self, enabled: bool) {
        self.skip = enabled;
    }

    /// Cycles the run loop fast-forwarded through provably silent windows
    /// instead of stepping them (0 with skip disabled). Diagnostic only:
    /// skipped cycles are ordinary elapsed cycles in every statistic.
    #[must_use]
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Enables or disables the block-compiled fast path (on by default).
    ///
    /// With block compilation enabled, `run` executes single-hart stretches
    /// through pre-lowered micro-ops in a tight burst loop instead of the
    /// generic all-units stepper (see `DESIGN.md` §15); results, [`Stats`]
    /// and error cycles are bit-identical either way — the force-stepped
    /// mode exists as the reference for the differential suite in
    /// `tests/block_compile.rs`. [`reset`](Self::reset) restores the
    /// default.
    pub fn set_block_compile(&mut self, enabled: bool) {
        self.block = enabled;
    }

    /// Cycles executed inside block bursts (0 with block compilation
    /// disabled). Diagnostic only: replayed cycles are ordinary elapsed
    /// cycles in every statistic, disjoint from
    /// [`skipped_cycles`](Self::skipped_cycles).
    #[must_use]
    pub fn block_replayed_cycles(&self) -> u64 {
        self.block_replayed_cycles
    }

    /// Advances the cluster by one cycle and refreshes the statistics
    /// rollup.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Fault`] on machine faults.
    pub fn step(&mut self) -> Result<(), RunError> {
        let result = self.step_units().map(|_| ());
        self.refresh_rollup();
        result
    }

    /// One cycle of work for every unit, without the rollup refresh (the
    /// hot path; `run` refreshes once at the end). Returns whether any unit
    /// made observable progress (issued an instruction, streamed a beat,
    /// moved a DMA byte) — the deadlock detector's progress signal,
    /// gathered here for free instead of re-scanning every counter.
    fn step_units(&mut self) -> Result<bool, RunError> {
        let now = self.cycle;
        self.arb.begin_cycle();
        let conflicts_before = self.arb.conflicts();
        let dma_beats_before = self.dma.beats();
        let mut progressed = false;
        let mut halted_count = self.halted_count;
        let mut barrier_waiting = self.barrier_waiting_count;
        let mut fault = None;

        // Destructured so the per-unit loop can borrow the shared units and
        // the tracer alongside `self.units` without aliasing `self`.
        let Cluster {
            cfg, text, units, dma, mem, arb, tracer, profiler, tcdm_dma_accesses, ..
        } = self;

        for unit in units.iter_mut() {
            let CoreUnit { core, fpss, ssrs, l0, stats } = unit;

            // Parked fast path: a halted hart with an idle FP subsystem and
            // quiescent streamers has provably nothing to do — every call
            // below would be a no-op (secondary harts of a non-parallel
            // program sit here for the whole run).
            if core.halted() && fpss.idle_now() && ssrs.iter().all(Ssr::quiescent) {
                continue;
            }

            let was_halted = core.halted();
            let was_waiting = core.barrier_waiting();
            let issued_before = stats.int_issued + stats.fp_issued_core + stats.fpu_busy_cycles;

            // FP→int write-backs land before the core issues, so results
            // are visible the cycle they retire.
            fpss.drain_int_writebacks(now, |wb| core.apply_writeback(wb.rd, wb.value, now));

            let core_result =
                core.step(now, cfg, text, l0, mem, arb, fpss, ssrs, dma, stats, tracer, profiler);
            // Halt/barrier transitions happen only inside `core.step`;
            // commit them even when this or a later unit faults, so
            // `halted()` can never go stale on an aborted cycle.
            if !was_halted && core.halted() {
                halted_count += 1;
            }
            if !was_waiting && core.barrier_waiting() {
                barrier_waiting += 1;
            }
            if let Err(e) = core_result {
                fault = Some(e);
                break;
            }

            let hart = core.hart_id() as u8;
            if let Err(e) = fpss.step(now, hart, cfg, mem, arb, ssrs, stats, tracer, profiler) {
                fault = Some(e);
                break;
            }

            for (i, ssr) in ssrs.iter_mut().enumerate() {
                let accesses = ssr.step(mem, arb, TcdmPort::Ssr(hart, i as u8));
                stats.tcdm_ssr_accesses += u64::from(accesses);
                progressed |= accesses > 0;
                if accesses > 0 {
                    trace_event!(
                        tracer,
                        now,
                        hart,
                        EventKind::SsrBeat { ssr: i as u8, count: accesses }
                    );
                }
                if ssr.armed() {
                    stats.ssr_active_cycles[i] += 1;
                }
                stats.ssr_beats[i] = ssr.beats();
            }

            // Issue counters moved ⇔ this unit did work this cycle (core
            // and FPSS issues both bump one of these three).
            progressed |=
                stats.int_issued + stats.fp_issued_core + stats.fpu_busy_cycles != issued_before;
        }

        if let Some(e) = fault {
            // The cycle is aborted (no advance), but the transition counts
            // observed so far are real and must land.
            self.halted_count = halted_count;
            self.barrier_waiting_count = barrier_waiting;
            return Err(RunError::Fault(e));
        }

        let dma_accesses = dma.step(mem, arb);
        *tcdm_dma_accesses += u64::from(dma_accesses);
        progressed |= dma.beats() != dma_beats_before;
        if dma_accesses > 0 {
            trace_event!(tracer, now, CLUSTER_HART, EventKind::DmaActive { count: dma_accesses });
        }
        let new_conflicts = arb.conflicts() - conflicts_before;
        if new_conflicts > 0 {
            trace_event!(
                tracer,
                now,
                CLUSTER_HART,
                EventKind::BankConflicts { count: new_conflicts as u32 }
            );
        }

        // Hardware barrier: release every waiting hart in the same cycle
        // once each hart has either arrived or halted. Halted harts count
        // as arrived so a partial shutdown can never deadlock the rest.
        if barrier_waiting > 0 && barrier_waiting + halted_count == units.len() {
            for unit in units.iter_mut() {
                if unit.core.barrier_waiting() {
                    unit.core.release_barrier();
                    trace_event!(tracer, now, unit.core.hart_id() as u8, EventKind::BarrierRelease);
                }
            }
            barrier_waiting = 0;
        }

        self.halted_count = halted_count;
        self.barrier_waiting_count = barrier_waiting;
        self.cycle += 1;
        Ok(progressed)
    }

    /// Recomputes the cluster rollup from the per-hart statistics and the
    /// shared DMA/arbiter counters.
    fn refresh_rollup(&mut self) {
        let mut roll = Stats::default();
        for unit in &mut self.units {
            unit.stats.cycles = self.cycle;
            roll.accumulate(&unit.stats);
        }
        roll.cycles = self.cycle;
        roll.tcdm_dma_accesses = self.tcdm_dma_accesses;
        roll.dma_busy_cycles = self.dma.busy_cycles();
        roll.dma_blocked_cycles = self.dma.blocked_cycles();
        roll.dma_beats = self.dma.beats();
        roll.dma_hop_cycles = self.dma.hop_cycles();
        roll.tcdm_conflicts = self.arb.conflicts();
        self.stats = roll;
    }

    /// Runs until every hart executes `ecall`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Timeout`] if the watchdog limit is reached,
    /// [`RunError::Deadlock`] if no unit makes progress for an extended
    /// window, and [`RunError::Fault`] on machine faults.
    pub fn run(&mut self) -> Result<Stats, RunError> {
        let result = self.run_inner();
        self.refresh_rollup();
        result.map(|()| self.stats.clone())
    }

    fn run_inner(&mut self) -> Result<(), RunError> {
        if self.text.is_empty() {
            return Err(RunError::PcOutOfRange { pc: self.units[0].core.pc() });
        }
        let cores = self.units.len();
        while self.halted_count < cores {
            if self.cycle >= self.cfg.max_cycles {
                return Err(RunError::Timeout { cycles: self.cycle });
            }
            // Block burst: a lone running hart with everything else parked
            // executes through the pre-lowered micro-ops until an exit
            // condition hands control back here.
            if let Some(hart) = self.block_eligible_hart() {
                if self.block_burst(hart)? {
                    continue;
                }
            }
            // Quiescent skip: when every unit is provably silent, jump the
            // clock straight to the next wake event. Clamped to the timeout
            // and deadlock boundaries so both errors are still reported at
            // exactly the cycle a force-stepped loop would report them.
            if self.skip {
                if let Some(wake) = self.quiescent_wake() {
                    let deadline = self.last_progress_cycle + DEADLOCK_WINDOW + 1;
                    let target = wake.min(self.cfg.max_cycles).min(deadline);
                    if target > self.cycle {
                        self.skipped_cycles += target - self.cycle;
                        self.cycle = target;
                        if self.cycle - self.last_progress_cycle > DEADLOCK_WINDOW {
                            return Err(RunError::Deadlock {
                                cycle: self.cycle,
                                pc: self.stuck_pc(),
                            });
                        }
                        continue;
                    }
                }
            }
            if self.step_units()? {
                self.last_progress_cycle = self.cycle;
            } else if self.cycle - self.last_progress_cycle > DEADLOCK_WINDOW {
                return Err(RunError::Deadlock { cycle: self.cycle, pc: self.stuck_pc() });
            }
        }
        // Let in-flight FP work retire so post-run register/memory reads are
        // complete (bounded by the deadlock window).
        let drain_start = self.cycle;
        while self
            .units
            .iter()
            .any(|u| !u.fpss.drained(self.cycle) || u.ssrs.iter().any(super::ssr::Ssr::busy))
        {
            if self.skip {
                if let Some(wake) = self.quiescent_wake() {
                    let target = wake.min(drain_start + DEADLOCK_WINDOW + 1);
                    if target > self.cycle {
                        self.skipped_cycles += target - self.cycle;
                        self.cycle = target;
                        if self.cycle - drain_start > DEADLOCK_WINDOW {
                            return Err(RunError::Deadlock {
                                cycle: self.cycle,
                                pc: self.stuck_pc(),
                            });
                        }
                        continue;
                    }
                }
            }
            self.step_units()?;
            if self.cycle - drain_start > DEADLOCK_WINDOW {
                return Err(RunError::Deadlock { cycle: self.cycle, pc: self.stuck_pc() });
            }
        }
        Ok(())
    }

    /// The single hart a block burst may drive this cycle, or `None` when
    /// any entry guard fails. The burst replays pre-lowered micro-ops for
    /// exactly one running hart, so it engages only when every other unit is
    /// provably a per-cycle no-op: one non-halted hart, every halted hart
    /// parked (idle FP subsystem, quiescent streamers — the stepper's own
    /// skip condition), nobody at the barrier, the DMA engine idle, and no
    /// recording tracer attached (event emission needs the stepper's hooks).
    fn block_eligible_hart(&self) -> Option<usize> {
        if !self.block
            || self.barrier_waiting_count != 0
            || self.units.len() - self.halted_count != 1
            || !self.dma.idle()
            || self.tracer.as_ref().is_some_and(Tracer::is_recording)
        {
            return None;
        }
        let mut running = None;
        for (h, unit) in self.units.iter().enumerate() {
            if !unit.core.halted() {
                running = Some(h);
            } else if !unit.fpss.idle_now() || !unit.ssrs.iter().all(Ssr::quiescent) {
                return None;
            }
        }
        running
    }

    /// Runs `hart` in a burst: the per-cycle loop specialized to one running
    /// hart and driven by the block cache, with the other units statically
    /// proven idle by [`block_eligible_hart`](Self::block_eligible_hart).
    /// Exits back to the generic loop at halt, DMA activation, a fault, the
    /// timeout boundary, or [`BLOCK_STUCK_EXIT`] progress-free cycles.
    /// Returns whether any cycles elapsed (`false` means the caller must
    /// fall through to the generic loop to guarantee forward progress).
    fn block_burst(&mut self, hart: usize) -> Result<bool, RunError> {
        let start = self.cycle;
        let max_cycles = self.cfg.max_cycles;
        let mut now = start;
        let mut last_progress = self.last_progress_cycle;
        let mut new_halts = 0usize;
        let mut fault = None;
        {
            let Cluster {
                cfg,
                text,
                units,
                dma,
                mem,
                arb,
                tcdm_dma_accesses,
                blocks,
                profiler,
                ..
            } = self;
            let CoreUnit { core, fpss, ssrs, l0, stats } = &mut units[hart];
            let hart_u8 = core.hart_id() as u8;
            let mut no_tracer: Option<Tracer> = None;
            loop {
                if now >= max_cycles || now - last_progress > BLOCK_STUCK_EXIT {
                    break;
                }
                let fp_quiet = fpss.idle_now();
                // Silent window: with the FP subsystem idle and the
                // streamers quiescent, a stalled core makes every call
                // below a no-op — jump straight to the resume cycle
                // (clamped so the stuck-exit and timeout boundaries fire
                // at exactly the cycles the checks above would see).
                if fp_quiet && core.stall_until() > now && ssrs.iter().all(Ssr::quiescent) {
                    now = core
                        .stall_until()
                        .min(max_cycles)
                        .min(last_progress + BLOCK_STUCK_EXIT + 1);
                    continue;
                }
                // Pre-lowered pc-relative values assume 4-byte alignment;
                // a misaligned jump target is the stepper's problem.
                if core.pc() & 3 != 0 {
                    break;
                }
                arb.begin_cycle();
                let issued_before = stats.int_issued + stats.fp_issued_core + stats.fpu_busy_cycles;
                if !fp_quiet {
                    fpss.drain_int_writebacks(now, |wb| core.apply_writeback(wb.rd, wb.value, now));
                }
                if core.stall_until() <= now {
                    // A core at the canonical FPU fence with FP work still
                    // queued (`!fp_quiet` implies `!drained`) can only lose
                    // the slot to a Fence stall: book the stall directly
                    // instead of the delegated stepper call. (`x0` carries
                    // no hazards and the write-back claim prune is lazy.)
                    let idx = (core.pc().wrapping_sub(snitch_asm::layout::TEXT_BASE) / 4) as usize;
                    if !fp_quiet
                        && blocks
                            .ops()
                            .get(idx)
                            .is_some_and(|b| matches!(b.op, crate::block::BlockOp::FenceWait))
                    {
                        stats.add_stall(snitch_trace::StallCause::Fence, 1);
                        if let Some(p) = profiler {
                            p.stall(hart, core.pc(), snitch_trace::StallCause::Fence, 1);
                        }
                    } else {
                        let r = core.step_block(
                            now,
                            cfg,
                            text,
                            blocks.ops(),
                            l0,
                            mem,
                            arb,
                            fpss,
                            ssrs,
                            dma,
                            stats,
                            profiler,
                        );
                        if core.halted() {
                            new_halts += 1;
                        }
                        if let Err(e) = r {
                            fault = Some(e);
                            break;
                        }
                    }
                }
                // All other harts are halted, so a barrier arrival releases
                // in the same cycle (net zero occupancy, like the stepper).
                if core.barrier_waiting() {
                    core.release_barrier();
                }
                // Re-checked after the issue: a just-offloaded op must step
                // this cycle. When still idle, `step` is a pure no-op.
                if !fpss.idle_now() {
                    if let Err(e) = fpss.step(
                        now,
                        hart_u8,
                        cfg,
                        mem,
                        arb,
                        ssrs,
                        stats,
                        &mut no_tracer,
                        profiler,
                    ) {
                        fault = Some(e);
                        break;
                    }
                }
                for (i, ssr) in ssrs.iter_mut().enumerate() {
                    if ssr.quiescent() {
                        continue;
                    }
                    let accesses = ssr.step(mem, arb, TcdmPort::Ssr(hart_u8, i as u8));
                    stats.tcdm_ssr_accesses += u64::from(accesses);
                    if accesses > 0 {
                        last_progress = now + 1;
                    }
                    if ssr.armed() {
                        stats.ssr_active_cycles[i] += 1;
                    }
                    stats.ssr_beats[i] = ssr.beats();
                }
                let mut progressed =
                    stats.int_issued + stats.fp_issued_core + stats.fpu_busy_cycles
                        != issued_before;
                let dma_active = !dma.idle();
                if dma_active {
                    // A transfer the core just enqueued has moved no beats
                    // yet, so reading the counter here still sees the
                    // cycle's starting value.
                    let dma_beats_before = dma.beats();
                    let dma_accesses = dma.step(mem, arb);
                    *tcdm_dma_accesses += u64::from(dma_accesses);
                    progressed |= dma.beats() != dma_beats_before;
                }
                now += 1;
                if progressed {
                    last_progress = now;
                }
                if core.halted() || dma_active {
                    break;
                }
            }
        }
        self.cycle = now;
        self.last_progress_cycle = last_progress;
        self.halted_count += new_halts;
        self.block_replayed_cycles += now - start;
        match fault {
            Some(e) => Err(RunError::Fault(e)),
            None => Ok(now > start),
        }
    }

    /// The program counter of the first non-halted hart (hart 0 when all
    /// have halted) — the most useful single pc for a deadlock report.
    fn stuck_pc(&self) -> u32 {
        self.units.iter().find(|u| !u.core.halted()).unwrap_or(&self.units[0]).core.pc()
    }

    /// When every unit is provably silent this cycle, the earliest future
    /// cycle at which any unit can act again; `None` when some unit may act
    /// (and count stalls or activity) on the very next step.
    ///
    /// The conditions are conservative by construction: every hart halted or
    /// inside a pre-charged `stall_until` window, every FP subsystem empty
    /// with only time-stamped deliveries in flight, every SSR streamer
    /// unarmed with no write data queued, no hart waiting at the barrier
    /// (barrier waits re-count a stall each cycle), and the DMA engine idle
    /// (an active transfer moves — or counts a blocked cycle — every cycle).
    fn quiescent_wake(&self) -> Option<u64> {
        if !self.dma.idle() || self.barrier_waiting_count > 0 {
            return None;
        }
        let now = self.cycle;
        let mut wake = u64::MAX;
        for unit in &self.units {
            if !unit.core.halted() {
                let resume = unit.core.stall_until();
                if resume <= now {
                    return None;
                }
                wake = wake.min(resume);
            }
            wake = wake.min(unit.fpss.quiescent_until(now)?);
            if !unit.ssrs.iter().all(Ssr::quiescent) {
                return None;
            }
        }
        (wake > now && wake < u64::MAX).then_some(wake)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::builder::ProgramBuilder;
    use snitch_asm::layout::TCDM_BASE;
    use snitch_riscv::reg::FpReg;

    fn run_program(build: impl FnOnce(&mut ProgramBuilder)) -> (Cluster, Stats) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.build().expect("assembles");
        let mut c = Cluster::new(ClusterConfig::default());
        c.load_program(&p);
        let stats = c.run().expect("runs to completion");
        (c, stats)
    }

    #[test]
    fn arithmetic_and_branches() {
        // Sum 1..=10 with a loop.
        let (c, stats) = run_program(|b| {
            b.li(IntReg::A0, 10);
            b.li(IntReg::A1, 0);
            b.label("loop");
            b.add(IntReg::A1, IntReg::A1, IntReg::A0);
            b.addi(IntReg::A0, IntReg::A0, -1);
            b.bnez(IntReg::A0, "loop");
            b.ecall();
        });
        assert_eq!(c.int_reg(IntReg::A1), 55);
        // 3 insts * 10 iterations + 2 li + ecall = 33 issued.
        assert_eq!(stats.int_issued, 33);
        // 9 taken branches * 2-cycle penalty.
        assert_eq!(stats.stall_branch, 18);
    }

    #[test]
    fn load_store_roundtrip() {
        let (c, _) = run_program(|b| {
            let buf = b.tcdm_u32("buf", &[7, 0]);
            b.li_u(IntReg::A0, buf);
            b.lw(IntReg::A1, IntReg::A0, 0);
            b.slli(IntReg::A1, IntReg::A1, 2);
            b.sw(IntReg::A1, IntReg::A0, 4);
            b.ecall();
        });
        assert_eq!(c.mem().read_u32(TCDM_BASE + 4).unwrap(), 28);
    }

    #[test]
    fn load_use_stall_costs_one_cycle() {
        // lw then immediately use: one RAW stall cycle (load_latency 2).
        let (_, stats) = run_program(|b| {
            let buf = b.tcdm_u32("buf", &[5]);
            b.li_u(IntReg::A0, buf);
            b.lw(IntReg::A1, IntReg::A0, 0);
            b.addi(IntReg::A1, IntReg::A1, 1);
            b.ecall();
        });
        assert_eq!(stats.stall_int_raw, 1);
    }

    #[test]
    fn mul_wb_port_structural_hazard() {
        // mul (wb at +2) followed by an independent ALU op (wb at +2 from the
        // next cycle → collision): exactly the paper's LCG hazard.
        let (_, stats) = run_program(|b| {
            b.li(IntReg::A0, 3);
            b.li(IntReg::A1, 4);
            b.li(IntReg::A3, 1);
            b.mul(IntReg::A2, IntReg::A0, IntReg::A1);
            b.addi(IntReg::A4, IntReg::A3, 1); // independent, collides on WB
            b.ecall();
        });
        assert_eq!(stats.stall_wb_port, 1);
    }

    #[test]
    fn two_wb_ports_remove_the_hazard() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 3);
        b.li(IntReg::A1, 4);
        b.li(IntReg::A3, 1);
        b.mul(IntReg::A2, IntReg::A0, IntReg::A1);
        b.addi(IntReg::A4, IntReg::A3, 1);
        b.ecall();
        let p = b.build().unwrap();
        let cfg = ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() };
        let mut c = Cluster::new(cfg);
        c.load_program(&p);
        let stats = c.run().unwrap();
        assert_eq!(stats.stall_wb_port, 0);
    }

    #[test]
    fn fp_offload_and_fence() {
        let (c, stats) = run_program(|b| {
            let xs = b.tcdm_f64("xs", &[1.5, 2.25]);
            b.li_u(IntReg::A0, xs);
            b.fld(FpReg::FA0, IntReg::A0, 0);
            b.fld(FpReg::FA1, IntReg::A0, 8);
            b.fadd_d(FpReg::FA2, FpReg::FA0, FpReg::FA1);
            b.fsd(FpReg::FA2, IntReg::A0, 8);
            b.fpu_fence();
            b.ecall();
        });
        assert_eq!(c.mem().read_f64(TCDM_BASE + 8).unwrap(), 3.75);
        assert_eq!(stats.fp_issued_core, 4);
        assert_eq!(stats.fp_issued_seq, 0, "no FREP in this program");
        assert!(stats.stall_fence > 0, "fence waited for the FPU");
    }

    #[test]
    fn fp_to_int_writeback_serializes() {
        let (c, stats) = run_program(|b| {
            let xs = b.tcdm_f64("xs", &[1.0, 2.0]);
            b.li_u(IntReg::A0, xs);
            b.fld(FpReg::FA0, IntReg::A0, 0);
            b.fld(FpReg::FA1, IntReg::A0, 8);
            b.flt_d(IntReg::A1, FpReg::FA0, FpReg::FA1);
            b.addi(IntReg::A2, IntReg::A1, 10); // waits for the FPSS
            b.ecall();
        });
        assert_eq!(c.int_reg(IntReg::A2), 11);
        assert!(stats.stall_fp_pending > 0, "Type 3 dependency stalled the core");
    }

    #[test]
    fn frep_dual_issue_overlaps_int_work() {
        // FP thread: 4-instruction body accumulating from fa1..fa4 into
        // fs0..fs3, replayed 32 times. Int thread: independent counter loop.
        // Dual issue ⇒ both retire concurrently, IPC > 1.
        let (c, stats) = run_program(|b| {
            let xs = b.tcdm_f64("xs", &[0.25, 0.5, 1.0, 2.0]);
            b.li_u(IntReg::A0, xs);
            b.fld(FpReg::FA1, IntReg::A0, 0);
            b.fld(FpReg::FA2, IntReg::A0, 8);
            b.fld(FpReg::FA3, IntReg::A0, 16);
            b.fld(FpReg::FA4, IntReg::A0, 24);
            b.li(IntReg::T0, 31); // 32 total iterations
            b.frep_o(IntReg::T0, 4, 0, 0);
            b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FA1);
            b.fadd_d(FpReg::FS1, FpReg::FS1, FpReg::FA2);
            b.fadd_d(FpReg::FS2, FpReg::FS2, FpReg::FA3);
            b.fadd_d(FpReg::FS3, FpReg::FS3, FpReg::FA4);
            // Integer thread: unrolled busy loop (32 iterations x 4 adds),
            // so the taken-branch penalty does not dominate.
            b.li(IntReg::A1, 32);
            b.label("int_loop");
            b.addi(IntReg::T3, IntReg::T3, 1);
            b.addi(IntReg::T4, IntReg::T4, 1);
            b.addi(IntReg::T5, IntReg::T5, 1);
            b.addi(IntReg::A1, IntReg::A1, -1);
            b.bnez(IntReg::A1, "int_loop");
            b.fpu_fence();
            b.ecall();
        });
        assert_eq!(f64::from_bits(c.fp_reg(FpReg::FS0)), 8.0);
        assert_eq!(f64::from_bits(c.fp_reg(FpReg::FS1)), 16.0);
        assert_eq!(f64::from_bits(c.fp_reg(FpReg::FS2)), 32.0);
        assert_eq!(f64::from_bits(c.fp_reg(FpReg::FS3)), 64.0);
        assert_eq!(stats.fp_issued_seq, 4 * 31, "31 replayed iterations");
        // The replays overlap the integer loop: far fewer cycles than
        // sequential execution would need.
        assert!(
            stats.cycles < stats.instructions(),
            "dual issue must beat one-per-cycle: {} cycles for {} instructions",
            stats.cycles,
            stats.instructions()
        );
    }

    #[test]
    fn deadlock_is_detected() {
        // An FPU fence that can never drain: SSR read stream armed with no
        // consumer... simpler: a branch spinning on a register that never
        // changes while nothing else progresses would still issue
        // instructions. Instead: fld from an SSR-armed... Use an infinite
        // self-loop with no instruction issue: branch to self *stalled* on an
        // FP-pending register that never resolves is impossible by
        // construction, so use scfgwi to a busy streamer that never drains.
        let mut b = ProgramBuilder::new();
        use snitch_riscv::csr::SsrCfgWord;
        b.li(IntReg::A0, 3); // 4 elements
        b.scfgwi(IntReg::A0, 0, SsrCfgWord::Bound(0));
        b.li(IntReg::A0, 8);
        b.scfgwi(IntReg::A0, 0, SsrCfgWord::Stride(0));
        b.li_u(IntReg::A0, TCDM_BASE);
        b.scfgwi(IntReg::A0, 0, SsrCfgWord::Base); // arms; nobody consumes
        b.scfgwi(IntReg::A0, 0, SsrCfgWord::Base); // stalls forever
        b.ecall();
        let p = b.build().unwrap();
        let mut c = Cluster::new(ClusterConfig::default());
        c.load_program(&p);
        match c.run() {
            Err(RunError::Deadlock { .. }) => {}
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn ssr_streaming_feeds_fpu() {
        // Sum 8 doubles via SSR 0 + FREP, no explicit loads.
        let (c, stats) = run_program(|b| {
            use snitch_riscv::csr::SsrCfgWord;
            let xs = b.tcdm_f64("xs", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
            b.li(IntReg::T1, 7);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
            b.li(IntReg::T1, 8);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Stride(0));
            b.li(IntReg::T1, 0);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Status);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Repeat);
            b.li_u(IntReg::T1, xs);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Base);
            b.ssr_enable();
            b.li(IntReg::T0, 7);
            b.frep_o(IntReg::T0, 1, 0, 0);
            b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
            b.fpu_fence();
            b.ssr_disable();
            b.ecall();
        });
        assert_eq!(f64::from_bits(c.fp_reg(FpReg::FS0)), 36.0);
        assert_eq!(stats.ssr_beats[0], 8);
        assert_eq!(stats.fp_mem_ops, 0, "no explicit FP loads");
    }

    #[test]
    fn dma_copy_then_compute() {
        let (c, stats) = run_program(|b| {
            use snitch_asm::layout::MAIN_BASE;
            let _src = b.main_f32("src", &[0.0; 4]); // placeholder; real data below
            let dst = b.tcdm_reserve("dst", 32, 8);
            // Write known doubles into main memory image instead.
            b.li_u(IntReg::A0, MAIN_BASE);
            b.li_u(IntReg::A1, 0x40080000); // 3.0 high word
            b.sw(IntReg::A1, IntReg::A0, 4);
            b.sw(IntReg::ZERO, IntReg::A0, 0);
            b.dmsrc(IntReg::A0);
            b.li_u(IntReg::A2, dst);
            b.dmdst(IntReg::A2);
            b.li(IntReg::A3, 8);
            b.dmcpyi(IntReg::A4, IntReg::A3);
            b.label("wait");
            b.dmstati(IntReg::A5);
            b.bnez(IntReg::A5, "wait");
            b.fld(FpReg::FA0, IntReg::A2, 0);
            b.fpu_fence();
            b.ecall();
        });
        assert_eq!(f64::from_bits(c.fp_reg(FpReg::FA0)), 3.0);
        assert!(stats.dma_beats > 0);
        assert!(stats.dma_busy_cycles > 0);
    }

    #[test]
    fn ipc_never_exceeds_two() {
        let (_, stats) = run_program(|b| {
            b.li(IntReg::T0, 63);
            b.frep_o(IntReg::T0, 2, 0, 0);
            b.fadd_d(FpReg::FS0, FpReg::FS1, FpReg::FS2);
            b.fadd_d(FpReg::FS3, FpReg::FS4, FpReg::FS5);
            b.li(IntReg::A1, 200);
            b.label("l");
            b.addi(IntReg::A1, IntReg::A1, -1);
            b.bnez(IntReg::A1, "l");
            b.fpu_fence();
            b.ecall();
        });
        assert!(stats.ipc() <= 2.0);
    }

    #[test]
    fn frep_i_repeats_instruction_major() {
        // Stream [1..6]; body = two accumulating adds. frep.o interleaves
        // (fs0 gets 1,3,5), frep.i exhausts each instruction first
        // (fs0 gets 1,2,3) — note the capture pass issues the sequence once
        // (fs0:1, fs1:2), then frep.i replays instruction-major
        // (fs0: 3,4; fs1: 5,6).
        let run = |inst_major: bool| {
            let (c, _) = run_program(|b| {
                use snitch_riscv::csr::SsrCfgWord;
                let xs = b.tcdm_f64("xs", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
                b.li(IntReg::T1, 0);
                b.scfgwi(IntReg::T1, 0, SsrCfgWord::Status);
                b.scfgwi(IntReg::T1, 0, SsrCfgWord::Repeat);
                b.li(IntReg::T1, 5);
                b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
                b.li(IntReg::T1, 8);
                b.scfgwi(IntReg::T1, 0, SsrCfgWord::Stride(0));
                b.li_u(IntReg::T1, xs);
                b.scfgwi(IntReg::T1, 0, SsrCfgWord::Base);
                b.ssr_enable();
                b.li(IntReg::T0, 2); // 3 total repetitions
                if inst_major {
                    b.frep_i(IntReg::T0, 2, 0, 0);
                } else {
                    b.frep_o(IntReg::T0, 2, 0, 0);
                }
                b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
                b.fadd_d(FpReg::FS1, FpReg::FS1, FpReg::FT0);
                b.fpu_fence();
                b.ssr_disable();
                b.ecall();
            });
            (f64::from_bits(c.fp_reg(FpReg::FS0)), f64::from_bits(c.fp_reg(FpReg::FS1)))
        };
        assert_eq!(run(false), (1.0 + 3.0 + 5.0, 2.0 + 4.0 + 6.0), "frep.o sequence-major");
        assert_eq!(run(true), (1.0 + 3.0 + 4.0, 2.0 + 5.0 + 6.0), "frep.i instruction-major");
    }

    #[test]
    fn stagger_breaks_accumulator_chains() {
        // A single accumulating fadd with 4-way rd/rs1 staggering spreads
        // the sum over fs0..fs3 (f8..f11), exactly like a 4x unrolled body.
        let (c, stats) = run_program(|b| {
            use snitch_riscv::csr::SsrCfgWord;
            let xs: Vec<f64> = (1..=16).map(f64::from).collect();
            let xaddr = b.tcdm_f64("xs", &xs);
            b.li(IntReg::T1, 0);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Status);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Repeat);
            b.li(IntReg::T1, 15);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
            b.li(IntReg::T1, 8);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Stride(0));
            b.li_u(IntReg::T1, xaddr);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Base);
            b.ssr_enable();
            b.li(IntReg::T0, 15); // 16 iterations
                                  // stagger_max 3 (4-way), mask 0b011: rd and rs1.
            b.frep_o(IntReg::T0, 1, 3, 0b011);
            b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
            b.fpu_fence();
            b.ssr_disable();
            b.ecall();
        });
        let parts: Vec<f64> = (8..12).map(|i| f64::from_bits(c.fp_reg(FpReg::new(i)))).collect();
        // Iteration n accumulates into f(8 + n%4): fs0 = 1+5+9+13, etc.
        assert_eq!(parts, vec![28.0, 32.0, 36.0, 40.0]);
        assert_eq!(parts.iter().sum::<f64>(), 136.0);
        // The staggered chains avoid back-to-back RAW stalls.
        assert!(stats.fpu_stall_raw < 16);
    }

    #[test]
    fn reset_makes_back_to_back_runs_identical() {
        // A program exercising every stateful unit: DMA, SSR streaming,
        // FREP replay, TCDM traffic and integer work.
        let mut b = ProgramBuilder::new();
        {
            use snitch_riscv::csr::SsrCfgWord;
            let xs = b.tcdm_f64("xs", &[1.0, 2.0, 3.0, 4.0]);
            b.li(IntReg::T1, 3);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
            b.li(IntReg::T1, 8);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Stride(0));
            b.li(IntReg::T1, 0);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Status);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Repeat);
            b.li_u(IntReg::T1, xs);
            b.scfgwi(IntReg::T1, 0, SsrCfgWord::Base);
            b.ssr_enable();
            b.li(IntReg::T0, 3);
            b.frep_o(IntReg::T0, 1, 0, 0);
            b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
            b.fpu_fence();
            b.ssr_disable();
            b.ecall();
        }
        let p = b.build().unwrap();

        let mut c = Cluster::new(ClusterConfig::default());
        c.load_program(&p);
        let first = c.run().expect("first run");
        let result1 = f64::from_bits(c.fp_reg(FpReg::FS0));

        c.reset();
        c.load_program(&p);
        let second = c.run().expect("second run");
        let result2 = f64::from_bits(c.fp_reg(FpReg::FS0));

        assert_eq!(first, second, "stats must be bit-identical across reset");
        assert_eq!(result1, result2);
        assert_eq!(result1, 10.0);

        // And both match a completely fresh cluster.
        let mut fresh = Cluster::new(ClusterConfig::default());
        fresh.load_program(&p);
        let third = fresh.run().expect("fresh run");
        assert_eq!(first, third, "reset must be indistinguishable from fresh construction");
    }

    #[test]
    fn spmd_barrier_and_mhartid_synchronize_harts() {
        // Each hart writes (hart id + 1) into its slot, everyone meets at
        // the barrier, then hart 0 sums the slots.
        let cores = 4usize;
        let mut b = ProgramBuilder::new();
        b.parallel();
        let slots = b.tcdm_reserve("slots", cores * 4, 4);
        b.csrr_mhartid(IntReg::A0);
        b.slli(IntReg::A1, IntReg::A0, 2);
        b.li_u(IntReg::A2, slots);
        b.add(IntReg::A1, IntReg::A1, IntReg::A2);
        b.addi(IntReg::A3, IntReg::A0, 1);
        b.sw(IntReg::A3, IntReg::A1, 0);
        b.barrier();
        b.bnez(IntReg::A0, "done");
        b.li(IntReg::A4, 0);
        for h in 0..cores {
            b.lw(IntReg::A5, IntReg::A2, (4 * h) as i32);
            b.add(IntReg::A4, IntReg::A4, IntReg::A5);
        }
        b.label("done");
        b.ecall();
        let p = b.build().unwrap();

        let mut c = Cluster::new(ClusterConfig { cores, ..ClusterConfig::default() });
        c.load_program(&p);
        let stats = c.run().expect("spmd program runs");
        assert_eq!(c.int_reg_of(0, IntReg::A4), (1..=cores as u32).sum::<u32>());
        assert!(stats.stall_barrier > 0, "someone waited at the barrier");
        // Every hart saw its own id.
        for h in 0..cores {
            assert_eq!(c.int_reg_of(h, IntReg::A0), h as u32);
        }
        // The rollup is the sum of the per-hart counters.
        let issued: u64 = (0..cores).map(|h| c.core_stats(h).int_issued).sum();
        assert_eq!(stats.int_issued, issued);
        assert!(c.core_stats(1).int_issued > 0);
    }

    #[test]
    fn non_parallel_program_boots_only_hart_zero() {
        // A hart-0-only program must behave bit-identically on any cluster
        // size: secondary harts park halted and never touch the TCDM.
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 21);
        b.add(IntReg::A0, IntReg::A0, IntReg::A0);
        b.ecall();
        let p = b.build().unwrap();

        let mut single = Cluster::new(ClusterConfig::default());
        single.load_program(&p);
        let s1 = single.run().unwrap();

        let mut octa = Cluster::new(ClusterConfig { cores: 8, ..ClusterConfig::default() });
        octa.load_program(&p);
        let s8 = octa.run().unwrap();

        assert_eq!(octa.int_reg_of(0, IntReg::A0), 42);
        assert_eq!(s1, s8, "idle harts must not perturb a single-core program");
        for h in 1..8 {
            assert_eq!(octa.core_stats(h).int_issued, 0);
        }
    }

    #[test]
    fn barrier_on_a_single_core_is_cheap() {
        let (_, stats) = run_program(|b| {
            b.parallel();
            b.li(IntReg::A0, 7);
            b.barrier();
            b.addi(IntReg::A0, IntReg::A0, 1);
            b.ecall();
        });
        // Arrive (stall one cycle), release, retire: no deadlock, tiny cost.
        assert!(stats.stall_barrier >= 1);
        assert!(stats.cycles < 20);
    }

    #[test]
    fn traced_run_mirrors_stats_and_perturbs_nothing() {
        use snitch_riscv::csr::SsrCfgWord;
        use snitch_trace::{EventKind, Lane, StallCause};
        // A program exercising both lanes, SSR streaming and stalls.
        let mut b = ProgramBuilder::new();
        let xs = b.tcdm_f64("xs", &[1.0, 2.0, 3.0, 4.0]);
        b.li(IntReg::T1, 3);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
        b.li(IntReg::T1, 8);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Stride(0));
        b.li(IntReg::T1, 0);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Status);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Repeat);
        b.li_u(IntReg::T1, xs);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Base);
        b.ssr_enable();
        b.li(IntReg::T0, 3);
        b.frep_o(IntReg::T0, 1, 0, 0);
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
        b.li(IntReg::A1, 8);
        b.label("l");
        b.addi(IntReg::A1, IntReg::A1, -1);
        b.bnez(IntReg::A1, "l");
        b.fpu_fence();
        b.ssr_disable();
        b.ecall();
        let p = b.build().unwrap();

        let mut plain = Cluster::new(ClusterConfig::default());
        plain.load_program(&p);
        let untraced = plain.run().unwrap();
        assert!(plain.trace_events().is_none(), "tracing is off by default");

        let mut traced = Cluster::new(ClusterConfig::traced());
        traced.load_program(&p);
        let stats = traced.run().unwrap();
        assert_eq!(stats, untraced, "tracing must not perturb the simulation");

        let events = traced.trace_events().expect("cfg.trace attaches a tracer");
        // Issue events mirror the issue counters lane for lane.
        let lane_count = |want: Lane| {
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Issue { lane, .. } if lane == want))
                .count() as u64
        };
        assert_eq!(lane_count(Lane::Int), stats.int_issued);
        assert_eq!(lane_count(Lane::FpCore), stats.fp_issued_core);
        assert_eq!(lane_count(Lane::FpSeq), stats.fp_issued_seq);
        // Stall events mirror every stall counter, cause for cause.
        for cause in StallCause::all() {
            let traced_cycles: u64 = events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Stall { cause: c, cycles } if c == cause => Some(u64::from(cycles)),
                    _ => None,
                })
                .sum();
            assert_eq!(traced_cycles, stats.stall_by_cause(cause), "{cause}");
        }
        // Stream beats mirror the SSR access counter.
        let beats: u64 = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SsrBeat { count, .. } => Some(u64::from(count)),
                _ => None,
            })
            .sum();
        assert_eq!(beats, stats.tcdm_ssr_accesses);
        // Reset restores a fresh, empty tracer (config-driven).
        traced.reset();
        assert_eq!(traced.trace_events(), Some(&[][..]));
    }

    #[test]
    fn profiled_run_mirrors_stats_and_perturbs_nothing() {
        use snitch_riscv::csr::SsrCfgWord;
        use snitch_trace::{Lane, StallCause};
        // Both lanes, SSR streaming, FREP replay, branches and fences — every
        // charge path the profiler hooks.
        let mut b = ProgramBuilder::new();
        let xs = b.tcdm_f64("xs", &[1.0, 2.0, 3.0, 4.0]);
        b.li(IntReg::T1, 3);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Bound(0));
        b.li(IntReg::T1, 8);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Stride(0));
        b.li(IntReg::T1, 0);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Status);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Repeat);
        b.li_u(IntReg::T1, xs);
        b.scfgwi(IntReg::T1, 0, SsrCfgWord::Base);
        b.ssr_enable();
        b.li(IntReg::T0, 3);
        b.frep_o(IntReg::T0, 1, 0, 0);
        b.fadd_d(FpReg::FS0, FpReg::FS0, FpReg::FT0);
        b.li(IntReg::A1, 8);
        b.label("l");
        b.addi(IntReg::A1, IntReg::A1, -1);
        b.bnez(IntReg::A1, "l");
        b.fpu_fence();
        b.ssr_disable();
        b.ecall();
        let p = b.build().unwrap();

        let mut plain = Cluster::new(ClusterConfig::default());
        plain.load_program(&p);
        let unprofiled = plain.run().unwrap();
        assert!(plain.profile().is_none(), "profiling is off by default");

        let mut profiled = Cluster::new(ClusterConfig::profiled());
        profiled.load_program(&p);
        let stats = profiled.run().unwrap();
        assert_eq!(stats, unprofiled, "profiling must not perturb the simulation");
        assert!(
            profiled.block_replayed_cycles() > 0,
            "the profiler must not disengage the block-burst fast path"
        );

        let profile = profiled.profile().expect("cfg.profile attaches a profiler");
        // Issue histograms mirror the issue counters lane for lane...
        assert_eq!(profile.issued_total(Lane::Int), stats.int_issued);
        assert_eq!(profile.issued_total(Lane::FpCore), stats.fp_issued_core);
        assert_eq!(profile.issued_total(Lane::FpSeq), stats.fp_issued_seq);
        // ...and the stall histograms every stall counter, cause for cause.
        for cause in StallCause::all() {
            assert_eq!(profile.stall_total(cause), stats.stall_by_cause(cause), "{cause}");
        }
        // Reset restores a fresh, empty profiler (config-driven).
        profiled.reset();
        assert_eq!(profiled.profile().map(snitch_profile::Profiler::core_cycles_total), Some(0));
    }

    #[test]
    fn fault_mid_cycle_still_commits_halt_transitions() {
        // Hart 0 halts (`ecall`) in the very cycle hart 1 faults on an
        // unmapped load. The aborted cycle must still record hart 0's halt
        // transition — the counter-maintained `halted()` may never go stale.
        let mut b = ProgramBuilder::new();
        b.parallel();
        b.csrr_mhartid(IntReg::A0); // cycle 0
        b.beqz(IntReg::A0, "h0"); // cycle 1: hart 0 taken (+2 refill)
        b.li_u(IntReg::A1, 0x0300_0000); // hart 1: cycle 2, unmapped address
        b.nop(); // hart 1: cycle 3
        b.lw(IntReg::A2, IntReg::A1, 0); // hart 1: cycle 4 — faults
        b.label("h0");
        b.ecall(); // hart 0: cycle 4 — halts
        let p = b.build().unwrap();

        let mut c = Cluster::new(ClusterConfig { cores: 2, ..ClusterConfig::default() });
        c.load_program(&p);
        match c.run() {
            Err(RunError::Fault(_)) => {}
            other => panic!("expected a machine fault, got {other:?}"),
        }
        assert_eq!(c.halted_count, 1, "hart 0's same-cycle halt must be counted");
        assert!(!c.halted());
    }

    #[test]
    fn mcycle_and_minstret_readable() {
        let (c, _) = run_program(|b| {
            use snitch_riscv::csr::CSR_MCYCLE;
            use snitch_riscv::ops::CsrOp;
            b.nop();
            b.nop();
            b.inst(snitch_riscv::inst::Inst::Csr {
                op: CsrOp::Rs,
                rd: IntReg::A0,
                csr: CSR_MCYCLE,
                src: 0,
            });
            b.ecall();
        });
        assert!(c.int_reg(IntReg::A0) >= 2);
    }
}
