//! Calibrated event energies.
//!
//! # Method
//!
//! The paper reports absolute power for twelve (kernel, variant) pairs in
//! Figure 2b, all between 37.4 mW and 46.2 mW at 1 GHz / 0.8 V / 25 °C in
//! GF 12LP+. We calibrate the model once against two structurally different
//! anchor points and hold every value fixed afterwards:
//!
//! 1. **`pi_xoshiro128p` baseline ≈ 37.9 mW** — integer-dominated issue,
//!    L0-thrashing instruction fetch, *no* DMA and almost no TCDM data
//!    traffic. This pins the static component plus the
//!    issue/fetch energies.
//! 2. **`exp` baseline ≈ 41.8 mW** — same issue structure but with streaming
//!    DMA traffic, FP loads/stores in the TCDM and a higher FPU duty cycle.
//!    The ~4 mW difference pins the memory-system energies.
//!
//! The static component (~27 mW) dominating total power is not a fitting
//! artifact: the paper explicitly attributes the small power delta between
//! baseline and COPIFT variants to constant clock-network activity.
//!
//! Magnitudes are sanity-checked against published 12–22 nm datapoints:
//! a double-precision FMA costs a few pJ in this class of node, an SRAM
//! access a comparable amount, and instruction issue/decode a few pJ — the
//! values below stay within those envelopes.

use crate::EnergyModel;

/// The calibrated model (see module docs).
pub static CALIBRATED: EnergyModel = EnergyModel {
    p_static_mw: 27.0,
    e_dma_busy_cycle: 0.8,
    e_int_issue: 3.2,
    e_offload_slot: 1.6,
    e_seq_issue: 0.9,
    e_fpu_muladd: 7.5,
    e_fpu_short: 2.2,
    e_fpu_cvt: 4.0,
    e_fpu_divsqrt: 55.0,
    e_l0_hit: 1.1,
    e_l1_ifetch: 5.5,
    e_tcdm_access: 3.4,
    e_ssr_beat: 1.3,
    e_dma_beat: 1.8,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_constraints_hold() {
        let m = &CALIBRATED;
        assert!(m.e_seq_issue < m.e_offload_slot, "replays skip fetch/decode");
        assert!(m.e_offload_slot < m.e_int_issue, "offload slot does no ALU work");
        assert!(m.e_l0_hit < m.e_l1_ifetch, "the L0 exists to be cheaper");
        assert!(m.e_fpu_short < m.e_fpu_cvt);
        assert!(m.e_fpu_cvt < m.e_fpu_muladd);
        assert!(m.e_fpu_muladd < m.e_fpu_divsqrt);
    }

    #[test]
    fn static_power_dominates_paper_range() {
        // All paper numbers are 37.4..46.2 mW; the constant component must
        // be more than half of the smallest.
        assert!(CALIBRATED.p_static_mw > 37.4 / 2.0);
        assert!(CALIBRATED.p_static_mw < 37.4, "but leaves room for dynamic power");
    }
}
