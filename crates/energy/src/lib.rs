//! Activity-based power and energy model for the Snitch cluster.
//!
//! The COPIFT paper extracts switching activity from post-layout simulation
//! and estimates power with `PrimeTime` (GF 12LP+, 1 GHz, 0.8 V, 25 °C). This
//! crate substitutes an event-energy model: the simulator counts every
//! energy-relevant event ([`snitch_sim::stats::Stats`]), and the model
//! multiplies by per-event energies plus a constant clock-tree/leakage
//! component.
//!
//! The paper itself notes that total power is *"dominated by constant
//! components such as the clock network activity"* — which is exactly the
//! structure of this model, and why dual-issue execution increases power only
//! ~1.07× on average while saving 1.37× energy through shorter runtime.
//!
//! Event energies are calibrated once against two anchor points from the
//! paper (see [`calibration`]) and then held fixed for all experiments.
//!
//! # Example
//!
//! ```
//! use snitch_energy::{EnergyModel, PowerReport};
//! use snitch_sim::stats::Stats;
//!
//! let stats = Stats { cycles: 1000, int_issued: 900, ..Stats::default() };
//! let model = EnergyModel::gf12lp();
//! let report: PowerReport = model.report(&stats);
//! assert!(report.avg_power_mw > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod calibration;

use snitch_sim::stats::Stats;

/// Cluster clock frequency: the paper's 1 GHz target.
pub const CLOCK_HZ: f64 = 1.0e9;

/// Per-event energies (pJ) and constant power (mW) of the cluster.
///
/// At 1 GHz, 1 pJ/cycle of dynamic energy equals 1 mW of average power,
/// which keeps the numbers easy to cross-check against the paper's
/// Figure 2b.
#[derive(Clone, Debug)]
pub struct EnergyModel {
    /// Clock tree, leakage and always-on infrastructure (mW).
    pub p_static_mw: f64,
    /// Additional engine power while the DMA datapath is moving data
    /// (expressed in pJ per busy cycle, i.e. mW at 1 GHz). Charged against
    /// [`Stats::dma_busy_cycles`], which counts only cycles a beat was
    /// performed — cycles an active transfer lost to TCDM bank arbitration
    /// are tracked separately (`Stats::dma_blocked_cycles`) and draw only
    /// static power, like any other stall.
    pub e_dma_busy_cycle: f64,
    /// Integer instruction issue + execute (pJ).
    pub e_int_issue: f64,
    /// Core issue slot spent offloading an FP instruction (pJ).
    pub e_offload_slot: f64,
    /// Sequencer replay issue (pJ) — cheaper than a core issue, the heart of
    /// pseudo dual-issue's energy advantage.
    pub e_seq_issue: f64,
    /// Double-precision FMA-class FPU operation (pJ).
    pub e_fpu_muladd: f64,
    /// Short FPU operation: compare/sign-inject/move/classify/COPIFT (pJ).
    pub e_fpu_short: f64,
    /// FPU conversion (pJ).
    pub e_fpu_cvt: f64,
    /// FPU divide/sqrt (pJ, per operation).
    pub e_fpu_divsqrt: f64,
    /// L0 instruction-buffer hit (pJ).
    pub e_l0_hit: f64,
    /// L1 instruction-cache fetch on L0 miss (pJ) — the I$ thrashing cost.
    pub e_l1_ifetch: f64,
    /// TCDM bank access, 64-bit (pJ).
    pub e_tcdm_access: f64,
    /// SSR beat: address generation + FIFO transfer (pJ), on top of the TCDM
    /// access it performs.
    pub e_ssr_beat: f64,
    /// DMA beat (pJ), on top of its TCDM access.
    pub e_dma_beat: f64,
}

impl EnergyModel {
    /// The calibrated GF 12LP+ model used for all experiments
    /// (see [`calibration`] for the derivation).
    #[must_use]
    pub fn gf12lp() -> Self {
        calibration::CALIBRATED.clone()
    }

    /// Total dynamic energy of a run, in picojoules.
    #[must_use]
    pub fn dynamic_energy_pj(&self, stats: &Stats) -> f64 {
        self.breakdown(stats).iter().map(|(_, pj)| pj).sum()
    }

    /// Dynamic-energy breakdown by component, in picojoules.
    #[must_use]
    pub fn breakdown(&self, stats: &Stats) -> Vec<(&'static str, f64)> {
        let fpu = stats.fpu_muladd_ops as f64 * self.e_fpu_muladd
            + stats.fpu_short_ops as f64 * self.e_fpu_short
            + stats.fpu_cvt_ops as f64 * self.e_fpu_cvt
            + stats.fpu_divsqrt_ops as f64 * self.e_fpu_divsqrt;
        let tcdm = (stats.tcdm_core_accesses
            + stats.tcdm_fp_accesses
            + stats.tcdm_ssr_accesses
            + stats.tcdm_dma_accesses
            + stats.main_mem_accesses) as f64
            * self.e_tcdm_access;
        vec![
            ("int core", stats.int_issued as f64 * self.e_int_issue),
            ("offload slots", stats.fp_issued_core as f64 * self.e_offload_slot),
            ("sequencer", stats.fp_issued_seq as f64 * self.e_seq_issue),
            ("fpu", fpu),
            (
                "icache",
                stats.l0_hits as f64 * self.e_l0_hit + stats.l0_misses as f64 * self.e_l1_ifetch,
            ),
            ("tcdm", tcdm),
            ("ssr", stats.ssr_beats.iter().sum::<u64>() as f64 * self.e_ssr_beat),
            (
                "dma",
                stats.dma_beats as f64 * self.e_dma_beat
                    + stats.dma_busy_cycles as f64 * self.e_dma_busy_cycle,
            ),
        ]
    }

    /// Full power/energy report for a run.
    #[must_use]
    pub fn report(&self, stats: &Stats) -> PowerReport {
        let cycles = stats.cycles.max(1);
        let time_s = cycles as f64 / CLOCK_HZ;
        let dynamic_pj = self.dynamic_energy_pj(stats);
        let dynamic_mw = dynamic_pj / cycles as f64; // 1 pJ/cycle = 1 mW @ 1 GHz
        let avg_power_mw = self.p_static_mw + dynamic_mw;
        let energy_uj = avg_power_mw * 1e-3 * time_s * 1e6;
        PowerReport {
            cycles: stats.cycles,
            time_s,
            avg_power_mw,
            static_mw: self.p_static_mw,
            dynamic_mw,
            energy_uj,
            breakdown_mw: self
                .breakdown(stats)
                .into_iter()
                .map(|(name, pj)| (name, pj / cycles as f64))
                .collect(),
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::gf12lp()
    }
}

/// Power and energy estimate for one run.
#[derive(Clone, Debug)]
pub struct PowerReport {
    /// Cycles in the run.
    pub cycles: u64,
    /// Wall-clock time at 1 GHz.
    pub time_s: f64,
    /// Average total power in milliwatts.
    pub avg_power_mw: f64,
    /// Constant component (clock tree + leakage).
    pub static_mw: f64,
    /// Activity-dependent component.
    pub dynamic_mw: f64,
    /// Total energy in microjoules.
    pub energy_uj: f64,
    /// Average-power breakdown by component (mW).
    pub breakdown_mw: Vec<(&'static str, f64)>,
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "power {:.2} mW (static {:.2} + dynamic {:.2}), energy {:.3} uJ over {} cycles",
            self.avg_power_mw, self.static_mw, self.dynamic_mw, self.energy_uj, self.cycles
        )?;
        for (name, mw) in &self.breakdown_mw {
            writeln!(f, "  {name:<14} {mw:>8.3} mW")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cluster_consumes_static_power_only() {
        let stats = Stats { cycles: 1000, ..Stats::default() };
        let r = EnergyModel::gf12lp().report(&stats);
        assert_eq!(r.dynamic_mw, 0.0);
        assert_eq!(r.avg_power_mw, r.static_mw);
    }

    #[test]
    fn one_pj_per_cycle_is_one_mw() {
        let model = EnergyModel { e_int_issue: 1.0, ..EnergyModel::gf12lp() };
        let stats = Stats { cycles: 1000, int_issued: 1000, ..Stats::default() };
        let r = model.report(&stats);
        let int_mw = r.breakdown_mw.iter().find(|(n, _)| *n == "int core").unwrap().1;
        assert!((int_mw - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_dma_cycles_draw_no_dma_energy() {
        // An arbitration-blocked DMA cycle moves nothing: only the moving
        // (busy) cycles appear in the DMA energy term.
        let model = EnergyModel::gf12lp();
        let moving = Stats { cycles: 100, dma_busy_cycles: 10, ..Stats::default() };
        let blocked =
            Stats { cycles: 100, dma_busy_cycles: 10, dma_blocked_cycles: 50, ..Stats::default() };
        assert_eq!(
            model.dynamic_energy_pj(&moving),
            model.dynamic_energy_pj(&blocked),
            "blocked cycles must not be charged as DMA activity"
        );
        assert!(model.dynamic_energy_pj(&moving) > 0.0);
    }

    #[test]
    fn energy_scales_with_time_at_fixed_power() {
        let model = EnergyModel::gf12lp();
        let s1 = Stats { cycles: 1000, int_issued: 500, ..Stats::default() };
        let s2 = Stats { cycles: 2000, int_issued: 1000, ..Stats::default() };
        let r1 = model.report(&s1);
        let r2 = model.report(&s2);
        assert!((r1.avg_power_mw - r2.avg_power_mw).abs() < 1e-9, "same activity density");
        assert!(
            (r2.energy_uj / r1.energy_uj - 2.0).abs() < 1e-9,
            "twice the time, twice the energy"
        );
    }

    #[test]
    fn faster_run_with_same_work_saves_energy() {
        // The COPIFT effect in miniature: same instruction counts, fewer
        // cycles → higher power but lower energy.
        let model = EnergyModel::gf12lp();
        let base = Stats { cycles: 2000, int_issued: 900, fp_issued_core: 900, ..Stats::default() };
        let fast = Stats {
            cycles: 1200,
            int_issued: 900,
            fp_issued_core: 100,
            fp_issued_seq: 800,
            ..Stats::default()
        };
        let rb = model.report(&base);
        let rf = model.report(&fast);
        assert!(rf.avg_power_mw > rb.avg_power_mw, "dual issue raises power");
        assert!(rf.energy_uj < rb.energy_uj, "but saves energy overall");
    }

    #[test]
    fn breakdown_sums_to_dynamic_power() {
        let model = EnergyModel::gf12lp();
        let stats = Stats {
            cycles: 500,
            int_issued: 300,
            fp_issued_core: 100,
            fp_issued_seq: 50,
            fpu_muladd_ops: 120,
            fpu_cvt_ops: 20,
            l0_hits: 350,
            l0_misses: 50,
            tcdm_core_accesses: 80,
            ssr_beats: [10, 20, 0],
            dma_beats: 5,
            dma_busy_cycles: 5,
            ..Stats::default()
        };
        let r = model.report(&stats);
        let sum: f64 = r.breakdown_mw.iter().map(|(_, mw)| mw).sum();
        assert!((sum - r.dynamic_mw).abs() < 1e-9);
    }
}
