//! # snitch-profile — guest-side cycle profiling
//!
//! `Stats` says *how many* cycles a kernel spent stalled per cause;
//! `snitch-trace` can replay *each* cycle but costs an event per cycle.
//! This crate is the layer between the two: an exact, always-on-capable
//! histogram that charges **every simulated cycle to a program counter**
//! (the executing or blocking instruction), subdivided by the 13-cause
//! [`StallCause`] taxonomy, per hart.
//!
//! * [`profiler`] — the [`Profiler`] collector the simulator charges into.
//!   The hook follows the `Tracer` discipline: one `Option` branch when no
//!   profiler is attached, a recording check when one is paused, and plain
//!   array adds when live — cheap enough that the simulator's block-burst
//!   fast path stays engaged while profiling (bursts charge per-op counts
//!   directly instead of falling back to the reference stepper);
//! * [`region`] — resolves pcs to `ProgramBuilder` label spans
//!   ([`Program::labels`]), e.g. the COPIFT codegen's standard
//!   `prologue`/`spill`/`body`/`reduce` region labels;
//! * [`report`] — analyzers: top-N hot pcs and per-region cycle/stall
//!   breakdowns;
//! * sinks, all byte-stable: [`disasm`] (annotated disassembly listing with
//!   cycle/stall columns), [`flame`] (collapsed-stack flamegraph text,
//!   `region;pc` frames weighted by cycles, plus a validator), and
//!   [`perfetto`] (counter tracks over the pc axis on the shared
//!   [`snitch_trace::chrome::Doc`] builder).
//!
//! The crate depends only on `snitch-riscv`, `snitch-asm` and
//! `snitch-trace`; `snitch-sim` depends on it to charge cycles, and the
//! engine carries finished profiles on its run records.
//!
//! [`Program::labels`]: snitch_asm::Program::labels

#![forbid(unsafe_code)]

pub mod disasm;
pub mod flame;
pub mod perfetto;
pub mod profiler;
pub mod region;
pub mod report;

pub use profiler::{Profiler, NUM_CAUSES};
pub use region::RegionMap;
pub use report::{hot_pcs, regions, PcReport, RegionReport};
pub use snitch_trace::{Lane, StallCause};
