//! Analyzers over a finished [`Profiler`]: hot pcs and per-region
//! breakdowns.

use snitch_asm::layout;
use snitch_trace::{Lane, StallCause};

use crate::profiler::{cause_index, Profiler, NUM_CAUSES};
use crate::region::RegionMap;

/// One pc's aggregate charges (summed over harts).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PcReport {
    /// Instruction address.
    pub pc: u32,
    /// Core-dimension cycles (issues + core-cause stalls).
    pub core_cycles: u64,
    /// Core-slot issues (integer + FP offload pushes).
    pub issued: u64,
    /// Core-cause stall cycles.
    pub stalled: u64,
    /// Sequencer-dimension cycles (FREP replays + FPU-side stalls).
    pub seq_cycles: u64,
}

/// The `n` hottest pcs by core-dimension cycles (ties break toward lower
/// addresses, so the order is deterministic).
#[must_use]
pub fn hot_pcs(profile: &Profiler, n: usize) -> Vec<PcReport> {
    let mut all: Vec<PcReport> = (0..profile.text_len())
        .map(|idx| {
            let issued = profile.issued_at(idx, Lane::Int) + profile.issued_at(idx, Lane::FpCore);
            let core_cycles = profile.core_cycles_at(idx);
            PcReport {
                pc: layout::TEXT_BASE + (idx as u32) * 4,
                core_cycles,
                issued,
                stalled: core_cycles - issued,
                seq_cycles: profile.seq_cycles_at(idx),
            }
        })
        .filter(|r| r.core_cycles + r.seq_cycles > 0)
        .collect();
    all.sort_by_key(|r| (std::cmp::Reverse(r.core_cycles + r.seq_cycles), r.pc));
    all.truncate(n);
    all
}

/// One region's aggregate charges (summed over harts and pcs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegionReport {
    /// Region (label) name.
    pub name: String,
    /// First covered address.
    pub start: u32,
    /// One past the last covered address.
    pub end: u32,
    /// Core-dimension cycles.
    pub core_cycles: u64,
    /// Core-slot issues.
    pub issued: u64,
    /// Sequencer-dimension cycles.
    pub seq_cycles: u64,
    /// Stall cycles per cause, in [`StallCause::all`] order.
    pub stalls: [u64; NUM_CAUSES],
}

impl RegionReport {
    /// Stall cycles of one cause.
    #[must_use]
    pub fn stall(&self, cause: StallCause) -> u64 {
        self.stalls[cause_index(cause)]
    }

    /// The dominant stall cause, if any cycles stalled in the region.
    #[must_use]
    pub fn dominant_stall(&self) -> Option<(StallCause, u64)> {
        StallCause::all()
            .into_iter()
            .map(|c| (c, self.stall(c)))
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }
}

/// Per-region breakdown in address order. Pcs before the first label
/// aggregate under [`crate::region::ENTRY_REGION`] (emitted first when it
/// has charges).
#[must_use]
pub fn regions(profile: &Profiler, map: &RegionMap) -> Vec<RegionReport> {
    let mut entry = RegionReport {
        name: crate::region::ENTRY_REGION.to_string(),
        start: layout::TEXT_BASE,
        end: layout::TEXT_BASE,
        core_cycles: 0,
        issued: 0,
        seq_cycles: 0,
        stalls: [0; NUM_CAUSES],
    };
    let mut out: Vec<RegionReport> = map
        .spans()
        .iter()
        .map(|s| RegionReport {
            name: s.name.clone(),
            start: s.start,
            end: s.end,
            core_cycles: 0,
            issued: 0,
            seq_cycles: 0,
            stalls: [0; NUM_CAUSES],
        })
        .collect();
    for idx in 0..profile.text_len() {
        let pc = layout::TEXT_BASE + (idx as u32) * 4;
        let name = map.region_of(pc);
        let slot = out
            .iter_mut()
            .find(|r| r.name == name && r.start <= pc && pc < r.end)
            .unwrap_or(&mut entry);
        slot.core_cycles += profile.core_cycles_at(idx);
        slot.issued += profile.issued_at(idx, Lane::Int) + profile.issued_at(idx, Lane::FpCore);
        slot.seq_cycles += profile.seq_cycles_at(idx);
        for cause in StallCause::all() {
            slot.stalls[cause_index(cause)] += profile.stall_at(idx, cause);
        }
    }
    if entry.core_cycles + entry.seq_cycles > 0 {
        out.insert(0, entry);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::ProgramBuilder;

    fn profile_and_map() -> (Profiler, RegionMap) {
        let mut b = ProgramBuilder::new();
        b.nop(); // _entry
        b.label("body");
        b.nop();
        b.nop();
        let map = RegionMap::new(&b.build().unwrap());
        let mut p = Profiler::new();
        p.size(1, 3);
        let base = layout::TEXT_BASE;
        p.issue(0, base, Lane::Int);
        p.issue(0, base + 4, Lane::FpCore);
        p.stall(0, base + 4, StallCause::FpuRaw, 2);
        p.stall(0, base + 8, StallCause::TcdmConflict, 5);
        (p, map)
    }

    #[test]
    fn hot_pcs_rank_by_total_cycles() {
        let (p, _) = profile_and_map();
        let hot = hot_pcs(&p, 2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].pc, layout::TEXT_BASE + 8);
        assert_eq!(hot[0].core_cycles, 5);
        assert_eq!(hot[0].stalled, 5);
        assert_eq!(hot[1].pc, layout::TEXT_BASE + 4);
        assert_eq!((hot[1].issued, hot[1].seq_cycles), (1, 2));
    }

    #[test]
    fn regions_aggregate_by_label_span() {
        let (p, map) = profile_and_map();
        let regs = regions(&p, &map);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].name, crate::region::ENTRY_REGION);
        assert_eq!(regs[0].core_cycles, 1);
        assert_eq!(regs[1].name, "body");
        assert_eq!(regs[1].core_cycles, 6, "one fp-core issue + five conflict cycles");
        assert_eq!(regs[1].seq_cycles, 2);
        assert_eq!(regs[1].dominant_stall(), Some((StallCause::TcdmConflict, 5)));
        assert_eq!(regs[1].stall(StallCause::FpuRaw), 2);
    }
}
