//! Perfetto sink: the cycle histogram as counter tracks over the *pc axis*.
//!
//! Built on the shared [`snitch_trace::chrome::Doc`] builder, so the
//! document framing is identical to every other trace sink in the
//! workspace and `snitch_trace::chrome::validate` accepts it. The time
//! axis is the instruction index (one "µs" per instruction); each hart is
//! a process carrying three counter series — `core_cycles`, `frep_cycles`
//! and `stall_cycles` — and region starts render as instant markers, so
//! scrubbing along the axis reads as walking the disassembly.

use snitch_asm::layout;
use snitch_trace::chrome::Doc;
use snitch_trace::{Lane, StallCause};

use crate::profiler::Profiler;
use crate::region::RegionMap;

/// Renders the profile as a Chrome trace-event JSON document.
#[must_use]
pub fn render(profile: &Profiler, map: &RegionMap) -> String {
    let mut doc = Doc::with_capacity(profile.text_len() * 96 + 256);
    for hart in 0..profile.harts() {
        let pid = hart as u32;
        doc.process_name(pid, &format!("hart{hart}"));
        doc.thread_name(pid, 0, "regions");
    }
    for span in map.spans() {
        let ts = u64::from((span.start - layout::TEXT_BASE) / 4);
        for hart in 0..profile.harts() {
            doc.instant(hart as u32, 0, ts, &span.name);
        }
    }
    for idx in 0..profile.text_len() {
        // Aggregate across harts per pc (per-hart splits stay queryable on
        // the profiler itself; the tracks answer "where do cycles go").
        let core = profile.core_cycles_at(idx);
        let seq = profile.issued_at(idx, Lane::FpSeq);
        let stalled: u64 = StallCause::all().iter().map(|&c| profile.stall_at(idx, c)).sum();
        if core + seq + stalled == 0 {
            continue;
        }
        let ts = idx as u64;
        doc.counter(0, ts, "core_cycles", "cycles", core);
        doc.counter(0, ts, "frep_cycles", "cycles", seq);
        doc.counter(0, ts, "stall_cycles", "cycles", stalled);
    }
    doc.finish("pc-index")
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::ProgramBuilder;
    use snitch_trace::chrome;

    #[test]
    fn rendered_document_validates() {
        let mut b = ProgramBuilder::new();
        b.label("body");
        b.nop();
        b.nop();
        let map = RegionMap::new(&b.build().unwrap());
        let mut p = Profiler::new();
        p.size(2, 2);
        p.issue(0, layout::TEXT_BASE, Lane::Int);
        p.issue(1, layout::TEXT_BASE, Lane::FpSeq);
        p.stall(0, layout::TEXT_BASE + 4, StallCause::Fence, 3);
        let json = render(&p, &map);
        let summary = chrome::validate(&json).expect("profile document must validate");
        assert_eq!(summary.counters, 6, "three series per charged pc");
        assert_eq!(summary.instants, 2, "one region marker per hart");
        assert_eq!(summary.metadata, 4, "process + thread name per hart");
        assert!(json.contains("\"name\":\"body\""));
        assert!(json.contains("\"timeUnit\":\"pc-index\""));
    }
}
